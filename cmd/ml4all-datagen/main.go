// Command ml4all-datagen emits the synthetic Table 2 dataset stand-ins (or a
// custom spec) as LIBSVM/CSV text, for feeding the ml4all CLI or external
// tools.
//
// Usage:
//
//	ml4all-datagen -name covtype > covtype.libsvm
//	ml4all-datagen -name svm1 -scale 256 -o svm1.csv
//	ml4all-datagen -n 5000 -d 50 -density 0.2 -task logr -o custom.libsvm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"ml4all/internal/data"
	"ml4all/internal/synth"
)

func main() {
	name := flag.String("name", "", "Table 2 dataset name (adult, covtype, yearpred, rcv1, higgs, svm1-svm3)")
	scale := flag.Int("scale", synth.DefaultScale, "dataset scale divisor")
	out := flag.String("o", "", "output file (default stdout)")
	n := flag.Int("n", 1000, "custom: number of points")
	d := flag.Int("d", 20, "custom: number of features")
	density := flag.Float64("density", 1.0, "custom: fraction of non-zero features")
	task := flag.String("task", "svm", "custom: task (svm, logr, linr)")
	noise := flag.Float64("noise", 0.05, "custom: label noise")
	seed := flag.Int64("seed", 1, "custom: random seed")
	flag.Parse()

	spec, err := buildSpec(*name, *scale, *n, *d, *density, *task, *noise, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ml4all-datagen:", err)
		os.Exit(2)
	}
	ds, err := synth.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ml4all-datagen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, line := range ds.Raw {
		fmt.Fprintln(bw, line)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "ml4all-datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d points, %d features, %.1f MB (%s)\n",
		ds.Name, ds.N(), ds.NumFeatures, float64(ds.SizeBytes())/(1<<20), ds.Format)
}

func buildSpec(name string, scale, n, d int, density float64, task string, noise float64, seed int64) (synth.Spec, error) {
	if name != "" {
		return synth.ByName(name, scale)
	}
	spec := synth.Spec{Name: "custom", N: n, D: d, Density: density, Noise: noise, Margin: 1, Seed: seed}
	switch task {
	case "svm":
		spec.Task = data.TaskSVM
	case "logr":
		spec.Task = data.TaskLogisticRegression
	case "linr":
		spec.Task = data.TaskLinearRegression
	default:
		return spec, fmt.Errorf("unknown task %q (svm, logr, linr)", task)
	}
	return spec, nil
}
