package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkComputePhaseDense/workers=1         	      10	  41069889 ns/op	   7304671 units/s	   31452 B/op	      25 allocs/op
BenchmarkComputePhaseDense/workers=1         	      10	  43069889 ns/op	   7304671 units/s	   31452 B/op	      25 allocs/op
BenchmarkComputePhaseDense/workers=1         	      10	  42069889 ns/op	   7304671 units/s	   31452 B/op	      25 allocs/op
BenchmarkTrainerStep        	      10	    334839 ns/op	      2988 steps/s	   18183 B/op	       2 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	dense := got["BenchmarkComputePhaseDense/workers=1"]
	if len(dense) != 3 {
		t.Fatalf("dense samples = %d, want 3", len(dense))
	}
	if m := median(dense); m != 42069889 {
		t.Fatalf("median = %g, want 42069889", m)
	}
	if step := got["BenchmarkTrainerStep"]; len(step) != 1 || step[0] != 334839 {
		t.Fatalf("TrainerStep samples = %v", step)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %g, want 2.5", m)
	}
}
