package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkComputePhaseDense/workers=1         	      10	  41069889 ns/op	   7304671 units/s	   31452 B/op	      25 allocs/op
BenchmarkComputePhaseDense/workers=1         	      10	  43069889 ns/op	   7304671 units/s	   31452 B/op	      25 allocs/op
BenchmarkComputePhaseDense/workers=1         	      10	  42069889 ns/op	   7304671 units/s	   27 allocs/op
BenchmarkTrainerStep        	      10	    334839 ns/op	      2988 steps/s	   18183 B/op	       2 allocs/op
BenchmarkNoMem              	      10	    100000 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	dense := got["BenchmarkComputePhaseDense/workers=1"]
	if len(dense.ns) != 3 {
		t.Fatalf("dense ns samples = %d, want 3", len(dense.ns))
	}
	if m := median(dense.ns); m != 42069889 {
		t.Fatalf("median = %g, want 42069889", m)
	}
	if len(dense.allocs) != 3 {
		t.Fatalf("dense alloc samples = %d, want 3", len(dense.allocs))
	}
	if m := median(dense.allocs); m != 25 {
		t.Fatalf("alloc median = %g, want 25", m)
	}
	step := got["BenchmarkTrainerStep"]
	if len(step.ns) != 1 || step.ns[0] != 334839 {
		t.Fatalf("TrainerStep ns samples = %v", step.ns)
	}
	if len(step.allocs) != 1 || step.allocs[0] != 2 {
		t.Fatalf("TrainerStep alloc samples = %v", step.allocs)
	}
	// A line without -benchmem columns still yields ns/op and no allocs.
	nomem := got["BenchmarkNoMem"]
	if len(nomem.ns) != 1 || len(nomem.allocs) != 0 {
		t.Fatalf("NoMem samples = %v / %v", nomem.ns, nomem.allocs)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %g, want 2.5", m)
	}
}

func bench(ns, allocs float64) *samples {
	return &samples{ns: []float64{ns}, allocs: []float64{allocs}}
}

// TestGateVerdicts pins the three gate outcomes on the same comparison:
// within-threshold rows pass, over-threshold rows fail, and a baseline row
// with no candidate measurement fails as missing (a renamed, deleted, or
// skipped benchmark must not silently lose its gate). Candidate-only rows
// never fail.
func TestGateVerdicts(t *testing.T) {
	base := map[string]*samples{
		"BenchmarkSteady": bench(1000, 5),
		"BenchmarkGone":   bench(1000, 5),
	}
	cand := map[string]*samples{
		"BenchmarkSteady": bench(1050, 5),
		"BenchmarkFresh":  bench(1, 0),
	}

	var out strings.Builder
	failed, missing := gate(&out, base, cand, 10, 0)
	if failed {
		t.Fatalf("within-threshold comparison reported a regression:\n%s", out.String())
	}
	if !missing {
		t.Fatalf("baseline-only BenchmarkGone did not trip the missing failure:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkGone") || !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("report does not name the missing row:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkFresh") {
		t.Fatalf("report does not mention the candidate-only row:\n%s", out.String())
	}

	// ns/op regression beyond threshold.
	out.Reset()
	failed, missing = gate(&out, map[string]*samples{"BenchmarkSteady": bench(1000, 5)},
		map[string]*samples{"BenchmarkSteady": bench(1200, 5)}, 10, 0)
	if !failed || missing {
		t.Fatalf("ns/op regression: failed=%v missing=%v\n%s", failed, missing, out.String())
	}

	// allocs/op regression with ns/op flat.
	out.Reset()
	failed, missing = gate(&out, map[string]*samples{"BenchmarkSteady": bench(1000, 5)},
		map[string]*samples{"BenchmarkSteady": bench(1000, 6)}, 10, 0)
	if !failed || missing {
		t.Fatalf("allocs/op regression: failed=%v missing=%v\n%s", failed, missing, out.String())
	}
}
