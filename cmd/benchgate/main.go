// Command benchgate compares two `go test -bench` output files and fails
// when any benchmark's ns/op regressed beyond a threshold — the decision
// half of the CI benchmark gate (benchstat renders the human-readable
// report; benchgate provides a deterministic exit code). When both files
// carry -benchmem columns, allocs/op is gated too, against its own (much
// tighter) threshold: allocation counts are deterministic, so any growth is
// a real regression, not noise.
//
// Usage:
//
//	go test -bench 'ComputePhase|TrainerStep$' -benchtime=10x -count=3 -benchmem -run '^$' . > new.txt
//	benchgate -old BENCH_baseline.txt -new new.txt -threshold 10 -allocthreshold 0
//
// For every benchmark present in both files the MEDIAN ns/op of its -count
// repetitions is compared; medians rather than means keep one descheduled
// run on a shared CI box from tripping the gate. New benchmarks (candidate-
// only) are reported but never fail the gate — they must not require a
// baseline update to land. Baseline-only rows DO fail the gate: a row whose
// benchmark no longer runs means a guarded workload silently lost its gate
// (renamed or deleted without updating the baseline, or skipped on an
// incapable host).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches `BenchmarkX/sub-8   10   41069889 ns/op   ...`, with an
// optional `-benchmem` tail carrying B/op and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op(?:.*?\s([0-9.]+(?:e[+-]?[0-9]+)?) allocs/op)?`)

// samples holds the per-benchmark measurements of one output file. allocs is
// empty when the file was produced without -benchmem.
type samples struct {
	ns     []float64
	allocs []float64
}

// parseBench collects the ns/op (and, when present, allocs/op) samples of
// every benchmark in r, keyed by benchmark name with the GOMAXPROCS suffix
// stripped.
func parseBench(r io.Reader) (map[string]*samples, error) {
	out := map[string]*samples{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{}
			out[m[1]] = s
		}
		s.ns = append(s.ns, v)
		if m[3] != "" {
			a, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad allocs/op in %q: %w", sc.Text(), err)
			}
			s.allocs = append(s.allocs, a)
		}
	}
	return out, sc.Err()
}

// median returns the middle sample (mean of the middle two for even counts).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func parseFile(path string) (map[string]*samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` output")
	newPath := flag.String("new", "", "candidate `go test -bench` output")
	threshold := flag.Float64("threshold", 10, "maximum allowed ns/op regression in percent")
	allocThreshold := flag.Float64("allocthreshold", 0, "maximum allowed allocs/op regression in percent (gated only when both files carry -benchmem columns)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldB, err := parseFile(*oldPath)
	if err == nil && len(oldB) == 0 {
		err = fmt.Errorf("no benchmark lines in %s", *oldPath)
	}
	var newB map[string]*samples
	if err == nil {
		newB, err = parseFile(*newPath)
		if err == nil && len(newB) == 0 {
			err = fmt.Errorf("no benchmark lines in %s", *newPath)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	failed, missing := gate(os.Stdout, oldB, newB, *threshold, *allocThreshold)
	if missing {
		fmt.Fprintf(os.Stderr, "benchgate: baseline rows name benchmarks absent from the candidate run (renamed, deleted, or skipped); update BENCH_baseline.txt or fix the run\n")
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: ns/op or allocs/op regression beyond threshold against the committed baseline\n")
	}
	if failed || missing {
		os.Exit(1)
	}
}

// gate renders the comparison report to w and returns the two failure
// classes separately: threshold regressions, and baseline rows with no
// candidate measurement.
func gate(w io.Writer, oldB, newB map[string]*samples, threshold, allocThreshold float64) (failed, missing bool) {
	names := make([]string, 0, len(oldB))
	for name := range oldB {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		nv, ok := newB[name]
		if !ok {
			// A baseline row with no candidate measurement means the
			// benchmark was renamed, deleted, or skipped on this host. Any
			// of those silently un-gates the workload the row was guarding,
			// so it fails the gate rather than being reported and ignored —
			// renames must update BENCH_baseline.txt in the same change.
			fmt.Fprintf(w, "%-55s MISSING from candidate\n", name)
			missing = true
			continue
		}
		o, n := median(oldB[name].ns), median(nv.ns)
		deltaPct := (n - o) / o * 100
		verdict := "ok"
		if deltaPct > threshold {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(w, "%-55s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n", name, o, n, deltaPct, verdict)

		if len(oldB[name].allocs) == 0 || len(nv.allocs) == 0 {
			continue
		}
		oa, na := median(oldB[name].allocs), median(nv.allocs)
		if oa == 0 {
			if na > 0 {
				failed = true
				fmt.Fprintf(w, "%-55s %14.0f -> %14.0f allocs/op          REGRESSED\n", name, oa, na)
			}
			continue
		}
		allocPct := (na - oa) / oa * 100
		if allocPct > allocThreshold {
			failed = true
			fmt.Fprintf(w, "%-55s %14.0f -> %14.0f allocs/op  %+6.1f%%  REGRESSED\n", name, oa, na, allocPct)
		}
	}
	for name := range newB {
		if _, ok := oldB[name]; !ok {
			fmt.Fprintf(w, "%-55s new benchmark (no baseline)\n", name)
		}
	}
	return failed, missing
}
