// Command ml4all-serve runs the online serving subsystem: a training-job
// manager, a versioned model registry and a batched prediction service
// behind one HTTP listener.
//
// Usage:
//
//	ml4all-serve -addr :8080 -dir ./serve-data
//
// Submit a training job, poll it, predict against the published model:
//
//	curl -s localhost:8080/v1/jobs -d '{"script":"m = run logistic on train.txt having epsilon 0.01, max iter 500;"}'
//	curl -s localhost:8080/v1/jobs/job-0000
//	curl -s localhost:8080/v1/models/m/predict -d '{"rows":["1:0.5 3:1.2"]}'
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs checkpoint to -dir and
// resume on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ml4all"
	"ml4all/internal/linalg"
	"ml4all/internal/obs"
	"ml4all/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	dir := flag.String("dir", "./ml4all-serve-data", "state root: model registry, job manifests and checkpoints")
	pool := flag.Int("pool", 2, "training jobs running concurrently")
	queue := flag.Int("queue", 256, "submission queue depth")
	checkpoint := flag.Duration("checkpoint", 2*time.Second, "interval between job checkpoint writes (negative disables)")
	workers := flag.Int("workers", 0, "engine worker pool per job (0 = GOMAXPROCS; results are identical for any value)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for checkpointing in-flight jobs")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiles expose process internals; enable behind trusted ingress only)")
	flag.Parse()

	sys := ml4all.NewSystem()
	sys.Workers = *workers
	srv, err := serve.New(serve.Config{
		Dir:             *dir,
		Pool:            *pool,
		QueueDepth:      *queue,
		CheckpointEvery: *checkpoint,
		System:          sys,
		EnablePprof:     *pprof,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ml4all-serve:", err)
		return 1
	}

	httpSrv := srv.HTTPServer(*addr)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	b := obs.Build()
	build := fmt.Sprintf("version %s (%s)", b.Version, b.Go)
	if b.Revision != "" {
		build = fmt.Sprintf("version %s rev %s (%s)", b.Version, b.Revision, b.Go)
	}
	fmt.Printf("ml4all-serve: %s, kernel backend %s\n", build, linalg.FastBackend())
	fmt.Printf("ml4all-serve: listening on %s, state in %s\n", *addr, *dir)
	if *pprof {
		fmt.Printf("ml4all-serve: pprof mounted at /debug/pprof/\n")
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("ml4all-serve: %v, draining (budget %s)\n", sig, *drain)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ml4all-serve:", err)
			return 1
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the pool:
	// running jobs checkpoint and are left resumable in -dir.
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ml4all-serve: http shutdown:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ml4all-serve:", err)
		return 1
	}
	fmt.Println("ml4all-serve: drained, state checkpointed")
	return 0
}
