package main

// The -serve-load mode is a closed-loop load generator for the serving
// pipeline: a ladder of concurrency rungs × request mixes (dense instances,
// CSV text, LIBSVM text), each measured over three arms —
//
//   - baseline:  the per-request allocating path (fresh builder + Build +
//     Model.ScoreMatrix per call), the pipeline as it was before pooling
//     and coalescing;
//   - pooled:    the pooled direct path (Predictor with coalescing off);
//   - coalesced: the full pipeline (pooled ingest + request coalescing).
//
// Each rung reports rows/s and p50/p95/p99 request latency; results write to
// BENCH_7.json (see README "Serving throughput"). Callers are closed-loop:
// every goroutine issues its next request the moment the previous one
// answers, so rung latency includes all queueing the pipeline itself adds.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/linalg"
	"ml4all/internal/metrics"
	"ml4all/internal/serve"
	"ml4all/internal/synth"
)

const (
	serveLoadDim     = 128 // model dimensionality
	serveLoadRows    = 4   // rows per request: small calls are what coalescing amortizes
	serveLoadRepeats = 3   // intervals per rung; the median by rows/s is reported
)

var serveLoadLadder = []int{1, 4, 16, 64}

// serveLoadMix is one request shape of the sweep.
type serveLoadMix struct {
	name      string
	rows      func(g int) []string
	instances func(g int) [][]float64
}

func serveLoadMixes() []serveLoadMix {
	// Feature values are sixteenths: exact in binary and short in text ("%g"
	// prints at most 7 characters), the shape quantized telemetry features
	// take — so the text mixes measure the pipeline, not ParseFloat's
	// long-decimal slow path.
	val := func(g, i, k int) float64 { return float64((g*31+i*7+k)%19-9) / 16 }
	return []serveLoadMix{
		{name: "instances", instances: func(g int) [][]float64 {
			out := make([][]float64, serveLoadRows)
			for i := range out {
				row := make([]float64, serveLoadDim)
				for k := range row {
					row[k] = val(g, i, k)
				}
				out[i] = row
			}
			return out
		}},
		{name: "csv", rows: func(g int) []string {
			out := make([]string, serveLoadRows)
			var sb strings.Builder
			for i := range out {
				sb.Reset()
				for k := 0; k < serveLoadDim; k++ {
					if k > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "%g", val(g, i, k))
				}
				out[i] = sb.String()
			}
			return out
		}},
		{name: "libsvm", rows: func(g int) []string {
			out := make([]string, serveLoadRows)
			var sb strings.Builder
			for i := range out {
				sb.Reset()
				for k := 0; k < 8; k++ { // ~6% density
					if k > 0 {
						sb.WriteByte(' ')
					}
					fmt.Fprintf(&sb, "%d:%g", (g*17+i*13+k*16)%serveLoadDim+1, val(g, i, k))
				}
				out[i] = sb.String()
			}
			return out
		}},
	}
}

// serveLoadRung is one measured (mix, arm, concurrency) cell.
type serveLoadRung struct {
	Mix         string  `json:"mix"`
	Arm         string  `json:"arm"`
	FastMath    bool    `json:"fastmath"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
	P99Micros   float64 `json:"p99_us"`
	// SpeedupVsBaseline is RowsPerSec over the baseline arm's at the same
	// (mix, concurrency): the pipeline's win over the pre-pooling path.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// RowsPerPass is the mean shared-kernel-pass size the coalescer formed
	// (coalesced arms only): how many rows each weight-vector reload and
	// block-dispatch setup was amortized across.
	RowsPerPass float64 `json:"rows_per_pass,omitempty"`
	// KernelPasses counts kernel invocations this rung: shared passes plus
	// uncoalesced calls. Coalescing's structural effect is this number
	// falling while rows/s holds.
	KernelPasses uint64 `json:"kernel_passes,omitempty"`
}

// serveLoadReport is the BENCH_7.json document.
type serveLoadReport struct {
	Dim            int `json:"dim"`
	RowsPerRequest int `json:"rows_per_request"`
	DurationMS     int `json:"duration_ms"`
	GoMaxProcs     int `json:"gomaxprocs"`
	// KernelBackend and CPUFeatures make the artifact self-describing: the
	// fastmath arms' numbers depend on which kernel backend dispatch resolved
	// to on the measuring host (exact-tier arms always run the bit-exact
	// loops).
	KernelBackend string          `json:"kernel_backend"`
	CPUFeatures   string          `json:"cpu_features"`
	Notes         []string        `json:"notes"`
	Rungs         []serveLoadRung `json:"rungs"`
	// Phases summarizes where server-side wall time goes, per traced span:
	// optimize/speculate/train/checkpoint from one real training job driven
	// through the serving manager, predict-batch (kernel-pass latency) from
	// the sweep's final coalesced arm.
	Phases map[string]serve.PhaseSummary `json:"phase_summaries,omitempty"`
}

// baselineScore replicates the pre-pooling predict path: a fresh builder and
// detached arena per request, allocating score/label slices — the reference
// the pooled and coalesced arms are measured against.
func baselineScore(mv *serve.ModelVersion, rows []string, instances [][]float64) (int, error) {
	d := len(mv.Model.Weights)
	var mat *data.Matrix
	switch {
	case len(instances) > 0:
		b := data.NewDenseMatrixBuilder(len(instances), d)
		for _, inst := range instances {
			buf, err := b.DenseRowBuffer()
			if err != nil {
				return 0, err
			}
			copy(buf, inst)
			b.CommitDenseRow(0)
		}
		mat = b.Build()
	case strings.ContainsRune(rows[0], ':'): // LIBSVM
		b := data.NewMatrixBuilder(len(rows), 0)
		var idx []int32
		var vals []float64
		for _, line := range rows {
			label, _, oidx, ovals, ok, err := data.ParsePredictLIBSVM(line, idx[:0], vals[:0])
			if err != nil || !ok {
				return 0, fmt.Errorf("serve-load: bad libsvm row %q: %v", line, err)
			}
			idx, vals = oidx, ovals
			if err := b.AppendSparse(label, idx, vals); err != nil {
				return 0, err
			}
		}
		mat = b.Build()
	default: // CSV
		b := data.NewDenseMatrixBuilder(len(rows), d)
		var vals []float64
		for _, line := range rows {
			ovals, ok, err := data.ParsePredictCSV(line, vals[:0])
			if err != nil || !ok {
				return 0, fmt.Errorf("serve-load: bad csv row %q: %v", line, err)
			}
			vals = ovals
			buf, err := b.DenseRowBuffer()
			if err != nil {
				return 0, err
			}
			copy(buf, vals)
			b.CommitDenseRow(0)
		}
		mat = b.Build()
	}
	// Score the way the pre-pooling pipeline did: fresh margin scratch,
	// score/label slices, and response record per call (metrics.ScoresInto
	// now pools its scratch, so the seed behavior is reproduced here).
	n := mat.NumRows()
	scores := make([]float64, n)
	margins := make([]float64, data.DefaultBlockSize)
	for lo := 0; lo < n; lo += data.DefaultBlockSize {
		hi := lo + data.DefaultBlockSize
		if hi > n {
			hi = n
		}
		blk := mat.Block(lo, hi)
		blk.MarginsInto(mv.Model.Weights, margins)
		copy(scores[lo:hi], margins[:hi-lo])
	}
	labels := make([]float64, n)
	for i, s := range scores {
		labels[i] = metrics.PredictScore(mv.Model.Task, s)
	}
	resp := &serve.PredictResponse{
		Model: mv.Name, Version: mv.Version, Task: mv.Model.Task.String(),
		N: n, Labels: labels, Scores: scores,
	}
	return resp.N, nil
}

// runServeRung drives one closed-loop rung: concurrency goroutines each call
// score back-to-back until the clock runs out.
func runServeRung(concurrency int, dur time.Duration, score func(g int) (int, error)) (serveLoadRung, error) {
	lats := make([][]time.Duration, concurrency)
	rows := make([]int, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				n, err := score(g)
				if err != nil {
					errs[g] = err
					return
				}
				lats[g] = append(lats[g], time.Since(t0))
				rows[g] += n
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	total := 0
	for g := 0; g < concurrency; g++ {
		if errs[g] != nil {
			return serveLoadRung{}, errs[g]
		}
		all = append(all, lats[g]...)
		total += rows[g]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i].Nanoseconds()) / 1e3
	}
	return serveLoadRung{
		Concurrency: concurrency,
		Requests:    len(all),
		RowsPerSec:  float64(total) / elapsed.Seconds(),
		P50Micros:   q(0.50),
		P95Micros:   q(0.95),
		P99Micros:   q(0.99),
	}, nil
}

// serveLoadPhases drives one real training job through the serving manager
// in a throwaway state dir and returns its per-phase span summaries
// (optimize, speculate, train, checkpoint) — the training-side complement of
// the predict sweep, so one artifact shows where a served job's wall time
// goes end to end.
func serveLoadPhases() (map[string]serve.PhaseSummary, error) {
	dir, err := os.MkdirTemp("", "ml4all-serve-load-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ds, err := synth.Generate(synth.Spec{
		Name: "serveload-train", Task: data.TaskLogisticRegression,
		N: 4000, D: 32, Density: 1, Noise: 0.1, Margin: 1, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	sys := ml4all.NewSystem()
	sys.RegisterDataset("serveload-train", ds)
	srv, err := serve.New(serve.Config{
		Dir: dir, Pool: 1, System: sys,
		CheckpointEvery: 20 * time.Millisecond,
		Coalesce:        serve.CoalesceConfig{Disabled: true},
		Admission:       serve.AdmissionConfig{Disabled: true},
	})
	if err != nil {
		return nil, err
	}
	j, err := srv.Manager().SubmitJob(
		"m = run logistic on serveload-train having epsilon 0.05, max iter 400;",
		"", serve.SubmitOptions{})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st := j.Status()
		if st.State == serve.JobCompleted {
			break
		}
		if st.State == serve.JobFailed || st.State == serve.JobCancelled {
			return nil, fmt.Errorf("serve-load: phase-summary job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("serve-load: phase-summary job timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	return srv.Counters().PhaseSummaries(), nil
}

// runServeLoad runs the full sweep and writes the report. fastmath adds a
// fast-tier pass of the ladder on the coalesced arm.
func runServeLoad(dur time.Duration, fastmath bool, out string) error {
	mv := &serve.ModelVersion{
		Name: "load", Version: 1,
		Model: &ml4all.Model{
			Name: "load", Task: data.TaskSVM,
			Weights: predictWeights(serveLoadDim),
		},
	}
	report := serveLoadReport{
		Dim:            serveLoadDim,
		RowsPerRequest: serveLoadRows,
		DurationMS:     int(dur.Milliseconds()),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		KernelBackend:  linalg.FastBackend(),
		CPUFeatures:    linalg.CPUFeatures(),
		Notes: []string{
			"closed-loop: each of <concurrency> callers issues its next request the moment the previous answers, so latencies include all queueing the pipeline adds",
			"each rung is the median of 3 back-to-back intervals by rows/s",
			"baseline replicates the pre-pooling request path (fresh builder, margin scratch, score/label/response allocations per call); pooled and coalesced run the Predictor pipeline",
			"kernel_passes and rows_per_pass report the coalescer's structural effect: N small per-request passes collapse into shared dataset-shaped ones",
			"on a GOMAXPROCS=1 host a shared pass cannot overlap caller turnaround, so the coalesced arm's rows/s tracks the direct path; the pass-count collapse is the headroom multi-core hosts convert into throughput",
		},
	}
	fmt.Printf("serving load sweep: %d-d model, %d rows/request, %v per rung, GOMAXPROCS=%d, fast backend %s (cpu: %s)\n",
		serveLoadDim, serveLoadRows, dur, runtime.GOMAXPROCS(0), linalg.FastBackend(), linalg.CPUFeatures())
	fmt.Printf("%-10s %-10s %4s %5s %12s %10s %10s %10s %8s %10s\n",
		"mix", "arm", "fast", "conc", "rows/s", "p50(µs)", "p95(µs)", "p99(µs)", "vs-base", "rows/pass")

	// baselineRate indexes the baseline arm's rows/s by mix and concurrency;
	// the baseline arm runs first, so later arms compute their speedup.
	baselineRate := map[string]float64{}
	key := func(mix string, c int) string { return fmt.Sprintf("%s/%d", mix, c) }

	// Each rung runs serveLoadRepeats back-to-back intervals and reports the
	// median by rows/s (with that interval's latencies and counter deltas) —
	// on a shared host one descheduled interval would otherwise define the
	// cell.
	type repeat struct {
		rung          serveLoadRung
		before, after serve.PredictTotals
	}
	run := func(mix serveLoadMix, arm string, fast bool, c int, score func(g int) (int, error), counters *serve.Counters) error {
		reps := make([]repeat, 0, serveLoadRepeats)
		for i := 0; i < serveLoadRepeats; i++ {
			var rep repeat
			if counters != nil {
				rep.before = counters.PredictTotals()
			}
			r, err := runServeRung(c, dur, score)
			if err != nil {
				return fmt.Errorf("%s/%s c=%d: %w", mix.name, arm, c, err)
			}
			rep.rung = r
			if counters != nil {
				rep.after = counters.PredictTotals()
			}
			reps = append(reps, rep)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].rung.RowsPerSec < reps[j].rung.RowsPerSec })
		sel := reps[len(reps)/2]
		rung, before := sel.rung, sel.before
		rung.Mix, rung.Arm, rung.FastMath = mix.name, arm, fast
		if arm == "baseline" {
			baselineRate[key(mix.name, c)] = rung.RowsPerSec
		} else if base := baselineRate[key(mix.name, c)]; base > 0 {
			rung.SpeedupVsBaseline = rung.RowsPerSec / base
		}
		if counters != nil {
			t := sel.after
			shared := t.CoalescedBatches - before.CoalescedBatches
			sharedRows := t.CoalescedRows - before.CoalescedRows
			calls := t.Batches - before.Batches
			rows := t.Rows - before.Rows
			// Every request is serveLoadRows rows, so the calls served by
			// shared passes are sharedRows/serveLoadRows; the rest scored
			// alone, one pass each.
			alone := calls - sharedRows/uint64(serveLoadRows)
			rung.KernelPasses = shared + alone
			if rung.KernelPasses > 0 {
				rung.RowsPerPass = float64(rows) / float64(rung.KernelPasses)
			}
		}
		report.Rungs = append(report.Rungs, rung)
		extra := fmt.Sprintf("%8s %10s", "-", "-")
		if rung.SpeedupVsBaseline > 0 {
			extra = fmt.Sprintf("%7.2fx %10s", rung.SpeedupVsBaseline, "-")
			if rung.RowsPerPass > 0 {
				extra = fmt.Sprintf("%7.2fx %10.1f", rung.SpeedupVsBaseline, rung.RowsPerPass)
			}
		}
		fmt.Printf("%-10s %-10s %4v %5d %12.0f %10.1f %10.1f %10.1f %s\n",
			mix.name, arm, fast, c, rung.RowsPerSec, rung.P50Micros, rung.P95Micros, rung.P99Micros, extra)
		return nil
	}

	var lastCoalesced *serve.Counters
	for _, mix := range serveLoadMixes() {
		// Pre-built per-goroutine requests: generation cost stays out of the
		// measured loop, and reusing the records keeps the serve arms in
		// their steady state (the scenario pooling exists for).
		maxC := serveLoadLadder[len(serveLoadLadder)-1]
		reqs := make([]*serve.PredictRequest, maxC)
		for g := range reqs {
			reqs[g] = &serve.PredictRequest{}
			if mix.instances != nil {
				reqs[g].Instances = mix.instances(g)
			} else {
				reqs[g].Rows = mix.rows(g)
			}
		}

		arms := []struct {
			name string
			fast bool
		}{{"baseline", false}, {"pooled", false}, {"coalesced", false}}
		if fastmath {
			arms = append(arms, struct {
				name string
				fast bool
			}{"coalesced", true})
		}
		for _, arm := range arms {
			var score func(g int) (int, error)
			var p *serve.Predictor
			var counters *serve.Counters
			switch arm.name {
			case "baseline":
				score = func(g int) (int, error) {
					return baselineScore(mv, reqs[g].Rows, reqs[g].Instances)
				}
			case "pooled":
				counters = serve.NewCounters()
				p = serve.NewPredictor(serve.CoalesceConfig{Disabled: true}, serve.AdmissionConfig{Disabled: true}, counters)
			case "coalesced":
				counters = serve.NewCounters()
				p = serve.NewPredictor(serve.CoalesceConfig{Force: true}, serve.AdmissionConfig{Disabled: true}, counters)
			}
			if p != nil {
				pred, fast := p, arm.fast
				score = func(g int) (int, error) {
					req := reqs[g]
					req.FastMath = fast
					resp := serve.AcquirePredictResponse()
					err := pred.Predict(context.Background(), mv, req, resp)
					n := resp.N
					resp.Release()
					return n, err
				}
			}
			for _, c := range serveLoadLadder {
				if err := run(mix, arm.name, arm.fast, c, score, counters); err != nil {
					return err
				}
			}
			if p != nil {
				p.Close()
			}
			if arm.name == "coalesced" {
				lastCoalesced = counters
			}
		}
	}

	phases, err := serveLoadPhases()
	if err != nil {
		return err
	}
	if lastCoalesced != nil {
		if ps, ok := lastCoalesced.PhaseSummaries()["predict-batch"]; ok {
			phases["predict-batch"] = ps
		}
	}
	report.Phases = phases
	report.Notes = append(report.Notes,
		"phase_summaries: optimize/speculate/train/checkpoint spans from one training job driven through the serving manager; predict-batch is kernel-pass latency from the sweep's final coalesced arm")
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("per-phase spans:")
	for _, name := range names {
		ps := phases[name]
		fmt.Printf("  %-14s count=%-7d p50=%.3fms p99=%.3fms total=%.1fms\n",
			name, ps.Count, ps.P50Seconds*1e3, ps.P99Seconds*1e3, ps.TotalSeconds*1e3)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rungs)\n", out, len(report.Rungs))
	return nil
}
