package main

// The -kernels mode is the SIMD backend's measurement leg: it detects the
// host CPU, measures every fast-tier kernel under each backend the binary
// can execute (exact loops, portable fast-go, and the architecture's SIMD
// backend when dispatch resolves one), runs the engine-level dense/sparse
// ComputePhase pass per backend, and writes a self-describing report
// (BENCH_8.json — see README "SIMD kernel backend"). The engine section also
// records the simulated training time per backend, which is how the report
// pins that planner costing (Sim.CostComputeFast via ActiveFastMathFlopFrac)
// tracks the backend actually executing.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

const (
	kernelRows    = 512 // rows per block-kernel invocation
	kernelDim     = 50  // dense dimensionality (matches the engine bench)
	kernelCSRDim  = 1000
	kernelCSRNNZ  = 25
	kernelRepeats = 5 // intervals per cell; the median is reported
)

// kernelSink defeats dead-code elimination of measured kernel results.
var kernelSink float64

// measureNs times f — one call performing ops unit operations — and returns
// the median ns per unit operation over kernelRepeats back-to-back intervals
// of ~10ms each (medians keep one descheduled interval on a shared box from
// defining the cell).
func measureNs(ops int, f func()) float64 {
	f() // warm caches and page in the code
	t0 := time.Now()
	f()
	per := time.Since(t0)
	iters := int(10*time.Millisecond/(per+1)) + 1
	samples := make([]float64, 0, kernelRepeats)
	for r := 0; r < kernelRepeats; r++ {
		t := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		samples = append(samples, float64(time.Since(t).Nanoseconds())/float64(iters)/float64(ops))
	}
	sort.Float64s(samples)
	return samples[len(samples)/2]
}

// kernelEngineCell is one engine-level ComputePhase measurement.
type kernelEngineCell struct {
	Phase   string  `json:"phase"`   // dense | sparse
	Backend string  `json:"backend"` // exact | fast-go | fast-simd-*
	NsPerOp float64 `json:"ns_per_op"`
	// SimSeconds is the simulated cluster time the run was charged — the
	// planner-facing cost. Fast backends are charged their measured flop
	// fraction (cluster.FastMathFlopFracFor), so this column moving with the
	// backend is the costing contract, measured end to end.
	SimSeconds float64 `json:"sim_seconds"`
	// SpeedupVsExact and SpeedupVsFastGo are wall-clock ratios against the
	// other backends' cells of the same phase (present where they apply).
	SpeedupVsExact  float64 `json:"speedup_vs_exact,omitempty"`
	SpeedupVsFastGo float64 `json:"speedup_vs_fast_go,omitempty"`
}

// kernelBenchReport is the BENCH_8.json document.
type kernelBenchReport struct {
	Host        string   `json:"host"`
	CPUFeatures string   `json:"cpu_features"`
	SIMDBackend string   `json:"simd_backend"` // "none" when dispatch found no kernels
	Backends    []string `json:"backends"`
	// Kernels maps kernel name -> backend -> ns per unit operation (the unit
	// is in the kernel name: op, row, or elem).
	Kernels map[string]map[string]float64 `json:"kernels"`
	Engine  []kernelEngineCell            `json:"engine"`
	// CostModel maps backend -> the flop fraction the simulator charges a
	// fast-tier Compute under that backend (1.0 = the exact tier's rate).
	CostModel map[string]float64 `json:"cost_model_flop_frac"`
	Notes     []string           `json:"notes"`
}

// withBackend runs f with fast-tier dispatch pinned to the named backend.
func withBackend(backend string, f func()) {
	prev := linalg.SetSIMD(backend != linalg.BackendFastGo)
	defer linalg.SetSIMD(prev)
	f()
}

// runKernelBench measures and writes the report.
func runKernelBench(out string) error {
	report := kernelBenchReport{
		Host:        fmt.Sprintf("%s/%s, GOMAXPROCS=%d", runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)),
		CPUFeatures: linalg.CPUFeatures(),
		SIMDBackend: "none",
		Kernels:     map[string]map[string]float64{},
		CostModel:   map[string]float64{},
		Notes: []string{
			"kernel cells are median ns per unit operation over 5 ~10ms intervals; engine cells are median wall ns of 3 full BGD passes over 100k units (the BenchmarkComputePhase* workload)",
			"exact cells run the bit-exact tier (backend dispatch does not apply); fast-go pins the portable loops; the simd backend is runtime-dispatched hand-written assembly",
			"sim_seconds is the simulated cluster cost the planner sees: fast backends are charged cluster.FastMathFlopFracFor(backend) of the exact flop rate, so the column tracks the executing backend",
		},
	}

	fastBackends := []string{linalg.BackendFastGo}
	if linalg.SIMDAvailable() {
		prev := linalg.SetSIMD(true)
		report.SIMDBackend = linalg.FastBackend()
		linalg.SetSIMD(prev)
		fastBackends = append(fastBackends, report.SIMDBackend)
	}
	report.Backends = append([]string{linalg.BackendExact}, fastBackends...)
	for _, b := range fastBackends {
		report.CostModel[b] = cluster.FastMathFlopFracFor(b)
	}
	report.CostModel[linalg.BackendExact] = 1

	fmt.Printf("kernel backend sweep: cpu %s, simd backend %s\n", report.CPUFeatures, report.SIMDBackend)

	// --- Kernel microbenchmarks ---

	rng := rand.New(rand.NewSource(42))
	fill := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		return v
	}
	w := linalg.Vector(fill(kernelDim))
	v := linalg.Vector(fill(kernelDim))
	dense := fill(kernelRows * kernelDim)
	margins := make([]float64, kernelRows)
	coeffs := fill(kernelRows)
	grad := make(linalg.Vector, kernelDim)
	wSparse := linalg.Vector(fill(kernelCSRDim))

	// CSR block: kernelRows rows of kernelCSRNNZ sorted, distinct columns.
	offs := make([]int64, kernelRows+1)
	var indices []int32
	var values []float64
	for r := 0; r < kernelRows; r++ {
		cols := rng.Perm(kernelCSRDim)[:kernelCSRNNZ]
		sort.Ints(cols)
		for _, c := range cols {
			indices = append(indices, int32(c))
			values = append(values, rng.Float64()*2-1)
		}
		offs[r+1] = int64(len(indices))
	}

	expIn := make([]float64, kernelRows)
	expOut := make([]float64, kernelRows)
	for i := range expIn {
		expIn[i] = rng.Float64()*40 - 20
	}

	type kernelSpec struct {
		name  string
		ops   int
		exact func()
		fast  func()
	}
	kernels := []kernelSpec{
		{name: "dot_d50_ns_per_op", ops: 1,
			exact: func() { kernelSink += v.Dot(w) },
			fast:  func() { kernelSink += v.DotFast(w) }},
		{name: "dense_margins_512x50_ns_per_row", ops: kernelRows,
			exact: func() { linalg.DenseMargins(dense, kernelDim, w, margins) },
			fast:  func() { linalg.DenseMarginsFast(dense, kernelDim, w, margins) }},
		{name: "dense_accum_512x50_ns_per_row", ops: kernelRows,
			exact: func() {
				for r := 0; r < kernelRows; r++ {
					grad.AddScaled(coeffs[r], dense[r*kernelDim:(r+1)*kernelDim])
				}
			},
			fast: func() { linalg.DenseAccumFast(grad, dense, kernelDim, coeffs) }},
		{name: "csr_margins_512x25_ns_per_row", ops: kernelRows,
			exact: func() { linalg.CSRMargins(offs, indices, values, wSparse, margins) },
			fast:  func() { linalg.CSRMarginsFast(offs, indices, values, wSparse, margins) }},
		{name: "exp_512_ns_per_elem", ops: kernelRows,
			exact: func() {
				for i, x := range expIn {
					expOut[i] = math.Exp(x)
				}
			},
			fast: func() { linalg.ExpFastVec(expOut, expIn) }},
	}

	for _, k := range kernels {
		cells := map[string]float64{linalg.BackendExact: measureNs(k.ops, k.exact)}
		for _, b := range fastBackends {
			withBackend(b, func() { cells[b] = measureNs(k.ops, k.fast) })
		}
		report.Kernels[k.name] = cells
		fmt.Printf("%-34s", k.name)
		for _, b := range report.Backends {
			fmt.Printf("  %s=%.1f", b, cells[b])
		}
		fmt.Println()
	}

	// --- Engine-level ComputePhase, per backend ---

	for _, kind := range []string{"dense", "sparse"} {
		spec := synth.Spec{
			Name: "kernels-" + kind, Task: data.TaskLogisticRegression,
			N: 100_000, Noise: 0.1, Margin: 1, Seed: 42,
		}
		if kind == "dense" {
			spec.D, spec.Density = 50, 1
		} else {
			spec.D, spec.Density = 1000, 0.05
		}
		ds, err := synth.Generate(spec)
		if err != nil {
			return err
		}
		st, err := storage.Build(ds, storage.DefaultLayout())
		if err != nil {
			return err
		}
		p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-12, MaxIter: 3, Lambda: 0.05}
		cfg := cluster.Default()
		cfg.JitterFrac = 0

		run := func(fast bool) (nsPerOp, simSec float64, err error) {
			samples := make([]float64, 0, 3)
			for i := 0; i < 3; i++ {
				plan := gd.NewBGD(p)
				plan.Looper = gd.FixedIterLooper{}
				sim := cluster.New(cfg)
				t0 := time.Now()
				res, rerr := engine.Run(sim, st, &plan, engine.Options{Seed: 1, Workers: 1, FastMath: fast})
				if rerr != nil {
					return 0, 0, rerr
				}
				if res.Iterations != p.MaxIter {
					return 0, 0, fmt.Errorf("kernels: %s run did %d iterations, want %d", kind, res.Iterations, p.MaxIter)
				}
				samples = append(samples, float64(time.Since(t0).Nanoseconds()))
				simSec = float64(sim.Now())
			}
			sort.Float64s(samples)
			return samples[len(samples)/2], simSec, nil
		}

		var exactNs, fastGoNs float64
		for _, b := range report.Backends {
			cell := kernelEngineCell{Phase: kind, Backend: b}
			var err error
			if b == linalg.BackendExact {
				cell.NsPerOp, cell.SimSeconds, err = run(false)
			} else {
				withBackend(b, func() {
					cell.NsPerOp, cell.SimSeconds, err = run(true)
				})
			}
			if err != nil {
				return err
			}
			switch b {
			case linalg.BackendExact:
				exactNs = cell.NsPerOp
			case linalg.BackendFastGo:
				fastGoNs = cell.NsPerOp
				cell.SpeedupVsExact = exactNs / cell.NsPerOp
			default:
				cell.SpeedupVsExact = exactNs / cell.NsPerOp
				cell.SpeedupVsFastGo = fastGoNs / cell.NsPerOp
			}
			report.Engine = append(report.Engine, cell)
			fmt.Printf("engine %-6s %-16s %12.0f ns/op  sim %.2fs", kind, b, cell.NsPerOp, cell.SimSeconds)
			if cell.SpeedupVsExact > 0 {
				fmt.Printf("  %.2fx vs exact", cell.SpeedupVsExact)
			}
			if cell.SpeedupVsFastGo > 0 {
				fmt.Printf("  %.2fx vs fast-go", cell.SpeedupVsFastGo)
			}
			fmt.Println()
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
