package main

// The -predict mode benchmarks serving-side prediction throughput: the
// batched path (blocked margin kernels over the columnar arena, what
// POST /v1/models/{name}/predict executes) against the per-row reference
// (one Row view + Dot call per unit). Results feed BENCH_5.json.

import (
	"fmt"
	"time"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
	"ml4all/internal/metrics"
	"ml4all/internal/synth"
)

// predictCase is one dataset shape the sweep scores.
type predictCase struct {
	name string
	spec synth.Spec
}

func predictCases(scale int) []predictCase {
	n := 6400000 / scale // 100k rows at the reference -scale 64
	if n < 1000 {
		n = 1000
	}
	return []predictCase{
		{"dense-d50", synth.Spec{
			Name: "predict-dense", Task: data.TaskLogisticRegression,
			N: n, D: 50, Density: 1, Noise: 0.1, Margin: 1, Seed: 3,
		}},
		{"sparse-d1000-5pct", synth.Spec{
			Name: "predict-sparse", Task: data.TaskSVM,
			N: n, D: 1000, Density: 0.05, Noise: 0.1, Margin: 1, Seed: 3,
		}},
	}
}

// predictWeights builds a deterministic model vector — throughput does not
// depend on the values, only the dimensionality.
func predictWeights(d int) linalg.Vector {
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = float64(i%13)/13 - 0.5
	}
	return w
}

// timeRows runs fn (which scores all n rows once) until at least minWall has
// elapsed and returns the best per-pass rate in rows/second.
func timeRows(n int, minWall time.Duration, fn func()) float64 {
	fn() // warm caches
	best := 0.0
	for elapsed := time.Duration(0); elapsed < minWall; {
		start := time.Now()
		fn()
		d := time.Since(start)
		elapsed += d
		if rate := float64(n) / d.Seconds(); rate > best {
			best = rate
		}
	}
	return best
}

// runPredictBench prints the batched-vs-per-row prediction throughput table;
// with fastmath it adds a column for the fast-tier scoring path
// (metrics.ScoresIntoFast), whose raw scores agree with the exact column only
// to the fast tier's relative tolerance.
func runPredictBench(scale int, fastmath bool) error {
	fmt.Println("prediction throughput: batched block kernels vs per-row Dot")
	header := fmt.Sprintf("%-22s %10s %14s %14s %8s", "dataset", "rows", "per-row/s", "batched/s", "speedup")
	if fastmath {
		header += fmt.Sprintf(" %14s %8s", "fast/s", "speedup")
	}
	fmt.Println(header)
	const minWall = 300 * time.Millisecond
	for _, c := range predictCases(scale) {
		ds, err := synth.Generate(c.spec)
		if err != nil {
			return err
		}
		w := predictWeights(ds.NumFeatures)
		task := ds.Task
		n := ds.N()
		out := make([]float64, n)

		perRow := timeRows(n, minWall, func() {
			for i := 0; i < n; i++ {
				out[i] = metrics.Predict(task, w, ds.Mat.Row(i))
			}
		})
		ref := append([]float64(nil), out...)
		batched := timeRows(n, minWall, func() {
			metrics.PredictInto(task, w, ds.Mat, out)
		})
		for i := range out {
			if out[i] != ref[i] {
				return fmt.Errorf("%s: batched prediction diverges from per-row at row %d", c.name, i)
			}
		}
		line := fmt.Sprintf("%-22s %10d %14.0f %14.0f %7.2fx", c.name, n, perRow, batched, batched/perRow)
		if fastmath {
			fast := timeRows(n, minWall, func() {
				metrics.ScoresIntoFast(w, ds.Mat, out)
			})
			line += fmt.Sprintf(" %14.0f %7.2fx", fast, fast/perRow)
		}
		fmt.Println(line)
	}
	return nil
}
