// Command ml4all-bench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	ml4all-bench -list
//	ml4all-bench -exp fig8
//	ml4all-bench -exp all -scale 64        # reference scale, paper-magnitude times
//	ml4all-bench -exp fig9 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ml4all/internal/experiments"
)

func main() {
	// All work happens in run so that deferred profile flushes execute on
	// every exit path — os.Exit here, after run returns, skips no defers.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	scale := flag.Int("scale", experiments.DefaultScale, "dataset scale divisor (64 = paper-magnitude times)")
	quick := flag.Bool("quick", false, "restrict sweeps to a representative subset")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS, 1 = serial; results are identical, only wall time changes)")
	adaptive := flag.Bool("adaptive", false, "train the optimizer's chosen plan with mid-flight re-optimization where experiments support it (fig8; the 'adaptive' experiment always adapts)")
	fastmath := flag.Bool("fastmath", false, "run engine executions on the opt-in fast kernel tier (tolerance-bounded results; with -predict, adds the fast-tier scoring column)")
	predict := flag.Bool("predict", false, "benchmark batched vs per-row prediction throughput (the serving path) instead of running experiments")
	serveLoad := flag.Bool("serve-load", false, "run the closed-loop serving load sweep (concurrency ladder × request mixes × baseline/pooled/coalesced arms; with -fastmath, adds a fast-tier coalesced pass)")
	serveDur := flag.Duration("serve-duration", 300*time.Millisecond, "wall time per -serve-load rung")
	serveOut := flag.String("serve-out", "BENCH_7.json", "output path for the -serve-load report")
	kernels := flag.Bool("kernels", false, "measure fast-tier kernel and engine throughput per backend (exact / fast-go / runtime-dispatched SIMD) and write a self-describing report")
	kernelsOut := flag.String("kernels-out", "BENCH_8.json", "output path for the -kernels report")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile to this file after the runs")
	flag.Parse()

	if *list || (*exp == "" && !*predict && !*serveLoad && !*kernels) {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		if *exp == "" {
			return 2
		}
		return 0
	}

	// Profiling hooks so hot-path regressions (the blocked compute kernels
	// in particular) are diagnosable on any experiment without editing code.
	// The deferred flushes run even when an experiment fails, so a partial
	// CPU profile of the failing run survives:
	//
	//	ml4all-bench -exp fig7a -cpuprofile cpu.out -memprofile mem.out
	//	go tool pprof cpu.out
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush pending frees so the profile shows live + allocated truthfully
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			}
		}()
	}

	if *predict {
		if err := runPredictBench(*scale, *fastmath); err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			return 1
		}
		return 0
	}
	if *serveLoad {
		if err := runServeLoad(*serveDur, *fastmath, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			return 1
		}
		return 0
	}
	if *kernels {
		if err := runKernelBench(*kernelsOut); err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			return 1
		}
		return 0
	}

	cfg := experiments.Config{Scale: *scale, Quick: *quick, Seed: *seed, Workers: *workers, Adaptive: *adaptive, FastMath: *fastmath}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4all-bench: %s: %v\n", id, err)
			return 1
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			return 1
		}
		fmt.Printf("(%s finished in %.1fs wall)\n\n", id, time.Since(start).Seconds())
	}
	return 0
}
