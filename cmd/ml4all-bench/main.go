// Command ml4all-bench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	ml4all-bench -list
//	ml4all-bench -exp fig8
//	ml4all-bench -exp all -scale 64        # reference scale, paper-magnitude times
//	ml4all-bench -exp fig9 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ml4all/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	scale := flag.Int("scale", experiments.DefaultScale, "dataset scale divisor (64 = paper-magnitude times)")
	quick := flag.Bool("quick", false, "restrict sweeps to a representative subset")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS, 1 = serial; results are identical, only wall time changes)")
	adaptive := flag.Bool("adaptive", false, "train the optimizer's chosen plan with mid-flight re-optimization where experiments support it (fig8; the 'adaptive' experiment always adapts)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Quick: *quick, Seed: *seed, Workers: *workers, Adaptive: *adaptive}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ml4all-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ml4all-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %.1fs wall)\n\n", id, time.Since(start).Seconds())
	}
}
