// Command ml4all executes declarative GD queries end-to-end: it loads the
// referenced datasets, runs the cost-based optimizer, trains with the chosen
// plan on the simulated cluster, and reports the model, plan and (simulated)
// training time.
//
// Usage:
//
//	ml4all -q 'run classification on train.txt having epsilon 0.01;'
//	ml4all -f script.mlq -explain
//	echo 'Q1 = run svm() on data.txt; persist Q1 on model.txt;' | ml4all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ml4all"
)

func main() {
	query := flag.String("q", "", "query string to execute")
	file := flag.String("f", "", "file holding a query script")
	explain := flag.Bool("explain", false, "print the full ranked plan space per query")
	flag.Parse()

	src, err := querySource(*query, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ml4all:", err)
		os.Exit(2)
	}

	sys := ml4all.NewSystem()
	outs, err := sys.Exec(src)
	for _, out := range outs {
		printOutput(sys, out, *explain)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ml4all:", err)
		os.Exit(1)
	}
}

func querySource(q, f string) (string, error) {
	switch {
	case q != "" && f != "":
		return "", fmt.Errorf("use -q or -f, not both")
	case q != "":
		return q, nil
	case f != "":
		b, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		return string(b), nil
	default:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		if len(b) == 0 {
			return "", fmt.Errorf("no query given (-q, -f, or stdin)")
		}
		return string(b), nil
	}
}

func printOutput(sys *ml4all.System, out ml4all.Output, explain bool) {
	switch {
	case out.Model != nil:
		m := out.Model
		fmt.Printf("model %s: task=%s plan=%s iterations=%d converged=%v train_time=%.1fs (simulated)\n",
			m.Name, m.Task, m.PlanName, m.Iterations, m.Converged, float64(m.TrainTime))
		if explain {
			fmt.Println("  (use the library API's Optimize for the full ranked plan space)")
		}
	case out.Report != nil:
		fmt.Printf("prediction: n=%d mse=%.4f accuracy=%.3f\n",
			out.Report.N, out.Report.MSE, out.Report.Accuracy)
	case out.Path != "":
		fmt.Printf("persisted model to %s\n", out.Path)
	}
}
