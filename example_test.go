package ml4all_test

import (
	"fmt"

	"ml4all"
	"ml4all/internal/synth"
)

// Example demonstrates the optimizer end to end: generate a dataset, rank
// the eleven GD plans, and check the decision's structure. Training times
// are simulated cluster seconds; plan choice, iteration estimates and
// numerics are real.
func Example() {
	spec, err := synth.ByName("covtype", 1024) // tiny stand-in, instant
	if err != nil {
		panic(err)
	}
	ds := synth.MustGenerate(spec)

	sys := ml4all.NewSystem()
	sys.Estimator.SampleSize = 200
	sys.Estimator.TimeBudget = 2

	dec, err := sys.Optimize(ds, ml4all.Params{
		Task:      ds.Task,
		Format:    ds.Format,
		Lambda:    0.01,
		Tolerance: 0.01,
		MaxIter:   500,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("plans ranked:", len(dec.Ranked))
	fmt.Println("algorithms speculated:", len(dec.Estimates))
	fmt.Println("chosen plan uses sampling:", dec.Best.Plan.Sampling != 0 || dec.Best.Plan.Algorithm.String() == "BGD")
	// Output:
	// plans ranked: 11
	// algorithms speculated: 3
	// chosen plan uses sampling: true
}
