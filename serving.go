package ml4all

import (
	"fmt"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/lang"
	"ml4all/internal/metrics"
	"ml4all/internal/obs"
	"ml4all/internal/planner"
	"ml4all/internal/storage"
)

// This file exports the hooks the online serving subsystem (internal/serve)
// drives: a resumable, cancellable training-job handle over one declarative
// run statement, and a predict-on-rows API for trained models. The job path
// is the same code Exec's run statements execute through (runQuery is a loop
// over an open TrainJob), so a job driven to completion by the server is
// bit-identical to the offline Train path — same plan choice, same weights,
// same simulated clock.

// JobOptions tune how an opened TrainJob executes.
type JobOptions struct {
	// Interrupt, when non-nil, is polled at the top of every Step
	// (engine.Options.Interrupt): a non-nil return aborts that Step with an
	// error wrapping engine.ErrInterrupted and the returned cause, leaving
	// the job checkpointable and resumable. The serving layer wires a
	// context's Err here so in-flight jobs cancel between iterations.
	Interrupt func() error

	// FastMath opts the job into the tolerance-bounded fast kernel tier
	// (engine.Options.FastMath). The job's effective tier is the OR of this
	// option, the statement's `having fastmath` knob and the system default
	// — and must be identical at OpenJob and ResumeJob time for a resumed
	// run to be meaningful, which is why the serving layer persists it in
	// the job manifest next to the script.
	FastMath bool

	// Observer, when non-nil, receives per-iteration telemetry
	// (engine.Options.Observer). nil keeps the engine's zero-overhead path;
	// observed and unobserved runs are bit-identical.
	Observer engine.Observer

	// Trace, when non-nil, collects named spans around the job's phases:
	// OpenJob/ResumeJob record an "optimize" span over the cost-based
	// optimizer with one "speculate" child per speculated algorithm. The
	// serving layer adds its own train/checkpoint/recover spans on the same
	// trace. nil records nothing.
	Trace *obs.Trace
}

// TrainJob is a resumable handle on one declarative training statement: the
// statement is bound and costed up front (the cost-based optimizer picks the
// plan), then the caller drives the plan one iteration at a time with Step,
// checkpointing, cancelling, or inspecting progress between iterations.
type TrainJob struct {
	stmt    *lang.Run
	ds      *data.Dataset
	params  Params
	sim     *cluster.Sim
	store   *storage.Store
	plan    gd.Plan
	dec     *Decision
	trainer *engine.Trainer
}

// JobProgress is a point-in-time view of a job's training state.
type JobProgress struct {
	PlanName   string
	Iteration  int
	FinalDelta float64
	Done       bool
	Converged  bool
	Diverged   bool
	TrainTime  Seconds // simulated clock, speculation included
}

// OpenJob binds a parsed run statement to the system's catalogs, runs the
// cost-based optimizer over the eleven-plan space (narrowed by any using
// directives, gated by any time constraint) and returns a TrainJob positioned
// before its first iteration. Adaptive statements are rejected: mid-flight
// re-optimization owns plan selection for the whole run and executes through
// TrainAdaptive, not a resumable job.
func (s *System) OpenJob(q *lang.Run, jo JobOptions) (*TrainJob, error) {
	if q.Adaptive {
		return nil, fmt.Errorf("ml4all: adaptive run statements execute through TrainAdaptive, not a resumable job")
	}
	j, dec, err := s.costJob(q, jo)
	if err != nil {
		return nil, err
	}
	choice, err := applyUsing(dec, q)
	if err != nil {
		return nil, err
	}
	if q.Time > 0 {
		budget := Seconds(q.Time.Seconds())
		if choice.Cost > budget {
			return nil, fmt.Errorf(
				"ml4all: cannot satisfy time constraint %s: best plan %s needs an estimated %.1fs; revisit the time constraint",
				q.Time, choice.Plan.Name(), float64(choice.Cost))
		}
	}
	j.plan = choice.Plan
	j.trainer, err = engine.NewTrainer(j.sim, j.store, &j.plan, s.jobEngineOptions(q, jo))
	if err != nil {
		return nil, err
	}
	return j, nil
}

// ResumeJob reopens a job from a checkpoint taken by TrainJob.Checkpoint: the
// statement is re-bound and re-costed exactly as OpenJob does (the optimizer
// is deterministic, so this reproduces the original plan space), the
// checkpointed plan is looked up in the ranked space by name, and the trainer
// is restored to the snapshot — clock, RNG position, weights and all — so the
// resumed run is bit-identical to one that was never stopped. The statement
// and the system configuration must be the ones the checkpoint was taken
// under, which is why the serving layer persists the job's script next to its
// checkpoint.
func (s *System) ResumeJob(q *lang.Run, state []byte, jo JobOptions) (*TrainJob, error) {
	if q.Adaptive {
		return nil, fmt.Errorf("ml4all: adaptive run statements execute through TrainAdaptive, not a resumable job")
	}
	st, err := engine.DecodeTrainState(state)
	if err != nil {
		return nil, err
	}
	j, dec, err := s.costJob(q, jo)
	if err != nil {
		return nil, err
	}
	found := false
	for _, c := range dec.Ranked {
		if c.Plan.Name() == st.PlanName {
			j.plan = c.Plan
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("ml4all: checkpoint plan %s not in the statement's plan space — script or configuration changed since the checkpoint", st.PlanName)
	}
	j.trainer, err = engine.Resume(j.sim, j.store, &j.plan, s.jobEngineOptions(q, jo), st)
	if err != nil {
		return nil, err
	}
	return j, nil
}

// costJob performs the shared front half of OpenJob and ResumeJob: resolve
// the data source, bind parameters, lay out the store, and run the cost-based
// optimizer on a fresh simulated timeline.
func (s *System) costJob(q *lang.Run, jo JobOptions) (*TrainJob, *Decision, error) {
	if len(q.Sources) == 0 {
		return nil, nil, fmt.Errorf("ml4all: run without a data source")
	}
	ds, err := s.resolveSource(q)
	if err != nil {
		return nil, nil, err
	}
	p, err := bindParams(q, ds)
	if err != nil {
		return nil, nil, err
	}
	sim := cluster.New(s.Cluster)
	stn, err := storage.Build(ds, s.Layout)
	if err != nil {
		return nil, nil, err
	}
	popts := planner.Options{Estimator: s.estimatorConfig(), FastMath: s.jobFastMath(q, jo)}
	optimize := -1
	if jo.Trace != nil {
		optimize = jo.Trace.Start("optimize", -1)
		popts.Span = func(name string) func() {
			id := jo.Trace.Start(name, optimize)
			return func() { jo.Trace.End(id) }
		}
	}
	dec, err := planner.Choose(sim, stn, p, popts)
	jo.Trace.End(optimize)
	if err != nil {
		return nil, nil, err
	}
	return &TrainJob{stmt: q, ds: ds, params: p, sim: sim, store: stn, dec: dec}, dec, nil
}

// jobFastMath resolves a job's effective kernel tier: the statement's
// `having fastmath` knob, the job option, or the system default — any one
// opts in. Costing (costJob) and execution (jobEngineOptions) both consult
// it, so the optimizer prices the tier the trainer will run.
func (s *System) jobFastMath(q *lang.Run, jo JobOptions) bool {
	return s.FastMath || q.FastMath || jo.FastMath
}

// jobEngineOptions maps system settings plus job options onto the engine's.
func (s *System) jobEngineOptions(q *lang.Run, jo JobOptions) engine.Options {
	return engine.Options{Seed: s.Cluster.Seed, Workers: s.Workers, FastMath: s.jobFastMath(q, jo), Interrupt: jo.Interrupt, Observer: jo.Observer}
}

// Step executes exactly one plan iteration (engine.Trainer.Step).
func (j *TrainJob) Step() error { return j.trainer.Step() }

// Done reports whether the run has terminated.
func (j *TrainJob) Done() bool { return j.trainer.Done() }

// Iteration returns the number of iterations executed so far.
func (j *TrainJob) Iteration() int { return j.trainer.Iteration() }

// PlanName names the physical plan the optimizer chose for this job.
func (j *TrainJob) PlanName() string { return j.plan.Name() }

// Deltas returns the per-iteration convergence deltas observed so far
// (live; callers must not modify — see engine.Trainer.Deltas).
func (j *TrainJob) Deltas() []float64 { return j.trainer.Deltas() }

// Tolerance returns the chosen plan's convergence tolerance εd, the target
// the live-progress ETA projects down to.
func (j *TrainJob) Tolerance() float64 { return j.plan.Tolerance }

// Decision returns the optimizer's costed choice for this job.
func (j *TrainJob) Decision() *Decision { return j.dec }

// Dataset returns the dataset the job trains on.
func (j *TrainJob) Dataset() *data.Dataset { return j.ds }

// Checkpoint serializes the job's full training state (engine.TrainState,
// gob-encoded): everything a fresh process needs to ResumeJob bit-identically.
func (j *TrainJob) Checkpoint() ([]byte, error) {
	st, err := j.trainer.Checkpoint()
	if err != nil {
		return nil, err
	}
	return st.Encode()
}

// Progress returns a point-in-time view of the job.
func (j *TrainJob) Progress() JobProgress {
	res := j.trainer.Finish()
	return JobProgress{
		PlanName:   j.plan.Name(),
		Iteration:  res.Iterations,
		FinalDelta: res.FinalDelta,
		Done:       j.trainer.Done(),
		Converged:  res.Converged,
		Diverged:   res.Diverged,
		TrainTime:  j.sim.Now(),
	}
}

// Model assembles the trained model as of the current state. Name is the
// statement's assigned query name, possibly empty — callers (runQuery, the
// model registry) apply their own naming. TrainTime is the job's full
// simulated clock, speculation overhead included, matching Train.
func (j *TrainJob) Model() *Model {
	res := j.trainer.Finish()
	return &Model{
		Name:       j.stmt.Result,
		Task:       j.ds.Task,
		Weights:    res.Weights,
		PlanName:   j.plan.Name(),
		Iterations: res.Iterations,
		TrainTime:  j.sim.Now(),
		Converged:  res.Converged,
	}
}

// ScoreMatrix computes the raw margin <row, weights> for every row of mat
// through the blocked margin kernels — the predict-on-rows hook the serving
// layer's prediction service evaluates requests with. It validates the
// request's dimensionality up front: sparse rows must not index at or beyond
// the model dimension, dense rows must match it exactly.
func (m *Model) ScoreMatrix(mat *data.Matrix) ([]float64, error) {
	if err := m.checkDims(mat); err != nil {
		return nil, err
	}
	out := make([]float64, mat.NumRows())
	metrics.ScoresInto(m.Weights, mat, out)
	return out, nil
}

// PredictMatrix returns the label the model assigns to every row of mat: the
// raw score for regression models, its sign (±1) for classification.
func (m *Model) PredictMatrix(mat *data.Matrix) ([]float64, error) {
	if err := m.checkDims(mat); err != nil {
		return nil, err
	}
	out := make([]float64, mat.NumRows())
	metrics.PredictInto(m.Task, m.Weights, mat, out)
	return out, nil
}

// checkDims validates that every row of mat fits the model's dimension.
func (m *Model) checkDims(mat *data.Matrix) error {
	d := len(m.Weights)
	if mat.IsDense() && mat.NumRows() > 0 && mat.Stride() != d {
		return fmt.Errorf("ml4all: dense rows have %d features, model %q has %d", mat.Stride(), m.Name, d)
	}
	if !mat.IsDense() && mat.MaxIndex() >= d {
		return fmt.Errorf("ml4all: row references feature %d, model %q has %d", mat.MaxIndex(), m.Name, d)
	}
	return nil
}
