// Quickstart: generate a small classification dataset, let the cost-based
// optimizer pick a GD plan, train, and evaluate — the five-minute tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"ml4all"
	"ml4all/internal/synth"
)

func main() {
	// A synthetic stand-in for the paper's covtype dataset (Table 2),
	// scaled to run instantly.
	spec, err := synth.ByName("covtype", 256)
	if err != nil {
		log.Fatal(err)
	}
	ds := synth.MustGenerate(spec)
	train, test := ds.Split(0.8, 1)

	sys := ml4all.NewSystem()
	sys.RegisterDataset("covtype", train)

	// Ask the optimizer which of the eleven GD plans is cheapest for
	// tolerance 0.01.
	params := ml4all.Params{
		Task:      train.Task,
		Format:    train.Format,
		Lambda:    0.01,
		Tolerance: 0.01,
		MaxIter:   1000,
	}
	dec, err := sys.Optimize(train, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer chose %s (estimated %d iterations, %.1fs)\n",
		dec.Best.Plan.Name(), dec.Best.Iterations, float64(dec.Best.Cost))
	fmt.Println("full ranking:")
	for _, line := range ml4all.RankedPlanNames(dec) {
		fmt.Println("  ", line)
	}

	// Train with the chosen plan and evaluate on the held-out split.
	res, err := sys.Execute(train, dec.Best.Plan)
	if err != nil {
		log.Fatal(err)
	}
	model := &ml4all.Model{
		Name: "quickstart", Task: train.Task, Weights: res.Weights,
		PlanName: res.PlanName, Iterations: res.Iterations, TrainTime: res.Time,
	}
	rep, err := sys.Evaluate(model, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %d iterations, %.1fs simulated cluster time\n", res.Iterations, float64(res.Time))
	fmt.Printf("test accuracy %.3f, MSE %.3f on %d points\n", rep.Accuracy, rep.MSE, rep.N)

	// The same thing, declaratively: datasets registered on the System are
	// addressable by name in queries.
	out, err := sys.Exec(`Q1 = run logistic() on covtype having epsilon 0.01, max iter 500 using algorithm BGD;`)
	if err != nil {
		log.Fatal(err)
	}
	m := out[0].Model
	fmt.Printf("declarative run: plan=%s iterations=%d time=%.1fs\n",
		m.PlanName, m.Iterations, float64(m.TrainTime))
}
