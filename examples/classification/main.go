// Large-scale classification: the paper's headline scenario — SVM over a
// dense dataset that dwarfs the cluster cache (the svm3 regime) — showing
// why plan choice matters: the optimizer's pick against the plan a
// rule-of-thumb user might hard-code, and against the MLlib-style baseline.
package main

import (
	"fmt"
	"log"

	"ml4all"
	"ml4all/internal/baselines"
	"ml4all/internal/gd"
	"ml4all/internal/synth"
)

func main() {
	// svm3 at 1/1024 scale: still larger than the proportionally scaled
	// cluster cache, so full scans hit disk every pass.
	spec, err := synth.ByName("svm3", 1024)
	if err != nil {
		log.Fatal(err)
	}
	ds := synth.MustGenerate(spec)
	fmt.Printf("dataset %s: %d points × %d features, %.1f MB\n",
		ds.Name, ds.N(), ds.NumFeatures, float64(ds.SizeBytes())/(1<<20))

	sys := ml4all.NewSystem()
	// Shrink the simulated cache in proportion so the dataset overflows it,
	// as the paper's 160 GB svm3 overflowed the 80 GB Spark cache.
	sys.Cluster.CacheBytes = ds.SizeBytes() / 3

	params := ml4all.Params{
		Task:      ds.Task,
		Format:    ds.Format,
		Tolerance: 0.001,
		MaxIter:   1000,
	}

	res, dec, err := sys.Train(ds, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer chose %s: %d iterations, %.1fs total (including %.1fs speculation)\n",
		dec.Best.Plan.Name(), res.Iterations, float64(res.Time), float64(dec.SpecTime))

	// The rule-of-thumb plan ("SGD is always fastest, Bernoulli sampling is
	// standard"): eager transformation + Bernoulli sampling.
	naive := gd.NewSGD(params, gd.Eager, gd.Bernoulli)
	naive.Tolerance, naive.MaxIter = 0.001, 1000
	naiveRes, err := sys.Execute(ds, naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule-of-thumb %s: %.1fs (%.0fx slower)\n",
		naive.Name(), float64(naiveRes.Time), float64(naiveRes.Time/res.Time))

	// And the MLlib-style system baseline.
	mlCfg := sys.Cluster
	ml, err := baselines.RunMLlib(mlCfg, ds, params, gd.SGD, baselines.DefaultMLlib(),
		baselines.Options{Layout: sys.Layout, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MLlib-style SGD: %.1fs (%.0fx slower)\n",
		float64(ml.Time), float64(ml.Time/res.Time))

}
