// Declarative workflow: write datasets to disk, then drive everything —
// training, persisting, predicting — through the paper's query language
// (Appendix A), exactly as the ml4all CLI would.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "ml4all-declarative")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Materialize a LIBSVM training file and a test file on disk, the way a
	// user of the CLI would have them.
	spec, err := synth.ByName("adult", 256)
	if err != nil {
		log.Fatal(err)
	}
	ds := synth.MustGenerate(spec)
	train, test := ds.Split(0.8, 7)
	trainPath := filepath.Join(dir, "train.libsvm")
	testPath := filepath.Join(dir, "test.libsvm")
	modelPath := filepath.Join(dir, "model.txt")
	for path, d := range map[string]*data.Dataset{trainPath: train, testPath: test} {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := data.WriteMatrix(f, d.Mat); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	// A three-statement script: train, persist, predict. The system loads
	// the datasets from disk, sniffs the format, runs the optimizer, trains
	// with the chosen plan, and evaluates.
	script := fmt.Sprintf(`
		Q1 = run logistic() on %s having epsilon 0.01, max iter 800;
		persist Q1 on %s;
		result = predict on %s with %s;
	`, trainPath, modelPath, testPath, modelPath)

	sys := ml4all.NewSystem()
	outs, err := sys.Exec(script)
	if err != nil {
		log.Fatal(err)
	}

	m := outs[0].Model
	fmt.Printf("trained %s: plan=%s iterations=%d converged=%v time=%.1fs\n",
		m.Name, m.PlanName, m.Iterations, m.Converged, float64(m.TrainTime))
	fmt.Printf("persisted to %s\n", outs[1].Path)
	rep := outs[2].Report
	fmt.Printf("prediction on held-out data: n=%d mse=%.3f accuracy=%.3f\n",
		rep.N, rep.MSE, rep.Accuracy)

	// Advanced users can pin optimizer choices with the using clause.
	out2, err := sys.Exec(fmt.Sprintf(
		`Q2 = run logistic() on %s having epsilon 0.01, max iter 300 using algorithm MGD, sampler shuffle(), step 1;`,
		trainPath))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned run: plan=%s iterations=%d\n", out2[0].Model.PlanName, out2[0].Model.Iterations)
}
