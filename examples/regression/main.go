// Regression workload: the paper's yearpred scenario (linear regression on
// dense data) end to end — optimizer decision, training, residual check, and
// a comparison of what each GD algorithm would have cost.
package main

import (
	"fmt"
	"log"
	"math"

	"ml4all"
	"ml4all/internal/gd"
	"ml4all/internal/metrics"
	"ml4all/internal/synth"
)

func main() {
	spec, err := synth.ByName("yearpred", 256)
	if err != nil {
		log.Fatal(err)
	}
	ds := synth.MustGenerate(spec)
	train, test := ds.Split(0.8, 3)

	sys := ml4all.NewSystem()
	params := ml4all.Params{
		Task:      train.Task,
		Format:    train.Format,
		Tolerance: 0.001,
		MaxIter:   1000,
	}

	dec, err := sys.Optimize(train, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %s, estimated %d iterations, %.1fs\n",
		dec.Best.Plan.Name(), dec.Best.Iterations, float64(dec.Best.Cost))

	res, err := sys.Execute(train, dec.Best.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d iterations, converged=%v, %.1fs simulated\n",
		res.Iterations, res.Converged, float64(res.Time))

	// Residual analysis on held-out data.
	var sse, sst, mean float64
	for _, u := range test.Rows() {
		mean += u.Label
	}
	mean /= float64(test.N())
	for _, u := range test.Rows() {
		pred := metrics.Predict(train.Task, res.Weights, u)
		sse += (pred - u.Label) * (pred - u.Label)
		sst += (u.Label - mean) * (u.Label - mean)
	}
	r2 := 1 - sse/sst
	fmt.Printf("test RMSE %.4f, R² %.4f over %d points\n",
		math.Sqrt(sse/float64(test.N())), r2, test.N())

	// What would the other algorithms have cost? The decision's ranking
	// holds every plan in the space.
	fmt.Println("per-algorithm best plans:")
	seen := map[gd.Algo]bool{}
	for _, c := range dec.Ranked {
		if seen[c.Plan.Algorithm] {
			continue
		}
		seen[c.Plan.Algorithm] = true
		fmt.Printf("  %-20s estimated %7.1fs (%d iterations)\n",
			c.Plan.Name(), float64(c.Cost), c.Iterations)
	}
}
