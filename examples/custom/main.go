// Custom operators: the paper's Appendix C variants — SVRG and BGD with
// backtracking line search — expressed through the seven-operator
// abstraction, plus a fully custom user-defined Compute operator (a Huber
// gradient), trained with the same engine the optimizer uses.
package main

import (
	"fmt"
	"log"
	"math"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func main() {
	ds := synth.MustGenerate(synth.Spec{
		Name: "custom-demo", Task: data.TaskLinearRegression,
		N: 4000, D: 30, Density: 1, Noise: 0.1, Margin: 2, Seed: 21,
	})
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 200}

	run := func(label string, plan gd.Plan) *engine.Result {
		sim := cluster.New(cluster.Default())
		res, err := engine.Run(sim, st, &plan, engine.Options{Seed: 4})
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		obj := gradients.Objective(gradients.LeastSquares{}, gradients.L2{}, res.Weights, ds.Rows())
		fmt.Printf("%-22s iterations=%4d converged=%-5v objective=%.5f time=%6.1fs\n",
			label, res.Iterations, res.Converged, obj, float64(res.Time))
		return res
	}

	// The three stock algorithms...
	for _, algo := range []gd.Algo{gd.BGD, gd.MGD, gd.SGD} {
		plan, err := gd.ForAlgo(p, algo)
		if err != nil {
			log.Fatal(err)
		}
		run(algo.String(), plan)
	}

	// ...the Appendix C accelerations...
	run("SVRG(m=20)", gd.NewSVRG(p, 20))
	run("BGD+line-search", gd.NewLineSearchBGD(p, 0.5))

	// ...and a fully custom Compute operator: Huber-loss gradient, robust to
	// the outliers we inject below. Expert users override exactly one
	// operator; everything else (sampling, placement, costing) is reused.
	for i := 0; i < ds.N(); i += 97 {
		ds.Mat.SetLabel(i, ds.Mat.Label(i)+50) // corrupt ~1% of labels
	}
	huberPlan := gd.NewBGD(p)
	huberPlan.Computer = huberComputer{delta: 1.0}
	res := run("BGD+custom-huber", huberPlan)

	lsq := gd.NewBGD(p)
	resLSQ, err2 := engine.Run(cluster.New(cluster.Default()), st, &lsq, engine.Options{Seed: 4})
	if err2 != nil {
		log.Fatal(err2)
	}
	fmt.Printf("\nunder 1%% label corruption, Huber weights drift %.3f from truth-fit vs %.3f for least squares\n",
		res.Weights.DistL2(cleanFit(ds)), resLSQ.Weights.DistL2(cleanFit(ds)))
}

// huberComputer is a user-defined Compute operator (paper Section 4: "expert
// users could readily customize or override them").
type huberComputer struct{ delta float64 }

// Compute implements gd.Computer: the Huber gradient.
func (h huberComputer) Compute(u data.Row, ctx *gd.Context, acc linalg.Vector) {
	r := u.Dot(ctx.Weights) - u.Label
	switch {
	case math.Abs(r) <= h.delta:
		u.AddScaledInto(acc, 2*r)
	case r > 0:
		u.AddScaledInto(acc, 2*h.delta)
	default:
		u.AddScaledInto(acc, -2*h.delta)
	}
}

// AccDim implements gd.Computer.
func (huberComputer) AccDim(d int) int { return d }

// Ops implements gd.Computer.
func (huberComputer) Ops(nnz int) float64 { return float64(2*nnz) + 4 }

// cleanFit approximates the noise-free model by a few hundred BGD steps on
// uncorrupted data regenerated from the same seed.
func cleanFit(ds *data.Dataset) linalg.Vector {
	clean := synth.MustGenerate(synth.Spec{
		Name: "clean", Task: data.TaskLinearRegression,
		N: 4000, D: 30, Density: 1, Noise: 0.1, Margin: 2, Seed: 21,
	})
	w := linalg.NewVector(clean.NumFeatures)
	grad := linalg.NewVector(clean.NumFeatures)
	for i := 1; i <= 300; i++ {
		gradients.MeanGradient(gradients.LeastSquares{}, gradients.L2{}, w, clean.Rows(), grad)
		w.AddScaled(-1/math.Sqrt(float64(i)), grad)
	}
	return w
}
