package ml4all

// One benchmark per table and figure of the paper's evaluation (and per
// DESIGN.md extra ablation), each delegating to the corresponding experiment
// runner. Benchmarks use the Quick sweeps and the default 1/256 harness
// scale so `go test -bench=. -benchmem` finishes in minutes; run
// `ml4all-bench -exp <id> -scale 64` for the full, paper-magnitude versions.
//
// Reported custom metrics: sim_s/op is the simulated cluster time the
// experiment's runs consumed (wall time measures the simulator; sim time is
// what the paper's figures plot).

import (
	"testing"

	"ml4all/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig1Motivation(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig6Iterations(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7aCostPerIteration(b *testing.B) { benchExperiment(b, "fig7a") }
func BenchmarkFig7bTotalCost(b *testing.B)        { benchExperiment(b, "fig7b") }
func BenchmarkFig8Effectiveness(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9Systems(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10Scalability(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11Abstraction(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12Accuracy(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkFig13SamplingMGD(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14Transform(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15CurveFitSteps(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16CurveFitDatasets(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17SamplingSGD(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18TransformRandom(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkTable2Datasets(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable4ChosenPlans(b *testing.B)     { benchExperiment(b, "table4") }

func BenchmarkAblationSpeculationBudget(b *testing.B) { benchExperiment(b, "ablation-speculation") }
func BenchmarkAblationPlacement(b *testing.B)         { benchExperiment(b, "ablation-placement") }
func BenchmarkAblationTuner(b *testing.B)             { benchExperiment(b, "ablation-tuner") }
