package ml4all

// One benchmark per table and figure of the paper's evaluation (and per
// DESIGN.md extra ablation), each delegating to the corresponding experiment
// runner. Benchmarks use the Quick sweeps and the default 1/256 harness
// scale so `go test -bench=. -benchmem` finishes in minutes; run
// `ml4all-bench -exp <id> -scale 64` for the full, paper-magnitude versions.
//
// Reported custom metrics: sim_s/op is the simulated cluster time the
// experiment's runs consumed (wall time measures the simulator; sim time is
// what the paper's figures plot).

import (
	"fmt"
	"sync"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/experiments"
	"ml4all/internal/gd"
	"ml4all/internal/planner"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig1Motivation(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig6Iterations(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7aCostPerIteration(b *testing.B) { benchExperiment(b, "fig7a") }
func BenchmarkFig7bTotalCost(b *testing.B)        { benchExperiment(b, "fig7b") }
func BenchmarkFig8Effectiveness(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9Systems(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10Scalability(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11Abstraction(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12Accuracy(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkFig13SamplingMGD(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14Transform(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15CurveFitSteps(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16CurveFitDatasets(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17SamplingSGD(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18TransformRandom(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkTable2Datasets(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable4ChosenPlans(b *testing.B)     { benchExperiment(b, "table4") }

func BenchmarkAblationSpeculationBudget(b *testing.B) { benchExperiment(b, "ablation-speculation") }
func BenchmarkAblationPlacement(b *testing.B)         { benchExperiment(b, "ablation-placement") }
func BenchmarkAblationTuner(b *testing.B)             { benchExperiment(b, "ablation-tuner") }

// --- Compute hot path: serial vs parallel ---
//
// These benchmarks measure the real (wall-clock) cost of the per-iteration
// Compute phase on the partitioned executor at different worker counts, over
// a dataset large enough (100k units) for the pool to matter. Results are
// bit-identical across the sweep — see DESIGN.md — so the only thing moving
// is the wall time; the speedup from workers=1 to workers=N is the number
// the parallel-executor refactor exists for. Run with
// `go test -bench=ComputePhase -benchtime=3x` for a quick read.

var (
	benchDatasets sync.Map // kind -> *data.Dataset
	benchWorkers  = []int{1, 2, 4, 8}
)

func computeBenchDataset(b *testing.B, kind string) *data.Dataset {
	b.Helper()
	if ds, ok := benchDatasets.Load(kind); ok {
		return ds.(*data.Dataset)
	}
	spec := synth.Spec{
		Name: "bench-" + kind, Task: data.TaskLogisticRegression,
		N: 100_000, Noise: 0.1, Margin: 1, Seed: 42,
	}
	switch kind {
	case "dense":
		spec.D, spec.Density = 50, 1
	case "sparse":
		spec.D, spec.Density = 1000, 0.05
	default:
		b.Fatalf("unknown bench dataset kind %q", kind)
	}
	ds, err := synth.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchDatasets.Store(kind, ds)
	return ds
}

func benchComputePhase(b *testing.B, kind string, workers int, fast bool) {
	ds := computeBenchDataset(b, kind)
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		b.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-12, MaxIter: 3, Lambda: 0.05}
	plan := gd.NewBGD(p)
	plan.Looper = gd.FixedIterLooper{} // exactly MaxIter full Compute passes
	cfg := cluster.Default()
	cfg.JitterFrac = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := cluster.New(cfg)
		res, err := engine.Run(sim, st, &plan, engine.Options{Seed: 1, Workers: workers, FastMath: fast})
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations != p.MaxIter {
			b.Fatalf("expected %d iterations, got %d", p.MaxIter, res.Iterations)
		}
	}
	b.ReportMetric(float64(p.MaxIter*ds.N()*b.N)/b.Elapsed().Seconds(), "units/s")
}

// --- Trainer lifecycle ---

// BenchmarkTrainerStep measures the per-Step cost of the resumable trainer
// on a sampled plan (MGD eager+shuffle, batch 1000): one Sample + Compute +
// Update + Converge round trip per op, steady state. This is the loop the
// adaptive controller drives, so Step overhead is pure controller tax.
func BenchmarkTrainerStep(b *testing.B) {
	ds := computeBenchDataset(b, "dense")
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		b.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-12, MaxIter: 1 << 30, Lambda: 0.05}
	plan := gd.NewMGD(p, gd.Eager, gd.ShuffledPartition)
	plan.Looper = gd.FixedIterLooper{} // never stops inside the timed loop
	cfg := cluster.Default()
	cfg.JitterFrac = 0
	tr, err := engine.NewTrainer(cluster.New(cfg), st, &plan, engine.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkTrainerCheckpoint measures a Checkpoint + Encode round trip taken
// mid-run — the cost of making a training run durable.
func BenchmarkTrainerCheckpoint(b *testing.B) {
	ds := computeBenchDataset(b, "dense")
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		b.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-12, MaxIter: 1 << 30, Lambda: 0.05}
	plan := gd.NewMGD(p, gd.Eager, gd.ShuffledPartition)
	plan.Looper = gd.FixedIterLooper{}
	cfg := cluster.Default()
	cfg.JitterFrac = 0
	tr, err := engine.NewTrainer(cluster.New(cfg), st, &plan, engine.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var bytes int
	for i := 0; i < b.N; i++ {
		cp, err := tr.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		enc, err := cp.Encode()
		if err != nil {
			b.Fatal(err)
		}
		bytes = len(enc)
	}
	b.ReportMetric(float64(bytes), "state_bytes")
}

// BenchmarkAdaptiveVsStatic is the end-to-end comparison under the skewed
// speculation scenario (see internal/experiments/adaptive.go): "static" runs
// the optimizer's chosen plan uninterrupted, "adaptive" runs the same choice
// under the mid-flight re-optimization controller. The sim_s metric is the
// simulated training time — the quantity the adaptive controller exists to
// cut; at this benchmark's quick scale the statically-chosen plan misses the
// tolerance entirely while the adaptive run converges.
func BenchmarkAdaptiveVsStatic(b *testing.B) {
	spec := synth.Spec{
		Name: "bench-adaptive", Task: data.TaskLogisticRegression,
		N: 19531, D: 40, Density: 0.6, Noise: 0.6, Margin: 0.5, Seed: 1,
	}
	ds, err := synth.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		b.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Lambda: 0.01, Tolerance: 2e-4, MaxIter: 4000}
	est := estimator.Config{SampleSize: 1000, SpecTolerance: 0.1, TimeBudget: 3, Seed: 1}

	b.Run("static", func(b *testing.B) {
		var sim cluster.Seconds
		for i := 0; i < b.N; i++ {
			cl := cluster.New(cluster.Default())
			dec, err := planner.Choose(cl, st, p, planner.Options{Estimator: est})
			if err != nil {
				b.Fatal(err)
			}
			plan := dec.Best.Plan
			if _, err := engine.Run(cl, st, &plan, engine.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
			sim = cl.Now()
		}
		b.ReportMetric(float64(sim), "sim_s")
	})
	b.Run("adaptive", func(b *testing.B) {
		var sim cluster.Seconds
		for i := 0; i < b.N; i++ {
			cl := cluster.New(cluster.Default())
			ar, err := planner.RunAdaptive(cl, st, p, planner.Options{Estimator: est},
				planner.AdaptiveConfig{Every: 50, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if !ar.Result.Converged {
				b.Fatal("adaptive run missed tolerance")
			}
			sim = cl.Now()
		}
		b.ReportMetric(float64(sim), "sim_s")
	})
}

func BenchmarkAdaptiveReoptimization(b *testing.B) { benchExperiment(b, "adaptive") }

func BenchmarkComputePhaseDense(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchComputePhase(b, "dense", w, false) })
	}
}

func BenchmarkComputePhaseSparse(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchComputePhase(b, "sparse", w, false) })
	}
}

// Fast-math tier counterparts of the ComputePhase benchmarks: the same
// training passes through the multi-accumulator kernels. The dense ratio of
// these against the exact benchmarks above is the measurement behind
// cluster.FastMathFlopFrac (see internal/cluster/calibration.go); re-run both
// and update the constant's table if the ratio moved.
func BenchmarkComputePhaseDenseFast(b *testing.B) {
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchComputePhase(b, "dense", w, true) })
	}
}

func BenchmarkComputePhaseSparseFast(b *testing.B) {
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchComputePhase(b, "sparse", w, true) })
	}
}
