package ml4all

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/synth"
)

func testSystem() *System {
	sys := NewSystem()
	// Tame the estimator so facade tests stay fast.
	sys.Estimator.SampleSize = 300
	sys.Estimator.TimeBudget = 2
	sys.Estimator.Seed = 1
	return sys
}

func testDataset(t *testing.T, name string, n int) *data.Dataset {
	t.Helper()
	spec, err := synth.ByName(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		spec.N = n
	}
	return synth.MustGenerate(spec)
}

func TestOptimizeAndExecute(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "covtype", 2000)
	p := Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 300, Lambda: 0.01}

	dec, err := sys.Optimize(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Ranked) != 11 {
		t.Fatalf("ranked %d plans, want 11", len(dec.Ranked))
	}
	res, err := sys.Execute(ds, dec.Best.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || !res.Weights.IsFinite() {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestTrainIncludesOptimizerOverhead(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "covtype", 2000)
	p := Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 100, Lambda: 0.01}

	res, dec, err := sys.Train(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SpecTime <= 0 {
		t.Fatal("no speculation time recorded")
	}
	if res.Time <= dec.SpecTime {
		t.Fatalf("total %.2fs does not include speculation %.2fs plus training", res.Time, dec.SpecTime)
	}
}

func TestTrainAdaptive(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "covtype", 2000)
	p := Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 300, Lambda: 0.01}

	ar, err := sys.TrainAdaptive(ds, p, AdaptiveConfig{Every: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Result == nil || ar.Decision == nil {
		t.Fatalf("incomplete adaptive outcome: %+v", ar)
	}
	if ar.Result.Iterations == 0 || !ar.Result.Weights.IsFinite() {
		t.Fatalf("bad adaptive result: %+v", ar.Result)
	}
	if len(ar.Plans) == 0 || ar.Plans[0] != ar.Decision.Best.Plan.Name() {
		t.Fatalf("plan chain %v does not start at the optimizer's choice %s",
			ar.Plans, ar.Decision.Best.Plan.Name())
	}
	if ar.Result.Time <= ar.Decision.SpecTime {
		t.Fatalf("total %.2fs does not include speculation %.2fs plus training",
			ar.Result.Time, ar.Decision.SpecTime)
	}
}

func TestExecAdaptiveKnob(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "covtype", 2000)
	sys.RegisterDataset("train.txt", ds)

	outs, err := sys.Exec(`Q1 = run classification on train.txt having epsilon 0.01, max iter 200, adaptive;`)
	if err != nil {
		t.Fatal(err)
	}
	m := outs[0].Model
	if m == nil || m.Name != "Q1" || len(m.Weights) != ds.NumFeatures {
		t.Fatalf("model = %+v", m)
	}
	if m.Iterations == 0 || m.TrainTime <= 0 {
		t.Fatalf("adaptive run produced no training: %+v", m)
	}

	// Adaptive rejects directives that pin the physical plan.
	if _, err := sys.Exec(`run classification on train.txt having adaptive using algorithm SGD;`); err == nil {
		t.Fatal("adaptive + using algorithm accepted")
	}
	if _, err := sys.Exec(`run classification on train.txt having time 1h, adaptive;`); err == nil {
		t.Fatal("adaptive + time constraint accepted")
	}
}

func TestExecEndToEnd(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "adult", 0)
	train, test := ds.Split(0.8, 1)
	sys.RegisterDataset("train.txt", train)
	sys.RegisterDataset("test.txt", test)

	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.txt")

	outs, err := sys.Exec(`
		Q1 = run logistic() on train.txt having epsilon 0.01, max iter 200;
		persist Q1 on ` + modelPath + `;
		r = predict on test.txt with ` + modelPath + `;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(outs))
	}
	m := outs[0].Model
	if m == nil || m.Name != "Q1" || len(m.Weights) != ds.NumFeatures {
		t.Fatalf("model = %+v", m)
	}
	if outs[1].Path != modelPath {
		t.Fatalf("persist path = %q", outs[1].Path)
	}
	rep := outs[2].Report
	if rep == nil || rep.N != test.N() {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Accuracy < 0.5 {
		t.Fatalf("trained model no better than chance: accuracy %.3f", rep.Accuracy)
	}
}

func TestExecUsingClausePinsAlgorithm(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "covtype", 1500)
	sys.RegisterDataset("d", ds)
	outs, err := sys.Exec(`run logistic() on d having max iter 50 using algorithm BGD;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].Model.PlanName; got != "BGD" {
		t.Fatalf("plan = %q, want BGD", got)
	}
	// Sampler pinning.
	outs, err = sys.Exec(`run logistic() on d having max iter 50 using algorithm MGD, sampler bernoulli();`)
	if err != nil {
		t.Fatal(err)
	}
	if got := outs[0].Model.PlanName; !strings.Contains(got, "bernoulli") {
		t.Fatalf("plan = %q, want a bernoulli plan", got)
	}
}

func TestExecTimeConstraintViolation(t *testing.T) {
	sys := testSystem()
	ds := testDataset(t, "covtype", 2000)
	sys.RegisterDataset("d", ds)
	// One simulated millisecond is never enough; the optimizer must refuse
	// and tell the user which constraint to revisit.
	_, err := sys.Exec(`run logistic() on d having time 1ms, epsilon 0.01;`)
	if err == nil || !strings.Contains(err.Error(), "time constraint") {
		t.Fatalf("err = %v, want time-constraint refusal", err)
	}
}

func TestExecErrors(t *testing.T) {
	sys := testSystem()
	cases := []string{
		`run classification on missing_file.txt;`,  // unknown dataset
		`persist nope on m.txt;`,                   // unknown model
		`r = predict on x.txt with missing.model;`, // unknown model file
		`run wibble() on d;`,                       // unknown gradient
	}
	for _, q := range cases {
		if _, err := sys.Exec(q); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestSaveLoadModelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.txt")
	m := &Model{
		Name: "Q1", Task: data.TaskLogisticRegression,
		Weights: []float64{0.25, -1.5, 3e-7}, PlanName: "SGD-lazy-shuffle", Iterations: 42,
	}
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != m.Task || got.PlanName != m.PlanName {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Weights) != 3 {
		t.Fatalf("weights = %v", got.Weights)
	}
	for i := range m.Weights {
		if got.Weights[i] != m.Weights[i] {
			t.Fatalf("weight %d: %g != %g", i, got.Weights[i], m.Weights[i])
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel("/nonexistent/model.txt"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# header only\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(empty); err == nil {
		t.Error("weightless file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bad); err == nil {
		t.Error("garbage weights accepted")
	}
}

func TestLoadDatasetSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	libsvm := filepath.Join(dir, "a.libsvm")
	if err := os.WriteFile(libsvm, []byte("1 1:0.5 2:0.25\n-1 3:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "b.csv")
	if err := os.WriteFile(csv, []byte("1,0.5,0.25\n-1,0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys := testSystem()
	dsA, err := sys.LoadDataset(libsvm, data.TaskSVM)
	if err != nil {
		t.Fatal(err)
	}
	if dsA.Format != data.FormatLIBSVM || dsA.N() != 2 {
		t.Fatalf("libsvm load: %+v", dsA.Stats())
	}
	dsB, err := sys.LoadDataset(csv, data.TaskSVM)
	if err != nil {
		t.Fatal(err)
	}
	if dsB.Format != data.FormatCSV || dsB.NumFeatures != 2 {
		t.Fatalf("csv load: %+v", dsB.Stats())
	}
}

func TestColumnSpecQueries(t *testing.T) {
	dir := t.TempDir()
	// Columns: junk, label, junk, f1, f2 (1-based: label=2, features 4-5).
	path := filepath.Join(dir, "cols.csv")
	content := "9,1,8,0.5,1.5\n9,-1,8,-0.5,-1.5\n9,1,8,0.25,0.75\n9,-1,8,-0.25,-0.75\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sys := testSystem()
	outs, err := sys.Exec(`Q = run svm() on ` + path + `:2, ` + path + `:4-5 having max iter 50;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(outs[0].Model.Weights); got != 2 {
		t.Fatalf("model dimensionality = %d, want 2 (columns 4-5)", got)
	}
}
