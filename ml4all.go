// Package ml4all is the public face of the library: a cost-based optimizer
// for gradient-descent optimization, reproducing Kaoudi et al., SIGMOD 2017.
//
// A System holds the simulated cluster configuration and a catalog of
// datasets and models. Users either submit declarative queries:
//
//	sys := ml4all.NewSystem()
//	sys.RegisterDataset("train.txt", ds)
//	out, err := sys.Exec(`run classification on train.txt having epsilon 0.01, max iter 1000;`)
//
// or drive the optimizer programmatically:
//
//	dec, err := sys.Optimize(ds, gd.Params{Task: ds.Task, Tolerance: 0.01})
//	res, err := sys.Execute(ds, dec.Best.Plan)
//
// Training time is simulated cluster time (the substrate is a deterministic
// cluster simulator; see DESIGN.md); convergence, iteration counts and model
// accuracy are real.
package ml4all

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/lang"
	"ml4all/internal/linalg"
	"ml4all/internal/metrics"
	"ml4all/internal/planner"
	"ml4all/internal/step"
	"ml4all/internal/storage"
)

// Re-exported aliases so callers need only this package for common use.
type (
	// Dataset is a parsed dataset handle.
	Dataset = data.Dataset
	// Params are the task-level training knobs.
	Params = gd.Params
	// Plan is one physical GD plan.
	Plan = gd.Plan
	// Decision is the optimizer's costed choice.
	Decision = planner.Decision
	// Result is one plan execution's outcome.
	Result = engine.Result
	// Report is a test-set evaluation.
	Report = metrics.Report
	// Seconds is simulated cluster time.
	Seconds = cluster.Seconds
	// AdaptiveConfig tunes mid-flight re-optimization (TrainAdaptive).
	AdaptiveConfig = planner.AdaptiveConfig
	// AdaptiveResult is an adaptive training run's outcome.
	AdaptiveResult = planner.AdaptiveResult
)

// System is a configured ML4all instance: cluster + storage layout +
// estimator settings + catalogs.
type System struct {
	Cluster   cluster.Config
	Layout    storage.Layout
	Estimator estimator.Config

	// Workers sizes the engine's real worker pool for the numeric training
	// phases (Compute — including line-search loss passes — and eager
	// Transform); it also covers the optimizer's speculation runs unless
	// Estimator.Workers pins its own. Evaluate stays serial. 0 means
	// GOMAXPROCS; 1 forces serial execution. Training results are
	// bit-identical for every value — only wall-clock speed changes;
	// simulated cluster time is charged the same either way. See DESIGN.md.
	Workers int

	// FastMath opts every run into the tolerance-bounded fast kernel tier
	// (engine.Options.FastMath; see DESIGN.md §10): multi-accumulator
	// margins, fused gradient accumulation, polynomial sigmoid. Training is
	// faster but results agree with the default bit-exact tier only within
	// documented epsilon bounds; the optimizer prices plans at the fast
	// tier's measured throughput. Individual statements can opt in without
	// flipping the system default via `having fastmath`.
	FastMath bool

	datasets map[string]*data.Dataset
	models   map[string]*Model
}

// NewSystem returns a System on the default simulated cluster.
func NewSystem() *System {
	return &System{
		Cluster:  cluster.Default(),
		Layout:   storage.DefaultLayout(),
		datasets: map[string]*data.Dataset{},
		models:   map[string]*Model{},
	}
}

// Model is a trained model plus its provenance.
type Model struct {
	Name       string
	Task       data.TaskKind
	Weights    linalg.Vector
	PlanName   string
	Iterations int
	TrainTime  Seconds
	Converged  bool
}

// RegisterDataset makes ds addressable by name/path in queries.
func (s *System) RegisterDataset(name string, ds *data.Dataset) {
	s.datasets[name] = ds
}

// Dataset returns a registered dataset.
func (s *System) Dataset(name string) (*data.Dataset, bool) {
	ds, ok := s.datasets[name]
	return ds, ok
}

// Model returns a trained model by query name.
func (s *System) Model(name string) (*Model, bool) {
	m, ok := s.models[name]
	return m, ok
}

// LoadDataset reads a dataset file from disk, registers it under its path
// and returns it. Format is guessed from content unless forced via spec.
func (s *System) LoadDataset(path string, task data.TaskKind) (*data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	format, err := sniffFormat(path)
	if err != nil {
		return nil, err
	}
	m, err := data.ReadMatrix(f, format)
	if err != nil {
		return nil, fmt.Errorf("ml4all: loading %s: %w", path, err)
	}
	ds := data.FromMatrix(path, task, m)
	ds.Format = format
	s.RegisterDataset(path, ds)
	return ds, nil
}

// sniffFormat decides LIBSVM vs CSV from the first non-blank line.
func sniffFormat(path string) (data.Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return data.FormatLIBSVM, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.ContainsRune(line, ':') {
			return data.FormatLIBSVM, nil
		}
		return data.FormatCSV, nil
	}
	return data.FormatLIBSVM, sc.Err()
}

// Optimize runs the cost-based optimizer (speculation + costing of the
// eleven-plan space) and returns its decision. The returned decision's
// SpecTime is the simulated optimization overhead.
func (s *System) Optimize(ds *data.Dataset, p Params) (*Decision, error) {
	sim := cluster.New(s.Cluster)
	st, err := storage.Build(ds, s.Layout)
	if err != nil {
		return nil, err
	}
	return planner.Choose(sim, st, p, planner.Options{Estimator: s.estimatorConfig(), FastMath: s.FastMath})
}

// estimatorConfig returns the estimator settings with the system's worker
// pool applied when the estimator does not pin its own, so a Workers: 1
// escape hatch (stateful UDFs) covers speculation runs too.
func (s *System) estimatorConfig() estimator.Config {
	cfg := s.Estimator
	if cfg.Workers == 0 {
		cfg.Workers = s.Workers
	}
	return cfg
}

// Execute runs one plan to completion and returns its result.
func (s *System) Execute(ds *data.Dataset, plan Plan) (*Result, error) {
	sim := cluster.New(s.Cluster)
	st, err := storage.Build(ds, s.Layout)
	if err != nil {
		return nil, err
	}
	return engine.Run(sim, st, &plan, engine.Options{Seed: s.Cluster.Seed, Workers: s.Workers, FastMath: s.FastMath})
}

// Train optimizes and executes in one timeline: the returned result's Time
// includes the optimizer's speculation overhead, matching how Figure 8
// accounts for it. The store is laid out once and shared by optimization and
// execution — same dataset, same layout, one Build.
func (s *System) Train(ds *data.Dataset, p Params) (*Result, *Decision, error) {
	sim := cluster.New(s.Cluster)
	st, err := storage.Build(ds, s.Layout)
	if err != nil {
		return nil, nil, err
	}
	dec, err := planner.Choose(sim, st, p, planner.Options{Estimator: s.estimatorConfig(), FastMath: s.FastMath})
	if err != nil {
		return nil, nil, err
	}
	plan := dec.Best.Plan
	res, err := engine.Run(sim, st, &plan, engine.Options{Seed: s.Cluster.Seed, Workers: s.Workers, FastMath: s.FastMath})
	if err != nil {
		return nil, nil, err
	}
	res.Time = sim.Now() // optimization + training on one clock
	return res, dec, nil
}

// TrainAdaptive is Train with mid-flight re-optimization: the optimizer's
// chosen plan starts, and every AdaptiveConfig.Every iterations the
// controller re-fits the iteration estimate on the observed convergence
// deltas and switches plans when the re-costing projects the remaining work
// to be cheaper elsewhere (weights and step-size schedule carry across; the
// switch overhead is charged to the simulated clock like a fresh job init).
// The returned Result.Time includes the speculation overhead, like Train.
func (s *System) TrainAdaptive(ds *data.Dataset, p Params, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	sim := cluster.New(s.Cluster)
	st, err := storage.Build(ds, s.Layout)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.Cluster.Seed
	}
	if cfg.Workers == 0 {
		cfg.Workers = s.Workers
	}
	if s.FastMath {
		cfg.FastMath = true
	}
	ar, err := planner.RunAdaptive(sim, st, p, planner.Options{Estimator: s.estimatorConfig(), FastMath: cfg.FastMath}, cfg)
	if err != nil {
		return nil, err
	}
	ar.Result.Time = sim.Now() // optimization + training on one clock
	return ar, nil
}

// Evaluate scores a model on a test dataset.
func (s *System) Evaluate(m *Model, test *data.Dataset) (Report, error) {
	return metrics.Evaluate(m.Task, m.Weights, test)
}

// Output is what one executed statement produced.
type Output struct {
	Stmt   lang.Stmt
	Model  *Model  // run statements
	Report *Report // predict statements
	Path   string  // persist statements
}

// Exec parses and executes a script of declarative statements against the
// system's catalogs.
func (s *System) Exec(script string) ([]Output, error) {
	stmts, err := lang.Parse(script)
	if err != nil {
		return nil, err
	}
	var outs []Output
	for i, st := range stmts {
		out, err := s.execStmt(st)
		if err != nil {
			// Execution errors carry the statement's ordinal and source
			// position, so a failure in a multi-statement script (or a
			// server-submitted job) points back into the submitted text the
			// way parse errors already do.
			return outs, fmt.Errorf("ml4all: statement %d at %s: %w", i+1, st.At(), err)
		}
		outs = append(outs, out)
	}
	return outs, nil
}

func (s *System) execStmt(st lang.Stmt) (Output, error) {
	switch q := st.(type) {
	case *lang.Run:
		m, err := s.runQuery(q)
		if err != nil {
			return Output{}, err
		}
		return Output{Stmt: st, Model: m}, nil
	case *lang.Persist:
		m, ok := s.models[q.Model]
		if !ok {
			return Output{}, fmt.Errorf("ml4all: persist: unknown model %q", q.Model)
		}
		if err := SaveModel(q.Path, m); err != nil {
			return Output{}, err
		}
		return Output{Stmt: st, Path: q.Path}, nil
	case *lang.Predict:
		rep, err := s.predictQuery(q)
		if err != nil {
			return Output{}, err
		}
		return Output{Stmt: st, Report: &rep}, nil
	default:
		return Output{}, fmt.Errorf("ml4all: unsupported statement %T", st)
	}
}

// runQuery binds a parsed run statement to datasets/operators and trains. It
// is a loop over the resumable TrainJob the serving subsystem drives (see
// serving.go), so offline Exec and a server-submitted job execute the exact
// same path — same plan choice, same weights, same simulated clock.
func (s *System) runQuery(q *lang.Run) (*Model, error) {
	if q.Adaptive {
		if len(q.Sources) == 0 {
			return nil, fmt.Errorf("ml4all: run without a data source")
		}
		ds, err := s.resolveSource(q)
		if err != nil {
			return nil, err
		}
		p, err := bindParams(q, ds)
		if err != nil {
			return nil, err
		}
		sim := cluster.New(s.Cluster)
		stn, err := storage.Build(ds, s.Layout)
		if err != nil {
			return nil, err
		}
		return s.runAdaptiveQuery(q, ds, sim, stn, p)
	}

	j, err := s.OpenJob(q, JobOptions{})
	if err != nil {
		return nil, err
	}
	for !j.Done() {
		if err := j.Step(); err != nil {
			return nil, err
		}
	}
	m := j.Model()
	if m.Name == "" {
		m.Name = fmt.Sprintf("q%d", len(s.models)+1)
	}
	s.models[m.Name] = m
	return m, nil
}

// runAdaptiveQuery executes a run statement under mid-flight
// re-optimization. The adaptive controller owns plan selection for the whole
// run, so using-directives that pin the physical plan and up-front time
// constraints (which gate on a single static estimate) are rejected.
func (s *System) runAdaptiveQuery(q *lang.Run, ds *data.Dataset, sim *cluster.Sim, stn *storage.Store, p Params) (*Model, error) {
	if q.Algorithm != "" || q.Sampler != "" {
		return nil, fmt.Errorf("ml4all: adaptive cannot be combined with using algorithm/sampler — the controller picks plans at runtime")
	}
	if q.Time > 0 {
		return nil, fmt.Errorf("ml4all: adaptive cannot be combined with a time constraint")
	}
	cfg := AdaptiveConfig{Seed: s.Cluster.Seed, Workers: s.Workers, FastMath: s.FastMath || q.FastMath}
	ar, err := planner.RunAdaptive(sim, stn, p, planner.Options{Estimator: s.estimatorConfig(), FastMath: cfg.FastMath}, cfg)
	if err != nil {
		return nil, err
	}
	name := q.Result
	if name == "" {
		name = fmt.Sprintf("q%d", len(s.models)+1)
	}
	m := &Model{
		Name:       name,
		Task:       ds.Task,
		Weights:    ar.Result.Weights,
		PlanName:   ar.Result.PlanName,
		Iterations: ar.Result.Iterations,
		TrainTime:  sim.Now(),
		Converged:  ar.Result.Converged,
	}
	s.models[name] = m
	return m, nil
}

// resolveSource loads/returns the dataset a run statement references,
// applying any column specification.
func (s *System) resolveSource(q *lang.Run) (*data.Dataset, error) {
	path := q.Sources[0].Path
	ds, ok := s.datasets[path]
	if !ok {
		loaded, err := s.LoadDataset(path, taskKind(q, data.TaskSVM))
		if err != nil {
			return nil, fmt.Errorf("ml4all: dataset %q not registered and not loadable: %w", path, err)
		}
		ds = loaded
	}
	// A column specification re-parses the raw lines under the spec.
	if q.Sources[0].Lo != 0 {
		spec := data.ColumnSpec{LabelCol: q.Sources[0].Lo}
		if len(q.Sources) > 1 {
			spec.FeatLo, spec.FeatHi = q.Sources[1].Lo, q.Sources[1].Hi
		}
		units := make([]data.Unit, 0, ds.N())
		for i, raw := range ds.Raw {
			u, ok, err := data.ParseCSVColumns(raw, spec)
			if err != nil {
				return nil, fmt.Errorf("ml4all: %s line %d: %w", path, i+1, err)
			}
			if ok {
				units = append(units, u)
			}
		}
		cds := data.FromUnits(ds.Name+specString(spec), ds.Task, units)
		cds.Format = data.FormatCSV
		return cds, nil
	}
	return ds, nil
}

// String renders the spec as a cache-key suffix.
func specString(c data.ColumnSpec) string {
	return fmt.Sprintf("#%d:%d-%d", c.LabelCol, c.FeatLo, c.FeatHi)
}

// taskKind maps the query's task word onto a TaskKind, defaulting to the
// dataset's own task when the word is generic.
func taskKind(q *lang.Run, fallback data.TaskKind) data.TaskKind {
	switch strings.ToLower(q.Task) {
	case "regression", "leastsquares", "linear", "linreg":
		return data.TaskLinearRegression
	case "logistic", "logr":
		return data.TaskLogisticRegression
	case "svm", "hinge":
		return data.TaskSVM
	default:
		return fallback
	}
}

// bindParams translates the parsed statement into gd.Params.
func bindParams(q *lang.Run, ds *data.Dataset) (Params, error) {
	p := Params{Task: ds.Task, Format: ds.Format}
	switch strings.ToLower(q.Task) {
	case "classification":
		p.Task = ds.Task
		if ds.Task == data.TaskLinearRegression {
			p.Task = data.TaskSVM
		}
	case "regression":
		p.Task = data.TaskLinearRegression
	case "svm", "hinge":
		p.Task = data.TaskSVM
		p.Gradient = gradients.Hinge{}
	case "logistic", "logr":
		p.Task = data.TaskLogisticRegression
		p.Gradient = gradients.Logistic{}
	case "leastsquares", "linear", "linreg":
		p.Task = data.TaskLinearRegression
		p.Gradient = gradients.LeastSquares{}
	default:
		return p, fmt.Errorf("ml4all: unknown task or gradient function %q", q.Task)
	}
	if q.Epsilon > 0 {
		p.Tolerance = q.Epsilon
	}
	if q.MaxIter > 0 {
		p.MaxIter = q.MaxIter
	}
	if q.HasStep {
		p.Step = step.InvSqrt{Beta: q.Step}
	}
	switch strings.ToLower(q.Convergence) {
	case "":
	case "l1", "cnvg":
		p.Converger = gd.L1Converger{}
	case "l2":
		p.Converger = gd.L2Converger{}
	default:
		return p, fmt.Errorf("ml4all: unknown convergence function %q", q.Convergence)
	}
	return p, nil
}

// applyUsing narrows the optimizer's decision by the statement's using
// directives (algorithm, sampler): the optimizer still picks the cheapest
// plan inside the narrowed space, which is how Section 8.4 uses ML4all to
// pick the best physical plan for a fixed algorithm.
func applyUsing(dec *Decision, q *lang.Run) (planner.Choice, error) {
	wantAlgo := strings.ToUpper(q.Algorithm)
	wantSampler := strings.ToLower(q.Sampler)
	matches := func(c planner.Choice) bool {
		if wantAlgo != "" && c.Plan.Algorithm.String() != wantAlgo {
			return false
		}
		switch wantSampler {
		case "", "my_sampler":
			return true
		case "bernoulli":
			return c.Plan.Sampling == gd.Bernoulli
		case "random", "random-partition":
			return c.Plan.Sampling == gd.RandomPartition
		case "shuffle", "shuffled-partition":
			return c.Plan.Sampling == gd.ShuffledPartition
		default:
			return false
		}
	}
	for _, c := range dec.Ranked {
		if matches(c) {
			return c, nil
		}
	}
	return planner.Choice{}, fmt.Errorf("ml4all: no plan matches using algorithm=%q sampler=%q", q.Algorithm, q.Sampler)
}

func (s *System) predictQuery(q *lang.Predict) (Report, error) {
	m, ok := s.models[q.Model]
	if !ok {
		loaded, err := LoadModel(q.Model)
		if err != nil {
			return Report{}, fmt.Errorf("ml4all: predict: model %q neither trained nor loadable: %w", q.Model, err)
		}
		m = loaded
	}
	test, ok := s.datasets[q.Data]
	if !ok {
		loaded, err := s.LoadDataset(q.Data, m.Task)
		if err != nil {
			return Report{}, fmt.Errorf("ml4all: predict: dataset %q: %w", q.Data, err)
		}
		test = loaded
	}
	return metrics.Evaluate(m.Task, m.Weights, test)
}

// modelCRCTable is the CRC32-Castagnoli table for the model file trailer —
// the same polynomial the serving layer frames checkpoints with.
var modelCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeModel renders a model in the SaveModel text format — a provenance
// header, one %.17g weight per line (bit-exact round-trip) — terminated by a
// "# crc32c=XXXXXXXX" trailer over everything before it, so loaders detect a
// torn or bit-flipped file instead of serving it. Readers predating the
// trailer parse it as one more comment.
func EncodeModel(m *Model) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# ml4all model %s task=%s plan=%s iterations=%d converged=%t traintime=%.17g\n",
		m.Name, m.Task, m.PlanName, m.Iterations, m.Converged, float64(m.TrainTime))
	for _, v := range m.Weights {
		fmt.Fprintf(&buf, "%.17g\n", v)
	}
	fmt.Fprintf(&buf, "%s%08x\n", modelCRCPrefix, crc32.Checksum(buf.Bytes(), modelCRCTable))
	return buf.Bytes()
}

const modelCRCPrefix = "# crc32c="

// SaveModel persists a model as a small text file (see EncodeModel), fsynced
// before close so a published model survives power loss. The header's
// key=value fields round-trip through LoadModel (the model registry depends
// on it).
func SaveModel(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(EncodeModel(m)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model persisted by SaveModel, verifying its checksum.
func LoadModel(path string) (*Model, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeModel(raw, path)
}

// DecodeModel parses the SaveModel text format. name labels the model and
// its error messages (LoadModel passes the path; the registry, the version
// name). When the checksum trailer is present it must match — a mismatch
// means the file was torn or corrupted and must not be served; files written
// before the trailer existed load unverified.
func DecodeModel(raw []byte, name string) (*Model, error) {
	if i := bytes.LastIndex(raw, []byte(modelCRCPrefix)); i >= 0 && (i == 0 || raw[i-1] == '\n') {
		trailer := strings.TrimSpace(string(raw[i+len(modelCRCPrefix):]))
		want, err := strconv.ParseUint(trailer, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("ml4all: model %s: bad checksum trailer %q", name, trailer)
		}
		if got := crc32.Checksum(raw[:i], modelCRCTable); got != uint32(want) {
			return nil, fmt.Errorf("ml4all: model %s: checksum mismatch (file says %08x, content is %08x) — corrupt or torn file", name, uint32(want), got)
		}
		raw = raw[:i]
	}
	path := name
	m := &Model{Name: name}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(line) {
				if v, ok := strings.CutPrefix(field, "task="); ok {
					switch v {
					case data.TaskSVM.String():
						m.Task = data.TaskSVM
					case data.TaskLogisticRegression.String():
						m.Task = data.TaskLogisticRegression
					case data.TaskLinearRegression.String():
						m.Task = data.TaskLinearRegression
					default:
						return nil, fmt.Errorf("ml4all: model file %s names unknown task %q", path, v)
					}
				}
				if v, ok := strings.CutPrefix(field, "plan="); ok {
					m.PlanName = v
				}
				if v, ok := strings.CutPrefix(field, "iterations="); ok {
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("ml4all: bad iterations %q in %s: %w", v, path, err)
					}
					m.Iterations = n
				}
				if v, ok := strings.CutPrefix(field, "converged="); ok {
					b, err := strconv.ParseBool(v)
					if err != nil {
						return nil, fmt.Errorf("ml4all: bad converged %q in %s: %w", v, path, err)
					}
					m.Converged = b
				}
				if v, ok := strings.CutPrefix(field, "traintime="); ok {
					t, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return nil, fmt.Errorf("ml4all: bad traintime %q in %s: %w", v, path, err)
					}
					m.TrainTime = Seconds(t)
				}
			}
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("ml4all: bad weight %q in %s: %w", line, path, err)
		}
		m.Weights = append(m.Weights, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Weights) == 0 {
		return nil, fmt.Errorf("ml4all: model file %s holds no weights", path)
	}
	return m, nil
}

// RankedPlanNames returns the decision's plans cheapest-first — a debugging
// helper used by the CLI's explain output.
func RankedPlanNames(dec *Decision) []string {
	names := make([]string, len(dec.Ranked))
	for i, c := range dec.Ranked {
		names[i] = fmt.Sprintf("%s (T=%d, est %.2fs)", c.Plan.Name(), c.Iterations, float64(c.Cost))
	}
	return names
}

// SortChoicesByName orders a copy of the choices alphabetically; reports use
// it for stable output.
func SortChoicesByName(cs []planner.Choice) []planner.Choice {
	out := make([]planner.Choice, len(cs))
	copy(out, cs)
	sort.Slice(out, func(i, j int) bool { return out[i].Plan.Name() < out[j].Plan.Name() })
	return out
}

// Infinity is a convenience for callers comparing against unbounded costs.
const Infinity = Seconds(math.MaxFloat64)
