package experiments

import (
	"ml4all/internal/baselines"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/synth"
)

// Fig10 reproduces the scalability experiment (Figure 10): SGD training time
// as the SVM A family scales the number of points (a) and the SVM B family
// scales the number of features (b), comparing MLlib against ML4all's
// eager-random and lazy-shuffle plans. The shape to hold: both ML4all plans
// beat MLlib by an order of magnitude and lazy-shuffle scales best.
func Fig10(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig10",
		Title:  "SGD scalability (s): MLlib vs eager-random vs lazy-shuffle",
		Header: []string{"sweep", "dataset", "n", "d", "MLlib", "eager-random", "lazy-shuffle"},
	}

	pointsSweep := []int{2_700_000, 5_516_800, 11_000_000, 22_000_000, 44_134_400, 88_268_800}
	featureSweep := []int{1_000, 10_000, 50_000, 100_000, 500_000}
	if cfg.Quick {
		pointsSweep = []int{2_700_000, 11_000_000, 44_134_400}
		featureSweep = []int{1_000, 50_000, 500_000}
	}

	wins := 0
	cells := 0
	row := func(sweep string, spec synth.Spec) error {
		ds, err := cfg.GeneratedDataset(spec)
		if err != nil {
			return err
		}
		p := ParamsFor(ds, 0.001, 1000)

		ml := runBaselineCell(func() (*baselines.Result, error) {
			return baselines.RunMLlib(ClusterFor(cfg.Scale), ds, p, gd.SGD,
				baselines.DefaultMLlib(), cfg.baselineOpts(cfg.Seed))
		})

		st, err := cfg.store(ds)
		if err != nil {
			return err
		}
		eagerRandom := gd.NewSGD(p, gd.Eager, gd.RandomPartition)
		er, err := engine.Run(cfg.sim(), st, &eagerRandom, cfg.engineOpts(0))
		if err != nil {
			return err
		}
		lazyShuffle := gd.NewSGD(p, gd.Lazy, gd.ShuffledPartition)
		ls, err := engine.Run(cfg.sim(), st, &lazyShuffle, cfg.engineOpts(0))
		if err != nil {
			return err
		}
		if ml.ok {
			cells++
			if ls.Time < ml.t && er.Time < ml.t {
				wins++
			}
		}
		r.Add(sweep, spec.Name, ds.N(), ds.NumFeatures, ml.String(),
			er.Time, ls.Time)
		return nil
	}

	for _, pts := range pointsSweep {
		if err := row("points", synth.SVMA(pts, cfg.Scale)); err != nil {
			return nil, err
		}
	}
	for _, feats := range featureSweep {
		if err := row("features", synth.SVMB(feats, cfg.Scale)); err != nil {
			return nil, err
		}
	}
	r.Note("both ML4all plans beat MLlib on %d/%d cells", wins, cells)
	r.Note("sweeps scaled 1/%d; see EXPERIMENTS.md for the mapping to paper sizes", cfg.Scale)
	return r, nil
}
