package experiments

import (
	"fmt"
	"sort"
)

// Runner is one reproducible experiment.
type Runner func(Config) (*Report, error)

// All maps experiment IDs to their runners — everything the paper's
// evaluation section reports, plus the DESIGN.md extra ablations.
var All = map[string]Runner{
	"fig1":                 Fig1,
	"fig6":                 Fig6,
	"fig7a":                Fig7a,
	"fig7b":                Fig7b,
	"fig8":                 Fig8,
	"fig9":                 Fig9,
	"fig10":                Fig10,
	"fig11":                Fig11,
	"fig12":                Fig12,
	"fig13":                Fig13,
	"fig14":                Fig14,
	"fig15":                Fig15,
	"fig16":                Fig16,
	"fig17":                Fig17,
	"fig18":                Fig18,
	"table2":               Table2,
	"table4":               Table4,
	"ablation-speculation": AblationSpeculation,
	"ablation-placement":   AblationPlacement,
	"ablation-tuner":       AblationTuner,
	"adaptive":             Adaptive,
}

// IDs returns the experiment identifiers in stable order.
func IDs() []string {
	ids := make([]string, 0, len(All))
	for id := range All {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run looks up and executes one experiment.
func Run(id string, cfg Config) (*Report, error) {
	f, ok := All[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return f(cfg)
}
