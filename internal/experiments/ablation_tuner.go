package experiments

import (
	"fmt"
	"math"

	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/tuner"
)

// AblationTuner exercises the hyperparameter-tuning extension the paper's
// conclusion proposes: for each dataset, speculate the default step-size
// grid on a sample, pick the winner by training objective, and compare the
// winner's full-data objective against the paper's fixed 1/sqrt(i) default.
// The claim to check: the tuned step never loses badly to the default, and
// wins visibly somewhere — at speculation cost comparable to the optimizer's
// own (a few seconds).
func AblationTuner(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "ablation-tuner",
		Title:  "Speculative step-size tuning vs the fixed 1/sqrt(i) default",
		Header: []string{"dataset", "tuned step", "tuned obj", "default obj", "improvement", "spec(s)"}}

	datasets := []string{"adult", "covtype", "yearpred"}
	if cfg.Quick {
		datasets = datasets[:2]
	}
	wins := 0
	for _, name := range datasets {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, 0.001, 300)
		plan := gd.NewBGD(p)
		g := gradients.ForTask(ds.Task)
		reg := gradients.L2{Lambda: p.Lambda}

		best, trials, err := tuner.Best(plan, st, g, reg, tuner.Config{
			SampleSize: 500, Budget: 5, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		var specTotal float64
		for _, tr := range trials {
			specTotal += float64(tr.SpecTime)
		}

		// Full-data comparison at a fixed iteration budget.
		tuned := plan
		tuned.Step = best
		tuned.Looper = gd.FixedIterLooper{}
		resTuned, err := cfg.runPlan(ds, tuned)
		if err != nil {
			return nil, err
		}
		def := plan
		def.Looper = gd.FixedIterLooper{}
		resDef, err := cfg.runPlan(ds, def)
		if err != nil {
			return nil, err
		}
		// Blocked objective over the arena: same sum, no []Row materialization.
		objTuned := gradients.ObjectiveMatrix(g, reg, resTuned.Weights, ds.Mat)
		objDef := gradients.ObjectiveMatrix(g, reg, resDef.Weights, ds.Mat)
		improvement := (objDef - objTuned) / math.Max(objDef, 1e-12)
		if objTuned <= objDef*1.02 {
			wins++
		}
		r.Add(name, best.Name(), fmt.Sprintf("%.4f", objTuned), fmt.Sprintf("%.4f", objDef),
			fmt.Sprintf("%+.1f%%", improvement*100), specTotal)
	}
	r.Note("tuned step matched or beat the default on %d/%d datasets", wins, len(datasets))
	return r, nil
}
