package experiments

import (
	"errors"

	"ml4all/internal/engine"
	"ml4all/internal/gd"
)

// The Section 8.6 in-depth ablations (Figures 13, 14, 17, 18): fix one
// physical dimension, sweep the other, and report training time per dataset.

// ablationDatasets mirrors the x-axis of Figures 13/14/17/18.
func (c Config) ablationDatasets() []string {
	if c.Quick {
		return []string{"adult", "covtype", "rcv1", "svm1"}
	}
	return []string{"adult", "covtype", "yearpred", "rcv1", "higgs", "svm1", "svm2"}
}

// runAblation executes one (algo, transform, sampling) cell; MGD runs with
// batch 1000 and both run tolerance 0.001, max 1000 iterations — the
// Section 8.6 setup.
func (c Config) runAblation(name string, algo gd.Algo, tp gd.TransformPlacement, sk gd.SamplingKind) (*engine.Result, error) {
	ds, err := c.Dataset(name)
	if err != nil {
		return nil, err
	}
	p := ParamsFor(ds, 0.001, 1000)
	var plan gd.Plan
	if algo == gd.SGD {
		plan = gd.NewSGD(p, tp, sk)
	} else {
		plan = gd.NewMGD(p, tp, sk)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return c.runPlan(ds, plan)
}

// samplingAblation builds the Figure 13/17 style report for one algorithm
// and transform placement.
func (c Config) samplingAblation(id, title string, algo gd.Algo, tp gd.TransformPlacement) (*Report, error) {
	r := &Report{ID: id, Title: title,
		Header: []string{"dataset", "bernoulli", "random-partition", "shuffle-partition"}}
	kinds := []gd.SamplingKind{gd.Bernoulli, gd.RandomPartition, gd.ShuffledPartition}
	for _, name := range c.ablationDatasets() {
		cells := make([]any, 0, 4)
		cells = append(cells, name)
		for _, sk := range kinds {
			if tp == gd.Lazy && sk == gd.Bernoulli {
				cells = append(cells, "n/a") // discarded plan (Section 6)
				continue
			}
			res, err := c.runAblation(name, algo, tp, sk)
			if err != nil {
				if errors.Is(err, errSkipped) {
					cells = append(cells, "-")
					continue
				}
				return nil, err
			}
			cells = append(cells, res.Time)
		}
		r.Add(cells...)
	}
	return r, nil
}

var errSkipped = errors.New("experiments: cell skipped")

// Fig13 is the MGD sampling-strategy ablation (Figure 13): eager (a) and
// lazy (b) transformation against each sampling technique.
func Fig13(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	a, err := cfg.samplingAblation("fig13a", "MGD sampling effect, eager transformation (s)", gd.MGD, gd.Eager)
	if err != nil {
		return nil, err
	}
	b, err := cfg.samplingAblation("fig13b", "MGD sampling effect, lazy transformation (s)", gd.MGD, gd.Lazy)
	if err != nil {
		return nil, err
	}
	merged := &Report{ID: "fig13", Title: a.Title + " / " + b.Title,
		Header: []string{"transform", "dataset", "bernoulli", "random-partition", "shuffle-partition"}}
	for _, row := range a.Rows {
		merged.Add(append([]any{"eager"}, anySlice(row)...)...)
	}
	for _, row := range b.Rows {
		merged.Add(append([]any{"lazy"}, anySlice(row)...)...)
	}
	return merged, nil
}

// Fig17 is the SGD sampling-strategy ablation (Figure 17, Appendix E).
func Fig17(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	a, err := cfg.samplingAblation("fig17a", "SGD sampling effect, eager transformation (s)", gd.SGD, gd.Eager)
	if err != nil {
		return nil, err
	}
	b, err := cfg.samplingAblation("fig17b", "SGD sampling effect, lazy transformation (s)", gd.SGD, gd.Lazy)
	if err != nil {
		return nil, err
	}
	merged := &Report{ID: "fig17", Title: a.Title + " / " + b.Title,
		Header: []string{"transform", "dataset", "bernoulli", "random-partition", "shuffle-partition"}}
	for _, row := range a.Rows {
		merged.Add(append([]any{"eager"}, anySlice(row)...)...)
	}
	for _, row := range b.Rows {
		merged.Add(append([]any{"lazy"}, anySlice(row)...)...)
	}
	return merged, nil
}

// transformAblation builds the Figure 14/18 style report: eager vs lazy for
// a fixed sampling strategy, for SGD and MGD.
func (c Config) transformAblation(id, title string, sk gd.SamplingKind) (*Report, error) {
	r := &Report{ID: id, Title: title,
		Header: []string{"algo", "dataset", "eager", "lazy", "lazy wins"}}
	sgdLazyWins, sgdCells := 0, 0
	for _, algo := range []gd.Algo{gd.SGD, gd.MGD} {
		for _, name := range c.ablationDatasets() {
			eager, err := c.runAblation(name, algo, gd.Eager, sk)
			if err != nil {
				return nil, err
			}
			lazy, err := c.runAblation(name, algo, gd.Lazy, sk)
			if err != nil {
				return nil, err
			}
			wins := lazy.Time < eager.Time
			if algo == gd.SGD {
				sgdCells++
				if wins {
					sgdLazyWins++
				}
			}
			r.Add(algo.String(), name, eager.Time, lazy.Time, wins)
		}
	}
	r.Note("SGD prefers lazy on %d/%d datasets (paper: always)", sgdLazyWins, sgdCells)
	return r, nil
}

// Fig14 is the transformation ablation under shuffled-partition sampling
// (Figure 14).
func Fig14(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return cfg.transformAblation("fig14",
		"Transformation effect, shuffle-partition sampling (s)", gd.ShuffledPartition)
}

// Fig18 is the transformation ablation under random-partition sampling
// (Figure 18, Appendix E).
func Fig18(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return cfg.transformAblation("fig18",
		"Transformation effect, random-partition sampling (s)", gd.RandomPartition)
}

func anySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
