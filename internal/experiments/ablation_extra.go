package experiments

import (
	"fmt"

	"ml4all/internal/cluster"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
)

// The extra ablations DESIGN.md calls out beyond the paper's own figures:
// sensitivity of the iterations estimator to its speculation budget, and the
// effect of the hybrid operator-placement rule.

// AblationSpeculation sweeps the estimator's sample size and time budget on
// covtype/BGD and reports how the estimate for T(0.001) moves — the
// Section 5 knobs (defaults 0.05/1min; Section 8 uses 0.1/10s).
func AblationSpeculation(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "ablation-speculation",
		Title:  "Iterations-estimator sensitivity (covtype, BGD, target eps 0.001)",
		Header: []string{"sample", "budget(s)", "points fit", "fitted a", "est T(.001)", "spec time(s)"}}

	ds, err := cfg.Dataset("covtype")
	if err != nil {
		return nil, err
	}
	st, err := cfg.store(ds)
	if err != nil {
		return nil, err
	}
	p := ParamsFor(ds, 0.001, 1000)
	plan := gd.NewBGD(p)

	samples := []int{250, 500, 1000, 2000}
	budgets := []cluster.Seconds{2, 10, 60}
	if cfg.Quick {
		samples = []int{500, 1000}
		budgets = []cluster.Seconds{2, 10}
	}
	var estimates []int
	for _, m := range samples {
		for _, b := range budgets {
			est, err := estimator.Speculate(plan, st, estimator.Config{
				SampleSize: m, SpecTolerance: 0.1, TimeBudget: b, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			t := est.Iterations(0.001)
			estimates = append(estimates, t)
			r.Add(m, float64(b), len(est.Sequence), est.A, t, est.SpecTime)
		}
	}
	min, max := estimates[0], estimates[0]
	for _, e := range estimates {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	r.Note("estimate spread across settings: %d..%d (%.1fx)", min, max, float64(max)/float64(min))
	return r, nil
}

// AblationPlacement forces each execution mode for BGD on yearpred
// (multi-partition) and adult (single-partition), quantifying what the
// Appendix D hybrid rule buys: distributed wins on multi-partition data,
// centralized on single-partition data, and Auto always matches the winner.
func AblationPlacement(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "ablation-placement",
		Title:  "Operator placement (BGD, 50 fixed iterations, time in s)",
		Header: []string{"dataset", "partitions", "auto", "centralized", "distributed", "auto matches winner"}}

	autoWins := 0
	for _, name := range []string{"adult", "yearpred"} {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, 1e-12, 50)
		times := map[gd.ExecMode]cluster.Seconds{}
		for _, mode := range []gd.ExecMode{gd.AutoMode, gd.CentralizedMode, gd.DistributedMode} {
			plan := gd.NewBGD(p)
			plan.Looper = gd.FixedIterLooper{}
			plan.Mode = mode
			res, err := cfg.runPlan(ds, plan)
			if err != nil {
				return nil, err
			}
			times[mode] = res.Time
		}
		winner := gd.CentralizedMode
		if times[gd.DistributedMode] < times[gd.CentralizedMode] {
			winner = gd.DistributedMode
		}
		// Auto matches the winner within jitter.
		match := float64(times[gd.AutoMode]) <= 1.25*float64(times[winner])
		if match {
			autoWins++
		}
		r.Add(name, st.NumPartitions(), times[gd.AutoMode], times[gd.CentralizedMode],
			times[gd.DistributedMode], fmt.Sprint(match))
	}
	r.Note("auto placement matched the better mode on %d/2 datasets", autoWins)
	return r, nil
}
