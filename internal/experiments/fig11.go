package experiments

import (
	"fmt"

	"ml4all/internal/baselines"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
)

// Fig11 reproduces the abstraction benefit/overhead experiment (Figure 11):
// on adult, rcv1 and svm1, run SGD, MGD(1k), MGD(10k) and BGD three ways —
// a hand-coded engine program ("Spark"), the same plan through the ML4all
// abstraction, and the Bismarck UDA abstraction. The shapes to hold: ML4all
// matches hand-coded within noise; Bismarck matches on small configurations
// but loses once gradient computation is worth distributing, and fails
// outright on rcv1 BGD / rcv1 MGD(10k) / svm1 BGD.
func Fig11(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig11",
		Title:  "Abstraction benefit/overhead (s)",
		Header: []string{"dataset", "config", "Spark(hand)", "ML4all", "Bismarck"},
	}

	datasets := []string{"adult", "rcv1", "svm1"}
	if cfg.Quick {
		datasets = []string{"adult", "rcv1"}
	}
	type config struct {
		label string
		algo  gd.Algo
		batch int
	}
	configs := []config{
		{"SGD", gd.SGD, 1},
		{"MGD(1k)", gd.MGD, 1000},
		{"MGD(10k)", gd.MGD, 10000},
		{"BGD", gd.BGD, 0},
	}

	bismarckFailures := []string{}
	var maxOverhead float64
	for _, name := range datasets {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		for _, c := range configs {
			p := ParamsFor(ds, 0.001, 100)
			if c.batch > 0 {
				p.BatchSize = c.batch
			}
			plan, err := gd.ForAlgo(p, c.algo)
			if err != nil {
				return nil, err
			}

			// "Hand-coded Spark": the identical physical plan executed
			// directly, different jitter stream (a different hand-rolled
			// program would not schedule identically).
			hand, err := engine.Run(cfg.sim(), st, &plan, cfg.engineOpts(100))
			if err != nil {
				return nil, err
			}
			// ML4all: the plan as the optimizer's executor runs it.
			ml, err := engine.Run(cfg.sim(), st, &plan, cfg.engineOpts(0))
			if err != nil {
				return nil, err
			}
			bis := runBaselineCell(func() (*baselines.Result, error) {
				return baselines.RunBismarck(ClusterFor(cfg.Scale), ds, p, c.algo,
					BismarckFor(cfg.Scale), cfg.baselineOpts(cfg.Seed))
			})
			if !bis.ok {
				bismarckFailures = append(bismarckFailures, name+"/"+c.label)
			}

			overhead := float64(ml.Time)/float64(hand.Time) - 1
			if overhead > maxOverhead {
				maxOverhead = overhead
			}
			r.Add(name, c.label, hand.Time, ml.Time, bis.String())
		}
	}
	r.Note("max ML4all overhead vs hand-coded: %.1f%% (jitter-level)", maxOverhead*100)
	r.Note("bismarck failures: %v (paper: rcv1/BGD, rcv1/MGD(10k), svm1/BGD)", bismarckFailures)
	_ = fmt.Sprint()
	return r, nil
}
