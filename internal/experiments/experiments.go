// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8 plus Appendix E) on the simulated cluster. Each
// experiment is a function taking a Config and returning a Report whose rows
// carry the same quantities the paper plots; cmd/ml4all-bench prints them and
// bench_test.go wraps each in a testing.B benchmark.
//
// Scale: experiments default to Scale 256 — a 1/256 cut of the paper's
// dataset bytes paired with a cluster whose cache and partitions shrink by
// the same factor, which preserves every fits-in-partition / fits-in-cache
// relationship the figures depend on while keeping the whole suite
// laptop-fast. Scale 64 (the repository's reference scale) yields simulated
// times of the same magnitude the paper reports.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"ml4all/internal/baselines"
	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

// DefaultScale is the harness's dataset-scale divisor.
const DefaultScale = 256

// Config parameterizes one experiment run.
type Config struct {
	// Scale divides the paper's dataset cardinalities; 0 means
	// DefaultScale. The cluster's byte capacities shrink by the same
	// factor.
	Scale int
	// Quick restricts sweeps to a representative subset (used by the Go
	// benchmarks so the full suite stays minutes, not hours).
	Quick bool
	// Seed drives all sampling; 0 means 1.
	Seed int64
	// Workers sizes the engine's real worker pool (0 = GOMAXPROCS, 1 =
	// serial). Results and simulated times are identical for every value;
	// only the wall-clock the harness reports changes.
	Workers int
	// Adaptive executes the optimizer's chosen plan with mid-flight
	// re-optimization wherever an experiment trains through the optimizer
	// (currently fig8's chosen-plan leg; the dedicated `adaptive`
	// experiment always adapts).
	Adaptive bool
	// FastMath runs every engine execution on the opt-in fast kernel tier
	// (engine.Options.FastMath): results shift within the tier's tolerance
	// and wall-clock drops; simulated times are charged at the calibrated
	// fast-tier rate.
	FastMath bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = DefaultScale
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ClusterFor returns the simulated cluster matched to a dataset scale: byte
// capacities shrink with the data so cache/partition relationships hold.
func ClusterFor(scale int) cluster.Config {
	cfg := cluster.Default()
	cfg.CacheBytes = cfg.CacheBytes * int64(synth.DefaultScale) / int64(scale)
	return cfg
}

// LayoutFor returns the storage layout matched to a dataset scale.
func LayoutFor(scale int) storage.Layout {
	l := storage.DefaultLayout()
	l.PartitionBytes = l.PartitionBytes * int64(synth.DefaultScale) / int64(scale)
	if l.PartitionBytes < 4*l.PageBytes {
		l.PartitionBytes = 4 * l.PageBytes
	}
	return l
}

// SystemMLFor scales the SystemML behaviour constants' byte thresholds.
func SystemMLFor(scale int) baselines.SystemMLConfig {
	sc := baselines.DefaultSystemML()
	f := int64(synth.DefaultScale) / int64(scale)
	if f < 1 {
		f = 1
	}
	sc.LocalBytes *= f
	sc.OOMDenseBytes *= f
	if scale > synth.DefaultScale {
		div := int64(scale) / int64(synth.DefaultScale)
		sc.LocalBytes = baselines.DefaultSystemML().LocalBytes / div
		sc.OOMDenseBytes = baselines.DefaultSystemML().OOMDenseBytes / div
	}
	return sc
}

// BismarckFor scales the Bismarck constraint constants.
func BismarckFor(scale int) baselines.BismarckConfig {
	bc := baselines.DefaultBismarck()
	if scale > synth.DefaultScale {
		div := float64(scale) / float64(synth.DefaultScale)
		bc.NodeBytes = int64(float64(bc.NodeBytes) / div)
		bc.FeatureWork /= div
	}
	return bc
}

// EstimatorFor returns the Section 8 estimator settings: speculation
// tolerance 0.1, a 10-second budget and 1000-point samples.
func EstimatorFor(seed int64) estimator.Config {
	return estimator.Config{SampleSize: 1000, SpecTolerance: 0.1, TimeBudget: 10, Seed: seed}
}

// LambdaFor returns the experiment suite's regularization per task: logistic
// rows use a small L2 (the real datasets are not separable and the paper
// always trains with a regularizer); the separable SVM suite and regression
// run unregularized, which is what lets stochastic hinge plans reach
// exact-zero deltas the way the paper's Table 4 SGD rows do.
func LambdaFor(task data.TaskKind) float64 {
	if task == data.TaskLogisticRegression {
		return 0.01
	}
	return 0
}

// ParamsFor assembles the standard Params for a dataset under the paper's
// Section 8 settings (step 1/sqrt(i), batch 1000, L1 convergence).
func ParamsFor(ds *data.Dataset, tolerance float64, maxIter int) gd.Params {
	return gd.Params{
		Task:      ds.Task,
		Format:    ds.Format,
		Lambda:    LambdaFor(ds.Task),
		Tolerance: tolerance,
		MaxIter:   maxIter,
	}
}

// --- dataset cache ---

var (
	dsMu    sync.Mutex
	dsCache = map[string]*data.Dataset{}
)

// Dataset returns the named Table 2 stand-in at the config's scale,
// memoized per process (generation of the larger sets costs seconds).
func (c Config) Dataset(name string) (*data.Dataset, error) {
	c = c.withDefaults()
	key := fmt.Sprintf("%s@%d", name, c.Scale)
	dsMu.Lock()
	defer dsMu.Unlock()
	if ds, ok := dsCache[key]; ok {
		return ds, nil
	}
	spec, err := synth.ByName(name, c.Scale)
	if err != nil {
		return nil, err
	}
	ds, err := synth.Generate(spec)
	if err != nil {
		return nil, err
	}
	dsCache[key] = ds
	return ds, nil
}

// GeneratedDataset memoizes an arbitrary spec (the SVM A/B sweeps).
func (c Config) GeneratedDataset(spec synth.Spec) (*data.Dataset, error) {
	key := fmt.Sprintf("%s/%d/%d@spec", spec.Name, spec.N, spec.D)
	dsMu.Lock()
	defer dsMu.Unlock()
	if ds, ok := dsCache[key]; ok {
		return ds, nil
	}
	ds, err := synth.Generate(spec)
	if err != nil {
		return nil, err
	}
	dsCache[key] = ds
	return ds, nil
}

// --- reporting ---

// Report is one experiment's tabular output plus free-form notes.
type Report struct {
	ID     string // "fig8", "table4", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, stringifying each cell.
func (r *Report) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case cluster.Seconds:
			row[i] = fmt.Sprintf("%.1f", float64(v))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note records a free-form observation rendered under the table.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the report as an aligned text table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
