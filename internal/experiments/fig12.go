package experiments

import (
	"fmt"

	"ml4all/internal/baselines"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/metrics"
	"ml4all/internal/planner"
	"ml4all/internal/storage"
)

// Fig12 reproduces the accuracy experiment (Figure 12): train MGD and SGD
// with each system on an 80/20 split and report test mean-square error. The
// shapes to hold: ML4all's error tracks MLlib's despite its aggressive
// sampling — except SGD on the skewed rcv1, where shuffled-partition
// sampling visibly degrades it (the case the paper discusses).
func Fig12(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig12",
		Title:  "Testing error (MSE) by system",
		Header: []string{"algo", "dataset", "MLlib", "SystemML", "ML4all", "ml4all plan"},
	}

	datasets := []string{"adult", "covtype", "yearpred", "rcv1", "higgs", "svm1", "svm2"}
	if cfg.Quick {
		datasets = []string{"adult", "covtype", "rcv1"}
	}

	close, comparable := 0, 0
	var rcv1SGDGap float64
	for _, algo := range []gd.Algo{gd.MGD, gd.SGD} {
		for _, name := range datasets {
			ds, err := cfg.Dataset(name)
			if err != nil {
				return nil, err
			}
			train, test := ds.Split(0.8, cfg.Seed)
			p := ParamsFor(train, 0.001, 1000)

			// Baseline MSEs average over the same three sampling seeds as
			// ML4all's; stochastic plans' test error is seed-noisy.
			evalBaseline := func(f func(seed int64) (*baselines.Result, error)) (float64, string) {
				var sum float64
				const seeds = 3
				for s := int64(0); s < seeds; s++ {
					res, err := f(cfg.Seed + s)
					if err != nil {
						return -1, "OOM"
					}
					rep, err := metrics.Evaluate(train.Task, res.Weights, test)
					if err != nil {
						return -1, "err"
					}
					sum += rep.MSE
				}
				return sum / seeds, fmt.Sprintf("%.3f", sum/seeds)
			}

			mllibMSE, mllibCell := evalBaseline(func(seed int64) (*baselines.Result, error) {
				return baselines.RunMLlib(ClusterFor(cfg.Scale), train, p, algo,
					baselines.DefaultMLlib(), cfg.baselineOpts(seed))
			})
			_, sysmlCell := evalBaseline(func(seed int64) (*baselines.Result, error) {
				return baselines.RunSystemML(ClusterFor(cfg.Scale), train, p, algo,
					SystemMLFor(cfg.Scale), cfg.baselineOpts(seed))
			})

			mse, planName, err := cfg.ml4allMSEForAlgo(train, test, p, algo)
			if err != nil {
				return nil, err
			}

			if mllibMSE >= 0 {
				comparable++
				if mse <= mllibMSE+0.1 {
					close++
				}
				if name == "rcv1" && algo == gd.SGD {
					rcv1SGDGap = mse - mllibMSE
				}
			}
			r.Add(algo.String(), name, mllibCell, sysmlCell, fmt.Sprintf("%.3f", mse), planName)
		}
	}
	r.Note("ML4all within 0.1 MSE of MLlib on %d/%d comparable cells", close, comparable)
	r.Note("rcv1 SGD skew penalty vs MLlib: %+.3f MSE (paper: +0.10)", rcv1SGDGap)
	return r, nil
}

// ml4allMSEForAlgo trains with the best plan for the algorithm (averaged
// over three sampling seeds — stochastic plans' test error is seed-noisy)
// and evaluates on the test split.
func (c Config) ml4allMSEForAlgo(train, test *data.Dataset, p gd.Params, algo gd.Algo) (float64, string, error) {
	c = c.withDefaults()
	st, err := storage.Build(train, LayoutFor(c.Scale))
	if err != nil {
		return 0, "", err
	}
	dec, err := planner.Choose(c.sim(), st, p, planner.Options{Estimator: c.estimatorFor()})
	if err != nil {
		return 0, "", err
	}
	for _, choice := range dec.Ranked {
		if choice.Plan.Algorithm != algo {
			continue
		}
		plan := choice.Plan
		var sum float64
		const seeds = 3
		for s := int64(0); s < seeds; s++ {
			res, err := engine.Run(c.sim(), st, &plan, c.engineOpts(s))
			if err != nil {
				return 0, "", err
			}
			rep, err := metrics.Evaluate(train.Task, res.Weights, test)
			if err != nil {
				return 0, "", err
			}
			sum += rep.MSE
		}
		return sum / seeds, plan.Name(), nil
	}
	return 0, "", fmt.Errorf("experiments: no %v plan ranked", algo)
}
