package experiments

import (
	"fmt"

	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/step"
)

// Fig15 reproduces the adaptive-step-size curve-fitting experiment
// (Figure 15, Appendix E): speculate BGD on a 1000-point sample of adult
// under step sizes 1/sqrt(i), 1/i and 1/i², fit T(eps) = a/eps, and compare
// the extrapolated iteration count for eps = 0.001 against the real run.
// The claim: the fitted curve reaches the target tolerance near the real
// iteration count for every step size.
func Fig15(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return curveFit(cfg, "fig15", "Curve fitting under adaptive step sizes (adult, BGD)",
		[]curveCase{
			{"adult", step.InvSqrt{Beta: 1}},
			{"adult", step.Inv{Beta: 1}},
			{"adult", step.InvSquare{Beta: 1}},
		})
}

// Fig16 reproduces the cross-dataset curve-fitting experiment (Figure 16):
// BGD with step 1/i on covtype, rcv1 and higgs.
func Fig16(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	cases := []curveCase{
		{"covtype", step.Inv{Beta: 1}},
		{"rcv1", step.Inv{Beta: 1}},
		{"higgs", step.Inv{Beta: 1}},
	}
	if cfg.Quick {
		cases = cases[:2]
	}
	return curveFit(cfg, "fig16", "Curve fitting across datasets (BGD, step 1/i)", cases)
}

type curveCase struct {
	dataset string
	step    step.Size
}

func curveFit(cfg Config, id, title string, cases []curveCase) (*Report, error) {
	r := &Report{ID: id, Title: title,
		Header: []string{"dataset", "step", "fitted a", "rate", "est T(.001)", "real T(.001)", "ratio"}}
	const target = 0.001
	const realCap = 20000

	within := 0
	for _, c := range cases {
		ds, err := cfg.Dataset(c.dataset)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, target, realCap)
		p.Step = c.step
		plan := gd.NewBGD(p)

		est, err := estimator.Speculate(plan, st, estimator.Config{
			SampleSize: 1000, SpecTolerance: 0.05, TimeBudget: 10, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		estT := est.Iterations(target)
		if estT > realCap {
			estT = realCap
		}

		res, err := cfg.runPlan(ds, plan)
		if err != nil {
			return nil, err
		}
		ratio := float64(estT) / float64(res.Iterations)
		if ratio >= 0.1 && ratio <= 10 {
			within++
		}
		r.Add(c.dataset, c.step.Name(), est.A, estimator.ClassifyRate(est.Sequence).String(),
			estT, res.Iterations, fmt.Sprintf("%.2f", ratio))
	}
	r.Note("estimates within one order of magnitude of real: %d/%d", within, len(cases))
	return r, nil
}
