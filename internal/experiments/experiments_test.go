package experiments

import (
	"strings"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/synth"
)

// The experiment runners themselves are exercised end-to-end by the root
// benchmarks; the tests here cover the harness plumbing plus the fastest
// runners so `go test` alone still validates the experiment layer.

func TestRegistryComplete(t *testing.T) {
	// Every figure/table DESIGN.md promises must be registered.
	want := []string{
		"fig1", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"table2", "table4", "ablation-speculation", "ablation-placement",
		"ablation-tuner", "adaptive",
	}
	for _, id := range want {
		if _, ok := All[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(All), len(want))
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", Config{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != DefaultScale || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestScaledClusterAndLayout(t *testing.T) {
	base := ClusterFor(synth.DefaultScale)
	quarter := ClusterFor(synth.DefaultScale * 4)
	if quarter.CacheBytes*4 != base.CacheBytes {
		t.Fatalf("cache scaling: %d vs %d", quarter.CacheBytes, base.CacheBytes)
	}
	lb := LayoutFor(synth.DefaultScale)
	lq := LayoutFor(synth.DefaultScale * 4)
	if lq.PartitionBytes*4 != lb.PartitionBytes {
		t.Fatalf("partition scaling: %d vs %d", lq.PartitionBytes, lb.PartitionBytes)
	}
	// Cost constants must NOT scale — they encode the data scale already.
	if base.FlopSec != quarter.FlopSec {
		t.Fatal("per-unit costs changed with scale")
	}
}

func TestDatasetMemoization(t *testing.T) {
	cfg := Config{Scale: 2048, Seed: 1} // tiny
	a, err := cfg.Dataset("adult")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Dataset("adult")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset not memoized")
	}
	if _, err := cfg.Dataset("nonsense"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Header: []string{"a", "longheader"}}
	r.Add("v1", 3.14159)
	r.Add(cluster.Seconds(2.5), 7)
	r.Note("hello %d", 42)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x: T ==", "longheader", "3.14", "2.5", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestLambdaForTasks(t *testing.T) {
	ds, err := Config{Scale: 2048}.Dataset("adult")
	if err != nil {
		t.Fatal(err)
	}
	p := ParamsFor(ds, 0.01, 100)
	if p.Lambda == 0 {
		t.Fatal("logistic dataset should train regularized")
	}
	if p.Tolerance != 0.01 || p.MaxIter != 100 {
		t.Fatalf("params = %+v", p)
	}
}

// TestFastRunnersEndToEnd exercises the cheapest runners fully.
func TestFastRunnersEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	cfg := Config{Scale: 1024, Quick: true, Seed: 1}
	for _, id := range []string{"table2", "fig15", "ablation-placement"} {
		rep, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s: empty report", id)
		}
		if rep.ID != id {
			t.Fatalf("%s: report claims to be %s", id, rep.ID)
		}
	}
}
