package experiments

import (
	"ml4all/internal/cluster"
	"ml4all/internal/engine"
	"ml4all/internal/planner"
)

// Fig8 reproduces the effectiveness experiment (Figure 8): for each dataset,
// exhaustively run all eleven GD plans to convergence, then run the
// optimizer (its speculation overhead charged on the same clock) followed by
// its chosen plan. The paper's claims: the chosen plan is (near-)fastest,
// and the speculation overhead is a few seconds — negligible next to
// training.
func Fig8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig8",
		Title:  "Optimizer effectiveness: best/worst plan vs chosen (times in s)",
		Header: []string{"dataset", "best plan", "min", "max", "chosen plan", "chosen+spec", "spec"},
	}

	datasets := []string{"adult", "covtype", "yearpred", "rcv1", "higgs", "svm1", "svm2", "svm3"}
	if cfg.Quick {
		datasets = []string{"adult", "covtype", "rcv1", "svm1"}
	}

	nearBest := 0
	for _, name := range datasets {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, 0.001, 1000)

		// Exhaustive execution of the whole plan space.
		var minT, maxT cluster.Seconds
		var bestPlan string
		for i, plan := range planner.Space(p) {
			res, err := engine.Run(cfg.sim(), st, &plan, cfg.engineOpts(0))
			if err != nil {
				return nil, err
			}
			if i == 0 || res.Time < minT {
				minT, bestPlan = res.Time, plan.Name()
			}
			if i == 0 || res.Time > maxT {
				maxT = res.Time
			}
		}

		// Optimizer + chosen plan on one clock. With cfg.Adaptive the
		// chosen plan additionally re-optimizes mid-flight.
		sim := cfg.sim()
		var specEnd cluster.Seconds
		var planName string
		if cfg.Adaptive {
			ar, err := planner.RunAdaptive(sim, st, p, planner.Options{Estimator: cfg.estimatorFor()},
				planner.AdaptiveConfig{Seed: cfg.Seed, Workers: cfg.Workers, FastMath: cfg.FastMath})
			if err != nil {
				return nil, err
			}
			// Result.Time covers training only, so this recovers the same
			// post-optimization clock point the static branch records.
			specEnd = sim.Now() - ar.Result.Time
			planName = ar.Result.PlanName
		} else {
			dec, err := planner.Choose(sim, st, p, planner.Options{Estimator: cfg.estimatorFor()})
			if err != nil {
				return nil, err
			}
			specEnd = sim.Now()
			plan := dec.Best.Plan
			planName = plan.Name()
			if _, err := engine.Run(sim, st, &plan, cfg.engineOpts(0)); err != nil {
				return nil, err
			}
		}
		total := sim.Now()

		// "Near-best": within 2x of the exhaustive minimum including the
		// optimization overhead.
		if total <= 2*minT || planName == bestPlan {
			nearBest++
		}
		r.Add(name, bestPlan, minT, maxT, planName, total, specEnd)
	}
	r.Note("chosen plan near-best on %d/%d datasets", nearBest, len(datasets))
	return r, nil
}
