package experiments

import (
	"fmt"

	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/planner"
)

// Table2 reproduces the dataset-suite table (Table 2) at the configured
// scale: name, task, points, features, bytes, density for every stand-in.
func Table2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table2",
		Title:  fmt.Sprintf("Dataset suite at scale 1/%d", cfg.Scale),
		Header: []string{"name", "task", "#points", "#features", "size", "density", "#partitions"}}
	names := []string{"adult", "covtype", "yearpred", "rcv1", "higgs", "svm1", "svm2", "svm3"}
	if cfg.Quick {
		names = names[:5]
	}
	for _, name := range names {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		stats := ds.Stats()
		r.Add(stats.Name, stats.Task.String(), stats.Points, stats.Features,
			fmt.Sprintf("%.1fMB", float64(stats.Bytes)/(1<<20)),
			fmt.Sprintf("%.3g", stats.Density), st.NumPartitions())
	}
	return r, nil
}

// Table4 reproduces the chosen-plan table (Table 4): for each dataset and
// each GD algorithm, the physical plan the optimizer picks and the real
// iteration count of running that plan to convergence (tolerance 0.001, max
// 1000).
func Table4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{ID: "table4",
		Title:  "Chosen plan and iterations per GD algorithm",
		Header: []string{"dataset", "SGD plan", "SGD iters", "MGD plan", "MGD iters", "BGD iters"}}

	datasets := []string{"adult", "covtype", "yearpred", "rcv1", "higgs", "svm1", "svm2", "svm3"}
	if cfg.Quick {
		datasets = []string{"adult", "covtype", "rcv1", "svm1"}
	}

	sgdLazyShuffleOnLarge := 0
	largeCount := 0
	for _, name := range datasets {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, 0.001, 1000)
		dec, err := planner.Choose(cfg.sim(), st, p, planner.Options{Estimator: cfg.estimatorFor()})
		if err != nil {
			return nil, err
		}

		cells := []any{name}
		var sgdPlanName string
		for _, algo := range []gd.Algo{gd.SGD, gd.MGD, gd.BGD} {
			for _, choice := range dec.Ranked {
				if choice.Plan.Algorithm != algo {
					continue
				}
				plan := choice.Plan
				res, err := engine.Run(cfg.sim(), st, &plan, cfg.engineOpts(0))
				if err != nil {
					return nil, err
				}
				if algo == gd.BGD {
					cells = append(cells, res.Iterations)
				} else {
					label := fmt.Sprintf("%s-%s", plan.Transform, plan.Sampling)
					cells = append(cells, label, res.Iterations)
				}
				if algo == gd.SGD {
					sgdPlanName = plan.Name()
				}
				break
			}
		}
		r.Add(cells...)

		large := name == "higgs" || name == "svm1" || name == "svm2" || name == "svm3" || name == "yearpred"
		if large {
			largeCount++
			if sgdPlanName == "SGD-lazy-shuffle" {
				sgdLazyShuffleOnLarge++
			}
		}
	}
	r.Note("SGD-lazy-shuffle chosen on %d/%d large datasets (paper Table 4: all)", sgdLazyShuffleOnLarge, largeCount)
	return r, nil
}
