package experiments

import (
	"testing"

	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/planner"
)

// TestAdaptiveBeatsBestStaticFullScale pins the headline acceptance
// criterion at the experiment's default scale: under the skewed-speculation
// scenario, the adaptive run — speculation and switch overhead included —
// reaches the target tolerance in less simulated time than BGD, the best
// static plan (the full exhaustive comparison is the `adaptive` experiment;
// BGD is the only static that reaches tolerance at all, so it is the bar).
func TestAdaptiveBeatsBestStaticFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale scenario (~25s): skipped in -short mode")
	}
	cfg := Config{}.withDefaults()
	ds, p, err := adaptiveScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cfg.store(ds)
	if err != nil {
		t.Fatal(err)
	}

	bgd := gd.NewBGD(p)
	static, err := engine.Run(cfg.sim(), st, &bgd, cfg.engineOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if !static.Converged {
		t.Fatalf("scenario drifted: static BGD no longer reaches tolerance (delta %g after %d iters)",
			static.FinalDelta, static.Iterations)
	}

	sim := cfg.sim()
	ar, err := planner.RunAdaptive(sim, st, p, planner.Options{Estimator: adaptiveEstimator(cfg)},
		adaptiveControllerFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	total := sim.Now()

	if ar.Decision.Best.Plan.Algorithm == gd.BGD {
		t.Fatalf("scenario drifted: optimizer chose %s up front, no mis-estimation to correct",
			ar.Decision.Best.Plan.Name())
	}
	if len(ar.Switches) == 0 {
		t.Fatal("controller never switched")
	}
	if !ar.Result.Converged {
		t.Fatalf("adaptive run missed tolerance: delta %g after %d iters",
			ar.Result.FinalDelta, ar.Result.Iterations)
	}
	if total >= static.Time {
		t.Fatalf("adaptive %.1fs (speculation + switches included) did not beat best static %.1fs",
			float64(total), float64(static.Time))
	}
	t.Logf("adaptive %.1fs vs best static %.1fs (%.2fx), switch: %+v",
		float64(total), float64(static.Time), float64(static.Time)/float64(total), ar.Switches[0])
}
