package experiments

import (
	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// store lays a dataset out under the config's scale-matched layout.
func (c Config) store(ds *data.Dataset) (*storage.Store, error) {
	return storage.Build(ds, LayoutFor(c.withDefaults().Scale))
}

// sim returns a fresh scale-matched simulator.
func (c Config) sim() *cluster.Sim {
	return cluster.New(ClusterFor(c.withDefaults().Scale))
}

// runPlan executes one plan on a fresh simulator and returns the result.
func (c Config) runPlan(ds *data.Dataset, plan gd.Plan) (*engine.Result, error) {
	c = c.withDefaults()
	st, err := c.store(ds)
	if err != nil {
		return nil, err
	}
	return engine.Run(c.sim(), st, &plan, engine.Options{Seed: c.Seed})
}

// runAlgo executes the default physical plan for an algorithm.
func (c Config) runAlgo(ds *data.Dataset, p gd.Params, algo gd.Algo) (*engine.Result, error) {
	plan, err := gd.ForAlgo(p, algo)
	if err != nil {
		return nil, err
	}
	return c.runPlan(ds, plan)
}
