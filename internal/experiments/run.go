package experiments

import (
	"ml4all/internal/baselines"
	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// store lays a dataset out under the config's scale-matched layout.
func (c Config) store(ds *data.Dataset) (*storage.Store, error) {
	return storage.Build(ds, LayoutFor(c.withDefaults().Scale))
}

// sim returns a fresh scale-matched simulator.
func (c Config) sim() *cluster.Sim {
	return cluster.New(ClusterFor(c.withDefaults().Scale))
}

// engineOpts returns the engine options every experiment run uses: the
// config's seed (plus an optional per-run offset) and its worker-pool size.
func (c Config) engineOpts(seedOffset int64) engine.Options {
	return engine.Options{Seed: c.Seed + seedOffset, Workers: c.Workers, FastMath: c.FastMath}
}

// baselineOpts returns the baseline-runner options every experiment uses:
// the scale-matched layout, the given seed, and the config's worker-pool
// size, so `-workers` governs baseline engine runs too.
func (c Config) baselineOpts(seed int64) baselines.Options {
	return baselines.Options{Layout: LayoutFor(c.Scale), Seed: seed, Workers: c.Workers}
}

// estimatorFor returns EstimatorFor's Section 8 settings with the config's
// worker pool applied, so speculation runs honor c.Workers (see the
// estimator.Config.Workers doc: callers pinning Workers must pin it for
// speculation too).
func (c Config) estimatorFor() estimator.Config {
	cfg := EstimatorFor(c.Seed)
	cfg.Workers = c.Workers
	return cfg
}

// runPlan executes one plan on a fresh simulator and returns the result.
func (c Config) runPlan(ds *data.Dataset, plan gd.Plan) (*engine.Result, error) {
	c = c.withDefaults()
	st, err := c.store(ds)
	if err != nil {
		return nil, err
	}
	return engine.Run(c.sim(), st, &plan, c.engineOpts(0))
}

// runAlgo executes the default physical plan for an algorithm.
func (c Config) runAlgo(ds *data.Dataset, p gd.Params, algo gd.Algo) (*engine.Result, error) {
	plan, err := gd.ForAlgo(p, algo)
	if err != nil {
		return nil, err
	}
	return c.runPlan(ds, plan)
}
