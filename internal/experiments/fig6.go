package experiments

import (
	"fmt"

	"ml4all/internal/estimator"
	"ml4all/internal/gd"
)

// Fig6 reproduces the iterations-estimation experiment (Figure 6): for
// adult, covtype and rcv1, at tolerances 0.1 / 0.01 / 0.001, compare the
// speculative estimator's predicted iteration count against the real count
// from running each GD algorithm to convergence. The paper's claims: BGD
// estimates are tight, MGD/SGD estimates stay within an order of magnitude,
// and the estimated ordering of the three algorithms matches the real one.
func Fig6(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig6",
		Title:  "Estimated vs real iterations to converge",
		Header: []string{"dataset", "tolerance", "algo", "real", "estimated", "ratio"},
	}

	datasets := []string{"adult", "covtype", "rcv1"}
	if cfg.Quick {
		datasets = []string{"adult", "covtype"}
	}
	tols := []float64{0.1, 0.01, 0.001}

	const realCap = 20000 // bound for "real" runs, far above the paper's counts

	orderingsPreserved, orderingsTotal := 0, 0
	withinOrder, total := 0, 0
	for _, name := range datasets {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		for _, tol := range tols {
			if name == "rcv1" && tol <= 0.001 {
				// The paper also skips rcv1@0.001: nothing converged in 3h.
				continue
			}
			p := ParamsFor(ds, tol, realCap)
			realIters := map[gd.Algo]int{}
			estIters := map[gd.Algo]int{}
			for _, algo := range []gd.Algo{gd.BGD, gd.MGD, gd.SGD} {
				res, err := cfg.runAlgo(ds, p, algo)
				if err != nil {
					return nil, err
				}
				realIters[algo] = res.Iterations

				plan, err := gd.ForAlgo(p, algo)
				if err != nil {
					return nil, err
				}
				est, err := estimator.Speculate(plan, st, cfg.estimatorFor())
				if err != nil {
					return nil, err
				}
				t := est.Iterations(tol)
				if t > realCap {
					t = realCap
				}
				estIters[algo] = t

				ratio := float64(t) / float64(res.Iterations)
				if ratio >= 0.1 && ratio <= 10 {
					withinOrder++
				}
				total++
				r.Add(name, fmt.Sprintf("%g", tol), algo.String(),
					res.Iterations, t, fmt.Sprintf("%.2f", ratio))
			}
			// Ordering check: does est preserve the real BGD/MGD/SGD order?
			orderingsTotal++
			if sameOrder(realIters, estIters) {
				orderingsPreserved++
			}
		}
	}

	r.Note("estimates within one order of magnitude: %d/%d", withinOrder, total)
	r.Note("algorithm orderings preserved: %d/%d", orderingsPreserved, orderingsTotal)
	return r, nil
}

// sameOrder reports whether the weak ordering of the three algorithms by
// iteration count matches between real and estimated.
func sameOrder(real, est map[gd.Algo]int) bool {
	algos := []gd.Algo{gd.BGD, gd.MGD, gd.SGD}
	for i := 0; i < len(algos); i++ {
		for j := i + 1; j < len(algos); j++ {
			a, b := algos[i], algos[j]
			realLess := real[a] < real[b]
			estLess := est[a] < est[b]
			if realLess != estLess && real[a] != real[b] {
				return false
			}
		}
	}
	return true
}
