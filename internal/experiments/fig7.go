package experiments

import (
	"fmt"
	"math"

	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/planner"
)

// Fig7a reproduces the cost-per-iteration estimation experiment
// (Figure 7a): fix the iteration count at 1000, let the optimizer pick the
// plan (the paper observes it picks SGD everywhere), and compare the cost
// model's time estimate with the actual simulated run. The paper reports
// estimates within 17% of actual.
func Fig7a(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig7a",
		Title:  "Run of 1000 iterations: real vs estimated time (s)",
		Header: []string{"dataset", "plan", "real", "estimated", "rel.err"},
	}

	datasets := []string{"adult", "covtype", "yearpred", "rcv1"}
	if cfg.Quick {
		datasets = []string{"adult", "covtype"}
	}
	var worst float64
	for _, name := range datasets {
		ds, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, 1e-12, 1000) // tolerance unreachable: fixed-length run

		sim := cfg.sim()
		dec, err := planner.Choose(sim, st, p, planner.Options{FixedIterations: 1000})
		if err != nil {
			return nil, err
		}
		plan := dec.Best.Plan
		plan.Looper = gd.FixedIterLooper{}

		res, err := engine.Run(cfg.sim(), st, &plan, cfg.engineOpts(0))
		if err != nil {
			return nil, err
		}
		rel := math.Abs(float64(dec.Best.Cost-res.Time)) / float64(res.Time)
		if rel > worst {
			worst = rel
		}
		r.Add(name, plan.Name(), res.Time, dec.Best.Cost, fmt.Sprintf("%.0f%%", rel*100))
	}
	r.Note("worst relative error %.0f%% (paper: 17%%)", worst*100)
	return r, nil
}

// Fig7b reproduces the total-cost estimation experiment (Figure 7b): run the
// optimizer (speculation included), execute its chosen plan to convergence,
// and compare estimated vs real training time. Tolerances follow the paper:
// 0.001 for adult and covtype, 0.01 for rcv1, 0.1 for yearpred.
func Fig7b(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig7b",
		Title:  "Run to convergence: real vs estimated time (s)",
		Header: []string{"dataset", "tolerance", "chosen plan", "est.iters", "real", "estimated"},
	}

	rows := []struct {
		name    string
		tol     float64
		maxIter int
	}{
		// adult/covtype run with a raised iteration cap: on the synthetic
		// stand-ins tolerance 0.001 needs a few thousand iterations (the
		// real datasets needed a few hundred), and the point of the figure
		// is estimating runs that do converge.
		{"adult", 0.001, 6000}, {"covtype", 0.001, 6000}, {"rcv1", 0.01, 1000}, {"yearpred", 0.1, 1000},
	}
	if cfg.Quick {
		rows = rows[:2]
	}
	for _, row := range rows {
		ds, err := cfg.Dataset(row.name)
		if err != nil {
			return nil, err
		}
		st, err := cfg.store(ds)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, row.tol, row.maxIter)
		sim := cfg.sim()
		dec, err := planner.Choose(sim, st, p, planner.Options{Estimator: cfg.estimatorFor()})
		if err != nil {
			return nil, err
		}
		plan := dec.Best.Plan
		res, err := engine.Run(cfg.sim(), st, &plan, cfg.engineOpts(0))
		if err != nil {
			return nil, err
		}
		r.Add(row.name, fmt.Sprintf("%g", row.tol), plan.Name(),
			dec.Best.Iterations, res.Time, dec.Best.Cost)
	}
	return r, nil
}
