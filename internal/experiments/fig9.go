package experiments

import (
	"errors"
	"fmt"

	"ml4all/internal/baselines"
	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/planner"
)

// Fig9 reproduces the system comparison (Figure 9 a/b/c): for each dataset
// and each GD algorithm, train with MLlib, SystemML and ML4all (which picks
// the best physical plan for the fixed algorithm). OOM/timeout failures are
// reported as the paper reports them. The shape to hold: ML4all at least
// matches MLlib everywhere and wins big on large data; SystemML is
// competitive locally on small inputs but pays conversion and dies on large
// dense data.
func Fig9(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig9",
		Title:  "Training time by system (s); conversion included for SystemML",
		Header: []string{"algo", "dataset", "MLlib", "SystemML", "ML4all", "ml4all plan"},
	}

	datasets := []string{"adult", "covtype", "yearpred", "rcv1", "higgs", "svm1", "svm2", "svm3"}
	if cfg.Quick {
		datasets = []string{"adult", "covtype", "rcv1", "svm1"}
	}

	mlWins, cells := 0, 0
	for _, algo := range []gd.Algo{gd.BGD, gd.MGD, gd.SGD} {
		for _, name := range datasets {
			ds, err := cfg.Dataset(name)
			if err != nil {
				return nil, err
			}
			p := ParamsFor(ds, 0.001, 1000)

			mllib := runBaselineCell(func() (*baselines.Result, error) {
				return baselines.RunMLlib(ClusterFor(cfg.Scale), ds, p, algo,
					baselines.DefaultMLlib(), cfg.baselineOpts(cfg.Seed))
			})
			sysml := runBaselineCell(func() (*baselines.Result, error) {
				return baselines.RunSystemML(ClusterFor(cfg.Scale), ds, p, algo,
					SystemMLFor(cfg.Scale), cfg.baselineOpts(cfg.Seed))
			})

			ml4allTime, planName, err := cfg.ml4allBestForAlgo(ds, p, algo)
			if err != nil {
				return nil, err
			}

			if mllib.ok && ml4allTime <= mllib.t {
				mlWins++
			}
			if mllib.ok {
				cells++
			}
			r.Add(algo.String(), name, mllib.String(), sysml.String(),
				cluster.Seconds(ml4allTime), planName)
		}
	}
	r.Note("ML4all at least matches MLlib on %d/%d comparable cells", mlWins, cells)
	return r, nil
}

// ml4allBestForAlgo picks the cheapest physical plan for a fixed algorithm
// (what Section 8.4 uses ML4all for) and executes it.
func (c Config) ml4allBestForAlgo(ds *data.Dataset, p gd.Params, algo gd.Algo) (cluster.Seconds, string, error) {
	c = c.withDefaults()
	st, err := c.store(ds)
	if err != nil {
		return 0, "", err
	}
	sim := c.sim()
	dec, err := planner.Choose(sim, st, p, planner.Options{Estimator: c.estimatorFor()})
	if err != nil {
		return 0, "", err
	}
	for _, choice := range dec.Ranked {
		if choice.Plan.Algorithm != algo {
			continue
		}
		plan := choice.Plan
		res, err := engine.Run(c.sim(), st, &plan, c.engineOpts(0))
		if err != nil {
			return 0, "", err
		}
		return res.Time, plan.Name(), nil
	}
	return 0, "", fmt.Errorf("experiments: no plan for %v", algo)
}

// baselineCell is one baseline measurement or its failure.
type baselineCell struct {
	ok  bool
	t   cluster.Seconds
	err error
}

func runBaselineCell(f func() (*baselines.Result, error)) baselineCell {
	res, err := f()
	if err != nil {
		if errors.Is(err, baselines.ErrOutOfMemory) {
			return baselineCell{err: err}
		}
		return baselineCell{err: err}
	}
	return baselineCell{ok: true, t: res.Time}
}

// String renders the cell the way the paper annotates failures.
func (c baselineCell) String() string {
	if !c.ok {
		if errors.Is(c.err, baselines.ErrOutOfMemory) {
			return "OOM"
		}
		return "fail"
	}
	return fmt.Sprintf("%.1f", float64(c.t))
}
