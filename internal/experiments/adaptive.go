package experiments

import (
	"fmt"
	"math"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/planner"
	"ml4all/internal/synth"
)

// Adaptive reproduces the mis-estimation scenario mid-flight re-optimization
// exists for. Speculation runs on a 1000-point sample while MGD's batch size
// is also 1000 — on the sample the "stochastic" plans are effectively
// full-batch, so their fitted T(ε)=a/ε curves are far too optimistic, and
// the error grows as the requested tolerance tightens (the Figure 6
// effect). On the full, noisy dataset those plans stall near the sampling
// noise floor: the optimizer's chosen plan burns iterations without
// approaching εd. The adaptive controller re-fits the curve on the observed
// deltas, sees the mis-estimate, and switches to a full-batch plan —
// carrying the error level already reached, so the successor skips the head
// of its own curve. The headline: the adaptive run (including speculation
// and switch overhead) reaches εd in less simulated time than the best
// static plan, while the statically-chosen plan misses tolerance entirely.
func Adaptive(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "adaptive",
		Title:  "Mid-flight re-optimization under speculation mis-estimation (times in s)",
		Header: []string{"plan", "reached εd", "iters", "time"},
	}

	ds, p, err := adaptiveScenario(cfg)
	if err != nil {
		return nil, err
	}
	st, err := cfg.store(ds)
	if err != nil {
		return nil, err
	}

	// Exhaustive static baselines: every plan of the space, run to
	// completion on its own clock (no speculation charged — the statics
	// get a head start). Quick mode keeps the representative corners: the
	// strongest full-batch and sampled contenders plus a lazy plan.
	statics := planner.Space(p)
	if cfg.Quick {
		var subset []gd.Plan
		for _, plan := range statics {
			switch plan.Name() {
			case "BGD", "MGD-eager-shuffle", "SGD-eager-shuffle", "MGD-lazy-shuffle":
				subset = append(subset, plan)
			}
		}
		statics = subset
	}
	minStatic := cluster.Seconds(math.Inf(1))
	bestStatic := ""
	for _, plan := range statics {
		res, err := engine.Run(cfg.sim(), st, &plan, cfg.engineOpts(0))
		if err != nil {
			return nil, err
		}
		r.Add(plan.Name(), res.Converged, res.Iterations, res.Time)
		if res.Converged && res.Time < minStatic {
			minStatic, bestStatic = res.Time, plan.Name()
		}
	}

	// The adaptive run: speculation, chosen plan, re-optimization checks,
	// switches — all on one clock. The speculation budget is deliberately
	// tight: less speculation data means worse extrapolation at tight
	// tolerances (the Figure 6 effect the scenario is built on).
	sim := cfg.sim()
	ar, err := planner.RunAdaptive(sim, st, p, planner.Options{Estimator: adaptiveEstimator(cfg)},
		adaptiveControllerFor(cfg))
	if err != nil {
		return nil, err
	}
	total := sim.Now()
	r.Add("adaptive: "+ar.Result.PlanName, ar.Result.Converged, ar.Result.Iterations, total)

	r.Note("optimizer chose %s (estimated %d iters); best static %s at %.3gs",
		ar.Decision.Best.Plan.Name(), ar.Decision.Best.Iterations, bestStatic, float64(minStatic))
	for _, sw := range ar.Switches {
		r.Note("switch at iter %d: %s -> %s (refit a=%.4g vs spec a=%.4g at eps=%.4g)",
			sw.Iter, sw.From, sw.To, sw.FittedA, sw.SpecA, sw.Epsilon)
	}
	for _, line := range ar.Log {
		r.Note("decision log: %s", line)
	}
	if !math.IsInf(float64(minStatic), 0) {
		r.Note("adaptive %.3gs vs best static %.3gs (speedup %.2fx, speculation+switch overhead included)",
			float64(total), float64(minStatic), float64(minStatic)/float64(total))
	}
	return r, nil
}

// adaptiveScenario builds the skewed-speculation workload: a noisy,
// non-separable classification set large enough that batch-1000 sampling on
// the full data is genuinely stochastic, with a tolerance tight enough that
// speculation's extrapolation error (Figure 6) mis-ranks the space.
func adaptiveScenario(cfg Config) (*data.Dataset, gd.Params, error) {
	n := 20_000_000 / cfg.Scale
	if cfg.Quick {
		n = 5_000_000 / cfg.Scale
	}
	if n < 10_000 {
		n = 10_000
	}
	ds, err := cfg.GeneratedDataset(synth.Spec{
		Name: fmt.Sprintf("adaptive-skew@%d", cfg.Scale), Task: data.TaskLogisticRegression,
		N: n, D: 40, Density: 0.6, Noise: 0.6, Margin: 0.5, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, gd.Params{}, err
	}
	p := ParamsFor(ds, 2e-4, 4000)
	return ds, p, nil
}

// adaptiveControllerFor returns the controller settings the experiment (and
// its benchmark) uses.
func adaptiveControllerFor(cfg Config) planner.AdaptiveConfig {
	return planner.AdaptiveConfig{Every: 50, Seed: cfg.Seed, Workers: cfg.Workers, FastMath: cfg.FastMath}
}

// adaptiveEstimator is the Section 8 estimator with a 3-second speculation
// budget instead of 10 — the mis-estimation scenario's second ingredient.
func adaptiveEstimator(cfg Config) estimator.Config {
	e := cfg.estimatorFor()
	e.TimeBudget = 3
	return e
}
