package experiments

import (
	"fmt"

	"ml4all/internal/cluster"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
)

// Fig1 reproduces the motivation experiment (Figure 1, right side): train
// adult, covtype and rcv1 to their per-dataset tolerances with each of BGD,
// SGD and MGD and show that no algorithm wins everywhere, with more than an
// order of magnitude between best and worst somewhere in the grid.
//
// Deviation from the paper: Figure 1 trains SVM on adult/covtype; on our
// margin-gap synthetic stand-ins hinge SGD degenerates (a single satisfied
// draw yields an exact zero delta), so this experiment uses the datasets'
// Table 2 tasks (logistic regression) for adult/covtype, which preserves the
// figure's claim — different winners per dataset — without the degeneracy.
// EXPERIMENTS.md records the substitution.
func Fig1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "fig1",
		Title:  "Motivation: no all-times GD winner (training time, simulated s)",
		Header: []string{"dataset", "task", "tolerance", "BGD", "SGD", "MGD", "winner"},
	}

	rows := []struct {
		name string
		tol  float64
	}{
		{"adult", 0.01},
		{"covtype", 0.01},
		{"rcv1", 1e-4},
	}

	winners := map[string]bool{}
	var globalMin, globalMax cluster.Seconds
	first := true
	for _, row := range rows {
		ds, err := cfg.Dataset(row.name)
		if err != nil {
			return nil, err
		}
		p := ParamsFor(ds, row.tol, 1000)

		type cell struct {
			res *engine.Result
		}
		cells := map[gd.Algo]cell{}
		for _, algo := range []gd.Algo{gd.BGD, gd.SGD, gd.MGD} {
			res, err := cfg.runAlgo(ds, p, algo)
			if err != nil {
				return nil, err
			}
			cells[algo] = cell{res}
			if first || res.Time < globalMin {
				globalMin = res.Time
			}
			if first || res.Time > globalMax {
				globalMax = res.Time
			}
			first = false
		}

		// Winner: fastest converged run; if nothing converged (the paper's
		// rcv1@1e-4 regime, where every algorithm hits the iteration cap),
		// fastest overall.
		winner := gd.BGD
		chosen := false
		for _, a := range []gd.Algo{gd.BGD, gd.SGD, gd.MGD} {
			c := cells[a]
			if !c.res.Converged {
				continue
			}
			if !chosen || c.res.Time < cells[winner].res.Time {
				winner, chosen = a, true
			}
		}
		if !chosen {
			for _, a := range []gd.Algo{gd.SGD, gd.MGD} {
				if cells[a].res.Time < cells[winner].res.Time {
					winner = a
				}
			}
		}
		winners[winner.String()] = true

		fmtCell := func(a gd.Algo) string {
			c := cells[a]
			if c.res.Converged {
				return fmt.Sprintf("%.1f", float64(c.res.Time))
			}
			return fmt.Sprintf(">%.1f", float64(c.res.Time)) // hit the cap
		}
		r.Add(row.name, ds.Task.String(), fmt.Sprintf("%g", row.tol),
			fmtCell(gd.BGD), fmtCell(gd.SGD), fmtCell(gd.MGD), winner.String())
	}

	if len(winners) > 1 {
		r.Note("different winners across datasets (%d distinct) — an optimizer is needed", len(winners))
	} else {
		r.Note("WARNING: a single algorithm won everywhere at this scale")
	}
	r.Note("max/min spread across the grid: %.1fx", float64(globalMax/globalMin))
	return r, nil
}
