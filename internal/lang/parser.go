package lang

import (
	"strconv"
	"strings"
	"time"
)

// Parse parses a script of one or more statements.
func Parse(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(TokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 0 {
		return nil, errAt(p.cur(), "empty query")
	}
	return stmts, nil
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Stmt, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, errAt(Token{Line: 1, Col: 1}, "expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token          { return p.toks[p.pos] }
func (p *parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errAt(t, "expected %s, got %s", k, t)
	}
	return p.next(), nil
}

// keyword checks for a case-insensitive keyword word.
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.Kind == TokWord && strings.EqualFold(t.Text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if !p.keyword(kw) {
		return errAt(t, "expected %q, got %s", kw, t)
	}
	return nil
}

func (p *parser) statement() (Stmt, error) {
	start := p.cur() // the assignment target or leading keyword
	// Optional assignment prefix: IDENT '='.
	result := ""
	if p.at(TokWord) && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokAssign {
		result = p.next().Text
		p.next() // '='
	}
	t := p.cur()
	var s Stmt
	var err error
	switch {
	case p.keyword("run"):
		s, err = p.runStmt(result)
	case p.keyword("predict"):
		s, err = p.predictStmt(result)
	case p.keyword("persist"):
		if result != "" {
			return nil, errAt(t, "persist cannot be assigned")
		}
		s, err = p.persistStmt()
	default:
		return nil, errAt(t, "expected run, predict or persist, got %s", t)
	}
	if err != nil {
		return nil, err
	}
	setPos(s, start)
	return s, nil
}

// setPos stamps the statement with its first token's source position.
func setPos(s Stmt, t Token) {
	pos := Position{Line: t.Line, Col: t.Col}
	switch v := s.(type) {
	case *Run:
		v.Position = pos
	case *Predict:
		v.Position = pos
	case *Persist:
		v.Position = pos
	}
}

func (p *parser) runStmt(result string) (Stmt, error) {
	r := &Run{Result: result}
	taskTok, err := p.expect(TokWord)
	if err != nil {
		return nil, err
	}
	r.Task = taskTok.Text
	if p.at(TokLParen) {
		p.next()
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		r.TaskIsFunc = true
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	for {
		src, err := p.source()
		if err != nil {
			return nil, err
		}
		r.Sources = append(r.Sources, src)
		if !p.at(TokComma) {
			break
		}
		p.next()
		// The paper's own Q2 writes a trailing comma before `having`;
		// tolerate it by ending the source list at a clause keyword.
		if t := p.cur(); t.Kind == TokWord &&
			(strings.EqualFold(t.Text, "having") || strings.EqualFold(t.Text, "using")) {
			break
		}
	}
	if p.keyword("having") {
		if err := p.havingList(r); err != nil {
			return nil, err
		}
	}
	if p.keyword("using") {
		if err := p.usingList(r); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) source() (Source, error) {
	t, err := p.expect(TokWord)
	if err != nil {
		return Source{}, err
	}
	src := Source{Path: t.Text}
	if !p.at(TokColon) {
		return src, nil
	}
	p.next()
	c := p.cur()
	switch c.Kind {
	case TokNumber:
		p.next()
		n, err := strconv.Atoi(c.Text)
		if err != nil || n < 1 {
			return src, errAt(c, "bad column number %q", c.Text)
		}
		src.Lo, src.Hi = n, n
	case TokRange:
		p.next()
		dash := strings.IndexByte(c.Text, '-')
		lo, _ := strconv.Atoi(c.Text[:dash])
		hi, _ := strconv.Atoi(c.Text[dash+1:])
		if lo < 1 || hi < lo {
			return src, errAt(c, "bad column range %q", c.Text)
		}
		src.Lo, src.Hi = lo, hi
	default:
		return src, errAt(c, "expected column or range after ':', got %s", c)
	}
	return src, nil
}

func (p *parser) havingList(r *Run) error {
	for {
		t := p.cur()
		switch {
		case p.keyword("time"):
			d, err := p.expect(TokDuration)
			if err != nil {
				return err
			}
			dur, err := time.ParseDuration(d.Text)
			if err != nil {
				return errAt(d, "bad duration %q: %v", d.Text, err)
			}
			r.Time = dur
		case p.keyword("epsilon"):
			n, err := p.expect(TokNumber)
			if err != nil {
				return err
			}
			v, err := strconv.ParseFloat(n.Text, 64)
			if err != nil || v <= 0 {
				return errAt(n, "bad epsilon %q", n.Text)
			}
			r.Epsilon = v
		case p.keyword("max"):
			if err := p.expectKeyword("iter"); err != nil {
				return err
			}
			n, err := p.expect(TokNumber)
			if err != nil {
				return err
			}
			v, err := strconv.Atoi(n.Text)
			if err != nil || v < 1 {
				return errAt(n, "bad max iter %q", n.Text)
			}
			r.MaxIter = v
		case p.keyword("adaptive"):
			r.Adaptive = true
		case p.keyword("fastmath"):
			r.FastMath = true
		default:
			return errAt(t, "expected time, epsilon, max iter, adaptive or fastmath, got %s", t)
		}
		if !p.at(TokComma) {
			return nil
		}
		p.next()
	}
}

func (p *parser) usingList(r *Run) error {
	for {
		t := p.cur()
		switch {
		case p.keyword("algorithm"):
			w, err := p.expect(TokWord)
			if err != nil {
				return err
			}
			r.Algorithm = w.Text
		case p.keyword("convergence"):
			name, err := p.funcName()
			if err != nil {
				return err
			}
			r.Convergence = name
		case p.keyword("step"):
			n, err := p.expect(TokNumber)
			if err != nil {
				return err
			}
			v, err := strconv.ParseFloat(n.Text, 64)
			if err != nil || v <= 0 {
				return errAt(n, "bad step %q", n.Text)
			}
			r.Step, r.HasStep = v, true
		case p.keyword("sampler"):
			name, err := p.funcName()
			if err != nil {
				return err
			}
			r.Sampler = name
		default:
			return errAt(t, "expected algorithm, convergence, step or sampler, got %s", t)
		}
		if !p.at(TokComma) {
			return nil
		}
		p.next()
	}
}

// funcName parses NAME or NAME().
func (p *parser) funcName() (string, error) {
	w, err := p.expect(TokWord)
	if err != nil {
		return "", err
	}
	if p.at(TokLParen) {
		p.next()
		if _, err := p.expect(TokRParen); err != nil {
			return "", err
		}
	}
	return w.Text, nil
}

func (p *parser) persistStmt() (Stmt, error) {
	model, err := p.expect(TokWord)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	path, err := p.expect(TokWord)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return &Persist{Model: model.Text, Path: path.Text}, nil
}

func (p *parser) predictStmt(result string) (Stmt, error) {
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	dataTok, err := p.expect(TokWord)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	model, err := p.expect(TokWord)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return &Predict{Result: result, Data: dataTok.Text, Model: model.Text}, nil
}
