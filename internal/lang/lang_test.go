package lang

import (
	"strings"
	"testing"
	"time"
)

func parseRun(t *testing.T, src string) *Run {
	t.Helper()
	st, err := ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	r, ok := st.(*Run)
	if !ok {
		t.Fatalf("parsed %T, want *Run", st)
	}
	return r
}

func TestParseQ1(t *testing.T) {
	r := parseRun(t, "Q1 = run classification on training_data.txt;")
	if r.Result != "Q1" || r.Task != "classification" || r.TaskIsFunc {
		t.Fatalf("parsed %+v", r)
	}
	if len(r.Sources) != 1 || r.Sources[0].Path != "training_data.txt" || r.Sources[0].Lo != 0 {
		t.Fatalf("sources = %+v", r.Sources)
	}
}

func TestParseQ2WithHavingAndColumns(t *testing.T) {
	r := parseRun(t, `Q2 = run classification
		on input_data.txt:2, input_data.txt:4-20,
		having time 1h30m, epsilon 0.01, max iter 1000;`)
	if len(r.Sources) != 2 {
		t.Fatalf("sources = %+v", r.Sources)
	}
	if r.Sources[0].Lo != 2 || r.Sources[0].Hi != 2 {
		t.Fatalf("label column = %+v", r.Sources[0])
	}
	if r.Sources[1].Lo != 4 || r.Sources[1].Hi != 20 {
		t.Fatalf("feature range = %+v", r.Sources[1])
	}
	if r.Time != 90*time.Minute {
		t.Fatalf("time = %v, want 1h30m", r.Time)
	}
	if r.Epsilon != 0.01 || r.MaxIter != 1000 {
		t.Fatalf("epsilon/maxiter = %g/%d", r.Epsilon, r.MaxIter)
	}
}

func TestParseQ3WithUsing(t *testing.T) {
	r := parseRun(t, `Q3 = run classification on input_data.txt
		using algorithm SGD, convergence cnvg(), step 1, sampler my_sampler();`)
	if r.Algorithm != "SGD" || r.Convergence != "cnvg" || r.Sampler != "my_sampler" {
		t.Fatalf("using = %+v", r)
	}
	if !r.HasStep || r.Step != 1 {
		t.Fatalf("step = %v/%g", r.HasStep, r.Step)
	}
}

func TestParseGradientFunctionTask(t *testing.T) {
	r := parseRun(t, "run hinge() on data.txt;")
	if r.Task != "hinge" || !r.TaskIsFunc {
		t.Fatalf("parsed %+v", r)
	}
}

func TestParseUnassignedRun(t *testing.T) {
	r := parseRun(t, "run regression on d.csv having epsilon 1e-4;")
	if r.Result != "" || r.Epsilon != 1e-4 {
		t.Fatalf("parsed %+v", r)
	}
}

func TestParsePersist(t *testing.T) {
	st, err := ParseOne("persist Q1 on my_model.txt;")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := st.(*Persist)
	if !ok || p.Model != "Q1" || p.Path != "my_model.txt" {
		t.Fatalf("parsed %+v", st)
	}
}

func TestParsePredict(t *testing.T) {
	st, err := ParseOne("result = predict on test_data.txt with my_model.txt;")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := st.(*Predict)
	if !ok || p.Result != "result" || p.Data != "test_data.txt" || p.Model != "my_model.txt" {
		t.Fatalf("parsed %+v", st)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := Parse(`
		# train then evaluate
		Q1 = run classification on train.txt having epsilon 0.01;
		persist Q1 on model.txt;
		r = predict on test.txt with model.txt;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d, want 3", len(stmts))
	}
	if _, ok := stmts[0].(*Run); !ok {
		t.Fatalf("stmt 0 is %T", stmts[0])
	}
	if _, ok := stmts[1].(*Persist); !ok {
		t.Fatalf("stmt 1 is %T", stmts[1])
	}
	if _, ok := stmts[2].(*Predict); !ok {
		t.Fatalf("stmt 2 is %T", stmts[2])
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []string{
		"",                            // empty
		"run;",                        // missing everything
		"run classification;",         // missing source
		"run classification on;",      // missing path
		"run classification on a.txt", // missing semicolon
		"run classification on a.txt having bogus 1;",    // unknown constraint
		"run classification on a.txt having epsilon -1;", // bad epsilon
		"run classification on a.txt having time xyz;",   // bad duration
		"run classification on a.txt having max 1000;",   // max without iter
		"run classification on a.txt using algorithm;",   // missing value
		"run classification on a.txt using wibble 1;",    // unknown directive
		"persist on m.txt;",                              // missing model
		"predict on a.txt;",                              // missing with
		"x = persist Q on m.txt;",                        // assigned persist
		"run classification on a.txt:0;",                 // column < 1
		"run classification on a.txt:9-4;",               // inverted range
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseAdaptiveKnob(t *testing.T) {
	st, err := ParseOne("run classification on train.txt having epsilon 0.01, adaptive;")
	if err != nil {
		t.Fatal(err)
	}
	r := st.(*Run)
	if !r.Adaptive {
		t.Fatal("adaptive knob not parsed")
	}
	if r.Epsilon != 0.01 {
		t.Fatalf("epsilon = %g alongside adaptive", r.Epsilon)
	}
	st, err = ParseOne("run classification on train.txt;")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*Run).Adaptive {
		t.Fatal("adaptive defaulted on")
	}
}

func TestParseFastMathKnob(t *testing.T) {
	st, err := ParseOne("run classification on train.txt having epsilon 0.01, fastmath;")
	if err != nil {
		t.Fatal(err)
	}
	r := st.(*Run)
	if !r.FastMath {
		t.Fatal("fastmath knob not parsed")
	}
	if r.Epsilon != 0.01 {
		t.Fatalf("epsilon = %g alongside fastmath", r.Epsilon)
	}
	st, err = ParseOne("run classification on train.txt;")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*Run).FastMath {
		t.Fatal("fastmath defaulted on")
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := Parse("run classification on a.txt having bogus 1;")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 1 || se.Col == 0 {
		t.Fatalf("position %d:%d not populated", se.Line, se.Col)
	}
	if !strings.Contains(err.Error(), "1:") {
		t.Fatalf("message lacks position: %q", err.Error())
	}
}

func TestRunStringRoundTrips(t *testing.T) {
	srcs := []string{
		"Q1 = run classification on train.txt;",
		"Q2 = run classification on in.txt:2, in.txt:4-20 having time 1h30m0s, epsilon 0.01, max iter 1000;",
		"Q3 = run classification on train.txt having epsilon 0.01, adaptive;",
		"Q4 = run classification on train.txt having epsilon 0.01, fastmath;",
		"run regression on d.csv using algorithm BGD, step 0.5;",
		"persist Q1 on m.txt;",
		"r = predict on t.txt with m.txt;",
	}
	for _, src := range srcs {
		st, err := ParseOne(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		var rendered string
		switch s := st.(type) {
		case *Run:
			rendered = s.String()
		case *Persist:
			rendered = s.String()
		case *Predict:
			rendered = s.String()
		}
		again, err := ParseOne(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		var rendered2 string
		switch s := again.(type) {
		case *Run:
			rendered2 = s.String()
		case *Persist:
			rendered2 = s.String()
		case *Predict:
			rendered2 = s.String()
		}
		if rendered != rendered2 {
			t.Fatalf("render not stable: %q vs %q", rendered, rendered2)
		}
	}
}

func TestLexerClassification(t *testing.T) {
	toks, err := Lex("run 0.01 1e-4 1h30m 4-20 data/x.txt ( ) , ; = :")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokWord, TokNumber, TokNumber, TokDuration, TokRange, TokWord,
		TokLParen, TokRParen, TokComma, TokSemicolon, TokAssign, TokColon, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	if _, err := Lex("run @ x"); err == nil {
		t.Fatal("'@' accepted")
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := Lex("# full line\nrun # trailing\n;")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // run, ;, EOF
		t.Fatalf("tokens = %v", toks)
	}
}

// TestStatementsCarryPositions pins the At() accessor the execution layer
// uses to point run-time failures back into the submitted script.
func TestStatementsCarryPositions(t *testing.T) {
	stmts, err := Parse(`run classification on a.txt;
  Q2 = run regression on b.txt;
persist Q2 on out.model;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	want := []Position{{Line: 1, Col: 1}, {Line: 2, Col: 3}, {Line: 3, Col: 1}}
	for i, st := range stmts {
		if st.At() != want[i] {
			t.Fatalf("statement %d at %v, want %v", i, st.At(), want[i])
		}
	}
	if want[1].String() != "2:3" {
		t.Fatalf("Position.String = %q", want[1].String())
	}
}
