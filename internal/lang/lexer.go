package lang

import (
	"strings"
	"unicode"
)

// lexer splits a query string into tokens. Words are greedy runs of
// path-friendly characters (letters, digits, '.', '/', '_', '-'), so dataset
// paths need no quoting — matching the paper's examples. A word shaped like
// a number, duration or column range is reclassified accordingly.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	for {
		b, ok := l.peekByte()
		if !ok {
			return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
		}
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			l.advance()
		case b == '#': // comment to end of line
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return l.lexToken()
		}
	}
}

func (l *lexer) lexToken() (Token, error) {
	line, col := l.line, l.col
	b := l.src[l.pos]
	mk := func(kind TokenKind, text string) Token {
		return Token{Kind: kind, Text: text, Line: line, Col: col}
	}
	switch b {
	case ',':
		l.advance()
		return mk(TokComma, ","), nil
	case ';':
		l.advance()
		return mk(TokSemicolon, ";"), nil
	case '=':
		l.advance()
		return mk(TokAssign, "="), nil
	case ':':
		l.advance()
		return mk(TokColon, ":"), nil
	case '(':
		l.advance()
		return mk(TokLParen, "("), nil
	case ')':
		l.advance()
		return mk(TokRParen, ")"), nil
	}
	if !isWordByte(b) {
		t := mk(TokWord, string(b))
		return t, errAt(t, "unexpected character %q", string(b))
	}
	var sb strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok || !isWordByte(c) {
			break
		}
		sb.WriteByte(l.advance())
	}
	word := sb.String()
	return mk(classify(word), word), nil
}

func isWordByte(b byte) bool {
	r := rune(b)
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		b == '.' || b == '/' || b == '_' || b == '-' || b == '+'
}

// classify reclassifies a word as a number, duration or column range when it
// is shaped like one.
func classify(w string) TokenKind {
	switch {
	case isNumber(w):
		return TokNumber
	case isDuration(w):
		return TokDuration
	case isRange(w):
		return TokRange
	default:
		return TokWord
	}
}

func isNumber(w string) bool {
	dot, exp, digits := false, false, false
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case c >= '0' && c <= '9':
			digits = true
		case c == '.' && !dot && !exp:
			dot = true
		case (c == 'e' || c == 'E') && digits && !exp:
			exp = true
			// allow a sign right after the exponent
			if i+1 < len(w) && (w[i+1] == '+' || w[i+1] == '-') {
				i++
			}
		case (c == '+' || c == '-') && i == 0:
		default:
			return false
		}
	}
	return digits
}

// isDuration accepts the h/m/s/ms compound forms of the paper's examples
// (1h30m, 45m, 10s) plus sub-second units accepted by time.ParseDuration.
func isDuration(w string) bool {
	if len(w) < 2 {
		return false
	}
	digits, units := 0, 0
	i := 0
	for i < len(w) {
		start := i
		for i < len(w) && w[i] >= '0' && w[i] <= '9' {
			i++
		}
		if i == start {
			return false
		}
		digits++
		switch {
		case i < len(w) && w[i] == 'm' && i+1 < len(w) && w[i+1] == 's':
			i += 2
		case i < len(w) && (w[i] == 'h' || w[i] == 'm' || w[i] == 's'):
			i++
		default:
			return false
		}
		units++
	}
	return digits > 0 && digits == units
}

// isRange accepts column ranges like 4-20.
func isRange(w string) bool {
	dash := strings.IndexByte(w, '-')
	if dash <= 0 || dash == len(w)-1 {
		return false
	}
	for i, c := range w {
		if i == dash {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
