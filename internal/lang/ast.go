package lang

import (
	"fmt"
	"strings"
	"time"
)

// Stmt is any top-level statement of the language.
type Stmt interface {
	stmt()
	// At returns the statement's source position (its first token), so
	// execution-time errors can point back into the submitted script the
	// way parse errors already do.
	At() Position
}

// Position is a 1-based source location.
type Position struct {
	Line, Col int
}

// At makes any statement embedding a Position satisfy Stmt's position
// accessor.
func (p Position) At() Position { return p }

// String renders the position as line:col.
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Source is one dataset reference with an optional column specification:
// "input.txt:2" selects column 2, "input.txt:4-20" columns 4 through 20.
type Source struct {
	Path string
	// Lo/Hi are the 1-based column range; Lo == 0 means no column spec,
	// Lo == Hi a single column.
	Lo, Hi int
}

// String renders the source as written.
func (s Source) String() string {
	switch {
	case s.Lo == 0:
		return s.Path
	case s.Lo == s.Hi:
		return fmt.Sprintf("%s:%d", s.Path, s.Lo)
	default:
		return fmt.Sprintf("%s:%d-%d", s.Path, s.Lo, s.Hi)
	}
}

// Run is the central statement: run <task> on <sources> [having ...]
// [using ...];
type Run struct {
	Position

	// Result is the assigned query name (Q1 in "Q1 = run ..."), empty when
	// unassigned.
	Result string
	// Task is "classification", "regression", or a gradient function name
	// such as "hinge" (written hinge() in the source).
	Task       string
	TaskIsFunc bool
	Sources    []Source

	// having constraints; zero values mean unspecified.
	Time    time.Duration
	Epsilon float64
	MaxIter int
	// Adaptive enables mid-flight re-optimization: the system may switch
	// GD plans while training when observed convergence contradicts the
	// speculation the initial choice was based on.
	Adaptive bool
	// FastMath opts the statement into the tolerance-bounded fast kernel
	// tier (engine.Options.FastMath): faster training, results equal to the
	// exact tier only within documented epsilon bounds.
	FastMath bool

	// using directives; empty/zero mean optimizer's choice.
	Algorithm   string
	Convergence string // convergence function name
	Step        float64
	HasStep     bool
	Sampler     string
}

func (*Run) stmt() {}

// String renders the statement canonically.
func (r *Run) String() string {
	var b strings.Builder
	if r.Result != "" {
		fmt.Fprintf(&b, "%s = ", r.Result)
	}
	b.WriteString("run ")
	b.WriteString(r.Task)
	if r.TaskIsFunc {
		b.WriteString("()")
	}
	b.WriteString(" on ")
	for i, s := range r.Sources {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	var having []string
	if r.Time > 0 {
		having = append(having, fmt.Sprintf("time %s", r.Time))
	}
	if r.Epsilon > 0 {
		having = append(having, fmt.Sprintf("epsilon %g", r.Epsilon))
	}
	if r.MaxIter > 0 {
		having = append(having, fmt.Sprintf("max iter %d", r.MaxIter))
	}
	if r.Adaptive {
		having = append(having, "adaptive")
	}
	if r.FastMath {
		having = append(having, "fastmath")
	}
	if len(having) > 0 {
		b.WriteString(" having ")
		b.WriteString(strings.Join(having, ", "))
	}
	var using []string
	if r.Algorithm != "" {
		using = append(using, "algorithm "+r.Algorithm)
	}
	if r.Convergence != "" {
		using = append(using, "convergence "+r.Convergence+"()")
	}
	if r.HasStep {
		using = append(using, fmt.Sprintf("step %g", r.Step))
	}
	if r.Sampler != "" {
		using = append(using, "sampler "+r.Sampler+"()")
	}
	if len(using) > 0 {
		b.WriteString(" using ")
		b.WriteString(strings.Join(using, ", "))
	}
	b.WriteString(";")
	return b.String()
}

// Persist stores a trained model: persist Q1 on my_model.txt;
type Persist struct {
	Position

	Model string // query name
	Path  string
}

func (*Persist) stmt() {}

// String renders the statement.
func (p *Persist) String() string {
	return fmt.Sprintf("persist %s on %s;", p.Model, p.Path)
}

// Predict applies a stored model: result = predict on test.txt with model.txt;
type Predict struct {
	Position

	Result string
	Data   string
	Model  string
}

func (*Predict) stmt() {}

// String renders the statement.
func (p *Predict) String() string {
	var b strings.Builder
	if p.Result != "" {
		fmt.Fprintf(&b, "%s = ", p.Result)
	}
	fmt.Fprintf(&b, "predict on %s with %s;", p.Data, p.Model)
	return b.String()
}
