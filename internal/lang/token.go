// Package lang implements the paper's declarative GD language (Appendix A):
//
//	Q1 = run classification on training_data.txt;
//	Q2 = run classification on input.txt:2, input.txt:4-20
//	     having time 1h30m, epsilon 0.01, max iter 1000;
//	Q3 = run classification on input.txt
//	     using algorithm SGD, convergence cnvg(), step 1, sampler my_sampler();
//	persist Q1 on my_model.txt;
//	result = predict on test_data.txt with my_model.txt;
//
// The package provides the lexer, AST and recursive-descent parser; binding
// names to gradient functions, samplers and datasets happens in the public
// ml4all facade.
package lang

import "fmt"

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF      TokenKind = iota
	TokWord               // identifiers, keywords, paths: run, SGD, data/train.txt
	TokNumber             // 0.01, 1000, 1e-4
	TokDuration           // 1h30m, 45m, 10s
	TokComma
	TokSemicolon
	TokAssign // =
	TokColon  // : (column spec separator)
	TokRange  // 4-20 (column range; lexed as one token)
	TokLParen
	TokRParen
)

// String returns a readable kind name.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokWord:
		return "word"
	case TokNumber:
		return "number"
	case TokDuration:
		return "duration"
	case TokComma:
		return "','"
	case TokSemicolon:
		return "';'"
	case TokAssign:
		return "'='"
	case TokColon:
		return "':'"
	case TokRange:
		return "range"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexeme with its source position (1-based line and column).
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// SyntaxError is a parse or lex failure with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("lang: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t Token, format string, args ...any) error {
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}
