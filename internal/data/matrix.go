package data

import (
	"fmt"
	"math"

	"ml4all/internal/linalg"
)

// Matrix is the columnar arena the whole compute stack reads from: instead of
// one heap object per data unit (a Unit with its own Indices/Values/Dense
// slices), the entire dataset lives in a handful of flat arrays. Sparse data
// is CSR — one indices array, one values array, one rowOffsets array — and
// dense data is a single strided values array; labels are a column of their
// own. Rows are handed out as cheap value-type views (Row) that alias the
// arena: no copying, no per-row allocation, and sequential scans walk
// contiguous memory instead of chasing pointers.
//
// A Matrix is immutable after Build. Views produced by Slice and Gather share
// the arena and add only a row-index indirection, so train/test splits and
// speculation samples are zero-copy too.
type Matrix struct {
	n      int  // row count (of the view, when rowIDs is set)
	dense  bool // strided dense layout (stride features per row) vs CSR
	stride int  // dense: features per row

	labels  []float64 // per base row
	offsets []int64   // sparse: len baseRows+1, offsets[i]..offsets[i+1] spans row i
	indices []int32   // sparse: column indices, sorted ascending within a row
	values  []float64 // sparse: nnz values; dense: baseRows*stride values

	rowIDs []int32 // nil => identity view over the base arena
}

// Row is a zero-copy view of one matrix row: the label plus the row's slice
// of the arena. It is the value type the operators, gradients and kernels
// take in place of Unit. For sparse rows Idx holds the (ascending) column
// indices of Vals; for dense rows Idx is nil and Vals is the full feature
// vector.
type Row struct {
	Label float64
	Idx   []int32
	Vals  []float64

	sparse bool
}

// NewSparseRow builds a standalone sparse row view over the given slices.
// Indices must be sorted ascending with duplicates summed (the SortDedup
// normalization); parsers and NewSparse guarantee this.
func NewSparseRow(label float64, idx []int32, vals []float64) Row {
	return Row{Label: label, Idx: idx, Vals: vals, sparse: true}
}

// NewDenseRow builds a standalone dense row view over the given values.
func NewDenseRow(label float64, vals []float64) Row {
	return Row{Label: label, Vals: vals}
}

// IsSparse reports whether the row stores its features sparsely.
func (r Row) IsSparse() bool { return r.sparse }

// NNZ returns the number of stored feature values.
func (r Row) NNZ() int { return len(r.Vals) }

// Dot returns the inner product of the row's features with w.
func (r Row) Dot(w linalg.Vector) float64 {
	if r.sparse {
		return linalg.SparseDot(r.Idx, r.Vals, w)
	}
	return linalg.Vector(r.Vals).Dot(w)
}

// AddScaledInto accumulates alpha * features into dst.
func (r Row) AddScaledInto(dst linalg.Vector, alpha float64) {
	if r.sparse {
		linalg.SparseAddScaledInto(dst, alpha, r.Idx, r.Vals)
		return
	}
	dst.AddScaled(alpha, r.Vals)
}

// Norm2 returns the Euclidean norm of the row's features.
func (r Row) Norm2() float64 { return linalg.SparseNorm2(r.Vals) }

// MaxIndex returns the largest feature index present (0-based), or -1 when
// the row has no features.
func (r Row) MaxIndex() int {
	if r.sparse {
		if len(r.Idx) == 0 {
			return -1
		}
		return int(r.Idx[len(r.Idx)-1])
	}
	return len(r.Vals) - 1
}

// ApproxBytes estimates the in-memory footprint of the row in bytes, matching
// the accounting a columnar record reader does (8 bytes per value, 4 per
// sparse index, 8 for the label).
func (r Row) ApproxBytes() int {
	if r.sparse {
		return 8 + 12*len(r.Vals)
	}
	return 8 + 8*len(r.Vals)
}

// Unit materializes the row as a standalone compatibility Unit. The slices
// are shared, not copied — treat the result as read-only.
func (r Row) Unit() Unit {
	if r.sparse {
		return NewSparseUnit(r.Label, linalg.Sparse{Indices: r.Idx, Values: r.Vals})
	}
	return NewDenseUnit(r.Label, r.Vals)
}

// emptyIdx backs the Idx slice of empty sparse rows so IsSparse-by-shape
// stays distinguishable from dense even for rows with no stored features.
var emptyIdx = make([]int32, 0)

// NumRows returns the number of rows in the matrix (view).
func (m *Matrix) NumRows() int { return m.n }

// IsDense reports whether the matrix stores rows in the strided dense layout.
func (m *Matrix) IsDense() bool { return m.dense }

// Stride returns the dense feature count per row (0 for sparse matrices).
func (m *Matrix) Stride() int { return m.stride }

// baseRow maps a view row index to its base arena row.
func (m *Matrix) baseRow(i int) int {
	if m.rowIDs != nil {
		return int(m.rowIDs[i])
	}
	return i
}

// Row returns the zero-copy view of row i.
func (m *Matrix) Row(i int) Row {
	j := m.baseRow(i)
	if m.dense {
		return Row{Label: m.labels[j], Vals: m.values[j*m.stride : (j+1)*m.stride]}
	}
	lo, hi := m.offsets[j], m.offsets[j+1]
	// m.indices is never nil after Build, so the subslice is non-nil even
	// for empty rows and IsSparse stays truthful.
	return Row{Label: m.labels[j], Idx: m.indices[lo:hi], Vals: m.values[lo:hi], sparse: true}
}

// Label returns the label of row i without materializing the row view.
func (m *Matrix) Label(i int) float64 { return m.labels[m.baseRow(i)] }

// SetLabel overwrites the label of row i — the one sanctioned mutation
// (label-noise injection, relabeling workflows). The feature arena stays
// immutable. Views share the labels column with their base, so the write is
// visible through every view of the same arena — including Split/Sample
// subsets, which under the legacy []Unit layout held their own Unit copies
// and did NOT see later label writes. Corrupt labels before splitting, or
// accept that held-out views observe the write; the view tests pin this
// aliasing as intentional.
func (m *Matrix) SetLabel(i int, v float64) { m.labels[m.baseRow(i)] = v }

// RowNNZ returns the number of stored values of row i — an O(1) offsets
// lookup, used by per-unit cost accounting.
func (m *Matrix) RowNNZ(i int) int {
	if m.dense {
		return m.stride
	}
	j := m.baseRow(i)
	return int(m.offsets[j+1] - m.offsets[j])
}

// NNZ returns the total number of stored values across all rows of the view.
func (m *Matrix) NNZ() int {
	if m.dense {
		return m.n * m.stride
	}
	if m.rowIDs == nil {
		return len(m.values)
	}
	var nnz int64
	for i := 0; i < m.n; i++ {
		j := int(m.rowIDs[i])
		nnz += m.offsets[j+1] - m.offsets[j]
	}
	return int(nnz)
}

// MaxIndex returns the largest feature index present in the view, or -1 when
// no row stores a feature.
func (m *Matrix) MaxIndex() int {
	max := -1
	for i := 0; i < m.n; i++ {
		if mi := m.Row(i).MaxIndex(); mi > max {
			max = mi
		}
	}
	return max
}

// Rows materializes every row view of the matrix. It allocates only the
// []Row header slice — each element still aliases the arena. Intended for
// cold paths (tests, reference objectives, evaluation helpers); hot loops
// should index Row(i) directly.
func (m *Matrix) Rows() []Row {
	rows := make([]Row, m.n)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// Slice returns the zero-copy view of rows [lo, hi) — the arena stays
// shared; only a row-index indirection is added. Panics on an invalid range,
// like a slice expression.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.n {
		panic(fmt.Sprintf("data: Matrix.Slice [%d:%d) out of range for %d rows", lo, hi, m.n))
	}
	ids := make([]int32, hi-lo)
	for i := range ids {
		ids[i] = int32(m.baseRow(lo + i))
	}
	return m.view(ids)
}

// Gather returns the zero-copy view selecting the given row indices of m, in
// order (duplicates allowed). Panics on an out-of-range index.
func (m *Matrix) Gather(rows []int) *Matrix {
	ids := make([]int32, len(rows))
	for k, i := range rows {
		if i < 0 || i >= m.n {
			panic(fmt.Sprintf("data: Matrix.Gather row %d out of range for %d rows", i, m.n))
		}
		ids[k] = int32(m.baseRow(i))
	}
	return m.view(ids)
}

// view wraps base-row ids into a Matrix sharing m's arena.
func (m *Matrix) view(ids []int32) *Matrix {
	return &Matrix{
		n: len(ids), dense: m.dense, stride: m.stride,
		labels: m.labels, offsets: m.offsets, indices: m.indices, values: m.values,
		rowIDs: ids,
	}
}

// MatrixBuilder assembles a Matrix row by row, writing straight into the
// arena: AppendSparse normalizes (sorts, sums duplicates of) each row in
// place at the arena tail, so building a dataset performs no intermediate
// per-row allocation. Pre-size with the rows/nnz capacity hints when a
// counting pass ran first; the builder grows amortized otherwise.
type MatrixBuilder struct {
	m     Matrix
	view  Matrix // BuildView's result record, reused so views allocate nothing
	dense bool
	set   bool // layout fixed by the first append (or the constructor)
}

// NewMatrixBuilder returns a builder whose layout (sparse or dense) is fixed
// by the first appended row. rows and nnz are capacity hints; zero is fine.
func NewMatrixBuilder(rows, nnz int) *MatrixBuilder {
	b := &MatrixBuilder{}
	if rows > 0 {
		b.m.labels = make([]float64, 0, rows)
	}
	if nnz > 0 {
		b.m.indices = make([]int32, 0, nnz)
		b.m.values = make([]float64, 0, nnz)
	}
	return b
}

// NewDenseMatrixBuilder returns a builder for a dense matrix with the given
// stride (features per row). rows is a capacity hint.
func NewDenseMatrixBuilder(rows, stride int) *MatrixBuilder {
	b := &MatrixBuilder{dense: true, set: true}
	b.m.dense = true
	b.m.stride = stride
	if rows > 0 {
		b.m.labels = make([]float64, 0, rows)
		b.m.values = make([]float64, 0, rows*stride)
	}
	return b
}

// Len returns the number of rows appended so far.
func (b *MatrixBuilder) Len() int { return len(b.m.labels) }

// AppendSparse appends one sparse row, copying (idx, vals) into the arena and
// normalizing the copy in place (sorted ascending, duplicate indices summed —
// the same SortDedup rule NewSparse applies, so arena rows are bitwise
// identical to Unit construction). The caller keeps ownership of idx/vals and
// may reuse them across calls.
func (b *MatrixBuilder) AppendSparse(label float64, idx []int32, vals []float64) error {
	if b.set && b.dense {
		return fmt.Errorf("data: AppendSparse on a dense matrix builder")
	}
	b.set = true
	if len(idx) != len(vals) {
		return fmt.Errorf("data: sparse row length mismatch %d vs %d", len(idx), len(vals))
	}
	if b.m.offsets == nil {
		b.m.offsets = append(make([]int64, 0, cap(b.m.labels)+1), 0)
	}
	lo := len(b.m.indices)
	b.m.indices = append(b.m.indices, idx...)
	b.m.values = append(b.m.values, vals...)
	n, err := linalg.SortDedup(b.m.indices[lo:], b.m.values[lo:])
	if err != nil {
		b.m.indices = b.m.indices[:lo]
		b.m.values = b.m.values[:lo]
		return err
	}
	b.m.indices = b.m.indices[:lo+n]
	b.m.values = b.m.values[:lo+n]
	b.m.offsets = append(b.m.offsets, int64(lo+n))
	b.m.labels = append(b.m.labels, label)
	return nil
}

// AppendDense appends one dense row, copying vals into the strided arena.
// Every row must match the builder's stride (fixed by the constructor or the
// first appended row).
func (b *MatrixBuilder) AppendDense(label float64, vals []float64) error {
	if b.set && !b.dense {
		return fmt.Errorf("data: AppendDense on a sparse matrix builder")
	}
	if !b.set {
		b.set, b.dense = true, true
		b.m.dense = true
		b.m.stride = len(vals)
	}
	if len(vals) != b.m.stride {
		return fmt.Errorf("data: dense row has %d features, matrix stride is %d", len(vals), b.m.stride)
	}
	b.m.values = append(b.m.values, vals...)
	b.m.labels = append(b.m.labels, label)
	return nil
}

// DenseRowBuffer returns a writable slice for the next dense row, appended in
// place: generators fill it directly instead of staging a separate vector.
// The row is committed with the given label; the returned slice is only valid
// until the next append.
func (b *MatrixBuilder) DenseRowBuffer() (linalg.Vector, error) {
	if !b.set || !b.dense || b.m.stride == 0 {
		return nil, fmt.Errorf("data: DenseRowBuffer needs a stride — use NewDenseMatrixBuilder")
	}
	lo := len(b.m.values)
	hi := lo + b.m.stride
	if hi > cap(b.m.values) {
		grown := make([]float64, lo, growCap(cap(b.m.values), hi))
		copy(grown, b.m.values)
		b.m.values = grown
	}
	b.m.values = b.m.values[:hi]
	clear(b.m.values[lo:hi]) // recycled arenas hold stale data; rows go out zero-filled
	return b.m.values[lo:], nil
}

// CommitDenseRow finalizes the row last handed out by DenseRowBuffer.
func (b *MatrixBuilder) CommitDenseRow(label float64) {
	b.m.labels = append(b.m.labels, label)
}

// growCap picks the next arena capacity reaching need: doubled like append's
// growth, so repeated row appends stay amortized O(1).
func growCap(c, need int) int {
	if c < 8 {
		c = 8
	}
	for c < need {
		c *= 2
	}
	return c
}

// AppendDensePadded appends one dense row: vals, zero-padded to the stride.
// It writes each element of the row exactly once (the copied prefix is never
// pre-cleared), which is the serving ingest hot path's fused form of
// DenseRowBuffer + copy + CommitDenseRow.
func (b *MatrixBuilder) AppendDensePadded(label float64, vals []float64) error {
	if !b.set || !b.dense || b.m.stride == 0 {
		return fmt.Errorf("data: AppendDensePadded needs a stride — use NewDenseMatrixBuilder")
	}
	if len(vals) > b.m.stride {
		return fmt.Errorf("data: AppendDensePadded: row has %d values, stride is %d", len(vals), b.m.stride)
	}
	lo := len(b.m.values)
	hi := lo + b.m.stride
	if hi > cap(b.m.values) {
		grown := make([]float64, lo, growCap(cap(b.m.values), hi))
		copy(grown, b.m.values)
		b.m.values = grown
	}
	b.m.values = b.m.values[:hi]
	n := copy(b.m.values[lo:], vals)
	clear(b.m.values[lo+n : hi]) // recycled arenas hold stale data past the copy
	b.m.labels = append(b.m.labels, label)
	return nil
}

// AppendRows bulk-appends every row of m, which must share the builder's
// layout (and stride, when dense). Rows arrive already normalized — m was
// built through AppendSparse or a parser — so the copy skips SortDedup: the
// appended rows are bitwise identical to appending them one by one, at
// memcpy speed. Identity views copy their arena ranges wholesale; gathered
// views fall back to per-row copies. This is the merge step of the serving
// layer's request coalescer: per-request arenas concatenate into one shared
// batch arena.
func (b *MatrixBuilder) AppendRows(m *Matrix) error {
	if m.dense {
		if b.set && !b.dense {
			return fmt.Errorf("data: AppendRows: dense rows into a sparse builder")
		}
		if !b.set {
			b.set, b.dense = true, true
			b.m.dense = true
			b.m.stride = m.stride
		}
		if m.stride != b.m.stride {
			return fmt.Errorf("data: AppendRows: dense stride %d into a stride-%d builder", m.stride, b.m.stride)
		}
		if m.rowIDs == nil {
			b.m.values = append(b.m.values, m.values...)
			b.m.labels = append(b.m.labels, m.labels...)
			return nil
		}
		for i := 0; i < m.n; i++ {
			j := int(m.rowIDs[i])
			b.m.values = append(b.m.values, m.values[j*m.stride:(j+1)*m.stride]...)
			b.m.labels = append(b.m.labels, m.labels[j])
		}
		return nil
	}
	if b.set && b.dense {
		return fmt.Errorf("data: AppendRows: sparse rows into a dense builder")
	}
	b.set = true
	if b.m.offsets == nil {
		b.m.offsets = append(make([]int64, 0, cap(b.m.labels)+1), 0)
	}
	if m.rowIDs == nil {
		base := int64(len(b.m.indices)) - m.offsets[0]
		b.m.indices = append(b.m.indices, m.indices[m.offsets[0]:m.offsets[len(m.offsets)-1]]...)
		b.m.values = append(b.m.values, m.values[m.offsets[0]:m.offsets[len(m.offsets)-1]]...)
		for _, off := range m.offsets[1:] {
			b.m.offsets = append(b.m.offsets, base+off)
		}
		b.m.labels = append(b.m.labels, m.labels...)
		return nil
	}
	for i := 0; i < m.n; i++ {
		j := int(m.rowIDs[i])
		lo, hi := m.offsets[j], m.offsets[j+1]
		b.m.indices = append(b.m.indices, m.indices[lo:hi]...)
		b.m.values = append(b.m.values, m.values[lo:hi]...)
		b.m.offsets = append(b.m.offsets, int64(len(b.m.indices)))
		b.m.labels = append(b.m.labels, m.labels[j])
	}
	return nil
}

// Build finalizes and returns the matrix. The builder must not be used
// afterwards.
func (b *MatrixBuilder) Build() *Matrix {
	m := b.m
	m.n = len(m.labels)
	if !m.dense {
		if m.offsets == nil {
			m.offsets = []int64{0}
		}
		if m.indices == nil {
			m.indices = emptyIdx
		}
	}
	b.m = Matrix{}
	return &m
}

// BuildView finalizes the appended rows as a Matrix that ALIASES the
// builder's arena instead of detaching it: the view (one record owned by the
// builder, overwritten by the next BuildView) is valid only until the
// builder's next Reset or append. Pooled-ingest callers — the serving
// layer's request parsers — use BuildView + Reset so one builder's arena is
// recycled across requests with zero steady-state allocation; everyone else
// should use Build.
func (b *MatrixBuilder) BuildView() *Matrix {
	b.view = b.m
	b.view.n = len(b.view.labels)
	if !b.view.dense {
		if b.view.offsets == nil {
			b.view.offsets = []int64{0}
		}
		if b.view.indices == nil {
			b.view.indices = emptyIdx
		}
	}
	return &b.view
}

// Reset returns the builder to its post-construction state while keeping the
// arena capacity, invalidating every Matrix previously produced by BuildView.
// The layout is unfixed again: the next append (or SetDense) re-fixes it, so
// one pooled builder serves sparse and dense requests alike.
func (b *MatrixBuilder) Reset() {
	b.m.labels = b.m.labels[:0]
	b.m.values = b.m.values[:0]
	b.m.indices = b.m.indices[:0]
	if b.m.offsets != nil {
		b.m.offsets = append(b.m.offsets[:0], 0)
	}
	b.m.dense = false
	b.m.stride = 0
	b.dense = false
	b.set = false
}

// SetDense fixes the dense layout with the given stride on a fresh (or
// Reset) builder, as NewDenseMatrixBuilder's constructor does — required
// before DenseRowBuffer on a pooled builder. Fails once rows are appended or
// the layout is already fixed.
func (b *MatrixBuilder) SetDense(stride int) error {
	if b.set || len(b.m.labels) > 0 {
		return fmt.Errorf("data: SetDense on a builder whose layout is already fixed")
	}
	if stride <= 0 {
		return fmt.Errorf("data: SetDense needs a positive stride, got %d", stride)
	}
	b.set, b.dense = true, true
	b.m.dense = true
	b.m.stride = stride
	return nil
}

// matrixOfUnits converts already-materialized units into an arena — the
// compatibility path FromUnits rides on. All-dense unit sets with a uniform
// dimensionality become a strided dense matrix; anything else (sparse or
// ragged) becomes CSR, with dense units expanded to explicit entries 0..k-1,
// which preserves every numeric result (same values visited in the same
// order) and every NNZ count.
func matrixOfUnits(units []Unit) (*Matrix, error) {
	dense := len(units) > 0
	stride := -1
	var nnz int
	for _, u := range units {
		nnz += u.NNZ()
		if !u.IsSparse() {
			if stride == -1 {
				stride = len(u.Dense)
			} else if stride != len(u.Dense) {
				dense = false
			}
		} else {
			dense = false
		}
	}
	if dense && stride >= 0 {
		b := NewDenseMatrixBuilder(len(units), stride)
		for _, u := range units {
			if err := b.AppendDense(u.Label, u.Dense); err != nil {
				return nil, err
			}
		}
		return b.Build(), nil
	}
	b := NewMatrixBuilder(len(units), nnz)
	var scratchIdx []int32
	for _, u := range units {
		idx, vals := u.Sparse.Indices, u.Sparse.Values
		if !u.IsSparse() {
			if cap(scratchIdx) < len(u.Dense) {
				scratchIdx = make([]int32, len(u.Dense))
			}
			idx = scratchIdx[:len(u.Dense)]
			for i := range idx {
				idx[i] = int32(i)
			}
			vals = u.Dense
		}
		if err := b.AppendSparse(u.Label, idx, vals); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// String renders the row in LIBSVM text form (1-based indices), the format
// used throughout the paper's examples.
func (r Row) String() string { return r.Unit().String() }

// CSVString renders the row as a dense comma-separated line with the label in
// the first column — the paper's dense input convention.
func (r Row) CSVString() string { return r.Unit().CSVString() }

// RowsEqual reports whether two rows are bitwise-identical views: same label,
// same representation, same indices and values (NaN-safe bit comparison).
func RowsEqual(a, b Row) bool {
	if a.sparse != b.sparse || len(a.Vals) != len(b.Vals) {
		return false
	}
	if math.Float64bits(a.Label) != math.Float64bits(b.Label) {
		return false
	}
	for k := range a.Vals {
		if a.sparse && a.Idx[k] != b.Idx[k] {
			return false
		}
		if math.Float64bits(a.Vals[k]) != math.Float64bits(b.Vals[k]) {
			return false
		}
	}
	return true
}
