package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ml4all/internal/linalg"
)

// ParseLIBSVMLine parses one line of LIBSVM text: "label idx:val idx:val ...".
// Indices in the text are 1-based (the LIBSVM convention) and stored 0-based.
// Empty lines and lines starting with '#' yield ok=false with no error.
func ParseLIBSVMLine(line string) (u Unit, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Unit{}, false, nil
	}
	fields := strings.Fields(line)
	label, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Unit{}, false, fmt.Errorf("data: bad LIBSVM label %q: %w", fields[0], err)
	}
	idx := make([]int32, 0, len(fields)-1)
	val := make([]float64, 0, len(fields)-1)
	for _, f := range fields[1:] {
		colon := strings.IndexByte(f, ':')
		if colon <= 0 {
			return Unit{}, false, fmt.Errorf("data: bad LIBSVM feature %q", f)
		}
		i, err := strconv.Atoi(f[:colon])
		if err != nil {
			return Unit{}, false, fmt.Errorf("data: bad LIBSVM index %q: %w", f[:colon], err)
		}
		if i < 1 {
			return Unit{}, false, fmt.Errorf("data: LIBSVM index %d out of range (must be >= 1)", i)
		}
		v, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return Unit{}, false, fmt.Errorf("data: bad LIBSVM value %q: %w", f[colon+1:], err)
		}
		idx = append(idx, int32(i-1))
		val = append(val, v)
	}
	s, err := linalg.NewSparse(idx, val)
	if err != nil {
		return Unit{}, false, err
	}
	return NewSparseUnit(label, s), true, nil
}

// ParseCSVLine parses one dense comma-separated line. labelCol selects the
// 0-based column holding the label; all remaining columns are features in
// order. This matches the paper's default of "first column as the label and
// the remaining columns as the features".
func ParseCSVLine(line string, labelCol int) (u Unit, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Unit{}, false, nil
	}
	parts := strings.Split(line, ",")
	if labelCol < 0 || labelCol >= len(parts) {
		return Unit{}, false, fmt.Errorf("data: label column %d out of range for %d columns", labelCol, len(parts))
	}
	label, err := strconv.ParseFloat(strings.TrimSpace(parts[labelCol]), 64)
	if err != nil {
		return Unit{}, false, fmt.Errorf("data: bad CSV label %q: %w", parts[labelCol], err)
	}
	feats := make(linalg.Vector, 0, len(parts)-1)
	for i, p := range parts {
		if i == labelCol {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Unit{}, false, fmt.Errorf("data: bad CSV value %q: %w", p, err)
		}
		feats = append(feats, v)
	}
	return NewDenseUnit(label, feats), true, nil
}

// Format identifies an input text format.
type Format int

// Supported input formats.
const (
	FormatLIBSVM Format = iota // sparse "label idx:val ..." lines
	FormatCSV                  // dense comma-separated lines, label in column 0
)

// String returns the format name.
func (f Format) String() string {
	switch f {
	case FormatLIBSVM:
		return "libsvm"
	case FormatCSV:
		return "csv"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseLine dispatches to the parser for f.
func (f Format) ParseLine(line string) (Unit, bool, error) {
	switch f {
	case FormatLIBSVM:
		return ParseLIBSVMLine(line)
	case FormatCSV:
		return ParseCSVLine(line, 0)
	default:
		return Unit{}, false, fmt.Errorf("data: unknown format %v", f)
	}
}

// ReadAll parses every record in r using format f.
func ReadAll(r io.Reader, f Format) ([]Unit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var units []Unit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		u, ok, err := f.ParseLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
		}
		if ok {
			units = append(units, u)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return units, nil
}

// WriteAll writes units to w in LIBSVM text form, one record per line.
func WriteAll(w io.Writer, units []Unit) error {
	bw := bufio.NewWriter(w)
	for _, u := range units {
		if _, err := bw.WriteString(u.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
