package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ml4all/internal/linalg"
)

// asciiSpace reports whether c is an ASCII whitespace byte (what
// strings.Fields separates on for ASCII input; LIBSVM text is ASCII).
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// nextField returns the [start, end) bounds of the next whitespace-separated
// field of s at or after pos, or ok=false when none remains. It allocates
// nothing — the arena bulk-load path tokenizes every line in place.
func nextField(s string, pos int) (start, end int, ok bool) {
	for pos < len(s) && asciiSpace(s[pos]) {
		pos++
	}
	if pos >= len(s) {
		return 0, 0, false
	}
	start = pos
	for pos < len(s) && !asciiSpace(s[pos]) {
		pos++
	}
	return start, pos, true
}

// parseLIBSVMInto parses one LIBSVM line, appending the features to idx/vals
// (returned re-sliced, so callers can reuse scratch across lines — the arena
// build path performs no per-row allocation, tokenizing in place). Indices in
// the text are 1-based (the LIBSVM convention) and stored 0-based, unsorted
// and undeduplicated — normalization (SortDedup) happens where the row is
// materialized.
func parseLIBSVMInto(line string, idx []int32, vals []float64) (label float64, oidx []int32, ovals []float64, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return 0, idx, vals, false, nil
	}
	start, end, _ := nextField(line, 0) // non-empty after TrimSpace
	label, err = strconv.ParseFloat(line[start:end], 64)
	if err != nil {
		return 0, idx, vals, false, fmt.Errorf("data: bad LIBSVM label %q: %w", line[start:end], err)
	}
	oidx, ovals, err = parseLIBSVMFeatures(line, end, idx, vals)
	if err != nil {
		return 0, oidx, ovals, false, err
	}
	return label, oidx, ovals, true, nil
}

// parseLIBSVMFeatures parses the idx:val fields of line at or after pos,
// appending to idx/vals — the shared back half of parseLIBSVMInto and the
// label-less prediction-request parse (which starts at pos 0 with no label
// field to skip, instead of allocating a synthetic "0 "-prefixed line).
func parseLIBSVMFeatures(line string, pos int, idx []int32, vals []float64) (oidx []int32, ovals []float64, err error) {
	for {
		start, end, ok := nextField(line, pos)
		if !ok {
			break
		}
		pos = end
		f := line[start:end]
		colon := strings.IndexByte(f, ':')
		if colon <= 0 {
			return idx, vals, fmt.Errorf("data: bad LIBSVM feature %q", f)
		}
		i, err := strconv.Atoi(f[:colon])
		if err != nil {
			return idx, vals, fmt.Errorf("data: bad LIBSVM index %q: %w", f[:colon], err)
		}
		// The columnar arena stores indices as int32; reject anything the
		// layout cannot hold instead of silently wrapping.
		if i < 1 || i-1 > math.MaxInt32 {
			return idx, vals, fmt.Errorf("data: LIBSVM index %d out of range (must be in [1, 2^31])", i)
		}
		v, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return idx, vals, fmt.Errorf("data: bad LIBSVM value %q: %w", f[colon+1:], err)
		}
		idx = append(idx, int32(i-1))
		vals = append(vals, v)
	}
	return idx, vals, nil
}

// ParseLIBSVMLine parses one line of LIBSVM text: "label idx:val idx:val ...".
// Empty lines and lines starting with '#' yield ok=false with no error.
func ParseLIBSVMLine(line string) (u Unit, ok bool, err error) {
	label, idx, vals, ok, err := parseLIBSVMInto(line, nil, nil)
	if err != nil || !ok {
		return Unit{}, false, err
	}
	s, err := linalg.NewSparse(idx, vals)
	if err != nil {
		return Unit{}, false, err
	}
	return NewSparseUnit(label, s), true, nil
}

// parseCSVInto parses one dense comma-separated line, appending the features
// to vals (returned re-sliced for scratch reuse). labelCol selects the
// 0-based column holding the label; all remaining columns are features in
// order. labelCol -1 means no label column — every field is a feature and the
// returned label is 0 (the prediction-request form, see ParsePredictCSV).
func parseCSVInto(line string, labelCol int, vals []float64) (label float64, ovals []float64, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return 0, vals, false, nil
	}
	cols := strings.Count(line, ",") + 1
	if labelCol < -1 || labelCol >= cols {
		return 0, vals, false, fmt.Errorf("data: label column %d out of range for %d columns", labelCol, cols)
	}
	// Walk the comma-separated fields in place — no []string materialized.
	pos := 0
	for i := 0; i < cols; i++ {
		end := len(line)
		if c := strings.IndexByte(line[pos:], ','); c >= 0 {
			end = pos + c
		}
		p := strings.TrimSpace(line[pos:end])
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			if i == labelCol {
				return 0, vals, false, fmt.Errorf("data: bad CSV label %q: %w", p, err)
			}
			return 0, vals, false, fmt.Errorf("data: bad CSV value %q: %w", p, err)
		}
		if i == labelCol {
			label = v
		} else {
			vals = append(vals, v)
		}
		pos = end + 1
	}
	return label, vals, true, nil
}

// ParseCSVLine parses one dense comma-separated line. labelCol selects the
// 0-based column holding the label; all remaining columns are features in
// order. This matches the paper's default of "first column as the label and
// the remaining columns as the features".
func ParseCSVLine(line string, labelCol int) (u Unit, ok bool, err error) {
	label, vals, ok, err := parseCSVInto(line, labelCol, nil)
	if err != nil || !ok {
		return Unit{}, false, err
	}
	return NewDenseUnit(label, vals), true, nil
}

// Format identifies an input text format.
type Format int

// Supported input formats.
const (
	FormatLIBSVM Format = iota // sparse "label idx:val ..." lines
	FormatCSV                  // dense comma-separated lines, label in column 0
)

// String returns the format name.
func (f Format) String() string {
	switch f {
	case FormatLIBSVM:
		return "libsvm"
	case FormatCSV:
		return "csv"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseLine dispatches to the parser for f.
func (f Format) ParseLine(line string) (Unit, bool, error) {
	switch f {
	case FormatLIBSVM:
		return ParseLIBSVMLine(line)
	case FormatCSV:
		return ParseCSVLine(line, 0)
	default:
		return Unit{}, false, fmt.Errorf("data: unknown format %v", f)
	}
}

// scanLines reads every text record from r.
func scanLines(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines, sc.Err()
}

// ParseMatrix parses every record of lines under format f straight into a
// columnar arena, two-pass: the first pass counts rows and (an upper bound
// on) stored values to size the arena, the second parses each line into
// reused scratch and appends it — no intermediate per-row allocation.
//
// CSV input must be rectangular: the first record fixes the dense stride and
// a line with a different column count fails the parse. (The legacy per-unit
// loader accepted ragged CSV and produced datasets that later panicked in
// the engine on the dimension mismatch; the arena rejects them up front.)
func ParseMatrix(lines []string, f Format) (*Matrix, error) {
	if f != FormatLIBSVM && f != FormatCSV {
		return nil, fmt.Errorf("data: unknown format %v", f)
	}
	rows, nnz := 0, 0
	for _, line := range lines {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		rows++
		if f == FormatLIBSVM {
			nnz += strings.Count(t, ":")
		} else if rows == 1 {
			nnz = strings.Count(t, ",") // dense stride of the first record
		}
	}
	var b *MatrixBuilder
	if f == FormatCSV {
		b = NewDenseMatrixBuilder(rows, nnz)
	} else {
		b = NewMatrixBuilder(rows, nnz)
	}
	var idx []int32
	var vals []float64
	lineNo := 0
	for _, line := range lines {
		lineNo++
		var label float64
		var ok bool
		var err error
		if f == FormatLIBSVM {
			label, idx, vals, ok, err = parseLIBSVMInto(line, idx[:0], vals[:0])
		} else {
			label, vals, ok, err = parseCSVInto(line, 0, vals[:0])
		}
		if err == nil && ok {
			if f == FormatLIBSVM {
				err = b.AppendSparse(label, idx, vals)
			} else {
				err = b.AppendDense(label, vals)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
		}
	}
	return b.Build(), nil
}

// ReadMatrix parses every record in r using format f into a columnar arena.
func ReadMatrix(r io.Reader, f Format) (*Matrix, error) {
	lines, err := scanLines(r)
	if err != nil {
		return nil, err
	}
	return ParseMatrix(lines, f)
}

// ReadAll parses every record in r using format f into standalone units —
// the compatibility path; bulk loading should use ReadMatrix.
func ReadAll(r io.Reader, f Format) ([]Unit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var units []Unit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		u, ok, err := f.ParseLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
		}
		if ok {
			units = append(units, u)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return units, nil
}

// WriteAll writes units to w in LIBSVM text form, one record per line.
func WriteAll(w io.Writer, units []Unit) error {
	bw := bufio.NewWriter(w)
	for _, u := range units {
		if _, err := bw.WriteString(u.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMatrix writes every row of m to w in LIBSVM text form, one record per
// line.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.NumRows(); i++ {
		if _, err := bw.WriteString(m.Row(i).String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
