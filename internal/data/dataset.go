package data

import (
	"fmt"
	"math/rand"
)

// Dataset is an in-memory handle to a parsed dataset plus its descriptive
// metadata. In the real ML4all the raw bytes live in HDFS and parsing happens
// inside the plan's Transform operator; here the Dataset carries both the raw
// text lines (for plans that transform lazily) and the parsed units so that
// the simulator can charge parse CPU where the plan actually performs it.
type Dataset struct {
	Name   string
	Task   TaskKind
	Format Format

	// Raw holds the unparsed text records, one per data unit. Plans with
	// lazy transformation read from Raw and parse on demand.
	Raw []string

	// Units holds the parsed data units, index-aligned with Raw.
	Units []Unit

	// NumFeatures is the model dimensionality d (max feature index + 1,
	// or as declared by the generator).
	NumFeatures int

	// Density is the fraction of non-zero values (1.0 for dense data).
	Density float64
}

// TaskKind is the supervised learning task a dataset is meant for.
type TaskKind int

// Supported tasks, mirroring the paper's Table 3.
const (
	TaskSVM TaskKind = iota
	TaskLogisticRegression
	TaskLinearRegression
)

// String returns the task name as used in the paper's tables.
func (t TaskKind) String() string {
	switch t {
	case TaskSVM:
		return "SVM"
	case TaskLogisticRegression:
		return "LogR"
	case TaskLinearRegression:
		return "LinR"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(t))
	}
}

// FromUnits builds a Dataset from already-parsed units, synthesizing the raw
// text lines so lazy-transform plans have something to parse. All-dense unit
// sets render as CSV (the paper's dense convention); anything else as LIBSVM.
func FromUnits(name string, task TaskKind, units []Unit) *Dataset {
	ds := &Dataset{Name: name, Task: task, Format: FormatLIBSVM, Units: units}
	allDense := len(units) > 0
	for _, u := range units {
		if u.IsSparse() {
			allDense = false
			break
		}
	}
	if allDense {
		ds.Format = FormatCSV
	}
	ds.Raw = make([]string, len(units))
	var nnz, total int
	for i, u := range units {
		if allDense {
			ds.Raw[i] = u.CSVString()
		} else {
			ds.Raw[i] = u.String()
		}
		if mi := u.MaxIndex(); mi+1 > ds.NumFeatures {
			ds.NumFeatures = mi + 1
		}
		nnz += u.NNZ()
	}
	total = len(units) * ds.NumFeatures
	if total > 0 {
		ds.Density = float64(nnz) / float64(total)
	}
	return ds
}

// N returns the number of data points.
func (ds *Dataset) N() int { return len(ds.Units) }

// SizeBytes returns the approximate on-disk size of the dataset in bytes
// (raw text length), which is what the storage layer partitions.
func (ds *Dataset) SizeBytes() int64 {
	var b int64
	for _, r := range ds.Raw {
		b += int64(len(r)) + 1
	}
	return b
}

// Validate checks internal consistency and returns a descriptive error for
// the first violation found.
func (ds *Dataset) Validate() error {
	if len(ds.Raw) != len(ds.Units) {
		return fmt.Errorf("data: dataset %s has %d raw lines but %d units", ds.Name, len(ds.Raw), len(ds.Units))
	}
	for i, u := range ds.Units {
		if u.MaxIndex() >= ds.NumFeatures {
			return fmt.Errorf("data: dataset %s unit %d has feature index %d >= NumFeatures %d",
				ds.Name, i, u.MaxIndex(), ds.NumFeatures)
		}
	}
	return nil
}

// Split partitions the dataset into train and test subsets, assigning each
// point to train with probability trainFrac using the given seed. The paper
// uses an 80/20 split when no test set is published.
func (ds *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	var trainUnits, testUnits []Unit
	for _, u := range ds.Units {
		if rng.Float64() < trainFrac {
			trainUnits = append(trainUnits, u)
		} else {
			testUnits = append(testUnits, u)
		}
	}
	train = FromUnits(ds.Name+"-train", ds.Task, trainUnits)
	test = FromUnits(ds.Name+"-test", ds.Task, testUnits)
	// Keep the dimensionality consistent across the split even if one side
	// lost the highest-index feature.
	if ds.NumFeatures > train.NumFeatures {
		train.NumFeatures = ds.NumFeatures
	}
	if ds.NumFeatures > test.NumFeatures {
		test.NumFeatures = ds.NumFeatures
	}
	return train, test
}

// Sample returns m units drawn uniformly without replacement (or all units if
// m >= N), using the given seed. The iterations estimator speculates on such
// a sample (Algorithm 1, line 1).
func (ds *Dataset) Sample(m int, seed int64) *Dataset {
	if m >= ds.N() {
		m = ds.N()
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ds.N())
	units := make([]Unit, m)
	for i := 0; i < m; i++ {
		units[i] = ds.Units[perm[i]]
	}
	s := FromUnits(ds.Name+"-sample", ds.Task, units)
	if ds.NumFeatures > s.NumFeatures {
		s.NumFeatures = ds.NumFeatures
	}
	return s
}

// Stats summarizes a dataset in the shape of the paper's Table 2.
type Stats struct {
	Name     string
	Task     TaskKind
	Points   int
	Features int
	Bytes    int64
	Density  float64
}

// Stats returns the dataset's Table 2-style summary row.
func (ds *Dataset) Stats() Stats {
	return Stats{
		Name:     ds.Name,
		Task:     ds.Task,
		Points:   ds.N(),
		Features: ds.NumFeatures,
		Bytes:    ds.SizeBytes(),
		Density:  ds.Density,
	}
}
