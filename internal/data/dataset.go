package data

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Dataset is an in-memory handle to a parsed dataset plus its descriptive
// metadata. In the real ML4all the raw bytes live in HDFS and parsing happens
// inside the plan's Transform operator; here the Dataset carries both the raw
// text lines (for plans that transform lazily) and the parsed columnar arena
// so that the simulator can charge parse CPU where the plan actually performs
// it.
type Dataset struct {
	Name   string
	Task   TaskKind
	Format Format

	// Raw holds the unparsed text records, one per data unit. Plans with
	// lazy transformation read from Raw and parse on demand.
	Raw []string

	// Mat holds the parsed data in columnar arena form, index-aligned with
	// Raw. Split/Sample subsets share the arena through zero-copy views.
	Mat *Matrix

	// NumFeatures is the model dimensionality d (max feature index + 1,
	// or as declared by the generator).
	NumFeatures int

	// Density is the fraction of non-zero values (1.0 for dense data).
	Density float64
}

// TaskKind is the supervised learning task a dataset is meant for.
type TaskKind int

// Supported tasks, mirroring the paper's Table 3.
const (
	TaskSVM TaskKind = iota
	TaskLogisticRegression
	TaskLinearRegression
)

// String returns the task name as used in the paper's tables.
func (t TaskKind) String() string {
	switch t {
	case TaskSVM:
		return "SVM"
	case TaskLogisticRegression:
		return "LogR"
	case TaskLinearRegression:
		return "LinR"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(t))
	}
}

// FromMatrix builds a Dataset over a columnar arena, synthesizing the raw
// text lines so lazy-transform plans have something to parse: dense matrices
// render as CSV (the paper's dense convention), sparse ones as LIBSVM.
func FromMatrix(name string, task TaskKind, m *Matrix) *Dataset {
	ds := &Dataset{Name: name, Task: task, Format: FormatLIBSVM, Mat: m}
	if m.IsDense() {
		ds.Format = FormatCSV
	}
	ds.Raw = make([]string, m.NumRows())
	for i := range ds.Raw {
		r := m.Row(i)
		if m.IsDense() {
			ds.Raw[i] = r.CSVString()
		} else {
			ds.Raw[i] = r.String()
		}
	}
	ds.NumFeatures = m.MaxIndex() + 1
	ds.computeDensity()
	return ds
}

// FromUnits builds a Dataset from individually-materialized units — the
// compatibility constructor: the units are packed into a fresh arena (see
// matrixOfUnits) and the raw text lines are rendered from the units
// themselves, so mixed sparse/dense unit sets keep their exact legacy text
// form. All-dense unit sets render as CSV (the paper's dense convention);
// anything else as LIBSVM.
func FromUnits(name string, task TaskKind, units []Unit) *Dataset {
	m, err := matrixOfUnits(units)
	if err != nil {
		// Unit sets that cannot pack (length-mismatched sparse slices) were
		// never constructible through the public constructors; fail loudly.
		panic(fmt.Sprintf("data: FromUnits: %v", err))
	}
	ds := &Dataset{Name: name, Task: task, Format: FormatLIBSVM, Mat: m}
	allDense := len(units) > 0
	for _, u := range units {
		if u.IsSparse() {
			allDense = false
			break
		}
	}
	if allDense {
		ds.Format = FormatCSV
	}
	ds.Raw = make([]string, len(units))
	for i, u := range units {
		if allDense {
			ds.Raw[i] = u.CSVString()
		} else {
			ds.Raw[i] = u.String()
		}
		if mi := u.MaxIndex(); mi+1 > ds.NumFeatures {
			ds.NumFeatures = mi + 1
		}
	}
	ds.computeDensity()
	return ds
}

// computeDensity refreshes Density from the arena and NumFeatures.
func (ds *Dataset) computeDensity() {
	ds.Density = 0
	if total := ds.N() * ds.NumFeatures; total > 0 {
		ds.Density = float64(ds.Mat.NNZ()) / float64(total)
	}
}

// N returns the number of data points.
func (ds *Dataset) N() int {
	if ds.Mat == nil {
		return 0
	}
	return ds.Mat.NumRows()
}

// Row returns the zero-copy view of data unit i.
func (ds *Dataset) Row(i int) Row { return ds.Mat.Row(i) }

// Rows materializes all row views (see Matrix.Rows — cold paths only).
func (ds *Dataset) Rows() []Row {
	if ds.Mat == nil {
		return nil
	}
	return ds.Mat.Rows()
}

// SizeBytes returns the approximate on-disk size of the dataset in bytes
// (raw text length), which is what the storage layer partitions.
func (ds *Dataset) SizeBytes() int64 {
	var b int64
	for _, r := range ds.Raw {
		b += int64(len(r)) + 1
	}
	return b
}

// Validate checks internal consistency and returns a descriptive error for
// the first violation found.
func (ds *Dataset) Validate() error {
	if len(ds.Raw) != ds.N() {
		return fmt.Errorf("data: dataset %s has %d raw lines but %d rows", ds.Name, len(ds.Raw), ds.N())
	}
	for i := 0; i < ds.N(); i++ {
		if mi := ds.Mat.Row(i).MaxIndex(); mi >= ds.NumFeatures {
			return fmt.Errorf("data: dataset %s unit %d has feature index %d >= NumFeatures %d",
				ds.Name, i, mi, ds.NumFeatures)
		}
	}
	return nil
}

// subset builds a Dataset over a zero-copy view of the given row indices:
// the arena is shared with the parent and the raw lines are shared string
// headers — no row data is copied.
func (ds *Dataset) subset(name string, rows []int) *Dataset {
	sub := &Dataset{Name: name, Task: ds.Task, Format: ds.Format, Mat: ds.Mat.Gather(rows)}
	sub.Raw = make([]string, len(rows))
	for k, i := range rows {
		sub.Raw[k] = ds.Raw[i]
	}
	// Density is relative to the subset's own max feature index (matching
	// what rebuilding the subset from scratch reports); the dimensionality
	// is then raised to the parent's so a subset that lost the highest-index
	// feature stays consistent with it.
	sub.NumFeatures = sub.Mat.MaxIndex() + 1
	sub.computeDensity()
	if ds.NumFeatures > sub.NumFeatures {
		sub.NumFeatures = ds.NumFeatures
	}
	return sub
}

// Split partitions the dataset into train and test subsets, assigning each
// point to train with probability trainFrac using the given seed. Both sides
// are zero-copy index views over the parent's arena. The paper uses an 80/20
// split when no test set is published.
func (ds *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	var trainRows, testRows []int
	for i := 0; i < ds.N(); i++ {
		if rng.Float64() < trainFrac {
			trainRows = append(trainRows, i)
		} else {
			testRows = append(testRows, i)
		}
	}
	return ds.subset(ds.Name+"-train", trainRows), ds.subset(ds.Name+"-test", testRows)
}

// Sample returns m units drawn uniformly without replacement (or all units if
// m >= N), as a zero-copy view over the dataset's arena, using the given
// seed. The iterations estimator speculates on such a sample (Algorithm 1,
// line 1).
func (ds *Dataset) Sample(m int, seed int64) *Dataset {
	if m >= ds.N() {
		m = ds.N()
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ds.N())
	return ds.subset(ds.Name+"-sample", perm[:m])
}

// Fingerprint returns a deterministic 64-bit content fingerprint of the
// dataset as a 16-hex-digit string: FNV-1a over the identity metadata (name,
// point count, dimensionality, byte size, density bits) and up to 64 raw
// lines sampled at evenly spaced indices. Sampling keeps it O(1)-ish on huge
// datasets while still catching content changes anywhere but in the skipped
// lines; two datasets with equal fingerprints are the same dataset for the
// run ledger's purposes (warm-start matching), not cryptographically equal.
func (ds *Dataset) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(ds.Name))
	writeInt(int64(ds.Task))
	writeInt(int64(ds.N()))
	writeInt(int64(ds.NumFeatures))
	writeInt(ds.SizeBytes())
	writeInt(int64(math.Float64bits(ds.Density)))
	n := len(ds.Raw)
	samples := 64
	if n < samples {
		samples = n
	}
	for k := 0; k < samples; k++ {
		i := k * n / samples
		writeInt(int64(i))
		h.Write([]byte(ds.Raw[i]))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Stats summarizes a dataset in the shape of the paper's Table 2.
type Stats struct {
	Name     string
	Task     TaskKind
	Points   int
	Features int
	Bytes    int64
	Density  float64
}

// Stats returns the dataset's Table 2-style summary row.
func (ds *Dataset) Stats() Stats {
	return Stats{
		Name:     ds.Name,
		Task:     ds.Task,
		Points:   ds.N(),
		Features: ds.NumFeatures,
		Bytes:    ds.SizeBytes(),
		Density:  ds.Density,
	}
}
