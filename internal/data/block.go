package data

import (
	"fmt"

	"ml4all/internal/linalg"
)

// Block is a zero-copy view of a run of matrix rows, the unit of work of the
// batched execution layer: the engine carves shard spans into fixed-size
// blocks and hands each to one fused kernel call (gd.BatchComputer) instead
// of one interface call per row. A block remembers whether its rows are
// CONTIGUOUS in the base arena — the common case for full passes, where the
// kernels read the dense strided values (DenseRows) or the CSR arena
// (CSRRows) directly with all per-row view construction hoisted — and falls
// back to per-row access (Row) for gathered batches or shuffled views.
//
// Like Row, a Block aliases the arena: construction allocates nothing.
type Block struct {
	m  *Matrix
	lo int // first view row when ids == nil
	n  int

	// base is the first base-arena row when the block's rows are contiguous
	// in the arena (ids/rowIDs absent or consecutive), else -1.
	base int

	// ids, when set, are the view-row indices of a gathered (sampled) block.
	ids []int
}

// DefaultBlockSize is the canonical row-block width of the batched
// execution layer — the engine's default span carving, the gd margin-pool
// sizing, and the blocked objective/evaluation loops all derive from it.
// The value trades cache residency against dispatch amortization (see
// DESIGN.md §8) and affects speed only: block kernels are bit-identical to
// the per-row path at every width.
const DefaultBlockSize = 512

// Block returns the view of rows [lo, hi) as one block. Panics on an invalid
// range, like a slice expression.
func (m *Matrix) Block(lo, hi int) Block {
	if lo < 0 || hi < lo || hi > m.n {
		panic(fmt.Sprintf("data: Matrix.Block [%d:%d) out of range for %d rows", lo, hi, m.n))
	}
	b := Block{m: m, lo: lo, n: hi - lo, base: -1}
	if m.rowIDs == nil {
		b.base = lo
		return b
	}
	// A view (train/test split, shard slice) is still contiguous when its
	// row ids run consecutively — true for every Slice-produced view. The
	// scan is O(block) int compares, noise next to the O(block·nnz) kernel.
	base := int(m.rowIDs[lo])
	for j := 1; j < b.n; j++ {
		if int(m.rowIDs[lo+j]) != base+j {
			return b
		}
	}
	b.base = base
	return b
}

// GatherBlock returns the block selecting the given view-row indices, in
// order (duplicates allowed) — the form sampled batches take. The ids slice
// is aliased, not copied, and must stay unchanged while the block is in use;
// out-of-range indices panic on first row access, as Matrix.Row would.
func (m *Matrix) GatherBlock(ids []int) Block {
	b := Block{m: m, n: len(ids), base: -1, ids: ids}
	if len(ids) == 0 {
		return b
	}
	if first := ids[0]; first >= 0 && first < m.n {
		base := m.baseRow(first)
		for j := 1; j < len(ids); j++ {
			if ids[j] < 0 || ids[j] >= m.n || m.baseRow(ids[j]) != base+j {
				return b
			}
		}
		b.base = base
	}
	return b
}

// Len returns the number of rows in the block.
func (b Block) Len() int { return b.n }

// viewRow maps a block position to its matrix view row.
func (b Block) viewRow(j int) int {
	if b.ids != nil {
		return b.ids[j]
	}
	return b.lo + j
}

// Row returns the zero-copy view of block row j.
func (b Block) Row(j int) Row { return b.m.Row(b.viewRow(j)) }

// Label returns the label of block row j.
func (b Block) Label(j int) float64 { return b.m.Label(b.viewRow(j)) }

// Labels returns the block's labels as one arena slice when the rows are
// contiguous, else (nil, false); kernels fall back to Label(j).
func (b Block) Labels() ([]float64, bool) {
	if b.base < 0 {
		return nil, false
	}
	return b.m.labels[b.base : b.base+b.n], true
}

// DenseRows returns the strided values of a contiguous dense block: row j is
// vals[j*stride : (j+1)*stride]. ok is false for sparse matrices and
// non-contiguous blocks.
func (b Block) DenseRows() (vals []float64, stride int, ok bool) {
	if b.base < 0 || !b.m.dense {
		return nil, 0, false
	}
	s := b.m.stride
	return b.m.values[b.base*s : (b.base+b.n)*s], s, true
}

// CSRRows returns the CSR sub-range of a contiguous sparse block: offs holds
// Len()+1 absolute offsets into the shared indices/values arena, so row j is
// indices[offs[j]:offs[j+1]] / values[offs[j]:offs[j+1]]. ok is false for
// dense matrices and non-contiguous blocks.
func (b Block) CSRRows() (offs []int64, indices []int32, values []float64, ok bool) {
	if b.base < 0 || b.m.dense {
		return nil, nil, nil, false
	}
	return b.m.offsets[b.base : b.base+b.n+1], b.m.indices, b.m.values, true
}

// MarginsInto fills out[j] with <row j, w> for every row of the block,
// dispatching to the fused dense/CSR kernels when the block is contiguous
// and to per-row Dot otherwise. Every path accumulates each margin with the
// same single-sum index-order loop, so the results are bitwise identical to
// calling Row(j).Dot(w) row by row. out must have at least Len() slots; only
// the first Len() are written.
func (b Block) MarginsInto(w linalg.Vector, out []float64) {
	out = out[:b.n]
	if vals, stride, ok := b.DenseRows(); ok {
		linalg.DenseMargins(vals, stride, w, out)
		return
	}
	if offs, idx, vals, ok := b.CSRRows(); ok {
		linalg.CSRMargins(offs, idx, vals, w, out)
		return
	}
	for j := range out {
		out[j] = b.Row(j).Dot(w)
	}
}

// MarginsIntoFast is the fast-math tier's MarginsInto: contiguous blocks
// dispatch to the multi-accumulator margin kernels, whose results agree with
// MarginsInto only to a relative tolerance (see DESIGN.md §10), never bit for
// bit. Non-contiguous blocks keep the exact per-row path — the gather cost
// dominates there, so the fast tier buys nothing.
func (b Block) MarginsIntoFast(w linalg.Vector, out []float64) {
	out = out[:b.n]
	if vals, stride, ok := b.DenseRows(); ok {
		linalg.DenseMarginsFast(vals, stride, w, out)
		return
	}
	if offs, idx, vals, ok := b.CSRRows(); ok {
		linalg.CSRMarginsFast(offs, idx, vals, w, out)
		return
	}
	for j := range out {
		out[j] = b.Row(j).Dot(w)
	}
}
