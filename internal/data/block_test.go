package data

import (
	"math"
	"math/rand"
	"testing"

	"ml4all/internal/linalg"
)

func randSparseMatrix(t *testing.T, rng *rand.Rand, rows, d int) *Matrix {
	t.Helper()
	b := NewMatrixBuilder(rows, rows*4)
	for i := 0; i < rows; i++ {
		nnz := 1 + rng.Intn(d/2)
		idx := make([]int32, 0, nnz)
		vals := make([]float64, 0, nnz)
		for k := 0; k < nnz; k++ {
			idx = append(idx, int32(rng.Intn(d)))
			vals = append(vals, rng.NormFloat64())
		}
		if err := b.AppendSparse(float64(2*(i%2)-1), idx, vals); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func randDenseMatrix(t *testing.T, rng *rand.Rand, rows, d int) *Matrix {
	t.Helper()
	b := NewDenseMatrixBuilder(rows, d)
	vals := make([]float64, d)
	for i := 0; i < rows; i++ {
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		if err := b.AppendDense(float64(2*(i%2)-1), vals); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// Blocks over identity matrices, Slice views and gathers must all hand back
// exactly the rows the per-row accessors produce.
func TestBlockRowsMatchMatrixRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dense := range []bool{false, true} {
		var m *Matrix
		if dense {
			m = randDenseMatrix(t, rng, 40, 8)
		} else {
			m = randSparseMatrix(t, rng, 40, 16)
		}
		views := map[string]*Matrix{
			"identity": m,
			"slice":    m.Slice(5, 35),
			"gather":   m.Gather([]int{7, 3, 3, 30, 12}),
		}
		for name, v := range views {
			blk := v.Block(1, v.NumRows()-1)
			if blk.Len() != v.NumRows()-2 {
				t.Fatalf("%s: Len %d != %d", name, blk.Len(), v.NumRows()-2)
			}
			for j := 0; j < blk.Len(); j++ {
				if !RowsEqual(blk.Row(j), v.Row(1+j)) {
					t.Fatalf("%s: block row %d diverges", name, j)
				}
				if blk.Label(j) != v.Label(1+j) {
					t.Fatalf("%s: block label %d diverges", name, j)
				}
			}
		}
	}
}

// The contiguity fast paths must agree with the generic accessors: identity
// and Slice views expose the arena, a permuted Gather does not.
func TestBlockContiguityFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randDenseMatrix(t, rng, 30, 6)
	if _, _, ok := m.Block(3, 17).DenseRows(); !ok {
		t.Fatal("identity dense block lost the contiguous fast path")
	}
	if _, ok := m.Block(3, 17).Labels(); !ok {
		t.Fatal("identity block lost the contiguous labels")
	}
	if _, _, ok := m.Slice(2, 20).Block(0, 10).DenseRows(); !ok {
		t.Fatal("slice-view block lost the contiguous fast path")
	}
	if _, _, ok := m.Gather([]int{5, 1, 9}).Block(0, 3).DenseRows(); ok {
		t.Fatal("permuted gather view claimed contiguity")
	}
	if _, _, ok := m.GatherBlock([]int{4, 5, 6}).DenseRows(); !ok {
		t.Fatal("consecutive GatherBlock lost the contiguous fast path")
	}
	if _, _, ok := m.GatherBlock([]int{4, 6, 5}).DenseRows(); ok {
		t.Fatal("permuted GatherBlock claimed contiguity")
	}

	s := randSparseMatrix(t, rng, 30, 12)
	if _, _, _, ok := s.Block(0, 30).CSRRows(); !ok {
		t.Fatal("identity sparse block lost the CSR fast path")
	}
	if offs, idx, vals, ok := s.Slice(10, 25).Block(2, 9).CSRRows(); !ok {
		t.Fatal("slice-view sparse block lost the CSR fast path")
	} else {
		blk := s.Slice(10, 25).Block(2, 9)
		for j := 0; j < blk.Len(); j++ {
			want := blk.Row(j)
			lo, hi := offs[j], offs[j+1]
			got := NewSparseRow(blk.Label(j), idx[lo:hi], vals[lo:hi])
			if !RowsEqual(want, got) {
				t.Fatalf("CSR fast path row %d diverges", j)
			}
		}
	}
}

// MarginsInto must be bitwise identical to per-row Dot on every path:
// fused dense, fused CSR, and the per-row fallback of a gathered block.
func TestBlockMarginsMatchRowDotBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := 9
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, dense := range []bool{false, true} {
		var m *Matrix
		if dense {
			m = randDenseMatrix(t, rng, 50, d)
		} else {
			m = randSparseMatrix(t, rng, 50, d)
		}
		blocks := []Block{
			m.Block(0, 50),
			m.Block(13, 37),
			m.Slice(4, 44).Block(3, 31),
			m.GatherBlock([]int{9, 2, 2, 41, 17, 30}),
		}
		for bi, blk := range blocks {
			out := make([]float64, blk.Len())
			blk.MarginsInto(w, out)
			for j := range out {
				want := blk.Row(j).Dot(w)
				if math.Float64bits(out[j]) != math.Float64bits(want) {
					t.Fatalf("dense=%v block %d: margin %d = %g, Dot = %g", dense, bi, j, out[j], want)
				}
			}
		}
	}
}
