package data

import (
	"math"
	"strings"
	"testing"
)

// Fuzz targets for the two text parsers, which since the columnar-arena
// refactor write straight into the arena: the per-line (Unit) parser and the
// two-pass arena builder must never panic, must agree with each other on
// every well-formed line, and must reject anything the arena layout cannot
// hold (e.g. indices beyond int32).

func FuzzParseLIBSVM(f *testing.F) {
	f.Add("1 1:0.5 3:1")
	f.Add("-1 2:0.25")
	f.Add("+1 2:0.1 4:0.4 10:0.3")
	f.Add("# comment")
	f.Add("")
	f.Add("1 1:1 1:2 1:3")                  // duplicate indices (summed)
	f.Add("1 4294967296:1")                 // index beyond int32
	f.Add("1 2147483647:1")                 // max valid 1-based index
	f.Add("1 99999999999999999999:1")       // index beyond int64
	f.Add("0.5 1:1e308 2:1e308")            // large values
	f.Add("nan 1:nan")                      // NaN label/value parse
	f.Add("1 1:")                           // empty value
	f.Add("1 :1")                           // empty index
	f.Add("1 -5:1")                         // negative index
	f.Add("1\t2:3")                         // tab separators
	f.Add(strings.Repeat("1:1 ", 50) + "x") // trailing junk

	f.Fuzz(func(t *testing.T, line string) {
		u, ok, err := ParseLIBSVMLine(line)
		if err != nil && ok {
			t.Fatalf("ok with error: %v", err)
		}
		m, merr := ParseMatrix([]string{line}, FormatLIBSVM)
		if (err == nil) != (merr == nil) {
			t.Fatalf("parser disagreement on %q: line err=%v, arena err=%v", line, err, merr)
		}
		if err != nil {
			return
		}
		if !ok {
			if m.NumRows() != 0 {
				t.Fatalf("skipped line %q produced %d arena rows", line, m.NumRows())
			}
			return
		}
		if m.NumRows() != 1 {
			t.Fatalf("line %q produced %d arena rows, want 1", line, m.NumRows())
		}
		if !RowsEqual(u.Row(), m.Row(0)) {
			t.Fatalf("line %q: unit row %v != arena row %v", line, u.Row(), m.Row(0))
		}
		// Normalization invariants the compute kernels rely on.
		r := m.Row(0)
		for k := 1; k < len(r.Idx); k++ {
			if r.Idx[k-1] >= r.Idx[k] {
				t.Fatalf("line %q: indices not strictly ascending: %v", line, r.Idx)
			}
		}
		if mi := r.MaxIndex(); mi > math.MaxInt32 {
			t.Fatalf("line %q: index %d beyond int32", line, mi)
		}
	})
}

func FuzzParseDense(f *testing.F) {
	f.Add("1.5, 2, 3, -4")
	f.Add("-1,0.25")
	f.Add("# comment")
	f.Add("")
	f.Add("1")            // label only, zero features
	f.Add("1,")           // empty trailing field
	f.Add("nan,inf,-inf") // special floats
	f.Add("1,2,3\x00")    // embedded NUL
	f.Add("1e309,1")      // label overflow
	f.Add("5," + strings.Repeat("0.125,", 100) + "1")

	f.Fuzz(func(t *testing.T, line string) {
		u, ok, err := ParseCSVLine(line, 0)
		if err != nil && ok {
			t.Fatalf("ok with error: %v", err)
		}
		m, merr := ParseMatrix([]string{line}, FormatCSV)
		if (err == nil) != (merr == nil) {
			t.Fatalf("parser disagreement on %q: line err=%v, arena err=%v", line, err, merr)
		}
		if err != nil || !ok {
			return
		}
		if m.NumRows() != 1 {
			t.Fatalf("line %q produced %d arena rows, want 1", line, m.NumRows())
		}
		if !RowsEqual(u.Row(), m.Row(0)) {
			t.Fatalf("line %q: unit row %v != arena row %v", line, u.Row(), m.Row(0))
		}
	})
}
