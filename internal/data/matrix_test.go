package data

import (
	"math"
	"math/rand"
	"testing"

	"ml4all/internal/linalg"
)

// randomUnits generates a mixed bag of legacy units: sparse for LIBSVM-style
// datasets (with occasional duplicate indices, which NewSparse sums), dense
// otherwise.
func randomUnits(t *testing.T, r *rand.Rand, n, d int, sparse bool) []Unit {
	t.Helper()
	units := make([]Unit, n)
	for i := range units {
		label := float64(r.Intn(5)) - 2
		if sparse {
			nnz := r.Intn(d/2 + 1)
			idx := make([]int32, 0, nnz+1)
			val := make([]float64, 0, nnz+1)
			for k := 0; k < nnz; k++ {
				idx = append(idx, int32(r.Intn(d)))
				val = append(val, math.Round(r.NormFloat64()*1e4)/1e4)
			}
			s, err := linalg.NewSparse(idx, val)
			if err != nil {
				t.Fatal(err)
			}
			units[i] = NewSparseUnit(label, s)
			continue
		}
		v := make(linalg.Vector, d)
		for j := range v {
			v[j] = math.Round(r.NormFloat64()*1e4) / 1e4
		}
		units[i] = NewDenseUnit(label, v)
	}
	return units
}

// TestArenaRowsMatchUnitConstruction is the bitwise-equivalence property at
// the heart of the columnar refactor: for sparse and dense data alike, a
// dataset packed into the arena must hand out rows identical — labels,
// indices and values to the last bit — to the standalone units it was built
// from, and identical to re-parsing its own raw text through the arena
// builder (the path the engine's stock transformer rides).
func TestArenaRowsMatchUnitConstruction(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, task := range []TaskKind{TaskSVM, TaskLogisticRegression, TaskLinearRegression} {
		for _, sparse := range []bool{true, false} {
			units := randomUnits(t, r, 120, 25, sparse)
			ds := FromUnits("t", task, units)
			if ds.N() != len(units) {
				t.Fatalf("%v sparse=%v: N=%d want %d", task, sparse, ds.N(), len(units))
			}
			for i, u := range units {
				if !RowsEqual(u.Row(), ds.Row(i)) {
					t.Fatalf("%v sparse=%v row %d: unit %v != arena %v", task, sparse, i, u.Row(), ds.Row(i))
				}
				if u.NNZ() != ds.Mat.RowNNZ(i) || u.MaxIndex() != ds.Row(i).MaxIndex() {
					t.Fatalf("%v sparse=%v row %d: NNZ/MaxIndex diverge", task, sparse, i)
				}
			}
			// Kernel results must agree bit-for-bit too.
			w := make(linalg.Vector, ds.NumFeatures)
			for j := range w {
				w[j] = r.NormFloat64()
			}
			grad1 := linalg.NewVector(ds.NumFeatures)
			grad2 := linalg.NewVector(ds.NumFeatures)
			for i, u := range units {
				row := ds.Row(i)
				if a, b := u.Dot(w), row.Dot(w); a != b {
					t.Fatalf("%v sparse=%v row %d: Dot %g != %g", task, sparse, i, a, b)
				}
				u.AddScaledInto(grad1, 0.5)
				row.AddScaledInto(grad2, 0.5)
			}
			for j := range grad1 {
				if math.Float64bits(grad1[j]) != math.Float64bits(grad2[j]) {
					t.Fatalf("%v sparse=%v: accumulated gradient diverges at %d", task, sparse, j)
				}
			}
			// Re-parsing the rendered raw text through the arena builder
			// must reproduce the arena (the stock-transformer invariant).
			m2, err := ParseMatrix(ds.Raw, ds.Format)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < ds.N(); i++ {
				if !RowsEqual(ds.Row(i), m2.Row(i)) {
					t.Fatalf("%v sparse=%v row %d: reparse diverges", task, sparse, i)
				}
			}
		}
	}
}

func TestMatrixSliceAndGatherAreViews(t *testing.T) {
	units := randomUnits(t, rand.New(rand.NewSource(3)), 40, 10, true)
	ds := FromUnits("t", TaskSVM, units)
	sl := ds.Mat.Slice(10, 25)
	if sl.NumRows() != 15 {
		t.Fatalf("slice rows = %d", sl.NumRows())
	}
	for i := 0; i < sl.NumRows(); i++ {
		if !RowsEqual(sl.Row(i), ds.Row(10+i)) {
			t.Fatalf("slice row %d diverges", i)
		}
	}
	g := ds.Mat.Gather([]int{5, 5, 39, 0})
	want := []int{5, 5, 39, 0}
	for i, j := range want {
		if !RowsEqual(g.Row(i), ds.Row(j)) {
			t.Fatalf("gather row %d != base row %d", i, j)
		}
	}
	// Views of views compose against the base.
	gg := g.Gather([]int{2, 0})
	if !RowsEqual(gg.Row(0), ds.Row(39)) || !RowsEqual(gg.Row(1), ds.Row(5)) {
		t.Fatal("nested view rows diverge")
	}
	// Zero-copy: a label write through the base is visible in every view.
	ds.Mat.SetLabel(39, 123)
	if g.Row(2).Label != 123 {
		t.Fatal("view did not observe base label write — views are copies, not aliases")
	}
}

func TestSplitProducesSharedArenaViews(t *testing.T) {
	units := randomUnits(t, rand.New(rand.NewSource(5)), 300, 12, true)
	ds := FromUnits("t", TaskSVM, units)
	train, test := ds.Split(0.8, 9)
	if train.N()+test.N() != ds.N() {
		t.Fatalf("split lost rows: %d+%d != %d", train.N(), test.N(), ds.N())
	}
	// Raw strings are shared headers, not re-rendered copies.
	seen := 0
	for k := 0; k < train.N(); k++ {
		for i := 0; i < ds.N() && seen == k; i++ {
			if ds.Raw[i] == train.Raw[k] && RowsEqual(ds.Row(i), train.Row(k)) {
				seen++
			}
		}
	}
	if seen != train.N() {
		t.Fatalf("only %d of %d train rows trace back to the parent", seen, train.N())
	}
	// Aliasing proof: the split shares the parent's arena.
	ds.Mat.SetLabel(0, 777)
	found := false
	for k := 0; k < train.N() && !found; k++ {
		found = train.Row(k).Label == 777
	}
	for k := 0; k < test.N() && !found; k++ {
		found = test.Row(k).Label == 777
	}
	if !found {
		t.Fatal("no split side observed the parent label write — arena was copied")
	}
}

// TestSplitSeedStability pins the exact row assignment of Split for a fixed
// seed: index-sliced views must keep reproducing the same membership across
// releases, since stored experiment seeds depend on it.
func TestSplitSeedStability(t *testing.T) {
	units := make([]Unit, 20)
	for i := range units {
		s, err := linalg.NewSparse([]int32{int32(i)}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		units[i] = NewSparseUnit(float64(i), s)
	}
	ds := FromUnits("t", TaskSVM, units)
	train, test := ds.Split(0.5, 42)
	var gotTrain, gotTest []int
	for i := 0; i < train.N(); i++ {
		gotTrain = append(gotTrain, int(train.Row(i).Label))
	}
	for i := 0; i < test.N(); i++ {
		gotTest = append(gotTest, int(test.Row(i).Label))
	}
	// The membership below is the output of rand.NewSource(42) Float64
	// draws against 0.5 — frozen on purpose; a change here is a breaking
	// change to every stored split seed.
	wantTrain := []int{0, 1, 3, 4, 5, 7, 8, 11, 12, 13, 15}
	wantTest := []int{2, 6, 9, 10, 14, 16, 17, 18, 19}
	if len(gotTrain) != len(wantTrain) || len(gotTest) != len(wantTest) {
		t.Fatalf("split sizes %d/%d, want %d/%d — seed stability broken",
			len(gotTrain), len(gotTest), len(wantTrain), len(wantTest))
	}
	for i := range wantTrain {
		if gotTrain[i] != wantTrain[i] {
			t.Fatalf("train[%d] = %d, want %d — seed stability broken", i, gotTrain[i], wantTrain[i])
		}
	}
	for i := range wantTest {
		if gotTest[i] != wantTest[i] {
			t.Fatalf("test[%d] = %d, want %d — seed stability broken", i, gotTest[i], wantTest[i])
		}
	}
}

func TestSampleIsSharedArenaView(t *testing.T) {
	units := randomUnits(t, rand.New(rand.NewSource(8)), 60, 8, false)
	ds := FromUnits("t", TaskLinearRegression, units)
	s := ds.Sample(25, 7)
	if s.N() != 25 {
		t.Fatalf("sample size %d", s.N())
	}
	ds.Mat.SetLabel(0, 555)
	hit := false
	for i := 0; i < s.N() && !hit; i++ {
		hit = s.Row(i).Label == 555
	}
	// Row 0 may or may not be in the sample; assert aliasing only when it is.
	inSample := false
	for i := 0; i < s.N(); i++ {
		if s.Raw[i] == ds.Raw[0] {
			inSample = true
		}
	}
	if inSample && !hit {
		t.Fatal("sampled row did not observe parent label write")
	}
}

func TestMatrixBuilderErrors(t *testing.T) {
	b := NewDenseMatrixBuilder(2, 3)
	if err := b.AppendDense(1, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendDense(1, []float64{1, 2}); err == nil {
		t.Fatal("ragged dense row accepted")
	}
	if err := b.AppendSparse(1, []int32{0}, []float64{1}); err == nil {
		t.Fatal("sparse append on dense builder accepted")
	}
	sb := NewMatrixBuilder(0, 0)
	if err := sb.AppendSparse(1, []int32{0, 1}, []float64{1}); err == nil {
		t.Fatal("length-mismatched sparse row accepted")
	}
	if err := sb.AppendSparse(1, []int32{-1}, []float64{1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := sb.AppendSparse(1, []int32{3, 1, 3}, []float64{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	m := sb.Build()
	r := m.Row(0)
	if len(r.Idx) != 2 || r.Idx[0] != 1 || r.Idx[1] != 3 || r.Vals[1] != 5 {
		t.Fatalf("dup-sum normalization wrong: %v %v", r.Idx, r.Vals)
	}
}

// TestAppendRowsMergesBitwise pins the coalescer's merge step: concatenating
// per-request arenas into one shared builder via AppendRows must produce rows
// bitwise identical to the source matrices, in order, for dense and sparse
// layouts, identity views and gathered views alike — without re-normalizing
// (the sources are already SortDedup'd).
func TestAppendRowsMergesBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, sparse := range []bool{true, false} {
		// Three source matrices of differing sizes, the third a gathered view.
		var sources []*Matrix
		for k, n := range []int{7, 1, 12} {
			units := randomUnits(t, r, n, 9, sparse)
			m, err := matrixOfUnits(units)
			if err != nil {
				t.Fatal(err)
			}
			if k == 2 {
				m = m.Gather([]int{11, 0, 5, 5, 3})
			}
			sources = append(sources, m)
		}
		b := NewMatrixBuilder(0, 0)
		total := 0
		for _, src := range sources {
			if err := b.AppendRows(src); err != nil {
				t.Fatalf("sparse=%v: %v", sparse, err)
			}
			total += src.NumRows()
		}
		merged := b.Build()
		if merged.NumRows() != total {
			t.Fatalf("sparse=%v: merged %d rows, want %d", sparse, merged.NumRows(), total)
		}
		at := 0
		for _, src := range sources {
			for i := 0; i < src.NumRows(); i++ {
				if !RowsEqual(src.Row(i), merged.Row(at)) {
					t.Fatalf("sparse=%v: merged row %d != source row %d: %v vs %v",
						sparse, at, i, merged.Row(at), src.Row(i))
				}
				at++
			}
		}
	}
}

// TestAppendRowsRejectsLayoutMismatch: layouts and strides must agree.
func TestAppendRowsRejectsLayoutMismatch(t *testing.T) {
	db := NewDenseMatrixBuilder(1, 3)
	if err := db.AppendDense(1, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	dense3 := db.Build()
	sb := NewMatrixBuilder(1, 1)
	if err := sb.AppendSparse(1, []int32{0}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	sparse1 := sb.Build()

	b := NewDenseMatrixBuilder(0, 5)
	if err := b.AppendRows(dense3); err == nil {
		t.Fatal("stride mismatch accepted")
	}
	if err := b.AppendRows(sparse1); err == nil {
		t.Fatal("sparse rows accepted by dense builder")
	}
	b2 := NewMatrixBuilder(0, 0)
	if err := b2.AppendRows(sparse1); err != nil {
		t.Fatal(err)
	}
	if err := b2.AppendRows(dense3); err == nil {
		t.Fatal("dense rows accepted by sparse-fixed builder")
	}
}

// TestBuilderResetReuse pins the pooled-ingest lifecycle: BuildView aliases
// the arena, Reset recycles it (keeping capacity, unfixing the layout), and a
// builder alternates sparse and dense service across cycles with results
// bitwise identical to fresh construction.
func TestBuilderResetReuse(t *testing.T) {
	b := NewMatrixBuilder(0, 0)
	for cycle := 0; cycle < 3; cycle++ {
		// Sparse cycle.
		if err := b.AppendSparse(2, []int32{4, 1, 1}, []float64{0.5, 1, 2}); err != nil {
			t.Fatal(err)
		}
		mv := b.BuildView()
		ref := NewSparseRow(2, []int32{1, 4}, []float64{3, 0.5})
		if mv.NumRows() != 1 || !RowsEqual(mv.Row(0), ref) {
			t.Fatalf("cycle %d sparse view: %v want %v", cycle, mv.Row(0), ref)
		}
		b.Reset()
		// Dense cycle via SetDense + DenseRowBuffer (the padded-request path).
		if err := b.SetDense(4); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		buf, err := b.DenseRowBuffer()
		if err != nil {
			t.Fatal(err)
		}
		copy(buf, []float64{7, 8})
		b.CommitDenseRow(1)
		dv := b.BuildView()
		if dv.NumRows() != 1 || !RowsEqual(dv.Row(0), NewDenseRow(1, []float64{7, 8, 0, 0})) {
			t.Fatalf("cycle %d dense view: %v", cycle, dv.Row(0))
		}
		if err := b.SetDense(2); err == nil {
			t.Fatal("SetDense accepted on a fixed builder")
		}
		b.Reset()
	}
}
