package data

import (
	"fmt"
	"strconv"
	"strings"

	"ml4all/internal/linalg"
)

// ColumnSpec selects which CSV columns hold the label and the features, all
// 1-based as written in the declarative language ("input.txt:2,
// input.txt:4-20" means label in column 2, features in columns 4-20). A zero
// FeatLo means "every column except the label".
type ColumnSpec struct {
	LabelCol int
	FeatLo   int
	FeatHi   int
}

// Validate reports the first problem with the spec.
func (c ColumnSpec) Validate() error {
	switch {
	case c.LabelCol < 1:
		return fmt.Errorf("data: label column must be >= 1, got %d", c.LabelCol)
	case c.FeatLo != 0 && (c.FeatLo < 1 || c.FeatHi < c.FeatLo):
		return fmt.Errorf("data: bad feature column range %d-%d", c.FeatLo, c.FeatHi)
	case c.FeatLo != 0 && c.LabelCol >= c.FeatLo && c.LabelCol <= c.FeatHi:
		return fmt.Errorf("data: label column %d inside feature range %d-%d", c.LabelCol, c.FeatLo, c.FeatHi)
	}
	return nil
}

// ParseCSVColumns parses a dense comma-separated line under the given column
// selection.
func ParseCSVColumns(line string, spec ColumnSpec) (u Unit, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Unit{}, false, nil
	}
	if err := spec.Validate(); err != nil {
		return Unit{}, false, err
	}
	parts := strings.Split(line, ",")
	if spec.LabelCol > len(parts) {
		return Unit{}, false, fmt.Errorf("data: label column %d beyond %d columns", spec.LabelCol, len(parts))
	}
	label, err := strconv.ParseFloat(strings.TrimSpace(parts[spec.LabelCol-1]), 64)
	if err != nil {
		return Unit{}, false, fmt.Errorf("data: bad label %q: %w", parts[spec.LabelCol-1], err)
	}
	lo, hi := spec.FeatLo, spec.FeatHi
	if lo == 0 {
		lo, hi = 1, len(parts)
	}
	if hi > len(parts) {
		return Unit{}, false, fmt.Errorf("data: feature column %d beyond %d columns", hi, len(parts))
	}
	feats := make(linalg.Vector, 0, hi-lo+1)
	for col := lo; col <= hi; col++ {
		if col == spec.LabelCol {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[col-1]), 64)
		if err != nil {
			return Unit{}, false, fmt.Errorf("data: bad value %q in column %d: %w", parts[col-1], col, err)
		}
		feats = append(feats, v)
	}
	return NewDenseUnit(label, feats), true, nil
}
