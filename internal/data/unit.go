// Package data defines the columnar data layer that flows through GD plans —
// the Matrix arena and its Row views — plus parsers for the two input formats
// the paper exercises (sparse LIBSVM and dense comma-separated), dataset
// handles, train/test splitting and global statistics.
//
// Terminology follows the paper: a raw "data unit" is one input record (a text
// line); Transform turns it into a parsed, typed row (label + features).
package data

import (
	"fmt"
	"strings"

	"ml4all/internal/linalg"
)

// Unit is the standalone (non-arena) form of one parsed data unit: a labeled
// feature vector that owns its slices. Since the columnar-arena refactor the
// hot paths run on Row views into a Matrix; Unit survives as the thin
// compatibility constructor for call sites that materialize individual
// records — per-line parsers, custom Transform UDFs, tests — and converts to
// a Row with no copying via Row().
type Unit struct {
	Label  float64
	Sparse linalg.Sparse
	Dense  linalg.Vector
	sparse bool
}

// NewSparseUnit builds a sparse unit.
func NewSparseUnit(label float64, s linalg.Sparse) Unit {
	return Unit{Label: label, Sparse: s, sparse: true}
}

// NewDenseUnit builds a dense unit.
func NewDenseUnit(label float64, v linalg.Vector) Unit {
	return Unit{Label: label, Dense: v}
}

// Row returns the zero-copy row view of the unit: the slices are shared, not
// copied.
func (u Unit) Row() Row {
	if u.sparse {
		idx := u.Sparse.Indices
		if idx == nil {
			idx = emptyIdx
		}
		return Row{Label: u.Label, Idx: idx, Vals: u.Sparse.Values, sparse: true}
	}
	return Row{Label: u.Label, Vals: u.Dense}
}

// IsSparse reports whether the unit stores its features sparsely.
func (u Unit) IsSparse() bool { return u.sparse }

// NNZ returns the number of stored feature values.
func (u Unit) NNZ() int {
	if u.sparse {
		return u.Sparse.NNZ()
	}
	return len(u.Dense)
}

// Dot returns the inner product of the unit's features with w.
func (u Unit) Dot(w linalg.Vector) float64 { return u.Row().Dot(w) }

// AddScaledInto accumulates alpha * features into dst.
func (u Unit) AddScaledInto(dst linalg.Vector, alpha float64) {
	u.Row().AddScaledInto(dst, alpha)
}

// MaxIndex returns the largest feature index present (0-based), or -1 when
// the unit has no features.
func (u Unit) MaxIndex() int { return u.Row().MaxIndex() }

// String renders the unit in LIBSVM text form (1-based indices), the format
// used throughout the paper's examples.
func (u Unit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g", u.Label)
	if u.sparse {
		for k, i := range u.Sparse.Indices {
			fmt.Fprintf(&b, " %d:%g", i+1, u.Sparse.Values[k])
		}
		return b.String()
	}
	for i, v := range u.Dense {
		if v != 0 {
			fmt.Fprintf(&b, " %d:%g", i+1, v)
		}
	}
	return b.String()
}

// CSVString renders the unit as a dense comma-separated line with the label
// in the first column — the paper's dense input convention.
func (u Unit) CSVString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g", u.Label)
	if u.sparse {
		d := int(u.Sparse.MaxIndex()) + 1
		dense := u.Sparse.Dense(d)
		for _, v := range dense {
			fmt.Fprintf(&b, ",%g", v)
		}
		return b.String()
	}
	for _, v := range u.Dense {
		fmt.Fprintf(&b, ",%g", v)
	}
	return b.String()
}

// ApproxBytes estimates the in-memory footprint of the unit in bytes. The
// storage layer uses it to lay units out on simulated pages; it intentionally
// matches the accounting a columnar record reader would do (8 bytes per value,
// 4 per sparse index, 8 for the label).
func (u Unit) ApproxBytes() int { return u.Row().ApproxBytes() }
