// Package data defines the data units that flow through GD plans, plus
// parsers for the two input formats the paper exercises (sparse LIBSVM and
// dense comma-separated), dataset handles, train/test splitting and global
// statistics.
//
// Terminology follows the paper: a raw "data unit" is one input record (a text
// line); Transform turns it into a parsed, typed unit (label + features).
package data

import (
	"fmt"
	"strings"

	"ml4all/internal/linalg"
)

// Unit is a parsed data unit: a labeled feature vector. Sparse points carry
// their features in coordinate form; dense points use the Dense slice. Exactly
// one of the two representations is populated, reported by IsSparse.
type Unit struct {
	Label  float64
	Sparse linalg.Sparse
	Dense  linalg.Vector
	sparse bool
}

// NewSparseUnit builds a sparse unit.
func NewSparseUnit(label float64, s linalg.Sparse) Unit {
	return Unit{Label: label, Sparse: s, sparse: true}
}

// NewDenseUnit builds a dense unit.
func NewDenseUnit(label float64, v linalg.Vector) Unit {
	return Unit{Label: label, Dense: v}
}

// IsSparse reports whether the unit stores its features sparsely.
func (u Unit) IsSparse() bool { return u.sparse }

// NNZ returns the number of stored feature values.
func (u Unit) NNZ() int {
	if u.sparse {
		return u.Sparse.NNZ()
	}
	return len(u.Dense)
}

// Dot returns the inner product of the unit's features with w.
func (u Unit) Dot(w linalg.Vector) float64 {
	if u.sparse {
		return u.Sparse.Dot(w)
	}
	return u.Dense.Dot(w)
}

// AddScaledInto accumulates alpha * features into dst.
func (u Unit) AddScaledInto(dst linalg.Vector, alpha float64) {
	if u.sparse {
		u.Sparse.AddScaledInto(dst, alpha)
		return
	}
	dst.AddScaled(alpha, u.Dense)
}

// MaxIndex returns the largest feature index present (0-based), or -1 when
// the unit has no features.
func (u Unit) MaxIndex() int {
	if u.sparse {
		return int(u.Sparse.MaxIndex())
	}
	return len(u.Dense) - 1
}

// String renders the unit in LIBSVM text form (1-based indices), the format
// used throughout the paper's examples.
func (u Unit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g", u.Label)
	if u.sparse {
		for k, i := range u.Sparse.Indices {
			fmt.Fprintf(&b, " %d:%g", i+1, u.Sparse.Values[k])
		}
		return b.String()
	}
	for i, v := range u.Dense {
		if v != 0 {
			fmt.Fprintf(&b, " %d:%g", i+1, v)
		}
	}
	return b.String()
}

// CSVString renders the unit as a dense comma-separated line with the label
// in the first column — the paper's dense input convention.
func (u Unit) CSVString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g", u.Label)
	if u.sparse {
		d := int(u.Sparse.MaxIndex()) + 1
		dense := u.Sparse.Dense(d)
		for _, v := range dense {
			fmt.Fprintf(&b, ",%g", v)
		}
		return b.String()
	}
	for _, v := range u.Dense {
		fmt.Fprintf(&b, ",%g", v)
	}
	return b.String()
}

// ApproxBytes estimates the in-memory footprint of the unit in bytes. The
// storage layer uses it to lay units out on simulated pages; it intentionally
// matches the accounting a columnar record reader would do (8 bytes per value,
// 4 per sparse index, 8 for the label).
func (u Unit) ApproxBytes() int {
	if u.sparse {
		return 8 + 12*u.Sparse.NNZ()
	}
	return 8 + 8*len(u.Dense)
}
