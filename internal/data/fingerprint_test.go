package data

import (
	"regexp"
	"testing"

	"ml4all/internal/linalg"
)

func fpDataset(name string, n int, tweak func(ds *Dataset)) *Dataset {
	units := make([]Unit, n)
	for i := range units {
		sp, err := linalg.NewSparse([]int32{0, int32(i%7) + 1}, []float64{1, float64(i) / 16})
		if err != nil {
			panic(err)
		}
		units[i] = NewSparseUnit(float64(2*(i%2)-1), sp)
	}
	ds := FromUnits(name, TaskSVM, units)
	if tweak != nil {
		tweak(ds)
	}
	return ds
}

func TestFingerprintDeterministic(t *testing.T) {
	a := fpDataset("fp", 500, nil)
	b := fpDataset("fp", 500, nil)
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa != fb {
		t.Fatalf("identical datasets fingerprint differently: %s vs %s", fa, fb)
	}
	if fa != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(fa) {
		t.Fatalf("fingerprint %q is not 16 hex digits", fa)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpDataset("fp", 500, nil).Fingerprint()
	cases := map[string]*Dataset{
		"different name":   fpDataset("fp2", 500, nil),
		"different length": fpDataset("fp", 501, nil),
		"edited raw line": fpDataset("fp", 500, func(ds *Dataset) {
			ds.Raw[0] = ds.Raw[0] + " extra"
		}),
		"edited sampled line": fpDataset("fp", 500, func(ds *Dataset) {
			// Line 250 is one of the 64 evenly-spaced samples of a 500-line
			// dataset; the fingerprint must see content there, not just size.
			ds.Raw[250] = "9 1:0.123"
		}),
	}
	for what, ds := range cases {
		if ds.Fingerprint() == base {
			t.Fatalf("%s: fingerprint collision with base", what)
		}
	}
}

func TestFingerprintSmallDatasets(t *testing.T) {
	// Fewer raw lines than the sample budget must not panic or divide by
	// zero, including the empty dataset.
	for _, n := range []int{0, 1, 2, 63} {
		ds := fpDataset("tiny", n, nil)
		if fp := ds.Fingerprint(); len(fp) != 16 {
			t.Fatalf("n=%d: fingerprint %q", n, fp)
		}
	}
}
