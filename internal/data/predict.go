package data

import "strings"

// Request-side row parsing for the serving layer. Prediction requests carry
// feature rows that may or may not include a ground-truth label, which the
// dataset parsers (ParseLIBSVMLine, ParseCSVLine) cannot express — they
// unconditionally treat one field as the label. These helpers route through
// the same tokenizers, so a row that also appears in a dataset file parses to
// bitwise-identical values, which is what makes served predictions exactly
// equal to offline Evaluate on the same rows.

// ParsePredictLIBSVM parses one LIBSVM-format line whose leading label is
// optional: when the first field contains ':', the entire line is features
// and hasLabel reports false. idx/vals are scratch slices appended into and
// returned re-sliced (like the dataset parser); ok is false for blank and
// comment lines.
func ParsePredictLIBSVM(line string, idx []int32, vals []float64) (label float64, hasLabel bool, oidx []int32, ovals []float64, ok bool, err error) {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") {
		return 0, false, idx, vals, false, nil
	}
	start, end, _ := nextField(trimmed, 0)
	if strings.Contains(trimmed[start:end], ":") {
		// Label-less row: every field is a feature, parsed by the exact
		// tokenizer the dataset parser uses — starting at position 0 instead
		// of allocating a synthetic zero-label prefix line.
		oidx, ovals, err = parseLIBSVMFeatures(trimmed, 0, idx, vals)
		return 0, false, oidx, ovals, err == nil, err
	}
	label, oidx, ovals, ok, err = parseLIBSVMInto(trimmed, idx, vals)
	return label, true, oidx, ovals, ok, err
}

// ParsePredictCSV parses one comma-separated line of bare feature values —
// no label column; every field is a feature. vals is scratch appended into
// and returned re-sliced; ok is false for blank and comment lines.
func ParsePredictCSV(line string, vals []float64) (ovals []float64, ok bool, err error) {
	_, ovals, ok, err = parseCSVInto(line, -1, vals)
	return ovals, ok, err
}
