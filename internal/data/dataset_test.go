package data

import (
	"math"
	"testing"

	"ml4all/internal/linalg"
)

func sparseUnit(t *testing.T, label float64, idx []int32, val []float64) Unit {
	t.Helper()
	s, err := linalg.NewSparse(idx, val)
	if err != nil {
		t.Fatal(err)
	}
	return NewSparseUnit(label, s)
}

func TestFromUnitsSparse(t *testing.T) {
	units := []Unit{
		sparseUnit(t, 1, []int32{0, 4}, []float64{1, 2}),
		sparseUnit(t, -1, []int32{2}, []float64{3}),
	}
	ds := FromUnits("toy", TaskSVM, units)
	if ds.Format != FormatLIBSVM {
		t.Fatalf("format = %v, want libsvm", ds.Format)
	}
	if ds.NumFeatures != 5 {
		t.Fatalf("NumFeatures = %d, want 5", ds.NumFeatures)
	}
	if got, want := ds.Density, 3.0/10.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("density = %g, want %g", got, want)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.SizeBytes() == 0 {
		t.Fatalf("N=%d SizeBytes=%d", ds.N(), ds.SizeBytes())
	}
}

func TestFromUnitsDenseRendersCSV(t *testing.T) {
	units := []Unit{
		NewDenseUnit(1, linalg.Vector{0.5, 0.25}),
		NewDenseUnit(-1, linalg.Vector{1, 0}),
	}
	ds := FromUnits("densetoy", TaskLinearRegression, units)
	if ds.Format != FormatCSV {
		t.Fatalf("format = %v, want csv", ds.Format)
	}
	// Raw lines must parse back to the same units under the dataset format.
	for i, raw := range ds.Raw {
		u, ok, err := ds.Format.ParseLine(raw)
		if err != nil || !ok {
			t.Fatalf("line %d: %v", i, err)
		}
		if u.Label != units[i].Label || !u.Dense.Equal(units[i].Dense, 0) {
			t.Fatalf("line %d round trip: %v != %v", i, u, units[i])
		}
	}
}

func TestSplitProportionsAndDimensions(t *testing.T) {
	units := make([]Unit, 1000)
	for i := range units {
		units[i] = sparseUnit(t, 1, []int32{int32(i % 20)}, []float64{1})
	}
	// Give the max index only to one unit so a split side may lose it.
	units[0] = sparseUnit(t, 1, []int32{99}, []float64{1})
	ds := FromUnits("toy", TaskSVM, units)

	train, test := ds.Split(0.8, 1)
	if train.N()+test.N() != ds.N() {
		t.Fatalf("split lost units: %d + %d != %d", train.N(), test.N(), ds.N())
	}
	frac := float64(train.N()) / float64(ds.N())
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("train fraction = %g, want ~0.8", frac)
	}
	if train.NumFeatures != ds.NumFeatures || test.NumFeatures != ds.NumFeatures {
		t.Fatalf("split changed dimensionality: %d/%d vs %d",
			train.NumFeatures, test.NumFeatures, ds.NumFeatures)
	}
}

func TestSplitDeterministic(t *testing.T) {
	units := make([]Unit, 100)
	for i := range units {
		units[i] = sparseUnit(t, float64(i%2*2-1), []int32{int32(i % 7)}, []float64{1})
	}
	ds := FromUnits("toy", TaskSVM, units)
	a1, _ := ds.Split(0.5, 42)
	a2, _ := ds.Split(0.5, 42)
	if a1.N() != a2.N() {
		t.Fatalf("same seed, different splits: %d vs %d", a1.N(), a2.N())
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	units := make([]Unit, 50)
	for i := range units {
		units[i] = sparseUnit(t, float64(i), []int32{0}, []float64{float64(i)})
	}
	ds := FromUnits("toy", TaskSVM, units)
	s := ds.Sample(20, 7)
	if s.N() != 20 {
		t.Fatalf("sample size = %d, want 20", s.N())
	}
	seen := map[float64]bool{}
	for _, u := range s.Rows() {
		if seen[u.Label] {
			t.Fatalf("duplicate sample %g", u.Label)
		}
		seen[u.Label] = true
	}
	// Oversampling returns everything.
	if all := ds.Sample(500, 7); all.N() != 50 {
		t.Fatalf("oversample = %d, want 50", all.N())
	}
}

func TestValidateCatchesBadDimensions(t *testing.T) {
	ds := FromUnits("toy", TaskSVM, []Unit{sparseUnit(t, 1, []int32{3}, []float64{1})})
	ds.NumFeatures = 2 // corrupt
	if err := ds.Validate(); err == nil {
		t.Fatal("Validate accepted feature index beyond NumFeatures")
	}
}

func TestStats(t *testing.T) {
	ds := FromUnits("toy", TaskLogisticRegression, []Unit{
		sparseUnit(t, 1, []int32{0, 1}, []float64{1, 1}),
	})
	st := ds.Stats()
	if st.Name != "toy" || st.Points != 1 || st.Features != 2 || st.Task != TaskLogisticRegression {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTaskKindString(t *testing.T) {
	if TaskSVM.String() != "SVM" || TaskLogisticRegression.String() != "LogR" || TaskLinearRegression.String() != "LinR" {
		t.Fatal("task names diverge from Table 2 notation")
	}
}
