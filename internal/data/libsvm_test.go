package data

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ml4all/internal/linalg"
)

func TestParseLIBSVMLine(t *testing.T) {
	u, ok, err := ParseLIBSVMLine("+1 2:0.1 4:0.4 10:0.3")
	if err != nil || !ok {
		t.Fatalf("parse failed: ok=%v err=%v", ok, err)
	}
	if u.Label != 1 {
		t.Fatalf("label = %g, want 1", u.Label)
	}
	if !u.IsSparse() {
		t.Fatal("LIBSVM unit not sparse")
	}
	wantIdx := []int32{1, 3, 9} // 1-based in text, 0-based stored
	if !reflect.DeepEqual(u.Sparse.Indices, wantIdx) {
		t.Fatalf("indices = %v, want %v", u.Sparse.Indices, wantIdx)
	}
	if u.NNZ() != 3 || u.MaxIndex() != 9 {
		t.Fatalf("NNZ/MaxIndex = %d/%d", u.NNZ(), u.MaxIndex())
	}
}

func TestParseLIBSVMSkipsBlanksAndComments(t *testing.T) {
	for _, line := range []string{"", "   ", "# comment"} {
		_, ok, err := ParseLIBSVMLine(line)
		if ok || err != nil {
			t.Fatalf("line %q: ok=%v err=%v, want skip", line, ok, err)
		}
	}
}

func TestParseLIBSVMErrors(t *testing.T) {
	bad := []string{
		"x 1:2",   // bad label
		"1 0:5",   // index < 1
		"1 a:5",   // bad index
		"1 2:xyz", // bad value
		"1 2",     // missing colon
		"1 :5",    // empty index
	}
	for _, line := range bad {
		if _, _, err := ParseLIBSVMLine(line); err == nil {
			t.Errorf("line %q: no error", line)
		}
	}
}

func TestParseCSVLine(t *testing.T) {
	u, ok, err := ParseCSVLine("1.5, 2, 3, -4", 0)
	if err != nil || !ok {
		t.Fatalf("parse failed: ok=%v err=%v", ok, err)
	}
	if u.Label != 1.5 || u.IsSparse() {
		t.Fatalf("label=%g sparse=%v", u.Label, u.IsSparse())
	}
	if !u.Dense.Equal(linalg.Vector{2, 3, -4}, 0) {
		t.Fatalf("features = %v", u.Dense)
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, _, err := ParseCSVLine("1,2", 5); err == nil {
		t.Error("label column out of range accepted")
	}
	if _, _, err := ParseCSVLine("x,2", 0); err == nil {
		t.Error("bad label accepted")
	}
	if _, _, err := ParseCSVLine("1,y", 0); err == nil {
		t.Error("bad value accepted")
	}
}

// TestLIBSVMRoundTripProperty: unit -> String() -> parse reproduces the unit.
func TestLIBSVMRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(21)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			nnz := r.Intn(8)
			idx := make([]int32, 0, nnz)
			val := make([]float64, 0, nnz)
			seen := map[int32]bool{}
			for len(idx) < nnz {
				i := int32(r.Intn(40))
				if seen[i] {
					continue
				}
				seen[i] = true
				idx = append(idx, i)
				val = append(val, math.Round(r.NormFloat64()*1e4)/1e4)
			}
			s, err := linalg.NewSparse(idx, val)
			if err != nil {
				panic(err)
			}
			label := 1.0
			if r.Float64() < 0.5 {
				label = -1
			}
			vals[0] = reflect.ValueOf(NewSparseUnit(label, s))
		},
	}
	f := func(u Unit) bool {
		parsed, ok, err := ParseLIBSVMLine(u.String())
		if err != nil {
			// All-zero sparse unit renders as bare label; must still parse.
			return false
		}
		if !ok {
			return false
		}
		if parsed.Label != u.Label || parsed.NNZ() != u.NNZ() {
			return false
		}
		for k := range u.Sparse.Indices {
			if parsed.Sparse.Indices[k] != u.Sparse.Indices[k] ||
				math.Abs(parsed.Sparse.Values[k]-u.Sparse.Values[k]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	u := NewDenseUnit(-1, linalg.Vector{0.5, 0, -2.25})
	parsed, ok, err := ParseCSVLine(u.CSVString(), 0)
	if err != nil || !ok {
		t.Fatalf("round trip failed: %v", err)
	}
	if parsed.Label != -1 || !parsed.Dense.Equal(u.Dense, 0) {
		t.Fatalf("round trip = %v, want %v", parsed, u)
	}
}

func TestReadAllWriteAll(t *testing.T) {
	in := "1 1:0.5 3:1\n-1 2:0.25\n# comment\n\n1 1:2\n"
	units, err := ReadAll(strings.NewReader(in), FormatLIBSVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 3 {
		t.Fatalf("parsed %d units, want 3", len(units))
	}
	var sb strings.Builder
	if err := WriteAll(&sb, units); err != nil {
		t.Fatal(err)
	}
	again, err := ReadAll(strings.NewReader(sb.String()), FormatLIBSVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 3 {
		t.Fatalf("re-parsed %d units, want 3", len(again))
	}
	for i := range units {
		if units[i].String() != again[i].String() {
			t.Fatalf("unit %d: %q != %q", i, units[i].String(), again[i].String())
		}
	}
}

func TestReadAllReportsLineNumbers(t *testing.T) {
	_, err := ReadAll(strings.NewReader("1 1:1\nbogus line:\n"), FormatLIBSVM)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 mention", err)
	}
}

func TestParseCSVColumns(t *testing.T) {
	// label in column 2, features in 4-6 (1-based)
	u, ok, err := ParseCSVColumns("9,1,8,0.1,0.2,0.3", ColumnSpec{LabelCol: 2, FeatLo: 4, FeatHi: 6})
	if err != nil || !ok {
		t.Fatalf("parse failed: %v", err)
	}
	if u.Label != 1 || !u.Dense.Equal(linalg.Vector{0.1, 0.2, 0.3}, 0) {
		t.Fatalf("got label=%g feats=%v", u.Label, u.Dense)
	}
	// Label inside feature range is rejected.
	if _, _, err := ParseCSVColumns("1,2,3", ColumnSpec{LabelCol: 2, FeatLo: 1, FeatHi: 3}); err == nil {
		t.Error("label inside feature range accepted")
	}
	// Range beyond columns is rejected.
	if _, _, err := ParseCSVColumns("1,2", ColumnSpec{LabelCol: 1, FeatLo: 2, FeatHi: 9}); err == nil {
		t.Error("out-of-range features accepted")
	}
}

func TestFormatString(t *testing.T) {
	if FormatLIBSVM.String() != "libsvm" || FormatCSV.String() != "csv" {
		t.Fatal("format names wrong")
	}
}
