package cluster

import (
	"fmt"
	"math/rand"
	"slices"

	"ml4all/internal/storage"
)

// Accounting accumulates what the simulated cluster did, for reports and
// tests.
type Accounting struct {
	DiskPages  int64
	MemPages   int64
	Seeks      int64
	NetBytes   int64
	Packets    int64
	Tasks      int64
	Waves      int64
	Jobs       int64
	UnitsSeen  int64
	CPUSeconds Seconds
	IOSeconds  Seconds
	NetSeconds Seconds
}

// Sim is a simulated cluster: a configuration, a virtual clock, a block cache
// and deterministic jitter. It is not safe for concurrent use; each training
// run owns one Sim.
type Sim struct {
	Cfg   Config
	Cache *storage.Cache
	Acct  Accounting

	clock Seconds
	src   *CountingSource
	rng   *rand.Rand

	// Reusable wave-scheduling scratch (RunWaves); content never outlives a
	// call, so reuse is invisible to results.
	waveBuf []Seconds
	coreBuf []Seconds
}

// New returns a Sim for cfg. It panics on an invalid configuration, which is
// always a programming error.
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := NewCountingSource(cfg.Seed)
	return &Sim{
		Cfg:   cfg,
		Cache: storage.NewCache(cfg.CacheBytes),
		src:   src,
		rng:   rand.New(src),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Seconds { return s.clock }

// Reset rewinds the clock, empties the cache and clears accounting, keeping
// the configuration.
func (s *Sim) Reset() {
	s.clock = 0
	s.Cache.Reset()
	s.Acct = Accounting{}
	s.src = NewCountingSource(s.Cfg.Seed)
	s.rng = rand.New(s.src)
}

// SimState is a serializable snapshot of a Sim mid-run: the clock, the
// accumulated accounting, the jitter stream position and the block-cache
// contents. Together with the (comparable) Config it pins the simulator
// exactly — a fresh Sim built from the same Config and Restore'd from the
// state continues bit-identically.
type SimState struct {
	Cfg      Config
	Clock    Seconds
	Acct     Accounting
	RNGDraws uint64
	Cache    storage.CacheState
}

// Snapshot captures the simulator's full dynamic state.
func (s *Sim) Snapshot() SimState {
	return SimState{
		Cfg:      s.Cfg,
		Clock:    s.clock,
		Acct:     s.Acct,
		RNGDraws: s.src.Draws(),
		Cache:    s.Cache.Snapshot(),
	}
}

// Restore rewinds the simulator to a snapshot taken from a Sim with the same
// configuration (clock, accounting, jitter position, cache residency). It
// errors when the configurations differ — a restored run on a different
// cluster would silently diverge.
func (s *Sim) Restore(st SimState) error {
	if s.Cfg != st.Cfg {
		return fmt.Errorf("cluster: restoring snapshot onto a differently-configured sim")
	}
	s.clock = st.Clock
	s.Acct = st.Acct
	s.src = NewCountingSource(s.Cfg.Seed)
	s.src.Skip(st.RNGDraws)
	s.rng = rand.New(s.src)
	s.Cache.Restore(st.Cache)
	return nil
}

// Advance moves the clock forward by d (which must be non-negative).
func (s *Sim) Advance(d Seconds) {
	if d < 0 {
		panic(fmt.Sprintf("cluster: negative advance %g", d))
	}
	s.clock += d
}

// JobInit charges the per-job driver overhead (Spark job submission). The
// paper attributes ~4s of its speculation overhead to exactly this.
func (s *Sim) JobInit() {
	s.Acct.Jobs++
	s.Advance(s.Cfg.JobInitSec)
}

// jitter returns a multiplicative straggler factor in [1, 1+JitterFrac).
func (s *Sim) jitter() float64 {
	if s.Cfg.JitterFrac == 0 {
		return 1
	}
	return 1 + s.Cfg.JitterFrac*s.rng.Float64()
}

// CostReadPartition returns the IO cost of scanning one whole partition,
// consulting and updating the cache: a seek plus one pageIO per page, from
// memory when the partition is resident and from disk (then admitted to
// cache) when not.
func (s *Sim) CostReadPartition(p storage.Partition, l storage.Layout) Seconds {
	pages := p.Pages(l)
	s.Acct.Seeks++
	var c Seconds
	if s.Cache.Contains(p.ID) {
		s.Acct.MemPages += pages
		c = s.Cfg.SeekSec + Seconds(pages)*s.Cfg.MemPageSec
	} else {
		s.Acct.DiskPages += pages
		c = s.Cfg.SeekSec + Seconds(pages)*s.Cfg.DiskPageSec
		s.Cache.Insert(p.ID, p.Bytes)
	}
	s.Acct.IOSeconds += c
	return c
}

// CostReadBytes returns the IO cost of reading `bytes` from within a
// partition (a partial, random access as done by the random-partition
// sampler): one seek plus the covering pages, at memory or disk speed
// depending on residency. The partition is not admitted to cache on a miss —
// random access of a few units does not materialize a block.
func (s *Sim) CostReadBytes(p storage.Partition, l storage.Layout, bytes int64) Seconds {
	if bytes > p.Bytes {
		bytes = p.Bytes
	}
	pages := (bytes + l.PageBytes - 1) / l.PageBytes
	s.Acct.Seeks++
	var c Seconds
	if s.Cache.Contains(p.ID) {
		s.Acct.MemPages += pages
		c = s.Cfg.SeekSec + Seconds(pages)*s.Cfg.MemPageSec
	} else {
		s.Acct.DiskPages += pages
		c = s.Cfg.SeekSec + Seconds(pages)*s.Cfg.DiskPageSec
	}
	s.Acct.IOSeconds += c
	return c
}

// CostCPU returns the CPU cost of ops multiply-adds plus per-unit UDF
// overhead for units data units.
func (s *Sim) CostCPU(units int, ops float64) Seconds {
	s.Acct.UnitsSeen += int64(units)
	c := Seconds(ops)*s.Cfg.FlopSec + Seconds(units)*s.Cfg.UnitOverheadSec
	s.Acct.CPUSeconds += c
	return c
}

// CostCompute returns the CPU cost of a batched Compute task over units data
// units performing ops multiply-adds: the per-unit UDF overhead is charged at
// the measured post-batching fraction (see ComputeUnitOverheadFrac) because a
// block-dispatched operator pays invocation overhead once per block, not once
// per row. Callers use it only for Computers that actually batch
// (gd.BatchComputer); per-row UDFs keep CostCPU.
func (s *Sim) CostCompute(units int, ops float64) Seconds {
	s.Acct.UnitsSeen += int64(units)
	c := Seconds(ops)*s.Cfg.FlopSec + Seconds(units)*s.Cfg.UnitOverheadSec*ComputeUnitOverheadFrac
	s.Acct.CPUSeconds += c
	return c
}

// CostComputeFast returns the CPU cost of a batched Compute task executing
// on the fast-math kernel tier: CostCompute with the flop term scaled by the
// active backend's measured flop fraction (ActiveFastMathFlopFrac — the SIMD
// backend is roughly twice as cheap per flop as the portable fast loops).
// The per-unit overhead term is unchanged — every fast backend carves the
// same blocks and makes the same number of kernel calls; only the arithmetic
// throughput differs.
func (s *Sim) CostComputeFast(units int, ops float64) Seconds {
	s.Acct.UnitsSeen += int64(units)
	c := Seconds(ops)*s.Cfg.FlopSec*Seconds(ActiveFastMathFlopFrac()) + Seconds(units)*s.Cfg.UnitOverheadSec*ComputeUnitOverheadFrac
	s.Acct.CPUSeconds += c
	return c
}

// CostParse returns the CPU cost of parsing bytes of raw input (the Transform
// operator's work) over units data units.
func (s *Sim) CostParse(units int, bytes int64) Seconds {
	s.Acct.UnitsSeen += int64(units)
	c := Seconds(bytes)*s.Cfg.ParseByteSec + Seconds(units)*s.Cfg.UnitOverheadSec
	s.Acct.CPUSeconds += c
	return c
}

// RunWaves schedules the given per-task costs onto the cluster in waves of
// Cap() parallel tasks (longest-processing-time first, matching a work-
// stealing scheduler closely enough) and advances the clock by the resulting
// makespan plus per-wave overhead. Jitter is applied per task. It returns the
// makespan.
func (s *Sim) RunWaves(taskCosts []Seconds) Seconds {
	if len(taskCosts) == 0 {
		return 0
	}
	cap := s.Cfg.Cap()
	if len(taskCosts) > len(s.waveBuf) || cap > len(s.coreBuf) {
		buf := make([]Seconds, len(taskCosts)+cap)
		s.waveBuf, s.coreBuf = buf[:len(taskCosts)], buf[len(taskCosts):]
	}
	jittered := s.waveBuf[:len(taskCosts)]
	for i, t := range taskCosts {
		jittered[i] = t * Seconds(s.jitter())
	}
	// Descending sort; a different sort algorithm cannot change the sorted
	// value sequence (ties collapse), so the schedule is unaffected.
	slices.SortFunc(jittered, func(a, b Seconds) int {
		switch {
		case a > b:
			return -1
		case a < b:
			return 1
		default:
			return 0
		}
	})
	// Greedy LPT assignment onto cap cores.
	cores := s.coreBuf[:cap]
	for i := range cores {
		cores[i] = 0
	}
	for _, t := range jittered {
		// Find least-loaded core.
		min := 0
		for i := 1; i < cap; i++ {
			if cores[i] < cores[min] {
				min = i
			}
		}
		cores[min] += t
	}
	var makespan Seconds
	for _, c := range cores {
		if c > makespan {
			makespan = c
		}
	}
	waves := (len(taskCosts) + cap - 1) / cap
	makespan += Seconds(waves) * s.Cfg.WaveOverheadSec
	s.Acct.Tasks += int64(len(taskCosts))
	s.Acct.Waves += int64(waves)
	s.Advance(makespan)
	return makespan
}

// RunLocal executes a centralized task (the "Java operator" path in ML4all's
// hybrid mode): the cost is charged directly on the driver with jitter but no
// wave overhead.
func (s *Sim) RunLocal(cost Seconds) Seconds {
	c := cost * Seconds(s.jitter())
	s.Acct.Tasks++
	s.Advance(c)
	return c
}

// Transfer moves bytes across the network in the given number of aggregation
// rounds (1 for a flat reduce, log2(executors) for a tree aggregate) and
// advances the clock. It returns the elapsed network time.
func (s *Sim) Transfer(bytes int64, rounds int) Seconds {
	if bytes <= 0 {
		return 0
	}
	if rounds < 1 {
		rounds = 1
	}
	packets := (bytes + s.Cfg.PacketBytes - 1) / s.Cfg.PacketBytes
	c := Seconds(float64(bytes)/s.Cfg.NetBytePerSec) + Seconds(rounds)*s.Cfg.PacketLatencySec
	s.Acct.NetBytes += bytes
	s.Acct.Packets += packets
	s.Acct.NetSeconds += c
	s.Advance(c)
	return c
}
