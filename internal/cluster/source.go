package cluster

import "math/rand"

// CountingSource wraps the standard PRNG source and counts how many raw
// draws have been consumed. The count is the whole serialized identity of
// the stream: a source re-created from the same seed and skipped forward by
// the same number of draws continues bit-identically, which is what lets a
// training checkpoint capture "the RNG position" without copying opaque
// generator internals. Both Int63 and Uint64 advance the underlying
// generator by exactly one step, so Skip replays with either.
type CountingSource struct {
	src   rand.Source64
	draws uint64
}

// NewCountingSource returns a counting source seeded like rand.NewSource.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count with the stream.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// Draws returns how many raw values have been consumed since seeding.
func (c *CountingSource) Draws() uint64 { return c.draws }

// Skip fast-forwards the stream by n draws (counted like any other draw).
func (c *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}
