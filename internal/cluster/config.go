// Package cluster simulates the compute substrate the paper runs on: a small
// cluster of worker nodes executing tasks over data partitions in waves, with
// a packet network between executors and a block cache per cluster. The
// simulator advances a virtual clock using the same cost structure as the
// paper's cost model (pages, seeks, waves, packets, per-unit CPU); the
// numeric work itself (gradients, updates) is executed for real by the
// engine, so convergence behaviour is genuine while reported training time is
// simulated cluster time.
package cluster

import "fmt"

// Seconds is simulated cluster time. It is deliberately a distinct type from
// time.Duration so virtual and wall-clock time cannot be confused.
type Seconds float64

// Config describes the simulated cluster and its cost constants. All
// *Sec fields are virtual seconds.
type Config struct {
	// Topology (paper Section 8.1: four nodes, four executors, four cores
	// each => 16-way parallelism).
	Nodes            int
	ExecutorsPerNode int
	CoresPerExecutor int

	// CacheBytes is the cluster-wide block-cache capacity (the Spark
	// executor storage memory stand-in). Datasets larger than this incur
	// disk IO on every pass (paper Figures 9-10, svm3).
	CacheBytes int64

	// Storage costs.
	DiskPageSec Seconds // pageIO from disk
	MemPageSec  Seconds // pageIO from cache
	SeekSec     Seconds // SK: per partition access

	// Network costs.
	NetBytePerSec    float64 // bytes/second of simulated bandwidth
	PacketBytes      int64   // maximum network data unit
	PacketLatencySec Seconds // per-round latency (handshake / shuffle round)

	// CPU costs.
	FlopSec         Seconds // per multiply-add on a feature value
	ParseByteSec    Seconds // per byte parsed by Transform
	UnitOverheadSec Seconds // per data unit UDF invocation overhead

	// Framework overheads.
	JobInitSec      Seconds // per-job driver overhead (the ~4s Spark job init the paper reports)
	WaveOverheadSec Seconds // task scheduling overhead per wave
	DriverIterSec   Seconds // per-iteration driver coordination overhead

	// JitterFrac is the maximum multiplicative task-time jitter
	// (stragglers). 0 disables jitter; the cost model predicts jitter-free
	// times, so this is what keeps estimates approximate rather than
	// tautological.
	JitterFrac float64

	// Seed drives the deterministic jitter stream.
	Seed int64
}

// Default returns the simulated analogue of the paper's evaluation cluster
// at the repository's global 1/64 scale: four nodes, one executor per node
// with four cores, and a 64 MB cluster cache standing in for the 4×20 GB of
// Spark storage memory (minus overheads) at 1/64 scale. Per-byte and per-unit
// costs are the real-hardware constants (100 MB/s disk, ~5 GB/s cache reads,
// 10 GbE, ~100 Mflop/s effective JVM arithmetic, ~100 MB/s parsing)
// multiplied by 64 so that running 1/64-scale data yields training times of
// the same magnitude the paper reports.
func Default() Config {
	return Config{
		Nodes:            4,
		ExecutorsPerNode: 1,
		CoresPerExecutor: 4,
		CacheBytes:       64 << 20,
		DiskPageSec:      6.4e-4,  // 1 KB page: 64 × (1 KB / 100 MB/s)
		MemPageSec:       1.28e-5, // 1 KB page: 64 × (1 KB / 5 GB/s)
		SeekSec:          2e-3,    // per partition access; partition counts are unscaled
		NetBytePerSec:    2.0e7,   // 1.25 GB/s ÷ 64
		PacketBytes:      1 << 10, // 64 KB ÷ 64
		PacketLatencySec: 3e-4,
		FlopSec:          6.4e-7, // 64 × 10 ns per multiply-add
		ParseByteSec:     6.4e-7, // 64 × (1 B / 100 MB/s)
		UnitOverheadSec:  6.4e-6, // 64 × 100 ns per record
		JobInitSec:       4.0,
		WaveOverheadSec:  5e-3,
		DriverIterSec:    0.02, // per-iteration Spark driver coordination
		JitterFrac:       0.12,
		Seed:             1,
	}
}

// SimulationScale is the repository's global data-scale divisor: datasets
// are generated at 1/SimulationScale of the paper's bytes, and Default()'s
// per-byte/per-unit cost constants are the real-hardware ones multiplied by
// this factor, so scaled data yields paper-magnitude simulated times.
const SimulationScale = 64

// LocalOnly returns a single-node single-core configuration used for the
// centralized ("Java") execution mode and unit tests. Framework overheads
// vanish: a local loop has no job scheduling, waves or per-iteration driver
// round trips.
func LocalOnly() Config {
	c := Default()
	c.Nodes, c.ExecutorsPerNode, c.CoresPerExecutor = 1, 1, 1
	c.JobInitSec = 0
	c.WaveOverheadSec = 0
	c.DriverIterSec = 1e-5
	return c
}

// SpeculationLocal returns the configuration for the estimator's driver-side
// speculation runs. Unlike LocalOnly it undoes the SimulationScale cost
// multiplier: the speculation sample is *not* scaled data (it is a constant
// ~1000 points whatever the dataset scale), so charging it scaled per-unit
// costs would inflate the optimizer's overhead 64-fold relative to the
// paper's 4.6-8 s measurements.
func SpeculationLocal() Config {
	c := LocalOnly()
	s := Seconds(SimulationScale)
	c.DiskPageSec /= s
	c.MemPageSec /= s
	c.FlopSec /= s
	c.ParseByteSec /= s
	c.UnitOverheadSec /= s
	return c
}

// Cap returns cap from Table 1: the number of tasks the cluster can run in
// parallel.
func (c Config) Cap() int {
	return c.Nodes * c.ExecutorsPerNode * c.CoresPerExecutor
}

// Executors returns the total executor count (the fan-in of aggregations).
func (c Config) Executors() int { return c.Nodes * c.ExecutorsPerNode }

// Validate returns an error describing the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0 || c.ExecutorsPerNode <= 0 || c.CoresPerExecutor <= 0:
		return fmt.Errorf("cluster: topology must be positive, got %d/%d/%d",
			c.Nodes, c.ExecutorsPerNode, c.CoresPerExecutor)
	case c.PacketBytes <= 0:
		return fmt.Errorf("cluster: PacketBytes must be positive, got %d", c.PacketBytes)
	case c.NetBytePerSec <= 0:
		return fmt.Errorf("cluster: NetBytePerSec must be positive, got %g", c.NetBytePerSec)
	case c.JitterFrac < 0 || c.JitterFrac >= 1:
		return fmt.Errorf("cluster: JitterFrac must be in [0,1), got %g", c.JitterFrac)
	}
	return nil
}
