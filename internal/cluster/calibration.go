package cluster

// Post-batched-kernel calibration of the Compute operator's per-unit cost.
//
// The simulator charges CPU as ops·FlopSec + units·UnitOverheadSec (CostCPU).
// UnitOverheadSec models the per-record UDF invocation overhead of a row-at-
// a-time executor — virtual dispatch, per-row view construction, loop
// bookkeeping. Since the batched execution layer, plans whose Computer
// implements gd.BatchComputer no longer pay that per row: dispatch happens
// once per 512-row block and the kernels run fused loops over the columnar
// arena. Keeping the full per-unit overhead in the simulator (and therefore
// in the cost model, which is calibrated by the same Config) would make
// adaptive re-costing price compute phases at pre-kernel speeds and prefer
// sampling-heavy plans that the post-kernel executor has no reason to favor.
//
// ComputeUnitOverheadFrac is the measured fraction of the per-unit overhead
// that survives batching. Measurement (Intel Xeon @ 2.10GHz, linux/amd64,
// go1.24):
//
//	go test -bench 'BenchmarkGradientPath' -benchtime=1s ./internal/gradients/
//
//	                        row path     blocked      pure kernel   overhead
//	                        ns/row       ns/row       ns/row        post/pre
//	dense d=50 (logistic)   121.9        81.7         ~79           ~0.07
//	CSR  nnz=2 (logistic)    72.8        19.1         ~5            ~0.21
//
// where "overhead" is (path − pure kernel work); the pure kernel figure is
// the blocked path at large nnz extrapolated per row. The surviving
// overhead is the per-block dispatch plus residual per-row branch cost. We
// charge the conservative (upper) measured ratio, 0.25, rather than the
// dense figure: simulated compute phases for batch-capable plans cost
// ops·FlopSec + units·UnitOverheadSec·0.25, via Sim.CostCompute. Per-row
// Computer UDFs (anything not implementing gd.BatchComputer) still pay the
// full overhead through CostCPU — on the simulated cluster, as for real,
// only batched operators amortize their dispatch.
const ComputeUnitOverheadFrac = 0.25
