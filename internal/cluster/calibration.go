package cluster

import "ml4all/internal/linalg"

// Post-batched-kernel calibration of the Compute operator's per-unit cost.
//
// The simulator charges CPU as ops·FlopSec + units·UnitOverheadSec (CostCPU).
// UnitOverheadSec models the per-record UDF invocation overhead of a row-at-
// a-time executor — virtual dispatch, per-row view construction, loop
// bookkeeping. Since the batched execution layer, plans whose Computer
// implements gd.BatchComputer no longer pay that per row: dispatch happens
// once per 512-row block and the kernels run fused loops over the columnar
// arena. Keeping the full per-unit overhead in the simulator (and therefore
// in the cost model, which is calibrated by the same Config) would make
// adaptive re-costing price compute phases at pre-kernel speeds and prefer
// sampling-heavy plans that the post-kernel executor has no reason to favor.
//
// ComputeUnitOverheadFrac is the measured fraction of the per-unit overhead
// that survives batching. Measurement (Intel Xeon @ 2.10GHz, linux/amd64,
// go1.24):
//
//	go test -bench 'BenchmarkGradientPath' -benchtime=1s ./internal/gradients/
//
//	                        row path     blocked      pure kernel   overhead
//	                        ns/row       ns/row       ns/row        post/pre
//	dense d=50 (logistic)   121.9        81.7         ~79           ~0.07
//	CSR  nnz=2 (logistic)    72.8        19.1         ~5            ~0.21
//
// where "overhead" is (path − pure kernel work); the pure kernel figure is
// the blocked path at large nnz extrapolated per row. The surviving
// overhead is the per-block dispatch plus residual per-row branch cost. We
// charge the conservative (upper) measured ratio, 0.25, rather than the
// dense figure: simulated compute phases for batch-capable plans cost
// ops·FlopSec + units·UnitOverheadSec·0.25, via Sim.CostCompute. Per-row
// Computer UDFs (anything not implementing gd.BatchComputer) still pay the
// full overhead through CostCPU — on the simulated cluster, as for real,
// only batched operators amortize their dispatch.
const ComputeUnitOverheadFrac = 0.25

// FastMathFlopFrac is the measured per-flop cost fraction of the fast-math
// kernel tier (engine.Options.FastMath) relative to the bit-exact blocked
// kernels: multi-accumulator dots break the FP-add dependency chain the
// exact tier serializes on, the fused four-row gradient accumulation
// quarters the gradient-vector memory traffic, and the logistic sigmoid
// runs the polynomial linalg.ExpFast instead of math.Exp. Measurement
// (same host as the table above, go1.24, median of 5–7 runs):
//
//	go test -bench 'ComputePhase(Dense|Sparse)(Fast)?' -benchtime=5x -count=5 .
//
//	                         exact        fast         fast/exact
//	                         ns/op        ns/op
//	dense d=50, workers=1    24.7e6       17.1e6       0.69
//	dense d=50, workers=8    26.5e6       15.7e6       0.59
//	sparse nnz≈50, workers=1 41.3e6       29.7e6       0.72
//	sparse nnz≈50, workers=8 38.6e6       32.1e6       0.83
//
// The per-unit dispatch overhead is tier-independent (same block carving,
// same kernel-call count), so the fast tier is charged the same
// ComputeUnitOverheadFrac and only the flop rate changes. We charge 0.70 —
// the median measured ratio, not the best one — via CostComputeFast, which
// scales only the flop term: for sparse-dominated ops mixes the flop term is
// small against the overhead term and the charged advantage shrinks
// accordingly, tracking the measurement.
//
// Since the SIMD kernel backend the flop fraction is per-backend: this
// constant is the portable fast-go tier's figure, and FastMathFlopFracFor
// resolves the one the running binary actually executes.
const FastMathFlopFrac = 0.70

// FastMathFlopFracSIMD is the measured per-flop cost fraction of the
// AVX2+FMA assembly backend (linalg.BackendSIMDAVX2) relative to the exact
// kernels. Measurement (Intel Xeon @ 2.10GHz, AVX2+FMA, linux/amd64,
// go1.24, median of 5 runs, runtime dispatch live):
//
//	go test -bench 'ComputePhase(Dense|Sparse)(Fast)?' -benchtime=5x -count=5 .
//
//	                         exact        fast-simd    simd/exact
//	                         ns/op        ns/op
//	dense d=50, workers=1    26.6e6       7.7e6        0.29
//	dense d=50, workers=8    25.1e6       7.7e6        0.31
//	sparse nnz≈50, workers=1 39.3e6       26.0e6       0.66
//	sparse nnz≈50, workers=8 37.8e6       26.6e6       0.70
//
// (Kernel-level: dense margins 22.5 -> 7.3 ns/row, fused accumulate
// 19.1 -> 6.2 ns/row, vector exp 5.9 -> 1.1 ns/elem, gathered sparse dot
// 21.8 -> 15.1 ns/row over the fast-go loops.) As with FastMathFlopFrac we
// charge the median across measured shapes, 0.50, not the dense best case:
// the sparse ratios carry residual per-unit overhead the flop term should
// not be credited for, and the dense ratios would overstate the win on
// gather-bound mixes.
const FastMathFlopFracSIMD = 0.50

// FastMathFlopFracFor returns the per-flop cost fraction for a fast-tier
// kernel backend (a linalg.FastBackend value). Unknown names — including
// linalg.BackendSIMDNEON, which has no measurement yet — are charged the
// portable tier's conservative fraction, so an unmeasured backend can only
// be under-credited, never over-credited, by the planner.
func FastMathFlopFracFor(backend string) float64 {
	if backend == linalg.BackendSIMDAVX2 {
		return FastMathFlopFracSIMD
	}
	return FastMathFlopFrac
}

// ActiveFastMathFlopFrac resolves the flop fraction of the backend the
// running binary dispatches to right now (runtime CPU detection plus any
// noasm/ML4ALL_NOSIMD/SetSIMD override), so simulator and cost model price
// the fast tier as executed, not as compiled.
func ActiveFastMathFlopFrac() float64 {
	return FastMathFlopFracFor(linalg.FastBackend())
}
