package cluster

// Post-batched-kernel calibration of the Compute operator's per-unit cost.
//
// The simulator charges CPU as ops·FlopSec + units·UnitOverheadSec (CostCPU).
// UnitOverheadSec models the per-record UDF invocation overhead of a row-at-
// a-time executor — virtual dispatch, per-row view construction, loop
// bookkeeping. Since the batched execution layer, plans whose Computer
// implements gd.BatchComputer no longer pay that per row: dispatch happens
// once per 512-row block and the kernels run fused loops over the columnar
// arena. Keeping the full per-unit overhead in the simulator (and therefore
// in the cost model, which is calibrated by the same Config) would make
// adaptive re-costing price compute phases at pre-kernel speeds and prefer
// sampling-heavy plans that the post-kernel executor has no reason to favor.
//
// ComputeUnitOverheadFrac is the measured fraction of the per-unit overhead
// that survives batching. Measurement (Intel Xeon @ 2.10GHz, linux/amd64,
// go1.24):
//
//	go test -bench 'BenchmarkGradientPath' -benchtime=1s ./internal/gradients/
//
//	                        row path     blocked      pure kernel   overhead
//	                        ns/row       ns/row       ns/row        post/pre
//	dense d=50 (logistic)   121.9        81.7         ~79           ~0.07
//	CSR  nnz=2 (logistic)    72.8        19.1         ~5            ~0.21
//
// where "overhead" is (path − pure kernel work); the pure kernel figure is
// the blocked path at large nnz extrapolated per row. The surviving
// overhead is the per-block dispatch plus residual per-row branch cost. We
// charge the conservative (upper) measured ratio, 0.25, rather than the
// dense figure: simulated compute phases for batch-capable plans cost
// ops·FlopSec + units·UnitOverheadSec·0.25, via Sim.CostCompute. Per-row
// Computer UDFs (anything not implementing gd.BatchComputer) still pay the
// full overhead through CostCPU — on the simulated cluster, as for real,
// only batched operators amortize their dispatch.
const ComputeUnitOverheadFrac = 0.25

// FastMathFlopFrac is the measured per-flop cost fraction of the fast-math
// kernel tier (engine.Options.FastMath) relative to the bit-exact blocked
// kernels: multi-accumulator dots break the FP-add dependency chain the
// exact tier serializes on, the fused four-row gradient accumulation
// quarters the gradient-vector memory traffic, and the logistic sigmoid
// runs the polynomial linalg.ExpFast instead of math.Exp. Measurement
// (same host as the table above, go1.24, median of 5–7 runs):
//
//	go test -bench 'ComputePhase(Dense|Sparse)(Fast)?' -benchtime=5x -count=5 .
//
//	                         exact        fast         fast/exact
//	                         ns/op        ns/op
//	dense d=50, workers=1    24.7e6       17.1e6       0.69
//	dense d=50, workers=8    26.5e6       15.7e6       0.59
//	sparse nnz≈50, workers=1 41.3e6       29.7e6       0.72
//	sparse nnz≈50, workers=8 38.6e6       32.1e6       0.83
//
// The per-unit dispatch overhead is tier-independent (same block carving,
// same kernel-call count), so the fast tier is charged the same
// ComputeUnitOverheadFrac and only the flop rate changes. We charge 0.70 —
// the median measured ratio, not the best one — via CostComputeFast, which
// scales only the flop term: for sparse-dominated ops mixes the flop term is
// small against the overhead term and the charged advantage shrinks
// accordingly, tracking the measurement.
const FastMathFlopFrac = 0.70
