package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Scheduling properties of RunWaves: for any task multiset, the makespan is
// bounded below by both the longest task and the perfectly-balanced load
// (sum/cap), and bounded above by the greedy 2-approximation guarantee
// (sum/cap + longest). Jitter is disabled so the bounds are exact.

func TestRunWavesMakespanBoundsProperty(t *testing.T) {
	cfgGen := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(11)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(60)
			tasks := make([]Seconds, n)
			for i := range tasks {
				tasks[i] = Seconds(r.Float64()*10 + 0.01)
			}
			vals[0] = reflect.ValueOf(tasks)
		},
	}
	cfg := Default()
	cfg.JitterFrac = 0
	cfg.WaveOverheadSec = 0
	capN := float64(cfg.Cap())

	f := func(tasks []Seconds) bool {
		s := New(cfg)
		makespan := float64(s.RunWaves(tasks))
		var sum, longest float64
		for _, tk := range tasks {
			sum += float64(tk)
			if float64(tk) > longest {
				longest = float64(tk)
			}
		}
		lower := longest
		if sum/capN > lower {
			lower = sum / capN
		}
		upper := sum/capN + longest
		return makespan >= lower-1e-9 && makespan <= upper+1e-9
	}
	if err := quick.Check(f, cfgGen); err != nil {
		t.Fatal(err)
	}
}

// TestRunWavesMonotoneInTasksProperty: adding a task never shrinks the
// makespan.
func TestRunWavesMonotoneInTasksProperty(t *testing.T) {
	cfg := Default()
	cfg.JitterFrac = 0
	cfg.WaveOverheadSec = 0
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(40)
		tasks := make([]Seconds, n)
		for i := range tasks {
			tasks[i] = Seconds(r.Float64() * 5)
		}
		a := New(cfg)
		base := a.RunWaves(tasks)
		b := New(cfg)
		grown := b.RunWaves(append(append([]Seconds{}, tasks...), Seconds(r.Float64()*5)))
		if grown < base-1e-9 {
			t.Fatalf("makespan shrank when adding a task: %g -> %g", base, grown)
		}
	}
}

// TestClockNeverRewindsProperty: any interleaving of simulator operations
// only moves the clock forward.
func TestClockNeverRewindsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New(Default())
		prev := s.Now()
		for _, op := range ops {
			switch op % 5 {
			case 0:
				s.RunLocal(Seconds(op) / 100)
			case 1:
				s.RunWaves([]Seconds{Seconds(op) / 50})
			case 2:
				s.Transfer(int64(op)*100, 1)
			case 3:
				s.JobInit()
			case 4:
				s.CostCPU(int(op), float64(op)) // cost-only: no advance needed, but must not rewind
			}
			if s.Now() < prev {
				return false
			}
			prev = s.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}
