package cluster

import (
	"math"
	"testing"

	"ml4all/internal/storage"
)

func testConfig() Config {
	c := Default()
	c.JitterFrac = 0 // deterministic costs for exact assertions
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := Default()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	bad = Default()
	bad.JitterFrac = 1
	if err := bad.Validate(); err == nil {
		t.Error("jitter 1.0 accepted")
	}
	bad = Default()
	bad.PacketBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero packet accepted")
	}
}

func TestCapAndExecutors(t *testing.T) {
	c := Default()
	if c.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16 (paper cluster)", c.Cap())
	}
	if c.Executors() != 4 {
		t.Fatalf("Executors = %d, want 4", c.Executors())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	bad := Default()
	bad.Nodes = -1
	New(bad)
}

func TestAdvanceAndReset(t *testing.T) {
	s := New(testConfig())
	s.Advance(1.5)
	if s.Now() != 1.5 {
		t.Fatalf("Now = %g, want 1.5", s.Now())
	}
	s.Reset()
	if s.Now() != 0 || s.Acct.Tasks != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance accepted")
		}
	}()
	New(testConfig()).Advance(-1)
}

func TestJobInit(t *testing.T) {
	s := New(testConfig())
	s.JobInit()
	if s.Now() != s.Cfg.JobInitSec || s.Acct.Jobs != 1 {
		t.Fatalf("JobInit: now=%g jobs=%d", s.Now(), s.Acct.Jobs)
	}
}

func TestCostReadPartitionCachesAndHits(t *testing.T) {
	s := New(testConfig())
	p := storage.Partition{ID: 3, Bytes: 4096}
	l := storage.Layout{PartitionBytes: 1 << 20, PageBytes: 1024}

	cold := s.CostReadPartition(p, l)
	wantCold := s.Cfg.SeekSec + 4*s.Cfg.DiskPageSec
	if math.Abs(float64(cold-wantCold)) > 1e-12 {
		t.Fatalf("cold read = %g, want %g", cold, wantCold)
	}
	warm := s.CostReadPartition(p, l)
	wantWarm := s.Cfg.SeekSec + 4*s.Cfg.MemPageSec
	if math.Abs(float64(warm-wantWarm)) > 1e-12 {
		t.Fatalf("warm read = %g, want %g", warm, wantWarm)
	}
	if warm >= cold {
		t.Fatal("cache hit not cheaper than disk")
	}
	if s.Acct.DiskPages != 4 || s.Acct.MemPages != 4 || s.Acct.Seeks != 2 {
		t.Fatalf("accounting: %+v", s.Acct)
	}
}

func TestCostReadBytesDoesNotAdmit(t *testing.T) {
	s := New(testConfig())
	p := storage.Partition{ID: 9, Bytes: 8192}
	l := storage.Layout{PartitionBytes: 1 << 20, PageBytes: 1024}
	s.CostReadBytes(p, l, 100) // random access, one page
	if s.Cache.Peek(9) {
		t.Fatal("random access admitted partition to cache")
	}
	// Reading more bytes than the partition holds is clamped.
	c := s.CostReadBytes(p, l, 1<<30)
	want := s.Cfg.SeekSec + 8*s.Cfg.DiskPageSec
	if math.Abs(float64(c-want)) > 1e-12 {
		t.Fatalf("clamped read = %g, want %g", c, want)
	}
}

func TestCostCPUAndParse(t *testing.T) {
	s := New(testConfig())
	c := s.CostCPU(10, 1000)
	want := 1000*s.Cfg.FlopSec + 10*s.Cfg.UnitOverheadSec
	if math.Abs(float64(c-want)) > 1e-15 {
		t.Fatalf("CostCPU = %g, want %g", c, want)
	}
	p := s.CostParse(5, 2000)
	wantP := 2000*s.Cfg.ParseByteSec + 5*s.Cfg.UnitOverheadSec
	if math.Abs(float64(p-wantP)) > 1e-15 {
		t.Fatalf("CostParse = %g, want %g", p, wantP)
	}
	if s.Acct.UnitsSeen != 15 {
		t.Fatalf("UnitsSeen = %d, want 15", s.Acct.UnitsSeen)
	}
}

func TestRunWavesMakespan(t *testing.T) {
	cfg := testConfig()
	cfg.WaveOverheadSec = 0
	s := New(cfg)
	// 16 equal tasks on 16 cores: makespan == one task.
	tasks := make([]Seconds, 16)
	for i := range tasks {
		tasks[i] = 2
	}
	if got := s.RunWaves(tasks); math.Abs(float64(got-2)) > 1e-12 {
		t.Fatalf("16 tasks on 16 cores: makespan = %g, want 2", got)
	}
	// 17 tasks: two waves worth of the long pole.
	s.Reset()
	tasks = append(tasks, Seconds(2))
	if got := s.RunWaves(tasks); math.Abs(float64(got-4)) > 1e-12 {
		t.Fatalf("17 tasks: makespan = %g, want 4", got)
	}
	if s.Acct.Waves != 2 || s.Acct.Tasks != 17 {
		t.Fatalf("accounting: %+v", s.Acct)
	}
}

func TestRunWavesChargesWaveOverhead(t *testing.T) {
	cfg := testConfig()
	cfg.WaveOverheadSec = 1
	s := New(cfg)
	got := s.RunWaves([]Seconds{1}) // one wave
	if math.Abs(float64(got-2)) > 1e-12 {
		t.Fatalf("makespan = %g, want 1 task + 1 overhead", got)
	}
}

func TestRunWavesEmpty(t *testing.T) {
	s := New(testConfig())
	if got := s.RunWaves(nil); got != 0 {
		t.Fatalf("empty waves = %g, want 0", got)
	}
}

func TestRunLocal(t *testing.T) {
	s := New(testConfig())
	got := s.RunLocal(3)
	if math.Abs(float64(got-3)) > 1e-12 || s.Now() != got {
		t.Fatalf("RunLocal = %g now=%g", got, s.Now())
	}
}

func TestTransfer(t *testing.T) {
	s := New(testConfig())
	got := s.Transfer(2048, 2)
	want := Seconds(2048/s.Cfg.NetBytePerSec) + 2*s.Cfg.PacketLatencySec
	if math.Abs(float64(got-want)) > 1e-15 {
		t.Fatalf("Transfer = %g, want %g", got, want)
	}
	if s.Acct.NetBytes != 2048 || s.Acct.Packets != 2 {
		t.Fatalf("accounting: %+v", s.Acct)
	}
	if s.Transfer(0, 1) != 0 {
		t.Fatal("zero-byte transfer charged")
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	cfg := Default() // jitter on
	a, b := New(cfg), New(cfg)
	ta := a.RunWaves([]Seconds{1, 2, 3})
	tb := b.RunWaves([]Seconds{1, 2, 3})
	if ta != tb {
		t.Fatalf("same seed, different makespans: %g vs %g", ta, tb)
	}
	cfg2 := cfg
	cfg2.Seed = 999
	c := New(cfg2)
	if tc := c.RunWaves([]Seconds{1, 2, 3}); tc == ta {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

func TestJitterBounded(t *testing.T) {
	cfg := Default()
	s := New(cfg)
	for i := 0; i < 100; i++ {
		got := s.RunLocal(1)
		if got < 1 || got > Seconds(1+cfg.JitterFrac) {
			t.Fatalf("jittered cost %g outside [1, %g]", got, 1+cfg.JitterFrac)
		}
	}
}
