package cluster

import (
	"testing"

	"ml4all/internal/linalg"
)

// TestFastMathFlopFracPerBackend pins the per-backend pricing table: the
// SIMD backend is priced cheaper per flop than the portable fast tier, and
// unknown or unmeasured backends (NEON included, until it has a table)
// degrade to the conservative portable figure.
func TestFastMathFlopFracPerBackend(t *testing.T) {
	if got := FastMathFlopFracFor(linalg.BackendFastGo); got != FastMathFlopFrac {
		t.Fatalf("fast-go frac = %v, want %v", got, FastMathFlopFrac)
	}
	if got := FastMathFlopFracFor(linalg.BackendSIMDAVX2); got != FastMathFlopFracSIMD {
		t.Fatalf("avx2 frac = %v, want %v", got, FastMathFlopFracSIMD)
	}
	if FastMathFlopFracSIMD >= FastMathFlopFrac {
		t.Fatalf("SIMD frac %v should undercut fast-go frac %v", FastMathFlopFracSIMD, FastMathFlopFrac)
	}
	if got := FastMathFlopFracFor(linalg.BackendSIMDNEON); got != FastMathFlopFrac {
		t.Fatalf("unmeasured neon frac = %v, want conservative %v", got, FastMathFlopFrac)
	}
	if got := FastMathFlopFracFor("no-such-backend"); got != FastMathFlopFrac {
		t.Fatalf("unknown backend frac = %v, want %v", got, FastMathFlopFrac)
	}
}

// TestCostComputeFastTracksBackend pins that the simulator prices the fast
// tier by the backend executing right now: flipping SIMD dispatch off must
// raise the charged flop cost to the portable tier's, and back. Skipped on
// hosts without a backend, where the question does not arise.
func TestCostComputeFastTracksBackend(t *testing.T) {
	if !linalg.SIMDAvailable() {
		t.Skipf("no SIMD backend (features: %s)", linalg.CPUFeatures())
	}
	cfg := Default()
	const units, ops = 1000, 1e6

	prev := linalg.SetSIMD(true)
	defer linalg.SetSIMD(prev)
	simSIMD := New(cfg)
	costSIMD := simSIMD.CostComputeFast(units, ops)

	linalg.SetSIMD(false)
	simGo := New(cfg)
	costGo := simGo.CostComputeFast(units, ops)

	wantSIMD := Seconds(ops)*cfg.FlopSec*Seconds(FastMathFlopFracSIMD) +
		Seconds(units)*cfg.UnitOverheadSec*ComputeUnitOverheadFrac
	wantGo := Seconds(ops)*cfg.FlopSec*Seconds(FastMathFlopFrac) +
		Seconds(units)*cfg.UnitOverheadSec*ComputeUnitOverheadFrac
	if costSIMD != wantSIMD {
		t.Fatalf("SIMD-backend cost %v, want %v", costSIMD, wantSIMD)
	}
	if costGo != wantGo {
		t.Fatalf("fast-go cost %v, want %v", costGo, wantGo)
	}
	if costSIMD >= costGo {
		t.Fatalf("SIMD cost %v should undercut fast-go cost %v", costSIMD, costGo)
	}
}
