// Package fault is a deterministic fault-injection framework for crash-safety
// testing. Code under test threads filesystem work through the FS seam
// (fs.go); each operation reports to a named injection point on an Injector,
// which decides — deterministically, from the armed plan and a seed — whether
// the operation fails, tears, stalls, or "crashes the process".
//
// A crash is simulated in-process: once a crash fault fires, the Injector is
// dead and every subsequent operation through it fails with ErrCrash without
// touching the disk. The bytes already durable at that moment are exactly
// what a real kill at that instruction would have left behind, so a test
// restarts the component over the same directory (with a fresh Injector) and
// asserts recovery.
//
// Production binaries can arm an Injector from the ML4ALL_FAULT environment
// variable (see ParsePlan) for chaos drills; a nil *Injector is inert and the
// seam then costs one nil check per operation.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind selects what happens when a fault fires.
type Kind int

const (
	// KindErr fails the operation with ErrInjected; no bytes are touched.
	KindErr Kind = iota + 1
	// KindENOSPC fails the operation with ErrNoSpace; writes persist nothing.
	KindENOSPC
	// KindShortWrite persists a prefix of the buffer, then fails with
	// ErrNoSpace — the classic torn write a full disk produces.
	KindShortWrite
	// KindCrash persists a prefix of the buffer (for writes), then kills the
	// Injector: this operation and every later one through it return
	// ErrCrash. The on-disk state is frozen at the instant of the crash.
	KindCrash
	// KindLatency delays the operation by Delay, then lets it succeed.
	KindLatency
)

func (k Kind) String() string {
	switch k {
	case KindErr:
		return "err"
	case KindENOSPC:
		return "enospc"
	case KindShortWrite:
		return "shortwrite"
	case KindCrash:
		return "crash"
	case KindLatency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Sentinel errors returned by fired faults. ErrCrash additionally poisons the
// Injector: the simulated process is dead and no later operation succeeds.
var (
	ErrInjected = errors.New("fault: injected error")
	ErrNoSpace  = errors.New("fault: injected ENOSPC")
	ErrCrash    = errors.New("fault: simulated crash")
)

// Fault arms one injection point. With Prob zero the fault fires exactly
// once, on hit number After (0-based) of Point. With Prob set it instead
// fires on any hit whose seeded coin-flip lands under Prob — repeatably for
// a given (seed, point, hit-index), so randomized chaos runs reproduce.
type Fault struct {
	Point string
	Kind  Kind
	After int
	Prob  float64
	Delay time.Duration // KindLatency only
}

// Convenience constructors for the common one-shot arms.
func Crash(point string) Fault             { return Fault{Point: point, Kind: KindCrash} }
func CrashAfter(point string, n int) Fault { return Fault{Point: point, Kind: KindCrash, After: n} }
func Err(point string) Fault               { return Fault{Point: point, Kind: KindErr} }
func NoSpace(point string) Fault           { return Fault{Point: point, Kind: KindENOSPC} }
func ShortWrite(point string) Fault        { return Fault{Point: point, Kind: KindShortWrite} }
func Latency(point string, d time.Duration) Fault {
	return Fault{Point: point, Kind: KindLatency, Delay: d}
}

// Injector holds the armed plan and the per-point hit counts. The zero value
// and the nil pointer are both inert.
type Injector struct {
	mu      sync.Mutex
	seed    uint64
	faults  map[string][]faultState
	hits    map[string]int
	crashed bool
}

type faultState struct {
	Fault
	fired bool
}

// New returns an Injector armed with the given faults.
func New(faults ...Fault) *Injector {
	in := &Injector{faults: map[string][]faultState{}, hits: map[string]int{}}
	in.Arm(faults...)
	return in
}

// Seed fixes the coin-flip stream used by probabilistic faults. The default
// seed is zero; two Injectors with the same seed and plan fire identically.
func (in *Injector) Seed(seed uint64) *Injector {
	if in == nil {
		return in
	}
	in.mu.Lock()
	in.seed = seed
	in.mu.Unlock()
	return in
}

// Arm adds faults to a live Injector. Arming after the component under test
// is constructed lets a test fault only the phase it is interested in (e.g.
// accept a job submission cleanly, then crash the first checkpoint).
func (in *Injector) Arm(faults ...Fault) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range faults {
		in.faults[f.Point] = append(in.faults[f.Point], faultState{Fault: f})
	}
}

// Crashed reports whether a crash fault has fired; the Injector is dead.
func (in *Injector) Crashed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Hits returns how many times point has been reached.
func (in *Injector) Hits(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[point]
}

// Points returns every point this Injector has seen or has a fault armed at,
// sorted — useful for asserting a sweep covered the catalog.
func (in *Injector) Points() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	seen := map[string]bool{}
	for p := range in.hits {
		seen[p] = true
	}
	for p := range in.faults {
		seen[p] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// hit records one arrival at point and returns the fault to apply, if any.
// A dead Injector reports a crash for every point.
func (in *Injector) hit(point string) (Fault, bool, error) {
	if in == nil {
		return Fault{}, false, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return Fault{}, false, ErrCrash
	}
	n := in.hits[point]
	in.hits[point] = n + 1
	states := in.faults[point]
	for i := range states {
		f := &states[i]
		fire := false
		if f.Prob > 0 {
			fire = coin(in.seed, point, n) < f.Prob
		} else {
			fire = !f.fired && n == f.After
		}
		if !fire {
			continue
		}
		f.fired = true
		if f.Kind == KindCrash {
			in.crashed = true
		}
		return f.Fault, true, nil
	}
	return Fault{}, false, nil
}

// coin derives a uniform [0,1) value from (seed, point, hit index) via
// splitmix64 — stateless, so concurrent points never perturb each other's
// streams.
func coin(seed uint64, point string, n int) float64 {
	x := seed ^ uint64(n)*0x9e3779b97f4a7c15
	for i := 0; i < len(point); i++ {
		x = (x ^ uint64(point[i])) * 0x100000001b3
	}
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// ParsePlan parses the ML4ALL_FAULT grammar: semicolon-separated clauses of
// the form "point=kind[:arg]", plus an optional "seed=N" clause.
//
//	ML4ALL_FAULT='ckpt.sync=enospc; registry.rename=crash:2; seed=7'
//
// kind is one of err|enospc|shortwrite|crash|latency. For latency the arg is
// a duration ("latency:5ms"); for the others it is the 0-based hit number to
// fire on (default 0). A kind may also carry a seeded probability instead:
// "ckpt.write=shortwrite:p0.01" fires on ~1% of hits.
func ParsePlan(spec string) ([]Fault, uint64, error) {
	var faults []Fault
	var seed uint64
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, rhs, ok := strings.Cut(clause, "=")
		point, rhs = strings.TrimSpace(point), strings.TrimSpace(rhs)
		if !ok || point == "" || rhs == "" {
			return nil, 0, fmt.Errorf("fault: bad clause %q (want point=kind[:arg])", clause)
		}
		if point == "seed" {
			s, err := strconv.ParseUint(rhs, 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("fault: bad seed %q", rhs)
			}
			seed = s
			continue
		}
		kindName, arg, _ := strings.Cut(rhs, ":")
		f := Fault{Point: point}
		switch kindName {
		case "err":
			f.Kind = KindErr
		case "enospc":
			f.Kind = KindENOSPC
		case "shortwrite":
			f.Kind = KindShortWrite
		case "crash":
			f.Kind = KindCrash
		case "latency":
			f.Kind = KindLatency
		default:
			return nil, 0, fmt.Errorf("fault: unknown kind %q in %q", kindName, clause)
		}
		switch {
		case arg == "":
		case f.Kind == KindLatency:
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, 0, fmt.Errorf("fault: bad latency %q in %q", arg, clause)
			}
			f.Delay = d
		case strings.HasPrefix(arg, "p"):
			p, err := strconv.ParseFloat(arg[1:], 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, 0, fmt.Errorf("fault: bad probability %q in %q", arg, clause)
			}
			f.Prob = p
		default:
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return nil, 0, fmt.Errorf("fault: bad hit number %q in %q", arg, clause)
			}
			f.After = n
		}
		faults = append(faults, f)
	}
	return faults, seed, nil
}

// FromSpec builds an Injector from a ML4ALL_FAULT-format plan, or nil (an
// inert injector) for the empty string.
func FromSpec(spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	faults, seed, err := ParsePlan(spec)
	if err != nil {
		return nil, err
	}
	return New(faults...).Seed(seed), nil
}
