package fault

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// FS is the filesystem seam durability-sensitive code writes through. It is
// deliberately tiny: just the operations the atomic-write/fsync ladder and
// startup recovery need, so the injected wrapper can name every one of them
// as a crashpoint.
type FS interface {
	MkdirAll(dir string) error
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a completed rename survives power loss.
	SyncDir(dir string) error
}

// File is the writable handle CreateTemp returns.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(name)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	// Some filesystems (and OSes) refuse fsync on directories; the rename is
	// still atomic there, just not power-loss durable — not an I/O failure.
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// FSPoints enumerates the injection points NewFS(inj, tag) reports to, in the
// order the durable-write ladder reaches them. Crashpoint sweeps iterate this
// catalog.
func FSPoints(tag string) []string {
	ops := []string{
		"mkdir", "create", "write", "sync", "close",
		"rename", "rename.after", "dirsync", "remove", "read", "readdir",
	}
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = tag + "." + op
	}
	return out
}

// NewFS wraps the real filesystem with injection points named "<tag>.<op>".
// A nil Injector returns the real filesystem unwrapped.
func NewFS(inj *Injector, tag string) FS {
	if inj == nil {
		return OS
	}
	return &injFS{inj: inj, tag: tag}
}

type injFS struct {
	inj *Injector
	tag string
}

// check consults the injector for a non-write operation: any fired fault
// fails it (short writes degrade to plain ENOSPC), latency stalls it.
func (s *injFS) check(op string) error {
	f, fired, err := s.inj.hit(s.tag + "." + op)
	if err != nil {
		return err
	}
	if !fired {
		return nil
	}
	switch f.Kind {
	case KindLatency:
		time.Sleep(f.Delay)
		return nil
	case KindENOSPC, KindShortWrite:
		return ErrNoSpace
	case KindCrash:
		return ErrCrash
	default:
		return ErrInjected
	}
}

func (s *injFS) MkdirAll(dir string) error {
	if err := s.check("mkdir"); err != nil {
		return err
	}
	return OS.MkdirAll(dir)
}

func (s *injFS) CreateTemp(dir, pattern string) (File, error) {
	if err := s.check("create"); err != nil {
		return nil, err
	}
	f, err := OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{fs: s, f: f}, nil
}

func (s *injFS) Rename(oldpath, newpath string) error {
	if err := s.check("rename"); err != nil {
		return err
	}
	if err := OS.Rename(oldpath, newpath); err != nil {
		return err
	}
	// A crash here models dying right after the rename retired: the file is
	// in place on disk but the caller never learns it.
	return s.check("rename.after")
}

func (s *injFS) Remove(name string) error {
	if err := s.check("remove"); err != nil {
		return err
	}
	return OS.Remove(name)
}

func (s *injFS) ReadFile(name string) ([]byte, error) {
	if err := s.check("read"); err != nil {
		return nil, err
	}
	return OS.ReadFile(name)
}

func (s *injFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := s.check("readdir"); err != nil {
		return nil, err
	}
	return OS.ReadDir(name)
}

func (s *injFS) SyncDir(dir string) error {
	if err := s.check("dirsync"); err != nil {
		return err
	}
	return OS.SyncDir(dir)
}

type injFile struct {
	fs *injFS
	f  File
}

func (w *injFile) Name() string { return w.f.Name() }

func (w *injFile) Write(p []byte) (int, error) {
	f, fired, err := w.fs.inj.hit(w.fs.tag + ".write")
	if err != nil {
		return 0, err
	}
	if fired {
		switch f.Kind {
		case KindLatency:
			time.Sleep(f.Delay)
		case KindENOSPC:
			return 0, ErrNoSpace
		case KindShortWrite:
			n, _ := w.f.Write(p[:len(p)/2])
			return n, ErrNoSpace
		case KindCrash:
			// Torn write: half the buffer reaches the disk, then the process
			// dies. The torn temp file is exactly what recovery must survive.
			w.f.Write(p[:len(p)/2])
			return 0, ErrCrash
		default:
			return 0, ErrInjected
		}
	}
	return w.f.Write(p)
}

func (w *injFile) Sync() error {
	if err := w.fs.check("sync"); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *injFile) Close() error {
	if err := w.fs.check("close"); err != nil {
		w.f.Close() // release the descriptor even on a simulated failure
		return err
	}
	return w.f.Close()
}

// WriteDurable writes data to path with the full durability ladder: a
// uniquely-named ".tmp-*" sibling, write, fsync, close, atomic rename into
// place, fsync of the parent directory. A crash anywhere before the rename
// leaves at worst a stranded temp file (startup sweeps remove them); a crash
// after leaves the complete new file. Readers never observe a torn path.
func WriteDurable(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { fsys.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		cleanup()
		return err
	}
	return fsys.SyncDir(dir)
}

// SweepTemps removes stranded ".tmp-*" files in dir — the residue of crashes
// inside WriteDurable before the rename. Live files are never touched: the
// durable-write protocol guarantees nothing named ".tmp-*" is ever a
// published artifact. Returns how many entries were removed.
func SweepTemps(fsys FS, dir string) int {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && len(e.Name()) > 5 && e.Name()[:5] == ".tmp-" {
			if fsys.Remove(filepath.Join(dir, e.Name())) == nil {
				n++
			}
		}
	}
	return n
}
