package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	faults, seed, err := ParsePlan("ckpt.sync=enospc; registry.rename=crash:2; predict=latency:5ms; ckpt.write=shortwrite:p0.25; seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 7 {
		t.Fatalf("seed = %d, want 7", seed)
	}
	want := []Fault{
		{Point: "ckpt.sync", Kind: KindENOSPC},
		{Point: "registry.rename", Kind: KindCrash, After: 2},
		{Point: "predict", Kind: KindLatency, Delay: 5 * time.Millisecond},
		{Point: "ckpt.write", Kind: KindShortWrite, Prob: 0.25},
	}
	if len(faults) != len(want) {
		t.Fatalf("got %d faults, want %d", len(faults), len(want))
	}
	for i := range want {
		if faults[i] != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, faults[i], want[i])
		}
	}
	for _, bad := range []string{"nokind", "p=zzz", "p=latency:zzz", "p=crash:-1", "seed=x", "p=shortwrite:p2"} {
		if _, _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestNthHitDeterminism(t *testing.T) {
	in := New(CrashAfter("p", 2))
	for i := 0; i < 2; i++ {
		if _, fired, err := in.hit("p"); fired || err != nil {
			t.Fatalf("hit %d fired early: fired=%v err=%v", i, fired, err)
		}
	}
	f, fired, err := in.hit("p")
	if !fired || err != nil || f.Kind != KindCrash {
		t.Fatalf("third hit: fired=%v err=%v kind=%v", fired, err, f.Kind)
	}
	if !in.Crashed() {
		t.Fatal("injector not crashed after crash fault")
	}
	// Dead injector: everything, any point, fails with ErrCrash.
	if _, _, err := in.hit("other"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash hit err = %v, want ErrCrash", err)
	}
}

func TestSeededProbabilityIsReproducible(t *testing.T) {
	run := func() []bool {
		in := New(Fault{Point: "p", Kind: KindErr, Prob: 0.3}).Seed(42)
		out := make([]bool, 64)
		for i := range out {
			_, fired, _ := in.hit("p")
			out[i] = fired
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically-seeded runs", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("degenerate fire count %d/64 for p=0.3", fires)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if _, fired, err := in.hit("p"); fired || err != nil {
		t.Fatal("nil injector fired")
	}
	if in.Crashed() || in.Hits("p") != 0 || in.Points() != nil {
		t.Fatal("nil injector not inert")
	}
	if fsys := NewFS(nil, "x"); fsys != OS {
		t.Fatal("NewFS(nil) should be the raw OS filesystem")
	}
}

func TestShortWriteTearsFile(t *testing.T) {
	dir := t.TempDir()
	in := New(ShortWrite("t.write"))
	fsys := NewFS(in, "t")
	err := WriteDurable(fsys, filepath.Join(dir, "out"), []byte("0123456789"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "out")); !os.IsNotExist(err) {
		t.Fatal("target must not exist after failed durable write")
	}
	// The failed temp is cleaned up by WriteDurable (no crash, Remove works).
	left, _ := os.ReadDir(dir)
	if len(left) != 0 {
		t.Fatalf("residue after non-crash failure: %v", left)
	}
}

func TestCrashMidWriteStrandsTornTemp(t *testing.T) {
	dir := t.TempDir()
	in := New(Crash("t.write"))
	fsys := NewFS(in, "t")
	payload := []byte("0123456789")
	err := WriteDurable(fsys, filepath.Join(dir, "out"), payload)
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || !strings.HasPrefix(entries[0].Name(), ".tmp-out-") {
		t.Fatalf("want exactly one stranded temp, got %v", entries)
	}
	raw, _ := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if len(raw) != len(payload)/2 {
		t.Fatalf("torn temp holds %d bytes, want %d", len(raw), len(payload)/2)
	}
	// Restart: a fresh FS sweeps the stranded temp.
	if n := SweepTemps(OS, dir); n != 1 {
		t.Fatalf("SweepTemps removed %d, want 1", n)
	}
	if left, _ := os.ReadDir(dir); len(left) != 0 {
		t.Fatal("sweep left residue")
	}
}

func TestCrashAfterRenameLeavesFile(t *testing.T) {
	dir := t.TempDir()
	in := New(Crash("t.rename.after"))
	fsys := NewFS(in, "t")
	err := WriteDurable(fsys, filepath.Join(dir, "out"), []byte("payload"))
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	raw, rerr := os.ReadFile(filepath.Join(dir, "out"))
	if rerr != nil || string(raw) != "payload" {
		t.Fatalf("file after crash-after-rename: %q, %v", raw, rerr)
	}
}

func TestWriteDurableHappyPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteDurable(OS, path, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "abc" {
		t.Fatalf("read back %q, %v", raw, err)
	}
	// Overwrite is atomic too.
	if err := WriteDurable(OS, path, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	if string(raw) != "xyz" {
		t.Fatalf("overwrite read back %q", raw)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Fatalf("temp residue: %v", entries)
	}
}

func TestSweepTempsSparesLiveFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "live.model"), []byte("keep"), 0o644)
	os.WriteFile(filepath.Join(dir, ".tmp-live.model-123"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, ".tmp-other-9"), []byte("junk"), 0o644)
	if n := SweepTemps(OS, dir); n != 2 {
		t.Fatalf("swept %d, want 2", n)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "live.model" {
		t.Fatalf("sweep touched live files: %v", entries)
	}
}

func TestLatencyDelaysButSucceeds(t *testing.T) {
	dir := t.TempDir()
	in := New(Latency("t.sync", 30*time.Millisecond))
	fsys := NewFS(in, "t")
	start := time.Now()
	if err := WriteDurable(fsys, filepath.Join(dir, "out"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault did not stall: %v", d)
	}
}

func TestFromSpec(t *testing.T) {
	in, err := FromSpec("  ")
	if err != nil || in != nil {
		t.Fatalf("blank spec: %v, %v", in, err)
	}
	in, err = FromSpec("a.write=crash")
	if err != nil || in == nil {
		t.Fatalf("valid spec: %v, %v", in, err)
	}
	if _, err := FromSpec("a.write=boom"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestFSPointsCatalog(t *testing.T) {
	pts := FSPoints("ckpt")
	if len(pts) != 11 || pts[0] != "ckpt.mkdir" || pts[len(pts)-1] != "ckpt.readdir" {
		t.Fatalf("catalog = %v", pts)
	}
}
