package sampling

import (
	"math"
	"math/rand"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/storage"
)

func env(t *testing.T, n int, partBytes int64, seed int64) *Env {
	t.Helper()
	units := make([]data.Unit, n)
	for i := range units {
		s, err := linalg.NewSparse([]int32{int32(i % 10)}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		units[i] = data.NewSparseUnit(1, s)
	}
	ds := data.FromUnits("s", data.TaskSVM, units)
	st, err := storage.Build(ds, storage.Layout{PartitionBytes: partBytes, PageBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Default()
	cfg.JitterFrac = 0
	return &Env{Sim: cluster.New(cfg), Store: st, RNG: rand.New(rand.NewSource(seed))}
}

func TestNew(t *testing.T) {
	for _, k := range []gd.SamplingKind{gd.Bernoulli, gd.RandomPartition, gd.ShuffledPartition} {
		s, err := New(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if s.Kind() != k {
			t.Fatalf("Kind = %v, want %v", s.Kind(), k)
		}
	}
	if _, err := New(gd.NoSampling); err == nil {
		t.Fatal("NoSampling sampler created")
	}
}

func TestBernoulliDrawCountIsBinomial(t *testing.T) {
	e := env(t, 2000, 1<<10, 1)
	s := &BernoulliSampler{}
	var total int
	const rounds, b = 50, 100
	for i := 0; i < rounds; i++ {
		idx, err := s.Draw(e, b)
		if err != nil {
			t.Fatal(err)
		}
		total += len(idx)
		for _, j := range idx {
			if j < 0 || j >= 2000 {
				t.Fatalf("index %d out of range", j)
			}
		}
	}
	mean := float64(total) / rounds
	if mean < b*0.7 || mean > b*1.3 {
		t.Fatalf("mean draw = %g, want ~%d", mean, b)
	}
}

func TestBernoulliNeverEmpty(t *testing.T) {
	e := env(t, 5000, 1<<10, 2)
	s := &BernoulliSampler{}
	for i := 0; i < 200; i++ {
		idx, err := s.Draw(e, 1) // p = 1/5000: usually empty, must fall back
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) == 0 {
			t.Fatal("empty draw escaped the fallback")
		}
	}
}

func TestBernoulliScansWholeDataset(t *testing.T) {
	e := env(t, 1000, 1<<10, 3)
	before := e.Sim.Acct.Seeks
	if _, err := (&BernoulliSampler{}).Draw(e, 10); err != nil {
		t.Fatal(err)
	}
	scanned := e.Sim.Acct.Seeks - before
	if scanned != int64(e.Store.NumPartitions()) {
		t.Fatalf("Bernoulli touched %d partitions, want all %d", scanned, e.Store.NumPartitions())
	}
}

func TestRandomPartitionDrawExactCount(t *testing.T) {
	e := env(t, 1000, 1<<10, 4)
	idx, err := (&RandomPartitionSampler{}).Draw(e, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 64 {
		t.Fatalf("draw = %d, want 64", len(idx))
	}
	if e.Sim.Acct.Seeks < 64 {
		t.Fatalf("random-partition charged %d seeks, want >= one per draw", e.Sim.Acct.Seeks)
	}
}

func TestShuffledPartitionCoversPartitionBeforeRefill(t *testing.T) {
	// With a single partition, the first n draws must be a permutation of
	// all unit indices (sampling without replacement within the shuffle).
	e := env(t, 100, 1<<20, 5)
	if e.Store.NumPartitions() != 1 {
		t.Fatalf("want single partition, got %d", e.Store.NumPartitions())
	}
	s := &ShuffledPartitionSampler{}
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		idx, err := s.Draw(e, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range idx {
			if seen[j] {
				t.Fatalf("index %d served twice within one shuffle epoch", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("epoch covered %d units, want 100", len(seen))
	}
}

func TestShuffledPartitionRefills(t *testing.T) {
	e := env(t, 60, 1<<20, 6)
	s := &ShuffledPartitionSampler{}
	idx, err := s.Draw(e, 100) // more than one partition holds
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 100 {
		t.Fatalf("draw = %d, want 100 (refill required)", len(idx))
	}
}

func TestShuffledCheaperThanBernoulliPerDraw(t *testing.T) {
	// On a multi-partition dataset the steady-state per-draw cost of
	// shuffled-partition must beat Bernoulli's full scan — the core claim
	// behind the Section 6 sampling optimization.
	mkEnv := func(seed int64) *Env { return env(t, 5000, 1<<10, seed) }

	eb := mkEnv(7)
	bs := &BernoulliSampler{}
	start := eb.Sim.Now()
	for i := 0; i < 20; i++ {
		if _, err := bs.Draw(eb, 10); err != nil {
			t.Fatal(err)
		}
	}
	bernoulliTime := eb.Sim.Now() - start

	es := mkEnv(7)
	ss := &ShuffledPartitionSampler{}
	start = es.Sim.Now()
	for i := 0; i < 20; i++ {
		if _, err := ss.Draw(es, 10); err != nil {
			t.Fatal(err)
		}
	}
	shuffledTime := es.Sim.Now() - start

	if shuffledTime >= bernoulliTime {
		t.Fatalf("shuffled (%g) not cheaper than bernoulli (%g)", shuffledTime, bernoulliTime)
	}
}

func TestEmptyDatasetErrors(t *testing.T) {
	ds := data.FromUnits("empty", data.TaskSVM, nil)
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	e := &Env{Sim: cluster.New(cluster.LocalOnly()), Store: st, RNG: rand.New(rand.NewSource(1))}
	for _, k := range []gd.SamplingKind{gd.Bernoulli, gd.RandomPartition, gd.ShuffledPartition} {
		s, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Draw(e, 1); err == nil {
			t.Errorf("%v accepted empty dataset", k)
		}
	}
}

func TestDrawsAreUniformish(t *testing.T) {
	// Random-partition draws over a uniform dataset should hit every
	// partition eventually; a crude chi-square-ish check.
	e := env(t, 1000, 1<<10, 8)
	parts := e.Store.NumPartitions()
	if parts < 4 {
		t.Skip("need several partitions")
	}
	counts := make([]int, parts)
	s := &RandomPartitionSampler{}
	for i := 0; i < 40; i++ {
		idx, err := s.Draw(e, 25)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range idx {
			p, err := e.Store.PartitionOf(j)
			if err != nil {
				t.Fatal(err)
			}
			counts[p.ID]++
		}
	}
	for id, c := range counts {
		expected := 1000.0 / float64(parts)
		if math.Abs(float64(c)-expected) > expected {
			t.Fatalf("partition %d drawn %d times, expected ~%g", id, c, expected)
		}
	}
}
