// Package sampling implements the Sample operator's three physical
// strategies (paper Section 6, Figure 4): Bernoulli (scan everything, keep
// each unit with probability b/n — what MLlib does), random-partition (per
// draw, pick a random partition then a random unit inside it) and
// shuffled-partition (shuffle one randomly-picked partition once, then serve
// draws sequentially from it, reshuffling a new partition when exhausted).
//
// Samplers return the indices of the drawn data units and charge the
// simulated IO cost of locating and reading them; the engine charges
// transform/compute CPU separately, depending on where the plan places those
// operators.
package sampling

import (
	"fmt"
	"math/rand"

	"ml4all/internal/cluster"
	"ml4all/internal/gd"
	"ml4all/internal/storage"
)

// Env is what a sampler needs to operate: the simulated cluster to charge
// costs on, the partitioned dataset, and a deterministic RNG owned by the
// running plan.
type Env struct {
	Sim   *cluster.Sim
	Store *storage.Store
	RNG   *rand.Rand
}

// Sampler is the paper's operator (5). Draw returns the unit indices of the
// next sample of size b, charging simulated access costs as a side effect.
type Sampler interface {
	Kind() gd.SamplingKind
	// Draw returns ~b unit indices (exactly b for the partition-based
	// strategies; Bernoulli's count is binomially distributed, as in
	// Spark).
	Draw(env *Env, b int) ([]int, error)
}

// Stateful is implemented by samplers that carry state between draws (only
// the shuffled-partition strategy does: its not-yet-served queue). The
// engine's checkpoint captures the state and restores it on resume so a
// resumed run serves exactly the units the uninterrupted run would have.
type Stateful interface {
	// StateSnapshot returns a copy of the sampler's internal state.
	StateSnapshot() []int
	// StateRestore replaces the internal state with a snapshot.
	StateRestore(state []int)
}

// New returns a sampler for the given strategy kind.
func New(kind gd.SamplingKind) (Sampler, error) {
	switch kind {
	case gd.Bernoulli:
		return &BernoulliSampler{}, nil
	case gd.RandomPartition:
		return &RandomPartitionSampler{}, nil
	case gd.ShuffledPartition:
		return &ShuffledPartitionSampler{}, nil
	case gd.NoSampling:
		return nil, fmt.Errorf("sampling: NoSampling has no sampler")
	default:
		return nil, fmt.Errorf("sampling: unknown kind %v", kind)
	}
}

// BernoulliSampler scans every partition on every draw and keeps each unit
// independently with probability b/n. Like Spark's sample(), the returned
// count is random; when the draw comes back empty (likely for b=1 over large
// n) it falls back to one uniformly random unit rather than rescanning, the
// cheaper of the two mitigations the paper discusses for MLlib.
type BernoulliSampler struct{}

// Kind implements Sampler.
func (*BernoulliSampler) Kind() gd.SamplingKind { return gd.Bernoulli }

// Draw implements Sampler. Cost: a full distributed scan of the dataset —
// one task per partition, each paying the partition read plus a per-unit
// inspection, exactly why the paper calls Bernoulli sampling out as reading
// "the entire input dataset for taking a small sample".
func (*BernoulliSampler) Draw(env *Env, b int) ([]int, error) {
	st := env.Store
	n := st.Dataset.N()
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty dataset")
	}
	p := float64(b) / float64(n)
	costs := make([]cluster.Seconds, 0, st.NumPartitions())
	var picked []int
	for _, part := range st.Partitions {
		c := env.Sim.CostReadPartition(part, st.Layout)
		c += env.Sim.CostCPU(part.Units(), 0)
		costs = append(costs, c)
		for i := part.Lo; i < part.Hi; i++ {
			if env.RNG.Float64() < p {
				picked = append(picked, i)
			}
		}
	}
	env.Sim.RunWaves(costs)
	if len(picked) == 0 {
		picked = append(picked, env.RNG.Intn(n))
	}
	return picked, nil
}

// RandomPartitionSampler picks, per required sample unit, one random
// partition and then one random unit inside it — b random accesses per draw.
type RandomPartitionSampler struct{}

// Kind implements Sampler.
func (*RandomPartitionSampler) Kind() gd.SamplingKind { return gd.RandomPartition }

// Draw implements Sampler. Cost: b seeks plus the pages covering each
// accessed unit, executed serially by one task; this is the "large number of
// random accesses" the paper attributes to random-partition.
func (*RandomPartitionSampler) Draw(env *Env, b int) ([]int, error) {
	st := env.Store
	if st.Dataset.N() == 0 {
		return nil, fmt.Errorf("sampling: empty dataset")
	}
	picked := make([]int, 0, b)
	var total cluster.Seconds
	for j := 0; j < b; j++ {
		part := st.Partitions[env.RNG.Intn(len(st.Partitions))]
		idx := part.Lo + env.RNG.Intn(part.Units())
		unitBytes := int64(len(st.Dataset.Raw[idx])) + 1
		total += env.Sim.CostReadBytes(part, st.Layout, unitBytes)
		picked = append(picked, idx)
	}
	env.Sim.RunLocal(total)
	return picked, nil
}

// ShuffledPartitionSampler shuffles one randomly-picked partition once and
// serves draws sequentially from it; when fewer units remain than requested
// it tops up from a freshly shuffled second partition (paper Section 6).
type ShuffledPartitionSampler struct {
	queue []int // shuffled unit indices not yet served
}

// Kind implements Sampler.
func (*ShuffledPartitionSampler) Kind() gd.SamplingKind { return gd.ShuffledPartition }

// StateSnapshot implements Stateful: a copy of the pending queue.
func (s *ShuffledPartitionSampler) StateSnapshot() []int {
	if s.queue == nil {
		return nil
	}
	out := make([]int, len(s.queue))
	copy(out, s.queue)
	return out
}

// StateRestore implements Stateful.
func (s *ShuffledPartitionSampler) StateRestore(state []int) {
	s.queue = nil
	if len(state) > 0 {
		s.queue = make([]int, len(state))
		copy(s.queue, state)
	}
}

// Draw implements Sampler. Cost: on refill, one partition read plus a
// shuffle pass over its units; per draw, only the sequential pages covering
// the served units — the "so low it can still achieve lower training times"
// per-iteration cost the paper exploits.
func (s *ShuffledPartitionSampler) Draw(env *Env, b int) ([]int, error) {
	st := env.Store
	if st.Dataset.N() == 0 {
		return nil, fmt.Errorf("sampling: empty dataset")
	}
	picked := make([]int, 0, b)
	var total cluster.Seconds
	var servedBytes int64
	for len(picked) < b {
		if len(s.queue) == 0 {
			part := st.Partitions[env.RNG.Intn(len(st.Partitions))]
			total += env.Sim.CostReadPartition(part, st.Layout)
			total += env.Sim.CostCPU(part.Units(), float64(part.Units())) // Fisher-Yates pass
			s.queue = make([]int, part.Units())
			for i := range s.queue {
				s.queue[i] = part.Lo + i
			}
			env.RNG.Shuffle(len(s.queue), func(a, c int) {
				s.queue[a], s.queue[c] = s.queue[c], s.queue[a]
			})
		}
		take := b - len(picked)
		if take > len(s.queue) {
			take = len(s.queue)
		}
		for _, idx := range s.queue[:take] {
			picked = append(picked, idx)
			servedBytes += int64(len(st.Dataset.Raw[idx])) + 1
		}
		s.queue = s.queue[take:]
	}
	pages := (servedBytes + st.Layout.PageBytes - 1) / st.Layout.PageBytes
	total += cluster.Seconds(pages) * env.Sim.Cfg.MemPageSec
	env.Sim.RunLocal(total)
	return picked, nil
}
