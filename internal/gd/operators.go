package gd

import (
	"fmt"
	"math/rand"

	"ml4all/internal/data"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
)

// The seven operators of the paper's Section 4. Each mirrors the formal
// signature given there; costs are charged by the engine, not here.

// Transformer is operator (1), Transform(U) -> UT: it parses one raw data
// unit into a typed row.
//
// Like Compute, Transform runs on the engine's worker pool (eager transforms
// and lazy full scans fan out over shards), so with engine Workers != 1 a
// Transformer must be safe for concurrent calls and must not mutate shared
// state or ctx — parse the line, return the unit. Stateful transformers are
// only legal on the serial path (Workers: 1).
type Transformer interface {
	Transform(raw string, ctx *Context) (data.Row, error)
}

// Stager is operator (2), Stage: it initializes the algorithm's global
// variables. It may inspect a (possibly empty) list of sample units, matching
// Stage(∅ | UT | list<UT>).
type Stager interface {
	Stage(sample []data.Row, ctx *Context) error
}

// Computer is operator (3), Compute(UT) -> UC: the core per-unit computation.
// Contributions accumulate into acc, whose aggregation across units/partitions
// is the UC handed to Update ("UC is the sum of all data units"). AccDim
// returns the accumulator dimensionality (d for plain gradients; variants
// like line search use d+1). Ops estimates multiply-adds per unit with nnz
// stored values for cost charging; it must be a pure function of nnz (the
// engine caches per-partition Ops sums across iterations).
//
// Concurrency contract (enforced by the engine): the engine runs Compute on a
// worker pool, many goroutines at once, each with its own acc buffer. A
// Computer therefore must
//
//   - treat ctx as read-only for the whole compute phase (the engine checks a
//     context guard after every pass and fails the run on a violation);
//   - write only to acc — no shared mutable state, no fields mutated by
//     Compute;
//   - be deterministic given (u, ctx): randomness belongs in
//     RandomizedComputer, which receives an engine-managed RNG.
//
// The stock Computers (GradientComputer, SVRGComputer, LineSearchComputer)
// all satisfy this: they read ctx.Weights and context vectors set before the
// pass and accumulate into acc only.
type Computer interface {
	Compute(u data.Row, ctx *Context, acc linalg.Vector)
	AccDim(d int) int
	Ops(nnz int) float64
}

// RandomizedComputer is an optional extension for stochastic compute UDFs
// (dropout-style corruption, randomized smoothing, ...). When a plan's
// Computer implements it, the engine calls ComputeRand instead of Compute and
// supplies a deterministic RNG split from the run seed per (iteration, shard)
// — never per worker — so the stream a data unit sees does not depend on the
// worker count or on scheduling, keeping runs bit-identical for any Workers
// setting. The contract of Computer applies unchanged; rng is the only
// allowed source of randomness.
type RandomizedComputer interface {
	Computer
	ComputeRand(u data.Row, ctx *Context, acc linalg.Vector, rng *rand.Rand)
}

// Updater is operator (4), Update(UC) -> UU: it folds the aggregated
// accumulator into the global variables and returns the new weights. The
// accumulator is engine-owned scratch reused across iterations: an Updater
// must not retain acc (or a sub-slice of it) past the call — clone whatever
// it keeps, as the stock implementations do.
type Updater interface {
	Update(acc linalg.Vector, ctx *Context) (linalg.Vector, error)
}

// Converger is operator (6), Converge(UU) -> UΔ: it produces the convergence
// delta from the new and previous weights.
type Converger interface {
	Converge(wNew, wPrev linalg.Vector, ctx *Context) float64
}

// Looper is operator (7), Loop(UΔ) -> true|false: it decides whether to keep
// iterating.
type Looper interface {
	Loop(delta float64, ctx *Context) bool
}

// Operator (5), Sample, is defined in package sampling; plans reference it by
// strategy kind so the planner can cost the alternatives of Section 6.

// --- Reference implementations ("the provided gradient functions") ---

// FormatTransformer parses raw lines in the given input format (the paper's
// Listing 1 equivalent).
type FormatTransformer struct{ Format data.Format }

// Transform implements Transformer.
func (t FormatTransformer) Transform(raw string, _ *Context) (data.Row, error) {
	u, ok, err := t.Format.ParseLine(raw)
	if err != nil {
		return data.Row{}, err
	}
	if !ok {
		return data.Row{}, fmt.Errorf("gd: blank data unit")
	}
	return u.Row(), nil
}

// ZeroStager is the paper's Listing 4: weights to zero, step to its initial
// value, iteration counter to zero.
type ZeroStager struct{}

// Stage implements Stager.
func (ZeroStager) Stage(_ []data.Row, ctx *Context) error {
	ctx.Weights = linalg.NewVector(ctx.NumFeatures)
	ctx.Iter = 0
	return nil
}

// SampleMeanStager initializes the weights from the mean of a staged sample
// of data units instead of zero (the Figure 3(b) variant where "Stage uses a
// sample"). It falls back to zeros without a sample.
type SampleMeanStager struct{ Scale float64 }

// Stage implements Stager.
func (s SampleMeanStager) Stage(sample []data.Row, ctx *Context) error {
	w := linalg.NewVector(ctx.NumFeatures)
	if len(sample) > 0 {
		for _, u := range sample {
			u.AddScaledInto(w, s.Scale/float64(len(sample)))
		}
	}
	ctx.Weights = w
	ctx.Iter = 0
	return nil
}

// GradientComputer is the paper's Listing 2: per-unit gradient of the chosen
// loss, summed by the engine.
type GradientComputer struct{ Gradient gradients.Gradient }

// Compute implements Computer.
func (c GradientComputer) Compute(u data.Row, ctx *Context, acc linalg.Vector) {
	c.Gradient.AddGradient(ctx.Weights, u, acc)
}

// AccDim implements Computer.
func (GradientComputer) AccDim(d int) int { return d }

// Ops implements Computer.
func (c GradientComputer) Ops(nnz int) float64 { return c.Gradient.Ops(nnz) }

// GradientUpdater is the paper's Listing 3: w := w - step * mean(grad), with
// an optional L2 regularizer folded in. The engine hands it the summed
// accumulator; Count carries the batch size used to take the mean so the step
// scale is batch-size independent (the convention MLlib uses and the paper
// adopts by fixing identical step sizes across algorithms).
type GradientUpdater struct {
	Reg gradients.L2
}

// Update implements Updater. The loop is the fused single-pass form of
// grad := acc/n; grad += λw; w -= step*grad — identical operations on each
// component in the same order, one allocation instead of two clones.
func (up GradientUpdater) Update(acc linalg.Vector, ctx *Context) (linalg.Vector, error) {
	n := ctx.BatchSize
	if n <= 0 {
		return nil, fmt.Errorf("gd: GradientUpdater with batch size %d", n)
	}
	inv := 1 / float64(n)
	old := ctx.Weights
	w := ctx.TakeSpare(len(old))
	for i := range w {
		g := acc[i] * inv
		if up.Reg.Lambda != 0 {
			g += up.Reg.Lambda * old[i]
		}
		w[i] = old[i] + (-ctx.Step)*g
	}
	ctx.Weights = w
	return w, nil
}

// L1Converger is the paper's Listing 5: the L1 norm of the difference between
// successive weight vectors.
type L1Converger struct{}

// Converge implements Converger.
func (L1Converger) Converge(wNew, wPrev linalg.Vector, _ *Context) float64 {
	return wNew.DistL1(wPrev)
}

// L2Converger uses the Euclidean distance between successive weight vectors
// ("it might compute the L2-norm of the difference of the weights").
type L2Converger struct{}

// Converge implements Converger.
func (L2Converger) Converge(wNew, wPrev linalg.Vector, _ *Context) float64 {
	return wNew.DistL2(wPrev)
}

// ToleranceLooper is the paper's Listing 6 combined with the max-iterations
// constraint of the declarative language: continue while delta >= tolerance
// and the iteration cap is not reached.
type ToleranceLooper struct{}

// Loop implements Looper.
func (ToleranceLooper) Loop(delta float64, ctx *Context) bool {
	if ctx.MaxIter > 0 && ctx.Iter >= ctx.MaxIter {
		return false
	}
	return delta >= ctx.Tolerance
}

// FixedIterLooper runs for exactly MaxIter iterations regardless of delta
// (the Figure 3(a) example loops i < 100; Figure 7(a) fixes 1000 iterations).
type FixedIterLooper struct{}

// Loop implements Looper.
func (FixedIterLooper) Loop(_ float64, ctx *Context) bool {
	return ctx.Iter < ctx.MaxIter
}
