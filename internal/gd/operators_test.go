package gd

import (
	"math"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
)

func newCtx(d int) *Context {
	ctx := NewContext()
	ctx.NumFeatures = d
	ctx.NumPoints = 100
	ctx.BatchSize = 1
	ctx.Tolerance = 1e-3
	ctx.MaxIter = 100
	return ctx
}

func TestContextVars(t *testing.T) {
	ctx := NewContext()
	ctx.Put("k", linalg.Vector{1, 2})
	v, err := ctx.GetVector("k")
	if err != nil || !v.Equal(linalg.Vector{1, 2}, 0) {
		t.Fatalf("GetVector: %v %v", v, err)
	}
	if _, err := ctx.GetVector("missing"); err == nil {
		t.Fatal("missing key accepted")
	}
	ctx.Put("s", "hello")
	if _, err := ctx.GetVector("s"); err == nil {
		t.Fatal("non-vector accepted")
	}
	if ctx.Get("s") != "hello" {
		t.Fatal("Get lost value")
	}
}

func TestFormatTransformer(t *testing.T) {
	tr := FormatTransformer{Format: data.FormatLIBSVM}
	u, err := tr.Transform("1 2:0.5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Label != 1 || u.NNZ() != 1 {
		t.Fatalf("transformed unit = %v", u)
	}
	if _, err := tr.Transform("", nil); err == nil {
		t.Fatal("blank line accepted")
	}
	if _, err := tr.Transform("not a line", nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestZeroStager(t *testing.T) {
	ctx := newCtx(5)
	if err := (ZeroStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Weights.Dim() != 5 || ctx.Weights.Norm1() != 0 || ctx.Iter != 0 {
		t.Fatalf("stage left %v iter=%d", ctx.Weights, ctx.Iter)
	}
}

func TestSampleMeanStager(t *testing.T) {
	ctx := newCtx(2)
	sample := []data.Row{
		data.NewDenseRow(1, linalg.Vector{2, 0}),
		data.NewDenseRow(1, linalg.Vector{0, 4}),
	}
	if err := (SampleMeanStager{Scale: 1}).Stage(sample, ctx); err != nil {
		t.Fatal(err)
	}
	if !ctx.Weights.Equal(linalg.Vector{1, 2}, 1e-12) {
		t.Fatalf("weights = %v, want mean [1 2]", ctx.Weights)
	}
	// Without a sample it behaves like ZeroStager.
	ctx2 := newCtx(2)
	if err := (SampleMeanStager{Scale: 1}).Stage(nil, ctx2); err != nil {
		t.Fatal(err)
	}
	if ctx2.Weights.Norm1() != 0 {
		t.Fatalf("no-sample staging = %v, want zeros", ctx2.Weights)
	}
}

func TestGradientComputerAccumulates(t *testing.T) {
	ctx := newCtx(2)
	ctx.Weights = linalg.Vector{0, 0}
	c := GradientComputer{Gradient: gradients.LeastSquares{}}
	acc := linalg.NewVector(c.AccDim(2))
	u := data.NewDenseRow(1, linalg.Vector{1, 0}) // grad = 2(0-1)x = [-2, 0]
	c.Compute(u, ctx, acc)
	c.Compute(u, ctx, acc)
	if !acc.Equal(linalg.Vector{-4, 0}, 1e-12) {
		t.Fatalf("acc = %v, want [-4 0]", acc)
	}
	if c.Ops(3) <= 0 {
		t.Fatal("Ops must be positive")
	}
}

func TestGradientUpdaterTakesMeanAndStep(t *testing.T) {
	ctx := newCtx(2)
	ctx.Weights = linalg.Vector{1, 1}
	ctx.Step = 0.5
	ctx.BatchSize = 2
	up := GradientUpdater{}
	// Summed gradient [4, -2] over batch 2 => mean [2, -1]; w -= 0.5*mean.
	w, err := up.Update(linalg.Vector{4, -2}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(linalg.Vector{0, 1.5}, 1e-12) {
		t.Fatalf("w = %v, want [0 1.5]", w)
	}
	if !ctx.Weights.Equal(w, 0) {
		t.Fatal("context weights not updated")
	}
	ctx.BatchSize = 0
	if _, err := up.Update(linalg.Vector{1, 1}, ctx); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestGradientUpdaterAppliesRegularizer(t *testing.T) {
	ctx := newCtx(2)
	ctx.Weights = linalg.Vector{2, 0}
	ctx.Step = 1
	ctx.BatchSize = 1
	up := GradientUpdater{Reg: gradients.L2{Lambda: 0.5}}
	// grad = [0,0] + lambda*w = [1, 0]; w -= [1,0].
	w, err := up.Update(linalg.Vector{0, 0}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(linalg.Vector{1, 0}, 1e-12) {
		t.Fatalf("w = %v, want [1 0]", w)
	}
}

func TestConvergers(t *testing.T) {
	a := linalg.Vector{1, 2}
	b := linalg.Vector{0, 0}
	if got := (L1Converger{}).Converge(a, b, nil); math.Abs(got-3) > 1e-12 {
		t.Fatalf("L1 = %g, want 3", got)
	}
	if got := (L2Converger{}).Converge(a, b, nil); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("L2 = %g, want sqrt(5)", got)
	}
}

func TestToleranceLooper(t *testing.T) {
	ctx := newCtx(2)
	ctx.Tolerance = 0.01
	ctx.MaxIter = 10
	ctx.Iter = 5
	l := ToleranceLooper{}
	if !l.Loop(0.5, ctx) {
		t.Fatal("should continue above tolerance")
	}
	if l.Loop(0.001, ctx) {
		t.Fatal("should stop below tolerance")
	}
	ctx.Iter = 10
	if l.Loop(0.5, ctx) {
		t.Fatal("should stop at max iterations")
	}
}

func TestFixedIterLooper(t *testing.T) {
	ctx := newCtx(2)
	ctx.MaxIter = 3
	l := FixedIterLooper{}
	ctx.Iter = 2
	if !l.Loop(0, ctx) {
		t.Fatal("stopped early despite fixed iteration count")
	}
	ctx.Iter = 3
	if l.Loop(math.Inf(1), ctx) {
		t.Fatal("did not stop at the fixed count")
	}
}

func TestSVRGFullIterationSchedule(t *testing.T) {
	// m=5: iterations 1, 6, 11 are snapshots.
	for _, c := range []struct {
		t    int
		want bool
	}{{1, true}, {2, false}, {5, false}, {6, true}, {11, true}} {
		if got := svrgFullIteration(c.t, 5); got != c.want {
			t.Errorf("svrgFullIteration(%d, 5) = %v, want %v", c.t, got, c.want)
		}
	}
}
