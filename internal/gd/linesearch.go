package gd

import (
	"fmt"
	"math"

	"ml4all/internal/data"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
)

// Backtracking line search (paper Appendix C, Listings 9-10): BGD whose step
// size per update is found by shrinking alpha by beta until the Armijo
// sufficient-decrease condition holds. As in the paper, the nested
// line-search loop is flattened into the main loop with an if-else keyed off
// a context flag: "gradient" iterations compute the full gradient at w,
// "probe" iterations evaluate the objective at the trial point w - alpha*g.
// Each engine iteration is one full data pass, so the extra passes line
// search performs are charged their true cost.

// Context variable keys used by the line-search operators.
const (
	lsPhaseKey   = "ls.phase"   // "grad" or "probe"
	lsGradKey    = "ls.grad"    // mean gradient at w
	lsTrialKey   = "ls.trial"   // trial weights w - alpha*g
	lsFwKey      = "ls.fw"      // objective at w
	lsAlphaKey   = "ls.alpha"   // current candidate step
	lsUpdatesKey = "ls.updates" // number of applied updates (outer k)
	lsDeltaKey   = "ls.delta"   // convergence delta of the last applied update
)

const (
	lsPhaseGrad  = "grad"
	lsPhaseProbe = "probe"
	// armijoC is the standard sufficient-decrease constant.
	armijoC = 1e-4
	// maxBacktracks bounds probes per update so a flat objective cannot
	// stall the plan; after this many shrinks the step is applied as-is.
	maxBacktracks = 30
)

// LineSearchComputer accumulates, depending on the phase:
//
//	grad:  slot 0 += f_i(w),            slots 2.. += ∇f_i(w)
//	probe: slot 0 += f_i(w),            slot 1 += f_i(w - alpha*g)
type LineSearchComputer struct {
	Gradient gradients.Gradient
}

// Compute implements Computer.
func (c LineSearchComputer) Compute(u data.Row, ctx *Context, acc linalg.Vector) {
	if phase, _ := ctx.Get(lsPhaseKey).(string); phase == lsPhaseProbe {
		trial, err := ctx.GetVector(lsTrialKey)
		if err != nil {
			panic(err)
		}
		acc[0] += c.Gradient.Loss(ctx.Weights, u)
		acc[1] += c.Gradient.Loss(trial, u)
		return
	}
	acc[0] += c.Gradient.Loss(ctx.Weights, u)
	c.Gradient.AddGradient(ctx.Weights, u, acc[2:])
}

// AccDim implements Computer: two objective slots plus the gradient.
func (LineSearchComputer) AccDim(d int) int { return d + 2 }

// Ops implements Computer.
func (c LineSearchComputer) Ops(nnz int) float64 { return c.Gradient.Ops(nnz) + float64(2*nnz) }

// LineSearchUpdater implements the flattened backtracking logic of
// Listing 10: after a gradient pass it prepares the first trial point; after
// a probe pass it either shrinks the step (Armijo violated) or applies the
// update and returns to the gradient phase.
type LineSearchUpdater struct {
	Reg   gradients.L2
	Beta  float64 // step shrink factor in (0,1)
	Alpha float64 // initial candidate step per update
}

// Update implements Updater.
func (up LineSearchUpdater) Update(acc linalg.Vector, ctx *Context) (linalg.Vector, error) {
	n := float64(ctx.NumPoints)
	if n == 0 {
		return nil, fmt.Errorf("gd: line search over empty dataset")
	}
	phase, _ := ctx.Get(lsPhaseKey).(string)
	if phase != lsPhaseProbe {
		// Gradient pass done: stash f(w) and mean regularized gradient,
		// set up the first trial point.
		grad := acc[2:].Clone()
		grad.Scale(1 / n)
		up.Reg.AddGradient(ctx.Weights, grad)
		fw := acc[0]/n + up.Reg.Penalty(ctx.Weights)
		ctx.Put(lsGradKey, grad)
		ctx.Put(lsFwKey, fw)
		ctx.Put(lsAlphaKey, up.Alpha)
		ctx.Put("ls.backtracks", 0)
		trial := ctx.Weights.Clone()
		trial.AddScaled(-up.Alpha, grad)
		ctx.Put(lsTrialKey, trial)
		ctx.Put(lsPhaseKey, lsPhaseProbe)
		return ctx.Weights, nil
	}

	grad, err := ctx.GetVector(lsGradKey)
	if err != nil {
		return nil, err
	}
	trial, err := ctx.GetVector(lsTrialKey)
	if err != nil {
		return nil, err
	}
	alpha, _ := ctx.Get(lsAlphaKey).(float64)
	backtracks, _ := ctx.Get("ls.backtracks").(int)
	fw, _ := ctx.Get(lsFwKey).(float64)
	fTrial := acc[1]/n + up.Reg.Penalty(trial)
	g2 := grad.Dot(grad)

	if fTrial > fw-armijoC*alpha*g2 && backtracks < maxBacktracks {
		// Armijo violated: shrink and probe again.
		alpha *= up.Beta
		ctx.Put(lsAlphaKey, alpha)
		ctx.Put("ls.backtracks", backtracks+1)
		next := ctx.Weights.Clone()
		next.AddScaled(-alpha, grad)
		ctx.Put(lsTrialKey, next)
		return ctx.Weights, nil
	}

	// Sufficient decrease: apply the update.
	prev := ctx.Weights
	ctx.Weights = trial
	updates, _ := ctx.Get(lsUpdatesKey).(int)
	ctx.Put(lsUpdatesKey, updates+1)
	ctx.Put(lsDeltaKey, trial.DistL1(prev))
	ctx.Put(lsPhaseKey, lsPhaseGrad)
	return ctx.Weights, nil
}

// lineSearchStager initializes the phase machine alongside the weights.
type lineSearchStager struct{}

// Stage implements Stager.
func (lineSearchStager) Stage(_ []data.Row, ctx *Context) error {
	ctx.Weights = linalg.NewVector(ctx.NumFeatures)
	ctx.Iter = 0
	ctx.Put(lsPhaseKey, lsPhaseGrad)
	ctx.Put(lsDeltaKey, math.Inf(1))
	ctx.Put(lsUpdatesKey, 0)
	return nil
}

// LineSearchConverger reports the delta of the most recent applied update;
// intermediate probe passes keep the previous delta so the Looper does not
// mistake "weights unchanged while probing" for convergence.
type LineSearchConverger struct{}

// Converge implements Converger.
func (LineSearchConverger) Converge(_, _ linalg.Vector, ctx *Context) float64 {
	d, ok := ctx.Get(lsDeltaKey).(float64)
	if !ok {
		return math.Inf(1)
	}
	return d
}

// NewLineSearchBGD builds the Appendix C BGD-with-backtracking plan. beta in
// (0,1) is the shrink factor (0.5 when out of range).
func NewLineSearchBGD(p Params, beta float64) Plan {
	p = p.withDefaults()
	if beta <= 0 || beta >= 1 {
		beta = 0.5
	}
	plan := p.base(LineSearchBGD, Eager, NoSampling, 0)
	plan.Stager = lineSearchStager{}
	plan.Computer = LineSearchComputer{Gradient: p.Gradient}
	plan.Updater = LineSearchUpdater{Reg: gradients.L2{Lambda: p.Lambda}, Beta: beta, Alpha: 1}
	plan.Converger = LineSearchConverger{}
	return plan
}
