package gd

import (
	"sync"

	"ml4all/internal/data"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
)

// BatchComputer is the optional batched extension of Computer: when a plan's
// Computer implements it, the engine carves each shard span into fixed-size
// contiguous row blocks and makes ONE ComputeBlock call per block instead of
// one Compute call per row — devirtualizing the per-row interface dispatch
// and letting the loss kernels run fused, cache-blocked loops over the
// columnar arena. Computers that do not implement it (custom UDFs) keep the
// per-row path transparently.
//
// Contract: ComputeBlock must accumulate into acc exactly what Len() calls
// of Compute on the block's rows — in block row order — would, bit for bit.
// The stock implementations achieve this through the two-pass
// gradients.BlockGradient kernels (margins first, then an in-order
// accumulate); the engine's block property test enforces it. The Computer
// concurrency contract applies unchanged: ctx is read-only, acc is the only
// output, many goroutines call ComputeBlock at once with disjoint acc
// buffers.
type BatchComputer interface {
	Computer
	ComputeBlock(rows data.Block, ctx *Context, acc linalg.Vector)

	// BatchCapable reports whether ComputeBlock will actually run fused
	// block kernels, as opposed to falling back to the per-row loop
	// internally. The stock computers wrap an arbitrary gradients.Gradient
	// and are only capable when it implements gradients.BlockGradient; the
	// engine skips the blocked path — and, with it, the amortized dispatch
	// cost charging — entirely when this reports false, so execution and
	// billing stay per-row together.
	BatchCapable() bool
}

// marginPool recycles the per-block margin scratch the stock ComputeBlock
// implementations hand to the gradients kernels. Pooled rather than stored
// on the Context because compute runs on many goroutines against one
// read-only ctx; pooled rather than stack-allocated so engine-configured
// block sizes beyond the default work without per-block allocation in
// steady state.
var marginPool = sync.Pool{
	New: func() any {
		// Pre-sized to the engine's default block width so steady-state
		// blocks never grow the buffer.
		s := make([]float64, data.DefaultBlockSize)
		return &s
	},
}

// takeMargins returns pooled scratch with at least n slots (contents
// unspecified); release with putMargins.
func takeMargins(n int) *[]float64 {
	p := marginPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return p
}

func putMargins(p *[]float64) { marginPool.Put(p) }

// FastBatchComputer is the optional fast-math extension of BatchComputer:
// FastCapable reports whether ComputeBlock will actually dispatch the
// tolerance-bounded fast kernels when ctx.FastMath is set, as opposed to
// staying on the bit-exact block kernels. The engine consults it to charge
// the fast tier's measured throughput (cluster.CostComputeFast) only when
// the fast kernels really run, keeping execution and billing consistent —
// the same pairing BatchCapable maintains for the blocked tier itself.
type FastBatchComputer interface {
	BatchComputer
	FastCapable() bool
}

// FastCapable implements FastBatchComputer.
func (c GradientComputer) FastCapable() bool {
	_, ok := c.Gradient.(gradients.FastGradient)
	return ok
}

// FastCapable implements FastBatchComputer.
func (c SVRGComputer) FastCapable() bool {
	_, ok := c.Gradient.(gradients.FastGradient)
	return ok
}

// FastCapable implements FastBatchComputer.
func (c LineSearchComputer) FastCapable() bool {
	_, ok := c.Gradient.(gradients.FastGradient)
	return ok
}

// blockKernels resolves which kernel tier a stock ComputeBlock runs: the
// fast-math kernels when ctx.FastMath is set and the gradient implements
// them, else the bit-exact block kernels. Returning the kernel pair as plain
// funcs keeps the per-block dispatch to two type assertions at most, paid
// once per block, not per row.
func blockKernels(g gradients.Gradient, ctx *Context) (addGrad func(linalg.Vector, data.Block, []float64, linalg.Vector), loss func(linalg.Vector, data.Block, []float64, *float64), ok bool) {
	bg, ok := g.(gradients.BlockGradient)
	if !ok {
		return nil, nil, false
	}
	if ctx.FastMath {
		if fg, isFast := bg.(gradients.FastGradient); isFast {
			return fg.AddGradientBlockFast, fg.LossBlockFast, true
		}
	}
	return bg.AddGradientBlock, bg.LossBlock, true
}

// computeRowByRow is the shared fallback for gradients without block
// kernels: the exact per-row loop the engine's non-batched path runs. The
// engine never reaches it (it consults BatchCapable and keeps such plans on
// the per-row path, where cost charging matches); it guards direct
// ComputeBlock callers.
func computeRowByRow(c Computer, rows data.Block, ctx *Context, acc linalg.Vector) {
	for j, n := 0, rows.Len(); j < n; j++ {
		c.Compute(rows.Row(j), ctx, acc)
	}
}

// BatchCapable implements BatchComputer.
func (c GradientComputer) BatchCapable() bool {
	_, ok := c.Gradient.(gradients.BlockGradient)
	return ok
}

// BatchCapable implements BatchComputer.
func (c SVRGComputer) BatchCapable() bool {
	_, ok := c.Gradient.(gradients.BlockGradient)
	return ok
}

// BatchCapable implements BatchComputer.
func (c LineSearchComputer) BatchCapable() bool {
	_, ok := c.Gradient.(gradients.BlockGradient)
	return ok
}

// ComputeBlock implements BatchComputer: one fused gradient kernel call per
// block (Listing 2, batched).
func (c GradientComputer) ComputeBlock(rows data.Block, ctx *Context, acc linalg.Vector) {
	addGrad, _, ok := blockKernels(c.Gradient, ctx)
	if !ok {
		computeRowByRow(c, rows, ctx, acc)
		return
	}
	mp := takeMargins(rows.Len())
	addGrad(ctx.Weights, rows, *mp, acc)
	putMargins(mp)
}

// ComputeBlock implements BatchComputer for SVRG. On stochastic iterations
// the row path interleaves the two gradient evaluations per row; here the
// block runs the w pass and then the w̃ pass. The two accumulate into
// disjoint halves of acc and each half is filled in row order, so the
// result is still bit-identical to the interleaved per-row loop.
func (c SVRGComputer) ComputeBlock(rows data.Block, ctx *Context, acc linalg.Vector) {
	addGrad, _, ok := blockKernels(c.Gradient, ctx)
	if !ok {
		computeRowByRow(c, rows, ctx, acc)
		return
	}
	d := ctx.NumFeatures
	mp := takeMargins(rows.Len())
	addGrad(ctx.Weights, rows, *mp, acc[:d])
	if !svrgFullIteration(ctx.Iter, c.M) {
		wBar, err := ctx.GetVector(svrgBarKey)
		if err != nil {
			// Stage always sets the snapshot; a missing one is a programming
			// error in a custom operator wiring, surfaced loudly.
			panic(err)
		}
		addGrad(wBar, rows, *mp, acc[d:])
	}
	putMargins(mp)
}

// ComputeBlock implements BatchComputer for backtracking line search: loss
// sums (and, in gradient phase, the gradient) accumulate per block through
// the fused kernels. acc slots 0/1 and the gradient tail are disjoint, each
// filled in row order, matching the per-row loop bit for bit.
func (c LineSearchComputer) ComputeBlock(rows data.Block, ctx *Context, acc linalg.Vector) {
	addGrad, loss, ok := blockKernels(c.Gradient, ctx)
	if !ok {
		computeRowByRow(c, rows, ctx, acc)
		return
	}
	mp := takeMargins(rows.Len())
	if phase, _ := ctx.Get(lsPhaseKey).(string); phase == lsPhaseProbe {
		trial, err := ctx.GetVector(lsTrialKey)
		if err != nil {
			panic(err)
		}
		loss(ctx.Weights, rows, *mp, &acc[0])
		loss(trial, rows, *mp, &acc[1])
	} else {
		loss(ctx.Weights, rows, *mp, &acc[0])
		addGrad(ctx.Weights, rows, *mp, acc[2:])
	}
	putMargins(mp)
}
