package gd

import (
	"strings"
	"testing"

	"ml4all/internal/data"
)

func params() Params {
	return Params{Task: data.TaskSVM, Format: data.FormatLIBSVM}
}

func TestParamsDefaults(t *testing.T) {
	p := params().withDefaults()
	if p.Tolerance != 1e-3 {
		t.Errorf("default tolerance = %g, want 1e-3 (the language default)", p.Tolerance)
	}
	if p.MaxIter != 1000 {
		t.Errorf("default max iter = %d, want 1000", p.MaxIter)
	}
	if p.BatchSize != 1000 {
		t.Errorf("default batch = %d, want 1000 (the paper's MGD setting)", p.BatchSize)
	}
	if p.Gradient == nil || p.Step == nil || p.Converger == nil {
		t.Error("defaults left nil operators")
	}
	if p.Gradient.Name() != "hinge" {
		t.Errorf("SVM default gradient = %s, want hinge", p.Gradient.Name())
	}
}

func TestPlanNames(t *testing.T) {
	p := params()
	cases := []struct {
		plan Plan
		want string
	}{
		{NewBGD(p), "BGD"},
		{NewSGD(p, Lazy, ShuffledPartition), "SGD-lazy-shuffle"},
		{NewSGD(p, Eager, Bernoulli), "SGD-eager-bernoulli"},
		{NewMGD(p, Eager, RandomPartition), "MGD-eager-random"},
	}
	for _, c := range cases {
		if got := c.plan.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	p := params()
	good := []Plan{
		NewBGD(p),
		NewSGD(p, Eager, Bernoulli),
		NewSGD(p, Lazy, RandomPartition),
		NewMGD(p, Eager, ShuffledPartition),
		NewSVRG(p, 10),
		NewLineSearchBGD(p, 0.5),
	}
	for _, pl := range good {
		if err := pl.Validate(); err != nil {
			t.Errorf("%s: unexpected invalid: %v", pl.Name(), err)
		}
	}

	bad := NewSGD(p, Lazy, Bernoulli)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "lazy") {
		t.Errorf("lazy+bernoulli accepted (err=%v); Section 6 discards it", err)
	}

	bgdSampled := NewBGD(p)
	bgdSampled.Sampling = Bernoulli
	if bgdSampled.Validate() == nil {
		t.Error("BGD with sampling accepted")
	}

	noBatch := NewMGD(p, Eager, Bernoulli)
	noBatch.BatchSize = 0
	if noBatch.Validate() == nil {
		t.Error("MGD without batch size accepted")
	}

	nilOp := NewBGD(p)
	nilOp.Computer = nil
	if nilOp.Validate() == nil {
		t.Error("nil operator accepted")
	}

	noIter := NewBGD(p)
	noIter.MaxIter = 0
	if noIter.Validate() == nil {
		t.Error("MaxIter 0 accepted")
	}
}

func TestForAlgo(t *testing.T) {
	p := params()
	for _, algo := range []Algo{BGD, SGD, MGD, SVRG, LineSearchBGD} {
		plan, err := ForAlgo(p, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if plan.Algorithm != algo {
			t.Fatalf("ForAlgo(%v).Algorithm = %v", algo, plan.Algorithm)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%v default plan invalid: %v", algo, err)
		}
	}
	if _, err := ForAlgo(p, Algo(99)); err == nil {
		t.Error("unknown algo accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if BGD.String() != "BGD" || SGD.String() != "SGD" || MGD.String() != "MGD" {
		t.Error("algo names wrong")
	}
	if Eager.String() != "eager" || Lazy.String() != "lazy" {
		t.Error("placement names wrong")
	}
	if Bernoulli.String() != "bernoulli" || RandomPartition.String() != "random" ||
		ShuffledPartition.String() != "shuffle" || NoSampling.String() != "none" {
		t.Error("sampling names wrong")
	}
	if AutoMode.String() != "auto" || CentralizedMode.String() != "centralized" || DistributedMode.String() != "distributed" {
		t.Error("mode names wrong")
	}
}

func TestSGDBatchSizeIsOne(t *testing.T) {
	if got := NewSGD(params(), Eager, ShuffledPartition).BatchSize; got != 1 {
		t.Fatalf("SGD batch = %d, want 1", got)
	}
}
