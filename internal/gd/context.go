// Package gd implements the paper's gradient-descent abstraction (Section 4):
// seven operators — Transform, Stage, Compute, Update, Sample, Converge,
// Loop — that compose into GD plans, plus reference implementations covering
// BGD, SGD, MGD and the Appendix C variants (SVRG and backtracking line
// search). The operators are plain Go interfaces standing in for the paper's
// Java UDFs; expert users provide their own implementations exactly as the
// paper intends.
package gd

import (
	"fmt"

	"ml4all/internal/linalg"
)

// Context carries the global variables shared by the operators of a running
// plan — the equivalent of the paper's Context with getByKey/put. The hot
// variables (weights, step, iteration) are typed fields; everything else
// (SVRG's weightsBar, line search's bookkeeping, user extensions) lives in
// Vars.
type Context struct {
	// Weights is the current model vector w.
	Weights linalg.Vector

	// Step is the current step size alpha_i (refreshed each iteration from
	// the plan's step-size strategy; line search overwrites it).
	Step float64

	// Iter is the 1-based current iteration.
	Iter int

	// NumFeatures is the model dimensionality d.
	NumFeatures int

	// NumPoints is n, the dataset cardinality (Stage may use it; the
	// estimator's sample runs see the sample's n).
	NumPoints int

	// BatchSize is the sample size b of the running plan (n for BGD).
	BatchSize int

	// Tolerance is the requested convergence tolerance epsilon.
	Tolerance float64

	// MaxIter caps the iteration count.
	MaxIter int

	// FastMath selects the tolerance-bounded fast kernel tier
	// (engine.Options.FastMath): the stock batched computers dispatch to
	// gradients.FastGradient kernels when it is set and the gradient
	// implements them, and stay on the bit-exact kernels otherwise. Per-row
	// execution (custom UDFs, gathered batches) is always exact.
	FastMath bool

	// Vars holds algorithm-specific extension state.
	Vars map[string]any

	// spare recycles one dead weight vector between iterations (see
	// TakeSpare); engine-managed, never serialized.
	spare linalg.Vector
}

// TakeSpare returns a weight-sized scratch vector for the next weights value:
// the recycled vector from the previous iteration when one is available and
// correctly sized, or a fresh allocation. Contents are unspecified — callers
// must overwrite every element (the stock updaters do).
func (c *Context) TakeSpare(d int) linalg.Vector {
	if v := c.spare; len(v) == d {
		c.spare = nil
		return v
	}
	return linalg.NewVector(d)
}

// PutSpare offers a dead vector for recycling by the next TakeSpare. The
// engine calls it with the weights vector an Update replaced, once the
// trainer has finished reading it; operators that keep weight history across
// iterations must store clones (the Checkpoint contract already requires
// this), never the live ctx.Weights value.
func (c *Context) PutSpare(v linalg.Vector) { c.spare = v }

// NewContext returns a Context; the extension map is created on first Put.
func NewContext() *Context { return &Context{} }

// Get returns the extension variable under key, or nil.
func (c *Context) Get(key string) any { return c.Vars[key] }

// Put stores an extension variable.
func (c *Context) Put(key string, v any) {
	if c.Vars == nil {
		c.Vars = map[string]any{}
	}
	c.Vars[key] = v
}

// GetVector returns the named extension vector, or an error naming the key.
func (c *Context) GetVector(key string) (linalg.Vector, error) {
	v, ok := c.Vars[key].(linalg.Vector)
	if !ok {
		return nil, fmt.Errorf("gd: context variable %q is not a vector", key)
	}
	return v, nil
}

// Guard snapshots the context state a Computer must not touch during the
// compute phase (see the Computer concurrency contract). The engine captures
// one before each compute pass and checks it afterwards; a violation aborts
// the run instead of silently corrupting a parallel execution. The check is
// O(1) by design — it detects structural mutation (reassigned weights, new
// context variables, bumped counters), while data races on vector contents
// are the race detector's job in tests.
type Guard struct {
	weightsHead *float64
	weightsLen  int
	numVars     int
	iter        int
	step        float64
	batch       int
}

// Guard captures the current compute-phase invariants of c.
func (c *Context) Guard() Guard {
	g := Guard{
		weightsLen: len(c.Weights),
		numVars:    len(c.Vars),
		iter:       c.Iter,
		step:       c.Step,
		batch:      c.BatchSize,
	}
	if len(c.Weights) > 0 {
		g.weightsHead = &c.Weights[0]
	}
	return g
}

// Check reports the first contract violation a Computer committed against c
// since the guard was captured, or nil.
func (g Guard) Check(c *Context) error {
	var head *float64
	if len(c.Weights) > 0 {
		head = &c.Weights[0]
	}
	switch {
	case len(c.Weights) != g.weightsLen || head != g.weightsHead:
		return fmt.Errorf("gd: Computer violated the compute contract: ctx.Weights was reassigned during the compute phase")
	case len(c.Vars) != g.numVars:
		return fmt.Errorf("gd: Computer violated the compute contract: context variables changed during the compute phase (%d -> %d)", g.numVars, len(c.Vars))
	case c.Iter != g.iter || c.Step != g.step || c.BatchSize != g.batch:
		return fmt.Errorf("gd: Computer violated the compute contract: iteration state mutated during the compute phase")
	}
	return nil
}
