// Package gd implements the paper's gradient-descent abstraction (Section 4):
// seven operators — Transform, Stage, Compute, Update, Sample, Converge,
// Loop — that compose into GD plans, plus reference implementations covering
// BGD, SGD, MGD and the Appendix C variants (SVRG and backtracking line
// search). The operators are plain Go interfaces standing in for the paper's
// Java UDFs; expert users provide their own implementations exactly as the
// paper intends.
package gd

import (
	"fmt"

	"ml4all/internal/linalg"
)

// Context carries the global variables shared by the operators of a running
// plan — the equivalent of the paper's Context with getByKey/put. The hot
// variables (weights, step, iteration) are typed fields; everything else
// (SVRG's weightsBar, line search's bookkeeping, user extensions) lives in
// Vars.
type Context struct {
	// Weights is the current model vector w.
	Weights linalg.Vector

	// Step is the current step size alpha_i (refreshed each iteration from
	// the plan's step-size strategy; line search overwrites it).
	Step float64

	// Iter is the 1-based current iteration.
	Iter int

	// NumFeatures is the model dimensionality d.
	NumFeatures int

	// NumPoints is n, the dataset cardinality (Stage may use it; the
	// estimator's sample runs see the sample's n).
	NumPoints int

	// BatchSize is the sample size b of the running plan (n for BGD).
	BatchSize int

	// Tolerance is the requested convergence tolerance epsilon.
	Tolerance float64

	// MaxIter caps the iteration count.
	MaxIter int

	// Vars holds algorithm-specific extension state.
	Vars map[string]any
}

// NewContext returns a Context with an empty extension map.
func NewContext() *Context { return &Context{Vars: map[string]any{}} }

// Get returns the extension variable under key, or nil.
func (c *Context) Get(key string) any { return c.Vars[key] }

// Put stores an extension variable.
func (c *Context) Put(key string, v any) { c.Vars[key] = v }

// GetVector returns the named extension vector, or an error naming the key.
func (c *Context) GetVector(key string) (linalg.Vector, error) {
	v, ok := c.Vars[key].(linalg.Vector)
	if !ok {
		return nil, fmt.Errorf("gd: context variable %q is not a vector", key)
	}
	return v, nil
}
