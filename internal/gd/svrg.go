package gd

import (
	"fmt"

	"ml4all/internal/data"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
)

// SVRG (stochastic variance reduced gradient, Johnson & Zhang NIPS'13) mixes
// BGD with SGD: every m-th iteration recomputes the full-batch gradient at a
// snapshot w̃ and the iterations in between take variance-corrected
// single-point steps. The paper's Appendix C shows it fits the abstraction by
// "flattening" the nested loops with an if-else in Sample, Compute and
// Update; that is exactly what the operators below do, keyed off
// Context.Iter and the plan's UpdateFrequency.

// Context variable keys used by the SVRG operators.
const (
	svrgMuKey  = "svrg.mu"         // μ: full gradient at the snapshot
	svrgBarKey = "svrg.weightsBar" // w̃: snapshot weights
)

// svrgFullIteration reports whether (1-based) iteration t is a full-batch
// snapshot iteration: (t mod m) - 1 == 0 in the paper's Algorithm 2.
func svrgFullIteration(t, m int) bool { return t%m == 1 || m == 1 }

// SVRGComputer is the Appendix C Compute (Listing 8): on snapshot iterations
// it emits the plain gradient at w; on stochastic iterations it emits the
// pair (∇f_i(w), ∇f_i(w̃)) packed into the two halves of the accumulator.
type SVRGComputer struct {
	Gradient gradients.Gradient
	M        int
}

// Compute implements Computer.
func (c SVRGComputer) Compute(u data.Row, ctx *Context, acc linalg.Vector) {
	d := ctx.NumFeatures
	if svrgFullIteration(ctx.Iter, c.M) {
		c.Gradient.AddGradient(ctx.Weights, u, acc[:d])
		return
	}
	c.Gradient.AddGradient(ctx.Weights, u, acc[:d])
	wBar, err := ctx.GetVector(svrgBarKey)
	if err != nil {
		// Stage always sets the snapshot; a missing one is a programming
		// error in a custom operator wiring, surfaced loudly.
		panic(err)
	}
	c.Gradient.AddGradient(wBar, u, acc[d:])
}

// AccDim implements Computer: two gradient slots.
func (SVRGComputer) AccDim(d int) int { return 2 * d }

// Ops implements Computer (two gradient evaluations in the worst case).
func (c SVRGComputer) Ops(nnz int) float64 { return 2 * c.Gradient.Ops(nnz) }

// SVRGUpdater applies Algorithm 2's two update rules.
type SVRGUpdater struct {
	Reg gradients.L2
	M   int
}

// Update implements Updater.
func (up SVRGUpdater) Update(acc linalg.Vector, ctx *Context) (linalg.Vector, error) {
	d := ctx.NumFeatures
	if svrgFullIteration(ctx.Iter, up.M) {
		// Snapshot: w̃ := w; μ := mean gradient at w̃; w := w - α μ.
		mu := acc[:d].Clone()
		if n := ctx.NumPoints; n > 0 {
			mu.Scale(1 / float64(n))
		}
		up.Reg.AddGradient(ctx.Weights, mu)
		ctx.Put(svrgBarKey, ctx.Weights.Clone())
		ctx.Put(svrgMuKey, mu)
		w := ctx.Weights.Clone()
		w.AddScaled(-ctx.Step, mu)
		ctx.Weights = w
		return w, nil
	}
	mu, err := ctx.GetVector(svrgMuKey)
	if err != nil {
		return nil, fmt.Errorf("gd: SVRG update before first snapshot: %w", err)
	}
	// w := w - α (∇f_i(w) - ∇f_i(w̃) + μ)
	dir := acc[:d].Clone()
	dir.Sub(acc[d:])
	dir.Add(mu)
	up.Reg.AddGradient(ctx.Weights, dir)
	w := ctx.Weights.Clone()
	w.AddScaled(-ctx.Step, dir)
	ctx.Weights = w
	return w, nil
}

// svrgStager seeds the snapshot so the first stochastic iteration (when
// m == 1 never happens) has a w̃ even before the first full pass.
type svrgStager struct{}

// Stage implements Stager.
func (svrgStager) Stage(_ []data.Row, ctx *Context) error {
	ctx.Weights = linalg.NewVector(ctx.NumFeatures)
	ctx.Iter = 0
	ctx.Put(svrgBarKey, ctx.Weights.Clone())
	ctx.Put(svrgMuKey, linalg.NewVector(ctx.NumFeatures))
	return nil
}

// NewSVRG builds an SVRG plan. updateFrequency m <= 0 defaults to 2n/b-style
// heuristic of the original paper collapsed to a simple 10 (tests and benches
// pass it explicitly). The plan samples one point per stochastic iteration
// with shuffled-partition sampling; snapshot iterations sweep the full
// dataset.
func NewSVRG(p Params, updateFrequency int) Plan {
	p = p.withDefaults()
	if updateFrequency <= 0 {
		updateFrequency = 10
	}
	plan := p.base(SVRG, Eager, ShuffledPartition, 1)
	plan.UpdateFrequency = updateFrequency
	plan.Stager = svrgStager{}
	plan.Computer = SVRGComputer{Gradient: p.Gradient, M: updateFrequency}
	plan.Updater = SVRGUpdater{Reg: gradients.L2{Lambda: p.Lambda}, M: updateFrequency}
	return plan
}
