package gd

import (
	"math"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
)

// Operator-level tests for the Appendix C variants (SVRG, backtracking line
// search); whole-plan behaviour is covered in the engine tests.

func svrgCtx(d int) *Context {
	ctx := newCtx(d)
	ctx.Weights = linalg.NewVector(d)
	ctx.Step = 0.1
	ctx.NumPoints = 4
	return ctx
}

func TestSVRGStagerSeedsSnapshot(t *testing.T) {
	ctx := svrgCtx(3)
	if err := (svrgStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.GetVector(svrgBarKey); err != nil {
		t.Fatalf("snapshot not staged: %v", err)
	}
	if _, err := ctx.GetVector(svrgMuKey); err != nil {
		t.Fatalf("mu not staged: %v", err)
	}
}

func TestSVRGSnapshotIterationSetsMuAndBar(t *testing.T) {
	ctx := svrgCtx(2)
	if err := (svrgStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Iter = 1 // snapshot iteration for any m
	ctx.Weights = linalg.Vector{1, 2}

	up := SVRGUpdater{M: 5}
	// Summed gradient [4, 8] over NumPoints=4 => mu = [1, 2].
	w, err := up.Update(linalg.Vector{4, 8, 0, 0}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := ctx.GetVector(svrgMuKey)
	if err != nil {
		t.Fatal(err)
	}
	if !mu.Equal(linalg.Vector{1, 2}, 1e-12) {
		t.Fatalf("mu = %v, want [1 2]", mu)
	}
	bar, err := ctx.GetVector(svrgBarKey)
	if err != nil {
		t.Fatal(err)
	}
	if !bar.Equal(linalg.Vector{1, 2}, 1e-12) {
		t.Fatalf("w-bar = %v, want pre-update weights [1 2]", bar)
	}
	// w = [1,2] - 0.1*[1,2] = [0.9, 1.8]
	if !w.Equal(linalg.Vector{0.9, 1.8}, 1e-12) {
		t.Fatalf("w = %v, want [0.9 1.8]", w)
	}
}

func TestSVRGStochasticIterationVarianceCorrection(t *testing.T) {
	ctx := svrgCtx(2)
	if err := (svrgStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Put(svrgMuKey, linalg.Vector{0.5, 0.5})
	ctx.Weights = linalg.Vector{1, 1}
	ctx.Iter = 2 // stochastic for m=5

	up := SVRGUpdater{M: 5}
	// acc = [grad(w) | grad(wBar)] = [2,0 | 1,0]
	// dir = (2-1, 0-0) + mu = (1.5, 0.5); w -= 0.1*dir.
	w, err := up.Update(linalg.Vector{2, 0, 1, 0}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(linalg.Vector{0.85, 0.95}, 1e-12) {
		t.Fatalf("w = %v, want [0.85 0.95]", w)
	}
}

func TestSVRGComputerPacksBothGradients(t *testing.T) {
	ctx := svrgCtx(2)
	if err := (svrgStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Weights = linalg.Vector{1, 0}
	ctx.Put(svrgBarKey, linalg.Vector{0, 0})
	ctx.Iter = 3 // stochastic

	c := SVRGComputer{Gradient: gradients.LeastSquares{}, M: 5}
	acc := linalg.NewVector(c.AccDim(2))
	u := data.NewDenseRow(1, linalg.Vector{1, 1})
	c.Compute(u, ctx, acc)
	// grad(w): 2(w·x - y)x = 2(1-1)x = 0; grad(wBar): 2(0-1)x = [-2,-2].
	if !acc.Equal(linalg.Vector{0, 0, -2, -2}, 1e-12) {
		t.Fatalf("acc = %v", acc)
	}
}

func TestLineSearchPhaseMachine(t *testing.T) {
	ctx := newCtx(2)
	if err := (lineSearchStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	ctx.NumPoints = 1
	ctx.Weights = linalg.Vector{2, 0}

	up := LineSearchUpdater{Beta: 0.5, Alpha: 1}
	// Gradient pass: acc = [sum f_i(w), 0, grad...] with grad [2, 0].
	if _, err := up.Update(linalg.Vector{4, 0, 2, 0}, ctx); err != nil {
		t.Fatal(err)
	}
	if phase, _ := ctx.Get(lsPhaseKey).(string); phase != lsPhaseProbe {
		t.Fatalf("phase = %q, want probe", phase)
	}
	trial, err := ctx.GetVector(lsTrialKey)
	if err != nil {
		t.Fatal(err)
	}
	if !trial.Equal(linalg.Vector{0, 0}, 1e-12) {
		t.Fatalf("trial = %v, want w - 1*grad = [0 0]", trial)
	}

	// Probe pass with sufficient decrease: f(trial)=0 < f(w)=4 - c*1*4.
	w, err := up.Update(linalg.Vector{4, 0, 0, 0}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(linalg.Vector{0, 0}, 1e-12) {
		t.Fatalf("applied w = %v, want trial", w)
	}
	if phase, _ := ctx.Get(lsPhaseKey).(string); phase != lsPhaseGrad {
		t.Fatalf("phase after apply = %q, want grad", phase)
	}
	if n, _ := ctx.Get(lsUpdatesKey).(int); n != 1 {
		t.Fatalf("applied updates = %d, want 1", n)
	}
}

func TestLineSearchBacktracksOnInsufficientDecrease(t *testing.T) {
	ctx := newCtx(1)
	if err := (lineSearchStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	ctx.NumPoints = 1
	ctx.Weights = linalg.Vector{1}

	up := LineSearchUpdater{Beta: 0.5, Alpha: 1}
	if _, err := up.Update(linalg.Vector{1, 0, 1}, ctx); err != nil { // f(w)=1, grad=1
		t.Fatal(err)
	}
	// Probe claims the trial is WORSE: f(trial)=5 > f(w) - c*alpha*g².
	if _, err := up.Update(linalg.Vector{1, 5, 0}, ctx); err != nil {
		t.Fatal(err)
	}
	alpha, _ := ctx.Get(lsAlphaKey).(float64)
	if math.Abs(alpha-0.5) > 1e-12 {
		t.Fatalf("alpha = %g, want halved to 0.5", alpha)
	}
	if phase, _ := ctx.Get(lsPhaseKey).(string); phase != lsPhaseProbe {
		t.Fatal("backtrack must stay in probe phase")
	}
	// The weights must not have moved.
	if !ctx.Weights.Equal(linalg.Vector{1}, 0) {
		t.Fatalf("weights moved during backtrack: %v", ctx.Weights)
	}
}

func TestLineSearchConvergerUsesAppliedDelta(t *testing.T) {
	ctx := newCtx(1)
	if err := (lineSearchStager{}).Stage(nil, ctx); err != nil {
		t.Fatal(err)
	}
	c := LineSearchConverger{}
	// Before any applied update: infinite delta so the loop continues.
	if got := c.Converge(linalg.Vector{0}, linalg.Vector{0}, ctx); !math.IsInf(got, 1) {
		t.Fatalf("pre-update delta = %g, want +Inf", got)
	}
	ctx.Put(lsDeltaKey, 0.25)
	if got := c.Converge(linalg.Vector{0}, linalg.Vector{0}, ctx); got != 0.25 {
		t.Fatalf("delta = %g, want stored 0.25", got)
	}
}

func TestNewLineSearchClampsBeta(t *testing.T) {
	p := params()
	for _, beta := range []float64{-1, 0, 1, 2} {
		plan := NewLineSearchBGD(p, beta)
		up, ok := plan.Updater.(LineSearchUpdater)
		if !ok {
			t.Fatal("unexpected updater type")
		}
		if up.Beta <= 0 || up.Beta >= 1 {
			t.Fatalf("beta %g not clamped: %g", beta, up.Beta)
		}
	}
}
