package gd

import (
	"fmt"

	"ml4all/internal/data"
	"ml4all/internal/gradients"
	"ml4all/internal/step"
)

// Algo identifies the GD algorithm family of a plan.
type Algo int

// The three fundamental GD algorithms (Section 2) plus the Appendix C
// variants expressible in the abstraction.
const (
	BGD Algo = iota
	SGD
	MGD
	SVRG
	LineSearchBGD
)

// String returns the algorithm name.
func (a Algo) String() string {
	switch a {
	case BGD:
		return "BGD"
	case SGD:
		return "SGD"
	case MGD:
		return "MGD"
	case SVRG:
		return "SVRG"
	case LineSearchBGD:
		return "BGD-linesearch"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// TransformPlacement is the lazy-transformation dimension of the plan space
// (Section 6): eager parses the whole dataset upfront; lazy commutes
// Transform inside the loop, after Sample.
type TransformPlacement int

// Transform placements.
const (
	Eager TransformPlacement = iota
	Lazy
)

// String returns "eager" or "lazy".
func (p TransformPlacement) String() string {
	if p == Lazy {
		return "lazy"
	}
	return "eager"
}

// SamplingKind is the sampling-strategy dimension of the plan space
// (Section 6, Figure 4).
type SamplingKind int

// Sampling strategies.
const (
	NoSampling        SamplingKind = iota // BGD: every unit, every iteration
	Bernoulli                             // full scan, select with probability b/n
	RandomPartition                       // per draw: random partition, random unit
	ShuffledPartition                     // shuffle one partition, take sequentially
)

// String returns the strategy name as used in the paper's figures.
func (s SamplingKind) String() string {
	switch s {
	case NoSampling:
		return "none"
	case Bernoulli:
		return "bernoulli"
	case RandomPartition:
		return "random"
	case ShuffledPartition:
		return "shuffle"
	default:
		return fmt.Sprintf("SamplingKind(%d)", int(s))
	}
}

// ExecMode optionally pins where operators run, overriding ML4all's
// data-size-driven hybrid placement (Appendix D). The ablation benches use it.
type ExecMode int

// Execution modes.
const (
	AutoMode        ExecMode = iota // hybrid: centralized iff input fits one partition
	CentralizedMode                 // everything on the driver ("pure Java")
	DistributedMode                 // everything in cluster waves ("pure Spark")
)

// String returns the mode name.
func (m ExecMode) String() string {
	switch m {
	case AutoMode:
		return "auto"
	case CentralizedMode:
		return "centralized"
	case DistributedMode:
		return "distributed"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// Plan is one point in the GD plan space: an algorithm, its operator
// implementations and the physical choices (transform placement, sampling
// strategy, batch size) the optimizer searches over.
type Plan struct {
	Algorithm Algo
	Transform TransformPlacement
	Sampling  SamplingKind
	BatchSize int // 1 for SGD, b for MGD, ignored for BGD

	Transformer Transformer
	Stager      Stager
	Computer    Computer
	Updater     Updater
	Converger   Converger
	Looper      Looper
	Step        step.Size

	Tolerance float64
	MaxIter   int

	Mode ExecMode

	// TransformMode, when not AutoMode, overrides Mode for the Transform
	// phase only. The Bismarck baseline needs it: its Prepare UDF
	// parallelizes while its fused Compute+Update is serialized.
	TransformMode ExecMode

	// UpdateFrequency is SVRG's m: every m-th iteration recomputes the full
	// batch gradient snapshot. Ignored by other algorithms.
	UpdateFrequency int

	// StageSampleSize, when positive, hands Stage that many data units (the
	// Figure 3(b) variant where Stage initializes parameters from a sample).
	StageSampleSize int
}

// Name returns the plan label used in the paper's figures, e.g.
// "SGD-lazy-shuffle" or "BGD".
func (p Plan) Name() string {
	if p.Sampling == NoSampling {
		if p.Transform == Lazy {
			return p.Algorithm.String() + "-lazy"
		}
		return p.Algorithm.String()
	}
	return fmt.Sprintf("%s-%s-%s", p.Algorithm, p.Transform, p.Sampling)
}

// Validate reports the first structural problem with the plan.
func (p Plan) Validate() error {
	switch {
	case p.Transformer == nil, p.Stager == nil, p.Computer == nil,
		p.Updater == nil, p.Converger == nil, p.Looper == nil, p.Step == nil:
		return fmt.Errorf("gd: plan %s has a nil operator", p.Name())
	case p.MaxIter <= 0:
		return fmt.Errorf("gd: plan %s needs MaxIter > 0", p.Name())
	case p.Algorithm != BGD && p.Algorithm != LineSearchBGD && p.BatchSize <= 0:
		return fmt.Errorf("gd: plan %s needs a positive batch size", p.Name())
	case (p.Algorithm == BGD || p.Algorithm == LineSearchBGD) && p.Sampling != NoSampling:
		return fmt.Errorf("gd: BGD plans take no Sample operator, got %s", p.Sampling)
	case p.Algorithm != BGD && p.Algorithm != LineSearchBGD && p.Sampling == NoSampling:
		return fmt.Errorf("gd: plan %s requires a sampling strategy", p.Name())
	case p.Transform == Lazy && p.Sampling == Bernoulli:
		return fmt.Errorf("gd: lazy transformation with Bernoulli sampling is never beneficial (Section 6)")
	case p.Algorithm == SVRG && p.UpdateFrequency <= 0:
		return fmt.Errorf("gd: SVRG needs UpdateFrequency > 0")
	}
	return nil
}

// Params bundles the task-level knobs shared by every plan built for a query.
type Params struct {
	Task      data.TaskKind
	Format    data.Format
	Gradient  gradients.Gradient // nil => ForTask default
	Lambda    float64            // L2 regularization strength
	Step      step.Size          // nil => step.Default()
	Tolerance float64            // <= 0 => 1e-3, the language default
	MaxIter   int                // <= 0 => 1000
	BatchSize int                // MGD batch; <= 0 => 1000, the paper's setting
	Converger Converger          // nil => L1Converger (Listing 5)
	Mode      ExecMode
}

func (p Params) withDefaults() Params {
	if p.Gradient == nil {
		p.Gradient = gradients.ForTask(p.Task)
	}
	if p.Step == nil {
		p.Step = step.Default()
	}
	if p.Tolerance <= 0 {
		p.Tolerance = 1e-3
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 1000
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 1000
	}
	if p.Converger == nil {
		p.Converger = L1Converger{}
	}
	return p
}

func (p Params) base(algo Algo, tp TransformPlacement, sk SamplingKind, batch int) Plan {
	return Plan{
		Algorithm:   algo,
		Transform:   tp,
		Sampling:    sk,
		BatchSize:   batch,
		Transformer: FormatTransformer{Format: p.Format},
		Stager:      ZeroStager{},
		Computer:    GradientComputer{Gradient: p.Gradient},
		Updater:     GradientUpdater{Reg: gradients.L2{Lambda: p.Lambda}},
		Converger:   p.Converger,
		Looper:      ToleranceLooper{},
		Step:        p.Step,
		Tolerance:   p.Tolerance,
		MaxIter:     p.MaxIter,
		Mode:        p.Mode,
	}
}

// NewBGD builds the single BGD plan (eager transform, no sampling).
func NewBGD(p Params) Plan {
	p = p.withDefaults()
	return p.base(BGD, Eager, NoSampling, 0)
}

// NewSGD builds an SGD plan with the given physical choices.
func NewSGD(p Params, tp TransformPlacement, sk SamplingKind) Plan {
	p = p.withDefaults()
	return p.base(SGD, tp, sk, 1)
}

// NewMGD builds an MGD plan with the given physical choices and the Params'
// batch size.
func NewMGD(p Params, tp TransformPlacement, sk SamplingKind) Plan {
	p = p.withDefaults()
	return p.base(MGD, tp, sk, p.BatchSize)
}

// ForAlgo builds the default plan for an algorithm: BGD as-is, SGD/MGD with
// eager transformation and shuffled-partition sampling (callers interested in
// other physical choices use NewSGD/NewMGD directly, and the planner
// enumerates all of them).
func ForAlgo(p Params, a Algo) (Plan, error) {
	switch a {
	case BGD:
		return NewBGD(p), nil
	case SGD:
		return NewSGD(p, Eager, ShuffledPartition), nil
	case MGD:
		return NewMGD(p, Eager, ShuffledPartition), nil
	case SVRG:
		return NewSVRG(p, 0), nil
	case LineSearchBGD:
		return NewLineSearchBGD(p, 0.5), nil
	default:
		return Plan{}, fmt.Errorf("gd: unknown algorithm %v", a)
	}
}
