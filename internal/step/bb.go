package step

import "ml4all/internal/linalg"

// BarzilaiBorwein is the BB1 spectral step size the paper's Appendix C lists
// among the pluggable schedules: alpha_k = (s·s)/(s·y) with s = w_k -
// w_{k-1} and y = g_k - g_{k-1}. Unlike the stateless schedules it needs the
// trajectory, so callers feed it via Observe after every update; Alpha
// returns the fallback until two observations exist, and whenever the
// curvature estimate s·y is non-positive (non-convex step), it resets to the
// fallback instead of going negative.
type BarzilaiBorwein struct {
	Fallback Size // schedule used before warm-up and on bad curvature

	havePrev   bool
	prevW      linalg.Vector
	prevG      linalg.Vector
	alpha      float64
	haveAlpha  bool
	lastIterAt int
}

// NewBarzilaiBorwein returns a BB stepper with the given fallback (Default()
// when nil).
func NewBarzilaiBorwein(fallback Size) *BarzilaiBorwein {
	if fallback == nil {
		fallback = Default()
	}
	return &BarzilaiBorwein{Fallback: fallback}
}

// Observe records the weights and gradient after iteration i.
func (b *BarzilaiBorwein) Observe(i int, w, g linalg.Vector) {
	if b.havePrev {
		s := w.Clone()
		s.Sub(b.prevW)
		y := g.Clone()
		y.Sub(b.prevG)
		sy := s.Dot(y)
		if sy > 1e-12 {
			b.alpha = s.Dot(s) / sy
			b.haveAlpha = true
		} else {
			b.haveAlpha = false
		}
	}
	b.prevW = w.Clone()
	b.prevG = g.Clone()
	b.havePrev = true
	b.lastIterAt = i
}

// Alpha implements Size.
func (b *BarzilaiBorwein) Alpha(i int) float64 {
	if b.haveAlpha {
		return b.alpha
	}
	return b.Fallback.Alpha(i)
}

// Name implements Size.
func (b *BarzilaiBorwein) Name() string { return "barzilai-borwein" }

// Reset clears the trajectory (for reuse across runs).
func (b *BarzilaiBorwein) Reset() {
	b.havePrev, b.haveAlpha = false, false
	b.prevW, b.prevG = nil, nil
}
