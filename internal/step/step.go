// Package step implements step-size (learning-rate) strategies. The paper's
// evaluation fixes the MLlib default beta/sqrt(i) across all systems and
// algorithms; the iterations-estimator appendix additionally exercises 1/i
// and 1/i² adaptive schedules, and Appendix C uses backtracking line search
// (implemented as a GD plan variant in package gd).
package step

import (
	"fmt"
	"math"
)

// Size yields the step size alpha_i for (1-based) iteration i.
type Size interface {
	Alpha(i int) float64
	Name() string
}

// Constant is a fixed step size.
type Constant struct{ Value float64 }

// Alpha implements Size.
func (c Constant) Alpha(int) float64 { return c.Value }

// Name implements Size.
func (c Constant) Name() string { return fmt.Sprintf("const(%g)", c.Value) }

// InvSqrt is beta/sqrt(i) — the step size hard-coded in MLlib and used for
// every experiment in the paper's Section 8 (with beta = 1).
type InvSqrt struct{ Beta float64 }

// Alpha implements Size.
func (s InvSqrt) Alpha(i int) float64 { return s.Beta / math.Sqrt(float64(i)) }

// Name implements Size.
func (s InvSqrt) Name() string { return fmt.Sprintf("%g/sqrt(i)", s.Beta) }

// Inv is beta/i (Figure 15b, Figure 16).
type Inv struct{ Beta float64 }

// Alpha implements Size.
func (s Inv) Alpha(i int) float64 { return s.Beta / float64(i) }

// Name implements Size.
func (s Inv) Name() string { return fmt.Sprintf("%g/i", s.Beta) }

// InvSquare is beta/i² (Figure 15c).
type InvSquare struct{ Beta float64 }

// Alpha implements Size.
func (s InvSquare) Alpha(i int) float64 { return s.Beta / (float64(i) * float64(i)) }

// Name implements Size.
func (s InvSquare) Name() string { return fmt.Sprintf("%g/i^2", s.Beta) }

// Default returns the paper's experimental default: 1/sqrt(i).
func Default() Size { return InvSqrt{Beta: 1} }
