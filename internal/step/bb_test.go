package step

import (
	"math"
	"testing"

	"ml4all/internal/linalg"
)

func TestBBFallsBackBeforeWarmup(t *testing.T) {
	b := NewBarzilaiBorwein(Constant{Value: 0.25})
	if got := b.Alpha(1); got != 0.25 {
		t.Fatalf("pre-warmup Alpha = %g, want fallback 0.25", got)
	}
	b.Observe(1, linalg.Vector{0, 0}, linalg.Vector{1, 0})
	if got := b.Alpha(2); got != 0.25 {
		t.Fatalf("single observation Alpha = %g, want fallback", got)
	}
}

func TestBBRecoversQuadraticCurvature(t *testing.T) {
	// For f(w) = (c/2)||w||², gradient g = c·w, so y = c·s and the BB step
	// is exactly 1/c regardless of the trajectory.
	const c = 4.0
	b := NewBarzilaiBorwein(nil)
	w1 := linalg.Vector{1, 2}
	w2 := linalg.Vector{0.5, 1.7}
	g := func(w linalg.Vector) linalg.Vector {
		out := w.Clone()
		out.Scale(c)
		return out
	}
	b.Observe(1, w1, g(w1))
	b.Observe(2, w2, g(w2))
	if got := b.Alpha(3); math.Abs(got-1/c) > 1e-12 {
		t.Fatalf("BB step = %g, want %g", got, 1/c)
	}
}

func TestBBBadCurvatureFallsBack(t *testing.T) {
	b := NewBarzilaiBorwein(Constant{Value: 0.1})
	// Gradient moves opposite to the weights: s·y < 0.
	b.Observe(1, linalg.Vector{0}, linalg.Vector{1})
	b.Observe(2, linalg.Vector{1}, linalg.Vector{0.5})
	if got := b.Alpha(3); got != 0.1 {
		t.Fatalf("negative-curvature Alpha = %g, want fallback", got)
	}
}

func TestBBReset(t *testing.T) {
	b := NewBarzilaiBorwein(Constant{Value: 0.9})
	b.Observe(1, linalg.Vector{1}, linalg.Vector{2})
	b.Observe(2, linalg.Vector{2}, linalg.Vector{4})
	if b.Alpha(3) == 0.9 {
		t.Fatal("BB did not engage before reset")
	}
	b.Reset()
	if got := b.Alpha(3); got != 0.9 {
		t.Fatalf("post-reset Alpha = %g, want fallback", got)
	}
}

func TestBBName(t *testing.T) {
	if NewBarzilaiBorwein(nil).Name() == "" {
		t.Fatal("empty name")
	}
}
