package step

import (
	"math"
	"testing"
)

func TestConstant(t *testing.T) {
	s := Constant{Value: 0.5}
	if s.Alpha(1) != 0.5 || s.Alpha(1000) != 0.5 {
		t.Fatal("constant step varies")
	}
}

func TestInvSqrtMatchesMLlibFormula(t *testing.T) {
	s := InvSqrt{Beta: 2}
	for _, i := range []int{1, 4, 100} {
		want := 2 / math.Sqrt(float64(i))
		if got := s.Alpha(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Alpha(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestInvAndInvSquare(t *testing.T) {
	if got := (Inv{Beta: 3}).Alpha(6); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Inv.Alpha(6) = %g, want 0.5", got)
	}
	if got := (InvSquare{Beta: 8}).Alpha(4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("InvSquare.Alpha(4) = %g, want 0.5", got)
	}
}

func TestSchedulesDecreaseMonotonically(t *testing.T) {
	for _, s := range []Size{InvSqrt{Beta: 1}, Inv{Beta: 1}, InvSquare{Beta: 1}} {
		prev := math.Inf(1)
		for i := 1; i <= 50; i++ {
			a := s.Alpha(i)
			if a <= 0 || a >= prev {
				t.Fatalf("%s not strictly decreasing at i=%d: %g >= %g", s.Name(), i, a, prev)
			}
			prev = a
		}
	}
}

func TestDefaultIsUnitInvSqrt(t *testing.T) {
	if got := Default().Alpha(4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Default().Alpha(4) = %g, want 0.5", got)
	}
}

func TestNames(t *testing.T) {
	for _, s := range []Size{Constant{1}, InvSqrt{1}, Inv{1}, InvSquare{1}} {
		if s.Name() == "" {
			t.Fatalf("%T has empty name", s)
		}
	}
}
