package engine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

// panicComputer is a user-defined Compute operator that blows up on its Nth
// call — the misbehaving-UDF case panic isolation exists for.
type panicComputer struct {
	inner  gd.Computer
	failAt int64
	calls  *atomic.Int64
}

func (p panicComputer) Compute(u data.Row, ctx *gd.Context, acc linalg.Vector) {
	if p.calls.Add(1) == p.failAt {
		panic("udf exploded mid-shard")
	}
	p.inner.Compute(u, ctx, acc)
}

func (p panicComputer) AccDim(d int) int    { return p.inner.AccDim(d) }
func (p panicComputer) Ops(nnz int) float64 { return p.inner.Ops(nnz) }

// panicTransformer is a user-defined Transform operator that panics on one
// unit, exercising the eager-transform fan-out path.
type panicTransformer struct {
	inner gd.Transformer
	n     *atomic.Int64
}

func (p panicTransformer) Transform(raw string, ctx *gd.Context) (data.Row, error) {
	if p.n.Add(1) == 100 {
		panic("transformer exploded")
	}
	return p.inner.Transform(raw, ctx)
}

func panicDataset(t *testing.T) *storage.Store {
	t.Helper()
	ds := synth.MustGenerate(synth.Spec{
		Name: "panic-test", Task: data.TaskLinearRegression,
		N: 2000, D: 20, Density: 1, Noise: 0.1, Margin: 2, Seed: 11,
	})
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPanicIsolation pins that a panicking user-defined operator fails its
// run with a captured stack instead of killing the process, at every worker
// count, and that the executor and its pool remain usable afterward (the CI
// race leg runs this under -race).
func TestPanicIsolation(t *testing.T) {
	st := panicDataset(t)
	p := gd.Params{Task: data.TaskLinearRegression, Format: st.Dataset.Format, Tolerance: 1e-3, MaxIter: 50}

	for _, workers := range []int{1, 2, 8} {
		t.Run("computer", func(t *testing.T) {
			plan := gd.NewBGD(p)
			var calls atomic.Int64
			plan.Computer = panicComputer{inner: plan.Computer, failAt: 3000, calls: &calls}
			sim := cluster.New(cluster.Default())
			_, err := Run(sim, st, &plan, Options{Seed: 4, Workers: workers})
			assertPanicError(t, err, "udf exploded mid-shard")

			// The pool must be reusable: a clean plan on the same process
			// (same GOMAXPROCS pool machinery) still trains to completion.
			clean := gd.NewBGD(p)
			res, err := Run(cluster.New(cluster.Default()), st, &clean, Options{Seed: 4, Workers: workers})
			if err != nil {
				t.Fatalf("clean run after recovered panic (workers=%d): %v", workers, err)
			}
			if res.Iterations == 0 {
				t.Fatal("clean run did no work")
			}
		})
		t.Run("transformer", func(t *testing.T) {
			plan := gd.NewBGD(p)
			var n atomic.Int64
			plan.Transformer = panicTransformer{inner: plan.Transformer, n: &n}
			sim := cluster.New(cluster.Default())
			_, err := Run(sim, st, &plan, Options{Seed: 4, Workers: workers})
			assertPanicError(t, err, "transformer exploded")
		})
	}
}

func assertPanicError(t *testing.T, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatal("run with panicking operator returned nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *PanicError", err, err)
	}
	if pe.Value != want {
		t.Fatalf("panic value = %v, want %q", pe.Value, want)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("PanicError carries no stack trace")
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error text %q does not surface the panic value", err.Error())
	}
}
