package engine

import (
	"fmt"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/synth"
)

// The batched-execution equivalence guarantee, wired into the same harness
// the parallel/resume/arena tests use: for every loss (via the three tasks),
// both arena layouts (dense strided and CSR) and a sweep of block sizes —
// including 1 (degenerate), 7 (spans not divisible by the width), the
// default 512 and a width larger than any span — training through the
// blocked gd.BatchComputer path must be bit-identical to the per-row path:
// same weights, iterations, deltas, simulated time and accounting. The
// per-row reference is produced by stripping the BatchComputer capability
// from the stock Computer, which flips the engine to its row-at-a-time loop.

// rowOnly wraps a Computer so that ONLY the Computer method set is exposed:
// the engine's BatchComputer type assertion fails and the per-row path runs.
// This is also exactly what a custom non-batch Computer UDF looks like to
// the engine, so the sweep doubles as the fallback-transparency test.
type rowOnly struct{ gd.Computer }

// sameNumerics asserts bitwise equality of everything the block kernels can
// influence — weights, iteration count, per-iteration deltas, termination —
// leaving simulated time and accounting to the caller (they differ between
// batched and per-row Computers by the calibrated dispatch overhead).
func sameNumerics(t *testing.T, label string, base, got *Result) {
	t.Helper()
	if !got.Weights.Equal(base.Weights, 0) {
		t.Fatalf("%s: weights diverge from the per-row path", label)
	}
	if got.Iterations != base.Iterations {
		t.Fatalf("%s: iterations %d != %d", label, got.Iterations, base.Iterations)
	}
	if len(got.Deltas) != len(base.Deltas) {
		t.Fatalf("%s: delta count %d != %d", label, len(got.Deltas), len(base.Deltas))
	}
	for i := range got.Deltas {
		if got.Deltas[i] != base.Deltas[i] {
			t.Fatalf("%s: delta[%d] %g != %g", label, i, got.Deltas[i], base.Deltas[i])
		}
	}
	if got.Converged != base.Converged || got.Budgeted != base.Budgeted || got.Diverged != base.Diverged {
		t.Fatalf("%s: termination flags diverge", label)
	}
}

func layoutDataset(t *testing.T, task data.TaskKind, dense bool, n int) *data.Dataset {
	t.Helper()
	spec := synth.Spec{
		Name: "blk-" + task.String(), Task: task,
		N: n, D: 24, Noise: 0.1, Margin: 1, Seed: 17,
	}
	if dense {
		spec.Density = 1
	} else {
		spec.Density = 0.5
	}
	ds, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Mat.IsDense() != dense {
		t.Fatalf("%v dense=%v: generator produced IsDense=%v", task, dense, ds.Mat.IsDense())
	}
	return ds
}

// customLoss strips the BlockGradient capability from a stock loss — what a
// user-defined gradients.Gradient looks like to the stack.
type customLoss struct{ gradients.Gradient }

// A stock computer wrapping a Gradient WITHOUT block kernels must stay on
// the per-row path end to end: same numerics AND same simulated time and
// accounting as a plain per-row Computer, i.e. billed at the full per-unit
// dispatch overhead, never the amortized batched rate (BatchCapable gates
// both execution and cost charging together).
func TestCustomGradientPlanStaysPerRowBilled(t *testing.T) {
	ds := layoutDataset(t, data.TaskLogisticRegression, true, 300)
	st := buildStore(t, ds, 2<<10)
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 20, Lambda: 0.05}
	plan := gd.NewBGD(p)
	plan.Computer = gd.GradientComputer{Gradient: customLoss{gradients.Logistic{}}}

	rowPlan := plan
	rowPlan.Computer = rowOnly{plan.Computer}
	base := runWorkers(t, st, rowPlan, 1)
	got := runWorkers(t, st, plan, 1)
	sameResult(t, "custom-gradient/BGD", base, got, 1)
}

func TestBlockedComputeMatchesRowComputeBitwise(t *testing.T) {
	tasks := []data.TaskKind{data.TaskSVM, data.TaskLogisticRegression, data.TaskLinearRegression}
	// 500 units over 2 KB partitions: several shards with boundaries that
	// are not multiples of any swept width, so partial blocks occur at span
	// tails, and a width larger than every span exercises the one-block-
	// per-span case.
	const n = 500
	blockSizes := []int{1, 7, 512, n}
	for _, task := range tasks {
		for _, dense := range []bool{true, false} {
			ds := layoutDataset(t, task, dense, n)
			st := buildStore(t, ds, 2<<10)
			p := gd.Params{Task: task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 25, Lambda: 0.05, BatchSize: 32}

			plans := []gd.Plan{
				gd.NewBGD(p), // full passes: AddGradientBlock
				gd.NewMGD(p, gd.Eager, gd.ShuffledPartition), // sampled batches: GatherBlock path
				gd.NewSVRG(p, 5),            // two-slot accumulator, snapshot sweeps
				gd.NewLineSearchBGD(p, 0.5), // LossBlock grad + probe phases
			}
			for _, plan := range plans {
				layout := "csr"
				if dense {
					layout = "dense"
				}
				label := fmt.Sprintf("%v/%s/%s", task, layout, plan.Name())

				rowPlan := plan
				rowPlan.Computer = rowOnly{plan.Computer}
				base := runWorkers(t, st, rowPlan, 1)

				var first *Result
				for _, bs := range blockSizes {
					sim := cluster.New(cluster.Default())
					res, err := Run(sim, st, &plan, Options{Seed: 7, Workers: 1, BlockSize: bs})
					if err != nil {
						t.Fatalf("%s: block=%d: %v", label, bs, err)
					}
					blabel := fmt.Sprintf("%s/block=%d", label, bs)
					// Numerics must match the per-row reference bit for bit
					// at every width.
					sameNumerics(t, blabel, base, res)
					// Simulated time legitimately differs from the per-row
					// reference: a batch-capable Computer is charged the
					// amortized dispatch overhead (Sim.CostCompute), a
					// per-row UDF the full one — never the other way round.
					if res.Time >= base.Time {
						t.Fatalf("%s: blocked sim time %g not below per-row %g", blabel, res.Time, base.Time)
					}
					// Across block widths everything — time and accounting
					// included — is bit-identical: the width is invisible to
					// both numerics and cost charging.
					if first == nil {
						first = res
					} else {
						sameResult(t, blabel, first, res, 1)
					}
				}
			}
		}
	}
}
