package engine_test

// The Interrupt hook: a cancellation poll at the top of every Step. These
// tests pin the serving layer's contract — an interrupted trainer aborts
// before mutating anything, stays checkpointable, and a run resumed (or
// simply continued) after an interruption is bit-identical to one that was
// never interrupted.

import (
	"errors"
	"fmt"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
)

func TestInterruptAbortsBetweenIterations(t *testing.T) {
	st := resumeDataset(t, data.TaskLogisticRegression)
	p := gd.Params{Task: data.TaskLogisticRegression, Format: st.Dataset.Format, Tolerance: 1e-9, MaxIter: 30}
	plan := gd.NewBGD(p)

	opts := engine.Options{Seed: 11, Workers: 2}
	base, err := engine.Run(cluster.New(cluster.Default()), st, &plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations < 10 {
		t.Fatalf("degenerate baseline: %d iterations", base.Iterations)
	}

	cause := fmt.Errorf("ctx gone")
	const stopAfter = 5
	calls := 0
	iopts := opts
	iopts.Interrupt = func() error {
		calls++
		if calls > stopAfter {
			return cause
		}
		return nil
	}
	tr, err := engine.NewTrainer(cluster.New(cluster.Default()), st, &plan, iopts)
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for !tr.Done() {
		if stepErr = tr.Step(); stepErr != nil {
			break
		}
	}
	if !errors.Is(stepErr, engine.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", stepErr)
	}
	if !errors.Is(stepErr, cause) {
		t.Fatalf("interrupt error does not wrap its cause: %v", stepErr)
	}
	if got := tr.Iteration(); got != stopAfter {
		t.Fatalf("interrupted after %d iterations, want %d", got, stopAfter)
	}

	// The interrupted trainer checkpoints; the resumed run finishes
	// bit-identical to the never-interrupted baseline.
	cp, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := engine.DecodeTrainState(enc)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := engine.Resume(cluster.New(cluster.Default()), st, &plan, opts, dec)
	if err != nil {
		t.Fatal(err)
	}
	for !rt.Done() {
		if err := rt.Step(); err != nil {
			t.Fatal(err)
		}
	}
	checkSame(t, "resumed-after-interrupt", base, rt.Finish())

	// And the interrupted trainer itself, once the condition clears, simply
	// continues — the failed Step mutated nothing.
	for !tr.Done() {
		calls = 0 // clear the interrupt condition
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	checkSame(t, "continued-after-interrupt", base, tr.Finish())
}

func TestRunHonorsInterrupt(t *testing.T) {
	st := resumeDataset(t, data.TaskSVM)
	p := gd.Params{Task: data.TaskSVM, Format: st.Dataset.Format, Tolerance: 1e-9, MaxIter: 20}
	plan := gd.NewBGD(p)
	cause := errors.New("stop")
	_, err := engine.Run(cluster.New(cluster.Default()), st, &plan, engine.Options{
		Seed:      11,
		Interrupt: func() error { return cause },
	})
	if !errors.Is(err, engine.ErrInterrupted) || !errors.Is(err, cause) {
		t.Fatalf("Run did not propagate the interrupt: %v", err)
	}
}
