package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/sampling"
	"ml4all/internal/storage"
)

// TrainState is the serializable snapshot of a Trainer between two Steps:
// everything a fresh process needs to continue the run bit-identically.
// Model state (weights, operator context variables), loop state (iteration
// counter, delta history, termination flags), physical-execution state (the
// sampling RNG position as a draw count, the lazy-transform memo, the
// per-partition op-cost cache, the shuffled-partition sampler queue) and the
// simulator snapshot (clock, accounting, jitter position, cache residency)
// are all captured by value. The data units themselves are NOT serialized —
// they are reproduced on Resume by re-running the (deterministic) Transform
// UDF over the same raw dataset, which is why a resumed run needs the same
// store the checkpointed run used.
type TrainState struct {
	PlanName string
	Seed     int64

	// Loop position and model state.
	Iter       int
	StepSize   float64
	BatchSize  int
	Weights    linalg.Vector
	Prev       linalg.Vector
	Vars       map[string]any
	Deltas     []float64
	Trace      []linalg.Vector
	FinalDelta float64
	Converged  bool
	Budgeted   bool
	Diverged   bool
	Done       bool

	// Physical-execution state.
	RNGDraws   uint64 // sampling-stream position: draws consumed since seeding
	UnitsReady bool   // whether the unit memo existed at checkpoint time
	Lazy       []bool // lazy-transform memo: which units are parsed
	OpsByPart  []float64
	Sampler    []int // shuffled-partition queue; nil for stateless samplers

	// Simulator state.
	StartClock cluster.Seconds // sim clock at trainer start (Time baseline)
	Sim        cluster.SimState
}

func init() {
	// Context.Vars is a map[string]any; register the concrete types the
	// stock operators store there so gob can round-trip them. Custom UDFs
	// storing other types must gob.Register them before Encode.
	gob.Register(linalg.Vector{})
	gob.Register(int(0))
	gob.Register(float64(0))
	gob.Register(string(""))
	gob.Register(bool(false))
}

// Encode serializes the state with encoding/gob.
func (st *TrainState) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("engine: encoding train state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTrainState deserializes a state produced by Encode.
func DecodeTrainState(b []byte) (*TrainState, error) {
	st := &TrainState{}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(st); err != nil {
		return nil, fmt.Errorf("engine: decoding train state: %w", err)
	}
	return st, nil
}

// Checkpoint captures the trainer's full state between Steps. Everything the
// stock operators touch is deep-copied, so the trainer may keep running
// after the snapshot — the resume-equivalence tests rely on checkpointing a
// run and letting the original finish undisturbed. Custom UDF state in
// Context.Vars is covered by the same guarantee only when stored as
// linalg.Vector or immutable values (numbers, strings, bools); other mutable
// types are captured by reference and must not be mutated in place after a
// checkpoint is taken.
func (t *Trainer) Checkpoint() (*TrainState, error) {
	ctx := t.ex.ctx
	st := &TrainState{
		PlanName:   t.plan.Name(),
		Seed:       t.ex.seed,
		Iter:       ctx.Iter,
		StepSize:   ctx.Step,
		BatchSize:  ctx.BatchSize,
		Weights:    ctx.Weights.Clone(),
		Prev:       t.prev.Clone(),
		Vars:       cloneVars(ctx.Vars),
		Deltas:     append([]float64(nil), t.res.Deltas...),
		FinalDelta: t.res.FinalDelta,
		Converged:  t.res.Converged,
		Budgeted:   t.res.Budgeted,
		Diverged:   t.res.Diverged,
		Done:       t.done,
		RNGDraws:   t.rngDraws(),
		UnitsReady: t.ex.mat != nil || t.ex.rows != nil,
		Lazy:       append([]bool(nil), t.ex.lazy...),
		OpsByPart:  append([]float64(nil), t.ex.opsByPart...),
		StartClock: t.start,
		Sim:        t.sim.Snapshot(),
	}
	for _, w := range t.res.Trace {
		st.Trace = append(st.Trace, w.Clone())
	}
	if sp, ok := t.ex.sampler.(sampling.Stateful); ok {
		st.Sampler = sp.StateSnapshot()
	}
	return st, nil
}

// Resume reconstructs a Trainer from a checkpoint on a fresh simulator built
// from the same cluster configuration, continuing the run bit-identically:
// the simulator is rewound to the snapshot, the RNG stream is fast-forwarded
// to its recorded position, and the unit memo is reproduced by re-running
// the plan's Transform over the store's raw data (charging nothing — the
// restored clock already includes those costs). The plan must be the one the
// checkpoint was taken from and the store must hold the same dataset and
// layout; Options.Seed is ignored in favor of the checkpoint's.
func Resume(sim *cluster.Sim, store *storage.Store, plan *gd.Plan, opts Options, st *TrainState) (*Trainer, error) {
	if plan.Name() != st.PlanName {
		return nil, fmt.Errorf("engine: resuming %s checkpoint with plan %s", st.PlanName, plan.Name())
	}
	if st.Lazy != nil && len(st.Lazy) != store.Dataset.N() {
		return nil, fmt.Errorf("engine: checkpoint memo covers %d units, store holds %d", len(st.Lazy), store.Dataset.N())
	}
	if len(st.Weights) != store.Dataset.NumFeatures {
		return nil, fmt.Errorf("engine: checkpoint weights have %d features, store dataset has %d",
			len(st.Weights), store.Dataset.NumFeatures)
	}
	if err := sim.Restore(st.Sim); err != nil {
		return nil, err
	}
	o := opts
	o.Seed = st.Seed
	t, err := newTrainerShell(sim, store, plan, o)
	if err != nil {
		return nil, err
	}
	t.start = st.StartClock

	ctx := t.ex.ctx
	ctx.Iter = st.Iter
	ctx.Step = st.StepSize
	ctx.BatchSize = st.BatchSize
	ctx.Weights = st.Weights.Clone()
	ctx.Vars = cloneVars(st.Vars)
	if ctx.Vars == nil {
		ctx.Vars = map[string]any{}
	}

	if err := t.ex.rebuildRows(st); err != nil {
		return nil, err
	}
	t.ex.opsByPart = append([]float64(nil), st.OpsByPart...)

	if err := t.initSampler(); err != nil {
		return nil, err
	}
	if t.src != nil {
		t.src.Skip(st.RNGDraws)
	}
	if sp, ok := t.ex.sampler.(sampling.Stateful); ok {
		sp.StateRestore(st.Sampler)
	}

	t.res = &Result{
		PlanName:   plan.Name(),
		Deltas:     append([]float64(nil), st.Deltas...),
		FinalDelta: st.FinalDelta,
		Converged:  st.Converged,
		Budgeted:   st.Budgeted,
		Diverged:   st.Diverged,
	}
	for _, w := range st.Trace {
		t.res.Trace = append(t.res.Trace, w.Clone())
	}
	t.prev = st.Prev.Clone()
	t.done = st.Done
	return t, nil
}

// rebuildRows reproduces the executor's transformed data from a checkpoint:
// with a stock transformer the dataset's columnar arena is adopted directly
// (nothing to re-parse); custom UDFs physically re-run (Transform UDFs are
// required to be deterministic functions of the raw unit). No simulated cost
// is charged either way — the restored clock already paid for every parse
// the original run performed.
func (ex *executor) rebuildRows(st *TrainState) error {
	if !st.UnitsReady {
		return nil // checkpoint predates any transform; lazy init will run
	}
	if ex.stockTransformer() {
		ex.mat = ex.store.Dataset.Mat
		ex.lazy = append([]bool(nil), st.Lazy...)
		return nil
	}
	ds := ex.store.Dataset
	ex.rows = make([]data.Row, ds.N())
	ex.lazy = append([]bool(nil), st.Lazy...)
	guard := ex.ctx.Guard()
	parsed := func(i int) bool { return ex.lazy == nil || ex.lazy[i] }
	err := ex.runTasks(len(ex.shards), func(task int) error {
		sh := ex.shards[task]
		for i := sh.Lo; i < sh.Hi; i++ {
			if !parsed(i) {
				continue
			}
			r, err := ex.plan.Transformer.Transform(ds.Raw[i], ex.ctx)
			if err != nil {
				return fmt.Errorf("engine: rebuilding unit %d: %w", i, err)
			}
			ex.rows[i] = r
		}
		return nil
	})
	if err != nil {
		return err
	}
	return guard.Check(ex.ctx)
}

// cloneVars copies a context-variable map, cloning vector values so the copy
// shares no memory with the live context. Non-vector values are copied by
// assignment: immutable for everything the stock operators store; custom
// mutable types ride along by reference (see the Checkpoint contract).
func cloneVars(in map[string]any) map[string]any {
	if in == nil {
		return nil
	}
	out := make(map[string]any, len(in))
	for k, v := range in {
		if vec, ok := v.(linalg.Vector); ok {
			out[k] = vec.Clone()
		} else {
			out[k] = v
		}
	}
	return out
}
