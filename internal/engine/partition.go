package engine

import (
	"math/rand"

	"ml4all/internal/data"
	"ml4all/internal/storage"
)

// shardUnitTarget caps how many data units one shard (one worker-pool task)
// holds. Shards are carved from storage partitions by Store.Shards, so the
// boundaries depend only on the dataset layout — never on the worker count —
// which is what keeps the partial-sum structure, and therefore every
// floating-point result, identical between Workers=1 and Workers=N. The value
// trades scheduling granularity against per-task overhead: 4096 units keeps a
// paper-scale 2 MB partition at a handful of tasks while giving an 8-way pool
// enough slack to balance.
const shardUnitTarget = 4096

// batchChunkTarget plays the same role for sampled batches: a drawn index
// list is cut into contiguous chunks of at most this many positions. Chunk
// boundaries depend only on the batch length, keeping MGD/SGD results
// worker-count independent too.
const batchChunkTarget = 1024

// defaultBlockSize is the row-block width of the batched compute path when
// Options.BlockSize is unset: spans are carved into runs of this many rows
// and each run is one gd.BatchComputer.ComputeBlock call. 512 rows keeps a
// block's margins (4 KB) and a paper-scale dense block (512×50 features,
// 200 KB) L2-resident while amortizing the per-call dispatch to noise; block
// boundaries derive from span boundaries alone, so — like shards — they
// never depend on the worker count, and the kernels are bit-identical to the
// per-row path for every width anyway.
const defaultBlockSize = data.DefaultBlockSize

// span is a half-open range of positions [lo, hi) processed as one pool task.
type span struct{ lo, hi int }

// chunkSpans cuts [0, n) into near-equal contiguous spans of at most max
// positions, via the same storage.SplitEven boundary rule shards use. It is
// deterministic in n and max only. The returned slice reuses the executor's
// span scratch and is only valid until the next call.
func (ex *executor) chunkSpans(n, max int) []span {
	spans := ex.spanBuf[:0]
	storage.SplitEven(0, n, max, func(lo, hi int) {
		spans = append(spans, span{lo: lo, hi: hi})
	})
	ex.spanBuf = spans
	return spans
}

// runTasks executes fn(task) for every task in [0, n), fanning out over the
// executor's worker pool, and returns the error of the lowest-numbered
// failing task — exactly what a serial in-order execution surfaces first.
// With one effective worker (Workers: 1, or fewer tasks than workers would
// help) it degenerates to an inline ordered loop — the serial path.
//
// Workers pull task indices from a shared counter, so scheduling is dynamic,
// but tasks must write only task-private state (per-shard accumulators,
// disjoint unit ranges); the caller merges results in task order afterwards,
// which is what makes scheduling invisible to the numerics. Once a task
// fails, higher-numbered pending tasks are skipped — they cannot change the
// winning error — so a failure cancels the bulk of the remaining work, while
// lower-numbered tasks still run to keep the selected error independent of
// scheduling.
func (ex *executor) runTasks(n int, fn func(task int) error) error {
	workers := ex.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := safeCall(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	if cap(ex.errBuf) < n {
		ex.errBuf = make([]error, n)
	}
	errs := ex.errBuf[:n]
	for i := range errs {
		errs[i] = nil
	}
	// The pool scaffolding (shared worker closure, counters, wait group)
	// lives on the executor and is reused across passes, so a parallel pass
	// costs one goroutine spawn per worker and no per-pass control-state
	// allocation. All fields are written before the spawns and read after
	// Wait, so reuse is race-free.
	ex.taskFn = fn
	ex.taskN = n
	ex.taskNext.Store(0)
	ex.taskMinFailed.Store(int64(n))
	if ex.workFn == nil {
		ex.workFn = func() {
			defer ex.taskWG.Done()
			n := ex.taskN
			for {
				i := int(ex.taskNext.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) >= ex.taskMinFailed.Load() {
					continue
				}
				if err := safeCall(ex.taskFn, i); err != nil {
					ex.errBuf[i] = err
					for {
						cur := ex.taskMinFailed.Load()
						if int64(i) >= cur || ex.taskMinFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}
	}
	ex.taskWG.Add(workers)
	for w := 0; w < workers; w++ {
		go ex.workFn()
	}
	ex.taskWG.Wait()
	ex.taskFn = nil
	return firstError(errs)
}

// splitSeed derives an independent RNG seed from the run seed and a task key
// using a splitmix64-style finalizer, so per-shard streams are decorrelated
// without sharing any state with the driver's sampling RNG.
func splitSeed(seed int64, key uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(key+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// shardRNG returns the deterministic RNG for one shard of one compute pass.
// The stream is keyed by (run seed, iteration, shard) — never by worker — so
// a RandomizedComputer sees the same randomness for a given data unit no
// matter how many workers execute the pass or which worker picks the shard
// up.
func (ex *executor) shardRNG(iter, shard int) *rand.Rand {
	key := uint64(iter)<<32 | uint64(uint32(shard))
	return rand.New(rand.NewSource(splitSeed(ex.seed, key)))
}

// firstError returns the error of the lowest-numbered task, matching what a
// serial in-order execution would have surfaced first.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
