package engine

import (
	"fmt"
	"math"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
)

// forEachFastBackend runs fn once per kernel backend executable on this
// host — always the portable fast-go loops, plus the SIMD backend when the
// machine and build carry one — with dispatch pinned for the duration. The
// engine-level epsilon contract must hold for every backend the fast tier
// can resolve to, not just whichever one detection picked.
func forEachFastBackend(t *testing.T, fn func(t *testing.T)) {
	backends := []bool{false}
	if linalg.SIMDAvailable() {
		backends = append(backends, true)
	}
	for _, simd := range backends {
		simd := simd
		name := linalg.BackendFastGo
		if simd {
			prev := linalg.SetSIMD(true)
			name = linalg.FastBackend()
			linalg.SetSIMD(prev)
		}
		t.Run(name, func(t *testing.T) {
			prev := linalg.SetSIMD(simd)
			defer linalg.SetSIMD(prev)
			fn(t)
		})
	}
}

// The fast-math tier's accuracy contract, pinned end to end: training with
// Options.FastMath must agree with the bit-exact tier to a per-element
// relative epsilon on every number the kernels can influence — final weights,
// per-iteration deltas — while taking the same number of iterations and the
// same termination path. The bound below is deliberately far above the
// per-kernel error (reassociated dots are ~1e-15 off, ExpFast < 2e-8) and far
// below anything a wrong kernel could pass: 25 iterations of amplification
// through a wrong coefficient or a dropped row lands orders of magnitude
// outside it.
const fastEps = 1e-6

// relDiff is the per-element comparison metric: absolute difference scaled by
// max(1, |a|, |b|), so tiny weights are compared absolutely and large ones
// relatively.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// withinEpsilon asserts the fast-tier result tracks the exact-tier result to
// fastEps per element, with identical iteration counts and termination flags.
func withinEpsilon(t *testing.T, label string, exact, fast *Result) {
	t.Helper()
	if len(fast.Weights) != len(exact.Weights) {
		t.Fatalf("%s: weight dimension %d != %d", label, len(fast.Weights), len(exact.Weights))
	}
	for i := range fast.Weights {
		if d := relDiff(exact.Weights[i], fast.Weights[i]); d > fastEps {
			t.Fatalf("%s: weight[%d] exact %g fast %g (rel err %.3g > %.3g)",
				label, i, exact.Weights[i], fast.Weights[i], d, fastEps)
		}
	}
	if fast.Iterations != exact.Iterations {
		t.Fatalf("%s: iterations %d != %d", label, fast.Iterations, exact.Iterations)
	}
	if len(fast.Deltas) != len(exact.Deltas) {
		t.Fatalf("%s: delta count %d != %d", label, len(fast.Deltas), len(exact.Deltas))
	}
	for i := range fast.Deltas {
		if d := relDiff(exact.Deltas[i], fast.Deltas[i]); d > fastEps {
			t.Fatalf("%s: delta[%d] exact %g fast %g (rel err %.3g > %.3g)",
				label, i, exact.Deltas[i], fast.Deltas[i], d, fastEps)
		}
	}
	if fast.Converged != exact.Converged || fast.Budgeted != exact.Budgeted || fast.Diverged != exact.Diverged {
		t.Fatalf("%s: termination flags diverge (fast %v/%v/%v, exact %v/%v/%v)", label,
			fast.Converged, fast.Budgeted, fast.Diverged,
			exact.Converged, exact.Budgeted, exact.Diverged)
	}
}

// TestFastMathWithinEpsilon sweeps the fast tier against the exact tier over
// every loss (via the three tasks), both arena layouts, block widths chosen to
// land on every kernel tail path — 5 and 13 are not multiples of the 4-wide
// accumulator count or the 8-wide unroll, 512 is the default — and 1 and 8
// workers. Two invariants per cell: the numerics stay inside fastEps, and the
// simulated clock comes out strictly cheaper (Sim.CostComputeFast charges the
// calibrated fast-tier flop rate for the identical block carving).
func TestFastMathWithinEpsilon(t *testing.T) {
	forEachFastBackend(t, testFastMathWithinEpsilon)
}

func testFastMathWithinEpsilon(t *testing.T) {
	tasks := []data.TaskKind{data.TaskSVM, data.TaskLogisticRegression, data.TaskLinearRegression}
	const n = 500
	blockSizes := []int{5, 13, 512}
	workerCounts := []int{1, 8}
	for _, task := range tasks {
		for _, dense := range []bool{true, false} {
			ds := layoutDataset(t, task, dense, n)
			st := buildStore(t, ds, 2<<10)
			p := gd.Params{Task: task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 25, Lambda: 0.05, BatchSize: 32}
			plan := gd.NewBGD(p)
			layout := "csr"
			if dense {
				layout = "dense"
			}
			for _, bs := range blockSizes {
				for _, workers := range workerCounts {
					label := fmt.Sprintf("%v/%s/block=%d/workers=%d", task, layout, bs, workers)
					opts := Options{Seed: 7, Workers: workers, BlockSize: bs}
					exact, err := Run(cluster.New(cluster.Default()), st, &plan, opts)
					if err != nil {
						t.Fatalf("%s: exact: %v", label, err)
					}
					opts.FastMath = true
					fast, err := Run(cluster.New(cluster.Default()), st, &plan, opts)
					if err != nil {
						t.Fatalf("%s: fast: %v", label, err)
					}
					withinEpsilon(t, label, exact, fast)
					if fast.Time >= exact.Time {
						t.Fatalf("%s: fast sim time %g not below exact %g", label, fast.Time, exact.Time)
					}
				}
			}
		}
	}
}

// TestFastMathWithinEpsilonAllPlans runs the same fast-vs-exact comparison
// over the other batch-capable plan families — MGD (gathered sample blocks),
// SVRG (two-slot accumulator, both halves through the fast kernels) and
// line-search BGD (LossBlockFast on the probe phases) — at the default block
// width.
func TestFastMathWithinEpsilonAllPlans(t *testing.T) {
	forEachFastBackend(t, testFastMathWithinEpsilonAllPlans)
}

func testFastMathWithinEpsilonAllPlans(t *testing.T) {
	tasks := []data.TaskKind{data.TaskSVM, data.TaskLogisticRegression, data.TaskLinearRegression}
	const n = 500
	for _, task := range tasks {
		for _, dense := range []bool{true, false} {
			ds := layoutDataset(t, task, dense, n)
			st := buildStore(t, ds, 2<<10)
			p := gd.Params{Task: task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 25, Lambda: 0.05, BatchSize: 32}
			plans := []gd.Plan{
				gd.NewMGD(p, gd.Eager, gd.ShuffledPartition),
				gd.NewSVRG(p, 5),
				gd.NewLineSearchBGD(p, 0.5),
			}
			layout := "csr"
			if dense {
				layout = "dense"
			}
			for _, plan := range plans {
				label := fmt.Sprintf("%v/%s/%s", task, layout, plan.Name())
				exact, err := Run(cluster.New(cluster.Default()), st, &plan, Options{Seed: 7, Workers: 1})
				if err != nil {
					t.Fatalf("%s: exact: %v", label, err)
				}
				fast, err := Run(cluster.New(cluster.Default()), st, &plan, Options{Seed: 7, Workers: 1, FastMath: true})
				if err != nil {
					t.Fatalf("%s: fast: %v", label, err)
				}
				withinEpsilon(t, label, exact, fast)
				if fast.Time >= exact.Time {
					t.Fatalf("%s: fast sim time %g not below exact %g", label, fast.Time, exact.Time)
				}
			}
		}
	}
}

// TestFastMathConvergenceQuality pins the optimization-quality half of the
// contract: trained to an actual convergence (tolerance hit, not budget), the
// fast tier must reach the same epsilon within a tight iteration band of the
// exact tier — the kernel tolerance must not slow or destabilize descent.
func TestFastMathConvergenceQuality(t *testing.T) {
	forEachFastBackend(t, testFastMathConvergenceQuality)
}

func testFastMathConvergenceQuality(t *testing.T) {
	for _, task := range []data.TaskKind{data.TaskSVM, data.TaskLogisticRegression, data.TaskLinearRegression} {
		ds := layoutDataset(t, task, true, 400)
		st := buildStore(t, ds, 2<<10)
		p := gd.Params{Task: task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 2000, Lambda: 0.05}
		plan := gd.NewBGD(p)

		exact, err := Run(cluster.New(cluster.Default()), st, &plan, Options{Seed: 7, Workers: 1})
		if err != nil {
			t.Fatalf("%v: exact: %v", task, err)
		}
		fast, err := Run(cluster.New(cluster.Default()), st, &plan, Options{Seed: 7, Workers: 1, FastMath: true})
		if err != nil {
			t.Fatalf("%v: fast: %v", task, err)
		}
		if !exact.Converged {
			t.Fatalf("%v: exact tier did not converge in %d iterations", task, exact.Iterations)
		}
		if !fast.Converged {
			t.Fatalf("%v: fast tier did not converge (exact did, in %d iterations)", task, exact.Iterations)
		}
		// Same tolerance, same descent: allow a band of ±2 iterations or ±2%,
		// whichever is wider — a tier that needed materially more steps to
		// reach the epsilon would be losing real optimization quality.
		band := exact.Iterations / 50
		if band < 2 {
			band = 2
		}
		diff := fast.Iterations - exact.Iterations
		if diff < 0 {
			diff = -diff
		}
		if diff > band {
			t.Fatalf("%v: fast tier converged in %d iterations, exact in %d (band ±%d)",
				task, fast.Iterations, exact.Iterations, band)
		}
	}
}

// TestFastMathPerRowPlanUnaffected pins the dispatch boundary: a Computer
// without block kernels (a per-row UDF) must produce bitwise-identical
// results — numerics, time and accounting — whether FastMath is requested or
// not, because the fast tier only exists inside the batched kernels.
func TestFastMathPerRowPlanUnaffected(t *testing.T) {
	ds := layoutDataset(t, data.TaskLogisticRegression, true, 300)
	st := buildStore(t, ds, 2<<10)
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 20, Lambda: 0.05}
	plan := gd.NewBGD(p)
	plan.Computer = rowOnly{plan.Computer}

	base, err := Run(cluster.New(cluster.Default()), st, &plan, Options{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(cluster.New(cluster.Default()), st, &plan, Options{Seed: 7, Workers: 1, FastMath: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "per-row/fastmath", base, got, 1)
}
