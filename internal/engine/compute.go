package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
)

// This file holds the two execution paths of the numeric phases. The split
// the whole design hangs on: real work (parsing, gradient math, loss sums)
// fans out over the worker pool, while every sim.Cost*/Run*/Transfer call
// stays on the driver goroutine in a fixed order. The serial path is the
// parallel path with one worker — same shards, same per-shard partials, same
// ordered tree reduction — so Workers changes wall-clock time and nothing
// else.
//
// Since the columnar-arena refactor the stock-transformer paths never
// materialize per-row objects at all: workers index the dataset's Matrix
// directly (ex.row is a zero-copy view) and the per-task accumulators are
// carved from one flat arena, so a steady-state compute pass performs no
// heap allocation.

// eagerTransform parses the whole dataset upfront — with a stock transformer
// the engine adopts the dataset's columnar arena as-is (re-parsing would
// reproduce it bit-for-bit); custom UDFs fan the real parsing out over the
// worker pool, one task per shard writing a disjoint slice of the row memo.
// Either way the simulated cost is charged one distributed task per partition
// (or locally when the dataset is a single partition), exactly as a serial
// execution would.
func (ex *executor) eagerTransform() error {
	ds := ex.store.Dataset
	if ex.stockTransformer() {
		ex.mat = ds.Mat
	} else {
		ex.rows = make([]data.Row, ds.N())
		guard := ex.ctx.Guard()
		err := ex.runTasks(len(ex.shards), func(task int) error {
			sh := ex.shards[task]
			for i := sh.Lo; i < sh.Hi; i++ {
				r, err := ex.plan.Transformer.Transform(ds.Raw[i], ex.ctx)
				if err != nil {
					return fmt.Errorf("engine: transform unit %d: %w", i, err)
				}
				ex.rows[i] = r
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := guard.Check(ex.ctx); err != nil {
			return err
		}
	}
	costs := ex.costBuf[:0]
	for _, p := range ex.store.Partitions {
		c := ex.sim.CostReadPartition(p, ex.store.Layout)
		c += ex.sim.CostParse(p.Units(), p.Bytes)
		costs = append(costs, c)
	}
	ex.costBuf = costs
	mode := ex.plan.Mode
	if ex.plan.TransformMode != gd.AutoMode {
		mode = ex.plan.TransformMode
	}
	if ex.distributedInputMode(ex.store.TotalBytes, mode) {
		ex.sim.RunWaves(costs)
	} else {
		var sum cluster.Seconds
		for _, c := range costs {
			sum += c
		}
		ex.sim.RunLocal(sum)
	}
	return nil
}

// ensureLazyBuffers initializes the lazy-transformation memo once, on the
// driver, before any parallel region touches it. With the stock transformer
// the dataset's arena is read directly (re-parsing Raw would reproduce it
// bit-for-bit; the per-touch parse cost is still charged); otherwise rows are
// parsed on first touch and memoized.
func (ex *executor) ensureLazyBuffers() {
	if ex.mat != nil || ex.rows != nil {
		return
	}
	if ex.stockTransformer() {
		ex.mat = ex.store.Dataset.Mat
		ex.lazy = nil
	} else {
		n := ex.store.Dataset.N()
		ex.rows = make([]data.Row, n)
		ex.lazy = make([]bool, n)
	}
}

// transformRow parses unit i under lazy transformation if it has not been
// parsed yet. Callers hand distinct goroutines disjoint index sets, so the
// memo writes are race-free; transformRow itself performs no sim calls.
func (ex *executor) transformRow(i int) error {
	if ex.lazy == nil || ex.lazy[i] {
		return nil
	}
	r, err := ex.plan.Transformer.Transform(ex.store.Dataset.Raw[i], ex.ctx)
	if err != nil {
		return fmt.Errorf("engine: lazy transform unit %d: %w", i, err)
	}
	ex.rows[i] = r
	ex.lazy[i] = true
	return nil
}

// opsSumRange accumulates the Computer's per-unit op estimate over units
// [lo, hi) in index order — the quantity the driver charges a compute task
// with. On a dense arena every row has the same stored-value count, so the
// per-row Ops interface call is hoisted to one evaluation per range (the
// blocked analogue of the kernel dispatch); the float accumulation stays one
// add per row, keeping the sum bit-identical to the naive per-row loop.
func (ex *executor) opsSumRange(lo, hi int) float64 {
	var ops float64
	if m := ex.mat; m != nil && m.IsDense() {
		per := ex.plan.Computer.Ops(m.Stride())
		for i := lo; i < hi; i++ {
			ops += per
		}
		return ops
	}
	for i := lo; i < hi; i++ {
		ops += ex.plan.Computer.Ops(ex.rowNNZ(i))
	}
	return ops
}

// opsSumIdx is opsSumRange over an explicit unit-index list (sampled
// batches), with the same dense hoist and the same add-per-row order.
func (ex *executor) opsSumIdx(idx []int) float64 {
	var ops float64
	if m := ex.mat; m != nil && m.IsDense() {
		per := ex.plan.Computer.Ops(m.Stride())
		for range idx {
			ops += per
		}
		return ops
	}
	for _, i := range idx {
		ops += ex.plan.Computer.Ops(ex.rowNNZ(i))
	}
	return ops
}

// costComputeCPU charges one compute task's CPU cost: the per-block
// amortized unit overhead (Sim.CostCompute, see the calibration table at
// cluster.ComputeUnitOverheadFrac) when this pass actually executes
// blocked, the full per-row overhead (Sim.CostCPU) otherwise. The
// eligibility mirrors computeSpan exactly — a BatchComputer still runs (and
// is billed) row by row when the pass reads a custom-transformer row memo
// instead of the arena, or when the computer is randomized. transform is
// the pass's lazy-scan flag.
func (ex *executor) costComputeCPU(units int, ops float64, transform bool) cluster.Seconds {
	if ex.batch != nil && ex.mat != nil && !(transform && ex.lazy != nil) {
		if _, randomized := ex.plan.Computer.(gd.RandomizedComputer); !randomized {
			if ex.fast {
				return ex.sim.CostComputeFast(units, ops)
			}
			return ex.sim.CostCompute(units, ops)
		}
	}
	return ex.sim.CostCPU(units, ops)
}

// parseCost returns the simulated CPU cost of (re-)parsing unit i, charged
// per touch under lazy transformation regardless of memoization — lazy
// physically re-parses every sampled unit each time it is drawn.
func (ex *executor) parseCost(i int) cluster.Seconds {
	return ex.sim.CostParse(1, int64(len(ex.store.Dataset.Raw[i]))+1)
}

// passPartials carves len(spans) zeroed accumulators of dimension dim out of
// the executor's flat arena, reusing the backing array across passes: one
// (amortized-zero) allocation per pass instead of one pooled buffer per
// shard. The partials reduce in span order, so the result is bit-identical
// to individually-allocated buffers.
func (ex *executor) passPartials(nspans, dim int) []linalg.Vector {
	need := nspans * dim
	if cap(ex.accArena) < need {
		ex.accArena = make([]float64, need)
	}
	arena := ex.accArena[:need]
	for i := range arena {
		arena[i] = 0
	}
	if cap(ex.partials) < nspans {
		ex.partials = make([]linalg.Vector, nspans)
	}
	partials := ex.partials[:nspans]
	for t := 0; t < nspans; t++ {
		partials[t] = arena[t*dim : (t+1)*dim]
	}
	return partials
}

// computePass is the shared heart of both compute paths: it runs the plan's
// Computer over len(spans) pool tasks, each position mapped to a dataset unit
// by idx (nil means identity — position IS the unit index), each task
// accumulating into its own slice of the accumulator arena, and folds the
// partials into acc with an ordered tree reduction. When transform is set
// (lazy full scans) workers parse-and-memoize on the fly; spans must then
// address disjoint unit ranges. The context guard enforces the gd.Computer
// contract around the whole pass.
func (ex *executor) computePass(acc linalg.Vector, spans []span, idx []int, transform bool) error {
	if len(spans) == 0 {
		return nil
	}
	ctx := ex.ctx
	guard := ctx.Guard()
	partials := ex.passPartials(len(spans), len(acc))

	var err error
	if ex.workers <= 1 || len(spans) == 1 {
		// Serial fast path: same spans, same partials, same reduction — no
		// task closure, no pool. Panic isolation still applies: a UDF blowing
		// up here must fail the run, not the process, same as on the pool.
		for task := 0; task < len(spans); task++ {
			if err = ex.safeComputeSpan(task, spans, partials, idx, transform); err != nil {
				break
			}
		}
	} else {
		err = ex.runTasks(len(spans), func(task int) error {
			return ex.computeSpan(task, spans, partials, idx, transform)
		})
	}
	if err == nil {
		err = guard.Check(ctx)
	}
	if err == nil {
		acc.Add(linalg.ReduceTree(partials))
	}
	return err
}

// computeSpan executes one compute-pass task: the plan's Computer over every
// position of spans[task], accumulating into partials[task]. On the stock
// arena path with a batch-capable Computer the span is carved into
// fixed-size row blocks (ex.blockSize, boundaries derived from the span
// alone — never from workers) and executed one devirtualized ComputeBlock
// call per block; the per-row loops below remain for custom transformers,
// randomized computers and non-batch Computer UDFs, and produce bit-identical
// accumulators (the BatchComputer contract the block property test pins).
func (ex *executor) computeSpan(task int, spans []span, partials []linalg.Vector, idx []int, transform bool) error {
	plan, ctx := ex.plan, ex.ctx
	part := partials[task]
	rc, randomized := plan.Computer.(gd.RandomizedComputer)
	var rng *rand.Rand
	if randomized {
		rng = ex.shardRNG(ctx.Iter, task)
	}
	sp := spans[task]
	// Lazy plans on the stock transformer read the arena directly — there is
	// no memo to fill, so the transform step degenerates to a no-op and the
	// fast paths below stay eligible.
	transform = transform && ex.lazy != nil
	if mat := ex.mat; mat != nil && !transform && !randomized {
		if bc := ex.batch; bc != nil {
			// Blocked stock path: one kernel call per row block.
			for lo := sp.lo; lo < sp.hi; lo += ex.blockSize {
				hi := lo + ex.blockSize
				if hi > sp.hi {
					hi = sp.hi
				}
				var blk data.Block
				if idx == nil {
					blk = mat.Block(lo, hi)
				} else {
					blk = mat.GatherBlock(idx[lo:hi])
				}
				bc.ComputeBlock(blk, ctx, part)
			}
			return nil
		}
		// Per-row stock path: straight arena scan, no memo/RNG branch.
		if idx == nil {
			for pos := sp.lo; pos < sp.hi; pos++ {
				plan.Computer.Compute(mat.Row(pos), ctx, part)
			}
		} else {
			for pos := sp.lo; pos < sp.hi; pos++ {
				plan.Computer.Compute(mat.Row(idx[pos]), ctx, part)
			}
		}
		return nil
	}
	for pos := sp.lo; pos < sp.hi; pos++ {
		i := pos
		if idx != nil {
			i = idx[pos]
		}
		if transform {
			if err := ex.transformRow(i); err != nil {
				return err
			}
		}
		if randomized {
			rc.ComputeRand(ex.row(i), ctx, part, rng)
		} else {
			plan.Computer.Compute(ex.row(i), ctx, part)
		}
	}
	return nil
}

// iteration runs Sample (optional) + Transform (if lazy) + Compute for one
// iteration and returns the aggregated accumulator UC. The accumulator is
// engine-owned scratch reused across iterations (Updaters must copy whatever
// they keep — the stock ones all clone).
func (ex *executor) iteration() (linalg.Vector, error) {
	plan, ctx := ex.plan, ex.ctx
	d := ctx.NumFeatures
	dim := plan.Computer.AccDim(d)
	if cap(ex.accBuf) < dim {
		ex.accBuf = linalg.NewVector(dim)
	}
	acc := ex.accBuf[:dim]
	acc.Zero()

	fullBatch := plan.Sampling == gd.NoSampling
	if plan.Algorithm == gd.SVRG && plan.UpdateFrequency > 0 && ctx.Iter%plan.UpdateFrequency == 1 {
		fullBatch = true // SVRG snapshot iteration sweeps everything
	}

	if fullBatch {
		ctx.BatchSize = ctx.NumPoints
		return acc, ex.computeFull(acc)
	}

	ctx.BatchSize = plan.BatchSize
	idx, err := ex.sampler.Draw(ex.senv, plan.BatchSize)
	if err != nil {
		return nil, err
	}
	if plan.Algorithm != gd.SVRG {
		// Bernoulli returns a binomially-distributed count; Update takes
		// the mean over what was actually drawn.
		ctx.BatchSize = len(idx)
	}
	return acc, ex.computeBatch(idx, acc)
}

// computeFull runs Compute over every unit. The numeric work fans out one
// pool task per shard; the simulated cost is then charged one task per
// partition (reads plus per-unit parse under lazy plus CPU), in partition
// order — the identical sim call sequence a serial run issues.
func (ex *executor) computeFull(acc linalg.Vector) error {
	plan := ex.plan
	lazy := plan.Transform == gd.Lazy
	if lazy {
		ex.ensureLazyBuffers()
	}
	if ex.fullSpans == nil {
		ex.fullSpans = make([]span, len(ex.shards))
		for s, sh := range ex.shards {
			ex.fullSpans[s] = span{lo: sh.Lo, hi: sh.Hi}
		}
	}
	if err := ex.computePass(acc, ex.fullSpans, nil, lazy); err != nil {
		return err
	}

	// Ops is a pure function of a unit's nnz and a full pass leaves every
	// unit parsed, so the per-partition ops sums are iteration-invariant:
	// compute them once on the first full pass and reuse them after,
	// keeping the driver's per-iteration cost loop O(partitions) instead of
	// O(units) for eager plans. (Lazy plans still charge the per-touch
	// parse cost every pass — that is the point of lazy costing.)
	cacheOps := ex.opsByPart == nil
	if cacheOps {
		ex.opsByPart = make([]float64, len(ex.store.Partitions))
	}
	costs := ex.costBuf[:0]
	for pi, p := range ex.store.Partitions {
		c := ex.sim.CostReadPartition(p, ex.store.Layout)
		if lazy {
			for i := p.Lo; i < p.Hi; i++ {
				c += ex.parseCost(i)
			}
		}
		if cacheOps {
			ex.opsByPart[pi] = ex.opsSumRange(p.Lo, p.Hi)
		}
		c += ex.costComputeCPU(p.Units(), ex.opsByPart[pi], lazy)
		costs = append(costs, c)
	}
	ex.costBuf = costs
	if ex.distributedInput(ex.store.TotalBytes) {
		ex.sim.RunWaves(costs)
		// Partial aggregates (one per executor) reduce to the driver.
		execs := ex.sim.Cfg.Executors()
		ex.sim.Transfer(int64(execs*len(acc))*8, 1)
	} else {
		var sum cluster.Seconds
		for _, c := range costs {
			sum += c
		}
		ex.sim.RunLocal(sum)
	}
	return nil
}

// parseBatch memoizes every not-yet-parsed unit a sampled batch touches,
// fanning the parsing out over the pool. Deduplication keeps the parallel
// writes disjoint: a batch may draw the same unit twice (random-partition
// sampling does), and two tasks must not both write its memo slot.
func (ex *executor) parseBatch(idx []int) error {
	if ex.lazy == nil {
		return nil // stock transformer: the dataset arena is read directly
	}
	var need []int
	seen := make(map[int]struct{}, len(idx))
	for _, i := range idx {
		if ex.lazy[i] {
			continue
		}
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		need = append(need, i)
	}
	if len(need) == 0 {
		return nil
	}
	guard := ex.ctx.Guard()
	spans := ex.chunkSpans(len(need), batchChunkTarget)
	err := ex.runTasks(len(spans), func(task int) error {
		sp := spans[task]
		for pos := sp.lo; pos < sp.hi; pos++ {
			if err := ex.transformRow(need[pos]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return guard.Check(ex.ctx)
}

// computeBatch runs Compute over the sampled unit indices: lazy parsing
// first (deduplicated, pooled), then the numeric pass over stable chunks of
// the batch, then cost charging. Placement follows the batch's byte size:
// small batches run on the driver (after shipping the sampled units there),
// large ones run as distributed tasks grouped by partition.
func (ex *executor) computeBatch(idx []int, acc linalg.Vector) error {
	plan := ex.plan
	lazy := plan.Transform == gd.Lazy
	if lazy {
		ex.ensureLazyBuffers()
		if err := ex.parseBatch(idx); err != nil {
			return err
		}
	}
	spans := ex.chunkSpans(len(idx), batchChunkTarget)
	if err := ex.computePass(acc, spans, idx, false); err != nil {
		return err
	}

	var batchBytes int64
	for _, i := range idx {
		batchBytes += int64(len(ex.store.Dataset.Raw[i])) + 1
	}
	if !ex.distributedInput(batchBytes) {
		// Centralized: sampled units travel to the driver, then one task.
		ex.sim.Transfer(batchBytes, 1)
		var cpu cluster.Seconds
		if lazy {
			for _, i := range idx {
				cpu += ex.parseCost(i)
			}
		}
		cpu += ex.costComputeCPU(len(idx), ex.opsSumIdx(idx), false)
		ex.sim.RunLocal(cpu)
		return nil
	}

	// Distributed: group the batch by partition, one task per partition,
	// walked in ascending partition order so the jitter stream (and with it
	// the simulated makespan) is reproducible run-to-run.
	byPart := map[int][]int{}
	for _, i := range idx {
		p, err := ex.store.PartitionOf(i)
		if err != nil {
			return err
		}
		byPart[p.ID] = append(byPart[p.ID], i)
	}
	order := make([]int, 0, len(byPart))
	for pid := range byPart {
		order = append(order, pid)
	}
	sort.Ints(order)
	costs := ex.costBuf[:0]
	for _, pid := range order {
		var c cluster.Seconds
		if lazy {
			for _, i := range byPart[pid] {
				c += ex.parseCost(i)
			}
		}
		c += ex.costComputeCPU(len(byPart[pid]), ex.opsSumIdx(byPart[pid]), false)
		costs = append(costs, c)
	}
	ex.costBuf = costs
	ex.sim.RunWaves(costs)
	execs := ex.sim.Cfg.Executors()
	if len(byPart) < execs {
		execs = len(byPart)
	}
	ex.sim.Transfer(int64(execs*len(acc))*8, 1)
	return nil
}
