package engine

import (
	"math"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/linalg"
	"ml4all/internal/step"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func noJitterCfg() cluster.Config {
	c := cluster.Default()
	c.JitterFrac = 0
	return c
}

func smallDataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Spec{
		Name: "test", Task: data.TaskLogisticRegression,
		N: n, D: 20, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func buildStore(t *testing.T, ds *data.Dataset, partBytes int64) *storage.Store {
	t.Helper()
	st, err := storage.Build(ds, storage.Layout{PartitionBytes: partBytes, PageBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testParams(ds *data.Dataset) gd.Params {
	return gd.Params{
		Task: ds.Task, Format: ds.Format,
		Tolerance: 1e-3, MaxIter: 50, Lambda: 0.05, BatchSize: 16,
	}
}

// TestBGDMatchesReferenceLoop is the core numeric correctness check: the
// engine's BGD must produce exactly the weights of a plain reference
// implementation of Equation 2 with mean gradients.
func TestBGDMatchesReferenceLoop(t *testing.T) {
	ds := smallDataset(t, 200)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)
	plan := gd.NewBGD(p)

	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: straightforward batch gradient descent.
	g := gradients.Logistic{}
	reg := gradients.L2{Lambda: p.Lambda}
	w := linalg.NewVector(ds.NumFeatures)
	grad := linalg.NewVector(ds.NumFeatures)
	st2 := step.Default()
	var converged bool
	var iters int
	for i := 1; i <= p.MaxIter; i++ {
		iters = i
		gradients.MeanGradient(g, reg, w, ds.Rows(), grad)
		prev := w.Clone()
		w.AddScaled(-st2.Alpha(i), grad)
		if w.DistL1(prev) < p.Tolerance {
			converged = true
			break
		}
	}

	if !res.Weights.Equal(w, 1e-9) {
		t.Fatalf("engine weights diverge from reference:\n got %v\nwant %v", res.Weights[:5], w[:5])
	}
	if res.Iterations != iters || res.Converged != converged {
		t.Fatalf("iterations/converged = %d/%v, want %d/%v", res.Iterations, res.Converged, iters, converged)
	}
}

// TestBGDPlacementInvariance: the same plan must produce identical numerics
// whether executed centralized, distributed or auto (only time may differ).
func TestBGDPlacementInvariance(t *testing.T) {
	ds := smallDataset(t, 300)
	st := buildStore(t, ds, 2<<10) // several partitions
	p := testParams(ds)

	var ref linalg.Vector
	for _, mode := range []gd.ExecMode{gd.AutoMode, gd.CentralizedMode, gd.DistributedMode} {
		plan := gd.NewBGD(p)
		plan.Mode = mode
		sim := cluster.New(noJitterCfg())
		res, err := Run(sim, st, &plan, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if ref == nil {
			ref = res.Weights
			continue
		}
		if !res.Weights.Equal(ref, 1e-12) {
			t.Fatalf("mode %v changed numerics", mode)
		}
	}
}

// TestLazyEqualsEagerNumerics: transformation placement is a physical choice;
// with the same sampling seed the model must be identical.
func TestLazyEqualsEagerNumerics(t *testing.T) {
	ds := smallDataset(t, 300)
	st := buildStore(t, ds, 2<<10)
	p := testParams(ds)

	eager := gd.NewMGD(p, gd.Eager, gd.ShuffledPartition)
	lazy := gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition)

	simE := cluster.New(noJitterCfg())
	resE, err := Run(simE, st, &eager, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	simL := cluster.New(noJitterCfg())
	resL, err := Run(simL, st, &lazy, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !resE.Weights.Equal(resL.Weights, 1e-12) {
		t.Fatal("lazy transformation changed numerics")
	}
	if resE.Iterations != resL.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", resE.Iterations, resL.Iterations)
	}
	// Eager pays the full parse upfront; the per-run transform charge must
	// differ between the two (cost asymmetry is the point of Section 6).
	if resE.Time == resL.Time {
		t.Fatal("eager and lazy charged identical time (suspicious)")
	}
}

func TestSamplingStrategiesAllConverge(t *testing.T) {
	ds := smallDataset(t, 400)
	st := buildStore(t, ds, 2<<10)
	p := testParams(ds)
	for _, sk := range []gd.SamplingKind{gd.Bernoulli, gd.RandomPartition, gd.ShuffledPartition} {
		plan := gd.NewMGD(p, gd.Eager, sk)
		sim := cluster.New(noJitterCfg())
		res, err := Run(sim, st, &plan, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", plan.Name(), err)
		}
		if res.Diverged {
			t.Fatalf("%s diverged", plan.Name())
		}
		if res.Iterations == 0 || len(res.Deltas) != res.Iterations {
			t.Fatalf("%s: iterations=%d deltas=%d", plan.Name(), res.Iterations, len(res.Deltas))
		}
	}
}

func TestTimeBudgetStopsRun(t *testing.T) {
	ds := smallDataset(t, 500)
	st := buildStore(t, ds, 2<<10)
	p := testParams(ds)
	p.MaxIter = 100000
	p.Tolerance = 1e-12 // unreachable
	plan := gd.NewBGD(p)
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{TimeBudget: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Budgeted {
		t.Fatal("budget did not stop the run")
	}
	if res.Time < 5 {
		t.Fatalf("stopped before the budget: %g", res.Time)
	}
}

func TestRunValidates(t *testing.T) {
	ds := smallDataset(t, 10)
	st := buildStore(t, ds, 4<<10)
	bad := gd.NewBGD(testParams(ds))
	bad.Computer = nil
	sim := cluster.New(noJitterCfg())
	if _, err := Run(sim, st, &bad, Options{}); err == nil {
		t.Fatal("invalid plan accepted")
	}

	empty, err := storage.Build(data.FromUnits("e", data.TaskSVM, nil), storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	good := gd.NewBGD(testParams(ds))
	if _, err := Run(sim, empty, &good, Options{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	ds := smallDataset(t, 200)
	st := buildStore(t, ds, 2<<10)
	p := testParams(ds)
	plan := gd.NewSGD(p, gd.Eager, gd.RandomPartition)

	run := func() *Result {
		sim := cluster.New(cluster.Default()) // jitter on: still deterministic
		res, err := Run(sim, st, &plan, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Weights.Equal(b.Weights, 0) || a.Time != b.Time || a.Iterations != b.Iterations {
		t.Fatal("identical seeds produced different runs")
	}
}

func TestSVRGRunsAndConverges(t *testing.T) {
	ds := smallDataset(t, 300)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)
	p.MaxIter = 60
	plan := gd.NewSVRG(p, 10)
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("SVRG diverged")
	}
	if !res.Weights.IsFinite() {
		t.Fatal("SVRG weights non-finite")
	}
	// The model must beat the zero vector on the training objective.
	g := gradients.Logistic{}
	reg := gradients.L2{Lambda: p.Lambda}
	zero := linalg.NewVector(ds.NumFeatures)
	if gradients.Objective(g, reg, res.Weights, ds.Rows()) >= gradients.Objective(g, reg, zero, ds.Rows()) {
		t.Fatal("SVRG did not improve the objective")
	}
}

func TestLineSearchImprovesObjectiveMonotonically(t *testing.T) {
	ds := smallDataset(t, 200)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)
	p.MaxIter = 40
	plan := gd.NewLineSearchBGD(p, 0.5)
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 4, CollectWeightsTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g := gradients.Logistic{}
	reg := gradients.L2{Lambda: p.Lambda}
	prev := math.Inf(1)
	for i, w := range res.Trace {
		obj := gradients.Objective(g, reg, w, ds.Rows())
		if obj > prev+1e-12 {
			t.Fatalf("objective increased at pass %d: %g -> %g", i, prev, obj)
		}
		prev = obj
	}
	zero := linalg.NewVector(ds.NumFeatures)
	if prev >= gradients.Objective(g, reg, zero, ds.Rows()) {
		t.Fatal("line search did not improve over zero weights")
	}
}

func TestCacheThrashingShowsInTime(t *testing.T) {
	// The same dataset trained on a cluster whose cache cannot hold it must
	// take longer per iteration (all-disk scans) than on one where it fits.
	ds := smallDataset(t, 2000)
	st := buildStore(t, ds, 2<<10)

	p := testParams(ds)
	p.MaxIter = 10
	p.Tolerance = 1e-12
	plan := gd.NewBGD(p)

	big := noJitterCfg()
	big.CacheBytes = 1 << 30
	simBig := cluster.New(big)
	resBig, err := Run(simBig, st, &plan, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	tiny := noJitterCfg()
	tiny.CacheBytes = 0
	simTiny := cluster.New(tiny)
	resTiny, err := Run(simTiny, st, &plan, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	if resTiny.Time <= resBig.Time {
		t.Fatalf("no-cache run (%.3fs) not slower than cached run (%.3fs)", resTiny.Time, resBig.Time)
	}
	if !resTiny.Weights.Equal(resBig.Weights, 0) {
		t.Fatal("cache capacity changed numerics")
	}
}

func TestStageSampleFeedsStager(t *testing.T) {
	ds := smallDataset(t, 100)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)
	plan := gd.NewBGD(p)
	plan.Stager = gd.SampleMeanStager{Scale: 0.1}
	plan.StageSampleSize = 20
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("diverged with sample staging")
	}
}

func TestAccountingIsPopulated(t *testing.T) {
	ds := smallDataset(t, 300)
	st := buildStore(t, ds, 2<<10)
	p := testParams(ds)
	plan := gd.NewBGD(p)
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Acct
	if a.DiskPages == 0 || a.Tasks == 0 || a.UnitsSeen == 0 || a.CPUSeconds <= 0 {
		t.Fatalf("accounting empty: %+v", a)
	}
	if a.NetBytes == 0 {
		t.Fatal("distributed BGD moved no bytes (reduce missing?)")
	}
}
