package engine

import (
	"fmt"
	"runtime/debug"

	"ml4all/internal/linalg"
)

// PanicError is a panic recovered inside the shard executor, converted into
// an ordinary task error. User-defined operators (custom Transformers,
// Computers, Updaters) run inside pool-worker goroutines; without recovery a
// panic there kills the whole process regardless of what the driver does.
// With it, the panic surfaces as this error from Step/Run — failing the one
// job while the process, the pool, and every other job keep going.
type PanicError struct {
	// Op locates the panic (e.g. "task 3").
	Op string
	// Value is what panic() received.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: panic in %s: %v\n%s", e.Op, e.Value, e.Stack)
}

// safeCall runs fn(i), converting a panic into a *PanicError. It is the
// isolation boundary between user-defined operator code and the executor:
// both the serial task loop and every pool worker route task execution
// through it.
func safeCall(fn func(task int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Op: fmt.Sprintf("task %d", i), Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// safeComputeSpan is computeSpan behind the same recovery boundary, for
// computePass's inline serial fast path (which skips runTasks and would
// otherwise let a UDF panic unwind through the driver).
func (ex *executor) safeComputeSpan(task int, spans []span, partials []linalg.Vector, idx []int, transform bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Op: fmt.Sprintf("task %d", task), Value: r, Stack: debug.Stack()}
		}
	}()
	return ex.computeSpan(task, spans, partials, idx, transform)
}
