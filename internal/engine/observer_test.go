package engine

import (
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/gd"
)

// recordingObserver captures every IterEvent in order.
type recordingObserver struct {
	events []IterEvent
}

func (o *recordingObserver) ObserveIter(ev IterEvent) { o.events = append(o.events, ev) }

// TestObserverSeesEveryIteration pins the hook's contract: exactly one event
// per executed iteration, in order, carrying the iteration's delta and the
// simulated clock/accounting as of that iteration.
func TestObserverSeesEveryIteration(t *testing.T) {
	ds := smallDataset(t, 300)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)
	plan := gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition)

	obs := &recordingObserver{}
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 1, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.events) != res.Iterations {
		t.Fatalf("observer saw %d events, run executed %d iterations", len(obs.events), res.Iterations)
	}
	if len(obs.events) != len(res.Deltas) {
		t.Fatalf("observer saw %d events, delta history has %d", len(obs.events), len(res.Deltas))
	}
	var lastSim float64
	var lastUnits int64
	for i, ev := range obs.events {
		if ev.Iter != i+1 {
			t.Fatalf("event %d has Iter %d, want %d", i, ev.Iter, i+1)
		}
		if ev.Delta != res.Deltas[i] {
			t.Fatalf("event %d Delta %g != recorded delta %g", i, ev.Delta, res.Deltas[i])
		}
		if ev.SimSeconds < lastSim {
			t.Fatalf("simulated clock went backwards at event %d: %g < %g", i, ev.SimSeconds, lastSim)
		}
		if ev.Units < lastUnits {
			t.Fatalf("units seen went backwards at event %d: %d < %d", i, ev.Units, lastUnits)
		}
		lastSim, lastUnits = ev.SimSeconds, ev.Units
	}
	if lastUnits == 0 {
		t.Fatal("accounting never advanced: Units stayed 0")
	}
}

// TestObserverDoesNotPerturbRun pins the zero-interference contract: an
// observed run must be bit-identical to an unobserved one — same weights,
// same deltas, same simulated clock.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	ds := smallDataset(t, 300)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)

	for _, workers := range []int{1, 4} {
		plan := gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition)
		base, err := Run(cluster.New(noJitterCfg()), st, &plan, Options{Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		plan2 := gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition)
		observed, err := Run(cluster.New(noJitterCfg()), st, &plan2,
			Options{Seed: 1, Workers: workers, Observer: &recordingObserver{}})
		if err != nil {
			t.Fatal(err)
		}
		if !base.Weights.Equal(observed.Weights, 0) {
			t.Fatalf("workers=%d: observed run produced different weights", workers)
		}
		if base.Iterations != observed.Iterations || base.FinalDelta != observed.FinalDelta {
			t.Fatalf("workers=%d: %d/%g vs observed %d/%g", workers,
				base.Iterations, base.FinalDelta, observed.Iterations, observed.FinalDelta)
		}
		if base.Time != observed.Time {
			t.Fatalf("workers=%d: simulated time %v != %v", workers, base.Time, observed.Time)
		}
	}
}
