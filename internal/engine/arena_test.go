package engine

import (
	"fmt"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/gd"
)

// The columnar-arena equivalence guarantee, wired into the same harness the
// parallel/resume tests use: a dataset whose arena was packed from legacy
// standalone units (FromUnits — the compatibility construction) must train
// bit-identically to the same dataset re-built by parsing its raw text
// straight into the arena (ParseMatrix + FromMatrix — the construction every
// loader and generator uses now), for every task, across representative plans
// and worker counts. Weights, deltas, simulated time and accounting all pin.

func TestArenaConstructionMatchesUnitConstructionBitwise(t *testing.T) {
	tasks := []data.TaskKind{data.TaskSVM, data.TaskLogisticRegression, data.TaskLinearRegression}
	for _, task := range tasks {
		parent := taskDataset(t, task, 500)

		// Legacy route: standalone units, packed by the compatibility
		// constructor.
		units := make([]data.Unit, parent.N())
		for i := 0; i < parent.N(); i++ {
			u, ok, err := parent.Format.ParseLine(parent.Raw[i])
			if err != nil || !ok {
				t.Fatalf("%v: line %d: ok=%v err=%v", task, i, ok, err)
			}
			units[i] = u
		}
		viaUnits := data.FromUnits(parent.Name, task, units)
		viaUnits.Format = parent.Format
		if parent.NumFeatures > viaUnits.NumFeatures {
			viaUnits.NumFeatures = parent.NumFeatures
		}

		// Arena route: two-pass parse of the same raw text.
		m, err := data.ParseMatrix(parent.Raw, parent.Format)
		if err != nil {
			t.Fatal(err)
		}
		viaArena := data.FromMatrix(parent.Name, task, m)
		viaArena.Format = parent.Format
		if parent.NumFeatures > viaArena.NumFeatures {
			viaArena.NumFeatures = parent.NumFeatures
		}

		for i := 0; i < parent.N(); i++ {
			if !data.RowsEqual(viaUnits.Row(i), viaArena.Row(i)) {
				t.Fatalf("%v: row %d diverges between constructions", task, i)
			}
		}

		stUnits := buildStore(t, viaUnits, 2<<10)
		stArena := buildStore(t, viaArena, 2<<10)

		p := gd.Params{Task: task, Format: parent.Format, Tolerance: 1e-3, MaxIter: 25, Lambda: 0.05, BatchSize: 32}
		plans := []gd.Plan{
			gd.NewBGD(p),
			gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition),
			gd.NewSVRG(p, 5),
		}
		for _, plan := range plans {
			for _, workers := range []int{1, 2, 8} {
				label := fmt.Sprintf("%v/%s/arena-vs-units", task, plan.Name())
				base := runWorkers(t, stUnits, plan, workers)
				got := runWorkers(t, stArena, plan, workers)
				sameResult(t, label, base, got, workers)
			}
		}
	}
}
