package engine

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
)

// Failure-injection tests: the engine must surface operator failures as
// errors (with context) and never mask divergence as convergence.

// failingTransformer errors on every nth line. It counts calls, which is
// mutable state the parallel transform contract forbids — so the tests using
// it pin Workers: 1 (the serial path, where call order is defined). The
// parallel-path equivalents with a stateless transformer live in
// parallel_test.go.
type failingTransformer struct {
	inner gd.Transformer
	n     int
	count int
}

func (f *failingTransformer) Transform(raw string, ctx *gd.Context) (data.Row, error) {
	f.count++
	if f.count%f.n == 0 {
		return data.Row{}, fmt.Errorf("injected parse failure at record %d", f.count)
	}
	return f.inner.Transform(raw, ctx)
}

func TestEagerTransformSurfacesParseErrors(t *testing.T) {
	ds := smallDataset(t, 100)
	st := buildStore(t, ds, 4<<10)
	plan := gd.NewBGD(testParams(ds))
	plan.Transformer = &failingTransformer{inner: gd.FormatTransformer{Format: ds.Format}, n: 50}
	sim := cluster.New(noJitterCfg())
	_, err := Run(sim, st, &plan, Options{Seed: 1, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "injected parse failure") {
		t.Fatalf("err = %v, want injected failure surfaced", err)
	}
}

func TestLazyTransformSurfacesParseErrors(t *testing.T) {
	ds := smallDataset(t, 200)
	st := buildStore(t, ds, 2<<10)
	p := testParams(ds)
	plan := gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition)
	plan.Transformer = &failingTransformer{inner: gd.FormatTransformer{Format: ds.Format}, n: 10}
	sim := cluster.New(noJitterCfg())
	_, err := Run(sim, st, &plan, Options{Seed: 1, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "injected parse failure") {
		t.Fatalf("err = %v, want injected failure surfaced", err)
	}
}

// explodingUpdater drives the weights to infinity.
type explodingUpdater struct{}

func (explodingUpdater) Update(acc linalg.Vector, ctx *gd.Context) (linalg.Vector, error) {
	w := ctx.Weights.Clone()
	for i := range w {
		w[i] = math.Inf(1)
	}
	ctx.Weights = w
	return w, nil
}

func TestDivergenceIsDetectedNotMasked(t *testing.T) {
	ds := smallDataset(t, 50)
	st := buildStore(t, ds, 4<<10)
	plan := gd.NewBGD(testParams(ds))
	plan.Updater = explodingUpdater{}
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Fatal("infinite weights not flagged as divergence")
	}
	if res.Converged {
		t.Fatal("diverged run reported as converged")
	}
	if res.Iterations != 1 {
		t.Fatalf("diverged run kept iterating: %d", res.Iterations)
	}
}

// erroringUpdater fails mid-run.
type erroringUpdater struct{ after int }

func (e *erroringUpdater) Update(acc linalg.Vector, ctx *gd.Context) (linalg.Vector, error) {
	if ctx.Iter > e.after {
		return nil, errors.New("injected update failure")
	}
	// Keep the loop alive until the failure point.
	w := ctx.Weights.Clone()
	w[0] += 1
	ctx.Weights = w
	return w, nil
}

func TestUpdateErrorsPropagate(t *testing.T) {
	ds := smallDataset(t, 50)
	st := buildStore(t, ds, 4<<10)
	plan := gd.NewBGD(testParams(ds))
	plan.Updater = &erroringUpdater{after: 3}
	sim := cluster.New(noJitterCfg())
	_, err := Run(sim, st, &plan, Options{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "injected update failure") {
		t.Fatalf("err = %v, want injected update failure", err)
	}
}

// staleStager returns an error immediately.
type staleStager struct{}

func (staleStager) Stage(_ []data.Row, _ *gd.Context) error {
	return errors.New("injected stage failure")
}

func TestStageErrorsPropagate(t *testing.T) {
	ds := smallDataset(t, 50)
	st := buildStore(t, ds, 4<<10)
	plan := gd.NewBGD(testParams(ds))
	plan.Stager = staleStager{}
	sim := cluster.New(noJitterCfg())
	_, err := Run(sim, st, &plan, Options{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "injected stage failure") {
		t.Fatalf("err = %v, want injected stage failure", err)
	}
}

// TestCustomTransformerActuallyRuns guards the stock-transformer shortcut:
// a non-stock transformer must be invoked for real, not bypassed.
type doublingTransformer struct{ inner gd.Transformer }

func (d doublingTransformer) Transform(raw string, ctx *gd.Context) (data.Row, error) {
	u, err := d.inner.Transform(raw, ctx)
	if err != nil {
		return u, err
	}
	u.Label *= 2
	return u, nil
}

func TestCustomTransformerActuallyRuns(t *testing.T) {
	ds := smallDataset(t, 100)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)
	p.MaxIter = 5
	p.Tolerance = 1e-12

	stock := gd.NewBGD(p)
	simA := cluster.New(noJitterCfg())
	resStock, err := Run(simA, st, &stock, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	custom := gd.NewBGD(p)
	custom.Transformer = doublingTransformer{inner: gd.FormatTransformer{Format: ds.Format}}
	simB := cluster.New(noJitterCfg())
	resCustom, err := Run(simB, st, &custom, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resStock.Weights.Equal(resCustom.Weights, 1e-12) {
		t.Fatal("custom transformer was bypassed: identical weights")
	}
}

// TestBudgetZeroMeansUnbounded: a zero time budget must not stop the run.
func TestBudgetZeroMeansUnbounded(t *testing.T) {
	ds := smallDataset(t, 50)
	st := buildStore(t, ds, 4<<10)
	p := testParams(ds)
	p.MaxIter = 7
	p.Tolerance = 1e-12
	plan := gd.NewBGD(p)
	sim := cluster.New(noJitterCfg())
	res, err := Run(sim, st, &plan, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budgeted || res.Iterations != 7 {
		t.Fatalf("zero budget truncated the run: %+v", res)
	}
}
