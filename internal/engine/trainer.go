package engine

import (
	"fmt"
	"math/rand"
	"runtime"

	"ml4all/internal/cluster"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/sampling"
	"ml4all/internal/storage"
)

// Trainer is the resumable form of a plan execution: an explicit lifecycle
//
//	New → Step* → (Checkpoint → Resume → Step*)* → Finish
//
// where NewTrainer performs everything up to the first iteration (job init,
// Stage, eager Transform, sampler construction), each Step executes exactly
// one plan iteration, and Finish assembles the Result. Run is a thin loop
// over Step, so a Trainer driven to completion is bit-identical to the
// monolithic loop it replaced — same weights, deltas, simulated time and
// accounting for every plan and worker count.
//
// All per-run state lives either in the simulator (clock, cache, jitter
// stream, accounting — captured by cluster.Sim.Snapshot) or in the fields
// Checkpoint serializes into a TrainState: weights and operator context
// variables, the iteration counter, the sampling RNG position (a draw count
// over a seeded stream), the lazy-transform memo, the per-partition op-cost
// cache, the delta history and the clock offset the run started at.
type Trainer struct {
	sim   *cluster.Sim
	store *storage.Store
	plan  *gd.Plan
	opts  Options

	ex    executor
	src   *cluster.CountingSource // the sampling RNG's underlying stream
	res   *Result
	prev  linalg.Vector
	start cluster.Seconds // sim clock when the run (segment) began
	done  bool
}

// NewTrainer validates the plan and performs the pre-loop phases on sim:
// job init, Stage (optionally warm-started via Options.InitWeights), eager
// Transform, and sampler construction. The returned Trainer is ready for
// Step.
func NewTrainer(sim *cluster.Sim, store *storage.Store, plan *gd.Plan, opts Options) (*Trainer, error) {
	t, err := newTrainerShell(sim, store, plan, opts)
	if err != nil {
		return nil, err
	}
	ex := &t.ex

	sim.JobInit()
	if err := ex.stage(); err != nil {
		return nil, err
	}
	if opts.InitWeights != nil {
		if len(opts.InitWeights) != ex.ctx.NumFeatures {
			return nil, fmt.Errorf("engine: InitWeights has %d features, dataset has %d",
				len(opts.InitWeights), ex.ctx.NumFeatures)
		}
		ex.ctx.Weights = opts.InitWeights.Clone()
	}
	if opts.InitIter > 0 {
		ex.ctx.Iter = opts.InitIter
	}
	if plan.Transform == gd.Eager {
		if err := ex.eagerTransform(); err != nil {
			return nil, err
		}
	}
	if err := t.initSampler(); err != nil {
		return nil, err
	}

	t.res = &Result{PlanName: plan.Name(), Deltas: make([]float64, 0, 16)}
	t.prev = ex.ctx.Weights.Clone()
	return t, nil
}

// newTrainerShell builds the trainer and executor skeleton shared by
// NewTrainer and Resume: defaults, context, shards, RNG stream — everything
// that involves no simulated work.
func newTrainerShell(sim *cluster.Sim, store *storage.Store, plan *gd.Plan, opts Options) (*Trainer, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	ds := store.Dataset
	n := ds.N()
	if n == 0 {
		return nil, fmt.Errorf("engine: empty dataset %q", ds.Name)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ctx := gd.NewContext()
	ctx.NumFeatures = ds.NumFeatures
	ctx.NumPoints = n
	ctx.Tolerance = plan.Tolerance
	ctx.MaxIter = plan.MaxIter
	ctx.BatchSize = plan.BatchSize
	ctx.FastMath = opts.FastMath
	if plan.Algorithm == gd.BGD || plan.Algorithm == gd.LineSearchBGD {
		ctx.BatchSize = n
	}

	t := &Trainer{
		sim: sim, store: store, plan: plan, opts: opts,
		start: sim.Now(),
	}
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = defaultBlockSize
	}
	t.ex = executor{
		sim: sim, store: store, plan: plan, ctx: ctx,
		seed:      seed,
		workers:   workers,
		shards:    store.Shards(shardUnitTarget),
		blockSize: blockSize,
		costBuf:   make([]cluster.Seconds, 0, store.NumPartitions()),
	}
	// Resolve the batched-compute capability once. Custom Computer UDFs
	// (no BatchComputer) and stock computers wrapping a custom Gradient
	// without block kernels (BatchCapable false) leave it nil: the span
	// loop stays row-at-a-time and cost charging stays at the full per-row
	// overhead, keeping execution and billing consistent.
	if bc, ok := plan.Computer.(gd.BatchComputer); ok && bc.BatchCapable() {
		t.ex.batch = bc
		if fc, ok := bc.(gd.FastBatchComputer); ok && opts.FastMath && fc.FastCapable() {
			t.ex.fast = true
		}
	}
	return t, nil
}

// initSampler constructs the plan's sampler and, with it, the trainer's
// sampling RNG stream (plans without a Sample operator never create one, so
// their checkpoints record zero draws exactly as before).
func (t *Trainer) initSampler() error {
	if t.plan.Sampling == gd.NoSampling {
		return nil
	}
	s, err := sampling.New(t.plan.Sampling)
	if err != nil {
		return err
	}
	t.src = cluster.NewCountingSource(t.ex.seed)
	t.ex.rng = rand.New(t.src)
	t.ex.sampler = s
	t.ex.senv = &sampling.Env{Sim: t.sim, Store: t.store, RNG: t.ex.rng}
	return nil
}

// rngDraws returns the sampling-stream position, zero when the plan has no
// Sample operator (the stream is created with the sampler).
func (t *Trainer) rngDraws() uint64 {
	if t.src == nil {
		return 0
	}
	return t.src.Draws()
}

// Done reports whether the run has terminated (converged, budget exhausted,
// iteration cap hit, or diverged).
func (t *Trainer) Done() bool { return t.done }

// Iteration returns the 1-based count of iterations executed so far (the
// context's counter; it starts at Options.InitIter for warm-started runs).
func (t *Trainer) Iteration() int { return t.ex.ctx.Iter }

// Deltas returns the per-iteration convergence deltas observed so far. The
// slice is live — callers must not modify it.
func (t *Trainer) Deltas() []float64 { return t.res.Deltas }

// Weights returns the current model vector (live; callers must not modify).
func (t *Trainer) Weights() linalg.Vector { return t.ex.ctx.Weights }

// Step executes exactly one plan iteration: Sample (optional) + Transform
// (if lazy) + Compute fan-out, then Update, Converge and Loop on the driver,
// charging simulated costs in the same fixed order the monolithic loop did.
// After a terminating iteration, Done reports true and further Steps fail.
func (t *Trainer) Step() error {
	if t.done {
		return fmt.Errorf("engine: Step on a finished trainer (plan %s)", t.plan.Name())
	}
	if t.opts.Interrupt != nil {
		if err := t.opts.Interrupt(); err != nil {
			// Nothing has mutated yet: the trainer is exactly as it was
			// after the previous Step, so checkpoint/resume stays sound.
			return fmt.Errorf("%w before iteration %d: %w", ErrInterrupted, t.ex.ctx.Iter+1, err)
		}
	}
	sim, plan, ctx, res := t.sim, t.plan, t.ex.ctx, t.res

	ctx.Iter++
	ctx.Step = plan.Step.Alpha(ctx.Iter)
	sim.Advance(sim.Cfg.DriverIterSec)

	acc, err := t.ex.iteration()
	if err != nil {
		return err
	}

	// Update on the driver.
	sim.RunLocal(sim.CostCPU(1, float64(2*ctx.NumFeatures)))
	wOld := ctx.Weights
	wNew, err := plan.Updater.Update(acc, ctx)
	if err != nil {
		return err
	}

	// Converge + Loop on the driver.
	sim.RunLocal(sim.CostCPU(1, float64(ctx.NumFeatures)))
	delta := plan.Converger.Converge(wNew, t.prev, ctx)
	res.Deltas = append(res.Deltas, delta)
	if t.opts.CollectWeightsTrace {
		res.Trace = append(res.Trace, wNew.Clone())
	}
	copy(t.prev, wNew)
	res.FinalDelta = delta
	if len(wOld) > 0 && len(wNew) > 0 && &wOld[0] != &wNew[0] {
		// The replaced weights vector is dead once the delta history and
		// prev copy are taken (operators keep clones, per the Checkpoint
		// contract); recycle it for the next update.
		ctx.PutSpare(wOld)
	}

	switch {
	case !wNew.IsFinite():
		res.Diverged = true
		t.done = true
	case !plan.Looper.Loop(delta, ctx):
		res.Converged = delta < plan.Tolerance
		t.done = true
	case t.opts.TimeBudget > 0 && sim.Now()-t.start >= t.opts.TimeBudget:
		res.Budgeted = true
		t.done = true
	}
	if t.opts.Observer != nil {
		t.opts.Observer.ObserveIter(IterEvent{
			Iter:       ctx.Iter,
			Delta:      delta,
			SimSeconds: float64(sim.Now()),
			Units:      sim.Acct.UnitsSeen,
		})
	}
	return nil
}

// Finish assembles and returns the Result as of the current state: final
// weights, iteration count, elapsed simulated time since the trainer
// started, and the simulator's accounting. It may be called mid-run (for
// progress inspection) or after Done; the Trainer remains usable.
func (t *Trainer) Finish() *Result {
	res := t.res
	res.Weights = t.ex.ctx.Weights.Clone()
	res.Iterations = t.ex.ctx.Iter
	res.Time = t.sim.Now() - t.start
	res.Acct = t.sim.Acct
	return res
}
