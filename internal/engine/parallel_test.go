package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

// The parallel-executor determinism guarantee: for any Workers setting the
// engine produces bit-identical weights, iteration counts, deltas, simulated
// time and accounting. Only wall-clock changes. These tests pin that down
// across every task, algorithm family and transform placement.

func taskDataset(t *testing.T, task data.TaskKind, n int) *data.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Spec{
		Name: "par-" + task.String(), Task: task,
		N: n, D: 24, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func runWorkers(t *testing.T, st *storage.Store, plan gd.Plan, workers int) *Result {
	t.Helper()
	sim := cluster.New(cluster.Default()) // jitter on: the harder case
	res, err := Run(sim, st, &plan, Options{Seed: 7, Workers: workers})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// sameResult asserts bitwise equality of everything the acceptance criteria
// name: weights, iterations, per-iteration deltas, simulated time, and the
// full cluster accounting.
func sameResult(t *testing.T, label string, base, got *Result, workers int) {
	t.Helper()
	if !got.Weights.Equal(base.Weights, 0) {
		t.Fatalf("%s: workers=%d changed weights", label, workers)
	}
	if got.Iterations != base.Iterations {
		t.Fatalf("%s: workers=%d iterations %d != %d", label, workers, got.Iterations, base.Iterations)
	}
	if len(got.Deltas) != len(base.Deltas) {
		t.Fatalf("%s: workers=%d delta count %d != %d", label, workers, len(got.Deltas), len(base.Deltas))
	}
	for i := range got.Deltas {
		if got.Deltas[i] != base.Deltas[i] {
			t.Fatalf("%s: workers=%d delta[%d] %g != %g", label, workers, i, got.Deltas[i], base.Deltas[i])
		}
	}
	if got.Time != base.Time {
		t.Fatalf("%s: workers=%d simulated time %g != %g", label, workers, got.Time, base.Time)
	}
	if !reflect.DeepEqual(got.Acct, base.Acct) {
		t.Fatalf("%s: workers=%d accounting diverged:\n got %+v\nwant %+v", label, workers, got.Acct, base.Acct)
	}
	if got.Converged != base.Converged || got.Budgeted != base.Budgeted || got.Diverged != base.Diverged {
		t.Fatalf("%s: workers=%d termination flags diverged", label, workers)
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	tasks := []data.TaskKind{data.TaskSVM, data.TaskLogisticRegression, data.TaskLinearRegression}
	for _, task := range tasks {
		ds := taskDataset(t, task, 600)
		st := buildStore(t, ds, 2<<10) // several partitions
		p := gd.Params{Task: task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 30, Lambda: 0.05, BatchSize: 32}

		plans := []gd.Plan{
			gd.NewBGD(p),
			gd.NewMGD(p, gd.Eager, gd.ShuffledPartition),
			gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition),
			gd.NewSGD(p, gd.Eager, gd.RandomPartition),
			gd.NewSVRG(p, 5),
			gd.NewLineSearchBGD(p, 0.5),
		}
		for _, plan := range plans {
			label := fmt.Sprintf("%s/%s", task, plan.Name())
			base := runWorkers(t, st, plan, 1)
			for _, workers := range []int{2, 8} {
				got := runWorkers(t, st, plan, workers)
				sameResult(t, label, base, got, workers)
			}
		}
	}
}

// TestDefaultWorkersMatchesSerial: the GOMAXPROCS default (Workers: 0) must
// sit on the same guarantee as any explicit count.
func TestDefaultWorkersMatchesSerial(t *testing.T) {
	ds := taskDataset(t, data.TaskSVM, 400)
	st := buildStore(t, ds, 2<<10)
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 20, Lambda: 0.05, BatchSize: 16}
	plan := gd.NewBGD(p)
	base := runWorkers(t, st, plan, 1)
	got := runWorkers(t, st, plan, 0)
	sameResult(t, "default-workers", base, got, 0)
}

// indexFailingTransformer is the stateless (parallel-legal) failure injector:
// it fails on one exact raw line, so the error does not depend on call order.
type indexFailingTransformer struct {
	inner gd.Transformer
	raw   string
}

func (f indexFailingTransformer) Transform(raw string, ctx *gd.Context) (data.Row, error) {
	if raw == f.raw {
		return data.Row{}, fmt.Errorf("injected parallel parse failure")
	}
	return f.inner.Transform(raw, ctx)
}

// TestParallelTransformSurfacesDeterministicError: the pool surfaces the same
// first-in-order error a serial run would, for any worker count.
func TestParallelTransformSurfacesDeterministicError(t *testing.T) {
	ds := taskDataset(t, data.TaskSVM, 300)
	st := buildStore(t, ds, 2<<10)
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 10, BatchSize: 16}
	for _, workers := range []int{1, 8} {
		plan := gd.NewBGD(p)
		plan.Transformer = indexFailingTransformer{inner: gd.FormatTransformer{Format: ds.Format}, raw: ds.Raw[137]}
		sim := cluster.New(noJitterCfg())
		_, err := Run(sim, st, &plan, Options{Seed: 1, Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "injected parallel parse failure") {
			t.Fatalf("workers=%d: err = %v, want injected failure", workers, err)
		}
		if !strings.Contains(err.Error(), "unit 137") {
			t.Fatalf("workers=%d: error lost the failing unit: %v", workers, err)
		}
	}
}

// noisyComputer exercises the RandomizedComputer extension: gradient plus
// rng-driven perturbation. Streams are split per (iteration, shard), so the
// result must not depend on the worker count.
type noisyComputer struct {
	inner gd.Computer
}

func (c noisyComputer) Compute(u data.Row, ctx *gd.Context, acc linalg.Vector) {
	c.inner.Compute(u, ctx, acc)
}
func (c noisyComputer) AccDim(d int) int    { return c.inner.AccDim(d) }
func (c noisyComputer) Ops(nnz int) float64 { return c.inner.Ops(nnz) }
func (c noisyComputer) ComputeRand(u data.Row, ctx *gd.Context, acc linalg.Vector, rng *rand.Rand) {
	c.inner.Compute(u, ctx, acc)
	acc[0] += 1e-6 * rng.NormFloat64()
}

func TestRandomizedComputerWorkerCountInvariant(t *testing.T) {
	ds := taskDataset(t, data.TaskLogisticRegression, 500)
	st := buildStore(t, ds, 2<<10)
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-4, MaxIter: 15, Lambda: 0.05, BatchSize: 16}
	mk := func() gd.Plan {
		plan := gd.NewBGD(p)
		plan.Computer = noisyComputer{inner: plan.Computer}
		return plan
	}
	base := runWorkers(t, st, mk(), 1)
	for _, workers := range []int{2, 8} {
		got := runWorkers(t, st, mk(), workers)
		sameResult(t, "randomized", base, got, workers)
	}
	// The noise must actually have flowed through the RNG path.
	plain := runWorkers(t, st, gd.NewBGD(p), 1)
	if base.Weights.Equal(plain.Weights, 0) {
		t.Fatal("ComputeRand was never called: noisy run identical to plain run")
	}
}

// contractBreakingComputer mutates the context mid-compute; the guard must
// fail the run instead of letting a parallel execution corrupt state.
type contractBreakingComputer struct {
	inner gd.Computer
}

func (c contractBreakingComputer) Compute(u data.Row, ctx *gd.Context, acc linalg.Vector) {
	c.inner.Compute(u, ctx, acc)
	ctx.Put("illegal", 1)
}
func (c contractBreakingComputer) AccDim(d int) int    { return c.inner.AccDim(d) }
func (c contractBreakingComputer) Ops(nnz int) float64 { return c.inner.Ops(nnz) }

func TestComputeContractViolationIsCaught(t *testing.T) {
	ds := taskDataset(t, data.TaskSVM, 100)
	st := buildStore(t, ds, 4<<10)
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 1e-3, MaxIter: 5, BatchSize: 16}
	plan := gd.NewBGD(p)
	plan.Computer = contractBreakingComputer{inner: plan.Computer}
	sim := cluster.New(noJitterCfg())
	// Workers: 1 keeps the violation data-race-free; the guard must still
	// reject it on the serial path.
	_, err := Run(sim, st, &plan, Options{Seed: 1, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "compute contract") {
		t.Fatalf("err = %v, want compute-contract violation", err)
	}
}
