// Package engine executes GD plans over the simulated cluster. It is the
// stand-in for Rheem with Java and Spark underneath (paper Appendix D):
// every operator is placed either centralized ("Java", on the driver) or
// distributed ("Spark", in waves over partitions), chosen per operator by
// whether its input fits in a single data partition — so a plan can and
// usually does execute as a mix of both. The numeric work (parsing,
// gradients, updates) is performed for real; only time is simulated.
package engine

import (
	"fmt"
	"math/rand"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/sampling"
	"ml4all/internal/storage"
)

// Options tunes a single plan execution.
type Options struct {
	// TimeBudget, when positive, stops the run once the simulated clock has
	// advanced that far past the start (the iterations estimator speculates
	// under such a budget, Algorithm 1).
	TimeBudget cluster.Seconds

	// Seed drives the run's sampling RNG. Zero means seed 1.
	Seed int64

	// CollectWeightsTrace, when true, snapshots the weight vector after
	// every iteration (used by curve-fit figures; costs memory).
	CollectWeightsTrace bool
}

// Result reports one plan execution.
type Result struct {
	PlanName   string
	Weights    linalg.Vector
	Iterations int
	Converged  bool // stopped because delta < tolerance
	Budgeted   bool // stopped because the time budget ran out
	Diverged   bool // weights became non-finite
	FinalDelta float64
	Time       cluster.Seconds // simulated training time
	Deltas     []float64       // per-iteration convergence deltas (error sequence)
	Trace      []linalg.Vector // optional per-iteration weights
	Acct       cluster.Accounting
}

// Run executes plan against the dataset in store on sim, advancing sim's
// clock. The caller owns sim; Run neither resets it nor assumes a zero clock,
// so speculation and execution can share one timeline.
func Run(sim *cluster.Sim, store *storage.Store, plan *gd.Plan, opts Options) (*Result, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	ds := store.Dataset
	n := ds.N()
	if n == 0 {
		return nil, fmt.Errorf("engine: empty dataset %q", ds.Name)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	start := sim.Now()

	ctx := gd.NewContext()
	ctx.NumFeatures = ds.NumFeatures
	ctx.NumPoints = n
	ctx.Tolerance = plan.Tolerance
	ctx.MaxIter = plan.MaxIter
	ctx.BatchSize = plan.BatchSize
	if plan.Algorithm == gd.BGD || plan.Algorithm == gd.LineSearchBGD {
		ctx.BatchSize = n
	}

	ex := &executor{sim: sim, store: store, plan: plan, ctx: ctx, rng: rng}

	sim.JobInit()
	if err := ex.stage(); err != nil {
		return nil, err
	}
	if plan.Transform == gd.Eager {
		if err := ex.eagerTransform(); err != nil {
			return nil, err
		}
	}
	if plan.Sampling != gd.NoSampling {
		s, err := sampling.New(plan.Sampling)
		if err != nil {
			return nil, err
		}
		ex.sampler = s
		ex.senv = &sampling.Env{Sim: sim, Store: store, RNG: rng}
	}

	res := &Result{PlanName: plan.Name()}
	prev := ctx.Weights.Clone()
	for {
		ctx.Iter++
		ctx.Step = plan.Step.Alpha(ctx.Iter)
		sim.Advance(sim.Cfg.DriverIterSec)

		acc, err := ex.iteration()
		if err != nil {
			return nil, err
		}

		// Update on the driver.
		sim.RunLocal(sim.CostCPU(1, float64(2*ctx.NumFeatures)))
		wNew, err := plan.Updater.Update(acc, ctx)
		if err != nil {
			return nil, err
		}

		// Converge + Loop on the driver.
		sim.RunLocal(sim.CostCPU(1, float64(ctx.NumFeatures)))
		delta := plan.Converger.Converge(wNew, prev, ctx)
		res.Deltas = append(res.Deltas, delta)
		if opts.CollectWeightsTrace {
			res.Trace = append(res.Trace, wNew.Clone())
		}
		copy(prev, wNew)
		res.FinalDelta = delta

		if !wNew.IsFinite() {
			res.Diverged = true
			break
		}
		if !plan.Looper.Loop(delta, ctx) {
			res.Converged = delta < plan.Tolerance
			break
		}
		if opts.TimeBudget > 0 && sim.Now()-start >= opts.TimeBudget {
			res.Budgeted = true
			break
		}
	}

	res.Weights = ctx.Weights.Clone()
	res.Iterations = ctx.Iter
	res.Time = sim.Now() - start
	res.Acct = sim.Acct
	return res, nil
}

// executor carries the per-run state shared by the phases.
type executor struct {
	sim   *cluster.Sim
	store *storage.Store
	plan  *gd.Plan
	ctx   *gd.Context
	rng   *rand.Rand

	sampler sampling.Sampler
	senv    *sampling.Env

	// units holds the transformed data units the processing phase reads:
	// all of them after an eager transform, or a growing memo under lazy
	// transformation (parsed on first touch, every iteration charged).
	units []data.Unit
	lazy  []bool // under lazy transform: which indices are parsed already
}

// stage runs the Stage operator on the driver, optionally feeding it a small
// sample of (parsed) units per Figure 3(b).
func (ex *executor) stage() error {
	var sample []data.Unit
	if m := ex.plan.StageSampleSize; m > 0 {
		if m > ex.store.Dataset.N() {
			m = ex.store.Dataset.N()
		}
		sample = make([]data.Unit, 0, m)
		var bytes int64
		for i := 0; i < m; i++ {
			u, err := ex.plan.Transformer.Transform(ex.store.Dataset.Raw[i], ex.ctx)
			if err != nil {
				return fmt.Errorf("engine: staging sample: %w", err)
			}
			sample = append(sample, u)
			bytes += int64(len(ex.store.Dataset.Raw[i])) + 1
		}
		ex.sim.RunLocal(ex.sim.CostParse(m, bytes))
	}
	ex.sim.RunLocal(ex.sim.CostCPU(1, float64(ex.ctx.NumFeatures)))
	return ex.plan.Stager.Stage(sample, ex.ctx)
}

// stockTransformer reports whether the plan uses the unmodified format
// transformer for the dataset's own format, in which case re-parsing Raw is
// guaranteed to reproduce Dataset.Units and the engine reuses them (cost is
// charged identically either way).
func (ex *executor) stockTransformer() bool {
	ft, ok := ex.plan.Transformer.(gd.FormatTransformer)
	return ok && ft.Format == ex.store.Dataset.Format
}

// eagerTransform parses the whole dataset upfront, one distributed task per
// partition (or locally when the dataset is a single partition).
func (ex *executor) eagerTransform() error {
	ds := ex.store.Dataset
	if ex.stockTransformer() {
		ex.units = ds.Units
	} else {
		ex.units = make([]data.Unit, ds.N())
		for i, raw := range ds.Raw {
			u, err := ex.plan.Transformer.Transform(raw, ex.ctx)
			if err != nil {
				return fmt.Errorf("engine: transform unit %d: %w", i, err)
			}
			ex.units[i] = u
		}
	}
	costs := make([]cluster.Seconds, 0, ex.store.NumPartitions())
	for _, p := range ex.store.Partitions {
		c := ex.sim.CostReadPartition(p, ex.store.Layout)
		c += ex.sim.CostParse(p.Units(), p.Bytes)
		costs = append(costs, c)
	}
	mode := ex.plan.Mode
	if ex.plan.TransformMode != gd.AutoMode {
		mode = ex.plan.TransformMode
	}
	if ex.distributedInputMode(ex.store.TotalBytes, mode) {
		ex.sim.RunWaves(costs)
	} else {
		var sum cluster.Seconds
		for _, c := range costs {
			sum += c
		}
		ex.sim.RunLocal(sum)
	}
	return nil
}

// unit returns transformed unit i, parsing (and charging) lazily when the
// plan defers transformation.
func (ex *executor) unit(i int) (data.Unit, cluster.Seconds, error) {
	if ex.plan.Transform == gd.Eager {
		return ex.units[i], 0, nil
	}
	raw := ex.store.Dataset.Raw[i]
	cost := ex.sim.CostParse(1, int64(len(raw))+1)
	if ex.units == nil {
		if ex.stockTransformer() {
			// Reuse the pre-parsed units but still charge parse cost per
			// touch: lazy transformation re-parses every sampled unit each
			// time it is drawn.
			ex.units = ex.store.Dataset.Units
			ex.lazy = nil
		} else {
			ex.units = make([]data.Unit, ex.store.Dataset.N())
			ex.lazy = make([]bool, ex.store.Dataset.N())
		}
	}
	if ex.lazy != nil && !ex.lazy[i] {
		u, err := ex.plan.Transformer.Transform(raw, ex.ctx)
		if err != nil {
			return data.Unit{}, 0, fmt.Errorf("engine: lazy transform unit %d: %w", i, err)
		}
		ex.units[i] = u
		ex.lazy[i] = true
	}
	return ex.units[i], cost, nil
}

// distributedInput applies the Appendix D placement rule: distribute iff the
// operator's input does not fit in a single data partition (unless the plan
// pins a mode).
func (ex *executor) distributedInput(bytes int64) bool {
	return ex.distributedInputMode(bytes, ex.plan.Mode)
}

func (ex *executor) distributedInputMode(bytes int64, mode gd.ExecMode) bool {
	switch mode {
	case gd.CentralizedMode:
		return false
	case gd.DistributedMode:
		return true
	default:
		return bytes > ex.store.Layout.PartitionBytes
	}
}

// iteration runs Sample (optional) + Transform (if lazy) + Compute for one
// iteration and returns the aggregated accumulator UC.
func (ex *executor) iteration() (linalg.Vector, error) {
	plan, ctx := ex.plan, ex.ctx
	d := ctx.NumFeatures
	acc := linalg.NewVector(plan.Computer.AccDim(d))

	fullBatch := plan.Sampling == gd.NoSampling
	if plan.Algorithm == gd.SVRG && plan.UpdateFrequency > 0 && ctx.Iter%plan.UpdateFrequency == 1 {
		fullBatch = true // SVRG snapshot iteration sweeps everything
	}

	if fullBatch {
		ctx.BatchSize = ctx.NumPoints
		return acc, ex.computeFull(acc)
	}

	ctx.BatchSize = plan.BatchSize
	idx, err := ex.sampler.Draw(ex.senv, plan.BatchSize)
	if err != nil {
		return nil, err
	}
	if plan.Algorithm != gd.SVRG {
		// Bernoulli returns a binomially-distributed count; Update takes
		// the mean over what was actually drawn.
		ctx.BatchSize = len(idx)
	}
	return acc, ex.computeBatch(idx, acc)
}

// computeFull runs Compute over every unit, one task per partition when
// distributed, charging each task its partition read plus CPU.
func (ex *executor) computeFull(acc linalg.Vector) error {
	plan, ctx := ex.plan, ex.ctx
	costs := make([]cluster.Seconds, 0, ex.store.NumPartitions())
	for _, p := range ex.store.Partitions {
		c := ex.sim.CostReadPartition(p, ex.store.Layout)
		var ops float64
		for i := p.Lo; i < p.Hi; i++ {
			u, parseCost, err := ex.unit(i)
			if err != nil {
				return err
			}
			c += parseCost
			plan.Computer.Compute(u, ctx, acc)
			ops += plan.Computer.Ops(u.NNZ())
		}
		c += ex.sim.CostCPU(p.Units(), ops)
		costs = append(costs, c)
	}
	if ex.distributedInput(ex.store.TotalBytes) {
		ex.sim.RunWaves(costs)
		// Partial aggregates (one per executor) reduce to the driver.
		execs := ex.sim.Cfg.Executors()
		ex.sim.Transfer(int64(execs*len(acc))*8, 1)
	} else {
		var sum cluster.Seconds
		for _, c := range costs {
			sum += c
		}
		ex.sim.RunLocal(sum)
	}
	return nil
}

// computeBatch runs Compute over the sampled unit indices. Placement follows
// the batch's byte size: small batches run on the driver (after shipping the
// sampled units there), large ones run as distributed tasks grouped by
// partition.
func (ex *executor) computeBatch(idx []int, acc linalg.Vector) error {
	plan, ctx := ex.plan, ex.ctx
	var batchBytes int64
	for _, i := range idx {
		batchBytes += int64(len(ex.store.Dataset.Raw[i])) + 1
	}
	if !ex.distributedInput(batchBytes) {
		// Centralized: sampled units travel to the driver, then one task.
		ex.sim.Transfer(batchBytes, 1)
		var cpu cluster.Seconds
		var ops float64
		for _, i := range idx {
			u, parseCost, err := ex.unit(i)
			if err != nil {
				return err
			}
			cpu += parseCost
			plan.Computer.Compute(u, ctx, acc)
			ops += plan.Computer.Ops(u.NNZ())
		}
		cpu += ex.sim.CostCPU(len(idx), ops)
		ex.sim.RunLocal(cpu)
		return nil
	}

	// Distributed: group the batch by partition, one task per partition.
	byPart := map[int][]int{}
	for _, i := range idx {
		p, err := ex.store.PartitionOf(i)
		if err != nil {
			return err
		}
		byPart[p.ID] = append(byPart[p.ID], i)
	}
	costs := make([]cluster.Seconds, 0, len(byPart))
	for _, members := range byPart {
		var c cluster.Seconds
		var ops float64
		for _, i := range members {
			u, parseCost, err := ex.unit(i)
			if err != nil {
				return err
			}
			c += parseCost
			plan.Computer.Compute(u, ctx, acc)
			ops += plan.Computer.Ops(u.NNZ())
		}
		c += ex.sim.CostCPU(len(members), ops)
		costs = append(costs, c)
	}
	ex.sim.RunWaves(costs)
	execs := ex.sim.Cfg.Executors()
	if len(byPart) < execs {
		execs = len(byPart)
	}
	ex.sim.Transfer(int64(execs*len(acc))*8, 1)
	return nil
}
