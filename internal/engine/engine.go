// Package engine executes GD plans over the simulated cluster. It is the
// stand-in for Rheem with Java and Spark underneath (paper Appendix D):
// every operator is placed either centralized ("Java", on the driver) or
// distributed ("Spark", in waves over partitions), chosen per operator by
// whether its input fits in a single data partition — so a plan can and
// usually does execute as a mix of both. The numeric work (parsing,
// gradients, updates) is performed for real; only time is simulated.
//
// Since the parallel-executor refactor the numeric work is also physically
// parallel: the Compute phase (including the line-search loss passes and SVRG
// snapshot sweeps, which are Compute passes) and the eager Transform phase
// run on a worker pool (Options.Workers, default GOMAXPROCS) over stable
// shards of the dataset, each shard into its own accumulator, reduced with an
// ordered tree. Cost charging stays on the driver goroutine in a fixed order,
// so the simulated clock, accounting and all numeric results are bit-identical
// for every worker count — Workers only changes wall-clock speed. See
// DESIGN.md for the full simulated-time vs real-work split.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/gd"
	"ml4all/internal/linalg"
	"ml4all/internal/sampling"
	"ml4all/internal/storage"
)

// Options tunes a single plan execution.
type Options struct {
	// TimeBudget, when positive, stops the run once the simulated clock has
	// advanced that far past the start (the iterations estimator speculates
	// under such a budget, Algorithm 1).
	TimeBudget cluster.Seconds

	// Seed drives the run's sampling RNG. Zero means seed 1.
	Seed int64

	// CollectWeightsTrace, when true, snapshots the weight vector after
	// every iteration (used by curve-fit figures; costs memory).
	CollectWeightsTrace bool

	// Workers sizes the real worker pool the Compute and eager-Transform
	// phases execute on (line-search loss passes are Compute passes; model
	// evaluation in package metrics is outside the engine and stays
	// serial). 0 (the default) means runtime.GOMAXPROCS(0);
	// 1 forces the serial path. The engine guarantees bit-identical results
	// (weights, iteration counts, deltas, simulated time, accounting) for
	// every worker count: shard boundaries never depend on Workers and
	// partials reduce in a fixed order, so only wall-clock time changes.
	// Custom Transformer/Computer UDFs must honor the concurrency contract
	// documented on gd.Computer when Workers != 1.
	Workers int

	// InitWeights, when non-nil, overrides the weights the plan's Stage
	// operator produced, warm-starting the run. The adaptive controller
	// uses it to carry the model across a mid-flight plan switch; the
	// vector is cloned, so callers keep ownership.
	InitWeights linalg.Vector

	// InitIter, when positive, starts the iteration counter there instead
	// of 0, so step-size schedules (alpha_i) continue across a plan switch
	// instead of restarting hot. The first executed iteration is then
	// InitIter+1. MaxIter still bounds the counter's absolute value.
	InitIter int

	// BlockSize is the row-block width the batched compute path hands to
	// gd.BatchComputer implementations (see DESIGN.md §8). 0 (the default)
	// means 512. The value trades cache residency against dispatch
	// amortization and affects speed only: block kernels are bit-identical
	// to the per-row path for every block size, so results never depend on
	// it (the block property test sweeps it).
	BlockSize int

	// FastMath opts the run into the tolerance-bounded fast kernel tier:
	// the batched compute path dispatches to the multi-accumulator margin
	// kernels and fused gradient accumulation (gradients.FastGradient),
	// with the logistic sigmoid routed through linalg.ExpFast. Off (the
	// default) keeps the bit-exact kernels, which remain the correctness
	// oracle: fast-tier results agree with them to the per-element bounds
	// TestFastMathWithinEpsilon pins, not bit for bit, so runs with
	// FastMath on are NOT bit-comparable to runs with it off. The sim
	// charges the fast tier's measured per-op throughput
	// (cluster.FastMathFlopFrac) so plan costing tracks the real speedup.
	FastMath bool

	// Interrupt, when non-nil, is polled at the top of every Step, before
	// the iteration mutates any state. A non-nil return aborts that Step
	// with a wrapped ErrInterrupted; the trainer itself stays consistent —
	// it can be checkpointed, resumed, or stepped again (if the interrupt
	// condition clears), and a resumed run is bit-identical to one that was
	// never interrupted. The serving layer wires a context's Err here so
	// in-flight training jobs are cancellable between iterations.
	Interrupt func() error

	// Observer, when non-nil, receives one IterEvent after every completed
	// Step, carrying the iteration's convergence delta and the simulator's
	// absolute clock and op accounting at that point. The hook runs on the
	// driver goroutine after all state for the iteration is final; it must
	// not retain the event past the call and must be cheap — the trainer
	// holds no locks but a slow observer stalls training. nil (the
	// default) costs exactly one branch per iteration and changes nothing
	// else: results are bit-identical with and without an observer.
	Observer Observer
}

// Observer receives per-iteration telemetry from a Trainer. Implementations
// must be safe for reuse across runs but are only ever called from the
// single driver goroutine of one run at a time.
type Observer interface {
	ObserveIter(ev IterEvent)
}

// IterEvent is the per-iteration record handed to Options.Observer. All
// fields are absolute (not per-iteration diffs): SimSeconds is the
// simulated clock and Units the cumulative unit count at the end of the
// iteration, so ring buffers can derive increments without the trainer
// doing subtraction on the hot path.
type IterEvent struct {
	Iter       int     // 1-based iteration counter (ctx.Iter)
	Delta      float64 // convergence delta this iteration
	SimSeconds float64 // simulated clock after the iteration
	Units      int64   // cumulative data units processed (Acct.UnitsSeen)
}

// ErrInterrupted is wrapped into the error Step returns when
// Options.Interrupt fires, alongside the cause the hook returned; callers
// distinguish cancellation from genuine step failures with errors.Is.
var ErrInterrupted = errors.New("engine: step interrupted")

// Result reports one plan execution.
type Result struct {
	PlanName   string
	Weights    linalg.Vector
	Iterations int
	Converged  bool // stopped because delta < tolerance
	Budgeted   bool // stopped because the time budget ran out
	Diverged   bool // weights became non-finite
	FinalDelta float64
	Time       cluster.Seconds // simulated training time
	Deltas     []float64       // per-iteration convergence deltas (error sequence)
	Trace      []linalg.Vector // optional per-iteration weights
	Acct       cluster.Accounting
}

// Run executes plan against the dataset in store on sim, advancing sim's
// clock. The caller owns sim; Run neither resets it nor assumes a zero clock,
// so speculation and execution can share one timeline. Run is a thin loop
// over the resumable Trainer (see trainer.go) and is bit-identical to the
// pre-Trainer monolithic loop for every plan and worker count.
func Run(sim *cluster.Sim, store *storage.Store, plan *gd.Plan, opts Options) (*Result, error) {
	t, err := NewTrainer(sim, store, plan, opts)
	if err != nil {
		return nil, err
	}
	for !t.Done() {
		if err := t.Step(); err != nil {
			return nil, err
		}
	}
	return t.Finish(), nil
}

// executor carries the per-run state shared by the phases.
type executor struct {
	sim   *cluster.Sim
	store *storage.Store
	plan  *gd.Plan
	ctx   *gd.Context
	rng   *rand.Rand
	seed  int64

	// workers is the effective pool size; shards is the stable partitioned
	// view the numeric phases fan out over.
	workers int
	shards  []storage.Shard

	// batch is the plan's Computer when it implements the blocked compute
	// extension (all stock computers do), resolved once per run; nil keeps
	// the per-row path. blockSize is the row-block width of the blocked
	// path (Options.BlockSize, default 512).
	batch     gd.BatchComputer
	blockSize int

	// fast is set when the blocked path will actually dispatch the
	// fast-math kernel tier (Options.FastMath, batch-capable computer,
	// gradient with fast kernels — gd.FastBatchComputer); the cost loop
	// then charges Sim.CostComputeFast for blocked passes, keeping
	// execution and billing on the same tier.
	fast bool

	sampler sampling.Sampler
	senv    *sampling.Env

	// The transformed data the processing phase reads. With a stock
	// transformer the engine reads the dataset's columnar arena directly
	// (mat) — zero copies, zero per-row objects. Custom Transform UDFs
	// materialize standalone rows into the rows memo instead: all of them
	// after an eager transform, or on first touch under lazy transformation
	// (every iteration charged).
	mat  *data.Matrix
	rows []data.Row
	lazy []bool // under lazy transform: which indices are parsed already

	// opsByPart caches the per-partition Ops sums after the first full
	// pass; see computeFull.
	opsByPart []float64

	// Reusable per-pass scratch, all content-deterministic: the flat
	// accumulator arena the per-task partials are carved from (one
	// allocation instead of one buffer per shard), the partial-vector
	// headers, the iteration accumulator, the span list of full passes
	// (fixed per run), and the span/cost buffers rebuilt each pass.
	accArena  []float64
	partials  []linalg.Vector
	accBuf    linalg.Vector
	fullSpans []span
	spanBuf   []span
	costBuf   []cluster.Seconds

	// Worker-pool scaffolding reused across parallel passes (see runTasks).
	errBuf        []error
	taskFn        func(int) error
	taskN         int
	taskNext      atomic.Int64
	taskMinFailed atomic.Int64
	taskWG        sync.WaitGroup
	workFn        func()
}

// row returns the transformed data unit i as a zero-copy row view.
func (ex *executor) row(i int) data.Row {
	if ex.mat != nil {
		return ex.mat.Row(i)
	}
	return ex.rows[i]
}

// rowNNZ returns the stored-value count of unit i (an O(1) offsets lookup on
// the arena path), used by per-unit cost accounting.
func (ex *executor) rowNNZ(i int) int {
	if ex.mat != nil {
		return ex.mat.RowNNZ(i)
	}
	return ex.rows[i].NNZ()
}

// stage runs the Stage operator on the driver, optionally feeding it a small
// sample of (parsed) units per Figure 3(b).
func (ex *executor) stage() error {
	var sample []data.Row
	if m := ex.plan.StageSampleSize; m > 0 {
		if m > ex.store.Dataset.N() {
			m = ex.store.Dataset.N()
		}
		sample = make([]data.Row, 0, m)
		var bytes int64
		for i := 0; i < m; i++ {
			u, err := ex.plan.Transformer.Transform(ex.store.Dataset.Raw[i], ex.ctx)
			if err != nil {
				return fmt.Errorf("engine: staging sample: %w", err)
			}
			sample = append(sample, u)
			bytes += int64(len(ex.store.Dataset.Raw[i])) + 1
		}
		ex.sim.RunLocal(ex.sim.CostParse(m, bytes))
	}
	ex.sim.RunLocal(ex.sim.CostCPU(1, float64(ex.ctx.NumFeatures)))
	return ex.plan.Stager.Stage(sample, ex.ctx)
}

// stockTransformer reports whether the plan uses the unmodified format
// transformer for the dataset's own format, in which case re-parsing Raw is
// guaranteed to reproduce the dataset's columnar arena and the engine reads
// it directly (cost is charged identically either way).
func (ex *executor) stockTransformer() bool {
	ft, ok := ex.plan.Transformer.(gd.FormatTransformer)
	return ok && ft.Format == ex.store.Dataset.Format
}

// distributedInput applies the Appendix D placement rule: distribute iff the
// operator's input does not fit in a single data partition (unless the plan
// pins a mode).
func (ex *executor) distributedInput(bytes int64) bool {
	return ex.distributedInputMode(bytes, ex.plan.Mode)
}

func (ex *executor) distributedInputMode(bytes int64, mode gd.ExecMode) bool {
	switch mode {
	case gd.CentralizedMode:
		return false
	case gd.DistributedMode:
		return true
	default:
		return bytes > ex.store.Layout.PartitionBytes
	}
}
