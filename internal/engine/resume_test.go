package engine_test

// Resume equivalence: Checkpoint at iteration k then Resume on a fresh
// simulator must reproduce the uninterrupted run bitwise — weights, deltas,
// simulated time and the full cluster accounting — across all three tasks,
// representative plans from every corner of the space (full-batch, sampled,
// lazy, stateful-context variants, non-stock transformers) and worker counts
// 1/2/8. A second test pins the Trainer lifecycle itself: driving Step by
// hand over the whole eleven-plan planner space equals engine.Run exactly.

import (
	"fmt"
	"reflect"
	"testing"

	"ml4all/internal/cluster"
	"ml4all/internal/data"
	"ml4all/internal/engine"
	"ml4all/internal/gd"
	"ml4all/internal/planner"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

// resumeLayout keeps datasets multi-partition so partition-based samplers,
// distributed placement and the block cache all stay exercised.
var resumeLayout = storage.Layout{PartitionBytes: 32 << 10, PageBytes: 1 << 10}

func resumeDataset(t testing.TB, task data.TaskKind) *storage.Store {
	t.Helper()
	ds, err := synth.Generate(synth.Spec{
		Name: "resume-" + task.String(), Task: task,
		N: 2500, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.Build(ds, resumeLayout)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// wrapTransformer hides the stock FormatTransformer behind a distinct type,
// forcing the engine down the real parse-and-memoize path (the stock
// transformer reuses the dataset's pre-parsed units instead).
type wrapTransformer struct{ inner gd.Transformer }

func (w wrapTransformer) Transform(raw string, ctx *gd.Context) (data.Row, error) {
	return w.inner.Transform(raw, ctx)
}

// resumePlans returns the representative plan set for one task: BGD, the
// sampled SGD/MGD corners (eager+bernoulli, eager+random, lazy+shuffle), the
// stateful-context variants (SVRG, line-search BGD), and a lazy plan with a
// non-stock transformer exercising memo rebuild on resume.
func resumePlans(task data.TaskKind, format data.Format) []gd.Plan {
	p := gd.Params{Task: task, Format: format, Tolerance: 1e-9, MaxIter: 36, BatchSize: 220}
	plans := []gd.Plan{
		gd.NewBGD(p),
		gd.NewSGD(p, gd.Eager, gd.RandomPartition),
		gd.NewMGD(p, gd.Eager, gd.Bernoulli),
		gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition),
		gd.NewSVRG(p, 5),
		gd.NewLineSearchBGD(p, 0.5),
	}
	nonStock := gd.NewMGD(p, gd.Lazy, gd.ShuffledPartition)
	nonStock.Transformer = wrapTransformer{inner: nonStock.Transformer}
	plans = append(plans, nonStock)
	return plans
}

// checkSame asserts bitwise equality of everything the acceptance criteria
// name: weights, iteration counts, deltas, simulated time, accounting.
func checkSame(t *testing.T, label string, want, got *engine.Result) {
	t.Helper()
	if !got.Weights.Equal(want.Weights, 0) {
		t.Fatalf("%s: weights differ", label)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d != %d", label, got.Iterations, want.Iterations)
	}
	if len(got.Deltas) != len(want.Deltas) {
		t.Fatalf("%s: %d deltas != %d", label, len(got.Deltas), len(want.Deltas))
	}
	for i := range got.Deltas {
		if got.Deltas[i] != want.Deltas[i] {
			t.Fatalf("%s: delta[%d] %g != %g", label, i, got.Deltas[i], want.Deltas[i])
		}
	}
	if got.FinalDelta != want.FinalDelta {
		t.Fatalf("%s: final delta %g != %g", label, got.FinalDelta, want.FinalDelta)
	}
	if got.Time != want.Time {
		t.Fatalf("%s: sim time %v != %v", label, got.Time, want.Time)
	}
	if got.Converged != want.Converged || got.Budgeted != want.Budgeted || got.Diverged != want.Diverged {
		t.Fatalf("%s: termination flags differ", label)
	}
	if !reflect.DeepEqual(got.Acct, want.Acct) {
		t.Fatalf("%s: accounting differs:\n got %+v\nwant %+v", label, got.Acct, want.Acct)
	}
}

// TestCheckpointResumeEquivalence is the headline guarantee: for every task
// × representative plan × worker count, a run checkpointed at iteration k
// (serialized through Encode/Decode) and resumed on a fresh simulator
// finishes bitwise identical to the uninterrupted run — and the checkpointed
// trainer itself, left running, is undisturbed by the snapshot.
func TestCheckpointResumeEquivalence(t *testing.T) {
	tasks := []data.TaskKind{data.TaskSVM, data.TaskLogisticRegression, data.TaskLinearRegression}
	for _, task := range tasks {
		st := resumeDataset(t, task)
		for _, plan := range resumePlans(task, st.Dataset.Format) {
			for _, workers := range []int{1, 2, 8} {
				plan := plan
				name := fmt.Sprintf("%s/%s/workers=%d", task, plan.Name(), workers)
				t.Run(name, func(t *testing.T) {
					opts := engine.Options{Seed: 11, Workers: workers}
					base, err := engine.Run(cluster.New(cluster.Default()), st, &plan, opts)
					if err != nil {
						t.Fatal(err)
					}
					if base.Iterations < 2 {
						t.Fatalf("degenerate baseline: %d iterations", base.Iterations)
					}

					tr, err := engine.NewTrainer(cluster.New(cluster.Default()), st, &plan, opts)
					if err != nil {
						t.Fatal(err)
					}
					k := base.Iterations / 2
					for i := 0; i < k; i++ {
						if err := tr.Step(); err != nil {
							t.Fatal(err)
						}
					}
					cp, err := tr.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					enc, err := cp.Encode()
					if err != nil {
						t.Fatal(err)
					}
					dec, err := engine.DecodeTrainState(enc)
					if err != nil {
						t.Fatal(err)
					}

					// The original trainer, checkpoint taken, must finish
					// exactly like the uninterrupted run.
					for !tr.Done() {
						if err := tr.Step(); err != nil {
							t.Fatal(err)
						}
					}
					checkSame(t, "checkpointed-but-continued", base, tr.Finish())

					// The resumed trainer on a fresh simulator must too.
					rt, err := engine.Resume(cluster.New(cluster.Default()), st, &plan, opts, dec)
					if err != nil {
						t.Fatal(err)
					}
					for !rt.Done() {
						if err := rt.Step(); err != nil {
							t.Fatal(err)
						}
					}
					checkSame(t, "resumed", base, rt.Finish())
				})
			}
		}
	}
}

// TestTrainerMatchesRunAcrossSpace drives the Trainer lifecycle by hand over
// the full eleven-plan optimizer space at workers 1/2/8 and asserts the
// outcome equals engine.Run bitwise — the "adaptation disabled ⇒ refactor is
// invisible" acceptance criterion.
func TestTrainerMatchesRunAcrossSpace(t *testing.T) {
	st := resumeDataset(t, data.TaskLogisticRegression)
	p := gd.Params{
		Task: data.TaskLogisticRegression, Format: st.Dataset.Format,
		Tolerance: 1e-9, MaxIter: 25, BatchSize: 220, Lambda: 0.01,
	}
	for _, plan := range planner.Space(p) {
		for _, workers := range []int{1, 2, 8} {
			plan := plan
			t.Run(fmt.Sprintf("%s/workers=%d", plan.Name(), workers), func(t *testing.T) {
				opts := engine.Options{Seed: 5, Workers: workers}
				base, err := engine.Run(cluster.New(cluster.Default()), st, &plan, opts)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := engine.NewTrainer(cluster.New(cluster.Default()), st, &plan, opts)
				if err != nil {
					t.Fatal(err)
				}
				for !tr.Done() {
					if err := tr.Step(); err != nil {
						t.Fatal(err)
					}
				}
				checkSame(t, "trainer-vs-run", base, tr.Finish())
			})
		}
	}
}

// TestResumeRejectsMismatch pins the guard rails: resuming with a different
// plan or onto a differently-configured simulator fails loudly instead of
// silently diverging.
func TestResumeRejectsMismatch(t *testing.T) {
	st := resumeDataset(t, data.TaskSVM)
	plans := resumePlans(data.TaskSVM, st.Dataset.Format)
	plan := plans[0]
	opts := engine.Options{Seed: 11, Workers: 2}
	tr, err := engine.NewTrainer(cluster.New(cluster.Default()), st, &plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	cp, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	other := plans[1]
	if _, err := engine.Resume(cluster.New(cluster.Default()), st, &other, opts, cp); err == nil {
		t.Fatal("resume with a different plan succeeded")
	}
	narrow, err := synth.Generate(synth.Spec{
		Name: "resume-narrow", Task: data.TaskSVM,
		N: 2500, D: 8, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	narrowStore, err := storage.Build(narrow, resumeLayout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Resume(cluster.New(cluster.Default()), narrowStore, &plan, opts, cp); err == nil {
		t.Fatal("resume onto a store with a different feature count succeeded")
	}
	cfg := cluster.Default()
	cfg.JitterFrac = 0
	if _, err := engine.Resume(cluster.New(cfg), st, &plan, opts, cp); err == nil {
		t.Fatal("resume on a differently-configured sim succeeded")
	}
}
