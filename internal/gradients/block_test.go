package gradients

import (
	"math"
	"math/rand"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

func blockTestMatrix(t *testing.T, rng *rand.Rand, dense bool, rows, d int) *data.Matrix {
	t.Helper()
	if dense {
		b := data.NewDenseMatrixBuilder(rows, d)
		vals := make([]float64, d)
		for i := 0; i < rows; i++ {
			for j := range vals {
				vals[j] = rng.NormFloat64()
			}
			if err := b.AppendDense(blockTestLabel(rng), vals); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	b := data.NewMatrixBuilder(rows, rows*3)
	for i := 0; i < rows; i++ {
		nnz := 1 + rng.Intn(d-1)
		idx := make([]int32, 0, nnz)
		vals := make([]float64, 0, nnz)
		for k := 0; k < nnz; k++ {
			idx = append(idx, int32(rng.Intn(d)))
			vals = append(vals, rng.NormFloat64())
		}
		if err := b.AppendSparse(blockTestLabel(rng), idx, vals); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func blockTestLabel(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// Every stock loss must satisfy the BlockGradient contract bit for bit:
// AddGradientBlock equals per-row AddGradient accumulation (into an already
// nonzero buffer), LossBlock equals per-row Loss accumulation into an
// already nonzero sum — on the fused dense path, the fused CSR path and the
// per-row fallback of a non-contiguous gathered block.
func TestBlockKernelsMatchRowKernelsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const d = 12
	losses := []Gradient{Hinge{}, Logistic{}, LeastSquares{}}
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, g := range losses {
		bg, ok := g.(BlockGradient)
		if !ok {
			t.Fatalf("%s does not implement BlockGradient", g.Name())
		}
		for _, dense := range []bool{true, false} {
			m := blockTestMatrix(t, rng, dense, 64, d)
			blocks := []data.Block{
				m.Block(0, 64),                         // fused full arena
				m.Block(5, 18),                         // fused partial
				m.GatherBlock([]int{33, 7, 7, 50, 12}), // per-row fallback
			}
			for bi, blk := range blocks {
				// Seed both accumulators with the same nonzero garbage so
				// order-of-addition differences cannot hide.
				gradRow := make(linalg.Vector, d)
				for i := range gradRow {
					gradRow[i] = rng.NormFloat64()
				}
				gradBlk := gradRow.Clone()
				sumRow := rng.NormFloat64()
				sumBlk := sumRow

				for j := 0; j < blk.Len(); j++ {
					u := blk.Row(j)
					g.AddGradient(w, u, gradRow)
					sumRow += g.Loss(w, u)
				}
				margins := make([]float64, blk.Len())
				bg.AddGradientBlock(w, blk, margins, gradBlk)
				bg.LossBlock(w, blk, margins, &sumBlk)

				for i := range gradRow {
					if math.Float64bits(gradRow[i]) != math.Float64bits(gradBlk[i]) {
						t.Fatalf("%s dense=%v block %d: grad[%d] %g != %g",
							g.Name(), dense, bi, i, gradBlk[i], gradRow[i])
					}
				}
				if math.Float64bits(sumRow) != math.Float64bits(sumBlk) {
					t.Fatalf("%s dense=%v block %d: loss sum %g != %g", g.Name(), dense, bi, sumBlk, sumRow)
				}
			}
		}
	}
}

// ObjectiveMatrix must agree with Objective bit for bit, block-kernel path
// and fallback alike.
func TestObjectiveMatrixMatchesObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d = 10
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	reg := L2{Lambda: 0.3}
	for _, g := range []Gradient{Hinge{}, Logistic{}, LeastSquares{}} {
		for _, dense := range []bool{true, false} {
			m := blockTestMatrix(t, rng, dense, 700, d) // > one objective block
			want := Objective(g, reg, w, m.Rows())
			got := ObjectiveMatrix(g, reg, w, m)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%s dense=%v: ObjectiveMatrix %g != Objective %g", g.Name(), dense, got, want)
			}
		}
	}
}
