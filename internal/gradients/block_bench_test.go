package gradients

import (
	"math/rand"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Calibration benchmarks: the per-row cost of the gradient step on the
// blocked kernels vs the row-at-a-time path, on both arena layouts. These
// are the measurements behind the cluster.ComputeUnitOverheadFrac constant
// table (see internal/cluster/calibration.go); re-run with
//
//	go test -bench 'BenchmarkGradientPath' -benchtime=2s ./internal/gradients/
//
// after kernel changes and update the table if the ratio moved.

func benchMatrix(b *testing.B, dense bool, rows, d int, density float64) *data.Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	if dense {
		mb := data.NewDenseMatrixBuilder(rows, d)
		vals := make([]float64, d)
		for i := 0; i < rows; i++ {
			for j := range vals {
				vals[j] = rng.NormFloat64()
			}
			if err := mb.AppendDense(1, vals); err != nil {
				b.Fatal(err)
			}
		}
		return mb.Build()
	}
	nnz := int(float64(d) * density)
	mb := data.NewMatrixBuilder(rows, rows*nnz)
	for i := 0; i < rows; i++ {
		idx := make([]int32, 0, nnz)
		vals := make([]float64, 0, nnz)
		for k := 0; k < nnz; k++ {
			idx = append(idx, int32(rng.Intn(d)))
			vals = append(vals, rng.NormFloat64())
		}
		if err := mb.AppendSparse(1, idx, vals); err != nil {
			b.Fatal(err)
		}
	}
	return mb.Build()
}

// benchGradientPath times one of the three dispatch tiers: per-row interface
// calls ("row"), the exact blocked kernels ("blocked"), or the fast-math
// blocked kernels ("fast").
func benchGradientPath(b *testing.B, dense bool, path string) {
	const rows, d = 4096, 50
	m := benchMatrix(b, dense, rows, d, 0.05)
	var g Logistic
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = 0.01 * float64(i)
	}
	grad := make(linalg.Vector, d)
	margins := make([]float64, 512)
	// The interface value the per-row engine path dispatches through per
	// unit; package-level so the compiler cannot devirtualize the calls.
	benchGradientSink = g
	gi := benchGradientSink
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch path {
		case "blocked":
			for lo := 0; lo < rows; lo += 512 {
				g.AddGradientBlock(w, m.Block(lo, lo+512), margins, grad)
			}
		case "fast":
			for lo := 0; lo < rows; lo += 512 {
				g.AddGradientBlockFast(w, m.Block(lo, lo+512), margins, grad)
			}
		default:
			for r := 0; r < rows; r++ {
				gi.AddGradient(w, m.Row(r), grad)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}

var benchGradientSink Gradient

func BenchmarkGradientPathDenseRow(b *testing.B)     { benchGradientPath(b, true, "row") }
func BenchmarkGradientPathDenseBlocked(b *testing.B) { benchGradientPath(b, true, "blocked") }
func BenchmarkGradientPathDenseFast(b *testing.B)    { benchGradientPath(b, true, "fast") }
func BenchmarkGradientPathCSRRow(b *testing.B)       { benchGradientPath(b, false, "row") }
func BenchmarkGradientPathCSRBlocked(b *testing.B)   { benchGradientPath(b, false, "blocked") }
func BenchmarkGradientPathCSRFast(b *testing.B)      { benchGradientPath(b, false, "fast") }
