package gradients

import (
	"math"
	"math/rand"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// numericalGradient approximates ∇f(w) for the per-point loss by central
// differences, the ground truth the analytic gradients must match.
func numericalGradient(g Gradient, w linalg.Vector, u data.Row) linalg.Vector {
	const h = 1e-6
	grad := linalg.NewVector(len(w))
	for j := range w {
		wp, wm := w.Clone(), w.Clone()
		wp[j] += h
		wm[j] -= h
		grad[j] = (g.Loss(wp, u) - g.Loss(wm, u)) / (2 * h)
	}
	return grad
}

func randomDenseUnit(r *rand.Rand, d int, label float64) data.Row {
	v := make(linalg.Vector, d)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return data.NewDenseRow(label, v)
}

func checkGradientMatchesLoss(t *testing.T, g Gradient, smoothOnly bool) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	const d = 6
	for trial := 0; trial < 50; trial++ {
		label := 1.0
		if r.Float64() < 0.5 {
			label = -1
		}
		u := randomDenseUnit(r, d, label)
		w := make(linalg.Vector, d)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		if smoothOnly {
			// Hinge is non-differentiable at margin 1; skip the kink.
			if m := u.Label * u.Dot(w); math.Abs(m-1) < 1e-3 {
				continue
			}
		}
		analytic := linalg.NewVector(d)
		g.AddGradient(w, u, analytic)
		numeric := numericalGradient(g, w, u)
		if !analytic.Equal(numeric, 1e-4) {
			t.Fatalf("%s: analytic %v != numeric %v (w=%v u=%v)", g.Name(), analytic, numeric, w, u)
		}
	}
}

func TestHingeGradientMatchesLoss(t *testing.T)    { checkGradientMatchesLoss(t, Hinge{}, true) }
func TestLogisticGradientMatchesLoss(t *testing.T) { checkGradientMatchesLoss(t, Logistic{}, false) }
func TestLeastSquaresGradientMatchesLoss(t *testing.T) {
	checkGradientMatchesLoss(t, LeastSquares{}, false)
}

func TestHingeInactiveRegionHasZeroGradient(t *testing.T) {
	u := data.NewDenseRow(1, linalg.Vector{2, 0})
	w := linalg.Vector{1, 0} // margin = 2 >= 1
	grad := linalg.NewVector(2)
	Hinge{}.AddGradient(w, u, grad)
	if grad.Norm1() != 0 {
		t.Fatalf("gradient in inactive region = %v, want zeros", grad)
	}
	if got := (Hinge{}).Loss(w, u); got != 0 {
		t.Fatalf("loss in inactive region = %g, want 0", got)
	}
}

func TestLogisticLossStableForLargeMargins(t *testing.T) {
	u := data.NewDenseRow(-1, linalg.Vector{1})
	w := linalg.Vector{100}
	got := Logistic{}.Loss(w, u) // -y*wx = 100 => loss ~ 100
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("loss overflowed: %g", got)
	}
	if math.Abs(got-100) > 1e-6 {
		t.Fatalf("large-margin loss = %g, want ~100", got)
	}
}

func TestForTask(t *testing.T) {
	cases := []struct {
		task data.TaskKind
		want string
	}{
		{data.TaskSVM, "hinge"},
		{data.TaskLogisticRegression, "logistic"},
		{data.TaskLinearRegression, "leastsquares"},
	}
	for _, c := range cases {
		if got := ForTask(c.task).Name(); got != c.want {
			t.Errorf("ForTask(%v) = %s, want %s", c.task, got, c.want)
		}
	}
}

func TestL2Regularizer(t *testing.T) {
	w := linalg.Vector{3, 4}
	reg := L2{Lambda: 0.5}
	if got, want := reg.Penalty(w), 0.25*25.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Penalty = %g, want %g", got, want)
	}
	grad := linalg.NewVector(2)
	reg.AddGradient(w, grad)
	if !grad.Equal(linalg.Vector{1.5, 2}, 1e-12) {
		t.Fatalf("reg gradient = %v, want [1.5 2]", grad)
	}
	// Lambda zero is a no-op.
	grad2 := linalg.NewVector(2)
	(L2{}).AddGradient(w, grad2)
	if grad2.Norm1() != 0 || (L2{}).Penalty(w) != 0 {
		t.Fatal("zero-lambda regularizer not a no-op")
	}
}

func TestMeanGradientMatchesManualSum(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	units := make([]data.Row, 10)
	for i := range units {
		label := 1.0
		if i%2 == 0 {
			label = -1
		}
		units[i] = randomDenseUnit(r, 4, label)
	}
	w := linalg.Vector{0.1, -0.2, 0.3, 0.4}
	g := Logistic{}
	reg := L2{Lambda: 0.1}

	want := linalg.NewVector(4)
	for _, u := range units {
		g.AddGradient(w, u, want)
	}
	want.Scale(1.0 / 10)
	want.AddScaled(reg.Lambda, w)

	got := linalg.NewVector(4)
	MeanGradient(g, reg, w, units, got)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MeanGradient = %v, want %v", got, want)
	}
}

func TestObjectiveDecreasesAlongNegativeGradient(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	units := make([]data.Row, 50)
	for i := range units {
		label := 1.0
		if r.Float64() < 0.5 {
			label = -1
		}
		units[i] = randomDenseUnit(r, 5, label)
	}
	g := Logistic{}
	reg := L2{Lambda: 0.01}
	w := make(linalg.Vector, 5)
	for i := range w {
		w[i] = r.NormFloat64()
	}
	before := Objective(g, reg, w, units)
	grad := linalg.NewVector(5)
	MeanGradient(g, reg, w, units, grad)
	w.AddScaled(-0.01, grad)
	after := Objective(g, reg, w, units)
	if after >= before {
		t.Fatalf("objective did not decrease: %g -> %g", before, after)
	}
}

func TestObjectiveEmptyUnits(t *testing.T) {
	w := linalg.Vector{1, 1}
	if got := Objective(Hinge{}, L2{Lambda: 1}, w, nil); math.Abs(got-1) > 1e-12 {
		t.Fatalf("empty objective = %g, want penalty 1", got)
	}
}

func TestSparseGradientMatchesDense(t *testing.T) {
	// A sparse unit and its densification must produce identical gradients.
	s, err := linalg.NewSparse([]int32{0, 3}, []float64{1.5, -2})
	if err != nil {
		t.Fatal(err)
	}
	su := data.NewSparseUnit(1, s).Row()
	du := data.NewDenseUnit(1, s.Dense(5)).Row()
	w := linalg.Vector{0.1, 0.2, 0.3, -0.4, 0.5}
	for _, g := range []Gradient{Hinge{}, Logistic{}, LeastSquares{}} {
		gs, gd := linalg.NewVector(5), linalg.NewVector(5)
		g.AddGradient(w, su, gs)
		g.AddGradient(w, du, gd)
		if !gs.Equal(gd, 1e-12) {
			t.Errorf("%s: sparse %v != dense %v", g.Name(), gs, gd)
		}
		if ls, ld := g.Loss(w, su), g.Loss(w, du); math.Abs(ls-ld) > 1e-12 {
			t.Errorf("%s: sparse loss %g != dense loss %g", g.Name(), ls, ld)
		}
	}
}
