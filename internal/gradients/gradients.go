// Package gradients implements the loss functions and gradient functions of
// the paper's Table 3 — SVM (hinge), logistic regression and linear
// regression (least squares) — plus the L2 regularizer used throughout the
// evaluation. Gradients accumulate into a caller-provided buffer so that
// batch computation does not allocate per point.
package gradients

import (
	"fmt"
	"math"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Gradient computes per-point losses and gradient contributions.
//
// AddGradient accumulates ∇f_i(w) for point u into grad (which has the model
// dimensionality). Loss returns f_i(w). Ops reports the approximate number of
// multiply-add operations one AddGradient call performs for a point with nnz
// stored values; the cluster simulator charges CPU time with it.
type Gradient interface {
	AddGradient(w linalg.Vector, u data.Row, grad linalg.Vector)
	Loss(w linalg.Vector, u data.Row) float64
	Ops(nnz int) float64
	Name() string
}

// ForTask returns the paper's default gradient for a task (Table 3).
func ForTask(t data.TaskKind) Gradient {
	switch t {
	case data.TaskSVM:
		return Hinge{}
	case data.TaskLogisticRegression:
		return Logistic{}
	case data.TaskLinearRegression:
		return LeastSquares{}
	default:
		panic(fmt.Sprintf("gradients: unknown task %v", t))
	}
}

// Hinge is the SVM gradient of Table 3:
//
//	g(w, x, y) = -y*x if y*wᵀx < 1, else 0.
type Hinge struct{}

// Name returns "hinge".
func (Hinge) Name() string { return "hinge" }

// AddGradient implements Gradient.
func (Hinge) AddGradient(w linalg.Vector, u data.Row, grad linalg.Vector) {
	if u.Label*u.Dot(w) < 1 {
		u.AddScaledInto(grad, -u.Label)
	}
}

// Loss returns the hinge loss max(0, 1-y*wᵀx).
func (Hinge) Loss(w linalg.Vector, u data.Row) float64 {
	m := 1 - u.Label*u.Dot(w)
	if m < 0 {
		return 0
	}
	return m
}

// Ops implements Gradient: one dot plus one axpy.
func (Hinge) Ops(nnz int) float64 { return float64(2 * nnz) }

// Logistic is the logistic-regression gradient of Table 3:
//
//	g(w, x, y) = (-1 / (1 + e^{y*wᵀx})) * y * x.
type Logistic struct{}

// Name returns "logistic".
func (Logistic) Name() string { return "logistic" }

// AddGradient implements Gradient.
func (Logistic) AddGradient(w linalg.Vector, u data.Row, grad linalg.Vector) {
	z := u.Label * u.Dot(w)
	coeff := -u.Label / (1 + math.Exp(z))
	u.AddScaledInto(grad, coeff)
}

// Loss returns the log loss log(1 + e^{-y*wᵀx}), computed stably.
func (Logistic) Loss(w linalg.Vector, u data.Row) float64 {
	z := -u.Label * u.Dot(w)
	// log(1+e^z) = z + log(1+e^-z) for large z avoids overflow.
	if z > 35 {
		return z
	}
	return math.Log1p(math.Exp(z))
}

// Ops implements Gradient.
func (Logistic) Ops(nnz int) float64 { return float64(2*nnz) + 8 }

// LeastSquares is the linear-regression gradient of Table 3:
//
//	g(w, x, y) = 2*(wᵀx - y)*x.
type LeastSquares struct{}

// Name returns "leastsquares".
func (LeastSquares) Name() string { return "leastsquares" }

// AddGradient implements Gradient.
func (LeastSquares) AddGradient(w linalg.Vector, u data.Row, grad linalg.Vector) {
	r := u.Dot(w) - u.Label
	u.AddScaledInto(grad, 2*r)
}

// Loss returns the squared error (wᵀx - y)².
func (LeastSquares) Loss(w linalg.Vector, u data.Row) float64 {
	r := u.Dot(w) - u.Label
	return r * r
}

// Ops implements Gradient.
func (LeastSquares) Ops(nnz int) float64 { return float64(2 * nnz) }

// L2 is the squared-norm regularizer R(w) = (lambda/2)*||w||², the paper's
// default for its classification workloads. Lambda == 0 disables it.
type L2 struct{ Lambda float64 }

// AddGradient adds lambda*w into grad (applied once per batch, not per
// point).
func (r L2) AddGradient(w, grad linalg.Vector) {
	if r.Lambda == 0 {
		return
	}
	grad.AddScaled(r.Lambda, w)
}

// Penalty returns (lambda/2)*||w||².
func (r L2) Penalty(w linalg.Vector) float64 {
	if r.Lambda == 0 {
		return 0
	}
	n := w.Norm2()
	return r.Lambda / 2 * n * n
}

// Objective evaluates the full regularized objective
// f(w) = (1/n)·Σ loss_i(w) + R(w) over the given rows. It is used by
// backtracking line search and by tests; training itself never needs it.
func Objective(g Gradient, reg L2, w linalg.Vector, rows []data.Row) float64 {
	if len(rows) == 0 {
		return reg.Penalty(w)
	}
	var s float64
	for _, u := range rows {
		s += g.Loss(w, u)
	}
	return s/float64(len(rows)) + reg.Penalty(w)
}

// MeanGradient computes the regularized mean gradient over rows into grad
// (zeroing it first). It is the reference the distributed plans must agree
// with; tests compare plan execution against it.
func MeanGradient(g Gradient, reg L2, w linalg.Vector, rows []data.Row, grad linalg.Vector) {
	grad.Zero()
	for _, u := range rows {
		g.AddGradient(w, u, grad)
	}
	if n := len(rows); n > 0 {
		grad.Scale(1 / float64(n))
	}
	reg.AddGradient(w, grad)
}
