package gradients

import (
	"math"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Fused per-loss block kernels — the gradients half of the batched execution
// layer. Each kernel is two passes over one data.Block:
//
//	pass 1: margins[j] = <row j, w>        (Block.MarginsInto, fused dense/CSR)
//	pass 2: for each row j, in row order, fold the loss-specific
//	        contribution of margins[j] into the accumulator
//
// The two-pass structure exists for bit-exactness, not just speed: every
// margin is an independent single-accumulator dot (identical rounding to the
// row path), and pass 2 touches the shared accumulator strictly in row
// order, so the float summation order — and therefore every result bit — is
// the same as calling AddGradient/Loss once per row. The engine's block
// property test pins this for all three losses, both layouts and arbitrary
// block sizes.

// BlockGradient is the batched extension of Gradient: AddGradientBlock and
// LossBlock process one block per call instead of one row, amortizing
// interface dispatch and per-row view construction. margins is caller-owned
// scratch with at least rows.Len() slots; its contents are overwritten.
// LossBlock adds the per-row losses into *sum one row at a time (never as a
// pre-reduced block total), which keeps the running sum bitwise identical to
// per-row accumulation even when *sum is already nonzero.
//
// The stock losses (Hinge, Logistic, LeastSquares) all implement it; custom
// Gradient UDFs that do not are executed row by row by the engine's fallback
// path transparently.
type BlockGradient interface {
	Gradient
	AddGradientBlock(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector)
	LossBlock(w linalg.Vector, rows data.Block, margins []float64, sum *float64)
}

// AddGradientBlock implements BlockGradient: the hinge subgradient
// -y·x for every row with y·<x,w> < 1, accumulated in row order.
func (Hinge) AddGradientBlock(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	rows.MarginsInto(w, margins)
	if vals, stride, ok := rows.DenseRows(); ok {
		labels, _ := rows.Labels()
		for j, m := range margins {
			if y := labels[j]; y*m < 1 {
				grad.AddScaled(-y, vals[j*stride:(j+1)*stride])
			}
		}
		return
	}
	if offs, idx, vals, ok := rows.CSRRows(); ok {
		labels, _ := rows.Labels()
		for j, m := range margins {
			if y := labels[j]; y*m < 1 {
				lo, hi := offs[j], offs[j+1]
				linalg.SparseAddScaledInto(grad, -y, idx[lo:hi], vals[lo:hi])
			}
		}
		return
	}
	for j, m := range margins {
		u := rows.Row(j)
		if u.Label*m < 1 {
			u.AddScaledInto(grad, -u.Label)
		}
	}
}

// LossBlock implements BlockGradient: hinge loss max(0, 1-y·<x,w>) per row.
func (Hinge) LossBlock(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	rows.MarginsInto(w, margins)
	s := *sum
	if labels, ok := rows.Labels(); ok {
		for j, mg := range margins {
			m := 1 - labels[j]*mg
			if m < 0 {
				m = 0
			}
			s += m
		}
	} else {
		for j, mg := range margins {
			m := 1 - rows.Label(j)*mg
			if m < 0 {
				m = 0
			}
			s += m
		}
	}
	*sum = s
}

// logisticCoeff is the per-row gradient coefficient -y / (1 + e^{y·margin}),
// the same expression Logistic.AddGradient evaluates.
func logisticCoeff(y, margin float64) float64 {
	return -y / (1 + math.Exp(y*margin))
}

// AddGradientBlock implements BlockGradient for the logistic loss.
func (Logistic) AddGradientBlock(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	rows.MarginsInto(w, margins)
	if vals, stride, ok := rows.DenseRows(); ok {
		labels, _ := rows.Labels()
		for j, m := range margins {
			grad.AddScaled(logisticCoeff(labels[j], m), vals[j*stride:(j+1)*stride])
		}
		return
	}
	if offs, idx, vals, ok := rows.CSRRows(); ok {
		labels, _ := rows.Labels()
		for j, m := range margins {
			lo, hi := offs[j], offs[j+1]
			linalg.SparseAddScaledInto(grad, logisticCoeff(labels[j], m), idx[lo:hi], vals[lo:hi])
		}
		return
	}
	for j, m := range margins {
		u := rows.Row(j)
		u.AddScaledInto(grad, logisticCoeff(u.Label, m))
	}
}

// logisticLoss is the stable log loss of one margin, the same expression
// Logistic.Loss evaluates: log(1 + e^{-y·margin}), switched to the linear
// form past z = 35 to avoid overflow.
func logisticLoss(y, margin float64) float64 {
	z := -y * margin
	if z > 35 {
		return z
	}
	return math.Log1p(math.Exp(z))
}

// LossBlock implements BlockGradient for the logistic loss.
func (Logistic) LossBlock(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	rows.MarginsInto(w, margins)
	s := *sum
	if labels, ok := rows.Labels(); ok {
		for j, mg := range margins {
			s += logisticLoss(labels[j], mg)
		}
	} else {
		for j, mg := range margins {
			s += logisticLoss(rows.Label(j), mg)
		}
	}
	*sum = s
}

// AddGradientBlock implements BlockGradient: the least-squares gradient
// 2·(<x,w>-y)·x for every row, accumulated in row order. The residual
// coefficient can be zero for exactly-fit rows; the axpy still runs, exactly
// as the row path does.
func (LeastSquares) AddGradientBlock(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	rows.MarginsInto(w, margins)
	if vals, stride, ok := rows.DenseRows(); ok {
		labels, _ := rows.Labels()
		for j, m := range margins {
			grad.AddScaled(2*(m-labels[j]), vals[j*stride:(j+1)*stride])
		}
		return
	}
	if offs, idx, vals, ok := rows.CSRRows(); ok {
		labels, _ := rows.Labels()
		for j, m := range margins {
			lo, hi := offs[j], offs[j+1]
			linalg.SparseAddScaledInto(grad, 2*(m-labels[j]), idx[lo:hi], vals[lo:hi])
		}
		return
	}
	for j, m := range margins {
		u := rows.Row(j)
		u.AddScaledInto(grad, 2*(m-u.Label))
	}
}

// LossBlock implements BlockGradient: squared error (<x,w>-y)² per row.
func (LeastSquares) LossBlock(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	rows.MarginsInto(w, margins)
	s := *sum
	if labels, ok := rows.Labels(); ok {
		for j, mg := range margins {
			r := mg - labels[j]
			s += r * r
		}
	} else {
		for j, mg := range margins {
			r := mg - rows.Label(j)
			s += r * r
		}
	}
	*sum = s
}

// objectiveBlockSize is the block width ObjectiveMatrix evaluates with; the
// value only affects speed, never results.
const objectiveBlockSize = data.DefaultBlockSize

// ObjectiveMatrix evaluates the full regularized objective
// f(w) = (1/n)·Σ loss_i(w) + R(w) over every row of m through the blocked
// loss kernels — the batched form of Objective, bitwise identical to it.
// Gradients without block kernels fall back to the per-row loop.
func ObjectiveMatrix(g Gradient, reg L2, w linalg.Vector, m *data.Matrix) float64 {
	n := m.NumRows()
	if n == 0 {
		return reg.Penalty(w)
	}
	var s float64
	if bg, ok := g.(BlockGradient); ok {
		margins := make([]float64, objectiveBlockSize)
		for lo := 0; lo < n; lo += objectiveBlockSize {
			hi := lo + objectiveBlockSize
			if hi > n {
				hi = n
			}
			bg.LossBlock(w, m.Block(lo, hi), margins, &s)
		}
	} else {
		for i := 0; i < n; i++ {
			s += g.Loss(w, m.Row(i))
		}
	}
	return s/float64(n) + reg.Penalty(w)
}
