package gradients

import (
	"math"
	"math/rand"
	"testing"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// fastKernelEps bounds fast-vs-exact disagreement at the gradients layer:
// reassociated sums plus the < 1e-8 ExpFast relative error, accumulated over
// one block — comfortably under 1e-7 on O(10) magnitudes.
const fastKernelEps = 1e-7

func fastRelDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestFastBlockKernelsMatchExactWithinEps runs every stock loss's fast block
// kernels against the exact ones on dense and CSR blocks, including block
// lengths not divisible by the accumulator width (13, 5) and the gathered
// non-contiguous geometry where the fast margins fall back to exact per-row
// dots.
func TestFastBlockKernelsMatchExactWithinEps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const d = 12
	losses := []Gradient{Hinge{}, Logistic{}, LeastSquares{}}
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, g := range losses {
		fg, ok := g.(FastGradient)
		if !ok {
			t.Fatalf("%s does not implement FastGradient", g.Name())
		}
		for _, dense := range []bool{true, false} {
			m := blockTestMatrix(t, rng, dense, 64, d)
			blocks := []data.Block{
				m.Block(0, 64),                         // full arena, multiple unrolled passes
				m.Block(5, 18),                         // 13 rows: tail of the 4-row accumulate
				m.Block(20, 25),                        // 5 rows: sub-unroll
				m.GatherBlock([]int{33, 7, 7, 50, 12}), // non-contiguous: exact margins
			}
			for bi, blk := range blocks {
				gradExact := make(linalg.Vector, d)
				for i := range gradExact {
					gradExact[i] = rng.NormFloat64()
				}
				gradFast := gradExact.Clone()
				sumExact := rng.NormFloat64()
				sumFast := sumExact

				margins := make([]float64, blk.Len())
				fg.AddGradientBlock(w, blk, margins, gradExact)
				fg.LossBlock(w, blk, margins, &sumExact)
				fg.AddGradientBlockFast(w, blk, margins, gradFast)
				fg.LossBlockFast(w, blk, margins, &sumFast)

				for i := range gradExact {
					if diff := fastRelDiff(gradExact[i], gradFast[i]); diff > fastKernelEps {
						t.Fatalf("%s dense=%v block %d: grad[%d] exact %g fast %g (rel err %.3g)",
							g.Name(), dense, bi, i, gradExact[i], gradFast[i], diff)
					}
				}
				if diff := fastRelDiff(sumExact, sumFast); diff > fastKernelEps {
					t.Fatalf("%s dense=%v block %d: loss exact %g fast %g (rel err %.3g)",
						g.Name(), dense, bi, sumExact, sumFast, diff)
				}
			}
		}
	}
}

// TestFastKernelsHugeMargins drives the logistic kernels through the ExpFast
// clamp regions: a weight vector scaled so y·margin spans the overflow
// (coefficient → 0, loss → linear switch) and underflow (coefficient → -y)
// ends of the exponential. The exact and fast tiers must still agree — the
// logistic loss itself saturates, so the clamps are invisible at the loss
// level.
func TestFastKernelsHugeMargins(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const d = 8
	m := blockTestMatrix(t, rng, true, 32, d)
	blk := m.Block(0, 32)
	margins := make([]float64, blk.Len())
	for _, scale := range []float64{1e2, 1e4, 1e6} {
		w := make(linalg.Vector, d)
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		for _, g := range []Gradient{Logistic{}, Hinge{}, LeastSquares{}} {
			fg := g.(FastGradient)
			gradExact := make(linalg.Vector, d)
			gradFast := make(linalg.Vector, d)
			var sumExact, sumFast float64
			fg.AddGradientBlock(w, blk, margins, gradExact)
			fg.LossBlock(w, blk, margins, &sumExact)
			fg.AddGradientBlockFast(w, blk, margins, gradFast)
			fg.LossBlockFast(w, blk, margins, &sumFast)
			for i := range gradExact {
				if diff := fastRelDiff(gradExact[i], gradFast[i]); diff > fastKernelEps {
					t.Fatalf("%s scale=%g: grad[%d] exact %g fast %g (rel err %.3g)",
						g.Name(), scale, i, gradExact[i], gradFast[i], diff)
				}
			}
			if diff := fastRelDiff(sumExact, sumFast); diff > fastKernelEps {
				t.Fatalf("%s scale=%g: loss exact %g fast %g (rel err %.3g)",
					g.Name(), scale, sumExact, sumFast, diff)
			}
		}
	}
}

// TestFastKernelsAllInactiveHinge pins the zero-coefficient block: a hinge
// block where every row satisfies the margin produces an all-zero coefficient
// buffer, and the fused accumulate must leave the gradient bitwise untouched
// (0·x terms cannot perturb it — x is finite by construction).
func TestFastKernelsAllInactiveHinge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const d = 8
	b := data.NewDenseMatrixBuilder(16, d)
	vals := make([]float64, d)
	for i := 0; i < 16; i++ {
		for j := range vals {
			vals[j] = 1 + rng.Float64()
		}
		if err := b.AppendDense(1, vals); err != nil { // y=+1, all-positive rows
			t.Fatal(err)
		}
	}
	m := b.Build()
	blk := m.Block(0, 16)
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = 1 // margin = Σ row ≥ d·1 ≫ 1, every row inactive
	}
	grad := make(linalg.Vector, d)
	for i := range grad {
		grad[i] = rng.NormFloat64()
	}
	before := grad.Clone()
	margins := make([]float64, blk.Len())
	Hinge{}.AddGradientBlockFast(w, blk, margins, grad)
	for i := range grad {
		if math.Float64bits(grad[i]) != math.Float64bits(before[i]) {
			t.Fatalf("grad[%d] perturbed by all-inactive block: %g != %g", i, grad[i], before[i])
		}
	}
}
