package gradients

import (
	"math"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Fast-tier block kernels — the gradients half of the opt-in fast-math
// execution tier (engine.Options.FastMath). The exact kernels in block.go
// run two passes (margins, then an in-order accumulate) because bit-exactness
// demands strict summation order; these fuse three steps into the same
// buffer walk instead:
//
//	pass 1: margins[j] = <row j, w>           (multi-accumulator fast dots)
//	pass 2: margins[j] = coeff(y_j, margins[j])   (coefficient IN PLACE —
//	        the margin buffer is recycled as the coefficient buffer, no
//	        second scratch array)
//	pass 3: grad += Σ_j margins[j]·row_j      (four rows fused per pass)
//
// and route the logistic sigmoid through linalg.ExpFast. Results agree with
// the exact tier to the per-element bounds engine.TestFastMathWithinEpsilon
// pins; they are NOT bitwise identical, which is why the tier is opt-in and
// the exact kernels remain the correctness oracle.

// FastGradient is the fast-math extension of BlockGradient: same block
// contract (margins is caller-owned scratch with at least rows.Len() slots,
// overwritten — here additionally recycled as the coefficient buffer), but
// tolerance-bounded instead of bit-exact. The stock losses implement it;
// custom BlockGradient UDFs that do not stay on their exact kernels even
// when the fast tier is on.
type FastGradient interface {
	BlockGradient
	AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector)
	LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64)
}

// accumFast folds the coefficient buffer into grad: the fused four-row
// kernel for dense blocks, per-row sparse axpy for CSR (sparse rows touch
// disjoint gradient slots, so there is no traffic to fuse), and nothing for
// non-contiguous blocks — callers handle those on the exact path before
// computing coefficients.
func accumFast(rows data.Block, coeffs []float64, grad linalg.Vector) {
	if vals, stride, ok := rows.DenseRows(); ok {
		linalg.DenseAccumFast(grad, vals, stride, coeffs)
		return
	}
	if offs, idx, vals, ok := rows.CSRRows(); ok {
		for j, c := range coeffs {
			lo, hi := offs[j], offs[j+1]
			linalg.SparseAddScaledInto(grad, c, idx[lo:hi], vals[lo:hi])
		}
	}
}

// AddGradientBlockFast implements FastGradient for the hinge loss: the
// coefficient is -y for active rows (y·margin < 1), zero otherwise; inactive
// rows ride through the fused accumulate as 0·x terms.
func (h Hinge) AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		h.AddGradientBlock(w, rows, margins, grad)
		return
	}
	rows.MarginsIntoFast(w, margins)
	for j, m := range margins {
		y := labels[j]
		if y*m < 1 {
			margins[j] = -y
		} else {
			margins[j] = 0
		}
	}
	accumFast(rows, margins, grad)
}

// LossBlockFast implements FastGradient: hinge loss over fast margins, two
// independent partial sums.
func (h Hinge) LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		h.LossBlock(w, rows, margins, sum)
		return
	}
	rows.MarginsIntoFast(w, margins)
	var s0, s1 float64
	j := 0
	for ; j+2 <= n; j += 2 {
		if m := 1 - labels[j]*margins[j]; m > 0 {
			s0 += m
		}
		if m := 1 - labels[j+1]*margins[j+1]; m > 0 {
			s1 += m
		}
	}
	if j < n {
		if m := 1 - labels[j]*margins[j]; m > 0 {
			s0 += m
		}
	}
	*sum += s0 + s1
}

// AddGradientBlockFast implements FastGradient for the logistic loss. The
// sigmoid coefficient -y/(1 + e^{y·m}) evaluates in three whole-buffer
// passes so the exponential runs through linalg.ExpFastVec — four lanes per
// step on SIMD backends, and operation-for-operation identical to the old
// scalar loop (hence bitwise identical) on the portable fast tier:
//
//	pass A: margins[j] = y_j·m_j
//	pass B: margins[j] = e^{margins[j]}   (in place, vectorized)
//	pass C: margins[j] = -y_j / (1 + margins[j])
func (l Logistic) AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.AddGradientBlock(w, rows, margins, grad)
		return
	}
	rows.MarginsIntoFast(w, margins)
	for j := range margins {
		margins[j] *= labels[j]
	}
	linalg.ExpFastVec(margins, margins)
	for j, e := range margins {
		margins[j] = -labels[j] / (1 + e)
	}
	accumFast(rows, margins, grad)
}

// LossBlockFast implements FastGradient for the logistic loss:
// log1p(e^{-y·m}) with the same linear switch past z = 35 as the exact
// kernel. The exponential is vectorized chunk-wise through two fixed stack
// buffers (z must survive the exp for the switch, and the margin buffer is
// the only caller scratch), keeping the path allocation-free.
func (l Logistic) LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.LossBlock(w, rows, margins, sum)
		return
	}
	rows.MarginsIntoFast(w, margins)
	var zbuf, ebuf [128]float64
	var s float64
	for base := 0; base < n; base += len(zbuf) {
		m := margins[base:min(n, base+len(zbuf))]
		z := zbuf[:len(m)]
		for j := range m {
			z[j] = -labels[base+j] * m[j]
		}
		e := ebuf[:len(z)]
		linalg.ExpFastVec(e, z)
		for j, zj := range z {
			if zj > 35 {
				// e^z would still be finite here, but log1p(e^z) = z to
				// double precision and the linear form matches the exact
				// kernel's overflow-proof switch.
				s += zj
			} else {
				s += math.Log1p(e[j])
			}
		}
	}
	*sum += s
}

// AddGradientBlockFast implements FastGradient for least squares: the
// coefficient is the residual 2·(margin - y).
func (l LeastSquares) AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.AddGradientBlock(w, rows, margins, grad)
		return
	}
	rows.MarginsIntoFast(w, margins)
	for j, m := range margins {
		margins[j] = 2 * (m - labels[j])
	}
	accumFast(rows, margins, grad)
}

// LossBlockFast implements FastGradient: squared error over fast margins,
// two independent partial sums.
func (l LeastSquares) LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.LossBlock(w, rows, margins, sum)
		return
	}
	rows.MarginsIntoFast(w, margins)
	var s0, s1 float64
	j := 0
	for ; j+2 <= n; j += 2 {
		r0 := margins[j] - labels[j]
		r1 := margins[j+1] - labels[j+1]
		s0 += r0 * r0
		s1 += r1 * r1
	}
	if j < n {
		r := margins[j] - labels[j]
		s0 += r * r
	}
	*sum += s0 + s1
}
