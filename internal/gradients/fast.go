package gradients

import (
	"math"

	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// Fast-tier block kernels — the gradients half of the opt-in fast-math
// execution tier (engine.Options.FastMath). The exact kernels in block.go
// run two passes (margins, then an in-order accumulate) because bit-exactness
// demands strict summation order; these fuse three steps into the same
// buffer walk instead:
//
//	pass 1: margins[j] = <row j, w>           (multi-accumulator fast dots)
//	pass 2: margins[j] = coeff(y_j, margins[j])   (coefficient IN PLACE —
//	        the margin buffer is recycled as the coefficient buffer, no
//	        second scratch array)
//	pass 3: grad += Σ_j margins[j]·row_j      (four rows fused per pass)
//
// and route the logistic sigmoid through linalg.ExpFast. Results agree with
// the exact tier to the per-element bounds engine.TestFastMathWithinEpsilon
// pins; they are NOT bitwise identical, which is why the tier is opt-in and
// the exact kernels remain the correctness oracle.

// FastGradient is the fast-math extension of BlockGradient: same block
// contract (margins is caller-owned scratch with at least rows.Len() slots,
// overwritten — here additionally recycled as the coefficient buffer), but
// tolerance-bounded instead of bit-exact. The stock losses implement it;
// custom BlockGradient UDFs that do not stay on their exact kernels even
// when the fast tier is on.
type FastGradient interface {
	BlockGradient
	AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector)
	LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64)
}

// accumFast folds the coefficient buffer into grad: the fused four-row
// kernel for dense blocks, per-row sparse axpy for CSR (sparse rows touch
// disjoint gradient slots, so there is no traffic to fuse), and nothing for
// non-contiguous blocks — callers handle those on the exact path before
// computing coefficients.
func accumFast(rows data.Block, coeffs []float64, grad linalg.Vector) {
	if vals, stride, ok := rows.DenseRows(); ok {
		linalg.DenseAccumFast(grad, vals, stride, coeffs)
		return
	}
	if offs, idx, vals, ok := rows.CSRRows(); ok {
		for j, c := range coeffs {
			lo, hi := offs[j], offs[j+1]
			linalg.SparseAddScaledInto(grad, c, idx[lo:hi], vals[lo:hi])
		}
	}
}

// AddGradientBlockFast implements FastGradient for the hinge loss: the
// coefficient is -y for active rows (y·margin < 1), zero otherwise; inactive
// rows ride through the fused accumulate as 0·x terms.
func (h Hinge) AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		h.AddGradientBlock(w, rows, margins, grad)
		return
	}
	rows.MarginsIntoFast(w, margins)
	for j, m := range margins {
		y := labels[j]
		if y*m < 1 {
			margins[j] = -y
		} else {
			margins[j] = 0
		}
	}
	accumFast(rows, margins, grad)
}

// LossBlockFast implements FastGradient: hinge loss over fast margins, two
// independent partial sums.
func (h Hinge) LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		h.LossBlock(w, rows, margins, sum)
		return
	}
	rows.MarginsIntoFast(w, margins)
	var s0, s1 float64
	j := 0
	for ; j+2 <= n; j += 2 {
		if m := 1 - labels[j]*margins[j]; m > 0 {
			s0 += m
		}
		if m := 1 - labels[j+1]*margins[j+1]; m > 0 {
			s1 += m
		}
	}
	if j < n {
		if m := 1 - labels[j]*margins[j]; m > 0 {
			s0 += m
		}
	}
	*sum += s0 + s1
}

// logisticCoeffFast is logisticCoeff with the polynomial exponential:
// -y / (1 + e^{y·margin}) via linalg.ExpFast.
func logisticCoeffFast(y, margin float64) float64 {
	return -y / (1 + linalg.ExpFast(y*margin))
}

// logisticLossFast is logisticLoss with the polynomial exponential, keeping
// the same linear switch past z = 35.
func logisticLossFast(y, margin float64) float64 {
	z := -y * margin
	if z > 35 {
		return z
	}
	return math.Log1p(linalg.ExpFast(z))
}

// AddGradientBlockFast implements FastGradient for the logistic loss.
func (l Logistic) AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.AddGradientBlock(w, rows, margins, grad)
		return
	}
	rows.MarginsIntoFast(w, margins)
	for j, m := range margins {
		margins[j] = logisticCoeffFast(labels[j], m)
	}
	accumFast(rows, margins, grad)
}

// LossBlockFast implements FastGradient for the logistic loss.
func (l Logistic) LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.LossBlock(w, rows, margins, sum)
		return
	}
	rows.MarginsIntoFast(w, margins)
	var s float64
	for j, m := range margins {
		s += logisticLossFast(labels[j], m)
	}
	*sum += s
}

// AddGradientBlockFast implements FastGradient for least squares: the
// coefficient is the residual 2·(margin - y).
func (l LeastSquares) AddGradientBlockFast(w linalg.Vector, rows data.Block, margins []float64, grad linalg.Vector) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.AddGradientBlock(w, rows, margins, grad)
		return
	}
	rows.MarginsIntoFast(w, margins)
	for j, m := range margins {
		margins[j] = 2 * (m - labels[j])
	}
	accumFast(rows, margins, grad)
}

// LossBlockFast implements FastGradient: squared error over fast margins,
// two independent partial sums.
func (l LeastSquares) LossBlockFast(w linalg.Vector, rows data.Block, margins []float64, sum *float64) {
	n := rows.Len()
	margins = margins[:n]
	labels, ok := rows.Labels()
	if !ok {
		l.LossBlock(w, rows, margins, sum)
		return
	}
	rows.MarginsIntoFast(w, margins)
	var s0, s1 float64
	j := 0
	for ; j+2 <= n; j += 2 {
		r0 := margins[j] - labels[j]
		r1 := margins[j+1] - labels[j+1]
		s0 += r0 * r0
		s1 += r1 * r1
	}
	if j < n {
		r := margins[j] - labels[j]
		s0 += r * r
	}
	*sum += s0 + s1
}
