package linalg

import "sync"

// ReduceTree merges the given partial vectors into parts[0] with an ordered
// binary tree reduction: pass 1 folds parts[1] into parts[0], parts[3] into
// parts[2], ...; pass 2 folds parts[2] into parts[0], parts[6] into parts[4];
// and so on until one vector remains. The merge order depends only on
// len(parts), never on timing, so for a fixed partitioning the result is
// bit-identical run-to-run and independent of how many goroutines produced
// the partials. It returns parts[0] (nil for an empty slice).
//
// The engine's parallel executor reduces per-shard gradient accumulators with
// exactly this shape; the serial path reduces the same shard partials the
// same way, which is what makes Workers=1 and Workers=N bitwise equal.
func ReduceTree(parts []Vector) Vector {
	if len(parts) == 0 {
		return nil
	}
	for stride := 1; stride < len(parts); stride *= 2 {
		for i := 0; i+stride < len(parts); i += 2 * stride {
			parts[i].Add(parts[i+stride])
		}
	}
	return parts[0]
}

// BufferPool recycles zeroed vectors keyed by dimension so per-shard
// accumulators do not allocate every iteration. It is safe for concurrent
// use; Get returns a zeroed vector and Put recycles one (the pool zeroes it
// on the way back in, keeping Get cheap on the hot path).
type BufferPool struct {
	mu   sync.Mutex
	free map[int][]Vector
}

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool {
	return &BufferPool{free: map[int][]Vector{}}
}

// Get returns a zeroed vector of dimension d.
func (p *BufferPool) Get(d int) Vector {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.free[d]
	if n := len(list); n > 0 {
		v := list[n-1]
		p.free[d] = list[:n-1]
		return v
	}
	return NewVector(d)
}

// Put recycles v for a future Get of the same dimension. Putting nil is a
// no-op.
func (p *BufferPool) Put(v Vector) {
	if v == nil {
		return
	}
	v.Zero()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free[len(v)] = append(p.free[len(v)], v)
}
