package linalg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// qcfg bounds testing/quick vector sizes so property tests stay fast.
func qcfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(seed)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			d := 1 + r.Intn(16)
			for i := range vals {
				v := make(Vector, d)
				for j := range v {
					v[j] = r.NormFloat64() * 10
				}
				vals[i] = reflect.ValueOf(v)
			}
		},
	}
}

func TestVectorZeroValue(t *testing.T) {
	v := NewVector(4)
	if v.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", v.Dim())
	}
	if v.Norm2() != 0 || v.Norm1() != 0 || v.NormInf() != 0 {
		t.Fatalf("zero vector has nonzero norm: %v", v)
	}
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b Vector) bool {
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, qcfg(1)); err != nil {
		t.Fatal(err)
	}
}

func TestDotSelfIsSquaredNormProperty(t *testing.T) {
	f := func(a Vector) bool {
		n := a.Norm2()
		return math.Abs(a.Dot(a)-n*n) < 1e-6*(1+n*n)
	}
	if err := quick.Check(f, qcfg(2)); err != nil {
		t.Fatal(err)
	}
}

func TestAddScaledLinearityProperty(t *testing.T) {
	// (a + alpha*b)·c == a·c + alpha*(b·c)
	f := func(a, b, c Vector) bool {
		const alpha = 2.5
		got := a.Clone()
		got.AddScaled(alpha, b)
		want := a.Dot(c) + alpha*b.Dot(c)
		return math.Abs(got.Dot(c)-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, qcfg(3)); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b Vector) bool {
		sum := a.Clone()
		sum.Add(b)
		return sum.Norm2() <= a.Norm2()+b.Norm2()+1e-9
	}
	if err := quick.Check(f, qcfg(4)); err != nil {
		t.Fatal(err)
	}
}

func TestDistancesAgreeWithNormsProperty(t *testing.T) {
	f := func(a, b Vector) bool {
		diff := a.Clone()
		diff.Sub(b)
		okL2 := math.Abs(a.DistL2(b)-diff.Norm2()) < 1e-9*(1+diff.Norm2())
		okL1 := math.Abs(a.DistL1(b)-diff.Norm1()) < 1e-9*(1+diff.Norm1())
		return okL2 && okL1
	}
	if err := quick.Check(f, qcfg(5)); err != nil {
		t.Fatal(err)
	}
}

func TestScaleThenNorm(t *testing.T) {
	v := Vector{3, -4}
	v.Scale(2)
	if got := v.Norm2(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("Norm2 after scale = %g, want 10", got)
	}
	if got := v.Norm1(); math.Abs(got-14) > 1e-12 {
		t.Fatalf("Norm1 after scale = %g, want 14", got)
	}
	if got := v.NormInf(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("NormInf after scale = %g, want 8", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched dims did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestEqualAndIsFinite(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{1, 2.0000001}
	if !a.Equal(b, 1e-3) {
		t.Fatal("Equal(tol=1e-3) = false")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("Equal(tol=1e-9) = true")
	}
	if a.Equal(Vector{1}, 1) {
		t.Fatal("Equal across dims = true")
	}
	if !a.IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vector{math.NaN()}).IsFinite() || (Vector{math.Inf(1)}).IsFinite() {
		t.Fatal("non-finite vector reported finite")
	}
}

func TestZeroInPlace(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Zero()
	if v.Norm1() != 0 {
		t.Fatalf("Zero left %v", v)
	}
}
