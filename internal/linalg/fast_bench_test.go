package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// Kernel microbenchmarks: exact vs fast tier, side by side. These isolate the
// two mechanisms the fast tier's engine-level win is built from — breaking the
// FP-add dependency chain (Dot/Accum pairs) and the polynomial exponential
// (Exp pair). Run with
//
//	go test -bench 'Exact$|Fast$' -benchtime=2s ./internal/linalg/
//
// and read each Fast line against its Exact sibling.

func benchVecs(n int) (Vector, Vector) {
	r := rand.New(rand.NewSource(7))
	return randVec(r, n), randVec(r, n)
}

var benchSinkF float64

func BenchmarkDot50Exact(b *testing.B) {
	x, y := benchVecs(50)
	for i := 0; i < b.N; i++ {
		benchSinkF = x.Dot(y)
	}
}

func BenchmarkDot50Fast(b *testing.B) {
	defer SetSIMD(SetSIMD(false)) // pin the portable fast loops
	x, y := benchVecs(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkF = x.DotFast(y)
	}
}

func benchAccum(b *testing.B, fast bool) {
	const rows, d = 512, 50
	r := rand.New(rand.NewSource(8))
	vals := randVec(r, rows*d)
	coeffs := randVec(r, rows)
	grad := make(Vector, d)
	defer SetSIMD(SetSIMD(false)) // pin the portable fast loops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fast {
			DenseAccumFast(grad, vals, d, coeffs)
		} else {
			for j := 0; j < rows; j++ {
				grad.AddScaled(coeffs[j], vals[j*d:(j+1)*d])
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}

func BenchmarkDenseAccum512x50Exact(b *testing.B) { benchAccum(b, false) }
func BenchmarkDenseAccum512x50Fast(b *testing.B)  { benchAccum(b, true) }

func BenchmarkExpExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSinkF = math.Exp(-3 + float64(i%64)*0.1)
	}
}

func BenchmarkExpFast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSinkF = ExpFast(-3 + float64(i%64)*0.1)
	}
}
