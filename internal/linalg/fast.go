package linalg

import (
	"fmt"
	"math"
)

// Fast-tier kernels: the second kernel family behind engine.Options.FastMath.
// Where the exact kernels (kernels.go, block.go) buy bitwise identity to the
// per-row path with a single accumulator updated in strict index order, these
// buy throughput with multiple independent accumulators — the gc compiler
// does not auto-vectorize, so the win is breaking the floating-point add
// dependency chain, which lets the CPU retire several FMAs per cycle instead
// of serializing on one running sum — plus a polynomial exp for the logistic
// sigmoid. The price is a changed summation order: results agree with the
// exact tier only to a relative tolerance, never bit for bit. The accuracy
// contract (per-element bounds, pinned by engine.TestFastMathWithinEpsilon)
// is documented in DESIGN.md §10.

// FastAccumulators is the number of independent partial sums the fast dense
// dot carries (the "SIMD width" of the tier). Exported so the equivalence
// harness can derive its worst-case reassociation error bound — a dot of
// length n reassociates into FastAccumulators chains of n/FastAccumulators
// adds each, so the error scales like the exact path's, not worse.
const FastAccumulators = 4

// dotContigFast is the fast dense dot: 8-wide unrolled over 4 independent
// accumulators. b must be at least as long as a.
func dotContigFast(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += a[i]*b[i] + a[i+4]*b[i+4]
		s1 += a[i+1]*b[i+1] + a[i+5]*b[i+5]
		s2 += a[i+2]*b[i+2] + a[i+6]*b[i+6]
		s3 += a[i+3]*b[i+3] + a[i+7]*b[i+7]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotFast returns the fast-tier inner product of v and w. It panics if
// dimensions differ, like Vector.Dot. With the SIMD backend enabled and a
// vector long enough to amortize the asm call, it dispatches to the
// assembly kernel; otherwise the portable fast loop runs.
func (v Vector) DotFast(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: DotFast dimension mismatch %d vs %d", len(v), len(w)))
	}
	if simdOn && len(v) >= dotSIMDMinLen {
		return dotSIMD(v, w)
	}
	return dotContigFast(v, w)
}

// DenseMarginsFast is the fast-tier DenseMargins: out[j] = <row j, w>. Same
// dimension contract as DenseMargins. The SIMD backend takes whole blocks —
// the row loop itself runs behind one dispatch, so there is no per-row
// threshold.
func DenseMarginsFast(vals []float64, stride int, w Vector, out []float64) {
	if len(w) != stride {
		panic(fmt.Sprintf("linalg: DenseMarginsFast dimension mismatch %d vs %d", stride, len(w)))
	}
	if simdOn && stride > 0 && len(out) > 0 {
		_ = vals[len(out)*stride-1] // one bounds proof for the whole block
		denseMarginsSIMD(vals, stride, w, out)
		return
	}
	for j := range out {
		row := vals[j*stride : (j+1)*stride : (j+1)*stride]
		out[j] = dotContigFast(row, w)
	}
}

// sparseDotFast is the fast sparse dot: two independent accumulators over the
// gathered products. The exact kernel's contract — entries with index >=
// len(w) contribute zero, iteration stops at the first such index — is kept
// by trimming the (sorted) index tail before the unrolled loop, so the fast
// path sums exactly the same terms, just in a different association.
func sparseDotFast(idx []int32, vals []float64, w Vector) float64 {
	d := int32(len(w))
	n := len(idx)
	for n > 0 && idx[n-1] >= d {
		n--
	}
	var s0, s1 float64
	k := 0
	for ; k+4 <= n; k += 4 {
		s0 += vals[k]*w[idx[k]] + vals[k+2]*w[idx[k+2]]
		s1 += vals[k+1]*w[idx[k+1]] + vals[k+3]*w[idx[k+3]]
	}
	for ; k < n; k++ {
		s0 += vals[k] * w[idx[k]]
	}
	return s0 + s1
}

// SparseDotFast is the exported fast-tier SparseDot. Indices must be sorted
// ascending (the SortDedup normalization every arena row satisfies). Rows
// with enough in-range entries dispatch to the gather kernel on backends
// that have one; the trim below re-establishes the kernel's in-bounds
// contract, and a (contract-violating) negative leading index falls through
// to the Go loop, which panics the same way the exact tier would.
func SparseDotFast(idx []int32, vals []float64, w Vector) float64 {
	if simdOn && haveSparseSIMD {
		d := int32(len(w))
		n := len(idx)
		for n > 0 && idx[n-1] >= d {
			n--
		}
		if n >= sparseSIMDMinNNZ && idx[0] >= 0 {
			return sparseDotSIMD(idx[:n], vals[:n], w)
		}
		idx, vals = idx[:n], vals[:n]
	}
	return sparseDotFast(idx, vals, w)
}

// CSRMarginsFast is the fast-tier CSRMargins: out[j] = SparseDotFast(row j)
// over a contiguous CSR block, with per-row SIMD dispatch (row lengths vary,
// so the gather threshold is a per-row decision).
func CSRMarginsFast(offs []int64, indices []int32, values []float64, w Vector, out []float64) {
	for j := range out {
		lo, hi := offs[j], offs[j+1]
		out[j] = SparseDotFast(indices[lo:hi], values[lo:hi], w)
	}
}

// DenseAccumFast is the fast-tier fused block axpy:
//
//	grad[i] += Σ_j coeffs[j] · vals[j·stride+i]
//
// processed four rows per pass, so each gradient element is loaded and stored
// once per four rows instead of once per row — the memory-traffic half of the
// fast tier's dense win. Rows with a zero coefficient still participate (a
// 0·x term), matching the exact kernels' convention. len(grad) must equal
// stride; coeffs has one entry per row.
func DenseAccumFast(grad Vector, vals []float64, stride int, coeffs []float64) {
	if len(grad) != stride {
		panic(fmt.Sprintf("linalg: DenseAccumFast dimension mismatch %d vs %d", stride, len(grad)))
	}
	if simdOn && stride > 0 && len(coeffs) > 0 {
		_ = vals[len(coeffs)*stride-1] // one bounds proof for the whole block
		denseAccumSIMD(grad, vals, stride, coeffs)
		return
	}
	d := len(grad)
	j := 0
	for ; j+4 <= len(coeffs); j += 4 {
		r0 := vals[j*stride : j*stride+d : j*stride+d]
		r1 := vals[(j+1)*stride : (j+1)*stride+d : (j+1)*stride+d]
		r2 := vals[(j+2)*stride : (j+2)*stride+d : (j+2)*stride+d]
		r3 := vals[(j+3)*stride : (j+3)*stride+d : (j+3)*stride+d]
		c0, c1, c2, c3 := coeffs[j], coeffs[j+1], coeffs[j+2], coeffs[j+3]
		for i := 0; i < d; i++ {
			grad[i] += c0*r0[i] + c1*r1[i] + c2*r2[i] + c3*r3[i]
		}
	}
	for ; j < len(coeffs); j++ {
		grad.AddScaled(coeffs[j], vals[j*stride:(j+1)*stride])
	}
}

// Constants of the ExpFast range reduction: x = k·ln2 + r with |r| ≤ ln2/2.
// ln2 is split into a high part exact in 32 bits and a low correction so the
// subtraction x - k·ln2Hi is exact for every |k| the finite double range can
// produce (the standard Cody–Waite scheme libm itself uses).
const (
	expLog2E = 1.44269504088896338700e+00 // 1/ln2
	expLn2Hi = 6.93147180369123816490e-01
	expLn2Lo = 1.90821492927058770002e-10

	// Past these, exp overflows to +Inf / underflows past the smallest
	// denormal. The fast tier flushes the entire denormal output range to
	// zero (inputs below expUnderflow), trading ~7e-308 of absolute accuracy
	// for never paying denormal arithmetic penalties.
	expOverflow  = 709.782712893384
	expUnderflow = -708.396418532264
)

// ExpFast approximates math.Exp with a Cody–Waite range reduction and a
// degree-7 Taylor polynomial on the reduced argument |r| ≤ ln2/2.
//
// Accuracy contract: the polynomial truncation error is bounded by
// r⁸/8! ≤ (ln2/2)⁸/40320 ≈ 5.2e-9 absolute on e^r ∈ [0.707, 1.415], giving a
// maximum relative error below 1e-8 over the whole non-flushed input range
// (the linalg test suite verifies < 2e-8 including rounding, against
// math.Exp, across [-708, 709] and the denormal/huge edge cases). Out-of-range
// behavior matches math.Exp: +Inf above the overflow threshold, 0 below the
// underflow threshold, NaN for NaN — except that results in the denormal
// range flush to zero.
func ExpFast(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case x > expOverflow:
		return math.Inf(1)
	case x < expUnderflow:
		return 0
	}
	k := math.Floor(x*expLog2E + 0.5)
	r := (x - k*expLn2Hi) - k*expLn2Lo
	// e^r ≈ Σ_{i≤7} rⁱ/i!, Horner form.
	p := 1 + r*(1+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720+r*(1.0/5040)))))))
	// Scale by 2^k with a direct exponent-bit construction instead of
	// math.Ldexp: the clamps above bound k to [-1022, 1024], so the scale is
	// always a normal double once the single overflowing value k = 1024
	// (x just under the overflow threshold, p < 1) is folded into p.
	ki := int64(k)
	if ki > 1023 {
		p *= 2
		ki--
	}
	return p * math.Float64frombits(uint64(ki+1023)<<52)
}

// ExpFastVec fills dst[i] = ExpFast(src[i]) for every element. On backends
// with a vector exp kernel (amd64/AVX2) four lanes evaluate at once, with
// the remainder handled by the scalar ExpFast; elsewhere it is exactly the
// scalar loop. The two paths honor the same accuracy contract as ExpFast
// (they differ only in FMA contraction and round-to-nearest-even vs
// round-half-up choice of k at half-way points, both inside the documented
// bound). dst and src may alias; lengths must match.
func ExpFastVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: ExpFastVec dimension mismatch %d vs %d", len(dst), len(src)))
	}
	i := 0
	if simdOn && haveExpVecSIMD && len(src) >= 4 {
		n := len(src) &^ 3
		expVecSIMD(dst[:n], src[:n])
		i = n
	}
	for ; i < len(src); i++ {
		dst[i] = ExpFast(src[i])
	}
}
