package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The SIMD backend tests compare three implementations of every fast
// primitive — assembly kernel, portable fast loop, exact kernel — on the
// same inputs. The fast tier's contract is tolerance-based (reassociation
// and FMA contraction change rounding), so agreement is checked against the
// exact result with an error budget normalized by the sum of absolute
// terms, which stays meaningful under heavy cancellation.
//
// All tests skip when the build or machine has no SIMD backend (noasm tag,
// non-AVX2 amd64 hardware, ML4ALL_NOSIMD), so the suite is green everywhere
// while still failing loudly on any machine where a kernel misbehaves.

// simdKernelEps bounds |kernel - exact| / Σ|terms|. The fast tier
// reassociates a length-n sum into a handful of chains and contracts
// multiply-adds; both effects stay within a few ulps per term at the block
// sizes the engine uses.
const simdKernelEps = 1e-12

func requireSIMD(t *testing.T) func() {
	t.Helper()
	if !SIMDAvailable() {
		t.Skipf("no SIMD backend (features: %s)", CPUFeatures())
	}
	prev := SetSIMD(true)
	return func() { SetSIMD(prev) }
}

// sumAbsDot is the error normalizer Σ|a_i·b_i| (+1 so zero sums still give
// an absolute bound).
func sumAbsDot(a, b []float64) float64 {
	s := 1.0
	for i := range a {
		s += math.Abs(a[i] * b[i])
	}
	return s
}

// closeEnough reports whether got agrees with want within eps·norm, treating
// non-finite values by class: a NaN expectation demands NaN, an Inf
// expectation the same Inf.
func closeEnough(got, want, eps, norm float64) bool {
	switch {
	case math.IsNaN(want):
		return math.IsNaN(got)
	case math.IsInf(want, 0):
		return got == want
	}
	return math.Abs(got-want) <= eps*norm
}

// fillMixed fills dst with mixed-sign, mixed-magnitude values, sprinkling in
// exact zeros and denormals so the kernels see the full double landscape.
func fillMixed(rng *rand.Rand, dst []float64) {
	for i := range dst {
		switch rng.Intn(12) {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = 5e-324 * float64(1+rng.Intn(100)) // denormal
		case 2:
			dst[i] = math.Ldexp(rng.NormFloat64(), rng.Intn(60)-30)
		default:
			dst[i] = rng.NormFloat64()
		}
	}
}

func TestSIMDDotEquivalence(t *testing.T) {
	defer requireSIMD(t)()
	rng := rand.New(rand.NewSource(8))
	for n := 1; n <= 67; n++ {
		for off := 0; off < 4; off++ {
			abuf := make([]float64, n+off)
			bbuf := make([]float64, n+off)
			fillMixed(rng, abuf)
			fillMixed(rng, bbuf)
			a, b := Vector(abuf[off:]), Vector(bbuf[off:])
			exact := a.Dot(b)
			norm := sumAbsDot(a, b)

			SetSIMD(true)
			simd := a.DotFast(b)
			SetSIMD(false)
			goFast := a.DotFast(b)

			if !closeEnough(simd, exact, simdKernelEps, norm) {
				t.Fatalf("n=%d off=%d: simd dot %g vs exact %g (norm %g)", n, off, simd, exact, norm)
			}
			if !closeEnough(goFast, exact, simdKernelEps, norm) {
				t.Fatalf("n=%d off=%d: go fast dot %g vs exact %g", n, off, goFast, exact)
			}
		}
	}
}

func TestSIMDDenseMarginsEquivalence(t *testing.T) {
	defer requireSIMD(t)()
	rng := rand.New(rand.NewSource(9))
	for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 17} {
		for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 50, 63, 64, 65, 67} {
			vals := make([]float64, rows*d)
			w := make(Vector, d)
			fillMixed(rng, vals)
			fillMixed(rng, w)
			exact := make([]float64, rows)
			DenseMargins(vals, d, w, exact)

			simd := make([]float64, rows)
			SetSIMD(true)
			DenseMarginsFast(vals, d, w, simd)

			for j := 0; j < rows; j++ {
				row := vals[j*d : (j+1)*d]
				if !closeEnough(simd[j], exact[j], simdKernelEps, sumAbsDot(row, w)) {
					t.Fatalf("rows=%d d=%d row %d: simd %g vs exact %g", rows, d, j, simd[j], exact[j])
				}
			}
		}
	}
}

func TestSIMDDenseAccumEquivalence(t *testing.T) {
	defer requireSIMD(t)()
	rng := rand.New(rand.NewSource(10))
	for _, rows := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 17} {
		for _, d := range []int{1, 2, 3, 4, 5, 8, 13, 16, 33, 50, 67} {
			vals := make([]float64, rows*d)
			coeffs := make([]float64, rows)
			base := make(Vector, d)
			fillMixed(rng, vals)
			fillMixed(rng, coeffs)
			fillMixed(rng, base)

			exact := append(Vector(nil), base...)
			for j := 0; j < rows; j++ {
				exact.AddScaled(coeffs[j], vals[j*d:(j+1)*d])
			}

			simd := append(Vector(nil), base...)
			SetSIMD(true)
			DenseAccumFast(simd, vals, d, coeffs)

			for i := 0; i < d; i++ {
				norm := 1 + math.Abs(base[i])
				for j := 0; j < rows; j++ {
					norm += math.Abs(coeffs[j] * vals[j*d+i])
				}
				if !closeEnough(simd[i], exact[i], simdKernelEps, norm) {
					t.Fatalf("rows=%d d=%d elem %d: simd %g vs exact %g", rows, d, i, simd[i], exact[i])
				}
			}
		}
	}
}

func TestSIMDSparseDotEquivalence(t *testing.T) {
	defer requireSIMD(t)()
	rng := rand.New(rand.NewSource(11))
	const d = 100
	w := make(Vector, d)
	fillMixed(rng, w)
	for nnz := 0; nnz <= 67; nnz++ {
		for trial := 0; trial < 4; trial++ {
			// Sorted unique indices over a widened range so a random tail
			// lands at >= d and must be trimmed, not gathered.
			idx := make([]int32, 0, nnz)
			next := int32(0)
			for len(idx) < nnz {
				next += int32(1 + rng.Intn(3))
				idx = append(idx, next)
			}
			vals := make([]float64, nnz)
			fillMixed(rng, vals)

			exact := SparseDot(idx, vals, w)
			SetSIMD(true)
			simd := SparseDotFast(idx, vals, w)
			SetSIMD(false)
			goFast := SparseDotFast(idx, vals, w)

			norm := 1.0
			for k := range idx {
				if idx[k] < d {
					norm += math.Abs(vals[k] * w[idx[k]])
				}
			}
			if !closeEnough(simd, exact, simdKernelEps, norm) {
				t.Fatalf("nnz=%d trial=%d: simd %g vs exact %g", nnz, trial, simd, exact)
			}
			if !closeEnough(goFast, exact, simdKernelEps, norm) {
				t.Fatalf("nnz=%d trial=%d: go fast %g vs exact %g", nnz, trial, goFast, exact)
			}
		}
	}
}

func TestSIMDCSRMarginsZeroRows(t *testing.T) {
	defer requireSIMD(t)()
	// Blocks with empty rows (offs[j] == offs[j+1]) and rows whose entire
	// index list is out of range must produce exact zeros, on every backend.
	w := Vector{1, 2, 3}
	offs := []int64{0, 0, 2, 2, 4}
	indices := []int32{0, 2, 5, 9}
	values := []float64{10, 20, 30, 40}
	out := make([]float64, 4)
	SetSIMD(true)
	CSRMarginsFast(offs, indices, values, w, out)
	want := []float64{0, 10*1 + 20*3, 0, 0}
	for j := range want {
		if out[j] != want[j] {
			t.Fatalf("row %d: got %g want %g", j, out[j], want[j])
		}
	}
}

func TestSIMDExpVecAccuracy(t *testing.T) {
	defer requireSIMD(t)()
	// Sweep the non-flushed range in vector-sized batches; the scalar tier's
	// documented bound (2e-8 relative vs math.Exp) applies to the vector
	// kernel too — it shares range reduction and polynomial, differing only
	// in FMA contraction and the rounding of k at half-way points.
	const step = 1e-3
	batch := make([]float64, 0, 4096)
	out := make([]float64, 4096)
	check := func() {
		SetSIMD(true)
		ExpFastVec(out[:len(batch)], batch)
		for i, x := range batch {
			want := math.Exp(x)
			got := out[i]
			if want == 0 || math.IsInf(want, 1) {
				continue // flushed/overflow handled in the edge test
			}
			if rel := math.Abs(got-want) / want; rel > 2e-8 {
				t.Fatalf("ExpFastVec(%g) = %g, want %g (rel %g)", x, got, want, rel)
			}
		}
		batch = batch[:0]
	}
	for x := -708.3; x <= 709.7; x += step {
		batch = append(batch, x)
		if len(batch) == cap(batch) {
			check()
		}
	}
	check()
}

func TestSIMDExpVecEdges(t *testing.T) {
	defer requireSIMD(t)()
	nan := math.NaN()
	inf := math.Inf(1)
	// Edge inputs: specials, both flush thresholds, and the k=1024 band
	// [1023.5·ln2, overflow) where the vector kernel's exponent clamp and
	// the scalar's p*=2 fold must agree.
	xs := []float64{
		nan, inf, -inf, 0, 1, -1,
		709.7827, 709.782712893384, 709.7827128933841, 710, 1000,
		709.0827, 709.44, 709.5, 709.75,
		-708.396418532264, -708.3964185322639, -708.397, -745, -1000,
		1e-300, -1e-300, 5e-324, -5e-324,
	}
	// Pad to force both the vector body and the scalar remainder over the
	// same values: run once at full length, once element-wise.
	got := make([]float64, len(xs))
	SetSIMD(true)
	ExpFastVec(got, xs)
	for i, x := range xs {
		want := ExpFast(x)
		if !closeEnough(got[i], want, 2e-8, math.Max(want, 1)) {
			t.Fatalf("ExpFastVec(%g) = %g, scalar ExpFast = %g", x, got[i], want)
		}
		single := []float64{x}
		one := make([]float64, 1)
		ExpFastVec(one, single) // scalar-remainder path
		if !(one[0] == want || (math.IsNaN(one[0]) && math.IsNaN(want))) {
			t.Fatalf("ExpFastVec scalar tail (%g) = %g, want %g", x, one[0], want)
		}
	}
}

func TestSIMDExpVecAliasAndRemainder(t *testing.T) {
	defer requireSIMD(t)()
	rng := rand.New(rand.NewSource(12))
	for n := 0; n <= 21; n++ {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * 20
		}
		want := make([]float64, n)
		SetSIMD(false)
		ExpFastVec(want, src)
		SetSIMD(true)
		sep := make([]float64, n)
		ExpFastVec(sep, src)
		ExpFastVec(src, src) // in-place
		for i := range want {
			if !closeEnough(sep[i], want[i], 2e-8, math.Max(want[i], 1)) {
				t.Fatalf("n=%d i=%d: vec %g vs scalar %g", n, i, sep[i], want[i])
			}
			if src[i] != sep[i] {
				t.Fatalf("n=%d i=%d: aliased %g vs separate %g", n, i, src[i], sep[i])
			}
		}
	}
}

// TestSIMDBackendReporting pins the dispatch bookkeeping: names, the SetSIMD
// hook, and that FastBackend degrades to fast-go when forced off.
func TestSIMDBackendReporting(t *testing.T) {
	prev := SetSIMD(SIMDAvailable())
	defer SetSIMD(prev)
	if SIMDAvailable() {
		SetSIMD(true)
		if got := FastBackend(); got != "fast-simd-avx2" && got != "fast-simd-neon" {
			t.Fatalf("FastBackend() = %q with SIMD on", got)
		}
	}
	SetSIMD(false)
	if got := FastBackend(); got != BackendFastGo {
		t.Fatalf("FastBackend() = %q with SIMD off", got)
	}
	if SetSIMD(true) != false {
		t.Fatal("SetSIMD(true) should report previous state false")
	}
	if !SIMDAvailable() && SIMDEnabled() {
		t.Fatal("SIMD enabled without an available backend")
	}
}

// FuzzKernelEquivalence drives all three implementations of dot, margins,
// accum and sparse dot from fuzzer-chosen shapes and a value pool that
// includes denormals, infinities and NaN, asserting tolerance-equivalence
// (or matching non-finite class) everywhere. Widths and offsets wrap into
// 1..67 and 0..3, the ranges where every asm tail path lives.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(0), uint8(0))
	f.Add(int64(2), uint8(17), uint8(1), uint8(1))
	f.Add(int64(3), uint8(64), uint8(3), uint8(2))
	f.Add(int64(4), uint8(1), uint8(0), uint8(3))
	f.Add(int64(5), uint8(33), uint8(2), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, offRaw, kind uint8) {
		if !SIMDAvailable() {
			t.Skip("no SIMD backend")
		}
		prev := SetSIMD(true)
		defer SetSIMD(prev)

		// When Σ|terms| itself overflows (or is NaN from 0·Inf terms), no
		// tolerance bound is meaningful and FMA's single rounding can even
		// flip the Inf/NaN class of the result — e.g. fma(1e300, 1e300, -Inf)
		// is -Inf while the rounded product path gives +Inf + -Inf = NaN.
		// Such inputs are outside the fast tier's contract; skip the check.
		check := func(got, want, eps, norm float64) bool {
			if math.IsInf(norm, 0) || math.IsNaN(norm) {
				return true
			}
			return closeEnough(got, want, eps, norm)
		}

		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%67
		off := int(offRaw) % 4
		pool := []float64{0, 1, -1, 0.5, 1e300, -1e300, 5e-324, -5e-324,
			math.Inf(1), math.Inf(-1), math.NaN(), 1e-308, math.Pi}
		draw := func() float64 {
			if rng.Intn(8) == 0 {
				return pool[rng.Intn(len(pool))]
			}
			return rng.NormFloat64()
		}
		fill := func(dst []float64) {
			for i := range dst {
				dst[i] = draw()
			}
		}

		switch kind % 5 {
		case 0: // dot
			a := make(Vector, n+off)
			b := make(Vector, n+off)
			fill(a)
			fill(b)
			a, b = a[off:], b[off:]
			exact := a.Dot(b)
			SetSIMD(true)
			simd := a.DotFast(b)
			if !check(simd, exact, simdKernelEps, sumAbsDot(a, b)) {
				t.Fatalf("dot n=%d: simd %g exact %g", n, simd, exact)
			}
		case 1: // dense margins
			rows := 1 + int(offRaw)%7
			vals := make([]float64, rows*n)
			w := make(Vector, n)
			fill(vals)
			fill(w)
			exact := make([]float64, rows)
			DenseMargins(vals, n, w, exact)
			simd := make([]float64, rows)
			SetSIMD(true)
			DenseMarginsFast(vals, n, w, simd)
			for j := range exact {
				if !check(simd[j], exact[j], simdKernelEps, sumAbsDot(vals[j*n:(j+1)*n], w)) {
					t.Fatalf("margins row %d: simd %g exact %g", j, simd[j], exact[j])
				}
			}
		case 2: // dense accum
			rows := 1 + int(offRaw)%9
			vals := make([]float64, rows*n)
			coeffs := make([]float64, rows)
			fill(vals)
			fill(coeffs)
			exact := make(Vector, n)
			for j := 0; j < rows; j++ {
				exact.AddScaled(coeffs[j], vals[j*n:(j+1)*n])
			}
			simd := make(Vector, n)
			SetSIMD(true)
			DenseAccumFast(simd, vals, n, coeffs)
			for i := range exact {
				norm := 1.0
				for j := 0; j < rows; j++ {
					norm += math.Abs(coeffs[j] * vals[j*n+i])
				}
				if !check(simd[i], exact[i], simdKernelEps, norm) {
					t.Fatalf("accum elem %d: simd %g exact %g", i, simd[i], exact[i])
				}
			}
		case 3: // sparse dot, indices straddling len(w)
			d := 1 + int(nRaw)%100
			w := make(Vector, d)
			fill(w)
			idx := make([]int32, 0, n)
			next := int32(0)
			for len(idx) < n {
				next += int32(1 + rng.Intn(3))
				idx = append(idx, next)
			}
			vals := make([]float64, n)
			fill(vals)
			exact := SparseDot(idx, vals, w)
			SetSIMD(true)
			simd := SparseDotFast(idx, vals, w)
			norm := 1.0
			for k := range idx {
				if int(idx[k]) < d {
					norm += math.Abs(vals[k] * w[idx[k]])
				}
			}
			if !check(simd, exact, simdKernelEps, norm) {
				t.Fatalf("sparse d=%d nnz=%d: simd %g exact %g", d, n, simd, exact)
			}
		case 4: // vector exp over finite mixed magnitudes + specials
			src := make([]float64, n)
			fill(src)
			want := make([]float64, n)
			SetSIMD(false)
			ExpFastVec(want, src)
			got := make([]float64, n)
			SetSIMD(true)
			ExpFastVec(got, src)
			for i := range src {
				if !check(got[i], want[i], 2e-8, math.Max(math.Abs(want[i]), 1)) {
					t.Fatalf("exp(%g): vec %g scalar %g", src[i], got[i], want[i])
				}
			}
		}
	})
}
