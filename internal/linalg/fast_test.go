package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// Fast-tier kernel tests: each fast kernel against its exact counterpart
// within the reassociation tolerance, with the tail and edge geometries the
// engine sweep cannot isolate — lengths not divisible by the accumulator
// width or the unroll, empty rows, and the ExpFast accuracy contract over the
// full non-flushed input range.

// kernelEps bounds fast-vs-exact kernel disagreement: pure reassociation of
// at most a few dozen adds of O(10) terms stays far under 1e-12 relative.
const kernelEps = 1e-12

func fastRelDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func randVec(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat64() * 10
	}
	return v
}

// TestDotFastMatchesExact sweeps every tail geometry of the 8-wide/4-
// accumulator loop: lengths 0 through 33 cover empty, sub-unroll, and every
// remainder mod 8.
func TestDotFastMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for n := 0; n <= 33; n++ {
		a, b := randVec(r, n), randVec(r, n)
		exact := a.Dot(b)
		fast := a.DotFast(b)
		if d := fastRelDiff(exact, fast); d > kernelEps {
			t.Fatalf("n=%d: exact %g fast %g (rel err %.3g)", n, exact, fast, d)
		}
	}
}

// TestDenseMarginsFastMatches checks the blocked dense margin kernel over
// row counts and dimensions not divisible by the accumulator width.
func TestDenseMarginsFastMatches(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, rows := range []int{0, 1, 3, 5, 13} {
		for _, d := range []int{1, 7, 24} {
			vals := randVec(r, rows*d)
			w := randVec(r, d)
			exact := make([]float64, rows)
			fast := make([]float64, rows)
			DenseMargins(vals, d, w, exact)
			DenseMarginsFast(vals, d, w, fast)
			for j := range exact {
				if diff := fastRelDiff(exact[j], fast[j]); diff > kernelEps {
					t.Fatalf("rows=%d d=%d row %d: exact %g fast %g", rows, d, j, exact[j], fast[j])
				}
			}
		}
	}
}

// TestSparseDotFastMatches covers the sparse fast dot against SparseDot,
// including empty rows, nnz not divisible by the 4-wide unroll, and rows
// whose index tail reaches at or past the model dimension (both kernels must
// sum exactly the in-range prefix). Indices are normalized through SortDedup,
// the same rule every arena row satisfies.
func TestSparseDotFastMatches(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const d = 20
	w := randVec(r, d)
	for _, nnz := range []int{0, 1, 2, 3, 5, 9, 17} {
		for _, overflow := range []int{0, 1, 3} { // entries indexed >= d
			idx := make([]int32, 0, nnz+overflow)
			vals := make([]float64, 0, nnz+overflow)
			perm := r.Perm(d)
			for _, p := range perm[:nnz] {
				idx = append(idx, int32(p))
				vals = append(vals, r.NormFloat64())
			}
			for k := 0; k < overflow; k++ {
				idx = append(idx, int32(d+k))
				vals = append(vals, r.NormFloat64())
			}
			n, err := SortDedup(idx, vals)
			if err != nil {
				t.Fatal(err)
			}
			idx, vals = idx[:n], vals[:n]
			exact := SparseDot(idx, vals, w)
			fast := SparseDotFast(idx, vals, w)
			if diff := fastRelDiff(exact, fast); diff > kernelEps {
				t.Fatalf("nnz=%d overflow=%d: exact %g fast %g", nnz, overflow, exact, fast)
			}
		}
	}
}

// TestCSRMarginsFastZeroRows pins the zero-row-block edge: a CSR block whose
// offsets contain empty rows (lo == hi) must produce zero margins on both
// tiers, with no index panics from the tail-trimming loop.
func TestCSRMarginsFastZeroRows(t *testing.T) {
	w := Vector{1, 2, 3}
	// rows: empty, {0:2}, empty, empty, {1:5, 2:-1}, empty
	offs := []int64{0, 0, 1, 1, 1, 3, 3}
	idx := []int32{0, 1, 2}
	vals := []float64{2, 5, -1}
	exact := make([]float64, 6)
	fast := make([]float64, 6)
	CSRMargins(offs, idx, vals, w, exact)
	CSRMarginsFast(offs, idx, vals, w, fast)
	for j := range exact {
		if exact[j] != fast[j] {
			t.Fatalf("row %d: exact %g fast %g", j, exact[j], fast[j])
		}
	}
	want := []float64{0, 2, 0, 0, 7, 0}
	for j, v := range want {
		if exact[j] != v {
			t.Fatalf("row %d: margin %g, want %g", j, exact[j], v)
		}
	}
}

// TestDenseAccumFastMatches checks the fused four-row axpy against a per-row
// AddScaled sequence over every tail geometry mod 4, with zero coefficients
// interleaved (inactive hinge rows ride through as 0·x terms).
func TestDenseAccumFastMatches(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 9, 13} {
		for _, d := range []int{1, 5, 24} {
			vals := randVec(r, rows*d)
			coeffs := make([]float64, rows)
			for j := range coeffs {
				if j%3 == 0 {
					coeffs[j] = 0 // inactive row
				} else {
					coeffs[j] = r.NormFloat64()
				}
			}
			exact := randVec(r, d)
			fast := append(Vector(nil), exact...)
			for j := 0; j < rows; j++ {
				exact.AddScaled(coeffs[j], vals[j*d:(j+1)*d])
			}
			DenseAccumFast(fast, vals, d, coeffs)
			for i := range exact {
				if diff := fastRelDiff(exact[i], fast[i]); diff > kernelEps {
					t.Fatalf("rows=%d d=%d elem %d: exact %g fast %g", rows, d, i, exact[i], fast[i])
				}
			}
		}
	}
}

// expFastBound is the documented ExpFast accuracy contract: maximum relative
// error against math.Exp below 2e-8 over the whole non-flushed input range.
const expFastBound = 2e-8

// TestExpFastMaxRelError sweeps the full non-flushed range with a step fine
// enough to cross every range-reduction bucket (k changes every ln2 ≈ 0.69)
// thousands of times, verifying the documented bound.
func TestExpFastMaxRelError(t *testing.T) {
	var worst, worstX float64
	for x := -708.0; x <= 709.0; x += 0.0005 {
		want := math.Exp(x)
		got := ExpFast(x)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst, worstX = rel, x
		}
	}
	if worst > expFastBound {
		t.Fatalf("max rel error %.3g at x=%g exceeds bound %.3g", worst, worstX, expFastBound)
	}
	t.Logf("max rel error %.3g at x=%g", worst, worstX)
}

// TestExpFastEdges pins the out-of-range contract: overflow to +Inf,
// underflow (including the denormal output range) flushed to zero, NaN
// passthrough, and exactness at zero and denormal inputs.
func TestExpFastEdges(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 1},
		{math.Inf(1), math.Inf(1)},
		{math.Inf(-1), 0},
		{710, math.Inf(1)},
		{1e9, math.Inf(1)},
		{-1e9, 0},
		{-720, 0},   // denormal output range: flushed to zero by contract
		{-745.2, 0}, // below the smallest denormal either way
		{5e-324, 1}, // denormal input: e^x rounds to exactly 1
	}
	for _, c := range cases {
		got := ExpFast(c.x)
		if got != c.want {
			t.Fatalf("ExpFast(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if got := ExpFast(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("ExpFast(NaN) = %g, want NaN", got)
	}
	// Huge-but-finite margins just inside the thresholds stay finite/nonzero.
	if got := ExpFast(709.7); math.IsInf(got, 1) {
		t.Fatalf("ExpFast(709.7) overflowed; math.Exp gives %g", math.Exp(709.7))
	}
	if got := ExpFast(-708.3); got == 0 {
		t.Fatalf("ExpFast(-708.3) flushed; math.Exp gives %g", math.Exp(-708.3))
	}
}
