package linalg

import (
	"math/rand"
	"testing"
)

// SIMD backend microbenchmarks, the asm-backed siblings of the pairs in
// fast_bench_test.go. Each pins the backend explicitly (SetSIMD) so a row
// always measures the same kernel family regardless of host detection;
// SIMD rows skip on machines without a backend. The three-way read is
//
//	go test -bench 'Exact$|Fast$|SIMD$|FastGo$' -benchtime=2s ./internal/linalg/
//
// exact -> fast-go -> fast-simd, the full kernel ladder.

func requireSIMDBench(b *testing.B) func() {
	b.Helper()
	if !SIMDAvailable() {
		b.Skipf("no SIMD backend (features: %s)", CPUFeatures())
	}
	prev := SetSIMD(true)
	return func() { SetSIMD(prev) }
}

func BenchmarkDot50SIMD(b *testing.B) {
	defer requireSIMDBench(b)()
	x, y := benchVecs(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkF = x.DotFast(y)
	}
}

func benchDenseMargins(b *testing.B, simd bool) {
	const rows, d = 512, 50
	r := rand.New(rand.NewSource(9))
	vals := randVec(r, rows*d)
	w := randVec(r, d)
	out := make([]float64, rows)
	if simd {
		defer requireSIMDBench(b)()
	} else {
		defer SetSIMD(SetSIMD(false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DenseMarginsFast(vals, d, w, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}

func BenchmarkDenseMargins512x50FastGo(b *testing.B) { benchDenseMargins(b, false) }
func BenchmarkDenseMargins512x50SIMD(b *testing.B)   { benchDenseMargins(b, true) }

func BenchmarkDenseAccum512x50SIMD(b *testing.B) {
	const rows, d = 512, 50
	r := rand.New(rand.NewSource(8))
	vals := randVec(r, rows*d)
	coeffs := randVec(r, rows)
	grad := make(Vector, d)
	defer requireSIMDBench(b)()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DenseAccumFast(grad, vals, d, coeffs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}

// benchCSR builds a 512-row CSR block with ~25 nonzeros per row over
// d=1000, the sparse shape the engine benchmarks use.
func benchCSR(r *rand.Rand) (offs []int64, indices []int32, values []float64, w Vector) {
	const rows, d, nnz = 512, 1000, 25
	offs = make([]int64, rows+1)
	for j := 1; j <= rows; j++ {
		offs[j] = offs[j-1] + nnz
	}
	indices = make([]int32, rows*nnz)
	values = make([]float64, rows*nnz)
	for j := 0; j < rows; j++ {
		next := int32(0)
		for k := 0; k < nnz; k++ {
			next += int32(1 + r.Intn((d-int(next))/(nnz-k)))
			indices[j*nnz+k] = next - 1
			values[j*nnz+k] = r.NormFloat64()
		}
	}
	return offs, indices, values, randVec(r, d)
}

func benchCSRMargins(b *testing.B, simd bool) {
	r := rand.New(rand.NewSource(10))
	offs, indices, values, w := benchCSR(r)
	out := make([]float64, len(offs)-1)
	if simd {
		defer requireSIMDBench(b)()
	} else {
		defer SetSIMD(SetSIMD(false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRMarginsFast(offs, indices, values, w, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(out)), "ns/row")
}

func BenchmarkCSRMargins512x25FastGo(b *testing.B) { benchCSRMargins(b, false) }
func BenchmarkCSRMargins512x25SIMD(b *testing.B)   { benchCSRMargins(b, true) }

func benchExpVec(b *testing.B, simd bool) {
	r := rand.New(rand.NewSource(11))
	src := make([]float64, 512)
	for i := range src {
		src[i] = r.NormFloat64() * 10
	}
	dst := make([]float64, len(src))
	if simd {
		defer requireSIMDBench(b)()
	} else {
		defer SetSIMD(SetSIMD(false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpFastVec(dst, src)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(src)), "ns/elem")
}

func BenchmarkExpVec512FastGo(b *testing.B) { benchExpVec(b, false) }
func BenchmarkExpVec512SIMD(b *testing.B)   { benchExpVec(b, true) }
