//go:build arm64 && !noasm

package linalg

import "ml4all/internal/linalg/cpu"

// arm64 kernel backend: NEON (AdvSIMD) assembly in simd_arm64.s. The arm64
// backend is intentionally smaller than the amd64 one — two primitive
// kernels, a 2x2-lane FMA dot and a single-row fused axpy, with the block
// row loops kept in Go. NEON has no gather instruction so the sparse dot
// stays on the portable fast loops, and the vectorized exp is amd64-only
// for now; both fall back per the have* constants below.

const (
	simdBackendName = BackendSIMDNEON

	haveSparseSIMD = false
	haveExpVecSIMD = false

	dotSIMDMinLen    = 8
	sparseSIMDMinNNZ = 1 << 30
)

func simdAvailable() bool { return cpu.Detected.NEON }

//go:noescape
func dotNEON(a, b *float64, n int) float64

//go:noescape
func axpyNEON(dst, x *float64, n int, c float64)

// dotSIMD computes <a, b>. Caller guarantees len(a) == len(b) > 0.
func dotSIMD(a, b []float64) float64 { return dotNEON(&a[0], &b[0], len(a)) }

// denseMarginsSIMD fills out[j] = <row j, w>; the row loop stays in Go and
// each row dots through the NEON kernel. Caller guarantees
// stride == len(w) > 0 and len(out) > 0.
func denseMarginsSIMD(vals []float64, stride int, w Vector, out []float64) {
	for j := range out {
		row := vals[j*stride : (j+1)*stride : (j+1)*stride]
		out[j] = dotNEON(&row[0], &w[0], stride)
	}
}

// denseAccumSIMD applies grad[i] += Σ_j coeffs[j]·vals[j·stride+i], one
// fused-multiply row at a time. Caller guarantees len(grad) == stride > 0
// and len(coeffs) > 0.
func denseAccumSIMD(grad Vector, vals []float64, stride int, coeffs []float64) {
	for j, c := range coeffs {
		row := vals[j*stride : (j+1)*stride : (j+1)*stride]
		axpyNEON(&grad[0], &row[0], stride, c)
	}
}

// sparseDotSIMD is unreachable on arm64 (haveSparseSIMD is false).
func sparseDotSIMD(idx []int32, vals []float64, w Vector) float64 {
	panic("linalg: sparse SIMD kernel not available on arm64")
}

// expVecSIMD is unreachable on arm64 (haveExpVecSIMD is false).
func expVecSIMD(dst, src []float64) {
	panic("linalg: vector exp kernel not available on arm64")
}
