// Package linalg provides the small dense/sparse linear-algebra kernel the
// gradient-descent operators are built on. It is deliberately minimal: the
// paper's workloads only need dot products, scaled additions (axpy), norms and
// elementwise updates over dense model vectors and sparse feature vectors.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of dimension d.
func NewVector(d int) Vector { return make(Vector, d) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Zero sets every component of v to 0 in place.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Dot returns the inner product of v and w. It panics if dimensions differ.
// The loop is the shared 4-wide single-accumulator kernel (see block.go), so
// the summation order — and with it every bit of the result — matches the
// naive loop.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	return dotContig(v, w)
}

// AddScaled adds alpha*w to v in place (the BLAS axpy kernel), 4-wide
// unrolled. Each component is written independently, so unrolling cannot
// change any result bit.
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled dimension mismatch %d vs %d", len(v), len(w)))
	}
	w = w[:len(v)]
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] += alpha * w[i]
		v[i+1] += alpha * w[i+1]
		v[i+2] += alpha * w[i+2]
		v[i+3] += alpha * w[i+3]
	}
	for ; i < len(v); i++ {
		v[i] += alpha * w[i]
	}
}

// Add adds w to v in place.
func (v Vector) Add(w Vector) { v.AddScaled(1, w) }

// Sub subtracts w from v in place.
func (v Vector) Sub(w Vector) { v.AddScaled(-1, w) }

// Scale multiplies every component of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Norm2 returns the Euclidean (L2) norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the max-absolute-value norm of v.
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// DistL2 returns the Euclidean distance between v and w.
func (v Vector) DistL2(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: DistL2 dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		d := x - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DistL1 returns the L1 distance between v and w. The paper's Converge
// operator (Listing 5) uses exactly this delta between successive weight
// vectors.
func (v Vector) DistL1(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: DistL1 dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += math.Abs(x - w[i])
	}
	return s
}

// Equal reports whether v and w are elementwise within tol of each other.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component of v is finite (no NaN/Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
