package linalg

import (
	"fmt"
	"math"
)

// Sparse is a sparse vector in coordinate form: parallel slices of strictly
// increasing zero-based indices and their values. The zero value is an empty
// sparse vector ready to use. This mirrors the paper's sparse data unit
// ("label, a set of indices, and a set of values", Section 4.1); the label
// itself lives on the data unit, not here.
type Sparse struct {
	Indices []int32
	Values  []float64
}

// NewSparse builds a sparse vector from index/value pairs. Indices must be
// non-negative; they are sorted and duplicate indices are summed (the
// SortDedup normalization rule, shared with the columnar arena builder).
func NewSparse(indices []int32, values []float64) (Sparse, error) {
	if len(indices) != len(values) {
		return Sparse{}, fmt.Errorf("linalg: NewSparse length mismatch %d vs %d", len(indices), len(values))
	}
	idx := make([]int32, len(indices))
	vals := make([]float64, len(values))
	copy(idx, indices)
	copy(vals, values)
	n, err := SortDedup(idx, vals)
	if err != nil {
		return Sparse{}, err
	}
	return Sparse{Indices: idx[:n], Values: vals[:n]}, nil
}

// NNZ returns the number of stored (non-zero) entries.
func (s Sparse) NNZ() int { return len(s.Indices) }

// MaxIndex returns the largest stored index, or -1 for an empty vector.
func (s Sparse) MaxIndex() int32 {
	if len(s.Indices) == 0 {
		return -1
	}
	return s.Indices[len(s.Indices)-1]
}

// Clone returns an independent copy of s.
func (s Sparse) Clone() Sparse {
	c := Sparse{Indices: make([]int32, len(s.Indices)), Values: make([]float64, len(s.Values))}
	copy(c.Indices, s.Indices)
	copy(c.Values, s.Values)
	return c
}

// Dot returns the inner product of s with the dense vector w. Indices of s
// beyond the dimension of w contribute zero, which lets callers use model
// vectors sized from training metadata even when a stray point has a larger
// index.
func (s Sparse) Dot(w Vector) float64 {
	return SparseDot(s.Indices, s.Values, w)
}

// AddScaledInto adds alpha*s into the dense vector dst in place, ignoring
// indices beyond dst's dimension.
func (s Sparse) AddScaledInto(dst Vector, alpha float64) {
	SparseAddScaledInto(dst, alpha, s.Indices, s.Values)
}

// Norm2 returns the Euclidean norm of s.
func (s Sparse) Norm2() float64 {
	return SparseNorm2(s.Values)
}

// Dense materializes s as a dense vector of dimension d. Entries with index
// >= d are dropped.
func (s Sparse) Dense(d int) Vector {
	v := NewVector(d)
	s.AddScaledInto(v, 1)
	return v
}

// FromDense converts a dense vector into sparse form, keeping entries whose
// absolute value exceeds eps.
func FromDense(v Vector, eps float64) Sparse {
	var s Sparse
	for i, x := range v {
		if math.Abs(x) > eps {
			s.Indices = append(s.Indices, int32(i))
			s.Values = append(s.Values, x)
		}
	}
	return s
}
