package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Sparse is a sparse vector in coordinate form: parallel slices of strictly
// increasing zero-based indices and their values. The zero value is an empty
// sparse vector ready to use. This mirrors the paper's sparse data unit
// ("label, a set of indices, and a set of values", Section 4.1); the label
// itself lives on the data unit, not here.
type Sparse struct {
	Indices []int32
	Values  []float64
}

// NewSparse builds a sparse vector from index/value pairs. Indices must be
// non-negative; they are sorted and duplicate indices are summed.
func NewSparse(indices []int32, values []float64) (Sparse, error) {
	if len(indices) != len(values) {
		return Sparse{}, fmt.Errorf("linalg: NewSparse length mismatch %d vs %d", len(indices), len(values))
	}
	type pair struct {
		i int32
		v float64
	}
	ps := make([]pair, len(indices))
	for k, i := range indices {
		if i < 0 {
			return Sparse{}, fmt.Errorf("linalg: NewSparse negative index %d", i)
		}
		ps[k] = pair{i, values[k]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	s := Sparse{Indices: make([]int32, 0, len(ps)), Values: make([]float64, 0, len(ps))}
	for _, p := range ps {
		if n := len(s.Indices); n > 0 && s.Indices[n-1] == p.i {
			s.Values[n-1] += p.v
			continue
		}
		s.Indices = append(s.Indices, p.i)
		s.Values = append(s.Values, p.v)
	}
	return s, nil
}

// NNZ returns the number of stored (non-zero) entries.
func (s Sparse) NNZ() int { return len(s.Indices) }

// MaxIndex returns the largest stored index, or -1 for an empty vector.
func (s Sparse) MaxIndex() int32 {
	if len(s.Indices) == 0 {
		return -1
	}
	return s.Indices[len(s.Indices)-1]
}

// Clone returns an independent copy of s.
func (s Sparse) Clone() Sparse {
	c := Sparse{Indices: make([]int32, len(s.Indices)), Values: make([]float64, len(s.Values))}
	copy(c.Indices, s.Indices)
	copy(c.Values, s.Values)
	return c
}

// Dot returns the inner product of s with the dense vector w. Indices of s
// beyond the dimension of w contribute zero, which lets callers use model
// vectors sized from training metadata even when a stray point has a larger
// index.
func (s Sparse) Dot(w Vector) float64 {
	var sum float64
	d := int32(len(w))
	for k, i := range s.Indices {
		if i >= d {
			break
		}
		sum += s.Values[k] * w[i]
	}
	return sum
}

// AddScaledInto adds alpha*s into the dense vector dst in place, ignoring
// indices beyond dst's dimension.
func (s Sparse) AddScaledInto(dst Vector, alpha float64) {
	d := int32(len(dst))
	for k, i := range s.Indices {
		if i >= d {
			break
		}
		dst[i] += alpha * s.Values[k]
	}
}

// Norm2 returns the Euclidean norm of s.
func (s Sparse) Norm2() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Dense materializes s as a dense vector of dimension d. Entries with index
// >= d are dropped.
func (s Sparse) Dense(d int) Vector {
	v := NewVector(d)
	s.AddScaledInto(v, 1)
	return v
}

// FromDense converts a dense vector into sparse form, keeping entries whose
// absolute value exceeds eps.
func FromDense(v Vector, eps float64) Sparse {
	var s Sparse
	for i, x := range v {
		if math.Abs(x) > eps {
			s.Indices = append(s.Indices, int32(i))
			s.Values = append(s.Values, x)
		}
	}
	return s
}
