//go:build amd64 && !noasm

package cpu

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv executes XGETBV with XCR0, returning the enabled-state mask the OS
// will actually save/restore on context switch. Implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

// detect reads CPUID the standard way: FMA and OSXSAVE/AVX from leaf 1 ECX,
// AVX2 from leaf 7 EBX, then XGETBV to confirm the OS saves XMM+YMM state
// (bits 1 and 2 of XCR0). Without the XGETBV check an AVX2 CPU under an OS
// that does not manage YMM state would fault on the first VMOVUPD.
func detect() Features {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return Features{}
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return Features{}
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return Features{} // OS does not save XMM+YMM state
	}
	var f Features
	f.FMA = ecx1&fmaBit != 0
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		f.AVX2 = ebx7&(1<<5) != 0
	}
	return f
}
