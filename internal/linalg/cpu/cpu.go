// Package cpu performs runtime CPU feature detection for the SIMD kernel
// backend beneath the fast-math tier (internal/linalg). Detection runs once
// at init; the result answers exactly one question — can this binary's hand-
// written vector kernels execute on this machine? — so a stock GOAMD64=v1
// build still dispatches AVX2+FMA assembly when the silicon has it, instead
// of needing the compile-time GOAMD64=v3 arrangement CI used before.
//
// Two escape hatches bypass the assembly entirely, in layers:
//
//   - the `noasm` build tag compiles the detection (and every linalg .s
//     file) out, so Features reports nothing and the pure-Go fast loops are
//     the whole fast tier;
//   - the ML4ALL_NOSIMD environment variable (any non-empty value) leaves
//     the assembly compiled in but reports the machine as featureless, for
//     disabling a suspect kernel in the field without rebuilding.
package cpu

import "os"

// Features describes the vector ISA extensions the running CPU supports, as
// far as the linalg kernel backend cares.
type Features struct {
	// AVX2 and FMA together enable the amd64 kernel backend. Both require
	// OS support for saving YMM state (checked via XGETBV), so a true here
	// means the instructions are actually executable, not merely present
	// in CPUID.
	AVX2 bool
	FMA  bool

	// NEON (AdvSIMD) enables the arm64 kernel backend. It is part of the
	// ARMv8-A baseline, so on arm64 builds it is always true unless the
	// noasm tag or the env override turned detection off.
	NEON bool
}

// Detected reports the features of the running CPU. It is set once at init
// and never written afterwards, so reads need no synchronization.
var Detected Features

// envDisabled records that ML4ALL_NOSIMD suppressed a detection that would
// otherwise have succeeded — surfaced by Summary so BENCH artifacts stay
// honest about why a capable machine ran portable loops.
var envDisabled bool

func init() {
	if os.Getenv("ML4ALL_NOSIMD") != "" {
		envDisabled = detect() != (Features{})
		return
	}
	Detected = detect()
}

// EnvDisabled reports whether ML4ALL_NOSIMD masked features the hardware
// actually has.
func EnvDisabled() bool { return envDisabled }

// Summary renders the detection result as a short, stable string for bench
// artifacts and /metrics, e.g. "avx2,fma", "neon", or "none (ML4ALL_NOSIMD)".
func (f Features) Summary() string {
	s := ""
	add := func(name string, on bool) {
		if !on {
			return
		}
		if s != "" {
			s += ","
		}
		s += name
	}
	add("avx2", f.AVX2)
	add("fma", f.FMA)
	add("neon", f.NEON)
	if s == "" {
		s = "none"
		if envDisabled {
			s += " (ML4ALL_NOSIMD)"
		}
	}
	return s
}
