//go:build arm64 && !noasm

package cpu

// detect on arm64: AdvSIMD (NEON) with double-precision lanes is part of
// the ARMv8-A baseline Go requires, so there is nothing to probe — every
// arm64 binary may use the NEON kernels. The noasm tag and ML4ALL_NOSIMD
// remain the escape hatches, handled in cpu.go.
func detect() Features { return Features{NEON: true} }
