//go:build noasm || !(amd64 || arm64)

package cpu

// detect under the noasm tag (or on an architecture without a kernel
// backend): no features, so linalg keeps its portable fast loops.
func detect() Features { return Features{} }
