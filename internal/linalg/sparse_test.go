package linalg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomSparse(r *rand.Rand, dim int) Sparse {
	nnz := r.Intn(dim + 1)
	idx := make([]int32, 0, nnz)
	val := make([]float64, 0, nnz)
	seen := map[int32]bool{}
	for len(idx) < nnz {
		i := int32(r.Intn(dim))
		if seen[i] {
			continue
		}
		seen[i] = true
		idx = append(idx, i)
		val = append(val, r.NormFloat64())
	}
	s, err := NewSparse(idx, val)
	if err != nil {
		panic(err)
	}
	return s
}

func TestNewSparseSortsAndDedups(t *testing.T) {
	s, err := NewSparse([]int32{5, 1, 5, 3}, []float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []int32{1, 3, 5}
	wantVal := []float64{2, 8, 5} // duplicates at index 5 summed
	if !reflect.DeepEqual(s.Indices, wantIdx) {
		t.Fatalf("indices = %v, want %v", s.Indices, wantIdx)
	}
	if !reflect.DeepEqual(s.Values, wantVal) {
		t.Fatalf("values = %v, want %v", s.Values, wantVal)
	}
	if s.NNZ() != 3 || s.MaxIndex() != 5 {
		t.Fatalf("NNZ/MaxIndex = %d/%d, want 3/5", s.NNZ(), s.MaxIndex())
	}
}

func TestNewSparseRejectsBadInput(t *testing.T) {
	if _, err := NewSparse([]int32{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewSparse([]int32{-1}, []float64{1}); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestSparseDenseDotEquivalenceProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(7)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			dim := 1 + r.Intn(24)
			vals[0] = reflect.ValueOf(randomSparse(r, dim))
			w := make(Vector, dim)
			for i := range w {
				w[i] = r.NormFloat64()
			}
			vals[1] = reflect.ValueOf(w)
		},
	}
	f := func(s Sparse, w Vector) bool {
		want := s.Dense(len(w)).Dot(w)
		got := s.Dot(w)
		return math.Abs(got-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAddScaledIntoMatchesDense(t *testing.T) {
	s, _ := NewSparse([]int32{0, 2}, []float64{1.5, -2})
	dst := Vector{1, 1, 1}
	s.AddScaledInto(dst, 2)
	want := Vector{4, 1, -3}
	if !dst.Equal(want, 1e-12) {
		t.Fatalf("AddScaledInto = %v, want %v", dst, want)
	}
}

func TestSparseIndicesBeyondDenseDimIgnored(t *testing.T) {
	s, _ := NewSparse([]int32{0, 10}, []float64{2, 99})
	w := Vector{3, 3}
	if got := s.Dot(w); got != 6 {
		t.Fatalf("Dot with out-of-range index = %g, want 6", got)
	}
	dst := NewVector(2)
	s.AddScaledInto(dst, 1)
	if dst[0] != 2 || dst[1] != 0 {
		t.Fatalf("AddScaledInto with out-of-range index = %v", dst)
	}
}

func TestFromDenseRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(8)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			d := 1 + r.Intn(16)
			v := make(Vector, d)
			for i := range v {
				if r.Float64() < 0.5 {
					v[i] = r.NormFloat64()
				}
			}
			vals[0] = reflect.ValueOf(v)
		},
	}
	f := func(v Vector) bool {
		s := FromDense(v, 0)
		back := s.Dense(len(v))
		return back.Equal(v, 1e-12)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSparseNorm2(t *testing.T) {
	s, _ := NewSparse([]int32{1, 4}, []float64{3, 4})
	if got := s.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
}

func TestSparseCloneIndependent(t *testing.T) {
	s, _ := NewSparse([]int32{1}, []float64{2})
	c := s.Clone()
	c.Values[0] = 7
	if s.Values[0] != 2 {
		t.Fatal("Clone shares values")
	}
}

func TestEmptySparse(t *testing.T) {
	var s Sparse
	if s.NNZ() != 0 || s.MaxIndex() != -1 {
		t.Fatalf("empty sparse: NNZ=%d MaxIndex=%d", s.NNZ(), s.MaxIndex())
	}
	if s.Dot(Vector{1, 2}) != 0 {
		t.Fatal("empty sparse dot != 0")
	}
}
