package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Row-view kernels: the same dot/axpy/norm loops the Sparse methods run, but
// over bare (indices, values) slice pairs so callers holding zero-copy views
// into a columnar arena (data.Matrix rows) need not materialize a Sparse
// header per row. Sparse's own methods delegate here; keeping exactly one
// loop per kernel is what makes arena-backed rows bit-identical to
// Sparse-backed units. dotContig below is that single copy for the dense
// dot: Vector.Dot and the block margin kernels both delegate here, so the
// fast tier (fast.go) is the only other dense dot loop in the package.

// dotContig is the canonical exact dense dot-product loop, 4-wide unrolled.
// The unrolling uses ONE accumulator — s is updated in strict index order —
// so the float summation order is exactly that of the naive loop; multiple
// partial sums would be faster still but would change rounding and break the
// blocked-vs-row bitwise guarantee (that trade is exactly what dotContigFast
// makes, behind the opt-in fast-math tier). b must be at least as long as a;
// the explicit reslice hoists the bounds checks out of the loop.
func dotContig(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// SparseDot returns the inner product of the sparse row (idx, vals) with the
// dense vector w. Indices must be sorted ascending; entries with index >= d
// contribute zero (the iteration stops at the first such index), which lets
// callers use model vectors sized from training metadata even when a stray
// point has a larger index.
func SparseDot(idx []int32, vals []float64, w Vector) float64 {
	var sum float64
	d := int32(len(w))
	for k, i := range idx {
		if i >= d {
			break
		}
		sum += vals[k] * w[i]
	}
	return sum
}

// SparseAddScaledInto adds alpha * (idx, vals) into dst in place, ignoring
// indices beyond dst's dimension. Indices must be sorted ascending.
func SparseAddScaledInto(dst Vector, alpha float64, idx []int32, vals []float64) {
	d := int32(len(dst))
	for k, i := range idx {
		if i >= d {
			break
		}
		dst[i] += alpha * vals[k]
	}
}

// SparseNorm2 returns the Euclidean norm of the values of a sparse row.
func SparseNorm2(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// indexValueSorter sorts parallel index/value slices by ascending index.
type indexValueSorter struct {
	idx  []int32
	vals []float64
}

func (s indexValueSorter) Len() int           { return len(s.idx) }
func (s indexValueSorter) Less(a, b int) bool { return s.idx[a] < s.idx[b] }
func (s indexValueSorter) Swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.vals[a], s.vals[b] = s.vals[b], s.vals[a]
}

// SortDedup sorts the parallel (idx, vals) pair in place by ascending index,
// sums the values of duplicate indices, and returns the deduplicated length
// (the first n entries of both slices hold the result). Negative indices are
// rejected. This is the one normalization rule for sparse rows: NewSparse and
// the columnar arena builder both route through it, so a row built either way
// is bitwise identical.
func SortDedup(idx []int32, vals []float64) (int, error) {
	if len(idx) != len(vals) {
		return 0, fmt.Errorf("linalg: SortDedup length mismatch %d vs %d", len(idx), len(vals))
	}
	ascending := true
	for k, i := range idx {
		if i < 0 {
			return 0, fmt.Errorf("linalg: SortDedup negative index %d", i)
		}
		if k > 0 && idx[k-1] >= i {
			ascending = false
		}
	}
	if ascending {
		// Already normalized (strictly ascending implies no duplicates) —
		// the common case for well-formed input; skips the sort.Sort
		// interface allocation on the bulk-load path.
		return len(idx), nil
	}
	sort.Sort(indexValueSorter{idx, vals})
	n := 0
	for k := range idx {
		if n > 0 && idx[n-1] == idx[k] {
			vals[n-1] += vals[k]
			continue
		}
		idx[n] = idx[k]
		vals[n] = vals[k]
		n++
	}
	return n, nil
}
