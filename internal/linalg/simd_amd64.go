//go:build amd64 && !noasm

package linalg

import "ml4all/internal/linalg/cpu"

// amd64 kernel backend: AVX2+FMA assembly in simd_amd64.s. The wrappers here
// own every slice-emptiness and dimension check the assembly assumes — the
// kernels themselves receive bare pointers plus validated lengths.

const (
	simdBackendName = BackendSIMDAVX2

	// The amd64 backend covers all five fast primitives.
	haveSparseSIMD = true
	haveExpVecSIMD = true

	// Dispatch thresholds: below these the asm call transition costs more
	// than the vector win over the Go fast loops (measured on AVX2 hardware;
	// the block-granular kernels — margins, accum, exp — amortize the call
	// over a whole block and need no threshold).
	dotSIMDMinLen    = 16
	sparseSIMDMinNNZ = 8
)

func simdAvailable() bool { return cpu.Detected.AVX2 && cpu.Detected.FMA }

//go:noescape
func dotAVX2(a, b *float64, n int) float64

//go:noescape
func denseMarginsAVX2(vals *float64, stride int, w *float64, out *float64, rows int)

//go:noescape
func denseAccumAVX2(grad *float64, d int, vals *float64, coeffs *float64, rows int)

//go:noescape
func sparseDotAVX2(idx *int32, vals *float64, n int, w *float64) float64

//go:noescape
func expVecAVX2(dst, src *float64, n int)

// dotSIMD computes <a, b>. Caller guarantees len(a) == len(b) > 0.
func dotSIMD(a, b []float64) float64 { return dotAVX2(&a[0], &b[0], len(a)) }

// denseMarginsSIMD fills out[j] = <row j, w> over a contiguous dense block.
// Caller guarantees stride == len(w) > 0, len(out) > 0, and that vals holds
// len(out) full rows.
func denseMarginsSIMD(vals []float64, stride int, w Vector, out []float64) {
	denseMarginsAVX2(&vals[0], stride, &w[0], &out[0], len(out))
}

// denseAccumSIMD applies grad[i] += Σ_j coeffs[j]·vals[j·stride+i]. Caller
// guarantees len(grad) == stride > 0, len(coeffs) > 0, and a full block of
// rows in vals.
func denseAccumSIMD(grad Vector, vals []float64, stride int, coeffs []float64) {
	denseAccumAVX2(&grad[0], stride, &vals[0], &coeffs[0], len(coeffs))
}

// sparseDotSIMD gathers w[idx[k]]·vals[k]. Caller guarantees the index tail
// is already trimmed below len(w), indices are non-negative, and
// len(idx) == len(vals) > 0.
func sparseDotSIMD(idx []int32, vals []float64, w Vector) float64 {
	return sparseDotAVX2(&idx[0], &vals[0], len(idx), &w[0])
}

// expVecSIMD fills dst[i] = ExpFast(src[i]). Caller guarantees
// len(dst) == len(src), positive and a multiple of 4.
func expVecSIMD(dst, src []float64) {
	expVecAVX2(&dst[0], &src[0], len(src))
}
