package linalg

import (
	"math/rand"
	"testing"
)

func TestReduceTreeMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 16, 33} {
		parts := make([]Vector, n)
		want := NewVector(4)
		for i := range parts {
			parts[i] = NewVector(4)
			for j := range parts[i] {
				parts[i][j] = rng.NormFloat64()
			}
			want.Add(parts[i])
		}
		got := ReduceTree(parts)
		if n == 0 {
			if got != nil {
				t.Fatalf("n=0: expected nil, got %v", got)
			}
			continue
		}
		if !got.Equal(want, 1e-12) {
			t.Fatalf("n=%d: tree reduce %v differs from sum %v", n, got, want)
		}
	}
}

// TestReduceTreeDeterministic: reducing the same partials must be bitwise
// reproducible — the guarantee the parallel executor builds on.
func TestReduceTreeDeterministic(t *testing.T) {
	build := func() []Vector {
		rng := rand.New(rand.NewSource(9))
		parts := make([]Vector, 13)
		for i := range parts {
			parts[i] = NewVector(8)
			for j := range parts[i] {
				parts[i][j] = rng.NormFloat64() * 1e3
			}
		}
		return parts
	}
	a := ReduceTree(build())
	b := ReduceTree(build())
	if !a.Equal(b, 0) {
		t.Fatal("tree reduction is not reproducible")
	}
}

func TestBufferPoolRecyclesZeroed(t *testing.T) {
	p := NewBufferPool()
	v := p.Get(5)
	if len(v) != 5 {
		t.Fatalf("Get(5) returned dim %d", len(v))
	}
	v[2] = 42
	p.Put(v)
	w := p.Get(5)
	for i, x := range w {
		if x != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %g", i, x)
		}
	}
	// Distinct dimension gets a distinct buffer.
	u := p.Get(3)
	if len(u) != 3 {
		t.Fatalf("Get(3) returned dim %d", len(u))
	}
	p.Put(nil) // must not panic
}
