package linalg

import "ml4all/internal/linalg/cpu"

// SIMD backend dispatch. The fast tier now has two interchangeable
// implementations: the portable Go loops in fast.go (always compiled, always
// the correctness oracle) and, on capable hardware, hand-written vector
// kernels (simd_amd64.s / simd_arm64.s). Selection happens once at init from
// runtime CPU detection — a stock GOAMD64=v1 binary dispatches AVX2+FMA
// assembly when the silicon has it — and the exact tier is untouched either
// way. The noasm build tag compiles the assembly out entirely;
// ML4ALL_NOSIMD=1 disables it at process start without rebuilding (both are
// folded into cpu.Detected, which simdAvailable consults).

// simdOn gates every fast-tier dispatch to the kernel backend. It is
// computed once at init and only written afterwards by SetSIMD, a test and
// bench hook.
var simdOn = simdAvailable()

// Backend names as reported by FastBackend and surfaced in /metrics, BENCH
// artifacts, and the serve-load report. The SIMD names are per-architecture
// constants (simdBackendName) such as "fast-simd-avx2" and "fast-simd-neon".
const (
	BackendExact    = "exact"
	BackendFastGo   = "fast-go"
	BackendSIMDAVX2 = "fast-simd-avx2"
	BackendSIMDNEON = "fast-simd-neon"
)

// SIMDAvailable reports whether this binary carries an assembly kernel
// backend the running CPU can execute (noasm builds and ML4ALL_NOSIMD
// report false).
func SIMDAvailable() bool { return simdAvailable() }

// SIMDEnabled reports whether fast-tier calls currently dispatch to the
// assembly backend.
func SIMDEnabled() bool { return simdOn }

// SetSIMD forces the assembly backend on or off, returning the previous
// state; enabling is a no-op when no backend is available. It exists so
// tests and benchmarks can pin a backend — it is not synchronized with
// concurrent kernel calls, so flip it only around quiescent points.
func SetSIMD(on bool) (prev bool) {
	prev = simdOn
	simdOn = on && simdAvailable()
	return prev
}

// FastBackend names the kernel family a FastMath run executes right now:
// BackendFastGo for the portable loops, or the architecture's SIMD backend
// name when dispatch is live.
func FastBackend() string {
	if simdOn {
		return simdBackendName
	}
	return BackendFastGo
}

// CPUFeatures summarizes runtime CPU detection for artifacts and metrics,
// e.g. "avx2,fma", "neon", or "none (ML4ALL_NOSIMD)".
func CPUFeatures() string { return cpu.Detected.Summary() }
