package linalg

import "fmt"

// Block kernels: the margin (dot-product) pass of the batched execution
// layer. A block is a run of rows handed to one fused kernel call, so the
// per-row costs the row-at-a-time path pays — interface dispatch, Row view
// construction, repeated bounds checks on the model vector — are paid once
// per block instead. Every kernel accumulates with a single running sum per
// row in index order (the canonical dotContig/SparseDot loops in kernels.go),
// which makes the results bitwise identical to calling Dot/SparseDot row by
// row; that equivalence is what lets the engine switch between the blocked
// and per-row paths freely (see gradients.BlockGradient and the engine's
// block property test). The tolerance-bounded fast-tier variants live in
// fast.go.

// DenseMargins computes out[j] = <vals[j*stride:(j+1)*stride], w> for every
// row j of a contiguous strided dense block. len(w) must equal stride (the
// same dimension contract Vector.Dot enforces); out must have one slot per
// row. Bitwise identical to per-row Vector.Dot.
func DenseMargins(vals []float64, stride int, w Vector, out []float64) {
	if len(w) != stride {
		panic(fmt.Sprintf("linalg: DenseMargins dimension mismatch %d vs %d", stride, len(w)))
	}
	for j := range out {
		row := vals[j*stride : (j+1)*stride : (j+1)*stride]
		out[j] = dotContig(row, w)
	}
}

// CSRMargins computes out[j] = SparseDot(row j) for a contiguous CSR block:
// offs holds len(out)+1 absolute offsets into the shared indices/values
// arena. The per-row loop is SparseDot itself, so each margin is bitwise
// identical to the row path; the win is hoisting the slice headers and
// skipping per-row view construction.
func CSRMargins(offs []int64, indices []int32, values []float64, w Vector, out []float64) {
	for j := range out {
		lo, hi := offs[j], offs[j+1]
		out[j] = SparseDot(indices[lo:hi], values[lo:hi], w)
	}
}
