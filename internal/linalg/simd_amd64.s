//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA kernels of the SIMD backend beneath the fast-math tier. Every
// function here is the assembly twin of a pure-Go fast kernel in fast.go;
// dispatch (runtime CPU detection, the ML4ALL_NOSIMD override, per-call
// size thresholds) lives in simd_amd64.go, and the Go loops remain both the
// portable fallback and the correctness oracle the equivalence tests compare
// against. Calling convention is ABI0 with bare pointers + lengths — the Go
// wrappers own every bounds/emptiness check, the assembly assumes validated
// arguments. All kernels are NOSPLIT leaves, end in VZEROUPPER, and clobber
// no callee-saved state.

// func dotAVX2(a, b *float64, n int) float64
//
// 16-wide: four 4-lane FMA accumulators (the asm analogue of the Go tier's
// FastAccumulators=4 chains, each now carrying 4 lanes). Tail: one 4-wide
// block, then scalar FMAs into the reduced sum.
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ CX, AX
	SHRQ $4, AX
	JZ   dot_tail4
dot_loop16:
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ AX
	JNZ  dot_loop16
dot_tail4:
	MOVQ CX, AX
	ANDQ $15, AX
	MOVQ AX, DX
	SHRQ $2, DX
	JZ   dot_reduce
dot_loop4:
	VMOVUPD (SI), Y4
	VFMADD231PD (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  dot_loop4
dot_reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	ANDQ $3, AX
	JZ   dot_done
dot_loop1:
	VMOVSD (SI), X2
	VFMADD231SD (DI), X2, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ AX
	JNZ  dot_loop1
dot_done:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func denseMarginsAVX2(vals *float64, stride int, w *float64, out *float64, rows int)
//
// out[j] = <vals[j*stride:(j+1)*stride], w> for j in [0, rows): the dotAVX2
// body with the row loop folded into the same call, so one asm transition
// covers a whole 512-row block.
TEXT ·denseMarginsAVX2(SB), NOSPLIT, $0-40
	MOVQ vals+0(FP), SI
	MOVQ stride+8(FP), R8
	MOVQ w+16(FP), DI
	MOVQ out+24(FP), R9
	MOVQ rows+32(FP), R10
	MOVQ R8, R11
	SHLQ $3, R11             // stride in bytes
	TESTQ R10, R10
	JZ   dm_done
dm_row:
	MOVQ SI, R12             // a = row
	MOVQ DI, R13             // b = w
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ R8, AX
	SHRQ $4, AX
	JZ   dm_tail4
dm_loop16:
	VMOVUPD (R12), Y4
	VMOVUPD 32(R12), Y5
	VMOVUPD 64(R12), Y6
	VMOVUPD 96(R12), Y7
	VFMADD231PD (R13), Y4, Y0
	VFMADD231PD 32(R13), Y5, Y1
	VFMADD231PD 64(R13), Y6, Y2
	VFMADD231PD 96(R13), Y7, Y3
	ADDQ $128, R12
	ADDQ $128, R13
	DECQ AX
	JNZ  dm_loop16
dm_tail4:
	MOVQ R8, AX
	ANDQ $15, AX
	MOVQ AX, DX
	SHRQ $2, DX
	JZ   dm_reduce
dm_loop4:
	VMOVUPD (R12), Y4
	VFMADD231PD (R13), Y4, Y0
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ DX
	JNZ  dm_loop4
dm_reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	ANDQ $3, AX
	JZ   dm_store
dm_loop1:
	VMOVSD (R12), X2
	VFMADD231SD (R13), X2, X0
	ADDQ $8, R12
	ADDQ $8, R13
	DECQ AX
	JNZ  dm_loop1
dm_store:
	VMOVSD X0, (R9)
	ADDQ $8, R9
	ADDQ R11, SI             // next row
	DECQ R10
	JNZ  dm_row
dm_done:
	VZEROUPPER
	RET

// func denseAccumAVX2(grad *float64, d int, vals *float64, coeffs *float64, rows int)
//
// grad[i] += sum_j coeffs[j]*vals[j*d+i], four rows fused per gradient walk
// (each grad element loaded and stored once per four rows), remaining rows
// one at a time. The coefficient broadcasts hoist out of the element loop.
TEXT ·denseAccumAVX2(SB), NOSPLIT, $0-40
	MOVQ grad+0(FP), DI
	MOVQ d+8(FP), CX
	MOVQ vals+16(FP), SI
	MOVQ coeffs+24(FP), BX
	MOVQ rows+32(FP), R10
	MOVQ CX, R11
	SHLQ $3, R11             // d in bytes
da_quad:
	CMPQ R10, $4
	JLT  da_rows
	VBROADCASTSD (BX), Y12
	VBROADCASTSD 8(BX), Y13
	VBROADCASTSD 16(BX), Y14
	VBROADCASTSD 24(BX), Y15
	MOVQ SI, R12
	LEAQ (SI)(R11*1), R13
	LEAQ (R13)(R11*1), R14
	LEAQ (R14)(R11*1), R15
	MOVQ DI, DX              // moving grad pointer
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   da_quad_tail
da_quad4:
	VMOVUPD (DX), Y0
	VMOVUPD (R12), Y1
	VFMADD231PD Y12, Y1, Y0
	VMOVUPD (R13), Y2
	VFMADD231PD Y13, Y2, Y0
	VMOVUPD (R14), Y3
	VFMADD231PD Y14, Y3, Y0
	VMOVUPD (R15), Y4
	VFMADD231PD Y15, Y4, Y0
	VMOVUPD Y0, (DX)
	ADDQ $32, DX
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $32, R14
	ADDQ $32, R15
	DECQ AX
	JNZ  da_quad4
da_quad_tail:
	MOVQ CX, AX
	ANDQ $3, AX
	JZ   da_quad_next
da_quad1:
	VMOVSD (DX), X0
	VMOVSD (R12), X1
	VFMADD231SD X12, X1, X0
	VMOVSD (R13), X2
	VFMADD231SD X13, X2, X0
	VMOVSD (R14), X3
	VFMADD231SD X14, X3, X0
	VMOVSD (R15), X4
	VFMADD231SD X15, X4, X0
	VMOVSD X0, (DX)
	ADDQ $8, DX
	ADDQ $8, R12
	ADDQ $8, R13
	ADDQ $8, R14
	ADDQ $8, R15
	DECQ AX
	JNZ  da_quad1
da_quad_next:
	LEAQ (SI)(R11*4), SI     // vals += 4 rows
	ADDQ $32, BX
	SUBQ $4, R10
	JMP  da_quad
da_rows:
	TESTQ R10, R10
	JZ   da_done
	VBROADCASTSD (BX), Y12
	MOVQ DI, DX
	MOVQ SI, R12
	MOVQ CX, AX
	SHRQ $2, AX
	JZ   da_row_tail
da_row4:
	VMOVUPD (DX), Y0
	VMOVUPD (R12), Y1
	VFMADD231PD Y12, Y1, Y0
	VMOVUPD Y0, (DX)
	ADDQ $32, DX
	ADDQ $32, R12
	DECQ AX
	JNZ  da_row4
da_row_tail:
	MOVQ CX, AX
	ANDQ $3, AX
	JZ   da_row_next
da_row1:
	VMOVSD (DX), X0
	VMOVSD (R12), X1
	VFMADD231SD X12, X1, X0
	VMOVSD X0, (DX)
	ADDQ $8, DX
	ADDQ $8, R12
	DECQ AX
	JNZ  da_row1
da_row_next:
	ADDQ R11, SI
	ADDQ $8, BX
	DECQ R10
	JNZ  da_rows
da_done:
	VZEROUPPER
	RET

// func sparseDotAVX2(idx *int32, vals *float64, n int, w *float64) float64
//
// Gathered sparse dot: two 4-lane FMA chains fed by VGATHERDPD (dword
// indices selecting qword elements of w). The caller has already trimmed the
// sorted index tail at len(w) and verified non-negativity, so every gathered
// lane is in bounds. The gather mask is all-ones and must be rebuilt per
// gather — the instruction consumes it.
TEXT ·sparseDotAVX2(SB), NOSPLIT, $0-40
	MOVQ idx+0(FP), SI
	MOVQ vals+8(FP), DX
	MOVQ n+16(FP), CX
	MOVQ w+24(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VPCMPEQD Y15, Y15, Y15   // all-ones mask template
	MOVQ CX, AX
	SHRQ $3, AX
	JZ   sp_tail4
sp_loop8:
	VMOVDQU (SI), X2
	VMOVDQU 16(SI), X3
	VMOVDQA Y15, Y4
	VGATHERDPD Y4, (DI)(X2*8), Y5
	VMOVDQA Y15, Y6
	VGATHERDPD Y6, (DI)(X3*8), Y7
	VFMADD231PD (DX), Y5, Y0
	VFMADD231PD 32(DX), Y7, Y1
	ADDQ $32, SI
	ADDQ $64, DX
	DECQ AX
	JNZ  sp_loop8
sp_tail4:
	MOVQ CX, AX
	ANDQ $7, AX
	CMPQ AX, $4
	JLT  sp_reduce
	VMOVDQU (SI), X2
	VMOVDQA Y15, Y4
	VGATHERDPD Y4, (DI)(X2*8), Y5
	VFMADD231PD (DX), Y5, Y0
	ADDQ $16, SI
	ADDQ $32, DX
	SUBQ $4, AX
sp_reduce:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	TESTQ AX, AX
	JZ   sp_done
sp_loop1:
	MOVLQSX (SI), R9
	VMOVSD (DI)(R9*8), X2
	VFMADD231SD (DX), X2, X0
	ADDQ $4, SI
	ADDQ $8, DX
	DECQ AX
	JNZ  sp_loop1
sp_done:
	VMOVSD X0, ret+32(FP)
	VZEROUPPER
	RET

// Constants of expVecAVX2. Scalars (broadcast at entry):
DATA expconst<>+0(SB)/8, $0x3FF71547652B82FE   // 1/ln2
DATA expconst<>+8(SB)/8, $0x4338000000000000   // shifter 1.5*2^52
DATA expconst<>+16(SB)/8, $0x3FE62E42FEE00000  // ln2hi
DATA expconst<>+24(SB)/8, $0x3DEA39EF35793C76  // ln2lo
DATA expconst<>+32(SB)/8, $0x40862E42FEFA39EF  // overflow threshold
DATA expconst<>+40(SB)/8, $0xC086232BDD7ABCD1  // underflow threshold
DATA expconst<>+48(SB)/8, $0x00000000000003FF  // exponent bias 1023
GLOBL expconst<>(SB), RODATA, $56

// 256-bit replicated constants (memory operands of FMA/blend):
DATA exppoly<>+0(SB)/8, $0x3F2A01A01A01A01A   // 1/5040
DATA exppoly<>+8(SB)/8, $0x3F2A01A01A01A01A
DATA exppoly<>+16(SB)/8, $0x3F2A01A01A01A01A
DATA exppoly<>+24(SB)/8, $0x3F2A01A01A01A01A
DATA exppoly<>+32(SB)/8, $0x3F56C16C16C16C17  // 1/720
DATA exppoly<>+40(SB)/8, $0x3F56C16C16C16C17
DATA exppoly<>+48(SB)/8, $0x3F56C16C16C16C17
DATA exppoly<>+56(SB)/8, $0x3F56C16C16C16C17
DATA exppoly<>+64(SB)/8, $0x3F81111111111111  // 1/120
DATA exppoly<>+72(SB)/8, $0x3F81111111111111
DATA exppoly<>+80(SB)/8, $0x3F81111111111111
DATA exppoly<>+88(SB)/8, $0x3F81111111111111
DATA exppoly<>+96(SB)/8, $0x3FA5555555555555  // 1/24
DATA exppoly<>+104(SB)/8, $0x3FA5555555555555
DATA exppoly<>+112(SB)/8, $0x3FA5555555555555
DATA exppoly<>+120(SB)/8, $0x3FA5555555555555
DATA exppoly<>+128(SB)/8, $0x3FC5555555555555 // 1/6
DATA exppoly<>+136(SB)/8, $0x3FC5555555555555
DATA exppoly<>+144(SB)/8, $0x3FC5555555555555
DATA exppoly<>+152(SB)/8, $0x3FC5555555555555
DATA exppoly<>+160(SB)/8, $0x3FE0000000000000 // 1/2
DATA exppoly<>+168(SB)/8, $0x3FE0000000000000
DATA exppoly<>+176(SB)/8, $0x3FE0000000000000
DATA exppoly<>+184(SB)/8, $0x3FE0000000000000
DATA exppoly<>+192(SB)/8, $0x3FF0000000000000 // 1
DATA exppoly<>+200(SB)/8, $0x3FF0000000000000
DATA exppoly<>+208(SB)/8, $0x3FF0000000000000
DATA exppoly<>+216(SB)/8, $0x3FF0000000000000
DATA exppoly<>+224(SB)/8, $0x7FF0000000000000 // +Inf
DATA exppoly<>+232(SB)/8, $0x7FF0000000000000
DATA exppoly<>+240(SB)/8, $0x7FF0000000000000
DATA exppoly<>+248(SB)/8, $0x7FF0000000000000
GLOBL exppoly<>(SB), RODATA, $256

// func expVecAVX2(dst, src *float64, n int)
//
// Four lanes of ExpFast per iteration: Cody–Waite range reduction with the
// shifter trick (k both as rounded double and, via the mantissa bits of
// t = x/ln2 + 1.5*2^52, as int64 without a float->int conversion), the same
// degree-7 polynomial as the scalar (FMA-contracted), and a branch-free
// 2^k: k clamps to 1023 with the single overflowing step (k=1024, reachable
// just below the overflow threshold) folded into a second normal scale
// factor 2^(k-1023). Out-of-range and NaN lanes compute garbage harmlessly
// and are blended to the scalar tier's contractual results (+Inf / 0 / x)
// at the end. n must be a positive multiple of 4 (wrapper-enforced).
TEXT ·expVecAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DX
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $2, CX
	VBROADCASTSD expconst<>+0(SB), Y8    // 1/ln2
	VBROADCASTSD expconst<>+8(SB), Y9    // shifter
	VBROADCASTSD expconst<>+16(SB), Y10  // ln2hi
	VBROADCASTSD expconst<>+24(SB), Y11  // ln2lo
	VBROADCASTSD expconst<>+32(SB), Y12  // overflow
	VBROADCASTSD expconst<>+40(SB), Y13  // underflow
	VBROADCASTSD expconst<>+48(SB), Y15  // bias 1023 (int64 lanes)
	VMOVAPD Y9, Y14                      // shifter bits (int64 lanes)
exp_loop:
	VMOVUPD (SI), Y0                     // x
	VMOVAPD Y9, Y1
	VFMADD231PD Y8, Y0, Y1               // t = shifter + x/ln2
	VSUBPD Y9, Y1, Y2                    // k = t - shifter (round-to-nearest)
	VMOVAPD Y0, Y3
	VFNMADD231PD Y10, Y2, Y3             // r = x - k*ln2hi
	VFNMADD231PD Y11, Y2, Y3             // r -= k*ln2lo
	VMOVUPD exppoly<>+0(SB), Y4          // p = 1/5040
	VFMADD213PD exppoly<>+32(SB), Y3, Y4 // p = p*r + 1/720
	VFMADD213PD exppoly<>+64(SB), Y3, Y4 // p = p*r + 1/120
	VFMADD213PD exppoly<>+96(SB), Y3, Y4 // p = p*r + 1/24
	VFMADD213PD exppoly<>+128(SB), Y3, Y4 // p = p*r + 1/6
	VFMADD213PD exppoly<>+160(SB), Y3, Y4 // p = p*r + 1/2
	VFMADD213PD exppoly<>+192(SB), Y3, Y4 // p = p*r + 1
	VFMADD213PD exppoly<>+192(SB), Y3, Y4 // p = p*r + 1 = e^r
	VPSUBQ Y14, Y1, Y5                   // ki = int64(k) from t's mantissa bits
	VPCMPGTQ Y15, Y5, Y6                 // lanes with ki > 1023
	VPSRLQ $63, Y6, Y6                   // excess = 0 or 1
	VPSUBQ Y6, Y5, Y5                    // ki -= excess
	VPADDQ Y15, Y5, Y5
	VPSLLQ $52, Y5, Y5                   // scale1 = 2^ki as bits
	VPADDQ Y15, Y6, Y6
	VPSLLQ $52, Y6, Y6                   // scale2 = 2^excess as bits
	VMULPD Y5, Y4, Y4                    // p *= scale1
	VMULPD Y6, Y4, Y4                    // p *= scale2
	VCMPPD $0x1E, Y12, Y0, Y7            // x > overflow (GT_OQ)
	VBLENDVPD Y7, exppoly<>+224(SB), Y4, Y4 // -> +Inf
	VCMPPD $0x11, Y13, Y0, Y7            // x < underflow (LT_OQ)
	VANDNPD Y4, Y7, Y4                   // -> 0
	VCMPPD $0x3, Y0, Y0, Y7              // unordered: NaN lanes
	VBLENDVPD Y7, Y0, Y4, Y4             // -> x (NaN passthrough)
	VMOVUPD Y4, (DX)
	ADDQ $32, SI
	ADDQ $32, DX
	DECQ CX
	JNZ  exp_loop
	VZEROUPPER
	RET
