//go:build noasm || !(amd64 || arm64)

package linalg

// No assembly backend in this build: simdAvailable is constant-false, so
// simdOn can never be set and none of the kernel hooks below is reachable.
// They exist only to satisfy the portable dispatch code, and panic loudly if
// a future edit breaks the simdOn gate.

const (
	simdBackendName = BackendFastGo

	haveSparseSIMD = false
	haveExpVecSIMD = false

	dotSIMDMinLen    = 1 << 30
	sparseSIMDMinNNZ = 1 << 30
)

func simdAvailable() bool { return false }

func dotSIMD(a, b []float64) float64 { panic("linalg: SIMD kernel called in noasm build") }

func denseMarginsSIMD(vals []float64, stride int, w Vector, out []float64) {
	panic("linalg: SIMD kernel called in noasm build")
}

func denseAccumSIMD(grad Vector, vals []float64, stride int, coeffs []float64) {
	panic("linalg: SIMD kernel called in noasm build")
}

func sparseDotSIMD(idx []int32, vals []float64, w Vector) float64 {
	panic("linalg: SIMD kernel called in noasm build")
}

func expVecSIMD(dst, src []float64) { panic("linalg: SIMD kernel called in noasm build") }
