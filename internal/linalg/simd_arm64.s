//go:build arm64 && !noasm

#include "textflag.h"

// NEON (AdvSIMD) kernels of the arm64 backend. Deliberately minimal: every
// vector operation used here is commutative in its source operands (FMLA
// accumulating into the fixed destination, FADD, FMUL), so the kernels are
// robust against Vn/Vm operand-order confusion and straightforward to
// desk-check. Block structure lives in the Go wrappers (simd_arm64.go).

// func dotNEON(a, b *float64, n int) float64
//
// Two 2-lane FMLA accumulators (4 doubles per iteration), scalar tail, then
// a lane reduction. Mirrors the Go fast tier's independent-chain scheme.
TEXT ·dotNEON(SB), NOSPLIT, $0-32
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $2, R2, R3
	CBZ  R3, dot_tail
dot_loop4:
	VLD1.P 32(R0), [V2.D2, V3.D2]
	VLD1.P 32(R1), [V4.D2, V5.D2]
	VFMLA V4.D2, V2.D2, V0.D2
	VFMLA V5.D2, V3.D2, V1.D2
	SUB  $1, R3, R3
	CBNZ R3, dot_loop4
dot_tail:
	// Reduce the four accumulator lanes scalar-wise (F0/F1 alias lane 0 of
	// V0/V1; the odd lanes come over through V2).
	VMOV  V0.D[1], V2.D[0]
	FADDD F2, F0, F0
	FADDD F1, F0, F0
	VMOV  V1.D[1], V2.D[0]
	FADDD F2, F0, F0
	AND  $3, R2, R3
	CBZ  R3, dot_done
dot_loop1:
	FMOVD.P 8(R0), F2
	FMOVD.P 8(R1), F3
	FMULD F3, F2, F2
	FADDD F2, F0, F0
	SUB  $1, R3, R3
	CBNZ R3, dot_loop1
dot_done:
	FMOVD F0, ret+24(FP)
	RET

// func axpyNEON(dst, x *float64, n int, c float64)
//
// dst[i] += c * x[i], 4 doubles per iteration with the coefficient broadcast
// once, scalar tail.
TEXT ·axpyNEON(SB), NOSPLIT, $0-32
	MOVD  dst+0(FP), R0
	MOVD  x+8(FP), R1
	MOVD  n+16(FP), R2
	FMOVD c+24(FP), F6
	VDUP  V6.D[0], V6.D2
	LSR   $2, R2, R3
	CBZ   R3, axpy_tail
axpy_loop4:
	VLD1.P 32(R1), [V2.D2, V3.D2]
	VLD1  (R0), [V0.D2, V1.D2]
	VFMLA V6.D2, V2.D2, V0.D2
	VFMLA V6.D2, V3.D2, V1.D2
	VST1.P [V0.D2, V1.D2], 32(R0)
	SUB   $1, R3, R3
	CBNZ  R3, axpy_loop4
axpy_tail:
	AND  $3, R2, R3
	CBZ  R3, axpy_done
axpy_loop1:
	FMOVD.P 8(R1), F2
	FMOVD (R0), F0
	FMULD F6, F2, F2
	FADDD F2, F0, F0
	FMOVD.P F0, 8(R0)
	SUB  $1, R3, R3
	CBNZ R3, axpy_loop1
axpy_done:
	RET
