package tuner

import (
	"testing"

	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/step"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func fixture(t *testing.T) (*storage.Store, gd.Plan) {
	t.Helper()
	spec, err := synth.ByName("covtype", 0)
	if err != nil {
		t.Fatal(err)
	}
	spec.N = 3000
	ds := synth.MustGenerate(spec)
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 1000, Lambda: 0.01}
	return st, gd.NewBGD(p)
}

func TestTuneRanksDivergentLast(t *testing.T) {
	st, plan := fixture(t)
	cands := []Candidate{
		{Step: step.InvSqrt{Beta: 1}},
		{Step: step.Constant{Value: 1e6}}, // guaranteed to explode
	}
	trials, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, cands, Config{SampleSize: 400, Budget: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("trials = %d", len(trials))
	}
	if trials[0].Diverged {
		t.Fatal("divergent candidate ranked first")
	}
	last := trials[len(trials)-1]
	if !last.Diverged {
		t.Fatal("exploding step did not diverge (suspicious)")
	}
}

func TestTunePrefersFasterConvergence(t *testing.T) {
	st, plan := fixture(t)
	// A tiny beta crawls; a moderate one converges to 0.01 quickly.
	cands := []Candidate{
		{Step: step.InvSqrt{Beta: 0.001}},
		{Step: step.InvSqrt{Beta: 1}},
	}
	trials, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, cands, Config{SampleSize: 400, Budget: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	winner := trials[0].Candidate.Step.Name()
	if winner != (step.InvSqrt{Beta: 1}).Name() {
		t.Fatalf("winner = %s, want beta=1", winner)
	}
	if trials[0].FinalObjective >= trials[1].FinalObjective {
		t.Fatalf("ranking inconsistent: objectives %g vs %g",
			trials[0].FinalObjective, trials[1].FinalObjective)
	}
}

func TestTuneDefaultGrid(t *testing.T) {
	st, plan := fixture(t)
	trials, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, nil, Config{SampleSize: 300, Budget: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != len(DefaultGrid()) {
		t.Fatalf("trials = %d, want %d", len(trials), len(DefaultGrid()))
	}
	for _, tr := range trials {
		if tr.SpecTime <= 0 {
			t.Fatalf("trial %s consumed no time", tr.Candidate.Step.Name())
		}
	}
}

func TestBestReturnsUsableStep(t *testing.T) {
	st, plan := fixture(t)
	s, trials, err := Best(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, Config{SampleSize: 300, Budget: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || len(trials) == 0 {
		t.Fatal("no winner")
	}
	if s.Alpha(10) <= 0 {
		t.Fatalf("winner yields non-positive step: %g", s.Alpha(10))
	}
}

func TestTuneRejectsNilStep(t *testing.T) {
	st, plan := fixture(t)
	if _, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{}, []Candidate{{}}, Config{}); err == nil {
		t.Fatal("nil step accepted")
	}
}
