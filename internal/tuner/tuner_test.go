package tuner

import (
	"testing"

	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/step"
	"ml4all/internal/storage"
	"ml4all/internal/synth"
)

func fixture(t *testing.T) (*storage.Store, gd.Plan) {
	t.Helper()
	spec, err := synth.ByName("covtype", 0)
	if err != nil {
		t.Fatal(err)
	}
	spec.N = 3000
	ds := synth.MustGenerate(spec)
	st, err := storage.Build(ds, storage.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	p := gd.Params{Task: ds.Task, Format: ds.Format, Tolerance: 0.01, MaxIter: 1000, Lambda: 0.01}
	return st, gd.NewBGD(p)
}

// TestTuneParallelTrialsBitIdentical pins the trial-pool guarantee: for any
// TrialWorkers value the trials and their ranking are bit-identical to the
// serial sweep.
func TestTuneParallelTrialsBitIdentical(t *testing.T) {
	st, plan := fixture(t)
	cfg := Config{SampleSize: 400, Budget: 3, Seed: 2}
	g, reg := gradients.Logistic{}, gradients.L2{Lambda: 0.01}

	cfg.TrialWorkers = 1
	serial, err := Tune(plan, st, g, reg, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(DefaultGrid()) {
		t.Fatalf("serial trials = %d", len(serial))
	}
	for _, workers := range []int{2, 8} {
		cfg.TrialWorkers = workers
		par, err := Tune(plan, st, g, reg, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d trials != %d", workers, len(par), len(serial))
		}
		for i := range serial {
			a, b := serial[i], par[i]
			if a.Candidate.Step.Name() != b.Candidate.Step.Name() {
				t.Fatalf("workers=%d: rank %d is %s, serial had %s", workers, i,
					b.Candidate.Step.Name(), a.Candidate.Step.Name())
			}
			if a.FinalObjective != b.FinalObjective || a.BestError != b.BestError ||
				a.IterationsTo != b.IterationsTo || a.EstimatedA != b.EstimatedA ||
				a.Diverged != b.Diverged || a.SpecTime != b.SpecTime {
				t.Fatalf("workers=%d: trial %d differs:\n got %+v\nwant %+v", workers, i, b, a)
			}
		}
	}
}

func TestTuneRanksDivergentLast(t *testing.T) {
	st, plan := fixture(t)
	cands := []Candidate{
		{Step: step.InvSqrt{Beta: 1}},
		{Step: step.Constant{Value: 1e6}}, // guaranteed to explode
	}
	trials, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, cands, Config{SampleSize: 400, Budget: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("trials = %d", len(trials))
	}
	if trials[0].Diverged {
		t.Fatal("divergent candidate ranked first")
	}
	last := trials[len(trials)-1]
	if !last.Diverged {
		t.Fatal("exploding step did not diverge (suspicious)")
	}
}

func TestTunePrefersFasterConvergence(t *testing.T) {
	st, plan := fixture(t)
	// A tiny beta crawls; a moderate one converges to 0.01 quickly.
	cands := []Candidate{
		{Step: step.InvSqrt{Beta: 0.001}},
		{Step: step.InvSqrt{Beta: 1}},
	}
	trials, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, cands, Config{SampleSize: 400, Budget: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	winner := trials[0].Candidate.Step.Name()
	if winner != (step.InvSqrt{Beta: 1}).Name() {
		t.Fatalf("winner = %s, want beta=1", winner)
	}
	if trials[0].FinalObjective >= trials[1].FinalObjective {
		t.Fatalf("ranking inconsistent: objectives %g vs %g",
			trials[0].FinalObjective, trials[1].FinalObjective)
	}
}

func TestTuneDefaultGrid(t *testing.T) {
	st, plan := fixture(t)
	trials, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, nil, Config{SampleSize: 300, Budget: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != len(DefaultGrid()) {
		t.Fatalf("trials = %d, want %d", len(trials), len(DefaultGrid()))
	}
	for _, tr := range trials {
		if tr.SpecTime <= 0 {
			t.Fatalf("trial %s consumed no time", tr.Candidate.Step.Name())
		}
	}
}

func TestBestReturnsUsableStep(t *testing.T) {
	st, plan := fixture(t)
	s, trials, err := Best(plan, st, gradients.Logistic{}, gradients.L2{Lambda: 0.01}, Config{SampleSize: 300, Budget: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || len(trials) == 0 {
		t.Fatal("no winner")
	}
	if s.Alpha(10) <= 0 {
		t.Fatalf("winner yields non-positive step: %g", s.Alpha(10))
	}
}

func TestTuneRejectsNilStep(t *testing.T) {
	st, plan := fixture(t)
	if _, err := Tune(plan, st, gradients.Logistic{}, gradients.L2{}, []Candidate{{}}, Config{}); err == nil {
		t.Fatal("nil step accepted")
	}
}
