// Package tuner implements the extension the paper's conclusion sketches:
// reusing the speculative machinery of the GD optimizer "to assist in other
// design choices in ML systems, such as hyperparameter tuning". The tuner
// speculates a plan on a small sample once per candidate step-size
// configuration, scores each candidate by the training objective it reaches
// within the time budget, and returns the candidates ranked — the same
// cold-start-free treatment Section 5 gives the iteration count. (Scoring by
// convergence delta would be wrong: a microscopic step produces microscopic
// deltas while learning nothing, so the objective is the criterion.)
package tuner

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ml4all/internal/cluster"
	"ml4all/internal/engine"
	"ml4all/internal/estimator"
	"ml4all/internal/gd"
	"ml4all/internal/gradients"
	"ml4all/internal/step"
	"ml4all/internal/storage"
)

// Candidate is one hyperparameter configuration under trial.
type Candidate struct {
	Step step.Size
}

// Trial is the outcome of speculating one candidate.
type Trial struct {
	Candidate Candidate
	// FinalObjective is the regularized training objective over the sample
	// at the end of the trial — the ranking criterion. Convergence deltas
	// alone cannot rank step sizes: a microscopic step yields microscopic
	// deltas ("converged") while learning nothing.
	FinalObjective float64
	// BestError is the smallest convergence delta the speculation reached.
	BestError float64
	// IterationsTo reports the iterations the run needed to reach
	// Config.ScoreTolerance, or MaxInt32 if it never did.
	IterationsTo int
	// EstimatedA is the fitted a of T(ε) = a/ε over the observed sequence
	// (infinite when nothing improved).
	EstimatedA float64
	// Diverged reports a run whose weights left the finite range.
	Diverged bool
	// SpecTime is the simulated time the trial consumed.
	SpecTime cluster.Seconds
}

// Config tunes the tuner.
type Config struct {
	// SampleSize per trial; 0 means 1000 (the estimator's default).
	SampleSize int
	// Budget per trial in simulated seconds; 0 means 10.
	Budget cluster.Seconds
	// ScoreTolerance is the tolerance candidates race to; 0 means the
	// plan's own tolerance.
	ScoreTolerance float64
	Seed           int64
	// Workers sizes the engine's worker pool for trial runs (0 =
	// GOMAXPROCS, 1 = serial); trial outcomes are worker-count invariant.
	Workers int
	// TrialWorkers bounds how many candidate trials run concurrently.
	// Every trial owns an independent simulator and a private result slot,
	// and the final ranking sorts by (index-stable) scores, so results and
	// order are bit-identical to a serial sweep for any value. 0 means
	// GOMAXPROCS; 1 forces the serial sweep.
	TrialWorkers int
}

func (c Config) withDefaults(plan gd.Plan) Config {
	if c.SampleSize <= 0 {
		c.SampleSize = 1000
	}
	if c.Budget <= 0 {
		c.Budget = 10
	}
	if c.ScoreTolerance <= 0 {
		c.ScoreTolerance = plan.Tolerance
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DefaultGrid returns the standard step-size candidates: β/√i for β in a
// log grid, plus 1/i — the schedules the paper's Appendix E exercises.
func DefaultGrid() []Candidate {
	betas := []float64{0.01, 0.1, 0.5, 1, 2, 10}
	out := make([]Candidate, 0, len(betas)+1)
	for _, b := range betas {
		out = append(out, Candidate{Step: step.InvSqrt{Beta: b}})
	}
	out = append(out, Candidate{Step: step.Inv{Beta: 1}})
	return out
}

// Tune speculates every candidate on a shared sample and returns the trials
// ranked by the training objective each reached within the budget (scored
// with the given gradient and regularizer); diverged candidates rank last.
// The winning step size is Trials[0].Candidate.Step.
func Tune(plan gd.Plan, store *storage.Store, g gradients.Gradient, reg gradients.L2, cands []Candidate, cfg Config) ([]Trial, error) {
	if g == nil {
		return nil, fmt.Errorf("tuner: scoring gradient required")
	}
	if len(cands) == 0 {
		cands = DefaultGrid()
	}
	cfg = cfg.withDefaults(plan)

	sample := store.Dataset.Sample(cfg.SampleSize, cfg.Seed)
	layout := store.Layout
	layout.PartitionBytes = 1 << 62
	sampleStore, err := storage.Build(sample, layout)
	if err != nil {
		return nil, err
	}

	for _, cand := range cands {
		if cand.Step == nil {
			return nil, fmt.Errorf("tuner: candidate without a step size")
		}
	}

	// Trials are independent — each owns a fresh simulator over the shared
	// read-only sample store — so they fan out over a worker pool. Each
	// worker writes only its own index's slot and the ranking below is a
	// stable sort over those slots, keeping results and order bit-identical
	// to the serial sweep for any TrialWorkers value.
	trials := make([]Trial, len(cands))
	errs := make([]error, len(cands))
	runTrial := func(i int) {
		cand := cands[i]
		specPlan := plan
		specPlan.Step = cand.Step
		specPlan.Tolerance = cfg.ScoreTolerance
		specPlan.MaxIter = 1 << 20
		specPlan.Mode = gd.CentralizedMode

		simCfg := cluster.SpeculationLocal()
		simCfg.Seed = cfg.Seed
		sim := cluster.New(simCfg)
		res, err := engine.Run(sim, sampleStore, &specPlan, engine.Options{
			TimeBudget: cfg.Budget,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
		})
		if err != nil {
			errs[i] = fmt.Errorf("tuner: speculating %s: %w", cand.Step.Name(), err)
			return
		}

		tr := Trial{
			Candidate:      cand,
			FinalObjective: math.Inf(1),
			BestError:      math.Inf(1),
			Diverged:       res.Diverged,
			SpecTime:       res.Time,
		}
		if !res.Diverged {
			tr.FinalObjective = gradients.Objective(g, reg, res.Weights, sample.Rows())
		}
		tr.IterationsTo = math.MaxInt32
		for i, d := range res.Deltas {
			if d < tr.BestError && d > 0 {
				tr.BestError = d
			}
			if d < cfg.ScoreTolerance && tr.IterationsTo == math.MaxInt32 {
				tr.IterationsTo = i + 1
			}
		}
		seq := estimator.MonotoneSequence(res.Deltas)
		if a, err := estimator.FitInverse(seq); err == nil {
			tr.EstimatedA = a
		} else {
			tr.EstimatedA = math.Inf(1)
		}
		trials[i] = tr
	}

	workers := cfg.TrialWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i := range cands {
			runTrial(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cands) {
						return
					}
					runTrial(i)
				}
			}()
		}
		wg.Wait()
	}
	// Surface the lowest-index failure, like the serial sweep would have.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sort.SliceStable(trials, func(i, j int) bool {
		a, b := trials[i], trials[j]
		if a.Diverged != b.Diverged {
			return !a.Diverged
		}
		if a.FinalObjective != b.FinalObjective {
			return a.FinalObjective < b.FinalObjective
		}
		return a.IterationsTo < b.IterationsTo
	})
	return trials, nil
}

// Best is a convenience wrapper returning the winning step size from the
// default grid.
func Best(plan gd.Plan, store *storage.Store, g gradients.Gradient, reg gradients.L2, cfg Config) (step.Size, []Trial, error) {
	trials, err := Tune(plan, store, g, reg, nil, cfg)
	if err != nil {
		return nil, nil, err
	}
	if len(trials) == 0 || trials[0].Diverged {
		return nil, trials, fmt.Errorf("tuner: every candidate diverged")
	}
	return trials[0].Candidate.Step, trials, nil
}
