// Package serve is the online serving subsystem: a long-running service in
// front of the cost-based optimizer, composing the resumable trainer (PR 2),
// the columnar arena (PR 3) and the block kernels (PR 4) into three
// cooperating pieces —
//
//   - a job manager (manager.go) that accepts declarative training jobs over
//     HTTP/JSON and runs them on a bounded pool of step-driven trainers:
//     cancellable between iterations, pausable, checkpointed to disk on an
//     interval, and resumable after a process restart, with the cost-based
//     optimizer choosing each job's physical plan;
//
//   - a model registry (registry.go) that versions trained models as
//     name@version, persisted through SaveModel/LoadModel with atomic
//     publish, so the serving fleet never observes a half-written model;
//
//   - a prediction service (predict.go, coalesce.go, admission.go) that
//     parses request rows into pooled columnar arenas and scores them
//     through the batched block margin kernels — the same kernels training
//     uses, which is what makes served predictions bit-identical to offline
//     Evaluate on the same rows. Under concurrency, calls against the same
//     model coalesce into shared kernel passes; per-model admission control
//     sheds overload with 429 + Retry-After instead of queueing unboundedly.
//
// Per-endpoint latency histograms (p50/p95/p99) and throughput counters are
// exposed at /metrics (Prometheus text format) and a liveness summary at
// /healthz. See DESIGN.md §9 and §11 for the architecture and README.md for
// a curl quickstart.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"ml4all"
	"ml4all/internal/fault"
)

// Config sizes a Server.
type Config struct {
	// Dir is the state root: the model registry lives under Dir/models,
	// job manifests and checkpoints under Dir/jobs.
	Dir string
	// Pool is the number of training jobs running concurrently. 0 means 2.
	Pool int
	// QueueDepth bounds the submission queue. 0 means 256.
	QueueDepth int
	// CheckpointEvery is the interval between job checkpoint writes.
	// 0 means 2s; negative disables interval checkpoints.
	CheckpointEvery time.Duration
	// System, when non-nil, is the configured System jobs plan and train
	// on (cluster config, estimator settings, worker pool). Nil means
	// ml4all.NewSystem().
	System *ml4all.System
	// Coalesce tunes predict-request coalescing (zero value: enabled with
	// defaults; set Disabled to score every request alone).
	Coalesce CoalesceConfig
	// Admission bounds in-flight prediction rows (zero value: enabled with
	// defaults; set Disabled to admit everything).
	Admission AdmissionConfig
	// MaxBodyBytes caps request bodies; an overrun returns 413. 0 means
	// 8 MiB; negative disables the cap.
	MaxBodyBytes int64
	// PredictTimeout bounds each predict call beyond the client's own
	// deadline; an expired call returns 503 + Retry-After. 0 means no
	// server-side bound (the client context still applies).
	PredictTimeout time.Duration
	// RetainCheckpoints is how many checkpoint generations each running job
	// keeps on disk. 0 means 3.
	RetainCheckpoints int
	// Fault, when non-nil, injects deterministic faults at the durability
	// seams (testing). Nil consults the ML4ALL_FAULT environment variable
	// (see fault.ParsePlan); unset means no injection.
	Fault *fault.Injector
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiles expose process internals, so production deployments should
	// only turn this on behind trusted ingress.
	EnablePprof bool

	// stepHook, when non-nil, runs after every training iteration
	// (testing: lets HTTP-level tests slow jobs down to pin race-prone
	// orderings). Forwarded to ManagerConfig.stepHook.
	stepHook func(jobID string, iter int)
}

// Server wires the job manager, the model registry and the prediction
// service behind one http.Handler.
type Server struct {
	cfg       Config
	manager   *Manager
	registry  *Registry
	counters  *Counters
	predictor *Predictor
	maxBody   int64
	started   time.Time
}

// defaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is 0:
// 8 MiB holds a ~500-row dense predict batch with room to spare while
// bounding what one connection can make the decoder buffer.
const defaultMaxBodyBytes = 8 << 20

// New opens the server's state directory (resuming any interrupted jobs and
// reloading every published model) and starts the training pool.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	sys := cfg.System
	if sys == nil {
		sys = ml4all.NewSystem()
	}
	inj := cfg.Fault
	if inj == nil {
		var err error
		if inj, err = fault.FromSpec(os.Getenv("ML4ALL_FAULT")); err != nil {
			return nil, fmt.Errorf("serve: ML4ALL_FAULT: %w", err)
		}
	}
	counters := newCounters()
	reg, err := OpenRegistryWith(filepath.Join(cfg.Dir, "models"), inj, counters)
	if err != nil {
		return nil, err
	}
	mgr, err := NewManager(ManagerConfig{
		Dir:               cfg.Dir,
		Pool:              cfg.Pool,
		QueueDepth:        cfg.QueueDepth,
		CheckpointEvery:   cfg.CheckpointEvery,
		RetainCheckpoints: cfg.RetainCheckpoints,
		Fault:             inj,
		Counters:          counters,
		stepHook:          cfg.stepHook,
	}, sys, reg)
	if err != nil {
		return nil, err
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = defaultMaxBodyBytes
	}
	return &Server{
		cfg:       cfg,
		manager:   mgr,
		registry:  reg,
		counters:  counters,
		predictor: NewPredictor(cfg.Coalesce, cfg.Admission, counters),
		maxBody:   maxBody,
		started:   time.Now(),
	}, nil
}

// HTTPServer wraps the service in an http.Server with hardened edges: header
// and body read deadlines (slow-loris), a write deadline longer than any
// predict pass, an idle keep-alive bound, and a header cap. The caller owns
// ListenAndServe/Shutdown.
func (s *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// Manager exposes the job manager (tests and the CLI drive it directly).
func (s *Server) Manager() *Manager { return s.manager }

// Registry exposes the model registry.
func (s *Server) Registry() *Registry { return s.registry }

// Predictor exposes the prediction pipeline (benchmarks and embedders drive
// it without the HTTP layer).
func (s *Server) Predictor() *Predictor { return s.predictor }

// Counters exposes the server's metrics registry (the load harness reads
// per-phase span summaries from it without scraping /metrics).
func (s *Server) Counters() *Counters { return s.counters }

// Shutdown drains the service gracefully: pending coalesced batches flush
// (predict calls still in flight score directly), then the training pool
// drains — running jobs checkpoint and are left resumable on disk. The HTTP
// listener (owned by the caller) should stop first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.predictor.Close()
	return s.manager.Shutdown(ctx)
}

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.wrap("jobs.submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.wrap("jobs.list", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.wrap("jobs.get", s.handleJobGet))
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.wrap("jobs.cancel", s.handleJobCancel))
	mux.HandleFunc("POST /v1/jobs/{id}/pause", s.wrap("jobs.pause", s.handleJobPause))
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.wrap("jobs.resume", s.handleJobResume))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.wrap("jobs.trace", s.handleJobTrace))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.eventsHandler())
	mux.HandleFunc("GET /v1/models", s.wrap("models.list", s.handleModelList))
	mux.HandleFunc("GET /v1/models/{name}", s.wrap("models.get", s.handleModelGet))
	mux.HandleFunc("DELETE /v1/models/{name}", s.wrap("models.delete", s.handleModelDelete))
	mux.HandleFunc("POST /v1/models/{name}/predict", s.wrap("predict", s.handlePredict))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
