package serve

// Job-manager concurrency coverage, run under -race in CI: concurrent
// submissions, cancellations, pause/resume prodding, status polling and
// interval checkpointing over a bounded pool, followed by a graceful
// shutdown — no deadlocks, no lost jobs, every survivor in a sane state.

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ml4all/internal/data"
	"ml4all/internal/synth"
)

func testManager(t *testing.T, cfg ManagerConfig) (*Manager, *Registry) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	reg, err := OpenRegistry(filepath.Join(cfg.Dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(cfg, servingSystem(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, reg
}

func TestManagerConcurrentSubmitCancelShutdown(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "race-train", Task: data.TaskSVM,
		N: 800, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 9,
	})
	script := fmt.Sprintf("run svm on %s having epsilon 0.001, max iter 60;", trainPath)

	mgr, reg := testManager(t, ManagerConfig{
		Pool:            3,
		CheckpointEvery: time.Millisecond, // exercise checkpoint writes under load
	})

	const submitters, perSubmitter = 4, 3
	ids := make(chan string, submitters*perSubmitter)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perSubmitter; k++ {
				j, err := mgr.Submit(script, fmt.Sprintf("race-%d-%d", g, k))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- j.ID
			}
		}(g)
	}

	// Cancellers: cancel every third job as it appears. Pollers: hammer the
	// status surface the HTTP layer reads. Prodders: pause/resume whatever
	// happens to be running (both calls may legitimately refuse).
	done := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		n := 0
		for id := range ids {
			n++
			if n%3 == 0 {
				mgr.Cancel(id) // may race completion; both outcomes are legal
			}
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, st := range mgr.List() {
				if st.State == JobRunning {
					mgr.Pause(st.ID)
					mgr.Resume(st.ID)
				}
				_ = st.Iteration
			}
			mgr.StateCounts()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(ids)

	// Every job must settle; paused stragglers (a pause that landed right
	// before its resume was refused) are nudged back in.
	deadline := time.Now().Add(60 * time.Second)
	for {
		counts := mgr.StateCounts()
		settled := counts[JobCompleted] + counts[JobFailed] + counts[JobCancelled]
		if settled == submitters*perSubmitter {
			break
		}
		if counts[JobPaused] > 0 {
			for _, st := range mgr.List() {
				if st.State == JobPaused {
					mgr.Resume(st.ID)
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never settled: %v", counts)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	aux.Wait()

	for _, st := range mgr.List() {
		switch st.State {
		case JobCompleted:
			if st.Version == 0 {
				t.Errorf("%s completed without publishing", st.ID)
			}
			if _, ok := reg.Get(st.Model, st.Version); !ok {
				t.Errorf("%s published %s@%d but the registry lacks it", st.ID, st.Model, st.Version)
			}
		case JobCancelled, JobFailed:
			if st.State == JobFailed {
				t.Errorf("%s failed: %s", st.ID, st.Error)
			}
		default:
			t.Errorf("%s left non-terminal: %s", st.ID, st.State)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(script, "late"); err == nil {
		t.Fatal("submit after shutdown must fail")
	}
}

func TestManagerPauseResume(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "pause-train", Task: data.TaskLogisticRegression,
		N: 1500, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 10,
	})
	script := fmt.Sprintf("run logistic on %s having epsilon 0.0000000000000000001, max iter 800;", trainPath)

	dir := t.TempDir()
	cfg := ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: -1}
	cfg.stepHook = func(string, int) { time.Sleep(100 * time.Microsecond) }
	mgr, _ := testManager(t, cfg)
	defer mgr.Shutdown(context.Background())

	j, err := mgr.Submit(script, "pausable")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j.Status, JobRunning, 30*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().Iteration < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("no progress: %+v", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if err := mgr.Pause(j.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j.Status, JobPaused, 30*time.Second)
	if st.Iteration == 0 {
		t.Fatal("paused with no recorded progress")
	}
	if _, ok := mgr.Job(j.ID); !ok {
		t.Fatalf("job vanished while paused")
	}
	if err := mgr.Pause(j.ID); err == nil {
		t.Fatal("pausing a paused job must refuse")
	}
	if err := mgr.Resume(j.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, j.Status, JobCompleted, 60*time.Second)
	if final.Iteration != 800 {
		t.Fatalf("resumed job ran %d iterations, want the full 800", final.Iteration)
	}
	if err := mgr.Cancel(j.ID); err == nil {
		t.Fatal("cancelling a completed job must refuse")
	}
}

func TestManagerCancelQueuedAndRunning(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "cancel-train", Task: data.TaskLogisticRegression,
		N: 1500, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 11,
	})
	script := fmt.Sprintf("run logistic on %s having epsilon 0.0000000000000000001, max iter 800;", trainPath)

	cfg := ManagerConfig{Pool: 1, CheckpointEvery: -1}
	cfg.stepHook = func(string, int) { time.Sleep(100 * time.Microsecond) }
	mgr, _ := testManager(t, cfg)
	defer mgr.Shutdown(context.Background())

	running, err := mgr.Submit(script, "will-cancel-running")
	if err != nil {
		t.Fatal(err)
	}
	queued, err := mgr.Submit(script, "will-cancel-queued")
	if err != nil {
		t.Fatal(err)
	}
	// The queued job holds no slot (pool=1): cancel settles it immediately.
	if err := mgr.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := queued.Status(); st.State != JobCancelled {
		t.Fatalf("queued job is %s after cancel", st.State)
	}
	waitState(t, running.Status, JobRunning, 30*time.Second)
	if err := mgr.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, running.Status, JobCancelled, 30*time.Second)
	if st.Iteration >= 800 {
		t.Fatalf("job ran to completion (%d iterations) despite the cancel", st.Iteration)
	}
}

// TestManagerFailedSubmissionIsActionable pins the satellite contract: a job
// whose statement cannot bind fails with the statement's source position.
func TestManagerFailedSubmissionIsActionable(t *testing.T) {
	mgr, _ := testManager(t, ManagerConfig{Pool: 1})
	defer mgr.Shutdown(context.Background())

	// Parse errors surface synchronously, with position.
	if _, err := mgr.Submit("run logistic banana;", ""); err == nil {
		t.Fatal("unparsable script must fail at submit")
	}
	// Bind errors surface asynchronously on the job, still positioned.
	j, err := mgr.Submit("run logistic on /does/not/exist.txt having max iter 5;", "doomed")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !j.Status().State.terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job never settled: %+v", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
	st := j.Status()
	if st.State != JobFailed {
		t.Fatalf("job is %s, want failed", st.State)
	}
	if want := "statement at 1:1"; !strings.Contains(st.Error, want) {
		t.Fatalf("failure lacks position %q: %q", want, st.Error)
	}
}

// TestManagerCancelBeatsPendingPause pins the fixed race: a cancel arriving
// after a pause request but before the runner's next iteration edge must
// cancel the job, not strand it paused.
func TestManagerCancelBeatsPendingPause(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "cancel-pause-train", Task: data.TaskLogisticRegression,
		N: 1500, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 12,
	})
	script := fmt.Sprintf("run logistic on %s having epsilon 0.0000000000000000001, max iter 800;", trainPath)

	// Gate the runner inside the step hook so the test can act strictly
	// between two iteration edges.
	gated := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := ManagerConfig{Pool: 1, CheckpointEvery: -1}
	cfg.stepHook = func(_ string, iter int) {
		if iter == 5 {
			once.Do(func() { close(gated) })
			<-release
		}
	}
	mgr, _ := testManager(t, cfg)
	defer mgr.Shutdown(context.Background())

	j, err := mgr.Submit(script, "racy")
	if err != nil {
		t.Fatal(err)
	}
	<-gated // runner is mid-hook, before the next edge
	if err := mgr.Pause(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	st := waitState(t, j.Status, JobCancelled, 30*time.Second)
	if st.State != JobCancelled {
		t.Fatalf("job settled as %s, want cancelled", st.State)
	}
}

// TestManagerFastMathPersistsAcrossRestart pins the manifest round-trip of
// the kernel-tier opt-in: a job submitted with SubmitOptions{FastMath: true}
// must come back on the fast tier after a manager restart — a resume that
// silently dropped to the exact tier would break the checkpoint's
// bit-identical-resume contract mid-run.
func TestManagerFastMathPersistsAcrossRestart(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "fastmath-train", Task: data.TaskSVM,
		N: 800, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 13,
	})
	script := fmt.Sprintf("run svm on %s having epsilon 0.001, max iter 60;", trainPath)

	dir := t.TempDir()
	mgr1, _ := testManager(t, ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond})
	fast, err := mgr1.SubmitJob(script, "fast-model", SubmitOptions{FastMath: true})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := mgr1.Submit(script, "exact-model")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, fast.Status, JobCompleted, 60*time.Second)
	waitState(t, exact.Status, JobCompleted, 60*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	mgr2, _ := testManager(t, ManagerConfig{Dir: dir, Pool: 1})
	defer mgr2.Shutdown(context.Background())
	reloaded, ok := mgr2.Job(fast.ID)
	if !ok {
		t.Fatalf("fast job %s lost across restart", fast.ID)
	}
	if !reloaded.FastMath {
		t.Fatal("fastmath opt-in dropped from the reloaded manifest")
	}
	reloaded, ok = mgr2.Job(exact.ID)
	if !ok {
		t.Fatalf("exact job %s lost across restart", exact.ID)
	}
	if reloaded.FastMath {
		t.Fatal("exact job reloaded with fastmath set")
	}
}

// TestManagerRejectsAdaptiveAtSubmit: the statically detectable failure must
// not become a deferred, asynchronous one.
func TestManagerRejectsAdaptiveAtSubmit(t *testing.T) {
	mgr, _ := testManager(t, ManagerConfig{Pool: 1})
	defer mgr.Shutdown(context.Background())
	_, err := mgr.Submit("run classification on x.txt having adaptive;", "")
	if err == nil || !strings.Contains(err.Error(), "adaptive") {
		t.Fatalf("adaptive submit must be rejected synchronously, got %v", err)
	}
	if n := len(mgr.List()); n != 0 {
		t.Fatalf("rejected submit left %d jobs behind", n)
	}
}
