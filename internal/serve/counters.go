package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Counters aggregates per-endpoint request statistics plus prediction
// throughput totals, rendered at /metrics in the Prometheus text exposition
// format. Everything is a monotonic total — rates are the scraper's job.
type Counters struct {
	mu     sync.Mutex
	routes map[string]*routeStats

	predictRows    uint64 // rows scored across all predict calls
	predictBatches uint64 // predict calls that reached the kernels
}

type routeStats struct {
	count   uint64
	errors  uint64 // responses with status >= 400
	seconds float64
	maxSec  float64
}

func newCounters() *Counters {
	return &Counters{routes: map[string]*routeStats{}}
}

// observe records one served request on a route.
func (c *Counters) observe(route string, d time.Duration, isErr bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.routes[route]
	if rs == nil {
		rs = &routeStats{}
		c.routes[route] = rs
	}
	rs.count++
	if isErr {
		rs.errors++
	}
	sec := d.Seconds()
	rs.seconds += sec
	if sec > rs.maxSec {
		rs.maxSec = sec
	}
}

// observePredict records one prediction batch's row count.
func (c *Counters) observePredict(rows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.predictBatches++
	c.predictRows += uint64(rows)
}

// WriteText renders the counters in Prometheus text format, routes sorted
// for stable output.
func (c *Counters) WriteText(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.routes))
	for name := range c.routes {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# TYPE ml4all_requests_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_requests_total{route=%q} %d\n", name, c.routes[name].count)
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_errors_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_errors_total{route=%q} %d\n", name, c.routes[name].errors)
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_seconds_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_seconds_total{route=%q} %g\n", name, c.routes[name].seconds)
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_seconds_max gauge")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_seconds_max{route=%q} %g\n", name, c.routes[name].maxSec)
	}
	fmt.Fprintln(w, "# TYPE ml4all_predict_rows_total counter")
	fmt.Fprintf(w, "ml4all_predict_rows_total %d\n", c.predictRows)
	fmt.Fprintln(w, "# TYPE ml4all_predict_batches_total counter")
	fmt.Fprintf(w, "ml4all_predict_batches_total %d\n", c.predictBatches)
}
