package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counters aggregates per-endpoint request statistics plus prediction
// pipeline totals, rendered at /metrics in the Prometheus text exposition
// format. The write side is lock-free: routes are registered once (at
// handler construction), after which every observation is a handful of
// atomic adds — cheap enough for the predict hot path at traffic. Latencies
// accumulate into fixed log-spaced histogram buckets, from which /metrics
// derives p50/p95/p99 per route; totals are monotonic — rates are the
// scraper's job.
type Counters struct {
	mu     sync.Mutex // guards route registration only; stats are atomic
	routes map[string]*routeStats

	predictRows      atomic.Uint64 // rows scored across all predict calls
	predictBatches   atomic.Uint64 // predict calls that reached the kernels
	coalescedBatches atomic.Uint64 // kernel passes serving >1 request
	coalescedRows    atomic.Uint64 // rows scored through shared passes
	rejected         atomic.Uint64 // requests refused by admission control
	inFlightRows     atomic.Int64  // rows admitted, response not yet built

	// Durability/recovery counters — how often the fault machinery actually
	// fired, so degradation is observable rather than silent.
	ckptWritten       atomic.Uint64 // durable checkpoint frames written
	ckptVerified      atomic.Uint64 // frames that passed their checksum on resume
	ckptCorrupt       atomic.Uint64 // frames discarded as corrupt/unreadable
	registryFallbacks atomic.Uint64 // model versions entombed as corrupt on load
	recoveredPanics   atomic.Uint64 // panics converted to job/request errors
	deadlineExpired   atomic.Uint64 // predicts abandoned on context expiry
}

// histBuckets is the bucket count of the per-route latency histograms:
// bucket i counts observations with latency ≤ 1µs·2^i, the last bucket is
// the +Inf catch-all. 28 doublings span 1µs to ~134s — the full range an
// HTTP request can plausibly occupy — at a fixed 2x resolution, which is
// what makes the derived percentiles deterministic: a quantile is always
// reported as a bucket's upper bound, never an interpolation over racing
// counts.
const histBuckets = 28

// bucketBound returns bucket i's upper bound in seconds.
func bucketBound(i int) float64 { return 1e-6 * float64(uint64(1)<<uint(i)) }

// bucketOf maps a duration to its histogram bucket.
func bucketOf(d time.Duration) int {
	b := 0
	for ns := int64(1000); b < histBuckets-1 && d.Nanoseconds() > ns; b++ {
		ns <<= 1
	}
	return b
}

// routeStats is one route's statistics; every field is atomic, so concurrent
// observations never contend on a lock.
type routeStats struct {
	count    atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	nanos    atomic.Int64  // total latency
	maxNanos atomic.Int64
	buckets  [histBuckets]atomic.Uint64
}

// observe records one served request.
func (rs *routeStats) observe(d time.Duration, isErr bool) {
	rs.count.Add(1)
	if isErr {
		rs.errors.Add(1)
	}
	ns := d.Nanoseconds()
	rs.nanos.Add(ns)
	for {
		old := rs.maxNanos.Load()
		if ns <= old || rs.maxNanos.CompareAndSwap(old, ns) {
			break
		}
	}
	rs.buckets[bucketOf(d)].Add(1)
}

// quantile returns the q-quantile latency in seconds: the upper bound of the
// first bucket at which the cumulative count reaches q·total (0 when the
// route has no observations). Reporting bucket bounds keeps the output
// deterministic for a fixed observation multiset, regardless of arrival
// order.
func (rs *routeStats) quantile(q float64) float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = rs.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}

func newCounters() *Counters {
	return &Counters{routes: map[string]*routeStats{}}
}

// NewCounters builds an empty metrics registry. Embedders driving a Predictor
// without a Server pass one to NewPredictor to observe the pipeline.
func NewCounters() *Counters { return newCounters() }

// PredictTotals is a point-in-time snapshot of the prediction pipeline's
// throughput counters — the /metrics ml4all_predict_* series as numbers, for
// harnesses that read rather than scrape.
type PredictTotals struct {
	Rows             uint64 // rows scored across all predict calls
	Batches          uint64 // predict calls that reached the kernels
	CoalescedRows    uint64 // rows scored through shared passes
	CoalescedBatches uint64 // kernel passes that served >1 request
	Rejected         uint64 // requests refused by admission control
}

// PredictTotals snapshots the prediction counters.
func (c *Counters) PredictTotals() PredictTotals {
	return PredictTotals{
		Rows:             c.predictRows.Load(),
		Batches:          c.predictBatches.Load(),
		CoalescedRows:    c.coalescedRows.Load(),
		CoalescedBatches: c.coalescedBatches.Load(),
		Rejected:         c.rejected.Load(),
	}
}

// route returns (registering if needed) a route's stats record. Handlers
// resolve their record once at construction, making observe lock-free.
func (c *Counters) route(name string) *routeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.routes[name]
	if rs == nil {
		rs = &routeStats{}
		c.routes[name] = rs
	}
	return rs
}

// observe records one served request on a route — the slow path for callers
// that did not pre-resolve the record.
func (c *Counters) observe(route string, d time.Duration, isErr bool) {
	c.route(route).observe(d, isErr)
}

// observePredict records one prediction call's row count.
func (c *Counters) observePredict(rows int) {
	c.predictBatches.Add(1)
	c.predictRows.Add(uint64(rows))
}

// observeCoalesced records one shared kernel pass serving several requests.
func (c *Counters) observeCoalesced(rows int) {
	c.coalescedBatches.Add(1)
	c.coalescedRows.Add(uint64(rows))
}

// The durability observers tolerate a nil receiver: the manager and registry
// run with no Counters in embedded/test setups, and the recording sites stay
// unconditional.
func (c *Counters) checkpointWritten() {
	if c != nil {
		c.ckptWritten.Add(1)
	}
}

func (c *Counters) checkpointVerified() {
	if c != nil {
		c.ckptVerified.Add(1)
	}
}

func (c *Counters) checkpointCorrupt() {
	if c != nil {
		c.ckptCorrupt.Add(1)
	}
}

func (c *Counters) registryFallback() {
	if c != nil {
		c.registryFallbacks.Add(1)
	}
}

func (c *Counters) panicRecovered() {
	if c != nil {
		c.recoveredPanics.Add(1)
	}
}

func (c *Counters) deadlineExpire() {
	if c != nil {
		c.deadlineExpired.Add(1)
	}
}

// FaultTotals is a point-in-time snapshot of the durability/recovery
// counters — the /metrics ml4all_checkpoints_*/ml4all_recovered_* series as
// numbers, for tests and harnesses.
type FaultTotals struct {
	CheckpointsWritten  uint64
	CheckpointsVerified uint64
	CheckpointsCorrupt  uint64
	RegistryFallbacks   uint64
	RecoveredPanics     uint64
	DeadlineExpired     uint64
}

// FaultTotals snapshots the durability counters.
func (c *Counters) FaultTotals() FaultTotals {
	return FaultTotals{
		CheckpointsWritten:  c.ckptWritten.Load(),
		CheckpointsVerified: c.ckptVerified.Load(),
		CheckpointsCorrupt:  c.ckptCorrupt.Load(),
		RegistryFallbacks:   c.registryFallbacks.Load(),
		RecoveredPanics:     c.recoveredPanics.Load(),
		DeadlineExpired:     c.deadlineExpired.Load(),
	}
}

// quantiles reported per route, ascending — the fixed field order of the
// exposition.
var reportedQuantiles = [...]struct {
	label string
	q     float64
}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}}

// WriteText renders the counters in Prometheus text format. Field ordering
// is deterministic: metrics render in a fixed sequence, routes sort
// lexicographically within each metric, and quantiles ascend within each
// route.
func (c *Counters) WriteText(w io.Writer) {
	c.mu.Lock()
	names := make([]string, 0, len(c.routes))
	routes := make(map[string]*routeStats, len(c.routes))
	for name, rs := range c.routes {
		names = append(names, name)
		routes[name] = rs
	}
	c.mu.Unlock()
	sort.Strings(names)

	fmt.Fprintln(w, "# TYPE ml4all_requests_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_requests_total{route=%q} %d\n", name, routes[name].count.Load())
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_errors_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_errors_total{route=%q} %d\n", name, routes[name].errors.Load())
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_seconds_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_seconds_total{route=%q} %g\n", name, time.Duration(routes[name].nanos.Load()).Seconds())
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_seconds_max gauge")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_seconds_max{route=%q} %g\n", name, time.Duration(routes[name].maxNanos.Load()).Seconds())
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_seconds gauge")
	for _, name := range names {
		for _, rq := range reportedQuantiles {
			fmt.Fprintf(w, "ml4all_request_seconds{route=%q,quantile=%q} %g\n",
				name, rq.label, routes[name].quantile(rq.q))
		}
	}
	fmt.Fprintln(w, "# TYPE ml4all_request_seconds_bucket counter")
	for _, name := range names {
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			cum += routes[name].buckets[i].Load()
			if i == histBuckets-1 {
				fmt.Fprintf(w, "ml4all_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, cum)
			} else {
				fmt.Fprintf(w, "ml4all_request_seconds_bucket{route=%q,le=%q} %d\n", name, fmt.Sprintf("%g", bucketBound(i)), cum)
			}
		}
	}
	fmt.Fprintln(w, "# TYPE ml4all_predict_rows_total counter")
	fmt.Fprintf(w, "ml4all_predict_rows_total %d\n", c.predictRows.Load())
	fmt.Fprintln(w, "# TYPE ml4all_predict_batches_total counter")
	fmt.Fprintf(w, "ml4all_predict_batches_total %d\n", c.predictBatches.Load())
	fmt.Fprintln(w, "# TYPE ml4all_predict_coalesced_batches_total counter")
	fmt.Fprintf(w, "ml4all_predict_coalesced_batches_total %d\n", c.coalescedBatches.Load())
	fmt.Fprintln(w, "# TYPE ml4all_predict_coalesced_rows_total counter")
	fmt.Fprintf(w, "ml4all_predict_coalesced_rows_total %d\n", c.coalescedRows.Load())
	fmt.Fprintln(w, "# TYPE ml4all_predict_rejected_total counter")
	fmt.Fprintf(w, "ml4all_predict_rejected_total %d\n", c.rejected.Load())
	fmt.Fprintln(w, "# TYPE ml4all_predict_inflight_rows gauge")
	fmt.Fprintf(w, "ml4all_predict_inflight_rows %d\n", c.inFlightRows.Load())
	fmt.Fprintln(w, "# TYPE ml4all_checkpoints_written_total counter")
	fmt.Fprintf(w, "ml4all_checkpoints_written_total %d\n", c.ckptWritten.Load())
	fmt.Fprintln(w, "# TYPE ml4all_checkpoints_verified_total counter")
	fmt.Fprintf(w, "ml4all_checkpoints_verified_total %d\n", c.ckptVerified.Load())
	fmt.Fprintln(w, "# TYPE ml4all_checkpoints_discarded_corrupt_total counter")
	fmt.Fprintf(w, "ml4all_checkpoints_discarded_corrupt_total %d\n", c.ckptCorrupt.Load())
	fmt.Fprintln(w, "# TYPE ml4all_registry_fallbacks_total counter")
	fmt.Fprintf(w, "ml4all_registry_fallbacks_total %d\n", c.registryFallbacks.Load())
	fmt.Fprintln(w, "# TYPE ml4all_recovered_panics_total counter")
	fmt.Fprintf(w, "ml4all_recovered_panics_total %d\n", c.recoveredPanics.Load())
	fmt.Fprintln(w, "# TYPE ml4all_deadline_expired_total counter")
	fmt.Fprintf(w, "ml4all_deadline_expired_total %d\n", c.deadlineExpired.Load())
}
