package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counters aggregates per-endpoint request statistics plus prediction
// pipeline totals, rendered at /metrics in the Prometheus text exposition
// format. The write side is lock-free: routes are registered once (at
// handler construction), after which every observation is a handful of
// atomic adds — cheap enough for the predict hot path at traffic. Latencies
// accumulate into fixed log-spaced histogram buckets, from which /metrics
// derives p50/p95/p99 per route; totals are monotonic — rates are the
// scraper's job.
type Counters struct {
	mu     sync.Mutex // guards route/phase registration only; stats are atomic
	routes map[string]*routeStats

	// phases aggregates tracing spans (optimize, speculate, train,
	// checkpoint, recover, predict-batch) into the same lock-free histogram
	// machinery the routes use, rendered as ml4all_phase_seconds.
	phases map[string]*routeStats

	predictRows      atomic.Uint64 // rows scored across all predict calls
	predictBatches   atomic.Uint64 // predict calls that reached the kernels
	coalescedBatches atomic.Uint64 // kernel passes serving >1 request
	coalescedRows    atomic.Uint64 // rows scored through shared passes
	rejected         atomic.Uint64 // requests refused by admission control
	inFlightRows     atomic.Int64  // rows admitted, response not yet built

	// Durability/recovery counters — how often the fault machinery actually
	// fired, so degradation is observable rather than silent.
	ckptWritten       atomic.Uint64 // durable checkpoint frames written
	ckptVerified      atomic.Uint64 // frames that passed their checksum on resume
	ckptCorrupt       atomic.Uint64 // frames discarded as corrupt/unreadable
	registryFallbacks atomic.Uint64 // model versions entombed as corrupt on load
	recoveredPanics   atomic.Uint64 // panics converted to job/request errors
	deadlineExpired   atomic.Uint64 // predicts abandoned on context expiry

	// Run-ledger counters: records appended to jobs/ledger.jsonl, and
	// append failures (the job still completes — a ledger error degrades
	// history, not training).
	ledgerRecords atomic.Uint64
	ledgerErrors  atomic.Uint64
}

// histBuckets is the bucket count of the per-route latency histograms:
// bucket i counts observations with latency ≤ 1µs·2^i, the last bucket is
// the +Inf catch-all. 28 doublings span 1µs to ~134s — the full range an
// HTTP request can plausibly occupy — at a fixed 2x resolution, which is
// what makes the derived percentiles deterministic: a quantile is always
// reported as a bucket's upper bound, never an interpolation over racing
// counts.
const histBuckets = 28

// bucketBound returns bucket i's upper bound in seconds.
func bucketBound(i int) float64 { return 1e-6 * float64(uint64(1)<<uint(i)) }

// bucketOf maps a duration to its histogram bucket.
func bucketOf(d time.Duration) int {
	b := 0
	for ns := int64(1000); b < histBuckets-1 && d.Nanoseconds() > ns; b++ {
		ns <<= 1
	}
	return b
}

// routeStats is one route's statistics; every field is atomic, so concurrent
// observations never contend on a lock.
type routeStats struct {
	count    atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	nanos    atomic.Int64  // total latency
	maxNanos atomic.Int64
	buckets  [histBuckets]atomic.Uint64
}

// observe records one served request.
func (rs *routeStats) observe(d time.Duration, isErr bool) {
	rs.count.Add(1)
	if isErr {
		rs.errors.Add(1)
	}
	ns := d.Nanoseconds()
	rs.nanos.Add(ns)
	for {
		old := rs.maxNanos.Load()
		if ns <= old || rs.maxNanos.CompareAndSwap(old, ns) {
			break
		}
	}
	rs.buckets[bucketOf(d)].Add(1)
}

// quantile returns the q-quantile latency in seconds: the upper bound of the
// first bucket at which the cumulative count reaches q·total (0 when the
// route has no observations). Reporting bucket bounds keeps the output
// deterministic for a fixed observation multiset, regardless of arrival
// order.
func (rs *routeStats) quantile(q float64) float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = rs.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}

func newCounters() *Counters {
	return &Counters{routes: map[string]*routeStats{}, phases: map[string]*routeStats{}}
}

// NewCounters builds an empty metrics registry. Embedders driving a Predictor
// without a Server pass one to NewPredictor to observe the pipeline.
func NewCounters() *Counters { return newCounters() }

// PredictTotals is a point-in-time snapshot of the prediction pipeline's
// throughput counters — the /metrics ml4all_predict_* series as numbers, for
// harnesses that read rather than scrape.
type PredictTotals struct {
	Rows             uint64 // rows scored across all predict calls
	Batches          uint64 // predict calls that reached the kernels
	CoalescedRows    uint64 // rows scored through shared passes
	CoalescedBatches uint64 // kernel passes that served >1 request
	Rejected         uint64 // requests refused by admission control
}

// PredictTotals snapshots the prediction counters.
func (c *Counters) PredictTotals() PredictTotals {
	return PredictTotals{
		Rows:             c.predictRows.Load(),
		Batches:          c.predictBatches.Load(),
		CoalescedRows:    c.coalescedRows.Load(),
		CoalescedBatches: c.coalescedBatches.Load(),
		Rejected:         c.rejected.Load(),
	}
}

// route returns (registering if needed) a route's stats record. Handlers
// resolve their record once at construction, making observe lock-free.
func (c *Counters) route(name string) *routeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.routes[name]
	if rs == nil {
		rs = &routeStats{}
		c.routes[name] = rs
	}
	return rs
}

// observe records one served request on a route — the slow path for callers
// that did not pre-resolve the record.
func (c *Counters) observe(route string, d time.Duration, isErr bool) {
	c.route(route).observe(d, isErr)
}

// phase returns (registering if needed) a phase's stats record; like route,
// callers on hot paths resolve it once so observing is pure atomics.
func (c *Counters) phase(name string) *routeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.phases[name]
	if rs == nil {
		rs = &routeStats{}
		c.phases[name] = rs
	}
	return rs
}

// observePhase records one closed tracing span. Nil-safe so the manager can
// hook traces unconditionally in embedded/test setups without counters.
func (c *Counters) observePhase(name string, d time.Duration) {
	if c != nil {
		c.phase(name).observe(d, false)
	}
}

// PhaseSummary is one phase's aggregate as numbers — the
// ml4all_phase_seconds series for harnesses that read rather than scrape
// (the load harness embeds these in its JSON artifact).
type PhaseSummary struct {
	Count        uint64  `json:"count"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// PhaseSummaries snapshots every observed phase.
func (c *Counters) PhaseSummaries() map[string]PhaseSummary {
	c.mu.Lock()
	phases := make(map[string]*routeStats, len(c.phases))
	for name, rs := range c.phases {
		phases[name] = rs
	}
	c.mu.Unlock()
	out := make(map[string]PhaseSummary, len(phases))
	for name, rs := range phases {
		out[name] = PhaseSummary{
			Count:        rs.count.Load(),
			P50Seconds:   rs.quantile(0.50),
			P99Seconds:   rs.quantile(0.99),
			MaxSeconds:   time.Duration(rs.maxNanos.Load()).Seconds(),
			TotalSeconds: time.Duration(rs.nanos.Load()).Seconds(),
		}
	}
	return out
}

// The ledger observers tolerate a nil receiver like the durability ones.
func (c *Counters) ledgerRecord() {
	if c != nil {
		c.ledgerRecords.Add(1)
	}
}

func (c *Counters) ledgerError() {
	if c != nil {
		c.ledgerErrors.Add(1)
	}
}

// LedgerTotals reports (records appended, append errors).
func (c *Counters) LedgerTotals() (records, errors uint64) {
	return c.ledgerRecords.Load(), c.ledgerErrors.Load()
}

// observePredict records one prediction call's row count.
func (c *Counters) observePredict(rows int) {
	c.predictBatches.Add(1)
	c.predictRows.Add(uint64(rows))
}

// observeCoalesced records one shared kernel pass serving several requests.
func (c *Counters) observeCoalesced(rows int) {
	c.coalescedBatches.Add(1)
	c.coalescedRows.Add(uint64(rows))
}

// The durability observers tolerate a nil receiver: the manager and registry
// run with no Counters in embedded/test setups, and the recording sites stay
// unconditional.
func (c *Counters) checkpointWritten() {
	if c != nil {
		c.ckptWritten.Add(1)
	}
}

func (c *Counters) checkpointVerified() {
	if c != nil {
		c.ckptVerified.Add(1)
	}
}

func (c *Counters) checkpointCorrupt() {
	if c != nil {
		c.ckptCorrupt.Add(1)
	}
}

func (c *Counters) registryFallback() {
	if c != nil {
		c.registryFallbacks.Add(1)
	}
}

func (c *Counters) panicRecovered() {
	if c != nil {
		c.recoveredPanics.Add(1)
	}
}

func (c *Counters) deadlineExpire() {
	if c != nil {
		c.deadlineExpired.Add(1)
	}
}

// FaultTotals is a point-in-time snapshot of the durability/recovery
// counters — the /metrics ml4all_checkpoints_*/ml4all_recovered_* series as
// numbers, for tests and harnesses.
type FaultTotals struct {
	CheckpointsWritten  uint64
	CheckpointsVerified uint64
	CheckpointsCorrupt  uint64
	RegistryFallbacks   uint64
	RecoveredPanics     uint64
	DeadlineExpired     uint64
}

// FaultTotals snapshots the durability counters.
func (c *Counters) FaultTotals() FaultTotals {
	return FaultTotals{
		CheckpointsWritten:  c.ckptWritten.Load(),
		CheckpointsVerified: c.ckptVerified.Load(),
		CheckpointsCorrupt:  c.ckptCorrupt.Load(),
		RegistryFallbacks:   c.registryFallbacks.Load(),
		RecoveredPanics:     c.recoveredPanics.Load(),
		DeadlineExpired:     c.deadlineExpired.Load(),
	}
}

// quantiles reported per route, ascending — the fixed field order of the
// exposition.
var reportedQuantiles = [...]struct {
	label string
	q     float64
}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}}

// header writes a metric family's # HELP and # TYPE comment pair. Every
// family gets both, in that order — the exposition-lint test enforces it.
func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// WriteText renders the counters in Prometheus text format. Field ordering
// is deterministic: metrics render in a fixed sequence, routes and phases
// sort lexicographically within each metric, and quantiles ascend within
// each route.
func (c *Counters) WriteText(w io.Writer) {
	c.mu.Lock()
	names := make([]string, 0, len(c.routes))
	routes := make(map[string]*routeStats, len(c.routes))
	for name, rs := range c.routes {
		names = append(names, name)
		routes[name] = rs
	}
	phaseNames := make([]string, 0, len(c.phases))
	phases := make(map[string]*routeStats, len(c.phases))
	for name, rs := range c.phases {
		phaseNames = append(phaseNames, name)
		phases[name] = rs
	}
	c.mu.Unlock()
	sort.Strings(names)
	sort.Strings(phaseNames)

	header(w, "ml4all_requests_total", "counter", "Requests served, by route.")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_requests_total{route=%q} %d\n", name, routes[name].count.Load())
	}
	header(w, "ml4all_request_errors_total", "counter", "Requests answered with status >= 400, by route.")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_errors_total{route=%q} %d\n", name, routes[name].errors.Load())
	}
	header(w, "ml4all_request_seconds_total", "counter", "Total request latency, by route.")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_seconds_total{route=%q} %g\n", name, time.Duration(routes[name].nanos.Load()).Seconds())
	}
	header(w, "ml4all_request_seconds_max", "gauge", "Largest single request latency seen, by route.")
	for _, name := range names {
		fmt.Fprintf(w, "ml4all_request_seconds_max{route=%q} %g\n", name, time.Duration(routes[name].maxNanos.Load()).Seconds())
	}
	header(w, "ml4all_request_seconds", "gauge", "Request latency quantiles (bucket upper bounds, deterministic), by route.")
	for _, name := range names {
		for _, rq := range reportedQuantiles {
			fmt.Fprintf(w, "ml4all_request_seconds{route=%q,quantile=%q} %g\n",
				name, rq.label, routes[name].quantile(rq.q))
		}
	}
	header(w, "ml4all_request_seconds_bucket", "counter", "Cumulative request latency histogram, by route.")
	for _, name := range names {
		writeBuckets(w, "ml4all_request_seconds_bucket", "route", name, routes[name])
	}
	header(w, "ml4all_phase_seconds", "histogram", "Traced phase durations (optimize, speculate, train, checkpoint, recover, predict-batch).")
	for _, name := range phaseNames {
		rs := phases[name]
		writeBuckets(w, "ml4all_phase_seconds_bucket", "phase", name, rs)
		fmt.Fprintf(w, "ml4all_phase_seconds_sum{phase=%q} %g\n", name, time.Duration(rs.nanos.Load()).Seconds())
		fmt.Fprintf(w, "ml4all_phase_seconds_count{phase=%q} %d\n", name, rs.count.Load())
	}
	header(w, "ml4all_predict_rows_total", "counter", "Rows scored across all predict calls.")
	fmt.Fprintf(w, "ml4all_predict_rows_total %d\n", c.predictRows.Load())
	header(w, "ml4all_predict_batches_total", "counter", "Predict calls that reached the kernels.")
	fmt.Fprintf(w, "ml4all_predict_batches_total %d\n", c.predictBatches.Load())
	header(w, "ml4all_predict_coalesced_batches_total", "counter", "Kernel passes that served more than one request.")
	fmt.Fprintf(w, "ml4all_predict_coalesced_batches_total %d\n", c.coalescedBatches.Load())
	header(w, "ml4all_predict_coalesced_rows_total", "counter", "Rows scored through shared kernel passes.")
	fmt.Fprintf(w, "ml4all_predict_coalesced_rows_total %d\n", c.coalescedRows.Load())
	header(w, "ml4all_predict_rejected_total", "counter", "Requests refused by admission control.")
	fmt.Fprintf(w, "ml4all_predict_rejected_total %d\n", c.rejected.Load())
	header(w, "ml4all_predict_inflight_rows", "gauge", "Rows admitted whose response is not yet built.")
	fmt.Fprintf(w, "ml4all_predict_inflight_rows %d\n", c.inFlightRows.Load())
	header(w, "ml4all_checkpoints_written_total", "counter", "Durable checkpoint frames written.")
	fmt.Fprintf(w, "ml4all_checkpoints_written_total %d\n", c.ckptWritten.Load())
	header(w, "ml4all_checkpoints_verified_total", "counter", "Checkpoint frames that passed their checksum on resume.")
	fmt.Fprintf(w, "ml4all_checkpoints_verified_total %d\n", c.ckptVerified.Load())
	header(w, "ml4all_checkpoints_discarded_corrupt_total", "counter", "Checkpoint frames discarded as corrupt or unreadable.")
	fmt.Fprintf(w, "ml4all_checkpoints_discarded_corrupt_total %d\n", c.ckptCorrupt.Load())
	header(w, "ml4all_registry_fallbacks_total", "counter", "Model versions entombed as corrupt on registry load.")
	fmt.Fprintf(w, "ml4all_registry_fallbacks_total %d\n", c.registryFallbacks.Load())
	header(w, "ml4all_recovered_panics_total", "counter", "Panics converted to job or request errors.")
	fmt.Fprintf(w, "ml4all_recovered_panics_total %d\n", c.recoveredPanics.Load())
	header(w, "ml4all_deadline_expired_total", "counter", "Predict requests abandoned on context expiry.")
	fmt.Fprintf(w, "ml4all_deadline_expired_total %d\n", c.deadlineExpired.Load())
	header(w, "ml4all_ledger_records_total", "counter", "Run-ledger records appended.")
	fmt.Fprintf(w, "ml4all_ledger_records_total %d\n", c.ledgerRecords.Load())
	header(w, "ml4all_ledger_errors_total", "counter", "Run-ledger append failures (job completion is unaffected).")
	fmt.Fprintf(w, "ml4all_ledger_errors_total %d\n", c.ledgerErrors.Load())
}

// writeBuckets renders one series' cumulative histogram buckets with the
// terminal +Inf bucket.
func writeBuckets(w io.Writer, metric, label, series string, rs *routeStats) {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += rs.buckets[i].Load()
		if i == histBuckets-1 {
			fmt.Fprintf(w, "%s{%s=%q,le=\"+Inf\"} %d\n", metric, label, series, cum)
		} else {
			fmt.Fprintf(w, "%s{%s=%q,le=%q} %d\n", metric, label, series, fmt.Sprintf("%g", bucketBound(i)), cum)
		}
	}
}
