package serve

import (
	"bytes"
	"math/bits"
	"sync"

	"ml4all/internal/data"
)

// Pooled serving-side scratch. The predict hot path handles thousands of
// small requests per second; every per-request allocation it performs is GC
// pressure multiplied by traffic, so each kind of scratch the pipeline needs
// — request arenas, parse scratch, score/label buffers, encode buffers — is
// recycled through a sync.Pool. Slices are pooled by power-of-two size class
// so a burst of large requests does not permanently inflate the buffers the
// small-request steady state cycles through, and callers never observe stale
// data: every pooled buffer is either fully overwritten (scores, labels) or
// explicitly truncated (builders, byte buffers) before reuse.

// slicePool pools slices of T by power-of-two capacity class. The pooled
// item is a boxed header (*[]T); boxes recycle through their own pool so
// neither get nor put allocates in steady state — a put that boxed its
// header with new(…) every time would itself be a per-request allocation.
type slicePool[T any] struct {
	classes [28]sync.Pool // boxed slices with cap 1<<class
	boxes   sync.Pool     // empty boxes awaiting the next put
}

// class maps a requested length to its size class: class c holds slices with
// capacity 1<<c.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a length-n slice with pooled backing storage.
func (p *slicePool[T]) get(n int) []T {
	c := sizeClass(n)
	if c >= len(p.classes) {
		return make([]T, n) // beyond the largest class: let the GC have it
	}
	if v := p.classes[c].Get(); v != nil {
		b := v.(*[]T)
		s := (*b)[:n]
		*b = nil
		p.boxes.Put(b)
		return s
	}
	return make([]T, n, 1<<c)
}

// put recycles s. The slice must no longer be referenced by the caller.
func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	c := bits.Len(uint(cap(s) - 1)) // class whose capacity fits entirely
	if cap(s) != 1<<c || c >= len(p.classes) {
		return // off-class or oversized: drop
	}
	var b *[]T
	if v := p.boxes.Get(); v != nil {
		b = v.(*[]T)
	} else {
		b = new([]T)
	}
	*b = s[:0]
	p.classes[c].Put(b)
}

var (
	floatPool slicePool[float64]

	// builderPool recycles request arenas: BuildView + Reset keep one
	// builder's backing arrays alive across requests (data.MatrixBuilder's
	// pooled-ingest lifecycle).
	builderPool = sync.Pool{New: func() any { return data.NewMatrixBuilder(0, 0) }}

	// scratchPool recycles LIBSVM/CSV parse scratch (the idx/vals slices
	// ParsePredictLIBSVM and ParsePredictCSV append into).
	scratchPool = sync.Pool{New: func() any { return &parseScratch{} }}

	// bufPool recycles request-decode and response-encode byte buffers.
	bufPool = sync.Pool{New: func() any { return &bytes.Buffer{} }}

	// requestPool recycles decoded PredictRequest structs; json.Unmarshal
	// reuses the Rows/Instances backing arrays across requests.
	requestPool = sync.Pool{New: func() any { return &PredictRequest{} }}

	// responsePool recycles PredictResponse structs; their Scores/Labels
	// slices cycle through floatPool.
	responsePool = sync.Pool{New: func() any { return &PredictResponse{} }}

	// callPool recycles the coalescer's per-caller wait records.
	callPool = sync.Pool{New: func() any { return &call{} }}

	// batchPool recycles the coalescer's batch records (their merge builders
	// come from builderPool at flush time; the calls slice keeps capacity).
	batchPool = sync.Pool{New: func() any { return &batch{} }}
)

// parseScratch is the per-request parser scratch.
type parseScratch struct {
	idx  []int32
	vals []float64
}

func getBuilder() *data.MatrixBuilder { return builderPool.Get().(*data.MatrixBuilder) }

func putBuilder(b *data.MatrixBuilder) {
	b.Reset()
	builderPool.Put(b)
}

// AcquirePredictResponse returns a pooled response for Predictor.Predict to
// fill. Call Release when the response (including its Scores/Labels slices)
// is no longer referenced.
func AcquirePredictResponse() *PredictResponse { return responsePool.Get().(*PredictResponse) }

// Release recycles the response and its score/label buffers.
func (r *PredictResponse) Release() {
	if r.Scores != nil {
		floatPool.put(r.Scores)
	}
	if r.Labels != nil {
		floatPool.put(r.Labels)
	}
	*r = PredictResponse{}
	responsePool.Put(r)
}

// release implements the releasable hook the HTTP wrapper invokes after
// encoding a payload it no longer owns.
func (r *PredictResponse) release() { r.Release() }

// releasable marks payloads the HTTP layer returns to a pool after encoding.
type releasable interface{ release() }
