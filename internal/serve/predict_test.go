package serve

// Prediction-service request parsing and scoring: every accepted form
// (label-optional LIBSVM rows, bare-feature CSV rows, dense JSON instances)
// lands in a columnar arena and scores through the blocked margin kernels,
// bit-identically to the per-row Dot path; malformed and mis-dimensioned
// requests are rejected with actionable errors.

import (
	"fmt"
	"strings"
	"testing"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

func predictModel() *ModelVersion {
	return &ModelVersion{
		Name: "m", Version: 3,
		Model: &ml4all.Model{
			Name: "m", Task: data.TaskSVM,
			Weights: linalg.Vector{0.5, -1.25, 2, 0.125},
		},
	}
}

func TestPredictFormsAgree(t *testing.T) {
	mv := predictModel()
	w := mv.Model.Weights
	// The same three rows in all three request forms (LIBSVM feature
	// indices are 1-based on the wire, like the dataset files).
	sparse := []string{
		"1:1 3:2",   // label-less LIBSVM
		"1 2:4 4:8", // labeled LIBSVM (label ignored)
		"4:1",
	}
	dense := []string{"1,0,2,0", "0,4,0,8", "0,0,0,1"}
	instances := [][]float64{{1, 0, 2}, {0, 4, 0, 8}, {0, 0, 0, 1}} // first is short: zero-padded

	want := []float64{
		1*w[0] + 2*w[2],
		4*w[1] + 8*w[3],
		1 * w[3],
	}
	for name, req := range map[string]*PredictRequest{
		"libsvm":    {Rows: sparse},
		"csv":       {Rows: dense},
		"instances": {Instances: instances},
	} {
		resp, err := predict(mv, req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Model != "m" || resp.Version != 3 || resp.Task != "SVM" || resp.N != 3 {
			t.Fatalf("%s: header %+v", name, resp)
		}
		for i := range want {
			if resp.Scores[i] != want[i] {
				t.Fatalf("%s row %d: score %g != %g", name, i, resp.Scores[i], want[i])
			}
			wantLabel := 1.0
			if want[i] < 0 {
				wantLabel = -1
			}
			if resp.Labels[i] != wantLabel {
				t.Fatalf("%s row %d: label %g != %g", name, i, resp.Labels[i], wantLabel)
			}
		}
	}
}

func TestPredictRegressionReturnsRawScores(t *testing.T) {
	mv := predictModel()
	mv.Model.Task = data.TaskLinearRegression
	resp, err := predict(mv, &PredictRequest{Instances: [][]float64{{1, 1, 1, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 - 1.25 + 2 + 0.125
	if resp.Labels[0] != want || resp.Scores[0] != want {
		t.Fatalf("regression label/score = %g/%g, want %g", resp.Labels[0], resp.Scores[0], want)
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	mv := predictModel()
	cases := []struct {
		name    string
		req     *PredictRequest
		wantErr string
	}{
		{"empty", &PredictRequest{}, "empty prediction request"},
		{"both", &PredictRequest{Rows: []string{"1:1"}, Instances: [][]float64{{1}}}, "both rows and instances"},
		{"oob-feature", &PredictRequest{Rows: []string{"9:1"}}, "references feature 9, model has 4"},
		{"long-instance", &PredictRequest{Instances: [][]float64{{1, 2, 3, 4, 5}}}, "has 5 features"},
		{"long-csv", &PredictRequest{Rows: []string{"1,2,3,4,5"}}, "has 5 features"},
		{"blank-row", &PredictRequest{Rows: []string{"1:1", "   "}}, "row 2 is blank"},
		{"garbage-libsvm", &PredictRequest{Rows: []string{"1:one"}}, "row 1"},
		{"garbage-csv", &PredictRequest{Rows: []string{"1,two"}}, "row 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := predict(mv, tc.req)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestPredictMatchesPerRowDot pins the batched path against the per-row
// reference over a sparse arena wide enough to cross block boundaries.
func TestPredictMatchesPerRowDot(t *testing.T) {
	d := 40
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = float64(i%7) - 2.5
	}
	mv := &ModelVersion{Name: "wide", Version: 1, Model: &ml4all.Model{
		Name: "wide", Task: data.TaskLogisticRegression, Weights: w,
	}}
	rows := make([]string, 700) // > data.DefaultBlockSize, so ≥ 2 blocks
	for i := range rows {
		var fields []string
		for k := 0; k < 5; k++ {
			fields = append(fields, fmt.Sprintf("%d:0.%03d", (i*3+k*11)%d+1, 100+(i+k)%900))
		}
		rows[i] = strings.Join(fields, " ")
	}
	resp, err := predict(mv, &PredictRequest{Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: parse each row independently, normalize it the way the
	// arena builder does, and Dot it.
	for i, line := range rows {
		_, _, idx, vals, ok, err := data.ParsePredictLIBSVM(line, nil, nil)
		if err != nil || !ok {
			t.Fatalf("row %d: %v %v", i, ok, err)
		}
		n, err := linalg.SortDedup(idx, vals)
		if err != nil {
			t.Fatal(err)
		}
		want := data.NewSparseRow(0, idx[:n], vals[:n]).Dot(w)
		if resp.Scores[i] != want {
			t.Fatalf("row %d: blocked score %g != per-row %g", i, resp.Scores[i], want)
		}
	}
}
