package serve

// End-to-end acceptance for the serving subsystem:
//
//   - a declarative job submitted over HTTP, polled to completion and
//     predicted against must reproduce the offline Train + Evaluate path
//     bit-identically (same plan, same weights, same per-row predictions);
//   - a graceful shutdown mid-job leaves a checkpoint on disk, and a fresh
//     manager on the same directory resumes it to the same final weights the
//     never-interrupted offline run produces.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/fault"
	"ml4all/internal/linalg"
	"ml4all/internal/metrics"
	"ml4all/internal/synth"
)

// servingSystem returns a System configured the way every side of these
// tests (offline reference, server, restarted server) must share: identical
// cluster, estimator and worker settings make planning and training
// deterministic across processes.
func servingSystem() *ml4all.System {
	sys := ml4all.NewSystem()
	sys.Estimator.SampleSize = 300
	sys.Estimator.TimeBudget = 2
	sys.Estimator.Seed = 1
	sys.Workers = 2
	return sys
}

// writeDataset materializes a synthetic dataset as a text file (the form
// server jobs reference) and returns its path plus the in-memory dataset.
func writeDataset(t *testing.T, spec synth.Spec) (string, *data.Dataset) {
	t.Helper()
	ds := synth.MustGenerate(spec)
	path := filepath.Join(t.TempDir(), spec.Name+".txt")
	if err := os.WriteFile(path, []byte(strings.Join(ds.Raw, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, ds
}

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches a URL and decodes the JSON response.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

func waitState(t *testing.T, get func() JobStatus, want JobState, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := get()
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job settled as %s (error %q), want %s", st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last status %+v", want, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestEndToEndServeMatchesOffline(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "e2e-train", Task: data.TaskLogisticRegression,
		N: 1200, D: 24, Density: 0.4, Noise: 0.1, Margin: 1, Seed: 5,
	})
	_, testDS := writeDataset(t, synth.Spec{
		Name: "e2e-test", Task: data.TaskLogisticRegression,
		N: 300, D: 24, Density: 0.4, Noise: 0.1, Margin: 1, Seed: 6,
	})
	script := fmt.Sprintf("m = run logistic on %s having epsilon 0.001, max iter 150;", trainPath)

	// Offline reference: the established Train path.
	ref := servingSystem()
	outs, err := ref.Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	refModel := outs[0].Model
	refReport, err := ref.Evaluate(refModel, testDS)
	if err != nil {
		t.Fatal(err)
	}

	// The server, in-process.
	srv, err := New(Config{
		Dir: t.TempDir(), Pool: 1, CheckpointEvery: time.Millisecond,
		System: servingSystem(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var submitted JobStatus
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]string{"script": script}, &submitted); code != http.StatusOK {
		t.Fatalf("submit returned %d", code)
	}
	final := waitState(t, func() JobStatus {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+submitted.ID, &st)
		return st
	}, JobCompleted, 30*time.Second)
	if final.Version != 1 {
		t.Fatalf("published version %d, want 1", final.Version)
	}
	if final.Plan != refModel.PlanName {
		t.Fatalf("server chose plan %q, offline chose %q", final.Plan, refModel.PlanName)
	}
	if final.Iteration != refModel.Iterations {
		t.Fatalf("server trained %d iterations, offline %d", final.Iteration, refModel.Iterations)
	}

	// The published weights are bit-identical to the offline run's.
	mv, ok := srv.Registry().Get("m", 0)
	if !ok {
		t.Fatal("model m not in the registry")
	}
	if !mv.Model.Weights.Equal(refModel.Weights, 0) {
		t.Fatal("served weights differ from the offline Train path")
	}

	// Model metadata endpoint.
	var meta struct {
		Latest   int         `json:"latest"`
		Versions []modelInfo `json:"versions"`
	}
	if code := getJSON(t, ts.URL+"/v1/models/m", &meta); code != http.StatusOK {
		t.Fatalf("model get returned %d", code)
	}
	if meta.Latest != 1 || len(meta.Versions) != 1 {
		t.Fatalf("metadata = %+v", meta)
	}
	if v := meta.Versions[0]; v.Task != refModel.Task.String() ||
		v.Iterations != refModel.Iterations || v.Converged != refModel.Converged ||
		v.Features != len(refModel.Weights) {
		t.Fatalf("metadata mismatch: %+v vs %+v", v, refModel)
	}

	// Predict over the raw test lines: labels and scores must equal the
	// offline per-row path exactly, and the implied report must equal
	// Evaluate's bit for bit.
	var pr PredictResponse
	if code := postJSON(t, ts.URL+"/v1/models/m/predict", PredictRequest{Rows: testDS.Raw}, &pr); code != http.StatusOK {
		t.Fatalf("predict returned %d", code)
	}
	if pr.N != testDS.N() {
		t.Fatalf("predicted %d rows, sent %d", pr.N, testDS.N())
	}
	var sse float64
	var correct int
	for i := 0; i < testDS.N(); i++ {
		row := testDS.Mat.Row(i)
		wantScore := row.Dot(refModel.Weights)
		wantLabel := metrics.PredictScore(refModel.Task, wantScore)
		if pr.Scores[i] != wantScore {
			t.Fatalf("row %d: served score %g != offline %g", i, pr.Scores[i], wantScore)
		}
		if pr.Labels[i] != wantLabel {
			t.Fatalf("row %d: served label %g != offline %g", i, pr.Labels[i], wantLabel)
		}
		d := pr.Labels[i] - testDS.Mat.Label(i)
		sse += d * d
		if pr.Labels[i] == testDS.Mat.Label(i) {
			correct++
		}
	}
	if mse := sse / float64(testDS.N()); mse != refReport.MSE {
		t.Fatalf("served MSE %g != Evaluate %g", mse, refReport.MSE)
	}
	if acc := float64(correct) / float64(testDS.N()); acc != refReport.Accuracy {
		t.Fatalf("served accuracy %g != Evaluate %g", acc, refReport.Accuracy)
	}

	// Observability endpoints.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`ml4all_requests_total{route="predict"} 1`,
		fmt.Sprintf("ml4all_predict_rows_total %d", testDS.N()),
		`ml4all_requests_total{route="jobs.submit"} 1`,
		fmt.Sprintf("ml4all_kernel_backend_info{fast_backend=%q,cpu=%q} 1",
			linalg.FastBackend(), linalg.CPUFeatures()),
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, mbody)
		}
	}
	var health struct {
		Status        string         `json:"status"`
		Models        int            `json:"models"`
		Jobs          map[string]int `json:"jobs"`
		KernelBackend string         `json:"kernel_backend"`
		CPUFeatures   string         `json:"cpu_features"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if health.Status != "ok" || health.Models != 1 || health.Jobs[string(JobCompleted)] != 1 {
		t.Fatalf("healthz = %+v", health)
	}
	if health.KernelBackend != linalg.FastBackend() || health.CPUFeatures != linalg.CPUFeatures() {
		t.Fatalf("healthz backend = %q/%q, want %q/%q",
			health.KernelBackend, health.CPUFeatures, linalg.FastBackend(), linalg.CPUFeatures())
	}
}

// TestJobResumesAcrossRestart is the kill/restart acceptance: a manager shut
// down mid-job checkpoints it; a fresh manager on the same directory resumes
// from the checkpoint and converges to exactly the weights the offline,
// never-interrupted run produces.
func TestJobResumesAcrossRestart(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "restart-train", Task: data.TaskLogisticRegression,
		N: 3000, D: 24, Density: 0.4, Noise: 0.15, Margin: 1, Seed: 7,
	})
	// Logistic gradients never vanish exactly, so with an unreachable
	// tolerance the job runs its full iteration budget — a long, steady run
	// the test can interrupt mid-flight deterministically.
	script := fmt.Sprintf("m = run logistic on %s having epsilon 0.0000000000000000001, max iter 1200;", trainPath)

	ref := servingSystem()
	outs, err := ref.Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	refModel := outs[0].Model
	if refModel.Iterations < 200 {
		t.Fatalf("restart test needs a long job; reference ran only %d iterations", refModel.Iterations)
	}

	dir := t.TempDir()
	reg1, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond}
	// Throttle the first manager's iterations so the job is reliably
	// mid-flight when the shutdown lands; the resumed manager runs unthrottled.
	throttled := cfg
	throttled.stepHook = func(string, int) { time.Sleep(200 * time.Microsecond) }
	mgr1, err := NewManager(throttled, servingSystem(), reg1)
	if err != nil {
		t.Fatal(err)
	}
	j, err := mgr1.Submit(script, "")
	if err != nil {
		t.Fatal(err)
	}

	// Let it get properly mid-flight, then shut the manager down.
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().Iteration < 25 {
		if st := j.Status(); st.State.terminal() {
			t.Fatalf("job settled prematurely: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached iteration 25: %+v", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	stopped := j.Status()
	if stopped.State != JobQueued {
		t.Fatalf("after shutdown job is %s, want re-queueable (queued); error %q", stopped.State, stopped.Error)
	}
	if stopped.Iteration >= refModel.Iterations {
		t.Fatalf("job finished (%d iterations) before the shutdown; nothing was interrupted", stopped.Iteration)
	}
	if ckpts := listCheckpoints(fault.OS, filepath.Join(dir, "jobs", j.ID)); len(ckpts) == 0 {
		t.Fatal("shutdown left no checkpoint")
	}

	// A fresh manager on the same directory resumes and finishes the job.
	reg2, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	mgr2, err := NewManager(cfg, servingSystem(), reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Shutdown(context.Background())
	j2, ok := mgr2.Job(j.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", j.ID)
	}
	final := waitState(t, j2.Status, JobCompleted, 60*time.Second)
	if final.Iteration != refModel.Iterations {
		t.Fatalf("resumed job ran %d iterations, offline ran %d", final.Iteration, refModel.Iterations)
	}
	mv, ok := reg2.Get("m", 0)
	if !ok {
		t.Fatal("resumed job published no model")
	}
	if !mv.Model.Weights.Equal(refModel.Weights, 0) {
		t.Fatal("resumed weights differ from the never-interrupted offline run")
	}
	if mv.Model.Converged != refModel.Converged {
		t.Fatalf("resumed converged=%v, offline %v", mv.Model.Converged, refModel.Converged)
	}
}
