package serve

// Observability acceptance for the serving subsystem (PR 10): a completed
// job must leave a ledger record carrying the dataset fingerprint, the
// observed T(ε) curve and the weights hash; its span timeline and live event
// stream must be served over HTTP; and the whole surface must survive a
// manager restart.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ml4all/internal/data"
	"ml4all/internal/obs"
	"ml4all/internal/synth"
)

func ctxTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func obsServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Dir: dir, Pool: 1, System: servingSystem(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestCompletedJobObservability(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "obs-train", Task: data.TaskLogisticRegression,
		N: 1200, D: 24, Density: 0.4, Noise: 0.1, Margin: 1, Seed: 5,
	})
	dir := t.TempDir()
	srv, ts := obsServer(t, dir)
	script := fmt.Sprintf("m = run logistic on %s having epsilon 0.08, max iter 400;", trainPath)

	var st JobStatus
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]string{"script": script}, &st); code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	id := st.ID
	waitState(t, func() JobStatus {
		var cur JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+id, &cur)
		return cur
	}, JobCompleted, 30*time.Second)

	// --- ledger record ---
	recs := srv.Manager().Ledger().Records()
	if len(recs) != 1 {
		t.Fatalf("ledger holds %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Kind != "job" || rec.JobID != id {
		t.Fatalf("record identity: %+v", rec)
	}
	if rec.Dataset.Fingerprint == "" || rec.Dataset.Points == 0 {
		t.Fatalf("record missing dataset identity: %+v", rec.Dataset)
	}
	if len(rec.Curve) == 0 {
		t.Fatal("record has empty observed T(ε) curve")
	}
	for i := 1; i < len(rec.Curve); i++ {
		if rec.Curve[i].Err >= rec.Curve[i-1].Err {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
	if rec.WeightsHash == "" || rec.Plan == "" || rec.Backend == "" {
		t.Fatalf("record missing plan/weights/backend: %+v", rec)
	}
	if !rec.Converged || rec.Iterations == 0 {
		t.Fatalf("record convergence state: %+v", rec)
	}
	if rec.Phases["optimize"] <= 0 || rec.Phases["train"] <= 0 {
		t.Fatalf("record phase totals missing optimize/train: %v", rec.Phases)
	}

	// --- trace timeline over HTTP ---
	var trace struct {
		Job   string     `json:"job"`
		Spans []obs.Span `json:"spans"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/trace", &trace); code != http.StatusOK {
		t.Fatalf("trace: %d", code)
	}
	byName := map[string][]obs.Span{}
	for _, sp := range trace.Spans {
		if sp.EndNanos <= sp.StartNanos {
			t.Fatalf("span %q not closed: %+v", sp.Name, sp)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range []string{"optimize", "speculate", "train"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %q span in timeline %v", name, byName)
		}
	}
	opt := byName["optimize"][0]
	for _, sp := range byName["speculate"] {
		if sp.Parent != opt.ID {
			t.Fatalf("speculate span %+v not parented to optimize %d", sp, opt.ID)
		}
	}

	// --- event log replay (long-poll mode) ---
	var page struct {
		Events []obs.Event `json:"events"`
		Closed bool        `json:"closed"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/events?once", &page); code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	if !page.Closed {
		t.Fatal("completed job's event stream not closed")
	}
	progress, terminal := 0, false
	for _, ev := range page.Events {
		switch ev.Type {
		case "progress":
			progress++
		case "state":
			if ev.State == string(JobCompleted) {
				terminal = true
			}
		}
	}
	if progress == 0 || !terminal {
		t.Fatalf("replay: %d progress events, terminal=%v (%+v)", progress, terminal, page.Events)
	}

	// --- /metrics exposes phase histograms and ledger counters ---
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`ml4all_phase_seconds_bucket{phase="train",le="+Inf"}`,
		`ml4all_phase_seconds_count{phase="optimize"}`,
		"ml4all_ledger_records_total 1",
		"ml4all_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// --- healthz carries build identity ---
	var health struct {
		Status string        `json:"status"`
		Build  obs.BuildInfo `json:"build"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Build.Version == "" || health.Build.Go == "" {
		t.Fatalf("healthz build info: %+v", health.Build)
	}

	// --- the ledger survives a restart ---
	ctx, cancel := ctxTimeout(t)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	srv2, _ := obsServer(t, dir)
	defer func() {
		ctx2, cancel2 := ctxTimeout(t)
		defer cancel2()
		srv2.Shutdown(ctx2)
	}()
	recs2 := srv2.Manager().Ledger().Records()
	if len(recs2) != 1 || recs2[0].JobID != id || len(recs2[0].Curve) != len(rec.Curve) {
		t.Fatalf("ledger after restart: %+v", recs2)
	}
	// Terminal jobs reloaded from manifests are born with a closed stream.
	j, ok := srv2.Manager().Job(id)
	if !ok {
		t.Fatal("job vanished after restart")
	}
	if !j.Events().Closed() {
		t.Fatal("reloaded terminal job's event stream not closed")
	}
}

// TestEventsSSEStreamsBeforeCompletion pins the live half of the acceptance
// criterion: an SSE subscriber sees at least one progress event while the
// job is provably not yet complete, and the stream terminates when the job
// settles. Pausing the job before attaching makes the ordering
// deterministic — the subscriber replays progress from the retained window
// while the job sits paused, then resumes it and rides the stream to the
// terminal event.
func TestEventsSSEStreamsBeforeCompletion(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "sse-train", Task: data.TaskLogisticRegression,
		N: 3000, D: 24, Density: 0.4, Noise: 0.15, Margin: 1, Seed: 7,
	})
	srv, err := New(Config{
		Dir: t.TempDir(), Pool: 1, System: servingSystem(), CheckpointEvery: -1,
		// Slow each iteration down so the job provably outlives the pause
		// request even on a loaded machine.
		stepHook: func(string, int) { time.Sleep(100 * time.Microsecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	// An unreachable epsilon keeps the job running until max iter, so the
	// pause lands mid-run.
	script := fmt.Sprintf("m = run logistic on %s having epsilon 0.0000000000000000001, max iter 2000;", trainPath)

	var st JobStatus
	postJSON(t, ts.URL+"/v1/jobs", map[string]string{"script": script}, &st)
	get := func() JobStatus {
		var cur JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &cur)
		return cur
	}
	waitState(t, get, JobRunning, 30*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for get().Iteration < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("no progress: %+v", get())
		}
		time.Sleep(time.Millisecond)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/pause", nil, nil); code != http.StatusOK {
		t.Fatalf("pause: %d", code)
	}
	waitState(t, get, JobPaused, 30*time.Second)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	var sawProgress, sawTerminal, resumed bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: progress" && !resumed {
			// A progress frame delivered while the job is paused: it was
			// provably emitted (and observed) before completion.
			sawProgress = true
			if code := postJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/resume", nil, nil); code != http.StatusOK {
				t.Fatalf("resume: %d", code)
			}
			resumed = true
		}
		if strings.Contains(line, `"state":"completed"`) {
			sawTerminal = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawProgress {
		t.Fatal("no progress event observed before completion")
	}
	if !sawTerminal {
		t.Fatal("stream ended without the terminal state event")
	}
}

func TestEventsEndpointErrors(t *testing.T) {
	_, ts := obsServer(t, t.TempDir())
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events?once")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
	var st JobStatus
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "err-train", Task: data.TaskLogisticRegression,
		N: 300, D: 10, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 3,
	})
	script := fmt.Sprintf("m = run logistic on %s having epsilon 0.01, max iter 50;", trainPath)
	postJSON(t, ts.URL+"/v1/jobs", map[string]string{"script": script}, &st)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?once&after=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad after param: %d", resp.StatusCode)
	}
}
