package serve

// Crash-safety acceptance for the durability work:
//
//   - TestCrashpointSweep simulates a process kill at EVERY filesystem
//     injection point the checkpoint, manifest and registry paths go through
//     — during the run, again during the recovery that follows, and then on
//     a clean restart — and asserts the job still converges to weights
//     bit-identical to a never-interrupted run.
//   - TestCorruptNewestCheckpointFallsBack corrupts the newest retained
//     checkpoint on disk and pins that recovery detects it by checksum and
//     resumes from the next-older frame.
//   - TestCorruptModelVersionFallsBack corrupts the latest published model
//     file and pins that the registry entombs it and serves the previous
//     version, with the version number staying burned.
//   - TestJobPanicFailsJobNotProcess pins the serving-side panic boundary:
//     a panic inside the job drive fails that job with the stack captured,
//     and the manager keeps running other jobs.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/fault"
	"ml4all/internal/synth"
)

// crashScript builds a deterministic multi-iteration job over a synthetic
// dataset. The unreachable tolerance makes the job run its full iteration
// budget, so there is always a mid-flight window to crash in.
func crashScript(t *testing.T, name string, seed int64) string {
	t.Helper()
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: name, Task: data.TaskLogisticRegression,
		N: 1000, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: seed,
	})
	return fmt.Sprintf("m = run logistic on %s having epsilon 0.0000000000000000001, max iter 120;", trainPath)
}

// crashReference trains the script offline, uninterrupted — the weights every
// crashed-and-recovered run must reproduce bitwise.
func crashReference(t *testing.T, script string) *ml4all.Model {
	t.Helper()
	outs, err := servingSystem().Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	return outs[0].Model
}

// waitCrashOrSettle polls until the injector simulates process death, every
// job reaches a terminal state, or the deadline passes (not an error: some
// points simply never fire in a given phase).
func waitCrashOrSettle(mgr *Manager, inj *fault.Injector, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if inj.Crashed() {
			return
		}
		settled := true
		for _, st := range mgr.List() {
			if !st.State.terminal() {
				settled = false
				break
			}
		}
		if settled {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// stopManager shuts a possibly-crashed manager down, ignoring the error: a
// crashed injector fails the shutdown checkpoints by design.
func stopManager(mgr *Manager) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	mgr.Shutdown(ctx)
}

// TestCrashpointSweep is the capstone: for every named injection point on the
// checkpoint, manifest and registry seams, phase 1 arms a kill at that point
// while a job is mid-flight, phase 2 arms the same kill during the recovery
// that follows, and phase 3 restarts cleanly — after which the published
// weights must be bit-identical to the uninterrupted reference. The
// submission ack is the durability boundary: faults arm only after Submit
// returns, because a job killed before its first manifest persist was never
// acknowledged and owes the client nothing.
func TestCrashpointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crashpoint sweep is long")
	}
	script := crashScript(t, "sweep-train", 21)
	refModel := crashReference(t, script)

	var points []string
	for _, tag := range []string{"ckpt", "manifest", "registry"} {
		points = append(points, fault.FSPoints(tag)...)
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cfg := ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond}

			// Phase 1: kill mid-run. The step hook throttles iterations so
			// the job is reliably mid-flight when the fault arms.
			inj1 := fault.New()
			reg1, err := OpenRegistryWith(filepath.Join(dir, "models"), inj1, nil)
			if err != nil {
				t.Fatal(err)
			}
			cfg1 := cfg
			cfg1.Fault = inj1
			cfg1.stepHook = func(string, int) { time.Sleep(100 * time.Microsecond) }
			mgr1, err := NewManager(cfg1, servingSystem(), reg1)
			if err != nil {
				t.Fatal(err)
			}
			j, err := mgr1.Submit(script, "")
			if err != nil {
				t.Fatal(err)
			}
			inj1.Arm(fault.Crash(point))
			waitCrashOrSettle(mgr1, inj1, 30*time.Second)
			stopManager(mgr1)

			// Phase 2: the same kill armed from the start of recovery, so
			// crashes inside replay (manifest reads, checkpoint scans,
			// re-publish) are exercised too. Failing to even construct the
			// manager is a legitimate simulated death.
			inj2 := fault.New()
			inj2.Arm(fault.Crash(point))
			if reg2, err := OpenRegistryWith(filepath.Join(dir, "models"), inj2, nil); err == nil {
				cfg2 := cfg
				cfg2.Fault = inj2
				if mgr2, err := NewManager(cfg2, servingSystem(), reg2); err == nil {
					waitCrashOrSettle(mgr2, inj2, 30*time.Second)
					stopManager(mgr2)
				} else if !errors.Is(err, fault.ErrCrash) {
					t.Fatalf("phase-2 manager failed with a non-crash error: %v", err)
				}
			} else if !errors.Is(err, fault.ErrCrash) {
				t.Fatalf("phase-2 registry failed with a non-crash error: %v", err)
			}

			// Phase 3: clean restart — recovery must finish the job.
			reg3, err := OpenRegistry(filepath.Join(dir, "models"))
			if err != nil {
				t.Fatal(err)
			}
			mgr3, err := NewManager(cfg, servingSystem(), reg3)
			if err != nil {
				t.Fatal(err)
			}
			defer stopManager(mgr3)
			j3, ok := mgr3.Job(j.ID)
			if !ok {
				t.Fatalf("job %s lost across the crashes", j.ID)
			}
			final := waitState(t, j3.Status, JobCompleted, 60*time.Second)
			if final.Iteration != refModel.Iterations {
				t.Fatalf("recovered job ran %d iterations, reference ran %d", final.Iteration, refModel.Iterations)
			}
			mv, ok := reg3.Get("m", 0)
			if !ok {
				t.Fatal("recovered job published no model")
			}
			if !mv.Model.Weights.Equal(refModel.Weights, 0) {
				t.Fatalf("weights after crash at %s differ from the uninterrupted run", point)
			}
		})
	}
}

// runToCheckpointedStop drives a throttled job past a few checkpoints and
// shuts the manager down, leaving a re-queueable job with retained
// checkpoint frames on disk. Returns the job id.
func runToCheckpointedStop(t *testing.T, dir, script string) string {
	t.Helper()
	reg, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond}
	cfg.stepHook = func(string, int) { time.Sleep(200 * time.Microsecond) }
	mgr, err := NewManager(cfg, servingSystem(), reg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := mgr.Submit(script, "")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	jobDir := filepath.Join(dir, "jobs", j.ID)
	for j.Status().Iteration < 25 || len(listCheckpoints(fault.OS, jobDir)) < 2 {
		if st := j.Status(); st.State.terminal() {
			t.Fatalf("job settled prematurely: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never accumulated checkpoints: %+v", j.Status())
		}
		time.Sleep(time.Millisecond)
	}
	stopManager(mgr)
	if st := j.Status(); st.State != JobQueued {
		t.Fatalf("after shutdown job is %s, want queued", st.State)
	}
	return j.ID
}

// TestCorruptNewestCheckpointFallsBack pins checksum-verified recovery: when
// the newest retained checkpoint is torn on disk, restart detects it (CRC
// mismatch, counted), falls back to the next-older frame, and still finishes
// with the uninterrupted run's exact weights.
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	script := crashScript(t, "corrupt-ckpt-train", 22)
	refModel := crashReference(t, script)
	dir := t.TempDir()
	id := runToCheckpointedStop(t, dir, script)

	jobDir := filepath.Join(dir, "jobs", id)
	ckpts := listCheckpoints(fault.OS, jobDir)
	if len(ckpts) < 2 {
		t.Fatalf("need ≥2 retained checkpoints to fall back, have %v", ckpts)
	}
	newest := filepath.Join(jobDir, ckpts[0])
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // tear the payload; the CRC must catch it
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	counters := newCounters()
	reg, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond, Counters: counters}, servingSystem(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(mgr)
	j, ok := mgr.Job(id)
	if !ok {
		t.Fatalf("job %s lost", id)
	}
	waitState(t, j.Status, JobCompleted, 60*time.Second)
	mv, ok := reg.Get("m", 0)
	if !ok {
		t.Fatal("no model published")
	}
	if !mv.Model.Weights.Equal(refModel.Weights, 0) {
		t.Fatal("weights after checkpoint-corruption fallback differ from the uninterrupted run")
	}
	ft := counters.FaultTotals()
	if ft.CheckpointsCorrupt == 0 {
		t.Fatal("corrupted checkpoint was not counted as discarded")
	}
	if ft.CheckpointsVerified == 0 {
		t.Fatal("fallback frame was not counted as verified")
	}
}

// TestCorruptNewestCheckpointTruncated is the torn-write shape of the same
// fallback: the newest frame is cut short rather than bit-flipped.
func TestCorruptNewestCheckpointTruncated(t *testing.T) {
	script := crashScript(t, "truncate-ckpt-train", 23)
	refModel := crashReference(t, script)
	dir := t.TempDir()
	id := runToCheckpointedStop(t, dir, script)

	jobDir := filepath.Join(dir, "jobs", id)
	ckpts := listCheckpoints(fault.OS, jobDir)
	newest := filepath.Join(jobDir, ckpts[0])
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	reg, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond}, servingSystem(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(mgr)
	j, ok := mgr.Job(id)
	if !ok {
		t.Fatalf("job %s lost", id)
	}
	waitState(t, j.Status, JobCompleted, 60*time.Second)
	mv, ok := reg.Get("m", 0)
	if !ok {
		t.Fatal("no model published")
	}
	if !mv.Model.Weights.Equal(refModel.Weights, 0) {
		t.Fatal("weights after truncated-checkpoint fallback differ from the uninterrupted run")
	}
}

// TestCorruptModelVersionFallsBack pins the registry's corruption fallback:
// a latest version whose file fails its checksum is entombed on open, the
// previous good version serves as latest, and the burned number is never
// reissued.
func TestCorruptModelVersionFallsBack(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := &ml4all.Model{Task: data.TaskLinearRegression, Weights: []float64{1, 2, 3}}
	m2 := &ml4all.Model{Task: data.TaskLinearRegression, Weights: []float64{4, 5, 6}}
	if _, err := reg.Publish("m", m1); err != nil {
		t.Fatal(err)
	}
	mv2, err := reg.Publish("m", m2)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(mv2.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(mv2.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	counters := newCounters()
	reg2, err := OpenRegistryWith(dir, nil, counters)
	if err != nil {
		t.Fatal(err)
	}
	latest, ok := reg2.Get("m", 0)
	if !ok {
		t.Fatal("corruption of v2 took the whole model down")
	}
	if latest.Version != 1 || !latest.Model.Weights.Equal(m1.Weights, 0) {
		t.Fatalf("latest after corruption = v%d, want fallback to v1", latest.Version)
	}
	if counters.FaultTotals().RegistryFallbacks != 1 {
		t.Fatalf("registry fallbacks = %d, want 1", counters.FaultTotals().RegistryFallbacks)
	}
	if _, err := os.Stat(filepath.Join(dir, "m", ".corrupt-"+versionFile(2))); err != nil {
		t.Fatalf("corrupt version was not entombed: %v", err)
	}
	// The burned number is not reissued: the next publish is v3, and a
	// further reopen still refuses to resurrect v2.
	mv3, err := reg2.Publish("m", m2)
	if err != nil {
		t.Fatal(err)
	}
	if mv3.Version != 3 {
		t.Fatalf("publish after entombment got v%d, want v3", mv3.Version)
	}
	reg3, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg3.Get("m", 2); ok {
		t.Fatal("entombed version v2 came back from the dead")
	}
}

// TestJobPanicFailsJobNotProcess pins the manager-level panic boundary: a
// panic in the job drive (here the step hook, standing in for any UDF or
// publish-path blow-up) fails that one job with the panic value and stack in
// its status, while the pool keeps serving other jobs.
func TestJobPanicFailsJobNotProcess(t *testing.T) {
	script := crashScript(t, "panic-train", 24)
	dir := t.TempDir()
	reg, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	counters := newCounters()
	cfg := ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: -1, Counters: counters}
	cfg.stepHook = func(id string, iter int) {
		if id == "job-0000" && iter == 5 {
			panic("operator exploded at iteration 5")
		}
	}
	mgr, err := NewManager(cfg, servingSystem(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(mgr)

	j1, err := mgr.Submit(script, "first")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !j1.Status().State.terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("panicking job never settled: %+v", j1.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := j1.Status()
	if st.State != JobFailed {
		t.Fatalf("panicking job settled as %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panicked") || !strings.Contains(st.Error, "operator exploded at iteration 5") {
		t.Fatalf("job error does not surface the panic: %q", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("job error carries no stack: %q", st.Error)
	}
	if counters.FaultTotals().RecoveredPanics == 0 {
		t.Fatal("recovered panic was not counted")
	}

	// The process — and the same pool slot — keeps working.
	j2, err := mgr.Submit(script, "second")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2.Status, JobCompleted, 60*time.Second)
	if _, ok := reg.Get("second", 0); !ok {
		t.Fatal("follow-up job published no model")
	}
}

// TestManifestTempsSwept pins the manifest-side .tmp sweep: stale temps
// stranded in a job directory by a crash are removed on the next startup.
func TestManifestTempsSwept(t *testing.T) {
	script := crashScript(t, "sweep-manifest-train", 25)
	dir := t.TempDir()
	id := runToCheckpointedStop(t, dir, script)

	jobDir := filepath.Join(dir, "jobs", id)
	stale := filepath.Join(jobDir, ".tmp-manifest.json-123456")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond}, servingSystem(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopManager(mgr)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale manifest temp survived startup: %v", err)
	}
	j, ok := mgr.Job(id)
	if !ok {
		t.Fatalf("job %s lost", id)
	}
	waitState(t, j.Status, JobCompleted, 60*time.Second)
}
