package serve

// Graceful-degradation acceptance: deadline propagation through the predict
// pipeline (including callers parked in a coalesced batch), request-body
// caps, the recovering 503 gate, and the hardened http.Server edges.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPredictDeadlineWhileParked pins the coalescer abandonment protocol: a
// call parked in a batch whose window never closes abandons its slot when
// its context expires — returning 503 + Retry-After instead of blocking —
// and the coalescer recycles the abandoned arena without scoring it, so the
// next call sees a clean pipeline.
func TestPredictDeadlineWhileParked(t *testing.T) {
	counters := newCounters()
	p := NewPredictor(
		CoalesceConfig{Force: true, Window: time.Hour, MaxRows: 1 << 20},
		AdmissionConfig{Disabled: true}, counters)
	defer p.Close()
	p.co.always = true // park even a lone caller
	mv := regressionModel()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	resp := AcquirePredictResponse()
	err := p.Predict(ctx, mv, &PredictRequest{Instances: [][]float64{{1, 2, 3, 4}}}, resp)
	resp.Release()
	if err == nil {
		t.Fatal("parked call with expired deadline returned nil")
	}
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusServiceUnavailable {
		t.Fatalf("deadline error = %v, want 503 httpError", err)
	}
	if he.retryAfter <= 0 {
		t.Fatal("deadline 503 carries no Retry-After")
	}
	if got := counters.FaultTotals().DeadlineExpired; got != 1 {
		t.Fatalf("deadline-expired counter = %d, want 1", got)
	}

	// The abandoned batch flushes empty; the pipeline stays healthy — an
	// unparked follow-up call (after Close, the direct path) scores fine.
	p.Close()
	resp2 := AcquirePredictResponse()
	defer resp2.Release()
	if err := p.Predict(context.Background(), mv, &PredictRequest{Instances: [][]float64{{1, 2, 3, 4}}}, resp2); err != nil {
		t.Fatalf("predict after abandoned call: %v", err)
	}
	if resp2.N != 1 {
		t.Fatalf("follow-up scored %d rows, want 1", resp2.N)
	}
}

// TestPredictExpiredContextRejectedUpfront pins the entry check: a context
// already expired at the call returns 503 before any parsing or admission.
func TestPredictExpiredContextRejectedUpfront(t *testing.T) {
	p := NewPredictor(CoalesceConfig{Disabled: true}, AdmissionConfig{Disabled: true}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := AcquirePredictResponse()
	defer resp.Release()
	err := p.Predict(ctx, regressionModel(), &PredictRequest{Instances: [][]float64{{1}}}, resp)
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusServiceUnavailable {
		t.Fatalf("expired-context predict = %v, want 503 httpError", err)
	}
}

// TestBodyCapReturns413 pins the request-body cap: a predict body over
// Config.MaxBodyBytes is refused with 413, and a reasonable one still works.
func TestBodyCapReturns413(t *testing.T) {
	srv, err := New(Config{
		Dir: t.TempDir(), Pool: 1, System: servingSystem(),
		MaxBodyBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if _, err := srv.Registry().Publish("m", regressionModel().Model); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := fmt.Sprintf(`{"instances":[[%s1]]}`, strings.Repeat("1,", 600))
	resp, err := http.Post(ts.URL+"/v1/models/m/predict", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d, want 413", resp.StatusCode)
	}

	// Under the cap, the same route still scores.
	small := []byte(`{"instances":[[1,2]]}`)
	resp2, err := http.Post(ts.URL+"/v1/models/m/predict", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("small body returned %d, want 200", resp2.StatusCode)
	}
}

// TestHandlerPanicReturns500 pins the HTTP panic boundary: a panic inside a
// handler becomes a 500 (with the recovered-panic counter bumped) and the
// server keeps answering.
func TestHandlerPanicReturns500(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Pool: 1, System: servingSystem()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	h := srv.wrap("boom", func(r *http.Request) (any, error) {
		panic("handler exploded")
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", h)
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out map[string]string
	if code := getJSON(t, ts.URL+"/boom", &out); code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", code)
	}
	if !strings.Contains(out["error"], "handler exploded") {
		t.Fatalf("500 body does not surface the panic: %v", out)
	}
	if got := srv.counters.FaultTotals().RecoveredPanics; got != 1 {
		t.Fatalf("recovered-panics counter = %d, want 1", got)
	}
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz after panic returned %d", code)
	}
}

// TestSubmitShedsWhileRecovering pins the degraded-restart mode: while the
// manager replays jobs interrupted by a crash, new submissions get 503 +
// Retry-After; once replay finishes they are accepted again. Predict-side
// routes stay up throughout.
func TestSubmitShedsWhileRecovering(t *testing.T) {
	script := crashScript(t, "recovering-train", 26)
	dir := t.TempDir()

	// Interrupt a manager holding two jobs on a one-slot pool: job A
	// mid-flight with checkpoints, job B still queued. Both are resumable,
	// so the restarted manager recovers with a backlog.
	reg1, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond}
	cfg1.stepHook = func(string, int) { time.Sleep(200 * time.Microsecond) }
	mgr1, err := NewManager(cfg1, servingSystem(), reg1)
	if err != nil {
		t.Fatal(err)
	}
	jA, err := mgr1.Submit(script, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr1.Submit(script, "b"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for jA.Status().Iteration < 10 {
		if st := jA.Status(); st.State.terminal() {
			t.Fatalf("job settled prematurely: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never got mid-flight: %+v", jA.Status())
		}
		time.Sleep(time.Millisecond)
	}
	stopManager(mgr1)

	// Restart with the first replayed step gated: job A reopens (one of two
	// replays done) and then blocks, holding the manager in Recovering for
	// as long as the probe needs. The Server is assembled in-package because
	// the gate hook is test-only.
	reg, err := OpenRegistry(filepath.Join(dir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()
	cfg := ManagerConfig{Dir: dir, Pool: 1, CheckpointEvery: time.Millisecond}
	cfg.stepHook = func(string, int) { <-release }
	mgr, err := NewManager(cfg, servingSystem(), reg)
	if err != nil {
		t.Fatal(err)
	}
	counters := newCounters()
	srv := &Server{
		cfg:       Config{Dir: dir, Pool: 1},
		manager:   mgr,
		registry:  reg,
		counters:  counters,
		predictor: NewPredictor(CoalesceConfig{Disabled: true}, AdmissionConfig{Disabled: true}, counters),
		maxBody:   defaultMaxBodyBytes,
		started:   time.Now(),
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if !mgr.Recovering() {
		t.Fatal("manager with an interrupted job on disk does not report recovering")
	}
	raw, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"script":%q}`, script))))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during recovery returned %d, want 503", raw.StatusCode)
	}
	if raw.Header.Get("Retry-After") == "" {
		t.Fatal("recovery 503 carries no Retry-After")
	}
	// Non-submission routes keep serving while degraded.
	var jobs map[string]any
	if code := getJSON(t, ts.URL+"/v1/jobs", &jobs); code != http.StatusOK {
		t.Fatalf("job listing during recovery returned %d", code)
	}

	// Release the gate; replay drains and submissions flow again.
	unblock()
	deadline = time.Now().Add(60 * time.Second)
	for mgr.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("manager never finished recovering")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var st JobStatus
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]string{"script": script}, &st); code != http.StatusOK {
		t.Fatalf("submit after recovery returned %d", code)
	}
}

// TestHTTPServerHardenedEdges pins that the stock listener carries the
// slow-client protections the ops docs promise.
func TestHTTPServerHardenedEdges(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Pool: 1, System: servingSystem()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	hs := srv.HTTPServer(":0")
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 ||
		hs.IdleTimeout <= 0 || hs.MaxHeaderBytes <= 0 {
		t.Fatalf("HTTPServer leaves an edge unbounded: %+v", hs)
	}
	if hs.Handler == nil || hs.Addr != ":0" {
		t.Fatal("HTTPServer not wired to the service handler")
	}
}
