package serve

// Serving hot-path benchmarks, gated in CI by cmd/benchgate against
// BENCH_baseline.txt: BenchmarkServePredict pins the pooled direct path at 0
// allocs/op (any per-request garbage regresses the gate immediately);
// BenchmarkServePredictCoalesced smoke-tests the coalesced pipeline under
// closed-loop parallel callers (ns/op gated, allocs not pinned — channel
// parking is scheduler-dependent).

import (
	"context"
	"fmt"
	"testing"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

// benchModel builds a d-dimensional model with the deterministic weight
// pattern the offline predict benchmarks use.
func benchModel(d int) *ModelVersion {
	w := make(linalg.Vector, d)
	for i := range w {
		w[i] = float64(i%13)/13 - 0.5
	}
	return &ModelVersion{
		Name: "bench", Version: 1,
		Model: &ml4all.Model{Name: "bench", Task: data.TaskSVM, Weights: w},
	}
}

// benchRequest builds a small mixed-sparsity LIBSVM request — the
// parse-heavy shape serving traffic takes.
func benchRequest(rows, d int) *PredictRequest {
	lines := make([]string, rows)
	for i := range lines {
		lines[i] = fmt.Sprintf("%d:%g %d:%g %d:%g",
			i%d+1, 0.25+float64(i), (i+7)%d+1, -1.5, (i+29)%d+1, float64(i%5))
	}
	return &PredictRequest{Rows: lines}
}

// BenchmarkServePredict measures the steady-state direct predict path:
// pooled parse, admission, one kernel pass, pooled response. Must stay at 0
// allocs/op — every pool has warmed before the timer starts.
func BenchmarkServePredict(b *testing.B) {
	p := NewPredictor(CoalesceConfig{Disabled: true}, AdmissionConfig{}, newCounters())
	mv := benchModel(128)
	req := benchRequest(8, 128)
	for i := 0; i < 16; i++ { // warm every pool class the path touches
		resp := AcquirePredictResponse()
		if err := p.Predict(context.Background(), mv, req, resp); err != nil {
			b.Fatal(err)
		}
		resp.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := AcquirePredictResponse()
		if err := p.Predict(context.Background(), mv, req, resp); err != nil {
			b.Fatal(err)
		}
		resp.Release()
	}
}

// BenchmarkServePredictCoalesced measures the coalesced pipeline: parallel
// closed-loop callers against one model, merged into shared kernel passes.
func BenchmarkServePredictCoalesced(b *testing.B) {
	c := newCounters()
	p := NewPredictor(CoalesceConfig{Force: true}, AdmissionConfig{}, c)
	defer p.Close()
	mv := benchModel(128)
	req := benchRequest(8, 128)
	b.SetParallelism(8) // 8×GOMAXPROCS closed-loop callers
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp := AcquirePredictResponse()
			if err := p.Predict(context.Background(), mv, req, resp); err != nil {
				b.Fatal(err)
			}
			resp.Release()
		}
	})
}
