package serve

// Request-coalescing pipeline: concurrent predict calls merged into shared
// kernel passes must return bitwise the scores of the uncoalesced path, both
// flush triggers (window expiry, max-rows) must fire, admission control must
// refuse work past the in-flight budget with 429 + Retry-After, and shutdown
// must drain in-flight traffic cleanly. The tests force coalescing through
// the unexported `always` knob so batching is deterministic rather than a
// scheduling accident.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

func regressionModel() *ModelVersion {
	return &ModelVersion{
		Name: "r", Version: 1,
		Model: &ml4all.Model{
			Name: "r", Task: data.TaskLinearRegression,
			Weights: linalg.Vector{1, -2, 0.75, 0.3},
		},
	}
}

// coalesceReq builds a deterministic request varying by (g, i): the three
// accepted forms, sparse and dense, exact and fast tiers.
func coalesceReq(g, i int) *PredictRequest {
	v := func(k int) float64 { return float64((g*31+i*7+k)%19)/19 - 0.5 }
	fast := g%2 == 1
	switch (g + i) % 3 {
	case 0: // LIBSVM sparse rows
		return &PredictRequest{Rows: []string{
			fmt.Sprintf("1:%g 3:%g", v(0), v(1)),
			fmt.Sprintf("2:%g 4:%g", v(2), v(3)),
		}, FastMath: fast}
	case 1: // dense CSV rows
		return &PredictRequest{Rows: []string{
			fmt.Sprintf("%g,%g,%g,%g", v(0), v(1), v(2), v(3)),
		}, FastMath: fast}
	default: // dense JSON instances, one short row zero-padded
		return &PredictRequest{Instances: [][]float64{
			{v(0), v(1)},
			{v(1), v(2), v(3), v(0)},
		}, FastMath: fast}
	}
}

// sameBits fails the test unless got and want are bitwise-identical float
// slices.
func sameBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d values, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: got %v (bits %x), want %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestCoalescedMatchesDirectBitwise hammers one predictor from concurrent
// goroutines across mixed models, request forms and kernel tiers, comparing
// every coalesced response bitwise against the direct (uncoalesced) path.
func TestCoalescedMatchesDirectBitwise(t *testing.T) {
	models := []*ModelVersion{predictModel(), regressionModel()}
	p := NewPredictor(CoalesceConfig{Window: 2 * time.Millisecond, MaxRows: 64, Force: true},
		AdmissionConfig{Disabled: true}, newCounters())
	p.co.always = true
	defer p.Close()

	const goroutines, iters = 8, 25
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mv := models[(g+i)%len(models)]
				req := coalesceReq(g, i)
				want, err := predict(mv, req) // direct reference scoring
				if err != nil {
					errc <- fmt.Errorf("direct g%d i%d: %w", g, i, err)
					return
				}
				got := AcquirePredictResponse()
				if err := p.Predict(context.Background(), mv, req, got); err != nil {
					errc <- fmt.Errorf("coalesced g%d i%d: %w", g, i, err)
					return
				}
				for j := range want.Scores {
					if math.Float64bits(got.Scores[j]) != math.Float64bits(want.Scores[j]) ||
						math.Float64bits(got.Labels[j]) != math.Float64bits(want.Labels[j]) {
						errc <- fmt.Errorf("g%d i%d row %d: coalesced (%v, %v) != direct (%v, %v)",
							g, i, j, got.Scores[j], got.Labels[j], want.Scores[j], want.Labels[j])
						return
					}
				}
				if got.N != want.N || got.Model != want.Model || got.Version != want.Version || got.Task != want.Task {
					errc <- fmt.Errorf("g%d i%d: metadata mismatch: %+v vs %+v", g, i, got, want)
					return
				}
				got.Release()
				want.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// pendingRows reports how many rows sit in c's open batches.
func pendingRows(c *coalescer) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, b := range c.pending {
		total += b.rows
	}
	return total
}

// waitUntil polls cond to true within a deadline.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesceMaxRowsFlush holds the window open for an hour so only the
// max-rows trigger can flush: the call that fills the batch scores it
// in-line, and each caller gets exactly its own rows back.
func TestCoalesceMaxRowsFlush(t *testing.T) {
	c := newCounters()
	p := NewPredictor(CoalesceConfig{Window: time.Hour, MaxRows: 4, Force: true},
		AdmissionConfig{Disabled: true}, c)
	p.co.always = true
	defer p.Close()
	mv := predictModel()

	reqA := &PredictRequest{Instances: [][]float64{{1, 2, 3, 4}, {0.5, 0, -1, 2}}}
	reqB := &PredictRequest{Instances: [][]float64{{-1, -2, -3, -4}, {4, 3, 2, 1}}}
	wantA, err := predict(mv, reqA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := predict(mv, reqB)
	if err != nil {
		t.Fatal(err)
	}

	respA := AcquirePredictResponse()
	done := make(chan error, 1)
	go func() { done <- p.Predict(context.Background(), mv, reqA, respA) }()
	waitUntil(t, "first call to open a batch", func() bool { return pendingRows(p.co) == 2 })

	respB := AcquirePredictResponse()
	if err := p.Predict(context.Background(), mv, reqB, respB); err != nil { // fills the batch to 4 rows
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("max-rows flush did not release the waiting caller")
	}

	sameBits(t, "caller A scores", respA.Scores, wantA.Scores)
	sameBits(t, "caller B scores", respB.Scores, wantB.Scores)
	if got := c.coalescedBatches.Load(); got != 1 {
		t.Fatalf("coalesced batches = %d, want 1", got)
	}
	if got := c.coalescedRows.Load(); got != 4 {
		t.Fatalf("coalesced rows = %d, want 4", got)
	}
}

// TestCoalesceWindowFlush forces a lone call through the coalescer: nothing
// can fill its batch, so only the background window flusher can release it.
func TestCoalesceWindowFlush(t *testing.T) {
	c := newCounters()
	p := NewPredictor(CoalesceConfig{Window: 5 * time.Millisecond, MaxRows: 1 << 20, Force: true},
		AdmissionConfig{Disabled: true}, c)
	p.co.always = true
	defer p.Close()
	mv := predictModel()

	req := &PredictRequest{Rows: []string{"1:1 2:1"}}
	want, err := predict(mv, req)
	if err != nil {
		t.Fatal(err)
	}
	resp := AcquirePredictResponse()
	errch := make(chan error, 1)
	go func() { errch <- p.Predict(context.Background(), mv, req, resp) }()
	select {
	case err := <-errch:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("window flush did not fire")
	}
	sameBits(t, "window-flushed scores", resp.Scores, want.Scores)
	if got := c.coalescedBatches.Load(); got != 0 {
		t.Fatalf("a single-call batch counted as coalesced (%d)", got)
	}
}

// TestAdmissionRejectsWhenSaturated saturates the in-flight row budget with
// a call parked in an hour-long window, then checks the next call is refused
// with 429 + Retry-After while the parked rows still drain to completion.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	c := newCounters()
	p := NewPredictor(CoalesceConfig{Window: time.Hour, MaxRows: 1 << 20, Force: true},
		AdmissionConfig{MaxInFlightRows: 8}, c)
	p.co.always = true
	mv := predictModel()

	sixRows := func(base float64) *PredictRequest {
		ins := make([][]float64, 6)
		for i := range ins {
			ins[i] = []float64{base + float64(i), 1, -1, 0.5}
		}
		return &PredictRequest{Instances: ins}
	}
	reqA := sixRows(1)
	wantA, err := predict(mv, reqA)
	if err != nil {
		t.Fatal(err)
	}

	respA := AcquirePredictResponse()
	done := make(chan error, 1)
	go func() { done <- p.Predict(context.Background(), mv, reqA, respA) }()
	waitUntil(t, "rows to be admitted", func() bool { return c.inFlightRows.Load() == 6 })

	respB := AcquirePredictResponse()
	err = p.Predict(context.Background(), mv, sixRows(100), respB) // 6+6 > 8: refused
	var he *httpError
	if err == nil {
		t.Fatal("over-budget call was admitted")
	}
	if !errors.As(err, &he) || he.status != http.StatusTooManyRequests {
		t.Fatalf("got %v, want a 429 httpError", err)
	}
	if he.retryAfter < time.Second {
		t.Fatalf("retryAfter = %v, want >= 1s", he.retryAfter)
	}
	if got := c.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	respB.Release()

	p.Close() // flushes the parked batch: caller A completes
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	sameBits(t, "drained scores", respA.Scores, wantA.Scores)
	waitUntil(t, "in-flight gauge to drain", func() bool { return c.inFlightRows.Load() == 0 })
}

// TestAdmitterIdleAlwaysAdmits: a request larger than the whole budget must
// be admitted when the server is idle — the limit can never wedge traffic
// out entirely.
func TestAdmitterIdleAlwaysAdmits(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxInFlightRows: 4}, nil)
	if _, ok := a.admit(100); !ok {
		t.Fatal("idle admitter refused the first request")
	}
	if _, ok := a.admit(1); ok {
		t.Fatal("saturated admitter accepted more work")
	}
	a.done(100)
	if _, ok := a.admit(1); !ok {
		t.Fatal("drained admitter refused a small request")
	}
	a.done(1)
}

// TestAdmitterLatencyDerivedLimit: once a service rate is observed, the
// effective limit tightens to rate·TargetLatency below the hard cap.
func TestAdmitterLatencyDerivedLimit(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxInFlightRows: 1 << 20, TargetLatency: 10 * time.Millisecond}, nil)
	a.observeRate(1000, time.Second) // 1000 rows/s -> limit 10 rows
	if got := a.limit(); got != 10 {
		t.Fatalf("limit = %d, want 10", got)
	}
	if _, ok := a.admit(5); !ok {
		t.Fatal("under-limit request refused")
	}
	retry, ok := a.admit(2000)
	if ok {
		t.Fatal("admitted 2000 rows against a 10-row limit")
	}
	// Backlog of ~1995 rows over the limit at 1000 rows/s needs ~2s.
	if retry < time.Second || retry > 10*time.Second {
		t.Fatalf("retryAfter = %v, want ~2s", retry)
	}
	a.done(5)
}

// TestRetryAfterHeader checks the HTTP layer surfaces an admission refusal
// as 429 with a whole-seconds Retry-After header.
func TestRetryAfterHeader(t *testing.T) {
	s := &Server{counters: newCounters()}
	h := s.wrap("x", func(r *http.Request) (any, error) {
		return nil, retryError(90*time.Second, 5)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "90" {
		t.Fatalf("Retry-After = %q, want \"90\"", got)
	}
}

// TestPredictorCloseDrains runs predict traffic through a closing predictor:
// every call must still succeed (post-close calls score directly) and the
// in-flight gauge must return to zero.
func TestPredictorCloseDrains(t *testing.T) {
	c := newCounters()
	p := NewPredictor(CoalesceConfig{Window: time.Millisecond, Force: true}, AdmissionConfig{}, c)
	p.co.always = true
	mv := predictModel()

	const goroutines, iters = 6, 20
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := coalesceReq(g, i)
				resp := AcquirePredictResponse()
				if err := p.Predict(context.Background(), mv, req, resp); err != nil {
					errc <- fmt.Errorf("g%d i%d: %w", g, i, err)
					return
				}
				resp.Release()
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	p.Close() // races the traffic on purpose
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := c.inFlightRows.Load(); got != 0 {
		t.Fatalf("in-flight rows = %d after drain, want 0", got)
	}
}

// TestServerShutdownDrainsPredictTraffic exercises the full Server shutdown
// path with predict calls in flight: Shutdown must flush the coalescer and
// drain the manager without failing a single call.
func TestServerShutdownDrainsPredictTraffic(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir(), Coalesce: CoalesceConfig{Window: time.Millisecond, Force: true}})
	if err != nil {
		t.Fatal(err)
	}
	mv, err := srv.Registry().Publish("m", predictModel().Model)
	if err != nil {
		t.Fatal(err)
	}
	srv.predictor.co.always = true

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp := AcquirePredictResponse()
				if err := srv.predictor.Predict(context.Background(), mv, coalesceReq(g, i), resp); err != nil {
					errc <- err
					return
				}
				resp.Release()
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with traffic in flight: %v", err)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
