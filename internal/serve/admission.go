package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds how much prediction work a server accepts at once.
// The limit is expressed in rows (the unit the kernels price in), not
// requests, so a thousand one-row calls and one thousand-row call count the
// same. When a request would push the in-flight total past the limit, the
// server refuses it with 429 and a Retry-After derived from the observed
// service rate — shedding load at the door instead of queueing unboundedly
// and timing every caller out.
type AdmissionConfig struct {
	// MaxInFlightRows is the hard cap on rows admitted but not yet answered.
	// 0 means 4096; negative means unlimited (admission still tracks the
	// gauge but never rejects).
	MaxInFlightRows int
	// TargetLatency is the queueing-delay budget. Once the service rate is
	// known, the effective limit tightens to rate·TargetLatency — the deepest
	// backlog that still drains within the budget (Little's law). 0 means
	// 50ms.
	TargetLatency time.Duration
	// Disabled turns rejection off entirely.
	Disabled bool
}

const (
	defaultMaxInFlightRows = 4096
	defaultTargetLatency   = 50 * time.Millisecond

	// rateAlpha is the EWMA weight of each new service-rate sample. Samples
	// arrive per kernel pass, so the estimate tracks tens of passes — fast
	// enough to follow a model switch, smooth enough that one cold pass
	// doesn't collapse the admission limit.
	rateAlpha = 0.2
)

// admitter implements the admission decision. All state is atomic: admit sits
// on the predict hot path ahead of any locking.
type admitter struct {
	cfg      AdmissionConfig
	inFlight *atomic.Int64  // rows admitted, response not yet built
	rejected *atomic.Uint64 // requests refused
	rateBits atomic.Uint64  // EWMA service rate, rows/sec, as float64 bits
}

func newAdmitter(cfg AdmissionConfig, counters *Counters) *admitter {
	if cfg.MaxInFlightRows == 0 {
		cfg.MaxInFlightRows = defaultMaxInFlightRows
	}
	if cfg.TargetLatency == 0 {
		cfg.TargetLatency = defaultTargetLatency
	}
	a := &admitter{cfg: cfg}
	if counters != nil {
		// Share the counters' gauges so /metrics reports admission state
		// without a second set of atomics on the hot path.
		a.inFlight = &counters.inFlightRows
		a.rejected = &counters.rejected
	} else {
		a.inFlight = new(atomic.Int64)
		a.rejected = new(atomic.Uint64)
	}
	return a
}

// timed reports whether kernel passes should be timed. The rate estimate only
// feeds admission decisions (limit tightening, Retry-After), so with admission
// disabled the scoring paths skip their two clock reads per pass.
func (a *admitter) timed() bool { return !a.cfg.Disabled }

// rate returns the current service-rate estimate in rows/sec (0 until the
// first pass completes).
func (a *admitter) rate() float64 {
	return math.Float64frombits(a.rateBits.Load())
}

// observeRate folds one completed kernel pass (rows scored in d) into the
// service-rate estimate.
func (a *admitter) observeRate(rows int, d time.Duration) {
	if rows <= 0 || d <= 0 {
		return
	}
	sample := float64(rows) / d.Seconds()
	for {
		old := a.rateBits.Load()
		est := math.Float64frombits(old)
		if est == 0 {
			est = sample // first sample seeds the estimate
		} else {
			est += rateAlpha * (sample - est)
		}
		if a.rateBits.CompareAndSwap(old, math.Float64bits(est)) {
			return
		}
	}
}

// limit returns the effective in-flight row budget: the hard cap, tightened
// to rate·TargetLatency once a service rate is known (negative cap =
// unlimited).
func (a *admitter) limit() int64 {
	hard := int64(a.cfg.MaxInFlightRows)
	if hard < 0 {
		hard = math.MaxInt64
	}
	if r := a.rate(); r > 0 {
		if l := int64(r * a.cfg.TargetLatency.Seconds()); l >= 1 && l < hard {
			return l
		}
	}
	return hard
}

// admit reserves n rows of the in-flight budget. ok=false means the request
// must be refused; retryAfter is how long the present backlog needs to drain
// below the limit at the observed rate (clamped to ≥1s, the header's
// resolution). An idle server always admits — even a request larger than the
// whole budget — so the limit can never wedge all traffic out.
func (a *admitter) admit(n int) (retryAfter time.Duration, ok bool) {
	cur := a.inFlight.Add(int64(n))
	if a.cfg.Disabled || cur == int64(n) {
		return 0, true
	}
	limit := a.limit()
	if cur <= limit {
		return 0, true
	}
	a.inFlight.Add(-int64(n))
	a.rejected.Add(1)
	retryAfter = time.Second
	if r := a.rate(); r > 0 {
		if d := time.Duration(float64(cur-limit) / r * float64(time.Second)); d > retryAfter {
			retryAfter = d
		}
	}
	return retryAfter, false
}

// done releases n admitted rows once their response is built.
func (a *admitter) done(n int) {
	a.inFlight.Add(-int64(n))
}
