package serve

import (
	"fmt"
	"strings"

	"ml4all/internal/data"
	"ml4all/internal/metrics"
)

// PredictRequest is the body of POST /v1/models/{name}/predict. Exactly one
// of Rows and Instances must be set:
//
//   - Rows are text lines. Lines containing ':' parse as LIBSVM (sparse)
//     rows whose leading label is optional; otherwise they parse as
//     comma-separated dense feature rows (no label column).
//   - Instances are dense feature vectors, at most model-dimension long
//     (shorter vectors are zero-padded, matching how sparse training data
//     treats absent features).
type PredictRequest struct {
	Rows      []string    `json:"rows,omitempty"`
	Instances [][]float64 `json:"instances,omitempty"`
}

// PredictResponse reports the scored batch.
type PredictResponse struct {
	Model   string    `json:"model"`
	Version int       `json:"version"`
	Task    string    `json:"task"`
	N       int       `json:"n"`
	Labels  []float64 `json:"labels"` // predicted labels (±1, or raw score for regression)
	Scores  []float64 `json:"scores"` // raw margins <x, w>
}

// buildRequestMatrix parses a prediction request into a small columnar arena
// — the same zero-copy form the training stack reads — so scoring runs
// through the batched block kernels. d is the model dimension; every row is
// validated against it up front.
func buildRequestMatrix(req *PredictRequest, d int) (*data.Matrix, error) {
	switch {
	case len(req.Rows) > 0 && len(req.Instances) > 0:
		return nil, fmt.Errorf("serve: request sets both rows and instances; pick one")
	case len(req.Rows) > 0:
		return parseRequestRows(req.Rows, d)
	case len(req.Instances) > 0:
		return buildInstances(req.Instances, d)
	default:
		return nil, fmt.Errorf("serve: empty prediction request: set rows or instances")
	}
}

// parseRequestRows parses text rows. The batch is sparse when any row carries
// a ':' (LIBSVM), dense comma-separated otherwise — one format per request,
// because one matrix holds the batch.
func parseRequestRows(rows []string, d int) (*data.Matrix, error) {
	libsvm := false
	for _, line := range rows {
		if strings.ContainsRune(line, ':') {
			libsvm = true
			break
		}
	}
	if libsvm {
		b := data.NewMatrixBuilder(len(rows), 0)
		var idx []int32
		var vals []float64
		for i, line := range rows {
			label, _, oidx, ovals, ok, err := data.ParsePredictLIBSVM(line, idx[:0], vals[:0])
			if err != nil {
				return nil, fmt.Errorf("serve: row %d: %w", i+1, err)
			}
			if !ok {
				return nil, fmt.Errorf("serve: row %d is blank", i+1)
			}
			idx, vals = oidx, ovals
			for _, ix := range idx {
				if int(ix) >= d {
					// Report the 1-based index the caller wrote.
					return nil, fmt.Errorf("serve: row %d references feature %d, model has %d (LIBSVM indices 1..%d)", i+1, ix+1, d, d)
				}
			}
			if err := b.AppendSparse(label, idx, vals); err != nil {
				return nil, fmt.Errorf("serve: row %d: %w", i+1, err)
			}
		}
		return b.Build(), nil
	}
	b := data.NewDenseMatrixBuilder(len(rows), d)
	var vals []float64
	for i, line := range rows {
		ovals, ok, err := data.ParsePredictCSV(line, vals[:0])
		if err != nil {
			return nil, fmt.Errorf("serve: row %d: %w", i+1, err)
		}
		if !ok {
			return nil, fmt.Errorf("serve: row %d is blank", i+1)
		}
		vals = ovals
		if err := appendPadded(b, vals, d, i); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// buildInstances packs dense JSON feature vectors into a strided arena.
func buildInstances(instances [][]float64, d int) (*data.Matrix, error) {
	b := data.NewDenseMatrixBuilder(len(instances), d)
	for i, inst := range instances {
		if err := appendPadded(b, inst, d, i); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// appendPadded appends one dense row zero-padded to the model dimension.
// Padding with zeros leaves every margin bit-identical — a zero feature
// contributes exactly nothing to the dot product.
func appendPadded(b *data.MatrixBuilder, vals []float64, d, i int) error {
	if len(vals) > d {
		return fmt.Errorf("serve: row %d has %d features, model has %d", i+1, len(vals), d)
	}
	buf, err := b.DenseRowBuffer() // handed out zero-filled
	if err != nil {
		return err
	}
	copy(buf, vals)
	b.CommitDenseRow(0)
	return nil
}

// predict scores one request against one registry model through the blocked
// margin kernels, returning raw scores and predicted labels.
func predict(mv *ModelVersion, req *PredictRequest) (*PredictResponse, error) {
	m := mv.Model
	mat, err := buildRequestMatrix(req, len(m.Weights))
	if err != nil {
		return nil, err
	}
	scores, err := m.ScoreMatrix(mat)
	if err != nil {
		return nil, err
	}
	labels := make([]float64, len(scores))
	for i, s := range scores {
		labels[i] = metrics.PredictScore(m.Task, s)
	}
	return &PredictResponse{
		Model:   mv.Name,
		Version: mv.Version,
		Task:    m.Task.String(),
		N:       len(scores),
		Labels:  labels,
		Scores:  scores,
	}, nil
}
