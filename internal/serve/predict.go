package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"ml4all/internal/data"
	"ml4all/internal/metrics"
)

// PredictRequest is the body of POST /v1/models/{name}/predict. Exactly one
// of Rows and Instances must be set:
//
//   - Rows are text lines. Lines containing ':' parse as LIBSVM (sparse)
//     rows whose leading label is optional; otherwise they parse as
//     comma-separated dense feature rows (no label column).
//   - Instances are dense feature vectors, at most model-dimension long
//     (shorter vectors are zero-padded, matching how sparse training data
//     treats absent features).
//
// FastMath opts the request into the tolerance-bounded fast kernel tier
// (metrics.ScoresIntoFast); fast and exact requests never share a coalesced
// kernel pass.
type PredictRequest struct {
	Rows      []string    `json:"rows,omitempty"`
	Instances [][]float64 `json:"instances,omitempty"`
	FastMath  bool        `json:"fastmath,omitempty"`
}

// reset clears the request for pooled reuse, keeping the Rows/Instances
// backing arrays (json.Decoder appends into them, so steady-state decoding
// reuses their capacity).
func (r *PredictRequest) reset() {
	r.Rows = r.Rows[:0]
	r.Instances = r.Instances[:0]
	r.FastMath = false
}

// PredictResponse reports the scored batch.
type PredictResponse struct {
	Model   string    `json:"model"`
	Version int       `json:"version"`
	Task    string    `json:"task"`
	N       int       `json:"n"`
	Labels  []float64 `json:"labels"` // predicted labels (±1, or raw score for regression)
	Scores  []float64 `json:"scores"` // raw margins <x, w>
}

// Predictor is the serving-side prediction pipeline: pooled request parsing,
// admission control, and opportunistic request coalescing in front of the
// blocked margin kernels. One Predictor serves every model; batches form per
// (model, version, layout, tier).
type Predictor struct {
	counters *Counters
	phase    *routeStats // "predict-batch" span histogram; nil without counters
	adm      *admitter
	co       *coalescer // nil when coalescing is disabled
	active   atomic.Int64
}

// NewPredictor builds a pipeline with the given coalescing and admission
// settings (zero values take defaults; see the Config types). counters may
// be nil for standalone use. The coalescer engages only where a shared pass
// can overlap other callers (GOMAXPROCS > 1) unless cc.Force is set; every
// other part of the pipeline — pooled ingest, admission control, counters —
// is active regardless.
func NewPredictor(cc CoalesceConfig, ac AdmissionConfig, counters *Counters) *Predictor {
	p := &Predictor{counters: counters}
	if counters != nil {
		// Resolved once so the per-pass observation is lock-free atomics —
		// the timing shares the admission path's clock reads, keeping the
		// scoring hot path at zero allocations (benchgate-pinned).
		p.phase = counters.phase("predict-batch")
	}
	p.adm = newAdmitter(ac, counters)
	if !cc.Disabled && (cc.Force || runtime.GOMAXPROCS(0) > 1) {
		p.co = newCoalescer(cc, counters, p.adm, &p.active)
		go p.co.run()
	}
	return p
}

// Close flushes pending coalesced batches and stops the window flusher.
// Predict remains usable afterwards — calls score directly — so in-flight
// traffic drains during shutdown instead of erroring.
func (p *Predictor) Close() {
	if p.co != nil {
		p.co.close()
	}
}

// Predict scores one request against one registry model, filling resp (use
// AcquirePredictResponse + Release for pooled responses). The scored values
// are bit-identical to offline metrics.Evaluate on the same rows whether the
// call was coalesced or not. Requests refused by admission control return an
// *httpError with status 429 and a Retry-After.
//
// ctx bounds the call: a request whose deadline expires — including one
// parked in a coalesced batch whose client has disconnected — returns a 503
// with Retry-After instead of holding its arena until the batch flushes.
// ctx is only consulted at wait points; scoring itself is not interrupted.
func (p *Predictor) Predict(ctx context.Context, mv *ModelVersion, req *PredictRequest, resp *PredictResponse) error {
	if err := ctx.Err(); err != nil {
		p.counters.deadlineExpire()
		return deadlineError(err)
	}
	p.active.Add(1)
	defer p.active.Add(-1)

	m := mv.Model
	b := getBuilder()
	mat, err := buildRequestMatrix(b, req, len(m.Weights))
	if err != nil {
		putBuilder(b)
		return err
	}
	n := mat.NumRows()
	if retry, ok := p.adm.admit(n); !ok {
		putBuilder(b)
		return retryError(retry, n)
	}

	// Coalesce only when other calls are in flight: a lone caller never
	// waits out the batching window (its batch would flush alone anyway).
	coalesced := false
	if p.co != nil && (p.co.always || p.active.Load() > 1) {
		if cl, ok := p.co.submit(mv, req.FastMath, b, mat, resp, n); ok {
			coalesced = true
			select {
			case err = <-cl.done:
				putCall(cl)
			case <-ctx.Done():
				if cl.abandon() {
					// The flusher will drop our rows and recycle the call
					// record and the builder — neither is ours anymore.
					b = nil
					p.counters.deadlineExpire()
					err = deadlineError(ctx.Err())
				} else {
					// The flusher claimed us first: the shared pass is
					// already running, so take its verdict — the work is
					// paid for either way.
					err = <-cl.done
					putCall(cl)
				}
			}
		}
	}
	if !coalesced {
		p.scoreDirect(mv, req.FastMath, mat, resp)
	}
	if b != nil {
		putBuilder(b) // the batch (if any) is flushed: mat is no longer read
	}
	p.adm.done(n)
	if err != nil {
		return err
	}
	if p.counters != nil {
		p.counters.observePredict(n)
	}
	return nil
}

// scoreDirect runs the uncoalesced path: one kernel pass over this request's
// rows alone.
func (p *Predictor) scoreDirect(mv *ModelVersion, fast bool, mat *data.Matrix, resp *PredictResponse) {
	m := mv.Model
	n := mat.NumRows()
	scores := floatPool.get(n)
	var start time.Time
	admTimed := p.adm.timed()
	timed := admTimed || p.phase != nil
	if timed {
		start = time.Now()
	}
	if fast {
		metrics.ScoresIntoFast(m.Weights, mat, scores)
	} else {
		metrics.ScoresInto(m.Weights, mat, scores)
	}
	if timed {
		d := time.Since(start)
		if admTimed {
			p.adm.observeRate(n, d)
		}
		if p.phase != nil {
			p.phase.observe(d, false)
		}
	}
	setResponse(resp, mv, scores)
}

// fillResponse carves one caller's score range out of a shared batch pass
// into pooled slices — the coalesced path's counterpart of scoreDirect.
func fillResponse(resp *PredictResponse, mv *ModelVersion, carved []float64) {
	scores := floatPool.get(len(carved))
	copy(scores, carved)
	setResponse(resp, mv, scores)
}

// setResponse attaches the (pooled) scores to resp and derives the labels.
func setResponse(resp *PredictResponse, mv *ModelVersion, scores []float64) {
	m := mv.Model
	labels := floatPool.get(len(scores))
	for i, s := range scores {
		labels[i] = metrics.PredictScore(m.Task, s)
	}
	resp.Model = mv.Name
	resp.Version = mv.Version
	resp.Task = m.Task.String()
	resp.N = len(scores)
	resp.Labels = labels
	resp.Scores = scores
}

// retryError builds the 429 an admission-refused request returns.
func retryError(retry time.Duration, n int) error {
	err := errStatus(http.StatusTooManyRequests, "serve: over capacity: %d rows refused, retry after %s", n, retry)
	err.retryAfter = retry
	return err
}

// deadlineError builds the 503 a deadline-expired request returns. 503 (not
// 504): the service is shedding the call, and a retry after the hinted pause
// is expected to succeed.
func deadlineError(cause error) error {
	err := errStatus(http.StatusServiceUnavailable, "serve: request deadline expired: %v", cause)
	err.retryAfter = time.Second
	return err
}

// buildRequestMatrix parses a prediction request into b, a pooled builder
// whose arena is recycled across requests, and returns the BuildView arena —
// the same zero-copy form the training stack reads, valid until the builder
// is next Reset. d is the model dimension; every row is validated against it
// up front, so scoring needs no second dimension check.
func buildRequestMatrix(b *data.MatrixBuilder, req *PredictRequest, d int) (*data.Matrix, error) {
	switch {
	case len(req.Rows) > 0 && len(req.Instances) > 0:
		return nil, fmt.Errorf("serve: request sets both rows and instances; pick one")
	case len(req.Rows) > 0:
		return parseRequestRows(b, req.Rows, d)
	case len(req.Instances) > 0:
		return buildInstances(b, req.Instances, d)
	default:
		return nil, fmt.Errorf("serve: empty prediction request: set rows or instances")
	}
}

// parseRequestRows parses text rows. The batch is sparse when any row carries
// a ':' (LIBSVM), dense comma-separated otherwise — one format per request,
// because one matrix holds the batch.
func parseRequestRows(b *data.MatrixBuilder, rows []string, d int) (*data.Matrix, error) {
	libsvm := false
	for _, line := range rows {
		if strings.ContainsRune(line, ':') {
			libsvm = true
			break
		}
	}
	sc := scratchPool.Get().(*parseScratch)
	defer scratchPool.Put(sc)
	if libsvm {
		idx, vals := sc.idx, sc.vals
		for i, line := range rows {
			label, _, oidx, ovals, ok, err := data.ParsePredictLIBSVM(line, idx[:0], vals[:0])
			if err != nil {
				sc.idx, sc.vals = oidx, ovals
				return nil, fmt.Errorf("serve: row %d: %w", i+1, err)
			}
			if !ok {
				return nil, fmt.Errorf("serve: row %d is blank", i+1)
			}
			idx, vals = oidx, ovals
			for _, ix := range idx {
				if int(ix) >= d {
					// Report the 1-based index the caller wrote.
					sc.idx, sc.vals = idx, vals
					return nil, fmt.Errorf("serve: row %d references feature %d, model has %d (LIBSVM indices 1..%d)", i+1, ix+1, d, d)
				}
			}
			if err := b.AppendSparse(label, idx, vals); err != nil {
				sc.idx, sc.vals = idx, vals
				return nil, fmt.Errorf("serve: row %d: %w", i+1, err)
			}
		}
		sc.idx, sc.vals = idx, vals
		return b.BuildView(), nil
	}
	if err := b.SetDense(d); err != nil {
		return nil, err
	}
	vals := sc.vals
	for i, line := range rows {
		ovals, ok, err := data.ParsePredictCSV(line, vals[:0])
		if err != nil {
			sc.vals = ovals
			return nil, fmt.Errorf("serve: row %d: %w", i+1, err)
		}
		if !ok {
			return nil, fmt.Errorf("serve: row %d is blank", i+1)
		}
		vals = ovals
		if err := appendPadded(b, vals, d, i); err != nil {
			sc.vals = vals
			return nil, err
		}
	}
	sc.vals = vals
	return b.BuildView(), nil
}

// buildInstances packs dense JSON feature vectors into a strided arena.
func buildInstances(b *data.MatrixBuilder, instances [][]float64, d int) (*data.Matrix, error) {
	if err := b.SetDense(d); err != nil {
		return nil, err
	}
	for i, inst := range instances {
		if err := appendPadded(b, inst, d, i); err != nil {
			return nil, err
		}
	}
	return b.BuildView(), nil
}

// appendPadded appends one dense row zero-padded to the model dimension.
// Padding with zeros leaves every margin bit-identical — a zero feature
// contributes exactly nothing to the dot product. The fused append writes
// each arena element once instead of pre-zeroing the full row.
func appendPadded(b *data.MatrixBuilder, vals []float64, d, i int) error {
	if len(vals) > d {
		return fmt.Errorf("serve: row %d has %d features, model has %d", i+1, len(vals), d)
	}
	return b.AppendDensePadded(0, vals)
}

// standalonePredictor scores compat-path calls: direct scoring, no
// admission, no counters.
var standalonePredictor = NewPredictor(CoalesceConfig{Disabled: true}, AdmissionConfig{Disabled: true}, nil)

// predict scores one request against one registry model through the blocked
// margin kernels, returning raw scores and predicted labels — the standalone
// form of Predictor.Predict (tests and embedders call it without a Server).
func predict(mv *ModelVersion, req *PredictRequest) (*PredictResponse, error) {
	resp := AcquirePredictResponse()
	if err := standalonePredictor.Predict(context.Background(), mv, req, resp); err != nil {
		resp.Release()
		return nil, err
	}
	return resp, nil
}
