package serve

import (
	"os"
	"path/filepath"
	"testing"

	"ml4all"
	"ml4all/internal/data"
	"ml4all/internal/linalg"
)

func testModel(task data.TaskKind, w ...float64) *ml4all.Model {
	return &ml4all.Model{
		Name: "scratch", Task: task, PlanName: "BGD(eager)",
		Weights: linalg.Vector(w), Iterations: 42, TrainTime: 1.5, Converged: true,
	}
}

func TestRegistryPublishGetDelete(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	v1, err := reg.Publish("spam", testModel(data.TaskSVM, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Publish("spam", testModel(data.TaskSVM, 4, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 || v2.Version != 2 {
		t.Fatalf("versions %d, %d; want 1, 2", v1.Version, v2.Version)
	}

	latest, ok := reg.Get("spam", 0)
	if !ok || latest.Version != 2 {
		t.Fatalf("latest = %+v, %v", latest, ok)
	}
	old, ok := reg.Get("spam", 1)
	if !ok || old.Model.Weights[0] != 1 {
		t.Fatalf("spam@1 = %+v, %v", old, ok)
	}
	if _, ok := reg.Get("spam", 9); ok {
		t.Fatal("spam@9 must not resolve")
	}
	if _, ok := reg.Get("nope", 0); ok {
		t.Fatal("unknown model must not resolve")
	}

	// Deleting the latest promotes the previous version.
	if err := reg.Delete("spam", 2); err != nil {
		t.Fatal(err)
	}
	latest, ok = reg.Get("spam", 0)
	if !ok || latest.Version != 1 {
		t.Fatalf("after delete, latest = %+v, %v", latest, ok)
	}
	// Version numbers are never reused: a client that pinned spam@2 must
	// never silently receive a different model under those coordinates.
	v3, err := reg.Publish("spam", testModel(data.TaskSVM, 7, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if v3.Version != 3 {
		t.Fatalf("republish got version %d, want 3 (v2 is burned)", v3.Version)
	}
	if _, ok := reg.Get("spam", 2); ok {
		t.Fatal("deleted spam@2 must not resolve")
	}
	if err := reg.Delete("spam", 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("spam", 0); ok {
		t.Fatal("deleted model must not resolve")
	}
	if err := reg.Delete("spam", 0); err == nil {
		t.Fatal("deleting a deleted model must error")
	}
	// ...and the whole-model delete burns its numbers too.
	v4, err := reg.Publish("spam", testModel(data.TaskSVM, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v4.Version != 4 {
		t.Fatalf("post-wipe publish got version %d, want 4", v4.Version)
	}
}

func TestRegistryReload(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testModel(data.TaskLogisticRegression, 0.25, -1.0/3.0, 0, 8e17)
	if _, err := reg.Publish("m", want); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("m", testModel(data.TaskLogisticRegression, 9)); err != nil {
		t.Fatal(err)
	}
	// A stray temp file (a crashed publish) must not confuse the reload.
	if err := os.WriteFile(filepath.Join(dir, "m", ".tmp-v000003.model"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The crashed-publish residue is swept, not just ignored: leaking one
	// temp per crash would grow the directory forever.
	if _, err := os.Stat(filepath.Join(dir, "m", ".tmp-v000003.model")); !os.IsNotExist(err) {
		t.Fatalf("stale registry temp survived reload: %v", err)
	}
	got, ok := reg2.Get("m", 1)
	if !ok {
		t.Fatal("m@1 lost across reload")
	}
	if !got.Model.Weights.Equal(want.Weights, 0) {
		t.Fatalf("weights changed across reload:\n got %v\nwant %v", got.Model.Weights, want.Weights)
	}
	if got.Model.Task != want.Task || got.Model.Iterations != want.Iterations ||
		got.Model.Converged != want.Converged || got.Model.TrainTime != want.TrainTime {
		t.Fatalf("metadata changed across reload: %+v", got.Model)
	}
	if latest, _ := reg2.Get("m", 0); latest.Version != 2 {
		t.Fatalf("latest after reload = %d, want 2", latest.Version)
	}
	if names := reg2.Names(); len(names) != 1 || names[0] != "m" {
		t.Fatalf("names after reload = %v", names)
	}

	// Burned version numbers survive a restart: delete the latest, reopen,
	// republish — the tombstone keeps v2 off limits.
	if err := reg2.Delete("m", 2); err != nil {
		t.Fatal(err)
	}
	reg3, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg3.Get("m", 2); ok {
		t.Fatal("deleted m@2 resurrected across reload")
	}
	v, err := reg3.Publish("m", testModel(data.TaskLogisticRegression, 7))
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != 3 {
		t.Fatalf("publish after reload got version %d, want 3", v.Version)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "a/b", "..", ".hidden", "sp ace", "x\x00y"} {
		if _, err := reg.Publish(name, testModel(data.TaskSVM, 1)); err == nil {
			t.Fatalf("name %q must be rejected", name)
		}
	}
}
