package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ml4all/internal/data"
	"ml4all/internal/metrics"
)

// Request coalescing. Concurrent predict calls against the same model are
// merged into one shared arena and scored in a single blocked kernel pass,
// then each caller's result range is carved back out. Small requests pay a
// fixed per-pass overhead (weight-vector reload, block dispatch, cache
// warm-up) that one merged pass amortizes across every waiting caller —
// under concurrency, the kernels see dataset-shaped batches instead of a
// stream of tiny ones.
//
// The merge is exact: every margin kernel computes each row's dot product
// independently (see data.Block), so scoring a concatenation of request
// arenas produces bitwise the scores of scoring each arena alone — for the
// exact and the fast-math tier alike. Batches form per batchKey, so rows
// never share a pass with a different model, version, layout, or kernel
// tier.
//
// A batch flushes when it reaches MaxRows (the arriving caller scores it
// in-line) or when its Window expires (a single background flusher scores
// it). Coalescing is opportunistic: Predictor only routes a call here when
// other calls are in flight, so an unconcurrent caller never waits out the
// window.

// CoalesceConfig tunes the predict-request coalescer.
type CoalesceConfig struct {
	// Window is how long the first call of a batch waits for partners before
	// the batch is scored anyway. 0 means 200µs.
	Window time.Duration
	// MaxRows flushes a batch as soon as it holds this many rows, bounding
	// both memory and the latency a full batch adds. 0 means 512.
	MaxRows int
	// Disabled routes every call to the direct (uncoalesced) path.
	Disabled bool
	// Force runs the batcher even on a single-processor runtime. Sharing a
	// kernel pass pays only when the pass can overlap other callers' work:
	// with GOMAXPROCS=1 the merged pass serializes with every caller's
	// turnaround and the cross-goroutine handoff outweighs the saved pass
	// setup, so the zero-value config engages the batcher only when
	// GOMAXPROCS > 1. Tests and load harnesses set Force to measure batch
	// formation regardless.
	Force bool
}

const (
	defaultCoalesceWindow  = 200 * time.Microsecond
	defaultCoalesceMaxRows = 512
)

// batchKey identifies the calls that may share one kernel pass.
type batchKey struct {
	name    string
	version int
	dense   bool // arena layout: one matrix holds the batch
	fast    bool // kernel tier: exact and fast margins must not mix
}

// call is one caller's stake in a batch: its parsed rows going in, its
// response coming back. Records are pooled (callPool); done is allocated
// once per record and reused.
type call struct {
	mat  *data.Matrix
	b    *data.MatrixBuilder // arena behind mat; owned by the batch while parked
	resp *PredictResponse
	n    int
	done chan error
	// state is the deadline handshake between a parked caller and the
	// flusher: 0 pending, 1 abandoned (the caller's deadline expired; the
	// flusher drops the rows and recycles the record), 2 claimed (the
	// flusher scores it; the caller waits on done).
	state atomic.Int32
}

// abandon is the caller's side of the handshake. It wins only while the call
// is still pending; after a win the caller must not touch the record (or its
// builder) again — the flusher frees both.
func (c *call) abandon() bool { return c.state.CompareAndSwap(0, 1) }

// claim is the flusher's side: a claimed call is scored and answered on done.
func (c *call) claim() bool { return c.state.CompareAndSwap(0, 2) }

// batch accumulates the calls waiting to share one kernel pass. Records are
// pooled (batchPool); the calls slice keeps its capacity across uses.
type batch struct {
	key      batchKey
	mv       *ModelVersion
	calls    []*call
	rows     int
	deadline time.Time
}

func getCall() *call {
	c := callPool.Get().(*call)
	if c.done == nil {
		c.done = make(chan error, 1)
	}
	return c
}

func putCall(c *call) {
	c.mat, c.b, c.resp, c.n = nil, nil, nil, 0
	c.state.Store(0)
	callPool.Put(c)
}

func putBatch(b *batch) {
	for i := range b.calls {
		b.calls[i] = nil
	}
	b.calls = b.calls[:0]
	*b = batch{calls: b.calls}
	batchPool.Put(b)
}

// coalescer owns the pending batches and the background window flusher.
type coalescer struct {
	cfg      CoalesceConfig
	counters *Counters
	phase    *routeStats // "predict-batch" span histogram; nil without counters
	adm      *admitter
	active   *atomic.Int64 // the Predictor's in-flight call gauge

	mu      sync.Mutex
	pending map[batchKey]*batch
	parked  int // calls waiting in pending batches
	closed  bool

	wake chan struct{} // signaled when a new batch opens a deadline
	quit chan struct{}
	done chan struct{}
	due  []*batch // flusher-local scratch, reused across wakeups

	// always forces every submitted call through a batch even when it would
	// flush alone — the test knob that makes window/max-rows triggers
	// deterministic.
	always bool
}

func newCoalescer(cfg CoalesceConfig, counters *Counters, adm *admitter, active *atomic.Int64) *coalescer {
	if cfg.Window <= 0 {
		cfg.Window = defaultCoalesceWindow
	}
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = defaultCoalesceMaxRows
	}
	c := &coalescer{
		cfg:      cfg,
		counters: counters,
		adm:      adm,
		active:   active,
		pending:  map[batchKey]*batch{},
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if counters != nil {
		c.phase = counters.phase("predict-batch")
	}
	return c
}

// allParked reports whether every in-flight predict call is waiting in a
// pending batch — no caller is left to add rows, so waiting out the window
// would be pure latency. Callers hold c.mu.
func (c *coalescer) allParked() bool {
	return c.parked > 0 && int64(c.parked) >= c.active.Load()
}

// submit joins mat's rows to the pending batch for (mv, fast), creating one
// when none is open. It returns the caller's wait record — receive from
// c.done for the flush verdict, then putCall — or ok=false when the
// coalescer is closed and the caller must score directly. bld is the builder
// behind mat: while the call is parked the batch owns both, so a caller that
// wins abandon() must walk away from the builder too (the flusher recycles
// it); a caller that receives from done owns its builder again.
//
// A batch flushes in-line (the submitting caller does the scoring; its own
// done channel is buffered, so the verdict waits) in two cases: the join
// filled it to MaxRows, or every in-flight predict call is parked in a
// pending batch — with no caller left to add rows, waiting out the window
// is pure latency. The all-parked check runs twice with a scheduler yield
// between: callers between requests (they decremented the in-flight gauge
// but are about to issue again) get one scheduling round to rejoin, so a
// closed-loop crowd forms one full batch per round instead of a tiny batch
// per wave front. The window remains the backstop for open-loop arrivals
// slower than one scheduling round.
func (c *coalescer) submit(mv *ModelVersion, fast bool, bld *data.MatrixBuilder, mat *data.Matrix, resp *PredictResponse, n int) (*call, bool) {
	key := batchKey{name: mv.Name, version: mv.Version, dense: mat.IsDense(), fast: fast}
	cl := getCall()
	cl.mat, cl.b, cl.resp, cl.n = mat, bld, resp, n

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putCall(cl)
		return nil, false
	}
	b := c.pending[key]
	opened := b == nil
	if opened {
		b = batchPool.Get().(*batch)
		b.key = key
		b.mv = mv
		b.deadline = time.Now().Add(c.cfg.Window)
		c.pending[key] = b
	}
	b.calls = append(b.calls, cl)
	b.rows += n
	c.parked++
	full := b.rows >= c.cfg.MaxRows
	if full {
		delete(c.pending, key)
		c.parked -= len(b.calls)
	}
	probe := !full && !c.always && c.allParked()
	c.mu.Unlock()

	var due []*batch
	if probe {
		runtime.Gosched() // let callers between requests rejoin
		c.mu.Lock()
		if !c.closed && c.allParked() {
			for k, pb := range c.pending {
				delete(c.pending, k)
				c.parked -= len(pb.calls)
				due = append(due, pb)
			}
		}
		c.mu.Unlock()
	}

	switch {
	case full:
		c.flush(b)
	case len(due) > 0:
		for _, pb := range due {
			c.flush(pb)
		}
	case opened:
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	return cl, true
}

// flush merges a batch's request arenas, scores them in one kernel pass, and
// carves each caller's result range back out. A singleton batch (a window
// flush that never found partners) skips the merge and scores its lone arena
// in place. Exactly one goroutine flushes any given batch: it was removed
// from pending under the lock by whoever got there first.
func (c *coalescer) flush(b *batch) {
	// Claim every call before touching its arena: a parked caller whose
	// deadline expired has abandoned its slot and already returned — its
	// builder (and therefore its matrix) is ours to recycle, its rows drop
	// out of the pass, and nothing is sent on its done channel.
	kept := b.calls[:0]
	rows := 0
	for _, cl := range b.calls {
		if cl.claim() {
			kept = append(kept, cl)
			rows += cl.n
			continue
		}
		putBuilder(cl.b)
		putCall(cl)
	}
	for i := len(kept); i < len(b.calls); i++ {
		b.calls[i] = nil
	}
	b.calls, b.rows = kept, rows
	if len(b.calls) == 0 {
		putBatch(b)
		return
	}

	var mb *data.MatrixBuilder
	var err error
	merged := b.calls[0].mat
	if len(b.calls) > 1 {
		mb = getBuilder()
		for _, cl := range b.calls {
			if err = mb.AppendRows(cl.mat); err != nil {
				break // cannot happen for same-key batches; fail the batch anyway
			}
		}
		merged = mb.BuildView()
	}
	if err == nil {
		m := b.mv.Model
		scores := floatPool.get(b.rows)
		var start time.Time
		admTimed := c.adm.timed()
		timed := admTimed || c.phase != nil
		if timed {
			start = time.Now()
		}
		if b.key.fast {
			metrics.ScoresIntoFast(m.Weights, merged, scores)
		} else {
			metrics.ScoresInto(m.Weights, merged, scores)
		}
		if timed {
			d := time.Since(start)
			if admTimed {
				c.adm.observeRate(b.rows, d)
			}
			if c.phase != nil {
				c.phase.observe(d, false)
			}
		}
		lo := 0
		for _, cl := range b.calls {
			fillResponse(cl.resp, b.mv, scores[lo:lo+cl.n])
			lo += cl.n
		}
		floatPool.put(scores)
		if c.counters != nil && len(b.calls) > 1 {
			c.counters.observeCoalesced(b.rows)
		}
	}
	for _, cl := range b.calls {
		cl.done <- err
	}
	if mb != nil {
		putBuilder(mb)
	}
	putBatch(b)
}

// run is the window flusher: it sleeps until the earliest pending deadline,
// flushes everything due, and waits again. One goroutine and one timer serve
// every model — batch records carry no timers, so flushing by max-rows never
// races a per-batch timer.
func (c *coalescer) run() {
	defer close(c.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		c.mu.Lock()
		now := time.Now()
		var next time.Time
		for key, b := range c.pending {
			if !b.deadline.After(now) {
				delete(c.pending, key)
				c.parked -= len(b.calls)
				c.due = append(c.due, b)
			} else if next.IsZero() || b.deadline.Before(next) {
				next = b.deadline
			}
		}
		c.mu.Unlock()
		for i, b := range c.due {
			c.flush(b)
			c.due[i] = nil
		}
		c.due = c.due[:0]

		if next.IsZero() {
			select {
			case <-c.wake:
			case <-c.quit:
				return
			}
			continue
		}
		timer.Reset(time.Until(next))
		select {
		case <-timer.C:
		case <-c.wake:
			if !timer.Stop() {
				<-timer.C
			}
		case <-c.quit:
			if !timer.Stop() {
				<-timer.C
			}
			return
		}
	}
}

// close stops accepting calls, flushes every pending batch, and waits for
// the flusher to exit. Callers refused after close score directly, so
// in-flight predict traffic drains rather than erroring.
func (c *coalescer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	var last []*batch
	for key, b := range c.pending {
		delete(c.pending, key)
		c.parked -= len(b.calls)
		last = append(last, b)
	}
	c.mu.Unlock()
	for _, b := range last {
		c.flush(b)
	}
	close(c.quit)
	<-c.done
}
