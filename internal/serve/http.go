package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"ml4all/internal/lang"
	"ml4all/internal/linalg"
	"ml4all/internal/obs"
)

// httpError pairs a client-visible message with a status code; retryAfter,
// when set, is surfaced as a Retry-After header (admission-control 429s).
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func errStatus(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// handler is the route-function form the wrappers take: return a JSON-able
// payload or an error (an *httpError for a specific status, anything else
// for a 500 — except syntax/validation errors, mapped to 400).
type handler func(r *http.Request) (any, error)

// wrap instruments a route with the counters and centralizes encoding. The
// route's stats record is resolved once here, so the per-request observation
// is lock-free; responses encode into a pooled buffer (one Write to the
// connection, no per-request encoder garbage), and pooled payloads
// (releasable) are recycled after encoding.
//
// wrap is also the service's outermost robustness boundary: request bodies
// are capped (decodeJSON maps an overrun to 413), and a panic anywhere in
// the handler is recovered into a 500 — the stack goes to the server log,
// the panic value to the client, and the process keeps serving.
func (s *Server) wrap(route string, h handler) http.HandlerFunc {
	rs := s.counters.route(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.maxBody > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		payload, err := func() (out any, err error) {
			defer func() {
				if rec := recover(); rec != nil {
					s.counters.panicRecovered()
					log.Printf("serve: panic in %s handler: %v\n%s", route, rec, debug.Stack())
					err = errStatus(http.StatusInternalServerError, "internal panic: %v", rec)
				}
			}()
			return h(r)
		}()
		status := http.StatusOK
		var retryAfter time.Duration
		if err != nil {
			var he *httpError
			var se *lang.SyntaxError
			switch {
			case errors.As(err, &he):
				status = he.status
				retryAfter = he.retryAfter
			case errors.As(err, &se):
				status = http.StatusBadRequest
			default:
				status = http.StatusInternalServerError
			}
			payload = map[string]string{"error": err.Error()}
		}
		rs.observe(time.Since(start), status >= 400)
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		json.NewEncoder(buf).Encode(payload)
		if rel, ok := payload.(releasable); ok {
			rel.release()
		}
		w.Header().Set("Content-Type", "application/json")
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(retryAfter)))
		}
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(status)
		w.Write(buf.Bytes())
		bufPool.Put(buf)
	}
}

// retrySeconds renders a Retry-After duration in the header's unit: whole
// seconds, rounded up, at least 1.
func retrySeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// decodeJSON strictly decodes a request body into v. A body that overran the
// server's cap (wrap installs http.MaxBytesReader) maps to 413, anything
// else undecodable to 400.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errStatus(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		}
		return errStatus(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// submitRequest is the body of POST /v1/jobs.
type submitRequest struct {
	// Script is one declarative run statement, e.g.
	// "m = run logistic on train.txt having epsilon 0.01, max iter 500;".
	Script string `json:"script"`
	// Model optionally overrides the registry name the trained model
	// publishes under (default: the script's assigned query name, else the
	// job id).
	Model string `json:"model,omitempty"`
	// FastMath opts the job into the fast kernel tier without editing the
	// script (equivalent to `having fastmath` in the statement). The tier
	// is recorded in the job manifest, so restarts resume on it.
	FastMath bool `json:"fastmath,omitempty"`
}

func (s *Server) handleSubmit(r *http.Request) (any, error) {
	if s.manager.Recovering() {
		// Degrade rather than interleave: while the manager replays jobs
		// interrupted by the last crash, new submissions are shed with a
		// retry hint instead of queueing behind an unknown replay backlog.
		err := errStatus(http.StatusServiceUnavailable, "serve: recovering interrupted jobs after restart; retry shortly")
		err.retryAfter = time.Second
		return nil, err
	}
	var req submitRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Script == "" {
		return nil, errStatus(http.StatusBadRequest, "script is required")
	}
	j, err := s.manager.SubmitJob(req.Script, req.Model, SubmitOptions{FastMath: req.FastMath})
	if err != nil {
		return nil, badRequest(err)
	}
	return j.Status(), nil
}

func (s *Server) handleJobList(r *http.Request) (any, error) {
	return map[string]any{"jobs": s.manager.List()}, nil
}

// getJob resolves the {id} path parameter.
func (s *Server) getJob(r *http.Request) (*Job, error) {
	id := r.PathValue("id")
	j, ok := s.manager.Job(id)
	if !ok {
		return nil, errStatus(http.StatusNotFound, "job %q not found", id)
	}
	return j, nil
}

func (s *Server) handleJobGet(r *http.Request) (any, error) {
	j, err := s.getJob(r)
	if err != nil {
		return nil, err
	}
	return j.Status(), nil
}

func (s *Server) handleJobCancel(r *http.Request) (any, error) {
	j, err := s.getJob(r)
	if err != nil {
		return nil, err
	}
	if err := s.manager.Cancel(j.ID); err != nil {
		return nil, badRequest(err)
	}
	return j.Status(), nil
}

func (s *Server) handleJobPause(r *http.Request) (any, error) {
	j, err := s.getJob(r)
	if err != nil {
		return nil, err
	}
	if err := s.manager.Pause(j.ID); err != nil {
		return nil, badRequest(err)
	}
	return j.Status(), nil
}

func (s *Server) handleJobResume(r *http.Request) (any, error) {
	j, err := s.getJob(r)
	if err != nil {
		return nil, err
	}
	if err := s.manager.Resume(j.ID); err != nil {
		return nil, badRequest(err)
	}
	return j.Status(), nil
}

// handleJobTrace returns the job's span timeline: every named phase span
// (optimize, speculate, train, checkpoint, recover) with monotonic
// nanosecond offsets from the trace's birth and parent links, so a client
// can reconstruct the whole run as a flame chart.
func (s *Server) handleJobTrace(r *http.Request) (any, error) {
	j, err := s.getJob(r)
	if err != nil {
		return nil, err
	}
	return map[string]any{"job": j.ID, "spans": j.Trace().Spans()}, nil
}

// eventsHandler streams a job's live event log. Two modes:
//
//   - default: Server-Sent Events — each event is one SSE frame (id: the
//     sequence number, event: the type, data: the JSON payload), held open
//     until the job reaches a terminal state or the client disconnects.
//     Reconnecting clients resume with ?after=<last seq seen>.
//   - ?once: long-poll JSON — block until at least one event past ?after
//     exists (or ~10s elapse), then return {"events": [...], "closed": bool}
//     in one response. Curl-friendly, and the mode the e2e tests exercise.
//
// The route streams instead of buffering, so it bypasses wrap; its stats
// record is resolved once here to keep the per-request path lock-free.
func (s *Server) eventsHandler() http.HandlerFunc {
	rs := s.counters.route("jobs.events")
	jsonErr := func(w http.ResponseWriter, status int, format string, args ...any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.PathValue("id")
		j, ok := s.manager.Job(id)
		if !ok {
			rs.observe(time.Since(start), true)
			jsonErr(w, http.StatusNotFound, "job %q not found", id)
			return
		}
		after := -1 // replay the whole retained window by default
		if raw := r.URL.Query().Get("after"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil {
				rs.observe(time.Since(start), true)
				jsonErr(w, http.StatusBadRequest, "bad after %q", raw)
				return
			}
			after = v
		}
		if r.URL.Query().Has("once") {
			ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
			defer cancel()
			evs, closed, err := j.Events().Wait(ctx, after)
			if err != nil { // poll window elapsed: an empty page, not an error
				evs, closed = nil, j.Events().Closed()
			}
			if evs == nil {
				evs = []obs.Event{}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"events": evs, "closed": closed})
			rs.observe(time.Since(start), false)
			return
		}
		fl, canFlush := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		for {
			evs, closed, err := j.Events().Wait(r.Context(), after)
			if err != nil { // client went away
				break
			}
			for _, ev := range evs {
				data, _ := json.Marshal(ev)
				fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
				after = ev.Seq
			}
			if canFlush {
				fl.Flush()
			}
			if closed {
				break
			}
		}
		rs.observe(time.Since(start), false)
	}
}

// modelInfo is the metadata view of one model version.
type modelInfo struct {
	Name       string  `json:"name"`
	Version    int     `json:"version"`
	Task       string  `json:"task"`
	Plan       string  `json:"plan"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	TrainTime  float64 `json:"train_time_sec"` // simulated seconds
	Features   int     `json:"features"`
}

func info(mv *ModelVersion) modelInfo {
	m := mv.Model
	return modelInfo{
		Name: mv.Name, Version: mv.Version, Task: m.Task.String(), Plan: m.PlanName,
		Iterations: m.Iterations, Converged: m.Converged,
		TrainTime: float64(m.TrainTime), Features: len(m.Weights),
	}
}

func (s *Server) handleModelList(r *http.Request) (any, error) {
	out := []modelInfo{}
	for _, name := range s.registry.Names() {
		if mv, ok := s.registry.Get(name, 0); ok {
			out = append(out, info(mv))
		}
	}
	return map[string]any{"models": out}, nil
}

// versionParam parses the optional ?version=N query parameter (0 = latest).
func versionParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, errStatus(http.StatusBadRequest, "bad version %q", raw)
	}
	return v, nil
}

func (s *Server) handleModelGet(r *http.Request) (any, error) {
	name := r.PathValue("name")
	vs := s.registry.Versions(name)
	if len(vs) == 0 {
		return nil, errStatus(http.StatusNotFound, "model %q not found", name)
	}
	infos := make([]modelInfo, len(vs))
	for i, mv := range vs {
		infos[i] = info(mv)
	}
	return map[string]any{
		"name":     name,
		"latest":   vs[len(vs)-1].Version,
		"versions": infos,
	}, nil
}

func (s *Server) handleModelDelete(r *http.Request) (any, error) {
	name := r.PathValue("name")
	v, err := versionParam(r)
	if err != nil {
		return nil, err
	}
	if err := s.registry.Delete(name, v); err != nil {
		if errors.Is(err, errNotFound) {
			return nil, errStatus(http.StatusNotFound, "%v", err)
		}
		return nil, err // I/O fault: the model still exists — 500, not 404
	}
	return map[string]any{"deleted": name, "version": v}, nil
}

func (s *Server) handlePredict(r *http.Request) (any, error) {
	name := r.PathValue("name")
	v, err := versionParam(r)
	if err != nil {
		return nil, err
	}
	mv, ok := s.registry.Get(name, v)
	if !ok {
		return nil, errStatus(http.StatusNotFound, "model %q version %d not found", name, v)
	}
	req := requestPool.Get().(*PredictRequest)
	req.reset() // decode must not inherit a previous request's fields
	defer requestPool.Put(req)
	if err := decodeJSON(r, req); err != nil {
		return nil, err
	}
	ctx := r.Context() // carries the client disconnect
	if s.cfg.PredictTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.PredictTimeout)
		defer cancel()
	}
	resp := AcquirePredictResponse()
	if err := s.predictor.Predict(ctx, mv, req, resp); err != nil {
		resp.Release()
		return nil, badRequest(err)
	}
	return resp, nil // wrap releases the pooled response after encoding
}

// badRequest maps a domain error to 400 unless it already carries a status.
func badRequest(err error) error {
	var he *httpError
	if errors.As(err, &he) {
		return err
	}
	var se *lang.SyntaxError
	if errors.As(err, &se) {
		return err // wrap already maps syntax errors to 400
	}
	return &httpError{status: http.StatusBadRequest, msg: err.Error()}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.counters.WriteText(w)
	// Info-style gauge naming the kernel backend FastMath work dispatches to
	// right now (the exact tier always runs the bit-exact loops), so scraped
	// latency series are attributable to the silicon that produced them.
	fmt.Fprintln(w, "# HELP ml4all_kernel_backend_info Kernel backend the fast-math tier dispatches to.")
	fmt.Fprintln(w, "# TYPE ml4all_kernel_backend_info gauge")
	fmt.Fprintf(w, "ml4all_kernel_backend_info{fast_backend=%q,cpu=%q} 1\n",
		linalg.FastBackend(), linalg.CPUFeatures())
	b := obs.Build()
	fmt.Fprintln(w, "# HELP ml4all_build_info Build identity of the running binary.")
	fmt.Fprintln(w, "# TYPE ml4all_build_info gauge")
	fmt.Fprintf(w, "ml4all_build_info{version=%q,go=%q,revision=%q} 1\n",
		b.Version, b.Go, b.Revision)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := s.manager.StateCounts()
	payload := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"jobs":           counts,
		"models":         len(s.registry.Names()),
		"kernel_backend": linalg.FastBackend(),
		"cpu_features":   linalg.CPUFeatures(),
		"build":          obs.Build(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(payload)
}
