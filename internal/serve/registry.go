package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ml4all"
)

// Registry is the versioned model store: every published model lives on disk
// as name@version (one SaveModel file per version under dir/<name>/), with an
// in-memory index in front. Publishing is atomic — the model file is written
// to a temp name and renamed into place, so a concurrent reader (or a crash)
// never observes a half-written model — and a version number is never reused
// within one registry directory: deletion leaves a tombstone file behind, so
// the high-water mark survives restarts and a client pinning name@version can
// never silently receive a different model under the same coordinates.
type Registry struct {
	dir string

	mu     sync.RWMutex
	models map[string][]*ModelVersion // per name, ascending by version
	highV  map[string]int             // per name, highest version ever assigned
}

// errNotFound marks lookup failures (vs I/O faults) so the HTTP layer can
// map them to 404 instead of 500.
var errNotFound = errors.New("not found")

// ModelVersion is one published model plus its registry coordinates.
type ModelVersion struct {
	Name    string
	Version int
	Path    string
	Model   *ml4all.Model
}

// versionFile renders the on-disk file name of a version.
func versionFile(v int) string { return fmt.Sprintf("v%06d.model", v) }

// tombstoneFile renders the file name a deleted version is renamed to. The
// tombstone keeps the version number burned even across restarts.
func tombstoneFile(v int) string { return fmt.Sprintf(".deleted-%s", versionFile(v)) }

// parseVersionFile inverts versionFile; ok is false for foreign files.
func parseVersionFile(name string) (int, bool) {
	rest, found := strings.CutPrefix(name, "v")
	rest, cut := strings.CutSuffix(rest, ".model")
	if !found || !cut {
		return 0, false
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// validName guards registry names: they become path components.
func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: invalid model name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("serve: invalid model name %q: must not start with a dot", name)
	}
	return nil
}

// OpenRegistry opens (creating if needed) a registry rooted at dir and loads
// every model version found there, so published models survive restarts.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: registry dir: %w", err)
	}
	r := &Registry{dir: dir, models: map[string][]*ModelVersion{}, highV: map[string]int{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: registry dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || validName(e.Name()) != nil {
			continue
		}
		name := e.Name()
		files, err := os.ReadDir(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("serve: registry %s: %w", name, err)
		}
		for _, f := range files {
			if rest, found := strings.CutPrefix(f.Name(), ".deleted-"); found {
				// Tombstone: the version number is burned, the model gone.
				if v, ok := parseVersionFile(rest); ok && v > r.highV[name] {
					r.highV[name] = v
				}
				continue
			}
			v, ok := parseVersionFile(f.Name())
			if !ok {
				continue // temp files, strays
			}
			path := filepath.Join(dir, name, f.Name())
			m, err := ml4all.LoadModel(path)
			if err != nil {
				return nil, fmt.Errorf("serve: loading %s@%d: %w", name, v, err)
			}
			m.Name = name
			r.models[name] = append(r.models[name], &ModelVersion{Name: name, Version: v, Path: path, Model: m})
			if v > r.highV[name] {
				r.highV[name] = v
			}
		}
		sort.Slice(r.models[name], func(i, j int) bool {
			return r.models[name][i].Version < r.models[name][j].Version
		})
		if len(r.models[name]) == 0 {
			delete(r.models, name)
		}
	}
	return r, nil
}

// Publish persists m as the next version of name and makes it the latest.
// The write is atomic: a temp file renamed into its version slot.
func (r *Registry) Publish(name string, m *ml4all.Model) (*ModelVersion, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.highV[name] + 1
	ndir := filepath.Join(r.dir, name)
	if err := os.MkdirAll(ndir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: publish %s: %w", name, err)
	}
	// Copy with the registry coordinates baked in, so the persisted file and
	// the served metadata agree.
	pub := *m
	pub.Name = name
	tmp := filepath.Join(ndir, fmt.Sprintf(".tmp-%s", versionFile(next)))
	if err := ml4all.SaveModel(tmp, &pub); err != nil {
		os.Remove(tmp) // SaveModel may have created a partial file
		return nil, fmt.Errorf("serve: publish %s@%d: %w", name, next, err)
	}
	path := filepath.Join(ndir, versionFile(next))
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("serve: publish %s@%d: %w", name, next, err)
	}
	mv := &ModelVersion{Name: name, Version: next, Path: path, Model: &pub}
	r.models[name] = append(r.models[name], mv)
	r.highV[name] = next
	return mv, nil
}

// Get returns a model version; version 0 means the latest.
func (r *Registry) Get(name string, version int) (*ModelVersion, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	vs := r.models[name]
	if len(vs) == 0 {
		return nil, false
	}
	if version == 0 {
		return vs[len(vs)-1], true
	}
	for _, mv := range vs {
		if mv.Version == version {
			return mv, true
		}
	}
	return nil, false
}

// Versions returns every version of a model, ascending.
func (r *Registry) Versions(name string) []*ModelVersion {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*ModelVersion(nil), r.models[name]...)
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Delete removes one version of a model, or — with version 0 — the whole
// model. Removing the latest version promotes the previous one. On disk the
// version file becomes a tombstone (rename, not removal), keeping the
// version number burned across restarts.
func (r *Registry) Delete(name string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.models[name]
	if len(vs) == 0 {
		return fmt.Errorf("serve: model %q %w", name, errNotFound)
	}
	entomb := func(mv *ModelVersion) error {
		dst := filepath.Join(filepath.Dir(mv.Path), tombstoneFile(mv.Version))
		if err := os.Rename(mv.Path, dst); err != nil {
			return fmt.Errorf("serve: delete %s@%d: %w", name, mv.Version, err)
		}
		return nil
	}
	if version == 0 {
		for _, mv := range vs {
			if err := entomb(mv); err != nil {
				return err
			}
		}
		delete(r.models, name)
		return nil
	}
	for i, mv := range vs {
		if mv.Version == version {
			if err := entomb(mv); err != nil {
				return err
			}
			r.models[name] = append(vs[:i:i], vs[i+1:]...)
			if len(r.models[name]) == 0 {
				delete(r.models, name)
			}
			return nil
		}
	}
	return fmt.Errorf("serve: model %s@%d %w", name, version, errNotFound)
}
