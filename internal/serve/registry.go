package serve

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ml4all"
	"ml4all/internal/fault"
)

// Registry is the versioned model store: every published model lives on disk
// as name@version (one checksummed text file per version under dir/<name>/),
// with an in-memory index in front. Publishing is atomic and durable — the
// model is written to a temp name, fsynced, renamed into place, and the
// directory fsynced, so a concurrent reader (or a crash at any instruction)
// never observes a half-written model — and a version number is never reused
// within one registry directory: deletion leaves a tombstone file behind, so
// the high-water mark survives restarts and a client pinning name@version can
// never silently receive a different model under the same coordinates. A
// version whose file fails its checksum on load is entombed as
// ".corrupt-v*" (number stays burned) and the previous good version serves
// as latest; stranded ".tmp-*" files from mid-publish crashes are swept.
type Registry struct {
	dir      string
	fs       fault.FS
	counters *Counters

	mu     sync.RWMutex
	models map[string][]*ModelVersion // per name, ascending by version
	highV  map[string]int             // per name, highest version ever assigned
}

// errNotFound marks lookup failures (vs I/O faults) so the HTTP layer can
// map them to 404 instead of 500.
var errNotFound = errors.New("not found")

// ModelVersion is one published model plus its registry coordinates.
type ModelVersion struct {
	Name    string
	Version int
	Path    string
	Model   *ml4all.Model
}

// versionFile renders the on-disk file name of a version.
func versionFile(v int) string { return fmt.Sprintf("v%06d.model", v) }

// tombstoneFile renders the file name a deleted version is renamed to. The
// tombstone keeps the version number burned even across restarts.
func tombstoneFile(v int) string { return fmt.Sprintf(".deleted-%s", versionFile(v)) }

// parseVersionFile inverts versionFile; ok is false for foreign files.
func parseVersionFile(name string) (int, bool) {
	rest, found := strings.CutPrefix(name, "v")
	rest, cut := strings.CutSuffix(rest, ".model")
	if !found || !cut {
		return 0, false
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// validName guards registry names: they become path components.
func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: invalid model name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	if name[0] == '.' {
		return fmt.Errorf("serve: invalid model name %q: must not start with a dot", name)
	}
	return nil
}

// OpenRegistry opens (creating if needed) a registry rooted at dir and loads
// every model version found there, so published models survive restarts.
func OpenRegistry(dir string) (*Registry, error) {
	return OpenRegistryWith(dir, nil, nil)
}

// OpenRegistryWith is OpenRegistry with a fault injector on the filesystem
// seam (nil: the raw OS) and counters for corruption-fallback observations
// (nil: unobserved). Startup is where the crash-recovery work happens:
// stranded ".tmp-*" files from mid-publish crashes are removed, and any
// version that no longer loads — torn file, checksum mismatch — is entombed
// as ".corrupt-v*" (burning its number) so the previous good version serves
// as latest instead of the whole registry failing to open.
func OpenRegistryWith(dir string, inj *fault.Injector, counters *Counters) (*Registry, error) {
	fsys := fault.NewFS(inj, "registry")
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("serve: registry dir: %w", err)
	}
	r := &Registry{dir: dir, fs: fsys, counters: counters, models: map[string][]*ModelVersion{}, highV: map[string]int{}}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: registry dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || validName(e.Name()) != nil {
			continue
		}
		name := e.Name()
		files, err := fsys.ReadDir(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("serve: registry %s: %w", name, err)
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), ".tmp-") {
				// Residue of a crash between temp write and rename; the
				// version it was becoming was never published.
				fsys.Remove(filepath.Join(dir, name, f.Name()))
				continue
			}
			if rest, found := strings.CutPrefix(f.Name(), ".deleted-"); found {
				// Tombstone: the version number is burned, the model gone.
				if v, ok := parseVersionFile(rest); ok && v > r.highV[name] {
					r.highV[name] = v
				}
				continue
			}
			if rest, found := strings.CutPrefix(f.Name(), ".corrupt-"); found {
				// A version entombed by a previous open; still burned.
				if v, ok := parseVersionFile(rest); ok && v > r.highV[name] {
					r.highV[name] = v
				}
				continue
			}
			v, ok := parseVersionFile(f.Name())
			if !ok {
				continue // strays
			}
			if v > r.highV[name] {
				r.highV[name] = v
			}
			path := filepath.Join(dir, name, f.Name())
			m, err := r.loadVersion(path, name)
			if err != nil {
				if errors.Is(err, fault.ErrCrash) {
					// Simulated process death, not a bad file: die instead of
					// entombing a version that is merely unreadable right now.
					return nil, fmt.Errorf("serve: registry %s: %w", name, err)
				}
				// Corrupt version: entomb it (keeping the number burned) and
				// fall back — the previous good version becomes the latest.
				fsys.Rename(path, filepath.Join(dir, name, ".corrupt-"+f.Name()))
				counters.registryFallback()
				continue
			}
			r.models[name] = append(r.models[name], &ModelVersion{Name: name, Version: v, Path: path, Model: m})
		}
		sort.Slice(r.models[name], func(i, j int) bool {
			return r.models[name][i].Version < r.models[name][j].Version
		})
		if len(r.models[name]) == 0 {
			delete(r.models, name)
		}
	}
	return r, nil
}

// loadVersion reads and verifies one model file through the injectable seam.
func (r *Registry) loadVersion(path, name string) (*ml4all.Model, error) {
	raw, err := r.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ml4all.DecodeModel(raw, path)
	if err != nil {
		return nil, err
	}
	m.Name = name
	return m, nil
}

// Publish persists m as the next version of name and makes it the latest.
// The write is atomic and durable: a checksummed temp file fsynced and
// renamed into its version slot, then the directory fsynced — a crash at any
// point leaves either the previous registry state (plus at worst a swept-at-
// startup temp file) or the complete new version.
func (r *Registry) Publish(name string, m *ml4all.Model) (*ModelVersion, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.highV[name] + 1
	ndir := filepath.Join(r.dir, name)
	if err := r.fs.MkdirAll(ndir); err != nil {
		return nil, fmt.Errorf("serve: publish %s: %w", name, err)
	}
	// Copy with the registry coordinates baked in, so the persisted file and
	// the served metadata agree.
	pub := *m
	pub.Name = name
	path := filepath.Join(ndir, versionFile(next))
	if err := fault.WriteDurable(r.fs, path, ml4all.EncodeModel(&pub)); err != nil {
		return nil, fmt.Errorf("serve: publish %s@%d: %w", name, next, err)
	}
	mv := &ModelVersion{Name: name, Version: next, Path: path, Model: &pub}
	r.models[name] = append(r.models[name], mv)
	r.highV[name] = next
	return mv, nil
}

// Get returns a model version; version 0 means the latest.
func (r *Registry) Get(name string, version int) (*ModelVersion, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	vs := r.models[name]
	if len(vs) == 0 {
		return nil, false
	}
	if version == 0 {
		return vs[len(vs)-1], true
	}
	for _, mv := range vs {
		if mv.Version == version {
			return mv, true
		}
	}
	return nil, false
}

// Versions returns every version of a model, ascending.
func (r *Registry) Versions(name string) []*ModelVersion {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*ModelVersion(nil), r.models[name]...)
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Delete removes one version of a model, or — with version 0 — the whole
// model. Removing the latest version promotes the previous one. On disk the
// version file becomes a tombstone (rename, not removal), keeping the
// version number burned across restarts.
func (r *Registry) Delete(name string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.models[name]
	if len(vs) == 0 {
		return fmt.Errorf("serve: model %q %w", name, errNotFound)
	}
	entomb := func(mv *ModelVersion) error {
		dst := filepath.Join(filepath.Dir(mv.Path), tombstoneFile(mv.Version))
		if err := r.fs.Rename(mv.Path, dst); err != nil {
			return fmt.Errorf("serve: delete %s@%d: %w", name, mv.Version, err)
		}
		return nil
	}
	if version == 0 {
		for _, mv := range vs {
			if err := entomb(mv); err != nil {
				return err
			}
		}
		delete(r.models, name)
		return nil
	}
	for i, mv := range vs {
		if mv.Version == version {
			if err := entomb(mv); err != nil {
				return err
			}
			r.models[name] = append(vs[:i:i], vs[i+1:]...)
			if len(r.models[name]) == 0 {
				delete(r.models, name)
			}
			return nil
		}
	}
	return fmt.Errorf("serve: model %s@%d %w", name, version, errNotFound)
}
