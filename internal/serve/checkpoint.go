package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"ml4all/internal/fault"
)

// Checkpoint frame: a fixed magic, a CRC32-Castagnoli of the payload, the
// payload length, then the gob TrainState. The CRC is what lets restart
// recovery tell a good checkpoint from a torn or bit-rotted one and fall
// back to an older frame instead of failing the job.
//
//	offset  size  field
//	0       8     magic "ML4CKPT1"
//	8       4     crc32c(payload), little-endian
//	12      4     len(payload), little-endian
//	16      ...   payload (gob TrainState)
var ckptMagic = []byte("ML4CKPT1")

// castagnoliTable is shared by checkpoint frames; model files use the same
// polynomial (ml4all.EncodeModel) so one corruption story covers both.
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

func encodeCheckpointFrame(payload []byte) []byte {
	buf := make([]byte, 0, len(ckptMagic)+8+len(payload))
	buf = append(buf, ckptMagic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.Checksum(payload, castagnoliTable))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func decodeCheckpointFrame(raw []byte) ([]byte, error) {
	if len(raw) < len(ckptMagic)+8 || !bytes.Equal(raw[:len(ckptMagic)], ckptMagic) {
		return nil, fmt.Errorf("serve: checkpoint frame: bad magic or truncated header")
	}
	body := raw[len(ckptMagic):]
	sum := binary.LittleEndian.Uint32(body[0:4])
	n := binary.LittleEndian.Uint32(body[4:8])
	payload := body[8:]
	if uint64(len(payload)) != uint64(n) {
		return nil, fmt.Errorf("serve: checkpoint frame: %d payload bytes, header says %d", len(payload), n)
	}
	if crc32.Checksum(payload, castagnoliTable) != sum {
		return nil, fmt.Errorf("serve: checkpoint frame: checksum mismatch")
	}
	return payload, nil
}

// legacyCheckpoint is the pre-framing single-checkpoint filename; jobs
// written by older builds resume from it when no framed checkpoint exists.
const legacyCheckpoint = "checkpoint.gob"

// ckptFileName names a framed checkpoint by the iteration it captured;
// zero-padding makes lexicographic order chronological.
func ckptFileName(iteration int) string { return fmt.Sprintf("ckpt-%09d.ckpt", iteration) }

// listCheckpoints returns the checkpoint filenames in dir, newest first,
// with the legacy unframed file (if any) as the last resort. Recovery walks
// this list front to back, skipping frames that fail their checksum.
func listCheckpoints(fsys fault.FS, dir string) []string {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	legacy := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if name == legacyCheckpoint {
			legacy = true
			continue
		}
		if strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ckpt") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	if legacy {
		names = append(names, legacyCheckpoint)
	}
	return names
}
