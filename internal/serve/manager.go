package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ml4all"
	"ml4all/internal/fault"
	"ml4all/internal/lang"
	"ml4all/internal/linalg"
	"ml4all/internal/obs"
)

// JobState is a training job's lifecycle state.
type JobState string

// Job lifecycle: Submit → queued → running → {completed, failed, cancelled},
// with running ⇄ paused in between. Non-terminal jobs survive a restart:
// their manifest and latest checkpoint are on disk, and the manager re-queues
// them on open (paused jobs stay paused).
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobPaused    JobState = "paused"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether a state ends the job.
func (s JobState) terminal() bool {
	return s == JobCompleted || s == JobFailed || s == JobCancelled
}

// errCancelled is what the interrupt hook returns for a cancelled job; the
// engine wraps it in engine.ErrInterrupted.
var errCancelled = errors.New("job cancelled")

// errShutdown is what the interrupt hook returns while the manager shuts
// down; the runner checkpoints and requeues the job instead of failing it.
var errShutdown = errors.New("manager shutting down")

// Job is one submitted training job. All mutable fields are guarded by mu;
// the embedded TrainJob is owned by exactly one runner goroutine at a time.
type Job struct {
	ID     string
	Script string
	Model  string // registry name the result publishes under

	// FastMath records the submission's kernel-tier opt-in
	// (ml4all.JobOptions.FastMath). Persisted in the manifest so a job
	// resumed after a restart reopens on the tier it trained on — resuming
	// an exact-tier checkpoint under fast kernels (or vice versa) would
	// break the resume-is-bit-identical guarantee. The statement-level
	// `having fastmath` knob travels inside Script and needs no field.
	FastMath bool

	mu        sync.Mutex
	stmt      *lang.Run
	state     JobState
	errMsg    string
	planName  string
	iteration int
	finalErr  float64 // last convergence delta observed
	converged bool
	published int // registry version, 0 until published

	job       *ml4all.TrainJob // live trainer; nil until opened / after restart
	cancelled chan struct{}
	pause     bool

	// Observability surfaces, attached once at submission/reload and
	// immutable thereafter (no lock needed to read the pointers):
	// iteration telemetry, the span timeline, and the live event stream.
	ring   *obs.Ring
	trace  *obs.Trace
	events *obs.EventLog

	// fromRestart marks a job re-queued by loadJobs after a restart;
	// replayed flips once its trainer reopens (or the job settles without
	// one), draining the manager's recovering gauge.
	fromRestart bool
	replayed    bool
}

// Ring returns the job's iteration-telemetry ring buffer.
func (j *Job) Ring() *obs.Ring { return j.ring }

// Trace returns the job's span timeline (the /v1/jobs/{id}/trace source).
func (j *Job) Trace() *obs.Trace { return j.trace }

// Events returns the job's live event stream (the /v1/jobs/{id}/events
// source).
func (j *Job) Events() *obs.EventLog { return j.events }

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID        string   `json:"id"`
	Model     string   `json:"model"`
	State     JobState `json:"state"`
	Plan      string   `json:"plan,omitempty"`
	Iteration int      `json:"iteration"`
	Delta     float64  `json:"delta,omitempty"`
	Converged bool     `json:"converged"`
	Version   int      `json:"version,omitempty"` // published registry version
	Error     string   `json:"error,omitempty"`
}

// manifest is the per-job record persisted next to the checkpoint, enough to
// reconstruct the job after a restart.
type manifest struct {
	ID       string   `json:"id"`
	Script   string   `json:"script"`
	Model    string   `json:"model"`
	FastMath bool     `json:"fastmath,omitempty"`
	State    JobState `json:"state"`
	Plan     string   `json:"plan,omitempty"`
	// Iteration is the progress at the last persist, so a job reloaded after
	// a restart — a settled one especially — still reports how far it ran.
	Iteration int    `json:"iteration,omitempty"`
	Error     string `json:"error,omitempty"`
}

// ManagerConfig sizes the job manager.
type ManagerConfig struct {
	// Dir is the state root; jobs live under Dir/jobs/<id>/.
	Dir string
	// Pool is the number of jobs training concurrently. 0 means 2.
	Pool int
	// QueueDepth bounds the submission queue. 0 means 256.
	QueueDepth int
	// CheckpointEvery is the wall-clock interval between checkpoint writes
	// while a job runs. 0 means 2s; negative disables interval checkpoints
	// (shutdown and pause still checkpoint).
	CheckpointEvery time.Duration
	// RetainCheckpoints is how many durable checkpoints to keep per job;
	// older ones are pruned after each write. Recovery scans them newest to
	// oldest, so extra retained frames are what corruption falls back to.
	// 0 means 3.
	RetainCheckpoints int
	// Fault, when non-nil, injects deterministic faults into every
	// checkpoint/manifest filesystem operation (crash tests, chaos drills).
	Fault *fault.Injector
	// Counters, when non-nil, receives durability observations (checkpoints
	// written/verified/discarded, recovered panics).
	Counters *Counters

	// stepHook, when non-nil, runs after every successful Step of every
	// job. Test-only: the shutdown/restart tests throttle iterations with
	// it so "mid-flight" is a state they can reliably hit.
	stepHook func(jobID string, iteration int)
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Pool <= 0 {
		c.Pool = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	if c.RetainCheckpoints <= 0 {
		c.RetainCheckpoints = 3
	}
	return c
}

// Manager accepts declarative training jobs and runs them on a bounded pool
// of resumable trainers: each runner drives its job one Step at a time, so
// jobs are cancellable between iterations (the engine's Interrupt hook),
// pausable, checkpointed to disk on an interval, and — because the manifest
// and checkpoint are on disk — resumable after a process restart,
// bit-identically to a run that was never stopped.
type Manager struct {
	cfg ManagerConfig
	reg *Registry

	// ckptFS/mfFS are the fault-injectable filesystem seams every checkpoint
	// and manifest write goes through; with no injector they are the raw OS.
	ckptFS fault.FS
	mfFS   fault.FS

	// ledger is the persistent run history at jobs/ledger.jsonl: one record
	// per completed job, written through the same durable-write protocol as
	// checkpoints (fault tag "ledger").
	ledger *obs.Ledger

	// recovering counts restart-recovered jobs whose trainers have not yet
	// replayed; the HTTP layer sheds submissions while it is non-zero.
	recovering atomic.Int64

	// sys is the shared System; sysMu serializes catalog access (dataset
	// loading, planning) — job Steps run outside the lock on job-local
	// state only.
	sys   *ml4all.System
	sysMu sync.Mutex

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID int
	closed bool

	queue    chan *Job
	wg       sync.WaitGroup
	shutdown chan struct{}
}

// NewManager opens (creating if needed) a manager rooted at cfg.Dir, reloads
// every job found there — re-queuing non-terminal ones from their latest
// checkpoint — and starts the runner pool.
func NewManager(cfg ManagerConfig, sys *ml4all.System, reg *Registry) (*Manager, error) {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		reg:      reg,
		ckptFS:   fault.NewFS(cfg.Fault, "ckpt"),
		mfFS:     fault.NewFS(cfg.Fault, "manifest"),
		sys:      sys,
		jobs:     map[string]*Job{},
		shutdown: make(chan struct{}),
	}
	if err := m.mfFS.MkdirAll(m.jobsDir()); err != nil {
		return nil, fmt.Errorf("serve: jobs dir: %w", err)
	}
	// A crash inside a ledger append strands a ".tmp-*" in the jobs root;
	// sweep before opening (loadJobs sweeps the per-job directories).
	ledgerFS := fault.NewFS(cfg.Fault, "ledger")
	fault.SweepTemps(ledgerFS, m.jobsDir())
	ledger, err := obs.OpenLedger(ledgerFS, filepath.Join(m.jobsDir(), "ledger.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("serve: run ledger: %w", err)
	}
	m.ledger = ledger
	resumable, err := m.loadJobs()
	if err != nil {
		return nil, err
	}
	// Until every resumable job has replayed its checkpoint, the manager
	// reports Recovering and the HTTP layer sheds new submissions with 503.
	for _, j := range resumable {
		j.fromRestart = true
	}
	m.recovering.Store(int64(len(resumable)))
	// The queue must at least hold every job reloaded from disk, or startup
	// would block on its own backlog.
	depth := cfg.QueueDepth
	if len(resumable) > depth {
		depth = len(resumable)
	}
	m.queue = make(chan *Job, depth)
	for _, j := range resumable {
		m.queue <- j
	}
	for i := 0; i < cfg.Pool; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m, nil
}

func (m *Manager) jobsDir() string         { return filepath.Join(m.cfg.Dir, "jobs") }
func (m *Manager) jobDir(id string) string { return filepath.Join(m.jobsDir(), id) }

// Ledger returns the manager's persistent run history.
func (m *Manager) Ledger() *obs.Ledger { return m.ledger }

// attachObs wires a job's observability surfaces: the iteration-telemetry
// ring, a span trace whose closed spans feed the per-phase histograms, and
// the live event stream.
func (m *Manager) attachObs(j *Job) {
	j.ring = obs.NewRing(0)
	j.trace = obs.NewTrace()
	j.trace.OnEnd(func(name string, d time.Duration) { m.cfg.Counters.observePhase(name, d) })
	j.events = obs.NewEventLog(0)
}

// Recovering reports whether restart-recovered jobs are still replaying
// toward their pre-crash state. While true the server answers new
// submissions with 503 + Retry-After instead of competing with recovery for
// pool slots; predict and job inspection stay available (degraded, not down).
func (m *Manager) Recovering() bool { return m.recovering.Load() > 0 }

// replayDone marks a restart-recovered job as replayed — its trainer
// reopened, or the job settled without needing one. Idempotent per job.
func (m *Manager) replayDone(j *Job) {
	j.mu.Lock()
	fire := j.fromRestart && !j.replayed
	j.replayed = true
	j.mu.Unlock()
	if fire {
		m.recovering.Add(-1)
	}
}

// loadJobs reloads persisted jobs after a restart, returning the ones to
// re-queue. Jobs that were queued or running when the process died re-enter
// the queue immediately (resuming from their latest checkpoint when one
// exists); paused ones wait for an explicit resume.
func (m *Manager) loadJobs() ([]*Job, error) {
	entries, err := m.mfFS.ReadDir(m.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("serve: jobs dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded ids sort in submission order
	var resumable []*Job
	for _, id := range names {
		// A crash inside a durable write strands a ".tmp-*" sibling; sweep
		// them before anything else looks at the directory.
		fault.SweepTemps(m.mfFS, m.jobDir(id))
		raw, err := m.mfFS.ReadFile(filepath.Join(m.jobDir(id), "manifest.json"))
		if os.IsNotExist(err) {
			continue // crashed between job-dir creation and the first persist
		}
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: %w", id, err)
		}
		var mf manifest
		if err := json.Unmarshal(raw, &mf); err != nil {
			return nil, fmt.Errorf("serve: job %s manifest: %w", id, err)
		}
		stmt, err := parseJobScript(mf.Script)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s script no longer parses: %w", id, err)
		}
		j := &Job{
			ID: mf.ID, Script: mf.Script, Model: mf.Model, FastMath: mf.FastMath,
			stmt: stmt, state: mf.State, errMsg: mf.Error, planName: mf.Plan,
			iteration: mf.Iteration,
			cancelled: make(chan struct{}),
		}
		m.attachObs(j)
		if j.state.terminal() {
			// The stream of a job that settled in a previous process is
			// born closed: subscribers get the final state and EOF.
			j.events.Close(string(j.state))
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil && n >= m.nextID {
			m.nextID = n + 1
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		if j.state == JobRunning || j.state == JobQueued {
			j.state = JobQueued
			resumable = append(resumable, j)
		}
	}
	return resumable, nil
}

// parseJobScript parses a job submission: exactly one run statement. Parse
// errors carry source positions (lang.SyntaxError), so submission failures
// point into the submitted text.
func parseJobScript(script string) (*lang.Run, error) {
	stmts, err := lang.Parse(script)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("serve: a job is exactly one statement, got %d", len(stmts))
	}
	q, ok := stmts[0].(*lang.Run)
	if !ok {
		return nil, fmt.Errorf("serve: a job must be a run statement, got %s", stmts[0])
	}
	if q.Adaptive {
		// OpenJob would reject this at run time; fail the statically
		// detectable error at submission instead of queuing a doomed job.
		return nil, fmt.Errorf("serve: adaptive run statements are not servable as resumable jobs — drop 'adaptive' (TrainAdaptive remains a batch API)")
	}
	return q, nil
}

// SubmitOptions carry the per-job execution knobs of a submission beyond the
// script itself.
type SubmitOptions struct {
	// FastMath opts the job into the fast kernel tier
	// (ml4all.JobOptions.FastMath) without editing the statement; the
	// statement-level `having fastmath` knob is the in-script equivalent.
	FastMath bool
}

// Submit queues a new training job. model names the registry entry the
// trained model publishes under; empty means the statement's assigned query
// name, falling back to the job id.
func (m *Manager) Submit(script, model string) (*Job, error) {
	return m.SubmitJob(script, model, SubmitOptions{})
}

// SubmitJob is Submit with execution options.
func (m *Manager) SubmitJob(script, model string, opts SubmitOptions) (*Job, error) {
	q, err := parseJobScript(script)
	if err != nil {
		return nil, err
	}
	if model == "" {
		model = q.Result
	}
	if model != "" {
		if err := validName(model); err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: manager is shut down")
	}
	id := fmt.Sprintf("job-%04d", m.nextID)
	m.nextID++
	if model == "" {
		model = id
	}
	j := &Job{
		ID: id, Script: script, Model: model, FastMath: opts.FastMath,
		stmt: q, state: JobQueued,
		cancelled: make(chan struct{}),
	}
	m.attachObs(j)
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()

	// Any failure past this point settles the job as failed — it is already
	// visible in listings and must not linger as a ghost "queued" entry no
	// runner will ever claim.
	if err := m.mfFS.MkdirAll(m.jobDir(id)); err != nil {
		err = fmt.Errorf("serve: job dir: %w", err)
		m.fail(j, err)
		return nil, err
	}
	if err := m.persist(j); err != nil {
		m.fail(j, err)
		return nil, err
	}
	select {
	case m.queue <- j:
	default:
		m.fail(j, fmt.Errorf("job queue full (%d pending)", m.cfg.QueueDepth))
		return nil, fmt.Errorf("serve: job queue full (%d pending)", m.cfg.QueueDepth)
	}
	return j, nil
}

// Job returns a job by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job's status in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.Job(id); ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// StateCounts tallies jobs by state (the health endpoint's view).
func (m *Manager) StateCounts() map[JobState]int {
	counts := map[JobState]int{}
	for _, st := range m.List() {
		counts[st.State]++
	}
	return counts
}

// Cancel stops a job. Queued jobs cancel immediately; running jobs are
// interrupted between iterations through the engine's Interrupt hook.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("serve: job %q not found", id)
	}
	j.mu.Lock()
	if j.state.terminal() {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("serve: job %s is already %s", id, state)
	}
	select {
	case <-j.cancelled:
	default:
		close(j.cancelled)
	}
	// A pending pause must not outrun the cancel: cleared here, and the
	// runner's iteration edge checks cancellation before the pause flag.
	j.pause = false
	// A queued or paused job has no runner to observe the channel: settle it
	// here. A running job's runner settles it on the next iteration edge.
	settled := false
	if j.state == JobQueued || j.state == JobPaused {
		j.state = JobCancelled
		j.job = nil
		settled = true
	}
	j.mu.Unlock()
	if settled {
		j.events.Close(string(JobCancelled))
		m.persist(j)
		m.replayDone(j)
	}
	return nil
}

// Pause asks a running job to yield its pool slot at the next iteration
// edge, checkpointing first. Queued jobs cannot pause (they hold no slot).
func (m *Manager) Pause(id string) error {
	j, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("serve: job %q not found", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobRunning {
		return fmt.Errorf("serve: job %s is %s, only running jobs pause", id, j.state)
	}
	j.pause = true
	return nil
}

// Resume re-queues a paused job.
func (m *Manager) Resume(id string) error {
	j, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("serve: job %q not found", id)
	}
	j.mu.Lock()
	if j.state != JobPaused {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("serve: job %s is %s, only paused jobs resume", id, state)
	}
	j.pause = false
	j.state = JobQueued
	j.mu.Unlock()
	select {
	case m.queue <- j:
		m.persist(j)
		return nil
	default:
		j.mu.Lock()
		j.state = JobPaused
		j.mu.Unlock()
		return fmt.Errorf("serve: job queue full")
	}
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.ID, Model: j.Model, State: j.state, Plan: j.planName,
		Iteration: j.iteration, Delta: j.finalErr, Converged: j.converged,
		Version: j.published, Error: j.errMsg,
	}
}

// persist writes the job's manifest atomically and durably. Unique temp
// names matter: a runner and an HTTP-side Cancel may persist the same job
// concurrently, and rename's atomicity makes last-writer-wins safe.
func (m *Manager) persist(j *Job) error {
	j.mu.Lock()
	mf := manifest{ID: j.ID, Script: j.Script, Model: j.Model, FastMath: j.FastMath, State: j.state, Plan: j.planName, Iteration: j.iteration, Error: j.errMsg}
	j.mu.Unlock()
	raw, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	if err := fault.WriteDurable(m.mfFS, filepath.Join(m.jobDir(j.ID), "manifest.json"), raw); err != nil {
		return fmt.Errorf("serve: job %s manifest: %w", j.ID, err)
	}
	return nil
}

// writeCheckpoint serializes the trainer's state into a CRC-framed file,
// fsyncs it (and the directory) into place, and prunes beyond the retention
// window. The trainer is passed explicitly — it is the runner's, taken under
// j.mu once.
func (m *Manager) writeCheckpoint(j *Job, tj *ml4all.TrainJob) error {
	sp := j.trace.Start("checkpoint", -1)
	defer j.trace.End(sp)
	state, err := tj.Checkpoint()
	if err != nil {
		return err
	}
	dir := m.jobDir(j.ID)
	path := filepath.Join(dir, ckptFileName(tj.Iteration()))
	if err := fault.WriteDurable(m.ckptFS, path, encodeCheckpointFrame(state)); err != nil {
		return fmt.Errorf("serve: job %s checkpoint: %w", j.ID, err)
	}
	m.cfg.Counters.checkpointWritten()
	m.pruneCheckpoints(dir)
	return nil
}

// pruneCheckpoints drops checkpoints beyond the retention window, oldest
// first. Best-effort: a failed remove leaves an extra frame, never loses one.
func (m *Manager) pruneCheckpoints(dir string) {
	names := listCheckpoints(m.ckptFS, dir)
	for i := m.cfg.RetainCheckpoints; i < len(names); i++ {
		m.ckptFS.Remove(filepath.Join(dir, names[i]))
	}
}

// Shutdown stops the manager gracefully: submissions are refused, runners
// finish their current iteration, checkpoint their jobs and exit, and
// in-flight jobs are left re-queueable (state running/queued on disk) so a
// new manager on the same directory resumes them. Blocks until the pool has
// drained or ctx expires.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.shutdown)
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// runner is one pool worker: it claims queued jobs and drives each to a
// terminal state, a pause, or a shutdown checkpoint.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		select {
		case <-m.shutdown:
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// interruptHook builds the engine Interrupt callback for a job: it fires on
// job cancellation and on manager shutdown, making Step return before the
// iteration mutates anything.
func (m *Manager) interruptHook(j *Job) func() error {
	return func() error {
		select {
		case <-j.cancelled:
			return errCancelled
		case <-m.shutdown:
			return errShutdown
		default:
			return nil
		}
	}
}

// openJob binds the job to a live trainer. Recovery scans the retained
// checkpoints newest to oldest: a frame that fails its checksum (torn write,
// bit rot) or no longer resumes is counted, skipped, and the next-older one
// tried — the job falls back past corruption instead of failing, losing at
// most the work since the last durable frame. With no usable checkpoint the
// job opens fresh. Catalog access and planning run under sysMu; the trainer
// is job-local.
func (m *Manager) openJob(j *Job) error {
	opts := ml4all.JobOptions{Interrupt: m.interruptHook(j), FastMath: j.FastMath, Observer: j.ring, Trace: j.trace}
	m.sysMu.Lock()
	defer m.sysMu.Unlock()
	dir := m.jobDir(j.ID)
	ckpts := listCheckpoints(m.ckptFS, dir)
	rec := -1
	if len(ckpts) > 0 {
		rec = j.trace.Start("recover", -1)
	}
	for _, name := range ckpts {
		raw, err := m.ckptFS.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if errors.Is(err, fault.ErrCrash) {
				j.trace.End(rec)
				return err // simulated process death: stop, don't burn frames
			}
			m.cfg.Counters.checkpointCorrupt()
			continue
		}
		state := raw
		if name != legacyCheckpoint {
			if state, err = decodeCheckpointFrame(raw); err != nil {
				m.cfg.Counters.checkpointCorrupt()
				continue
			}
		}
		tj, err := m.sys.ResumeJob(j.stmt, state, opts)
		if err != nil {
			m.cfg.Counters.checkpointCorrupt()
			continue
		}
		m.cfg.Counters.checkpointVerified()
		j.mu.Lock()
		j.job = tj
		j.mu.Unlock()
		j.trace.End(rec)
		return nil
	}
	j.trace.End(rec)
	tj, err := m.sys.OpenJob(j.stmt, opts)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.job = tj
	j.mu.Unlock()
	return nil
}

// runJob drives one claimed job. On return the job is terminal, paused,
// re-queued (shutdown), or failed. A panic anywhere in the drive — a UDF
// blowing up inside Model(), a publish hook, the step hook — fails this job
// with the panic value and stack instead of killing the process; shard-level
// UDF panics are already converted to engine.PanicError by the worker pool
// and arrive here as ordinary Step errors.
func (m *Manager) runJob(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			m.cfg.Counters.panicRecovered()
			m.fail(j, fmt.Errorf("serve: job %s panicked: %v\n%s", j.ID, r, debug.Stack()))
		}
	}()
	j.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		j.mu.Unlock()
		m.replayDone(j)
		return
	}
	needOpen := j.job == nil
	j.state = JobRunning
	j.mu.Unlock()
	m.persist(j)

	if needOpen {
		err := m.openJob(j)
		m.replayDone(j)
		if err != nil {
			// Position the failure in the submitted script, like Exec does.
			m.fail(j, fmt.Errorf("statement at %s: %w", j.stmt.At(), err))
			return
		}
	} else {
		m.replayDone(j)
	}
	j.mu.Lock()
	tj := j.job
	j.planName = tj.PlanName()
	j.iteration = tj.Iteration()
	j.mu.Unlock()
	m.persist(j) // record the chosen plan
	j.events.Append(obs.Event{Type: "state", State: string(JobRunning), Plan: tj.PlanName(), Iter: tj.Iteration()})

	// The train span covers the whole stepping loop; the deferred End
	// closes it on every exit path (End is idempotent — the completion
	// path closes it explicitly before the ledger record snapshots the
	// phase totals).
	train := j.trace.Start("train", -1)
	defer j.trace.End(train)

	// etaA/etaRem cache the convergence projection between re-fits: the
	// observed curve is re-fitted every 8 iterations, not every event.
	etaA, etaRem := 0.0, -1.0

	lastCkpt := time.Now()
	for !tj.Done() {
		// Cancellation is observed at iteration edges too (not only through
		// the engine hook), and strictly before the pause flag — a cancel
		// racing a pending pause must win, not strand the job in paused.
		select {
		case <-j.cancelled:
			j.mu.Lock()
			j.state = JobCancelled
			j.job = nil
			j.mu.Unlock()
			j.events.Close(string(JobCancelled))
			m.persist(j)
			return
		default:
		}
		j.mu.Lock()
		pausing := j.pause
		j.mu.Unlock()
		if pausing {
			if err := m.writeCheckpoint(j, tj); err != nil {
				m.fail(j, err)
				return
			}
			j.mu.Lock()
			j.state = JobPaused
			j.mu.Unlock()
			j.events.Append(obs.Event{Type: "state", State: string(JobPaused), Iter: tj.Iteration()})
			m.persist(j)
			return
		}

		err := tj.Step()
		j.mu.Lock()
		j.iteration = tj.Iteration()
		j.mu.Unlock()
		if err == nil && m.cfg.stepHook != nil {
			m.cfg.stepHook(j.ID, tj.Iteration())
		}
		if err != nil {
			switch {
			case errors.Is(err, errShutdown):
				// Checkpoint and leave the job re-queueable: a new manager
				// on this directory resumes it bit-identically.
				if cerr := m.writeCheckpoint(j, tj); cerr != nil {
					m.fail(j, cerr)
					return
				}
				j.mu.Lock()
				j.state = JobQueued
				j.mu.Unlock()
				j.events.Append(obs.Event{Type: "state", State: string(JobQueued), Iter: tj.Iteration()})
				m.persist(j)
				return
			case errors.Is(err, errCancelled):
				j.mu.Lock()
				j.state = JobCancelled
				j.job = nil
				j.mu.Unlock()
				j.events.Close(string(JobCancelled))
				m.persist(j)
				return
			default:
				m.fail(j, err)
				return
			}
		}
		iter := tj.Iteration()
		if iter%8 == 1 {
			etaA, etaRem = obs.CurveETA(j.ring.Curve(), tj.Tolerance())
		}
		var delta float64
		if ds := tj.Deltas(); len(ds) > 0 {
			delta = ds[len(ds)-1]
		}
		j.events.Append(obs.Event{
			Type: "progress", Iter: iter, Delta: obs.Finite(delta),
			FittedA: obs.Finite(etaA), EtaIters: etaRem,
		})

		if m.cfg.CheckpointEvery > 0 && time.Since(lastCkpt) >= m.cfg.CheckpointEvery {
			if err := m.writeCheckpoint(j, tj); err != nil {
				m.fail(j, err)
				return
			}
			lastCkpt = time.Now()
		}
	}
	j.trace.End(train)
	m.complete(j)
}

// complete publishes the finished model, appends the run's ledger record
// and settles the job. A ledger append failure is counted and logged into
// the metrics, never fails the job — history degrades, training does not.
func (m *Manager) complete(j *Job) {
	j.mu.Lock()
	tj := j.job
	j.mu.Unlock()
	model := tj.Model()
	prog := tj.Progress()
	mv, err := m.reg.Publish(j.Model, model)
	if err != nil {
		m.fail(j, fmt.Errorf("publishing model: %w", err))
		return
	}
	j.mu.Lock()
	j.state = JobCompleted
	j.iteration = prog.Iteration
	j.finalErr = prog.FinalDelta
	j.converged = prog.Converged
	j.published = mv.Version
	j.job = nil // release the trainer
	j.mu.Unlock()
	if m.ledger != nil {
		if err := m.ledger.Append(m.runRecord(j, tj, model, prog)); err != nil {
			m.cfg.Counters.ledgerError()
		} else {
			m.cfg.Counters.ledgerRecord()
		}
	}
	j.events.Close(string(JobCompleted))
	dir := m.jobDir(j.ID) // terminal jobs don't resume: drop every checkpoint
	for _, name := range listCheckpoints(m.ckptFS, dir) {
		m.ckptFS.Remove(filepath.Join(dir, name))
	}
	m.persist(j)
	m.replayDone(j)
}

// runRecord assembles the completed job's ledger record: dataset identity
// and stats, the plan the optimizer chose, the kernel tier and backend it
// executed on, the trained weights' fingerprint, the observed T(ε) curve,
// and where the time went (simulated training clock, observed wall time,
// per-phase span totals).
func (m *Manager) runRecord(j *Job, tj *ml4all.TrainJob, model *ml4all.Model, prog ml4all.JobProgress) obs.Record {
	ds := tj.Dataset()
	st := ds.Stats()
	j.mu.Lock()
	fast := j.FastMath || j.stmt.FastMath
	j.mu.Unlock()
	rec := obs.Record{
		Kind:  "job",
		JobID: j.ID,
		Model: j.Model,
		Dataset: obs.DatasetInfo{
			Fingerprint: ds.Fingerprint(),
			Name:        st.Name,
			Task:        st.Task.String(),
			Points:      st.Points,
			Features:    st.Features,
			Bytes:       st.Bytes,
			Density:     st.Density,
		},
		Plan:        prog.PlanName,
		FastMath:    fast || m.sys.FastMath,
		Backend:     linalg.FastBackend(),
		WeightsHash: obs.WeightsHash(model.Weights),
		Iterations:  prog.Iteration,
		Converged:   prog.Converged,
		FinalDelta:  obs.Finite(prog.FinalDelta),
		SimSeconds:  obs.Finite(float64(prog.TrainTime)),
		Phases:      j.trace.Totals(),
	}
	if j.ring != nil {
		for _, p := range j.ring.Curve() {
			rec.Curve = append(rec.Curve, obs.CurvePoint{Iter: p.Iter, Err: p.Err})
		}
		rec.WallSeconds = j.ring.WallSeconds()
	}
	return rec
}

// fail settles a job as failed.
func (m *Manager) fail(j *Job, err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.errMsg = err.Error()
	j.job = nil
	j.mu.Unlock()
	j.events.Close(string(JobFailed))
	m.persist(j)
	m.replayDone(j)
}
