package serve

// Latency histograms: observations land in the right log-spaced buckets, the
// derived p50/p95/p99 are bucket upper bounds (deterministic for a fixed
// observation multiset), and /metrics renders in a fixed field order.

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},             // exactly the first bound
		{3 * time.Microsecond, 2},         // 2µs < d <= 4µs
		{900 * time.Microsecond, 10},      // 512µs < d <= 1.024ms
		{time.Second, 20},                 // bound(20) = 1.048576s
		{10 * time.Hour, histBuckets - 1}, // off the top: +Inf bucket
		{1024 * time.Microsecond, 10},     // exactly on a bound stays in it
		{1025 * time.Microsecond, 11},     // just past the bound moves up
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestCountersQuantilesDeterministic(t *testing.T) {
	c := newCounters()
	rs := c.route("predict")
	// 89 fast, 9 medium, 2 slow observations: p50 lands in the fast bucket,
	// p95 in the medium one, p99 in the slow one.
	for i := 0; i < 89; i++ {
		rs.observe(900*time.Microsecond, false) // bucket 10, bound 1.024ms
	}
	for i := 0; i < 9; i++ {
		rs.observe(3*time.Millisecond, false) // bucket 12, bound 4.096ms
	}
	for i := 0; i < 2; i++ {
		rs.observe(40*time.Millisecond, true) // bucket 16, bound 65.536ms
	}

	var buf bytes.Buffer
	c.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		`ml4all_requests_total{route="predict"} 100`,
		`ml4all_request_errors_total{route="predict"} 2`,
		`ml4all_request_seconds{route="predict",quantile="0.5"} 0.001024`,
		`ml4all_request_seconds{route="predict",quantile="0.95"} 0.004096`,
		`ml4all_request_seconds{route="predict",quantile="0.99"} 0.065536`,
		`ml4all_request_seconds_bucket{route="predict",le="+Inf"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Rendering twice must produce byte-identical output (deterministic
	// ordering), including after registering a second route: routes sort
	// lexicographically.
	c.route("alpha").observe(time.Millisecond, false)
	var first, second bytes.Buffer
	c.WriteText(&first)
	c.WriteText(&second)
	if first.String() != second.String() {
		t.Fatal("two renders of the same counters differ")
	}
	a := strings.Index(first.String(), `ml4all_requests_total{route="alpha"}`)
	p := strings.Index(first.String(), `ml4all_requests_total{route="predict"}`)
	if a < 0 || p < 0 || a > p {
		t.Fatalf("routes not sorted: alpha at %d, predict at %d", a, p)
	}
}

func TestQuantileEmptyRoute(t *testing.T) {
	var rs routeStats
	if got := rs.quantile(0.99); got != 0 {
		t.Fatalf("quantile of an empty route = %v, want 0", got)
	}
}

func TestSlicePoolClasses(t *testing.T) {
	if got := sizeClass(1); got != 0 {
		t.Fatalf("sizeClass(1) = %d, want 0", got)
	}
	if got := sizeClass(5); got != 3 {
		t.Fatalf("sizeClass(5) = %d, want 3 (cap 8)", got)
	}
	var p slicePool[float64]
	s := p.get(5)
	if len(s) != 5 || cap(s) != 8 {
		t.Fatalf("get(5): len %d cap %d, want 5/8", len(s), cap(s))
	}
	p.put(s)
	s2 := p.get(3)
	if len(s2) != 3 {
		t.Fatalf("get(3) after put: len %d", len(s2))
	}
}
