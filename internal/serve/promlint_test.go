package serve

// A self-contained Prometheus text-exposition linter, run against the full
// /metrics output of a server that has seen real traffic. It enforces the
// format rules a strict scraper cares about: metric/label name charsets,
// HELP/TYPE pairing and ordering, samples belonging to a declared family
// (with the histogram suffix rules), parseable values, and — for histograms
// — cumulative non-decreasing buckets ending in a le="+Inf" terminal.

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"ml4all/internal/data"
	"ml4all/internal/synth"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits a sample line into name, optional label block, value.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
	labelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// histSeries tracks one histogram series' cumulative bucket walk.
type histSeries struct {
	last    uint64
	sawInf  bool
	buckets int
}

func lintExposition(t *testing.T, text string) {
	t.Helper()
	type family struct {
		typ     string
		hasHelp bool
	}
	families := map[string]*family{}
	var pendingHelp string // family name of the HELP line awaiting its TYPE
	hists := map[string]*histSeries{}

	baseName := func(name string) (string, bool) {
		// Resolve a sample to its declared family, honoring histogram
		// suffixes. Returns ok=false when no family declares it.
		if f, ok := families[name]; ok {
			return name, f.typ != "histogram" || true
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				base := strings.TrimSuffix(name, suf)
				if f, ok := families[base]; ok && f.typ == "histogram" {
					return base, true
				}
			}
		}
		return "", false
	}

	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q in HELP", lineNo, name)
			}
			if f, exists := families[name]; exists && f.hasHelp {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			families[name] = &family{hasHelp: true}
			pendingHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", lineNo, typ)
			}
			f, exists := families[name]
			if !exists {
				t.Fatalf("line %d: TYPE %s without a preceding HELP", lineNo, name)
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			// HELP must immediately precede TYPE for the same family.
			if pendingHelp != name {
				t.Fatalf("line %d: TYPE %s does not follow its HELP (pending %q)", lineNo, name, pendingHelp)
			}
			f.typ = typ
			pendingHelp = ""
		case strings.HasPrefix(line, "#"):
			// other comments are legal and ignored
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparseable sample: %q", lineNo, line)
			}
			name, labelBlock, value := m[1], m[2], m[3]
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("line %d: value %q does not parse as float: %v", lineNo, value, err)
			}
			base, ok := baseName(name)
			if !ok {
				t.Fatalf("line %d: sample %s belongs to no declared family", lineNo, name)
			}
			if f := families[base]; f.typ == "" || !f.hasHelp {
				t.Fatalf("line %d: family %s sampled before full HELP+TYPE declaration", lineNo, base)
			}
			labels := map[string]string{}
			if labelBlock != "" {
				inner := strings.Trim(labelBlock, "{}")
				for _, lm := range labelRe.FindAllStringSubmatch(inner, -1) {
					if !labelNameRe.MatchString(lm[1]) {
						t.Fatalf("line %d: bad label name %q", lineNo, lm[1])
					}
					labels[lm[1]] = lm[2]
				}
				if got := labelRe.ReplaceAllString(inner, ""); strings.Trim(got, ", ") != "" {
					t.Fatalf("line %d: unparseable label residue %q in %q", lineNo, got, labelBlock)
				}
			}
			if strings.HasSuffix(name, "_bucket") && families[base].typ == "histogram" {
				le, hasLE := labels["le"]
				if !hasLE {
					t.Fatalf("line %d: histogram bucket without le label: %q", lineNo, line)
				}
				// Series key: every label except le.
				var kb strings.Builder
				kb.WriteString(name)
				for k, v := range labels {
					if k != "le" {
						fmt.Fprintf(&kb, "|%s=%s", k, v)
					}
				}
				hs := hists[kb.String()]
				if hs == nil {
					hs = &histSeries{}
					hists[kb.String()] = hs
				}
				if hs.sawInf {
					t.Fatalf("line %d: bucket after le=\"+Inf\" terminal: %q", lineNo, line)
				}
				cum, err := strconv.ParseUint(m[3], 10, 64)
				if err != nil {
					t.Fatalf("line %d: bucket value %q not a count", lineNo, m[3])
				}
				if cum < hs.last {
					t.Fatalf("line %d: cumulative bucket decreased (%d -> %d): %q", lineNo, hs.last, cum, line)
				}
				hs.last = cum
				hs.buckets++
				if le == "+Inf" {
					hs.sawInf = true
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("line %d: bucket bound %q not a float", lineNo, le)
				}
			}
		}
	}
	if pendingHelp != "" {
		t.Fatalf("trailing HELP for %s without a TYPE", pendingHelp)
	}
	for name, f := range families {
		if f.typ == "" {
			t.Fatalf("family %s declared HELP but no TYPE", name)
		}
	}
	for key, hs := range hists {
		if !hs.sawInf {
			t.Fatalf("histogram series %s has no le=\"+Inf\" terminal bucket", key)
		}
	}
	if len(hists) == 0 {
		t.Fatal("exposition contains no histogram series — traffic generation failed")
	}
}

// TestMetricsExpositionLint scrapes a server that has served jobs and
// predictions — so every metric family renders — and lints the full output.
func TestMetricsExpositionLint(t *testing.T) {
	trainPath, _ := writeDataset(t, synth.Spec{
		Name: "lint-train", Task: data.TaskLogisticRegression,
		N: 600, D: 16, Density: 0.5, Noise: 0.1, Margin: 1, Seed: 9,
	})
	srv, ts := obsServer(t, t.TempDir())
	defer func() {
		ctx, cancel := ctxTimeout(t)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	script := fmt.Sprintf("m = run logistic on %s having epsilon 0.05, max iter 200;", trainPath)
	var st JobStatus
	postJSON(t, ts.URL+"/v1/jobs", map[string]string{"script": script}, &st)
	waitState(t, func() JobStatus {
		var cur JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &cur)
		return cur
	}, JobCompleted, 30*time.Second)

	// Generate predict + error + events traffic so those series render too.
	var pr PredictResponse
	postJSON(t, ts.URL+"/v1/models/m/predict", map[string]any{"instances": [][]float64{{0.5, -0.25}}}, &pr)
	postJSON(t, ts.URL+"/v1/jobs", map[string]string{"script": "bogus"}, nil)
	var page map[string]any
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/events?once", &page)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lintExposition(t, string(raw))
}
