package obs

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math"
	"sync"

	"ml4all/internal/fault"
)

// SchemaVersion is stamped into every Record on Append. Bump it when a
// field changes meaning; readers skip records whose schema they do not
// know, exactly like they skip corrupt lines, so old and new binaries can
// share one ledger file. Additive fields (the expected evolution for the
// learned cost model's features) do NOT need a bump — unknown JSON keys are
// ignored and absent ones decode to zero values.
const SchemaVersion = 1

// DatasetInfo identifies and summarizes the dataset a run trained on — the
// join key (Fingerprint) and feature vector (stats) a learned cost model
// warm-starts from.
type DatasetInfo struct {
	Fingerprint string  `json:"fingerprint"`
	Name        string  `json:"name,omitempty"`
	Task        string  `json:"task,omitempty"`
	Points      int     `json:"points"`
	Features    int     `json:"features"`
	Bytes       int64   `json:"bytes"`
	Density     float64 `json:"density"`
}

// CurvePoint is one observed point of the monotone T(ε) sequence.
type CurvePoint struct {
	Iter int     `json:"iter"`
	Err  float64 `json:"err"`
}

// SwitchRecord is a mid-flight plan switch as persisted in the ledger
// (planner.SwitchEvent flattened to JSON-safe types).
type SwitchRecord struct {
	Iter    int     `json:"iter"`
	Clock   float64 `json:"clock_seconds"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	FittedA float64 `json:"fitted_a"`
	SpecA   float64 `json:"spec_a"`
	Epsilon float64 `json:"epsilon"`
}

// RefitRecord is one re-optimization check (planner.RefitEvent condensed:
// the decision and the parameters behind it, without the per-plan cost
// table).
type RefitRecord struct {
	Iter    int     `json:"iter"`
	Plan    string  `json:"plan"`
	Action  string  `json:"action"`
	FittedA float64 `json:"fitted_a"`
	SpecA   float64 `json:"spec_a"`
	Epsilon float64 `json:"epsilon"`
	Reason  string  `json:"reason,omitempty"`
}

// Record is one completed run in the ledger — the per-job history the
// ROADMAP's learned cost model consumes: what the data looked like, what
// the planner chose (and re-chose), how convergence actually went, and
// where the time was spent. Float fields must be finite (see Finite); the
// producers sanitize fit-derived values before building a Record.
type Record struct {
	Schema      int                `json:"schema"`
	Kind        string             `json:"kind"` // "job" (serving) | "adaptive" (batch API)
	JobID       string             `json:"job_id,omitempty"`
	Model       string             `json:"model,omitempty"`
	Dataset     DatasetInfo        `json:"dataset"`
	Plan        string             `json:"plan"`
	Plans       []string           `json:"plans,omitempty"`
	FastMath    bool               `json:"fastmath,omitempty"`
	Backend     string             `json:"backend,omitempty"`
	WeightsHash string             `json:"weights_hash,omitempty"`
	Iterations  int                `json:"iterations"`
	Converged   bool               `json:"converged"`
	FinalDelta  float64            `json:"final_delta"`
	Curve       []CurvePoint       `json:"curve,omitempty"`
	Switches    []SwitchRecord     `json:"switches,omitempty"`
	Refits      []RefitRecord      `json:"refits,omitempty"`
	SimSeconds  float64            `json:"sim_seconds,omitempty"`
	WallSeconds float64            `json:"wall_seconds,omitempty"`
	Phases      map[string]float64 `json:"phases,omitempty"`
}

// Ledger is the append-only JSONL run history at a fixed path, written
// through the crash-safe fault.WriteDurable protocol: every Append rewrites
// temp + fsync + rename, so the file on disk is always a complete,
// uncorrupted prefix of the history — a torn write can only ever produce a
// stale-but-valid file or an orphaned temp the manager's sweep removes.
// Opening tolerates damage anyway (a line that does not parse, e.g. from a
// file edited or truncated outside the protocol, is skipped and counted),
// so one bad record never takes down the history.
type Ledger struct {
	mu      sync.Mutex
	fsys    fault.FS
	path    string
	lines   [][]byte // verbatim good lines, no trailing newline
	records []Record
	skipped int
}

// OpenLedger reads the ledger at path (a missing file is an empty ledger).
// Undecodable lines and records with an unknown schema are skipped and
// counted, never fatal; they are dropped from the file on the next Append.
func OpenLedger(fsys fault.FS, path string) (*Ledger, error) {
	l := &Ledger{fsys: fsys, path: path}
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return l, nil
		}
		return nil, fmt.Errorf("obs: opening ledger %s: %w", path, err)
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Schema <= 0 || rec.Schema > SchemaVersion {
			l.skipped++
			continue
		}
		l.lines = append(l.lines, append([]byte(nil), line...))
		l.records = append(l.records, rec)
	}
	return l, nil
}

// Path returns the ledger's file path.
func (l *Ledger) Path() string { return l.path }

// Append stamps rec with the current schema version and persists the whole
// history durably. On error the in-memory and on-disk state both keep the
// pre-Append history (WriteDurable never tears the target).
func (l *Ledger) Append(rec Record) error {
	rec.Schema = SchemaVersion
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: encoding ledger record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(line) + 1
	for _, ln := range l.lines {
		size += len(ln) + 1
	}
	buf := make([]byte, 0, size)
	for _, ln := range l.lines {
		buf = append(buf, ln...)
		buf = append(buf, '\n')
	}
	buf = append(buf, line...)
	buf = append(buf, '\n')
	if err := fault.WriteDurable(l.fsys, l.path, buf); err != nil {
		return fmt.Errorf("obs: appending ledger record: %w", err)
	}
	l.lines = append(l.lines, line)
	l.records = append(l.records, rec)
	return nil
}

// Records returns a copy of the decoded history in file order.
func (l *Ledger) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Skipped returns how many damaged or unknown-schema lines OpenLedger
// dropped.
func (l *Ledger) Skipped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.skipped
}

// WeightsHash returns a 64-bit FNV-1a fingerprint of a weight vector's
// exact bits as a 16-hex-digit string — enough to tell two models apart in
// the ledger without storing the vectors.
func WeightsHash(w []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range w {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
