package obs

import (
	"runtime"
	"runtime/debug"
)

// Version is the release identifier stamped at link time:
//
//	go build -ldflags "-X ml4all/internal/obs.Version=$(git describe --tags --always --dirty)"
//
// Unstamped builds report "dev" (plus the VCS revision when the module was
// built from a checkout, via the toolchain's embedded build info).
var Version string

// BuildInfo identifies the running binary for /healthz, the
// ml4all_build_info metric and startup logs.
type BuildInfo struct {
	Version  string `json:"version"`
	Go       string `json:"go"`
	Revision string `json:"revision,omitempty"`
}

// Build returns the binary's build identity.
func Build() BuildInfo {
	b := BuildInfo{Version: Version, Go: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				b.Revision = s.Value
				if len(b.Revision) > 12 {
					b.Revision = b.Revision[:12]
				}
			}
		}
	}
	if b.Version == "" {
		b.Version = "dev"
	}
	return b
}
