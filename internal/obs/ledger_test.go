package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ml4all/internal/fault"
)

// testRecords builds the mix the ledger sees in practice: adaptive runs with
// curves, switches and refits, plus plain static runs — with awkward but
// finite float values that must survive the JSON round trip bit-exactly.
func testRecords(n int) []Record {
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec := Record{
			Kind:  "job",
			JobID: "job-000" + string(rune('0'+i)),
			Model: "m",
			Dataset: DatasetInfo{
				Fingerprint: WeightsHash([]float64{float64(i)}),
				Name:        "synth-adult", Task: "logistic",
				Points: 19531 + i, Features: 40, Bytes: 1 << 20, Density: 0.6,
			},
			Plan:        "mgd-batch-1000",
			Backend:     "fast-go",
			WeightsHash: WeightsHash([]float64{1.5, -2.25, 1e-17}),
			Iterations:  137 + i,
			Converged:   i%2 == 0,
			FinalDelta:  1.2345678901234567e-4,
			Curve: []CurvePoint{
				{Iter: 1, Err: 0.5}, {Iter: 7, Err: 0.0625}, {Iter: 137, Err: 9.999999999999999e-5},
			},
			SimSeconds:  42.75,
			WallSeconds: 0.031415926535897934,
			Phases:      map[string]float64{"optimize": 0.25, "train": 1.5},
		}
		if i%2 == 1 { // adaptive shape
			rec.Kind = "adaptive"
			rec.Plans = []string{"mgd-batch-1000", "sgd"}
			rec.Switches = []SwitchRecord{{
				Iter: 50, Clock: 12.5, From: "mgd-batch-1000", To: "sgd",
				FittedA: 3333.25, SpecA: 41.5, Epsilon: 0.015625,
			}}
			rec.Refits = []RefitRecord{
				{Iter: 50, Plan: "mgd-batch-1000", Action: "switch", FittedA: 3333.25, SpecA: 41.5, Epsilon: 0.015625, Reason: "refit a=3333.25 -> switch"},
				{Iter: 100, Plan: "sgd", Action: "converging"},
			}
		}
		out = append(out, rec)
	}
	return out
}

func openTestLedger(t *testing.T, fsys fault.FS, path string) *Ledger {
	t.Helper()
	l, err := OpenLedger(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	fsys := fault.NewFS(nil, "ledger")
	l := openTestLedger(t, fsys, path)

	want := testRecords(4)
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Append stamps the schema; mirror that for the comparison.
	for i := range want {
		want[i].Schema = SchemaVersion
	}

	re := openTestLedger(t, fsys, path)
	got := re.Records()
	if len(got) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d does not round-trip bit-exactly:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if re.Skipped() != 0 {
		t.Fatalf("clean file reported %d skipped lines", re.Skipped())
	}
}

func TestLedgerMissingFileIsEmpty(t *testing.T) {
	l := openTestLedger(t, fault.NewFS(nil, "ledger"), filepath.Join(t.TempDir(), "none.jsonl"))
	if len(l.Records()) != 0 || l.Skipped() != 0 {
		t.Fatalf("missing file: %d records, %d skipped", len(l.Records()), l.Skipped())
	}
}

func TestLedgerSkipsCorruptTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	fsys := fault.NewFS(nil, "ledger")
	l := openTestLedger(t, fsys, path)
	want := testRecords(3)
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	// Tear the file the way a crash mid-write outside the durable protocol
	// would: a trailing partial JSON line.
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644); err != nil {
		t.Fatal(err)
	} else {
		if _, err := f.WriteString(`{"schema":1,"kind":"job","plan":"trunc`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	re := openTestLedger(t, fsys, path)
	if len(re.Records()) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(re.Records()), len(want))
	}
	if re.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", re.Skipped())
	}
	// The next Append compacts the damage away.
	if err := re.Append(testRecords(1)[0]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "trunc") {
		t.Fatal("corrupt line survived the rewriting Append")
	}
	final := openTestLedger(t, fsys, path)
	if len(final.Records()) != len(want)+1 || final.Skipped() != 0 {
		t.Fatalf("after compacting append: %d records, %d skipped", len(final.Records()), final.Skipped())
	}
}

func TestLedgerSkipsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	future := `{"schema":999,"kind":"job","plan":"from-the-future"}` + "\n" +
		`{"schema":1,"kind":"job","plan":"ok","dataset":{"fingerprint":"ab"},"iterations":1,"converged":true,"final_delta":0.1}` + "\n"
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	l := openTestLedger(t, fault.NewFS(nil, "ledger"), path)
	if len(l.Records()) != 1 || l.Records()[0].Plan != "ok" {
		t.Fatalf("records = %+v", l.Records())
	}
	if l.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", l.Skipped())
	}
}

func TestLedgerAppendFaultLeavesHistoryIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	inj, err := fault.FromSpec("ledger.rename=err:1")
	if err != nil {
		t.Fatal(err)
	}
	fsys := fault.NewFS(inj, "ledger")
	l := openTestLedger(t, fsys, path)
	recs := testRecords(2)
	if err := l.Append(recs[0]); err != nil { // hit 0: succeeds
		t.Fatal(err)
	}
	if err := l.Append(recs[1]); err == nil { // hit 1: injected rename failure
		t.Fatal("Append survived an injected rename fault")
	}
	// The failed Append must not have touched memory or disk.
	if len(l.Records()) != 1 {
		t.Fatalf("in-memory history grew to %d after failed Append", len(l.Records()))
	}
	re := openTestLedger(t, fault.NewFS(nil, "ledger"), path)
	if len(re.Records()) != 1 || re.Skipped() != 0 {
		t.Fatalf("on-disk history: %d records, %d skipped", len(re.Records()), re.Skipped())
	}
	if re.Records()[0].JobID != recs[0].JobID {
		t.Fatalf("surviving record = %+v", re.Records()[0])
	}
}

func TestWeightsHash(t *testing.T) {
	a := WeightsHash([]float64{1, 2, 3})
	if len(a) != 16 {
		t.Fatalf("hash %q is not 16 hex digits", a)
	}
	if a != WeightsHash([]float64{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if a == WeightsHash([]float64{1, 2, 3.0000000000000004}) {
		t.Fatal("hash ignores a 1-ulp weight change")
	}
}
